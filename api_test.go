package parapriori

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadNamedDatasetAPI(t *testing.T) {
	in := "Bread, Milk\nBeer, Bread\n"
	data, vocab, err := ReadNamedDataset(strings.NewReader(in), ",")
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 2 || vocab.Len() != 3 {
		t.Fatalf("parsed %d transactions, %d names", data.Len(), vocab.Len())
	}
	var buf bytes.Buffer
	if err := WriteVocabulary(&buf, vocab); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVocabulary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != vocab.Len() {
		t.Errorf("vocabulary round trip: %d vs %d", back.Len(), vocab.Len())
	}
	v, err := NewVocabulary([]string{"a", "b"})
	if err != nil || v.Len() != 2 {
		t.Errorf("NewVocabulary: %v, %d", err, v.Len())
	}
}

func TestTraceTimelineAPI(t *testing.T) {
	data := tableI()
	rep, err := MineParallel(data, ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0.4},
		Algorithm:   IDD,
		Procs:       2,
		Trace:       true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	var sb strings.Builder
	if err := TraceTimeline(&sb, rep, 50); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "P0") || !strings.Contains(sb.String(), "P1") {
		t.Errorf("timeline missing processor rows:\n%s", sb.String())
	}
}

func TestHPAThroughAPI(t *testing.T) {
	data := tableI()
	rep, err := MineParallel(data, ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0.4},
		Algorithm:   HPA,
		Procs:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Mine(data, MineOptions{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.NumFrequent() != serial.NumFrequent() {
		t.Errorf("HPA found %d itemsets, serial %d", rep.Result.NumFrequent(), serial.NumFrequent())
	}
}

func TestFaultTolerantMiningAPI(t *testing.T) {
	gen := DefaultGen()
	gen.NumTransactions = 800
	gen.NumItems = 100
	gen.NumPatterns = 50
	gen.AvgTxnLen = 8
	gen.AvgPatternLen = 3
	gen.Seed = 11
	data, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(data, MineOptions{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := MineParallel(data, ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0.02},
		Algorithm:   HD,
		Procs:       4,
		Faults: &FaultPlan{
			Seed:       9,
			Drop:       0.2,
			Crashes:    []Crash{{Rank: 1, At: 5e-3}},
			Stragglers: []Straggler{{Rank: 2, At: 0, Factor: 2}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts == 0 {
		t.Error("scheduled crash triggered no recovery")
	}
	if got := rep.Result.NumFrequent(); got != want.NumFrequent() {
		t.Errorf("faulty run mined %d frequent itemsets, serial %d", got, want.NumFrequent())
	}
	if rep.Total.MessagesDropped == 0 {
		t.Error("lossy plan dropped no messages")
	}
}

func TestDefaultGenIsPaperWorkload(t *testing.T) {
	g := DefaultGen()
	if g.AvgTxnLen != 15 || g.AvgPatternLen != 6 || g.NumItems != 1000 {
		t.Errorf("DefaultGen = %+v, want the T15.I6 family", g)
	}
}

func TestPhaseBreakdownAPI(t *testing.T) {
	data := tableI()
	rep, err := MineParallel(data, ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0.4},
		Algorithm:   CD,
		Procs:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	shares := rep.PhaseBreakdown()
	if len(shares) == 0 {
		t.Fatal("empty phase breakdown")
	}
	total := 0.0
	for name, share := range shares {
		if share < 0 {
			t.Errorf("phase %q has negative share %v", name, share)
		}
		total += share
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("shares sum to %v", total)
	}
}
