package parapriori

import (
	"fmt"

	"parapriori/internal/core"
	"parapriori/internal/countengine"
	"parapriori/internal/itemset"
)

// OptionError reports an invalid or contradictory field in an options
// struct.  Mine, MineParallel and GenerateRulesOn validate before running,
// so misconfigurations surface as one named field error instead of a deep
// failure — or, worse, a silently ignored knob — later.
type OptionError struct {
	// Struct is the options type the field belongs to, e.g. "ParallelOptions".
	Struct string
	// Field is the offending field name.
	Field string
	// Reason says what is wrong with the value.
	Reason string
}

// Error implements the error interface.
func (e *OptionError) Error() string {
	return fmt.Sprintf("parapriori: %s.%s: %s", e.Struct, e.Field, e.Reason)
}

func optErr(strct, field, format string, args ...any) *OptionError {
	return &OptionError{Struct: strct, Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the options for serial mining.  It returns nil or a
// *OptionError naming the first offending field.
func (o MineOptions) Validate() error {
	return o.validate("MineOptions", true)
}

// validate implements Validate for both the serial and the embedded-in-
// ParallelOptions case; serial reports whether the serial-only knobs
// (MemoryBytes, DHPBuckets, DHPTrim) are legal at all.
func (o MineOptions) validate(strct string, serial bool) error {
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return optErr(strct, "MinSupport", "%v outside (0, 1]", o.MinSupport)
	}
	if o.HashTreeFanout < 0 {
		return optErr(strct, "HashTreeFanout", "negative (%d)", o.HashTreeFanout)
	}
	if o.MaxLeafSize < 0 {
		return optErr(strct, "MaxLeafSize", "negative (%d)", o.MaxLeafSize)
	}
	if o.MaxPasses < 0 {
		return optErr(strct, "MaxPasses", "negative (%d)", o.MaxPasses)
	}
	if o.MemoryBytes < 0 {
		return optErr(strct, "MemoryBytes", "negative (%d)", o.MemoryBytes)
	}
	if o.DHPBuckets < 0 {
		return optErr(strct, "DHPBuckets", "negative (%d)", o.DHPBuckets)
	}
	if !serial {
		// These knobs configure the serial miner only.  MineParallel used
		// to zero or ignore them silently; now the contradiction is named.
		if o.MemoryBytes > 0 {
			return optErr(strct, "MemoryBytes", "serial mining only — the parallel memory cap comes from Machine.MemoryBytes")
		}
		if o.DHPBuckets > 0 {
			return optErr(strct, "DHPBuckets", "DHP filtering is serial mining only")
		}
		if o.DHPTrim {
			return optErr(strct, "DHPTrim", "DHP trimming is serial mining only")
		}
	}
	if o.DHPTrim && o.MemoryBytes > 0 {
		return optErr(strct, "DHPTrim", "incompatible with MemoryBytes: trimming rewrites the transactions the multi-scan passes must rescan")
	}
	if !countengine.Known(o.Engine) {
		return optErr(strct, "Engine", "unknown engine %q (want one of %v)", o.Engine, countengine.Names())
	}
	if o.Engine != "" && o.Engine != countengine.Default && (o.DHPBuckets > 0 || o.DHPTrim) {
		return optErr(strct, "Engine", "DHP filtering requires the hashtree engine, not %q", o.Engine)
	}
	if o.Source != nil {
		if _, resident := o.Source.(*itemset.Dataset); !resident && (o.DHPBuckets > 0 || o.DHPTrim) {
			return optErr(strct, "Source", "DHP filtering requires a resident dataset, not a streaming source")
		}
	}
	return nil
}

// Validate checks the options for a parallel mining run.  It returns nil
// or a *OptionError naming the first offending field — including the
// MineOptions knobs that only the serial miner honors, which MineParallel
// previously ignored without comment.
func (o ParallelOptions) Validate() error {
	const strct = "ParallelOptions"
	if err := o.MineOptions.validate(strct, false); err != nil {
		return err
	}
	if o.Procs < 1 {
		return optErr(strct, "Procs", "must be at least 1 (got %d)", o.Procs)
	}
	switch o.Algorithm {
	case CD, DD, DDComm, IDD, HD, HPA:
	default:
		return optErr(strct, "Algorithm", "unknown algorithm %q (want cd, dd, ddcomm, idd, hd or hpa)", string(o.Algorithm))
	}
	if o.PageBytes < 0 {
		return optErr(strct, "PageBytes", "negative (%d)", o.PageBytes)
	}
	if o.HDThreshold < 0 {
		return optErr(strct, "HDThreshold", "negative (%d)", o.HDThreshold)
	}
	if o.FixedG < 0 {
		return optErr(strct, "FixedG", "negative (%d)", o.FixedG)
	}
	if o.FixedG > 0 {
		if o.Algorithm != HD {
			return optErr(strct, "FixedG", "grid shape applies to HD only, not %q", string(o.Algorithm))
		}
		if o.Procs%o.FixedG != 0 {
			return optErr(strct, "FixedG", "%d does not divide Procs %d", o.FixedG, o.Procs)
		}
	}
	if o.MaxRestarts < 0 {
		return optErr(strct, "MaxRestarts", "negative (%d)", o.MaxRestarts)
	}
	if o.Faults != nil {
		switch o.Algorithm {
		case CD, IDD, HD:
		default:
			return optErr(strct, "Faults", "fault-tolerant execution supports cd, idd and hd, not %q", string(o.Algorithm))
		}
	}
	if o.CheckpointDir != "" {
		switch o.Algorithm {
		case CD, IDD, HD:
		default:
			return optErr(strct, "CheckpointDir", "checkpoint persistence supports cd, idd and hd, not %q", string(o.Algorithm))
		}
	}
	switch o.Recovery {
	case "", "coordinated", "asymmetric":
	default:
		return optErr(strct, "Recovery", "unknown mode %q (want coordinated or asymmetric)", o.Recovery)
	}
	if o.Engine != "" && o.Engine != countengine.Default {
		switch o.Algorithm {
		case CD, IDD, HD:
		default:
			return optErr(strct, "Engine", "counting engine %q supports cd, idd and hd, not %q", o.Engine, string(o.Algorithm))
		}
	}
	backend, err := core.ParseBackend(o.Backend)
	if err != nil {
		return optErr(strct, "Backend", "unknown backend %q (want inmem or ooc)", o.Backend)
	}
	if backend == core.BackendOOC {
		if o.Source == nil {
			return optErr(strct, "Source", "the ooc backend mines a PartitionedDataset; set Source to one (OpenPartitionedDataset / WritePartitionedDataset)")
		}
		if _, ok := o.Source.(*PartitionedDataset); !ok {
			return optErr(strct, "Source", "the ooc backend requires a *PartitionedDataset source, not %T", o.Source)
		}
		switch o.Algorithm {
		case CD, IDD, HD:
		default:
			return optErr(strct, "Backend", "out-of-core execution supports cd, idd and hd, not %q", string(o.Algorithm))
		}
		if o.Faults != nil {
			return optErr(strct, "Faults", "fault injection is not supported on the ooc backend")
		}
	}
	return nil
}

// Validate checks the options for parallel rule generation.
func (o RuleGenOptions) Validate() error {
	const strct = "RuleGenOptions"
	if o.Procs < 1 {
		return optErr(strct, "Procs", "must be at least 1 (got %d)", o.Procs)
	}
	if o.MinConfidence < 0 || o.MinConfidence > 1 {
		return optErr(strct, "MinConfidence", "%v outside [0, 1]", o.MinConfidence)
	}
	return nil
}

// Validate checks the serving options.  Zero values mean "use the default"
// throughout and are always valid; only contradictions are errors.
func (o ServeOptions) Validate() error {
	const strct = "ServeOptions"
	if o.Shards < 0 {
		return optErr(strct, "Shards", "negative (%d)", o.Shards)
	}
	if o.Workers < 0 {
		return optErr(strct, "Workers", "negative (%d); zero means inline execution", o.Workers)
	}
	if o.MaxK < 0 {
		return optErr(strct, "MaxK", "negative (%d)", o.MaxK)
	}
	return nil
}
