// Quickstart mines the paper's own running example: the five supermarket
// transactions of Table I.  It finds the frequent itemsets at 40% support
// and derives association rules, including the classic
// {Diaper, Milk} => {Beer} rule with 40% support and 66% confidence that
// Section II works through by hand.
package main

import (
	"fmt"
	"log"
	"strings"

	"parapriori"
)

// The items of Table I.
const (
	Bread parapriori.Item = iota
	Beer
	Coke
	Diaper
	Milk
)

var names = map[parapriori.Item]string{
	Bread: "Bread", Beer: "Beer", Coke: "Coke", Diaper: "Diaper", Milk: "Milk",
}

func label(s parapriori.Itemset) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = names[it]
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func main() {
	// Table I: five supermarket transactions.
	data := parapriori.FromItems([][]parapriori.Item{
		{Bread, Coke, Milk},
		{Beer, Bread},
		{Beer, Coke, Diaper, Milk},
		{Beer, Bread, Diaper, Milk},
		{Coke, Diaper, Milk},
	})

	// Step 1: frequent itemsets at 40% minimum support (count >= 2).
	res, err := parapriori.Mine(data, parapriori.MineOptions{MinSupport: 0.4})
	if err != nil {
		log.Fatalf("mining: %v", err)
	}
	fmt.Printf("frequent itemsets (support >= 40%% of %d transactions):\n", data.Len())
	for _, level := range res.Levels {
		for _, f := range level {
			fmt.Printf("  %-24s count %d\n", label(f.Items), f.Count)
		}
	}

	// Step 2: association rules at 60% minimum confidence.
	rules, err := parapriori.GenerateRules(res, 0.6)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}
	fmt.Printf("\nrules (confidence >= 60%%):\n")
	for _, r := range rules {
		fmt.Printf("  %-20s => %-10s support %.0f%%, confidence %.0f%%\n",
			label(r.Antecedent), label(r.Consequent), r.Support*100, r.Confidence*100)
	}
}
