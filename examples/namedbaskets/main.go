// Namedbaskets mines a basket file whose items are product *names* rather
// than integer IDs, exercising the vocabulary layer end to end: parse named
// transactions, mine with the DHP pair-hash filter enabled, save the
// frequent itemsets to disk, reload them, and print rules with names.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"parapriori"
)

// baskets is a tiny named dataset: Table I plus a few extra carts.
const baskets = `
Bread, Coke, Milk
Beer, Bread
Beer, Coke, Diaper, Milk
Beer, Bread, Diaper, Milk
Coke, Diaper, Milk
Bread, Butter
Bread, Butter, Milk
Butter, Milk
`

func main() {
	data, vocab, err := parapriori.ReadNamedDataset(strings.NewReader(baskets), ",")
	if err != nil {
		log.Fatalf("parsing baskets: %v", err)
	}
	fmt.Printf("%d baskets over %d products: %v\n\n", data.Len(), vocab.Len(), vocab.Names())

	// Mine with the DHP pair filter on (identical results, fewer pass-2
	// candidates counted).
	res, err := parapriori.Mine(data, parapriori.MineOptions{MinSupport: 0.25, DHPBuckets: 64})
	if err != nil {
		log.Fatalf("mining: %v", err)
	}

	// Persist and reload — mine once, generate rules whenever.
	path := filepath.Join(os.TempDir(), "namedbaskets-frequent.txt")
	f, err := os.Create(path)
	if err != nil {
		log.Fatalf("creating %s: %v", path, err)
	}
	if err := parapriori.WriteResult(f, res); err != nil {
		log.Fatalf("saving result: %v", err)
	}
	f.Close()
	g, err := os.Open(path)
	if err != nil {
		log.Fatalf("reopening %s: %v", path, err)
	}
	reloaded, err := parapriori.ReadResult(g)
	g.Close()
	os.Remove(path)
	if err != nil {
		log.Fatalf("reloading result: %v", err)
	}
	fmt.Printf("saved and reloaded %d frequent itemsets via %s\n\n", reloaded.NumFrequent(), path)

	rules, err := parapriori.GenerateRules(reloaded, 0.7)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}
	fmt.Println("rules (support >= 25%, confidence >= 70%):")
	for _, r := range rules {
		fmt.Printf("  %-22s => %-18s sup %.0f%%, conf %.0f%%\n",
			vocab.Label(r.Antecedent), vocab.Label(r.Consequent),
			r.Support*100, r.Confidence*100)
	}
}
