// Serving wires the full pipeline end to end: synthesize a transaction
// database, mine it in parallel with Hybrid Distribution on the emulated
// cluster, derive association rules, and stand up the serving layer — then
// re-mine at a tighter threshold and hot-swap the fresh rules under live
// queries, the way a production recommender picks up a nightly mining run.
package main

import (
	"fmt"
	"log"

	"parapriori"
)

func main() {
	// A small synthetic workload (Quest-style, like the paper's T15.I6 but
	// scaled down so the example runs instantly).
	gen := parapriori.DefaultGen()
	gen.NumTransactions = 4000
	gen.NumItems = 200
	data, err := parapriori.Generate(gen)
	if err != nil {
		log.Fatalf("generate: %v", err)
	}

	mineAndIndex := func(minsup float64) *parapriori.RuleIndex {
		rep, err := parapriori.MineParallel(data, parapriori.ParallelOptions{
			Algorithm:   parapriori.HD,
			Procs:       16,
			MineOptions: parapriori.MineOptions{MinSupport: minsup},
		})
		if err != nil {
			log.Fatalf("mine: %v", err)
		}
		rs, err := parapriori.GenerateRules(rep.Result, 0.5)
		if err != nil {
			log.Fatalf("rules: %v", err)
		}
		fmt.Printf("mined at minsup %.3f: %d frequent itemsets, %d rules, %.4fs virtual on 16 procs\n",
			minsup, rep.Result.NumFrequent(), len(rs), rep.ResponseTime)
		return parapriori.BuildIndex(rs, parapriori.ServeOptions{})
	}

	srv := parapriori.NewServer(parapriori.ServeOptions{CacheSize: 256})
	defer srv.Close()
	srv.Publish(mineAndIndex(0.01))

	// Shop a basket containing the strongest rule's antecedent, so the
	// recommender has something to say about it.
	basket := append(parapriori.Itemset(nil), srv.Index().All()[0].Antecedent...)
	show := func() {
		recs, err := srv.Recommend(basket, 3)
		if err != nil {
			log.Fatalf("recommend: %v", err)
		}
		m := srv.Metrics()
		fmt.Printf("generation %d: top %d for basket %v\n", m.SnapshotGeneration, len(recs), basket)
		for _, r := range recs {
			fmt.Printf("  %v\n", r)
		}
	}
	show()

	// A "nightly re-mine" at a tighter threshold produces a different rule
	// set; Publish swaps it in atomically — in-flight queries finish on the
	// old snapshot, new ones see the new rules, and the query cache rolls
	// over with the snapshot.
	srv.Publish(mineAndIndex(0.005))
	show()
}
