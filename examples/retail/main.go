// Retail runs the full market-basket pipeline the paper's introduction
// motivates: generate a Quest-style synthetic retail workload (the T15.I6
// family used throughout the evaluation), mine it serially at a sweep of
// support thresholds to show the candidate explosion, then pull out the
// strongest rules at a chosen operating point.
package main

import (
	"fmt"
	"log"

	"parapriori"
)

func main() {
	// A scaled-down T15.I6: 20K baskets over a 500-product catalog.
	gen := parapriori.DefaultGen()
	gen.NumTransactions = 20000
	gen.NumItems = 500
	gen.NumPatterns = 400
	gen.AvgTxnLen = 12
	gen.AvgPatternLen = 5
	gen.Seed = 20260706
	data, err := parapriori.Generate(gen)
	if err != nil {
		log.Fatalf("generating baskets: %v", err)
	}
	fmt.Printf("catalog: %d products, %d baskets, avg basket %.1f items\n\n",
		data.NumItems, data.Len(), data.AvgLen())

	// Support sweep: lowering the threshold blows up the candidate sets —
	// the effect that motivates the paper's parallel formulations.
	fmt.Println("support sweep (candidate explosion):")
	fmt.Printf("  %-8s %-12s %-10s %-7s\n", "minsup", "candidates", "frequent", "passes")
	for _, minsup := range []float64{0.02, 0.01, 0.005, 0.0025} {
		res, err := parapriori.Mine(data, parapriori.MineOptions{MinSupport: minsup})
		if err != nil {
			log.Fatalf("mining at %v: %v", minsup, err)
		}
		cands := 0
		for _, p := range res.Passes {
			if p.K >= 2 {
				cands += p.Candidates
			}
		}
		fmt.Printf("  %-8.4f %-12d %-10d %-7d\n", minsup, cands, res.NumFrequent(), len(res.Passes))
	}

	// Operating point: mine at 0.5% support, report the strongest rules.
	res, err := parapriori.Mine(data, parapriori.MineOptions{MinSupport: 0.005})
	if err != nil {
		log.Fatalf("mining: %v", err)
	}
	rules, err := parapriori.GenerateRules(res, 0.9)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}
	fmt.Printf("\n%d rules at 0.5%% support / 90%% confidence; strongest 10:\n", len(rules))
	for i, r := range rules {
		if i >= 10 {
			break
		}
		fmt.Printf("  %2d. %v\n", i+1, r)
	}
}
