// Scalestudy compares all five parallel formulations — CD, DD, DD+comm,
// IDD and HD — on one dataset across machine sizes, printing a miniature
// version of the paper's Figure 10 and verifying that every algorithm
// mines exactly the same frequent itemsets.
package main

import (
	"fmt"
	"log"

	"parapriori"
)

func main() {
	gen := parapriori.DefaultGen()
	gen.NumTransactions = 16000
	gen.NumItems = 400
	gen.NumPatterns = 300
	gen.AvgTxnLen = 12
	gen.AvgPatternLen = 4
	data, err := parapriori.Generate(gen)
	if err != nil {
		log.Fatalf("generating data: %v", err)
	}

	const minsup = 0.01
	serial, err := parapriori.Mine(data, parapriori.MineOptions{MinSupport: minsup})
	if err != nil {
		log.Fatalf("serial mining: %v", err)
	}
	fmt.Printf("%d transactions, minsup %.2f%%: %d frequent itemsets (serial reference)\n\n",
		data.Len(), minsup*100, serial.NumFrequent())

	algos := []parapriori.Algorithm{
		parapriori.CD, parapriori.DD, parapriori.DDComm, parapriori.IDD, parapriori.HD,
	}
	fmt.Printf("virtual response time (s) on the emulated Cray T3E:\n")
	fmt.Printf("%-4s", "P")
	for _, a := range algos {
		fmt.Printf(" %-9s", a)
	}
	fmt.Println()

	for _, procs := range []int{2, 4, 8, 16} {
		fmt.Printf("%-4d", procs)
		for _, algo := range algos {
			rep, err := parapriori.MineParallel(data, parapriori.ParallelOptions{
				MineOptions: parapriori.MineOptions{MinSupport: minsup},
				Algorithm:   algo,
				Procs:       procs,
			})
			if err != nil {
				log.Fatalf("%s on %d procs: %v", algo, procs, err)
			}
			if rep.Result.NumFrequent() != serial.NumFrequent() {
				log.Fatalf("%s on %d procs mined %d itemsets, serial found %d",
					algo, procs, rep.Result.NumFrequent(), serial.NumFrequent())
			}
			fmt.Printf(" %-9.4f", rep.ResponseTime)
		}
		fmt.Println()
	}
	fmt.Println("\nall parallel runs mined exactly the serial algorithm's itemsets")
}
