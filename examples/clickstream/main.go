// Clickstream mines page-visit sessions — a sparse, wide-vocabulary
// workload — with the Hybrid Distribution algorithm on an emulated
// 32-processor machine, and shows what HD's dynamic grid does pass by
// pass: wide candidate partitioning while candidate sets are huge,
// collapsing to pure Count Distribution as they thin out.
package main

import (
	"fmt"
	"log"

	"parapriori"
)

func main() {
	// Sessions over a 2000-page site: short transactions, wide vocabulary.
	gen := parapriori.DefaultGen()
	gen.NumTransactions = 30000
	gen.NumItems = 2000
	gen.NumPatterns = 800
	gen.AvgTxnLen = 8
	gen.AvgPatternLen = 3
	gen.Seed = 42
	sessions, err := parapriori.Generate(gen)
	if err != nil {
		log.Fatalf("generating sessions: %v", err)
	}
	fmt.Printf("%d sessions over %d pages, avg %.1f pages/session\n\n",
		sessions.Len(), sessions.NumItems, sessions.AvgLen())

	rep, err := parapriori.MineParallel(sessions, parapriori.ParallelOptions{
		MineOptions: parapriori.MineOptions{MinSupport: 0.002},
		Algorithm:   parapriori.HD,
		Procs:       32,
		HDThreshold: 3000, // at least 3000 candidates per grid row
	})
	if err != nil {
		log.Fatalf("parallel mining: %v", err)
	}

	fmt.Printf("HD on %d emulated processors (%s): %d frequent page-sets, %.4fs virtual response\n\n",
		rep.P, rep.Params.Machine.Name, rep.Result.NumFrequent(), rep.ResponseTime)
	fmt.Printf("%-5s %-8s %-11s %-10s %-10s %-12s\n",
		"pass", "grid", "candidates", "frequent", "cand-imb", "moved-bytes")
	for _, p := range rep.Passes {
		fmt.Printf("%-5d %-8s %-11d %-10d %-10.3f %-12d\n",
			p.K, fmt.Sprintf("%dx%d", p.GridRows, p.GridCols),
			p.Candidates, p.Frequent, p.CandImbalance, p.BytesMoved)
	}

	// The mined navigation rules, strongest first.
	rules, err := parapriori.GenerateRules(rep.Result, 0.8)
	if err != nil {
		log.Fatalf("rules: %v", err)
	}
	fmt.Printf("\nnavigation rules at 80%% confidence: %d; first 5:\n", len(rules))
	for i, r := range rules {
		if i >= 5 {
			break
		}
		fmt.Printf("  pages %v are followed by %v (%.0f%% of sessions, %.0f%% confidence)\n",
			r.Antecedent, r.Consequent, r.Support*100, r.Confidence*100)
	}
}
