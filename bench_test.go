package parapriori

import (
	"fmt"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/experiments"
)

// ----------------------------------------------------------------------
// One benchmark per table/figure of the paper's evaluation.  Each bench
// regenerates its table or figure through the same harness cmd/experiments
// uses, at a reduced (Quick) workload so `go test -bench` stays tractable;
// run `cmd/experiments -run all` for the full-size series recorded in
// EXPERIMENTS.md.
// ----------------------------------------------------------------------

func benchExperiment(b *testing.B, name string) {
	n, ok := experiments.Lookup(name)
	if !ok {
		b.Fatalf("experiment %q not registered", name)
	}
	cfg := experiments.Config{Scale: 0.15, Quick: true, Seed: 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := n.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 && len(res.TableRows) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable2HDConfig regenerates Table II: HD's per-pass grid choice.
func BenchmarkTable2HDConfig(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkFig10Scaleup regenerates Figure 10: CD/DD/DD+comm/IDD/HD
// response times with fixed transactions per processor.
func BenchmarkFig10Scaleup(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkFig11LeafVisits regenerates Figure 11: distinct leaf visits per
// transaction, DD vs IDD.
func BenchmarkFig11LeafVisits(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12CandidateSweep regenerates Figure 12: the SP2 sweep where
// memory-capped CD pays multi-scan I/O.
func BenchmarkFig12CandidateSweep(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13Speedup regenerates Figure 13: fixed-problem speedups.
func BenchmarkFig13Speedup(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14TransactionSweep regenerates Figure 14: runtime vs N.
func BenchmarkFig14TransactionSweep(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15CandidateScaling regenerates Figure 15: runtime vs M.
func BenchmarkFig15CandidateScaling(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkAnalysisVij exercises the Section IV cost model comparison.
func BenchmarkAnalysisVij(b *testing.B) { benchExperiment(b, "model") }

// BenchmarkAblations exercises the design-decision ablations: HD's G sweep,
// the free-communication baseline, and the overlap on/off comparison.
func BenchmarkAblations(b *testing.B) { benchExperiment(b, "ablate") }

// BenchmarkHPAStudy measures the Section III-E HPA-vs-IDD communication
// comparison.
func BenchmarkHPAStudy(b *testing.B) { benchExperiment(b, "hpa") }

// ----------------------------------------------------------------------
// Micro-benchmarks for the core operations the figures are built from.
// ----------------------------------------------------------------------

// benchData builds the sparse benchmark workload through the same harness
// the BENCH_mining.json sweep uses (experiments.BenchWorkloads), so micro-
// benchmark numbers and the tracked artifact describe the same data.
func benchData(b *testing.B, n int) *Dataset {
	b.Helper()
	w := experiments.BenchWorkloads(experiments.Config{Seed: 7})[0]
	w.Gen.NumTransactions = n
	data, err := experiments.BenchData(w)
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkSerialMine measures the serial Apriori pipeline end to end.
func BenchmarkSerialMine(b *testing.B) {
	data := benchData(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Mine(data, MineOptions{MinSupport: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallel measures each formulation on an 8-processor emulated
// machine with the same workload, so their real (wall-clock) costs are
// directly comparable.
func BenchmarkParallel(b *testing.B) {
	data := benchData(b, 4000)
	for _, algo := range []Algorithm{CD, DD, DDComm, IDD, HD} {
		b.Run(string(algo), func(b *testing.B) {
			var virtual float64
			for i := 0; i < b.N; i++ {
				rep, err := MineParallel(data, ParallelOptions{
					MineOptions: MineOptions{MinSupport: 0.01},
					Algorithm:   algo,
					Procs:       8,
				})
				if err != nil {
					b.Fatal(err)
				}
				virtual = rep.ResponseTime
			}
			b.ReportMetric(virtual*1e3, "virtual-ms")
		})
	}
}

// BenchmarkRuleGeneration measures ap-genrules over a mined result.
func BenchmarkRuleGeneration(b *testing.B) {
	data := benchData(b, 4000)
	res, err := Mine(data, MineOptions{MinSupport: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRules(res, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatagen measures the synthetic workload generator itself.
func BenchmarkDatagen(b *testing.B) {
	gen := DefaultGen()
	gen.NumTransactions = 10000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Seed = int64(i + 1)
		if _, err := Generate(gen); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeafSizeAblation sweeps the hash tree's MaxLeaf (the S knob of
// the Section IV analysis): larger leaves mean fewer, fuller leaf checks —
// the trade-off DESIGN.md calls out as ablation target 5.
func BenchmarkLeafSizeAblation(b *testing.B) {
	data := benchData(b, 4000)
	for _, leaf := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("S=%d", leaf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Mine(data, MineOptions{MinSupport: 0.01, MaxLeafSize: leaf}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngines compares the pluggable counting engines on the serial
// miner, with allocation counts — the real-time counterpart of the virtual
// numbers in BENCH_mining.json (regenerate with scripts/bench_mining.sh).
func BenchmarkEngines(b *testing.B) {
	data := benchData(b, 4000)
	for _, eng := range CountEngines() {
		b.Run(eng, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Mine(data, MineOptions{MinSupport: 0.01, Engine: eng}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCountingMethod compares the candidate hash tree against Section
// II's "one naive way" — matching every transaction against every candidate
// directly.  The gap is the data structure's entire reason to exist.
func BenchmarkCountingMethod(b *testing.B) {
	data := benchData(b, 1500)
	b.Run("hashtree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Mine(data, MineOptions{MinSupport: 0.01}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apriori.MineNaive(data, apriori.Params{MinSupport: 0.01}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDHP measures the DHP pair-hash filter's effect on end-to-end
// serial mining (it shrinks C2 before the pass-2 tree is built).
func BenchmarkDHP(b *testing.B) {
	data := benchData(b, 4000)
	for _, buckets := range []int{0, 1 << 16} {
		name := "off"
		if buckets > 0 {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Mine(data, MineOptions{MinSupport: 0.01, DHPBuckets: buckets}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelRuleGeneration measures the emulated parallel rule step.
func BenchmarkParallelRuleGeneration(b *testing.B) {
	data := benchData(b, 4000)
	res, err := Mine(data, MineOptions{MinSupport: 0.01})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateRulesOn(res, RuleGenOptions{Procs: 8, MinConfidence: 0.5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFanoutAblation sweeps the hash-table width of internal nodes;
// small fanouts saturate the tree (L << C) and inflate leaf checks.
func BenchmarkFanoutAblation(b *testing.B) {
	data := benchData(b, 4000)
	for _, fanout := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("H=%d", fanout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Mine(data, MineOptions{MinSupport: 0.01, HashTreeFanout: fanout}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
