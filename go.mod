module parapriori

go 1.22
