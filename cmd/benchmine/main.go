// Command benchmine runs the counting-engine benchmark sweep — every
// registered engine (hashtree, trie, bitset) × dataset × minimum support on
// a parallel CD run — and writes the result as BENCH_mining.json.
//
// The sweep runs on the emulated cluster's virtual clock, so for a fixed
// seed the output bytes are deterministic (allocation counts aside): the
// committed BENCH_mining.json is a tracked perf trajectory, and CI compares
// a fresh -short run against it to catch regressions.
//
// Usage:
//
//	benchmine                      # full sweep, writes BENCH_mining.json
//	benchmine -short               # first support point per dataset
//	benchmine -o /tmp/bench.json -scale 0.5 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"parapriori/internal/experiments"
)

func main() {
	var (
		out   = flag.String("o", "BENCH_mining.json", "output file")
		scale = flag.Float64("scale", 1, "workload scale factor")
		seed  = flag.Int64("seed", 7, "workload seed")
		short = flag.Bool("short", false, "sweep only the first support point per dataset")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: benchmine [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cfg := experiments.Config{Scale: *scale, Seed: *seed, Quick: *short}
	rep, err := experiments.EngineBench(cfg)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}

	for _, c := range rep.Cells {
		fmt.Printf("%-12s minsup=%-7.4g %-9s response=%.6fs count=%.6fs build=%.6fs txn/s=%.0f\n",
			c.Dataset, c.Support, c.Engine, c.ResponseSec, c.CountSec, c.BuildSec, c.TxnPerSec)
	}
	for _, s := range rep.Speedup {
		fmt.Printf("%-12s minsup=%-7.4g %-9s count ×%.2f response ×%.2f\n",
			s.Dataset, s.Support, s.Engine, s.CountSpeedup, s.ResponseSpeedup)
	}
	fmt.Printf("wrote %s (%d cells)\n", *out, len(rep.Cells))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchmine: %v\n", err)
	os.Exit(1)
}
