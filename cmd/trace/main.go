// Command trace inspects span traces saved by `parminer -trace out.json`:
// it prints the per-pass cost-attribution table (the measured counterpart of
// the paper's parallel-runtime decomposition), renders a text Gantt chart of
// the leaf compute/send/idle slices, or re-emits the trace as normalized,
// byte-deterministic Perfetto JSON.
//
// Usage:
//
//	parminer -algo idd -p 8 -minsup 0.01 -trace trace.json t15i6.dat
//	trace trace.json                     # attribution table (the default)
//	trace -timeline -width 120 trace.json
//	trace -perfetto normalized.json trace.json
//
// The Perfetto output loads in ui.perfetto.dev or chrome://tracing: one
// process per rank, structural spans (run → pass → section) on one thread
// track and the leaf slices on another.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"parapriori/internal/obsv"
)

func main() {
	var (
		attrib   = flag.Bool("attrib", false, "print the per-pass cost-attribution table (default action)")
		timeline = flag.Bool("timeline", false, "render the leaf slices as a text Gantt chart")
		width    = flag.Int("width", 100, "timeline width in columns")
		perfetto = flag.String("perfetto", "", "re-emit the trace as normalized Perfetto JSON to this file")
		hist     = flag.Bool("hist", false, "print the virtual-time pass-duration histogram (log-2 buckets) with per-pass p50/p95/p99 lines")
		flight   = flag.Int("flight", 0, "print the n most recently completed spans (a flight-ring view of any trace)")
	)
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: trace [flags] <trace.json>")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	t, err := obsv.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	did := false
	if *perfetto != "" {
		out, err := os.Create(*perfetto)
		if err != nil {
			fatal(err)
		}
		if err := obsv.WriteTrace(out, t); err != nil {
			out.Close()
			fatal(err)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		did = true
	}
	if *hist {
		if err := obsv.WriteHistogram(os.Stdout, obsv.PassHistogram(t)); err != nil {
			fatal(err)
		}
		// Per-pass percentile lines over the per-rank pass durations: the
		// nearest-rank quantiles are exact over the sample, so a seeded run
		// prints identical lines every time.
		seen := make(map[int]bool)
		var ks []int
		for _, s := range t.Spans {
			if s.Cat != obsv.CatPass {
				continue
			}
			v, ok := s.Arg("k")
			if !ok {
				continue
			}
			k, err := strconv.Atoi(v)
			if err != nil {
				continue
			}
			if !seen[k] {
				seen[k] = true
				ks = append(ks, k)
			}
		}
		sort.Ints(ks)
		for _, k := range ks {
			d := obsv.PassDurations(t, k)
			fmt.Printf("pass k=%-3d n=%-4d p50=%.6f p95=%.6f p99=%.6f (seconds)\n",
				k, len(d), obsv.Quantile(d, 0.50), obsv.Quantile(d, 0.95), obsv.Quantile(d, 0.99))
		}
		did = true
	}
	if *flight > 0 {
		// A flight-ring view of any trace: the n spans that completed last,
		// oldest first — what a /debug/flight dump keeps per rank.
		spans := append([]obsv.Span(nil), t.Spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].End < spans[j].End })
		if len(spans) > *flight {
			spans = spans[len(spans)-*flight:]
		}
		for _, s := range spans {
			fmt.Printf("rank %-3d [%12.6f, %12.6f] %-8s %s\n", s.Rank, s.Start, s.End, s.Cat, s.Name)
		}
		did = true
	}
	if *timeline {
		if err := obsv.WriteTimeline(os.Stdout, t, *width); err != nil {
			fatal(err)
		}
		did = true
	}
	if *attrib || !did {
		if algo, ok := t.MetaValue("algo"); ok {
			p, _ := t.MetaValue("p")
			fmt.Printf("algorithm %s on %s procs (%s clock), %d spans\n", algo, p, t.Clock, len(t.Spans))
		}
		if err := obsv.WriteAttribution(os.Stdout, obsv.Attribution(t)); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "trace: %v\n", err)
	os.Exit(1)
}
