// Command parminer mines a transaction file with one of the parallel
// Apriori formulations on the emulated message-passing machine, reporting
// both the mined itemsets and the parallel behaviour (virtual response
// time, per-pass grid configuration, load imbalance, communication volume).
//
// Usage:
//
//	parminer -algo hd -p 64 -minsup 0.001 t15i6.dat
//	parminer -algo hpa -p 8 -minsup 0.01 t15i6.dat
//	parminer -algo idd -p 16 -machine sp2 -minsup 0.005 -passes t15i6.dat
//	parminer -algo idd -p 8 -minsup 0.01 -trace trace.json t15i6.dat
//	parminer -algo cd -p 16 -minsup 0.01 -backend ooc -store big/
//
// With -store the transactions come from a partitioned on-disk dataset
// (written by datagen -store or parapriori.WritePartitionedDataset) instead
// of a flat file; -backend ooc mines it out of core, each emulated
// processor streaming its own partition files one block at a time.
//
// -trace writes the run's span trace as Perfetto-loadable JSON (inspect it
// with cmd/trace or load it at ui.perfetto.dev); -timeline renders the text
// Gantt chart.  A bounded flight recorder runs on every mine regardless of
// flags; -flight dumps its ring of most recent spans in the same format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"parapriori"
)

// machineNames lists the -machine spellings from the preset registry, so
// the flag stays in sync as models are added.
func machineNames() string {
	var names []string
	for _, p := range parapriori.Machines() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

// writeTrace saves an assembled span trace as Perfetto-loadable trace-event
// JSON.
func writeTrace(path string, t *parapriori.SpanTrace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := parapriori.WriteSpanTrace(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// emitJSON prints a machine-readable run summary.
func emitJSON(rep *parapriori.Report) {
	type readJSON struct {
		Partitions    int     `json:"partitions"`
		Blocks        int64   `json:"blocks"`
		Bytes         int64   `json:"bytes"`
		CRCRetries    int64   `json:"crcRetries"`
		Stalls        int64   `json:"stalls"`
		DecodeSeconds float64 `json:"decodeSeconds"`
	}
	type passJSON struct {
		K          int     `json:"k"`
		Grid       string  `json:"grid"`
		Candidates int     `json:"candidates"`
		Frequent   int     `json:"frequent"`
		TreeParts  int     `json:"treeParts"`
		CandImb    float64 `json:"candImbalance"`
		TimeImb    float64 `json:"timeImbalance"`
		BytesMoved int64   `json:"bytesMoved"`
		Response   float64 `json:"responseSeconds"`
		// Read carries the out-of-core read-path stats; omitted in-memory.
		Read *readJSON `json:"read,omitempty"`
	}
	readOf := func(r parapriori.ReadStats) *readJSON {
		if r.Blocks == 0 {
			return nil
		}
		return &readJSON{
			Partitions: r.Partitions, Blocks: r.Blocks, Bytes: r.Bytes,
			CRCRetries: r.CRCRetries, Stalls: r.Stalls, DecodeSeconds: r.DecodeSeconds,
		}
	}
	out := struct {
		Algorithm    string             `json:"algorithm"`
		Procs        int                `json:"procs"`
		Machine      string             `json:"machine"`
		Frequent     int                `json:"frequentItemsets"`
		ResponseSecs float64            `json:"responseSeconds"`
		Phases       map[string]float64 `json:"phaseShares"`
		Read         *readJSON          `json:"read,omitempty"`
		Passes       []passJSON         `json:"passes"`
	}{
		Algorithm:    string(rep.Algo),
		Procs:        rep.P,
		Machine:      rep.Params.Machine.Name,
		Frequent:     rep.Result.NumFrequent(),
		ResponseSecs: rep.ResponseTime,
		Phases:       rep.PhaseBreakdown(),
		Read:         readOf(rep.Read),
	}
	for _, p := range rep.Passes {
		out.Passes = append(out.Passes, passJSON{
			K: p.K, Grid: fmt.Sprintf("%dx%d", p.GridRows, p.GridCols),
			Candidates: p.Candidates, Frequent: p.Frequent, TreeParts: p.TreeParts,
			CandImb: p.CandImbalance, TimeImb: p.TimeImbalance,
			BytesMoved: p.BytesMoved, Response: p.ResponseTime,
			Read: readOf(p.Read),
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	var (
		algoName = flag.String("algo", "hd", "algorithm: cd, dd, ddcomm, idd, hd or hpa")
		procs    = flag.Int("p", 8, "number of emulated processors")
		minsup   = flag.Float64("minsup", 0.01, "minimum support (fraction)")
		machine  = flag.String("machine", "t3e", "machine model: "+machineNames())
		hdm      = flag.Int("m", 5000, "HD candidate threshold per grid row")
		fixedG   = flag.Int("g", 0, "pin HD's grid rows (0 = dynamic)")
		passes   = flag.Bool("passes", false, "print per-pass detail")
		timeline = flag.Bool("timeline", false, "render a per-processor virtual-time Gantt chart")
		traceOut = flag.String("trace", "", "write the run's span trace as Perfetto-loadable JSON to this file")
		flight   = flag.String("flight", "", "write the flight recorder's ring of recent spans as Perfetto-loadable JSON to this file")
		asJSON   = flag.Bool("json", false, "emit a JSON summary instead of text")
		itemsets = flag.Bool("itemsets", false, "print the frequent itemsets")
		engine   = flag.String("engine", "", "counting engine: "+strings.Join(parapriori.CountEngines(), ", ")+" (default hashtree; cd/idd/hd only)")
		storeDir = flag.String("store", "", "mine a partitioned dataset directory (datagen -store) instead of a transaction file")
		backend  = flag.String("backend", "", "execution backend: inmem (default) or ooc (out of core; requires -store, cd/idd/hd only)")
	)
	flag.Parse()

	var (
		data  *parapriori.Dataset
		src   parapriori.TxSource
		nTxns int
	)
	switch {
	case *storeDir != "":
		if flag.NArg() != 0 {
			fmt.Fprintln(os.Stderr, "parminer: -store and a transaction file are mutually exclusive")
			os.Exit(2)
		}
		store, err := parapriori.OpenPartitionedDataset(*storeDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
			os.Exit(1)
		}
		src = store
		nTxns = store.Info().NumTxns
	case flag.NArg() == 1:
		if *backend == "ooc" {
			fmt.Fprintln(os.Stderr, "parminer: -backend ooc requires -store")
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
			os.Exit(1)
		}
		d, err := parapriori.ReadDataset(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
			os.Exit(1)
		}
		data = d
		nTxns = d.Len()
	default:
		fmt.Fprintln(os.Stderr, "usage: parminer [flags] <transactions.dat>\n       parminer [flags] -store <dir>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	preset, ok := parapriori.MachineByName(*machine)
	if !ok {
		fmt.Fprintf(os.Stderr, "parminer: unknown machine %q (want %s)\n", *machine, machineNames())
		os.Exit(2)
	}
	mach := preset.Machine()

	// The flight recorder is always on: a bounded ring of recent spans per
	// rank, teed alongside the optional full collector.  -flight dumps it in
	// the same Perfetto format as -trace.
	var col *parapriori.SpanCollector
	if *traceOut != "" {
		col = parapriori.NewSpanCollector()
	}
	fr := parapriori.NewFlightRecorder(0)
	popt := parapriori.ParallelOptions{
		MineOptions: parapriori.MineOptions{MinSupport: *minsup, Engine: *engine, Source: src},
		Algorithm:   parapriori.Algorithm(*algoName),
		Procs:       *procs,
		Machine:     mach,
		HDThreshold: *hdm,
		FixedG:      *fixedG,
		Trace:       *timeline,
		Backend:     *backend,
	}
	if col != nil {
		popt.Recorder = parapriori.TeeRecorders(fr, col)
	} else {
		popt.Recorder = fr
	}
	rep, err := parapriori.MineParallel(data, popt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
		os.Exit(1)
	}

	if col != nil {
		if err := writeTrace(*traceOut, col.Trace()); err != nil {
			fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
			os.Exit(1)
		}
	}
	if *flight != "" {
		if err := writeTrace(*flight, fr.Trace()); err != nil {
			fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
			os.Exit(1)
		}
	}

	if *asJSON {
		emitJSON(rep)
		return
	}

	fmt.Printf("algorithm %s on %d procs (%s): %d transactions, minsup %.4g\n",
		rep.Algo, rep.P, mach.Name, nTxns, *minsup)
	fmt.Printf("frequent itemsets: %d\n", rep.Result.NumFrequent())
	fmt.Printf("virtual response time: %.6f s (emulated %v wall)\n", rep.ResponseTime, rep.Wall.Round(1e6))
	fmt.Printf("compute %.6f s, idle %.6f s, i/o %.6f s, sent %d MB in %d messages\n",
		rep.Total.ComputeTime, rep.Total.IdleTime, rep.Total.IOTime,
		rep.Total.BytesSent>>20, rep.Total.MessagesSent)
	if rep.Read.Blocks > 0 {
		fmt.Printf("ooc read: %d partition opens, %d blocks (%d bytes), %d crc retries, %d stalls, decode %.6f s\n",
			rep.Read.Partitions, rep.Read.Blocks, rep.Read.Bytes,
			rep.Read.CRCRetries, rep.Read.Stalls, rep.Read.DecodeSeconds)
	}

	if *passes {
		ooc := rep.Read.Blocks > 0
		fmt.Printf("%-5s %-8s %-11s %-10s %-7s %-12s %-12s %-12s",
			"pass", "grid", "candidates", "frequent", "parts", "cand-imb", "time-imb", "moved-bytes")
		if ooc {
			fmt.Printf(" %-12s %-10s", "read-bytes", "decode-s")
		}
		fmt.Println()
		for _, p := range rep.Passes {
			fmt.Printf("%-5d %-8s %-11d %-10d %-7d %-12.4f %-12.4f %-12d",
				p.K, fmt.Sprintf("%dx%d", p.GridRows, p.GridCols),
				p.Candidates, p.Frequent, p.TreeParts,
				p.CandImbalance, p.TimeImbalance, p.BytesMoved)
			if ooc {
				fmt.Printf(" %-12d %-10.6f", p.Read.Bytes, p.Read.DecodeSeconds)
			}
			fmt.Println()
		}
	}
	if *timeline {
		if err := parapriori.TraceTimeline(os.Stdout, rep, 100); err != nil {
			fmt.Fprintf(os.Stderr, "parminer: %v\n", err)
			os.Exit(1)
		}
	}
	if *itemsets {
		for _, level := range rep.Result.Levels {
			for _, fs := range level {
				fmt.Printf("%v %d\n", fs.Items, fs.Count)
			}
		}
	}
}
