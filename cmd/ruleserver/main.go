// Command ruleserver serves association-rule recommendations over HTTP from
// frequent itemsets saved by `apriori -save`.  Rules are generated at
// startup, indexed into shards, and served lock-free from an atomic snapshot;
// re-mining the data and then sending SIGHUP (or POST /reload) hot-swaps the
// fresh rules in with zero downtime.
//
// Usage:
//
//	apriori -minsup 0.001 -save freq.txt t15i6.dat
//	ruleserver -load freq.txt -minconf 0.8 -addr :8080
//
//	curl 'localhost:8080/recommend?items=3,4&k=5'
//	curl 'localhost:8080/rules?item=3&limit=20'
//	curl 'localhost:8080/metrics'
//	curl -X POST 'localhost:8080/reload'      # or: kill -HUP <pid>
//
// Endpoints: GET /recommend, GET /rules, GET /healthz, GET /metrics,
// POST /reload.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"parapriori"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		load    = flag.String("load", "", "frequent itemsets saved by apriori -save (required)")
		minconf = flag.Float64("minconf", 0.8, "minimum confidence for generated rules")
		shards  = flag.Int("shards", 0, "index shards (0 = default)")
		workers = flag.Int("workers", 0, "query worker pool size (0 = inline execution)")
		cache   = flag.Int("cache", 0, "query cache entries (0 = default, negative = disabled)")
	)
	flag.Parse()
	if *load == "" {
		fmt.Fprintln(os.Stderr, "ruleserver: -load <saved result> is required")
		flag.Usage()
		os.Exit(2)
	}

	opt := parapriori.ServeOptions{Shards: *shards, Workers: *workers, CacheSize: *cache}
	build := func() (*parapriori.RuleIndex, error) {
		f, err := os.Open(*load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		res, err := parapriori.ReadResult(f)
		if err != nil {
			return nil, err
		}
		rs, err := parapriori.GenerateRules(res, *minconf)
		if err != nil {
			return nil, err
		}
		return parapriori.BuildIndex(rs, opt), nil
	}

	srv := parapriori.NewServer(opt)
	defer srv.Close()
	ix, err := build()
	if err != nil {
		log.Fatalf("ruleserver: %v", err)
	}
	gen := srv.Publish(ix)
	log.Printf("ruleserver: serving %d rules (generation %d) on %s", ix.NumRules(), gen, *addr)

	// SIGHUP triggers the same rebuild-and-swap as POST /reload.  A plain
	// signal channel is the idiomatic shape here; this is real-OS territory,
	// outside the simulation's determinism rules.
	hup := make(chan os.Signal, 1) //checkinv:allow rawchan signal.Notify requires a raw channel
	signal.Notify(hup, syscall.SIGHUP)
	go func() { //checkinv:allow rawchan serving runs on the real OS, not the emulated cluster
		for range hup {
			ix, err := build()
			if err != nil {
				log.Printf("ruleserver: SIGHUP reload failed: %v", err)
				continue
			}
			gen := srv.Publish(ix)
			log.Printf("ruleserver: SIGHUP reloaded %d rules (generation %d)", ix.NumRules(), gen)
		}
	}()

	log.Fatal(http.ListenAndServe(*addr, srv.Handler(build)))
}
