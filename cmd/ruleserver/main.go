// Command ruleserver serves association-rule recommendations over HTTP from
// frequent itemsets saved by `apriori -save`.  Rules are generated at
// startup, indexed into shards, and served lock-free from an atomic snapshot;
// re-mining the data and then sending SIGHUP (or POST /reload) hot-swaps the
// fresh rules in with zero downtime.
//
// Single-node usage:
//
//	apriori -minsup 0.001 -save freq.txt t15i6.dat
//	ruleserver -load freq.txt -minconf 0.8 -addr :8080
//
//	curl 'localhost:8080/recommend?items=3,4&k=5'
//	curl 'localhost:8080/rules?item=3&limit=20'
//	curl 'localhost:8080/metrics'
//	curl -X POST 'localhost:8080/reload'      # or: kill -HUP <pid>
//
// Multi-node usage — the same binary runs the distributed tier.  Start one
// process per node, then a router that owns the rule set and shards it
// across them:
//
//	ruleserver -node -addr :9001 &
//	ruleserver -node -addr :9002 &
//	ruleserver -router -nodes localhost:9001,localhost:9002 -replicas 2 \
//	    -load freq.txt -minconf 0.8 -addr :8080
//
// -replicas R places every shard on its top-R nodes, so with R=2 any single
// node can die without a shard going dark: the router's failure detector
// marks it down, queries fail over to the surviving copy, and a background
// prober notices when it comes back.  -timeout bounds every router→node
// call; a leg that misses the deadline is retried once on the next live
// replica, and slow (not dead) nodes are raced by hedged requests.
//
//	curl 'localhost:8080/recommend?items=3,4&k=5'   # scatter-gather top-K
//	curl 'localhost:8080/placement'                 # shard → node map
//	curl 'localhost:8080/metrics'                   # fleet-wide metrics
//	curl -X POST 'localhost:8080/reload'            # delta publish (add ?full=1
//	                                                # for a full rebuild); or
//	                                                # kill -HUP <router pid>
//
// Node processes need no -load: the router ships each node the antecedent
// groups its shards own, and on reload ships only the groups whose canonical
// bytes changed.  Answers are bit-identical to the single-node server over
// the same rule set.
//
// Endpoints (single node and per-node): GET /recommend, /rules, /healthz,
// /metrics, /debug/flight, POST /reload; node mode adds POST /shard/prepare,
// /shard/commit, GET /shard/state.  Router: GET /recommend, /healthz,
// /metrics, /placement, /debug/flight, POST /reload.
//
// Observability: /metrics answers JSON by default and Prometheus text
// exposition when the request carries Accept: text/plain — point a
// Prometheus scrape job straight at it in every mode:
//
//	curl -H 'Accept: text/plain' 'localhost:8080/metrics'
//
// Every mode also runs an always-on flight recorder: a bounded ring of the
// most recently completed request/publish spans.  GET /debug/flight dumps it
// as Perfetto-loadable JSON (?format=attrib for the cost-attribution table),
// and the /metrics JSON carries per-bucket latency exemplars whose span IDs
// resolve against the dump — a slow p99 query traces back to its causal
// spans (cache miss, fan-out legs) without any tracing having been enabled
// in advance:
//
//	curl 'localhost:8080/debug/flight' > flight.json
//
// -pprof ADDR additionally serves net/http/pprof on a separate listener
// (keep it on localhost; it is operator-only):
//
//	ruleserver -load freq.txt -addr :8080 -pprof localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only by -pprof's listener
	"os"
	"os/signal"
	"strings"
	"syscall"

	"parapriori"
	"parapriori/internal/distserve"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		load    = flag.String("load", "", "frequent itemsets saved by apriori -save (required unless -node)")
		minconf = flag.Float64("minconf", 0.8, "minimum confidence for generated rules")
		shards  = flag.Int("shards", 0, "index shards within one server (0 = default)")
		workers = flag.Int("workers", 0, "query worker pool size (0 = inline execution)")
		cache   = flag.Int("cache", 0, "query cache entries (0 = default, negative = disabled)")

		nodeMode   = flag.Bool("node", false, "run as a shard node: serve shards assigned by a router, no -load needed")
		routerMode = flag.Bool("router", false, "run as the router: shard -load rules across -nodes and scatter-gather queries")
		nodeList   = flag.String("nodes", "", "comma-separated node base URLs (router mode, required)")
		cshards    = flag.Int("cluster-shards", 0, "shards to distribute across the nodes (router mode, 0 = default)")
		seed       = flag.Uint64("seed", 0, "placement hash seed (router mode, 0 = fixed default)")
		replicas   = flag.Int("replicas", 1, "copies of each shard across the nodes (router mode; 2 survives any single node failure)")
		timeout    = flag.Duration("timeout", 0, "per-call deadline for router→node requests (router mode, 0 = default)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this separate address (e.g. localhost:6060; off by default)")
	)
	flag.Parse()
	if *nodeMode && *routerMode {
		fmt.Fprintln(os.Stderr, "ruleserver: -node and -router are mutually exclusive")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		// The profiling surface stays off the serving listener: it is
		// operator-only, typically bound to localhost while the API is not.
		go func() { //checkinv:allow rawchan the pprof listener is a second real-OS HTTP server
			log.Printf("ruleserver: pprof on http://%s/debug/pprof/", *pprofAddr)
			log.Fatal(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	sopt := serve.Options{Shards: *shards, Workers: *workers, CacheSize: *cache}

	if *nodeMode {
		runNode(*addr, sopt)
		return
	}
	if *routerMode {
		copt := distserve.Options{
			Shards:         *cshards,
			Seed:           *seed,
			Replicas:       *replicas,
			RequestTimeout: *timeout,
			Node:           sopt,
		}
		runRouter(*addr, *load, *minconf, *nodeList, copt)
		return
	}

	if *load == "" {
		fmt.Fprintln(os.Stderr, "ruleserver: -load <saved result> is required")
		flag.Usage()
		os.Exit(2)
	}
	opt := parapriori.ServeOptions(sopt)
	build := func() (*parapriori.RuleIndex, error) {
		rs, err := loadRules(*load, *minconf)
		if err != nil {
			return nil, err
		}
		return parapriori.BuildIndex(rs, opt), nil
	}

	srv := parapriori.NewServer(opt)
	defer srv.Close()
	ix, err := build()
	if err != nil {
		log.Fatalf("ruleserver: %v", err)
	}
	gen := srv.Publish(ix)
	log.Printf("ruleserver: serving %d rules (generation %d) on %s", ix.NumRules(), gen, *addr)

	onHUP(func() {
		ix, err := build()
		if err != nil {
			log.Printf("ruleserver: SIGHUP reload failed: %v", err)
			return
		}
		gen := srv.Publish(ix)
		log.Printf("ruleserver: SIGHUP reloaded %d rules (generation %d)", ix.NumRules(), gen)
	})

	log.Fatal(http.ListenAndServe(*addr, srv.Handler(build)))
}

// loadRules reads a saved mining result and generates rules from it.
func loadRules(path string, minconf float64) ([]rules.Rule, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res, err := parapriori.ReadResult(f)
	if err != nil {
		return nil, err
	}
	return parapriori.GenerateRules(res, minconf)
}

// runNode serves shards on behalf of a router.  The node starts empty and
// receives its content through the publish protocol.
func runNode(addr string, sopt serve.Options) {
	n := distserve.NewNode(addr, sopt)
	defer n.Close()
	log.Printf("ruleserver: node awaiting shard assignments on %s", addr)
	log.Fatal(http.ListenAndServe(addr, distserve.NodeHandler(n)))
}

// runRouter shards the rule set across the node fleet and serves
// scatter-gather queries.  SIGHUP (or POST /reload) regenerates the rules
// and publishes the delta.
func runRouter(addr, load string, minconf float64, nodeList string, opt distserve.Options) {
	if load == "" {
		fmt.Fprintln(os.Stderr, "ruleserver: -router requires -load <saved result>")
		os.Exit(2)
	}
	if strings.TrimSpace(nodeList) == "" {
		fmt.Fprintln(os.Stderr, "ruleserver: -router requires -nodes <url,url,...>")
		os.Exit(2)
	}
	var clients []distserve.Client
	for _, raw := range strings.Split(nodeList, ",") {
		if raw = strings.TrimSpace(raw); raw != "" {
			if opt.RequestTimeout > 0 {
				clients = append(clients, distserve.NewHTTPClientBudget(raw, opt.RequestTimeout))
			} else {
				clients = append(clients, distserve.NewHTTPClient(raw))
			}
		}
	}
	router, err := distserve.NewRouter(clients, opt)
	if err != nil {
		log.Fatalf("ruleserver: %v", err)
	}
	// The background prober is what notices a dead node recovering without
	// waiting for a live query to stumble into it.  It earns its keep at any
	// R (a healed node rejoins the rotation), so start it unconditionally.
	router.StartProber()
	defer router.StopProber()

	reload := func() ([]rules.Rule, error) { return loadRules(load, minconf) }
	rs, err := reload()
	if err != nil {
		log.Fatalf("ruleserver: %v", err)
	}
	stats, err := router.Publish(rs, true)
	if err != nil {
		log.Fatalf("ruleserver: initial publish: %v", err)
	}
	log.Printf("ruleserver: router on %s — %d rules in %d groups over %d nodes (%d shards × %d replicas, generation %d)",
		addr, len(rs), stats.Groups, stats.Nodes, len(router.Placement()), router.Metrics().Replicas, stats.Gen)

	onHUP(func() {
		rs, err := reload()
		if err != nil {
			log.Printf("ruleserver: SIGHUP reload failed: %v", err)
			return
		}
		stats, err := router.Publish(rs, false)
		if err != nil {
			log.Printf("ruleserver: SIGHUP publish: %v", err)
			return
		}
		log.Printf("ruleserver: SIGHUP published generation %d (delta: %d upserts, %d removes, %d bytes)",
			stats.Gen, stats.Upserts, stats.Removes, stats.Bytes)
	})

	log.Fatal(http.ListenAndServe(addr, router.Handler(reload)))
}

// onHUP runs f on every SIGHUP.  A plain signal channel is the idiomatic
// shape here; this is real-OS territory, outside the simulation's
// determinism rules.
func onHUP(f func()) {
	hup := make(chan os.Signal, 1) //checkinv:allow rawchan signal.Notify requires a raw channel
	signal.Notify(hup, syscall.SIGHUP)
	go func() { //checkinv:allow rawchan serving runs on the real OS, not the emulated cluster
		for range hup { //checkinv:allow rawchan draining the signal channel is the same real-OS territory
			f()
		}
	}()
}
