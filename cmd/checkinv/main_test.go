package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module with one in-scope walltime
// violation and one clean package, and returns its root.  Imports are
// stdlib-only so the source importer resolves them from any working
// directory.
func writeModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/core/core.go": `package core

import "time"

// Tick reads the wall clock — the seeded violation.
func Tick() time.Time { return time.Now() }
`,
		"internal/util/util.go": `package util

func Add(a, b int) int { return a + b }
`,
	}
	for name, content := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runIn invokes the driver in dir and returns (exit, stdout, stderr).
func runIn(t *testing.T, dir string, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(cwd)
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestEndToEndJSON(t *testing.T) {
	root := writeModule(t)
	cache := filepath.Join(root, ".cache")
	code, stdout, stderr := runIn(t, root, "-json", "-cache", cache, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (findings); stderr: %s", code, stderr)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, stdout)
	}
	if len(findings) != 1 || findings[0].Rule != "walltime" {
		t.Fatalf("findings = %+v, want exactly the seeded walltime violation", findings)
	}
	if findings[0].File != filepath.Join("internal", "core", "core.go") {
		t.Errorf("finding file = %q, want cwd-relative internal/core/core.go", findings[0].File)
	}
}

// TestEndToEndCacheWarm asserts the cold and warm runs print identical
// findings and that the warm run is served entirely from the cache.
func TestEndToEndCacheWarm(t *testing.T) {
	root := writeModule(t)
	cache := filepath.Join(root, ".cache")

	codeCold, outCold, errCold := runIn(t, root, "-timings", "-cache", cache, "./...")
	codeWarm, outWarm, errWarm := runIn(t, root, "-timings", "-cache", cache, "./...")
	if codeCold != 1 || codeWarm != 1 {
		t.Fatalf("exits = %d, %d, want 1, 1", codeCold, codeWarm)
	}
	if outCold != outWarm {
		t.Errorf("cold and warm findings differ:\ncold: %s\nwarm: %s", outCold, outWarm)
	}
	if !strings.Contains(errCold, "cache 0 hit") {
		t.Errorf("cold -timings = %q, want zero hits reported", errCold)
	}
	if !strings.Contains(errWarm, "0 miss") {
		t.Errorf("warm -timings = %q, want zero misses reported", errWarm)
	}
}

// TestEndToEndFix runs -fix on a temp copy and asserts the tree is clean
// afterwards, with the annotation inserted where the finding was.
func TestEndToEndFix(t *testing.T) {
	root := writeModule(t)
	cache := filepath.Join(root, ".cache")

	code, stdout, stderr := runIn(t, root, "-fix", "-cache", cache, "./...")
	if code != 0 {
		t.Fatalf("-fix exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "annotated") {
		t.Errorf("-fix stdout = %q, want the annotated file reported", stdout)
	}
	data, err := os.ReadFile(filepath.Join(root, "internal", "core", "core.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "//checkinv:allow walltime") {
		t.Errorf("fixed file lacks the inserted directive:\n%s", data)
	}

	// The annotated tree must now be clean — and the annotation edit must
	// invalidate the cached entry rather than replay the stale finding.
	code, stdout, stderr = runIn(t, root, "-cache", cache, "./...")
	if code != 0 {
		t.Errorf("post-fix run exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

// TestEndToEndDebt asserts -debt reports the annotation with its rule and
// usage state, in both text and JSON forms.
func TestEndToEndDebt(t *testing.T) {
	root := writeModule(t)
	cache := filepath.Join(root, ".cache")
	if code, _, stderr := runIn(t, root, "-fix", "-cache", cache, "./..."); code != 0 {
		t.Fatalf("-fix exit = %d; stderr: %s", code, stderr)
	}

	code, stdout, stderr := runIn(t, root, "-debt", "-cache", cache, "./...")
	if code != 0 {
		t.Fatalf("-debt exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "walltime") || !strings.Contains(stdout, "used") {
		t.Errorf("-debt output = %q, want the walltime site reported as used", stdout)
	}
	if !strings.Contains(stdout, "1 allow site(s)") {
		t.Errorf("-debt output = %q, want the summary line", stdout)
	}

	code, stdout, _ = runIn(t, root, "-debt", "-json", "-cache", cache, "./...")
	if code != 0 {
		t.Fatalf("-debt -json exit = %d", code)
	}
	var entries []struct {
		File  string   `json:"file"`
		Line  int      `json:"line"`
		Rules []string `json:"rules"`
		Used  bool     `json:"used"`
	}
	if err := json.Unmarshal([]byte(stdout), &entries); err != nil {
		t.Fatalf("-debt -json output is not JSON: %v\n%s", err, stdout)
	}
	if len(entries) != 1 || !entries[0].Used || entries[0].Rules[0] != "walltime" {
		t.Errorf("-debt -json entries = %+v, want one used walltime site", entries)
	}
}

// TestEndToEndFixturesStayRed mirrors the CI gate: the driver must exit 1
// on every analyzer's fixture directory.
func TestEndToEndFixturesStayRed(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range []string{"walltime", "mapiter", "rawchan", "floatcmp", "snapshotmut", "goroleak", "hotalloc"} {
		fixture := filepath.Join("internal", "checkinv", "testdata", "src", rule)
		code, stdout, stderr := runIn(t, repoRoot, "-allpkgs", "-cache", "off", fixture)
		if code != 1 {
			t.Errorf("%s fixture: exit = %d, want 1\nstdout: %s\nstderr: %s", rule, code, stdout, stderr)
		}
		if !strings.Contains(stdout, "["+rule+"]") {
			t.Errorf("%s fixture: no [%s] finding in output:\n%s", rule, rule, stdout)
		}
	}
}

func TestListRules(t *testing.T) {
	code, stdout, _ := runIn(t, t.TempDir(), "-list")
	if code != 0 {
		t.Fatalf("-list exit = %d", code)
	}
	for _, rule := range []string{"walltime", "mapiter", "rawchan", "floatcmp", "snapshotmut", "goroleak", "hotalloc"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-list output lacks %s:\n%s", rule, stdout)
		}
	}
}
