// Command checkinv enforces the project's simulation invariants (walltime,
// mapiter, rawchan, floatcmp, snapshotmut, goroleak, hotalloc) over the
// given packages.  It is zero-dependency — stdlib go/parser + go/ast +
// go/types only — and is wired into CI ahead of the test suite.
//
// Usage:
//
//	go run ./cmd/checkinv ./...
//	go run ./cmd/checkinv -json internal/core
//	go run ./cmd/checkinv -disable mapiter,floatcmp ./...
//	go run ./cmd/checkinv -allpkgs internal/checkinv/testdata/src/walltime
//	go run ./cmd/checkinv -debt ./...
//	go run ./cmd/checkinv -fix ./...
//
// Findings print as "file:line: [rule] message"; the exit status is 1 when
// any finding survives, 2 on a loading error, 0 on a clean tree.  Rules are
// path-scoped (see DESIGN.md, "Correctness tooling"); -allpkgs applies
// every enabled rule to every matched package regardless of scope, which is
// how the fixture directories are exercised.  _test.go files are analyzed
// too by default (-tests=false restores source-only runs): a wall-clock
// read or a map-order dependence in a test is the same determinism bug in
// disguise.  Intentional sites are annotated in the source with
// //checkinv:allow <rule>; -fix inserts those annotations for the current
// findings, and -debt reports every annotation in the tree with its rule,
// age and reason, flagging stale ones.
//
// Packages whose content (including every module-internal dependency) is
// unchanged since the last run are served from a findings cache under
// -cache (default: a parapriori-checkinv directory in the user cache dir;
// "off" disables it) without being re-parsed or re-type-checked; -timings
// prints the hit/miss split and where the time went.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"parapriori/internal/checkinv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole driver, factored for the e2e tests: args excludes the
// program name; the return value is the process exit status.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("checkinv", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit findings (or -debt entries) as a JSON array")
		disable  = fs.String("disable", "", "comma-separated rules to skip")
		allPkgs  = fs.Bool("allpkgs", false, "apply rules to every package, ignoring path scopes")
		list     = fs.Bool("list", false, "list the available rules and exit")
		tests    = fs.Bool("tests", true, "also analyze _test.go files (in-package and external test packages)")
		cacheDir = fs.String("cache", "auto", `findings cache directory; "auto" picks the user cache dir, "off" disables caching`)
		fix      = fs.Bool("fix", false, "insert //checkinv:allow annotations for the findings instead of failing")
		debt     = fs.Bool("debt", false, "report every allow annotation (rule, used/stale, age, reason) instead of findings")
		timings  = fs.Bool("timings", false, "print cache and phase timings to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, az := range checkinv.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", az.Name, az.Doc)
		}
		return 0
	}

	analyzers := checkinv.Analyzers()
	if *disable != "" {
		off := map[string]bool{}
		for _, name := range strings.Split(*disable, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if checkinv.AnalyzerByName(name) == nil {
				fmt.Fprintf(stderr, "checkinv: unknown rule %q (see -list)\n", name)
				return 2
			}
			off[name] = true
		}
		var kept []*checkinv.Analyzer
		for _, az := range analyzers {
			if !off[az.Name] {
				kept = append(kept, az)
			}
		}
		analyzers = kept
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return fatal(stderr, err)
	}

	dir := *cacheDir
	switch dir {
	case "off":
		dir = ""
	case "auto":
		if base, err := os.UserCacheDir(); err == nil {
			dir = filepath.Join(base, "parapriori-checkinv")
		} else {
			dir = "" // no writable cache home: run uncached
		}
	}

	res, err := checkinv.RunTree(checkinv.RunOptions{
		Dir:       cwd,
		Patterns:  patterns,
		Analyzers: analyzers,
		AllPkgs:   *allPkgs,
		Tests:     *tests,
		CacheDir:  dir,
	})
	if err != nil {
		return fatal(stderr, err)
	}
	if res.Stats.Packages == 0 {
		fmt.Fprintln(stderr, "checkinv: no packages matched")
		return 2
	}
	for _, p := range res.Stats.TypeErrorPkgs {
		// Analysis proceeds on partial type info, but a package that does
		// not type-check can hide findings — say so rather than silently
		// reporting a clean bill.
		fmt.Fprintf(stderr, "checkinv: warning: %s, findings may be incomplete\n", p)
	}
	if *timings {
		s := res.Stats
		fmt.Fprintf(stderr, "checkinv: %d dir(s), %d package(s); cache %d hit / %d miss; load %v, analyze %v\n",
			s.Dirs, s.Packages, s.CacheHits, s.CacheMisses,
			s.LoadDuration.Round(1e6), s.AnalyzeDuration.Round(1e6))
	}

	if *debt {
		root, _, err := checkinv.ModuleRoot(cwd)
		if err != nil {
			return fatal(stderr, err)
		}
		entries := checkinv.DebtEntries(res.Allows, root)
		if *jsonOut {
			return emitJSON(stdout, stderr, entries)
		}
		checkinv.WriteDebt(stdout, entries)
		return 0
	}

	if *fix && len(res.Findings) > 0 {
		changed, err := checkinv.ApplyFixes(res.Findings)
		for _, f := range changed {
			fmt.Fprintf(stdout, "checkinv: annotated %s\n", relPath(cwd, f))
		}
		if err != nil {
			return fatal(stderr, err)
		}
		return 0
	}

	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(res.Findings))
		for _, f := range res.Findings {
			out = append(out, finding{
				File: relPath(cwd, f.Pos.Filename), Line: f.Pos.Line, Column: f.Pos.Column,
				Rule: f.Rule, Message: f.Message,
			})
		}
		if code := emitJSON(stdout, stderr, out); code != 0 {
			return code
		}
	} else {
		for _, f := range res.Findings {
			fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
		}
	}
	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "checkinv: %d finding(s)\n", len(res.Findings))
		}
		return 1
	}
	return 0
}

// emitJSON writes v as indented JSON; 0 on success.
func emitJSON(stdout, stderr io.Writer, v any) int {
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintf(stderr, "checkinv: %v\n", err)
		return 2
	}
	return 0
}

// fatal prints the error once under the checkinv: prefix (library errors
// already carry it) and returns the loader status.
func fatal(stderr io.Writer, err error) int {
	msg := err.Error()
	if !strings.HasPrefix(msg, "checkinv:") {
		msg = "checkinv: " + msg
	}
	fmt.Fprintln(stderr, msg)
	return 2
}

// relPath shortens absolute file names to cwd-relative ones for readable,
// clickable output.
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
