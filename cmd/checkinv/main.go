// Command checkinv enforces the project's simulation invariants (walltime,
// mapiter, rawchan, floatcmp) over the given packages.  It is zero-
// dependency — stdlib go/parser + go/ast + go/types only — and is wired
// into CI ahead of the test suite.
//
// Usage:
//
//	go run ./cmd/checkinv ./...
//	go run ./cmd/checkinv -json internal/core
//	go run ./cmd/checkinv -disable mapiter,floatcmp ./...
//	go run ./cmd/checkinv -allpkgs internal/checkinv/testdata/src/walltime
//
// Findings print as "file:line: [rule] message"; the exit status is 1 when
// any finding survives, 2 on a loading error, 0 on a clean tree.  Rules are
// path-scoped (see DESIGN.md, "Correctness tooling"); -allpkgs applies
// every enabled rule to every matched package regardless of scope, which is
// how the fixture directories are exercised.  _test.go files are analyzed
// too by default (-tests=false restores source-only runs): a wall-clock
// read or a map-order dependence in a test is the same determinism bug in
// disguise.  Intentional sites are annotated in the source with
// //checkinv:allow <rule>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"parapriori/internal/checkinv"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as a JSON array")
		disable = flag.String("disable", "", "comma-separated rules to skip")
		allPkgs = flag.Bool("allpkgs", false, "apply rules to every package, ignoring path scopes")
		list    = flag.Bool("list", false, "list the available rules and exit")
		tests   = flag.Bool("tests", true, "also analyze _test.go files (in-package and external test packages)")
	)
	flag.Parse()

	if *list {
		for _, az := range checkinv.Analyzers() {
			fmt.Printf("%-10s %s\n", az.Name, az.Doc)
		}
		return
	}

	analyzers := checkinv.Analyzers()
	if *disable != "" {
		off := map[string]bool{}
		for _, name := range strings.Split(*disable, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if checkinv.AnalyzerByName(name) == nil {
				fmt.Fprintf(os.Stderr, "checkinv: unknown rule %q (see -list)\n", name)
				os.Exit(2)
			}
			off[name] = true
		}
		var kept []*checkinv.Analyzer
		for _, az := range analyzers {
			if !off[az.Name] {
				kept = append(kept, az)
			}
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	loader := checkinv.NewLoader()
	loader.Tests = *tests
	pkgs, err := loader.Load(cwd, patterns)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "checkinv: no packages matched")
		os.Exit(2)
	}
	for _, pkg := range pkgs {
		// Analysis proceeds on partial type info, but a package that does
		// not type-check can hide findings — say so rather than silently
		// reporting a clean bill.
		if len(pkg.TypeErrors) > 0 {
			fmt.Fprintf(os.Stderr, "checkinv: warning: %s: %d type error(s), findings may be incomplete (first: %v)\n",
				pkg.Path, len(pkg.TypeErrors), pkg.TypeErrors[0])
		}
	}

	findings := checkinv.Run(pkgs, analyzers, *allPkgs)
	if *jsonOut {
		type finding struct {
			File    string `json:"file"`
			Line    int    `json:"line"`
			Column  int    `json:"column"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		}
		out := make([]finding, 0, len(findings))
		for _, f := range findings {
			out = append(out, finding{
				File: relPath(cwd, f.Pos.Filename), Line: f.Pos.Line, Column: f.Pos.Column,
				Rule: f.Rule, Message: f.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "checkinv: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d: [%s] %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Rule, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "checkinv: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// fatal prints the error once under the checkinv: prefix (library errors
// already carry it) and exits with the loader status.
func fatal(err error) {
	msg := err.Error()
	if !strings.HasPrefix(msg, "checkinv:") {
		msg = "checkinv: " + msg
	}
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(2)
}

// relPath shortens absolute file names to cwd-relative ones for readable,
// clickable output.
func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
