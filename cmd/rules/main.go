// Command rules generates association rules from frequent itemsets saved by
// `apriori -save` (or mines them on the fly from a transaction file), with
// filtering and optional item names.
//
// Usage:
//
//	apriori -minsup 0.001 -save freq.txt t15i6.dat
//	rules -load freq.txt -minconf 0.9 -top 20
//	rules -load freq.txt -minconf 0.8 -item 42        # rules involving item 42
//	rules -load freq.txt -vocab names.txt -top 10     # with product names
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parapriori"
)

// machineNames lists the -machine spellings from the preset registry, so
// the flag stays in sync as models are added.
func machineNames() string {
	var names []string
	for _, p := range parapriori.Machines() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	var (
		load    = flag.String("load", "", "frequent itemsets saved by apriori -save")
		mine    = flag.String("mine", "", "transaction file to mine instead of -load")
		minsup  = flag.Float64("minsup", 0.01, "minimum support when mining with -mine")
		minconf = flag.Float64("minconf", 0.8, "minimum confidence")
		topk    = flag.Int("top", 0, "print only the strongest K rules (0 = all)")
		item    = flag.Int("item", -1, "only rules whose antecedent or consequent contains this item")
		vocab   = flag.String("vocab", "", "vocabulary file (one item name per line) for readable output")
		procs   = flag.Int("p", 0, "generate on an emulated cluster of this many processors (0 = serial)")
		machine = flag.String("machine", "t3e", "machine model for -p: "+machineNames())
	)
	flag.Parse()

	res, err := loadResult(*load, *mine, *minsup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rules: %v\n", err)
		os.Exit(1)
	}

	var v *parapriori.Vocabulary
	if *vocab != "" {
		f, err := os.Open(*vocab)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rules: %v\n", err)
			os.Exit(1)
		}
		v, err = parapriori.ReadVocabulary(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rules: %v\n", err)
			os.Exit(1)
		}
	}

	var out []parapriori.Rule
	if *procs > 0 {
		preset, ok := parapriori.MachineByName(*machine)
		if !ok {
			fmt.Fprintf(os.Stderr, "rules: unknown machine %q (want %s)\n", *machine, machineNames())
			os.Exit(2)
		}
		rep, err := parapriori.GenerateRulesOn(res, parapriori.RuleGenOptions{
			Procs:         *procs,
			Machine:       preset.Machine(),
			MinConfidence: *minconf,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rules: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rules: generated on %d emulated procs in %.6fs virtual (imbalance %.3f)\n",
			*procs, rep.ResponseTime, rep.TimeImbalance)
		out = rep.Rules
	} else {
		out, err = parapriori.GenerateRules(res, *minconf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rules: %v\n", err)
			os.Exit(1)
		}
	}

	printed := 0
	for _, r := range out {
		if *item >= 0 {
			it := parapriori.Item(*item)
			if !r.Antecedent.Contains(it) && !r.Consequent.Contains(it) {
				continue
			}
		}
		if *topk > 0 && printed >= *topk {
			break
		}
		if v != nil {
			fmt.Printf("%-30s => %-20s sup %.4f, conf %.4f, lift %.4f, lev %+.4f\n",
				v.Label(r.Antecedent), v.Label(r.Consequent), r.Support, r.Confidence, r.Lift, r.Leverage)
		} else {
			fmt.Println(r)
		}
		printed++
	}
	fmt.Fprintf(os.Stderr, "rules: %d printed of %d total\n", printed, len(out))
}

func loadResult(load, mine string, minsup float64) (*parapriori.Result, error) {
	switch {
	case load != "" && mine != "":
		return nil, fmt.Errorf("use either -load or -mine, not both")
	case load != "":
		f, err := os.Open(load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return parapriori.ReadResult(f)
	case mine != "":
		f, err := os.Open(mine)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		data, err := parapriori.ReadDataset(f)
		if err != nil {
			return nil, err
		}
		return parapriori.Mine(data, parapriori.MineOptions{MinSupport: minsup})
	}
	return nil, fmt.Errorf("need -load <saved result> or -mine <transactions>")
}
