// Command apriori mines frequent itemsets and association rules from a
// basket-format transaction file with the serial Apriori algorithm.
//
// Usage:
//
//	apriori -minsup 0.01 -minconf 0.8 -rules t15i6.dat
//	apriori -minsup 0.001 -summary t15i6.dat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parapriori"
)

func main() {
	var (
		minsup  = flag.Float64("minsup", 0.01, "minimum support (fraction of transactions)")
		minconf = flag.Float64("minconf", 0.8, "minimum confidence for rules")
		emit    = flag.Bool("rules", false, "generate and print association rules")
		summary = flag.Bool("summary", false, "print only per-pass statistics")
		topk    = flag.Int("top", 0, "print only the strongest K rules (0 = all)")
		dhp     = flag.Int("dhp", 0, "DHP pair-hash buckets (0 = disabled)")
		engine  = flag.String("engine", "", "counting engine: "+strings.Join(parapriori.CountEngines(), ", ")+" (default hashtree)")
		save    = flag.String("save", "", "save the frequent itemsets to this file (reloadable with -load)")
		load    = flag.String("load", "", "skip mining; load frequent itemsets saved with -save")
	)
	flag.Parse()

	var res *parapriori.Result
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		res, err = parapriori.ReadResult(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %d frequent itemsets (N=%d, minsup count %d)\n", res.NumFrequent(), res.N, res.MinCount)
	} else {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: apriori [flags] <transactions.dat>")
			flag.PrintDefaults()
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()

		data, err := parapriori.ReadDataset(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}

		res, err = parapriori.Mine(data, parapriori.MineOptions{MinSupport: *minsup, DHPBuckets: *dhp, Engine: *engine})
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("transactions: %d, items: %d, minsup count: %d\n", data.Len(), data.NumItems, res.MinCount)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		if err := parapriori.WriteResult(f, res); err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Printf("%-5s %-12s %-10s\n", "pass", "candidates", "frequent")
	for _, p := range res.Passes {
		fmt.Printf("%-5d %-12d %-10d\n", p.K, p.Candidates, p.Frequent)
	}
	fmt.Printf("total frequent itemsets: %d\n", res.NumFrequent())
	if *summary {
		return
	}

	if *emit {
		rules, err := parapriori.GenerateRules(res, *minconf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apriori: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("rules (minconf %.2f): %d\n", *minconf, len(rules))
		for i, r := range rules {
			if *topk > 0 && i >= *topk {
				break
			}
			fmt.Println(" ", r)
		}
		return
	}

	for _, level := range res.Levels {
		for _, fs := range level {
			fmt.Printf("%v %d\n", fs.Items, fs.Count)
		}
	}
}
