// Command datagen writes a synthetic transaction database in basket format
// (one transaction per line, space-separated integer items) using the
// Quest-style generator of the paper's workloads.
//
// Usage:
//
//	datagen -n 100000 -items 1000 -tlen 15 -plen 6 -o t15i6.dat
//	datagen -n 50000000 -store big/ -partitions 64
//
// With -store the transactions are streamed straight from the generator
// into a partitioned on-disk dataset (one block resident at a time), so the
// database can be far larger than memory; mine it with
// `parminer -backend ooc -store <dir>`.
package main

import (
	"flag"
	"fmt"
	"os"

	"parapriori"
)

func main() {
	var (
		n      = flag.Int("n", 100000, "number of transactions")
		items  = flag.Int("items", 1000, "item vocabulary size")
		tlen   = flag.Float64("tlen", 15, "average transaction length |T|")
		plen   = flag.Float64("plen", 6, "average pattern length |I|")
		pats   = flag.Int("patterns", 2000, "number of maximal potential patterns |L|")
		corr   = flag.Float64("corr", 0.5, "pattern correlation")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("o", "", "output file (default stdout)")
		format = flag.String("format", "text", "output format: text (basket lines) or binary (compact)")
		store  = flag.String("store", "", "write a partitioned on-disk dataset into this directory instead of a flat file, streaming from the generator")
		nparts = flag.Int("partitions", 0, "partition count for -store (0 = size-rolled)")
		blockB = flag.Int("blockbytes", 0, "block size in bytes for -store (0 = default)")
	)
	flag.Parse()

	opts := parapriori.DefaultGen()
	opts.NumTransactions = *n
	opts.NumItems = *items
	opts.AvgTxnLen = *tlen
	opts.AvgPatternLen = *plen
	opts.NumPatterns = *pats
	opts.Correlation = *corr
	opts.Seed = *seed

	if *store != "" {
		src, err := parapriori.GenerateSource(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		ds, err := parapriori.WritePartitionedDataset(*store, src,
			parapriori.PartitionOptions{Partitions: *nparts, BlockBytes: *blockB})
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		info := ds.Info()
		fmt.Fprintf(os.Stderr, "datagen: wrote %d transactions, %d items, %d partitions to %s\n",
			info.NumTxns, info.NumItems, ds.Partitions(), *store)
		return
	}

	data, err := parapriori.Generate(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var werr error
	switch *format {
	case "text":
		werr = parapriori.WriteDataset(w, data)
	case "binary":
		werr = parapriori.WriteDatasetBinary(w, data)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown format %q (want text or binary)\n", *format)
		os.Exit(2)
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", werr)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d transactions, %d items, avg length %.2f\n",
		data.Len(), data.NumItems, data.AvgLen())
}
