// Command experiments regenerates the paper's tables and figures on the
// emulated machine and prints the series in the paper's units.
//
// Usage:
//
//	experiments -run fig10            # one experiment
//	experiments -run all -scale 2     # everything, at 2x workload
//	experiments -list                 # what is available
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"parapriori/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment to run (see -list), or 'all'")
		scale  = flag.Float64("scale", 1.0, "workload scale factor")
		quick  = flag.Bool("quick", false, "trim sweeps to endpoints")
		seed   = flag.Int64("seed", 7, "workload random seed")
		list   = flag.Bool("list", false, "list experiments and exit")
		plot   = flag.Bool("plot", false, "render each figure as an ASCII chart too")
		format = flag.String("format", "text", "output format: text, csv or json")
	)
	flag.Parse()

	if *list {
		for _, n := range experiments.All() {
			fmt.Printf("%-8s %s\n", n.Name, n.Doc)
		}
		return
	}

	cfg := experiments.Config{Scale: *scale, Quick: *quick, Seed: *seed}
	var todo []experiments.Named
	if *run == "all" {
		todo = experiments.All()
	} else {
		n, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		todo = []experiments.Named{n}
	}

	for _, n := range todo {
		start := time.Now()
		res, err := n.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n.Name, err)
			os.Exit(1)
		}
		var werr error
		switch *format {
		case "text":
			werr = res.WriteText(os.Stdout)
		case "csv":
			werr = res.WriteCSV(os.Stdout)
		case "json":
			werr = res.WriteJSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "experiments: unknown format %q (want text, csv or json)\n", *format)
			os.Exit(2)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", n.Name, werr)
			os.Exit(1)
		}
		if *plot {
			if err := res.WriteChart(os.Stdout, 64, 18); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: plotting %s: %v\n", n.Name, err)
				os.Exit(1)
			}
		}
		if *format == "text" {
			fmt.Printf("   (%s wall)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
}
