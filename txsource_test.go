package parapriori

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func sourceFixture(t *testing.T) *Dataset {
	t.Helper()
	gen := DefaultGen()
	gen.NumTransactions = 1200
	gen.NumItems = 100
	gen.NumPatterns = 60
	gen.AvgTxnLen = 10
	gen.AvgPatternLen = 4
	gen.Seed = 21
	data, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMineFromSources mines the same transactions through every TxSource
// implementation — resident dataset, binary file, basket-text file,
// partitioned store — and requires identical results.
func TestMineFromSources(t *testing.T) {
	data := sourceFixture(t)
	opts := MineOptions{MinSupport: 0.02}
	base, err := Mine(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, base)

	dir := t.TempDir()
	binPath := filepath.Join(dir, "txns.bin")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDatasetBinary(bf, data); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	textPath := filepath.Join(dir, "txns.basket")
	tf, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDataset(tf, data); err != nil {
		t.Fatal(err)
	}
	tf.Close()
	store, err := WritePartitionedDataset(filepath.Join(dir, "store"), data, PartitionOptions{Partitions: 4, BlockBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}

	sources := map[string]TxSource{"dataset": data, "store": store}
	for name, path := range map[string]string{"binary-file": binPath, "text-file": textPath} {
		src, err := OpenDatasetFile(path)
		if err != nil {
			t.Fatal(err)
		}
		sources[name] = src
	}
	for name, src := range sources {
		t.Run(name, func(t *testing.T) {
			if got, want := src.Info().NumTxns, data.Len(); got != want {
				t.Fatalf("Info().NumTxns = %d, want %d", got, want)
			}
			res, err := Mine(nil, MineOptions{MinSupport: 0.02, Source: src})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resultBytes(t, res), want) {
				t.Error("source result differs from dataset result")
			}
		})
	}

	// A source also feeds the in-memory parallel backend (materialized).
	rep, err := MineParallel(nil, ParallelOptions{
		Algorithm: CD, Procs: 4,
		MineOptions: MineOptions{MinSupport: 0.02, Source: store},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, rep.Result), want) {
		t.Error("materialized parallel result differs from dataset result")
	}
}

// TestOOCBackendBitIdentical is the acceptance property of the out-of-core
// backend at the public API: for every counting engine and every supported
// formulation, mining the partitioned store out of core produces the
// byte-identical WriteResult output of in-memory mining.
func TestOOCBackendBitIdentical(t *testing.T) {
	data := sourceFixture(t)
	store, err := WritePartitionedDataset(filepath.Join(t.TempDir(), "store"), data,
		PartitionOptions{Partitions: 5, BlockBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	base, err := Mine(data, MineOptions{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want := resultBytes(t, base)

	for _, eng := range CountEngines() {
		t.Run("serial/"+eng, func(t *testing.T) {
			res, err := Mine(nil, MineOptions{MinSupport: 0.02, Engine: eng, Source: store})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(resultBytes(t, res), want) {
				t.Error("serial streaming result differs")
			}
		})
		for _, algo := range []Algorithm{CD, IDD, HD} {
			t.Run(string(algo)+"/"+eng, func(t *testing.T) {
				rep, err := MineParallel(nil, ParallelOptions{
					Algorithm: algo, Procs: 6, Backend: "ooc",
					MineOptions: MineOptions{MinSupport: 0.02, Engine: eng, Source: store},
				})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(resultBytes(t, rep.Result), want) {
					t.Error("ooc result differs from in-memory result")
				}
			})
		}
	}
}

// TestSourceOptionErrors pins the typed errors of the source/backend seam.
func TestSourceOptionErrors(t *testing.T) {
	data := sourceFixture(t)
	store, err := WritePartitionedDataset(filepath.Join(t.TempDir(), "store"), data, PartitionOptions{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	check := func(err error, strct, field string) {
		t.Helper()
		var oe *OptionError
		if !errors.As(err, &oe) {
			t.Fatalf("want *OptionError for %s.%s, got %v", strct, field, err)
		}
		if oe.Struct != strct || oe.Field != field {
			t.Fatalf("got %s.%s error (%v), want %s.%s", oe.Struct, oe.Field, oe, strct, field)
		}
	}

	_, err = Mine(data, MineOptions{MinSupport: 0.02, Source: store})
	check(err, "MineOptions", "Source")
	_, err = Mine(nil, MineOptions{MinSupport: 0.02})
	check(err, "MineOptions", "Source")
	_, err = Mine(nil, MineOptions{MinSupport: 0.02, Source: store, DHPBuckets: 64})
	check(err, "MineOptions", "Source")

	par := func(mut func(*ParallelOptions)) error {
		o := ParallelOptions{Algorithm: CD, Procs: 2, MineOptions: MineOptions{MinSupport: 0.02, Source: store}, Backend: "ooc"}
		mut(&o)
		_, err := MineParallel(nil, o)
		return err
	}
	check(par(func(o *ParallelOptions) { o.Backend = "mmap" }), "ParallelOptions", "Backend")
	check(par(func(o *ParallelOptions) { o.Source = nil }), "ParallelOptions", "Source")
	check(par(func(o *ParallelOptions) { o.Source = data }), "ParallelOptions", "Source")
	check(par(func(o *ParallelOptions) { o.Algorithm = DD }), "ParallelOptions", "Backend")
	check(par(func(o *ParallelOptions) { o.Faults = &FaultPlan{} }), "ParallelOptions", "Faults")

	o := ParallelOptions{Algorithm: CD, Procs: 2, MineOptions: MineOptions{MinSupport: 0.02, Source: store}, Backend: "ooc"}
	_, err = MineParallel(data, o)
	check(err, "ParallelOptions", "Source")
}
