package parapriori

import (
	"bytes"
	"testing"
)

// TestEndToEndPipeline exercises the whole library the way the CLIs chain
// it: generate a workload, persist it in the binary format, reload it,
// mine in parallel on two different machine models, persist the frequent
// itemsets, reload them, and generate rules both serially and on the
// emulated cluster — asserting every stage agrees with the serial baseline.
func TestEndToEndPipeline(t *testing.T) {
	gen := DefaultGen()
	gen.NumTransactions = 2500
	gen.NumItems = 200
	gen.NumPatterns = 120
	gen.AvgTxnLen = 10
	gen.AvgPatternLen = 4
	gen.Seed = 77
	data, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}

	// Dataset round trip through the binary format.
	var db bytes.Buffer
	if err := WriteDatasetBinary(&db, data); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadDataset(&db)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != data.Len() {
		t.Fatalf("binary round trip lost transactions: %d vs %d", reloaded.Len(), data.Len())
	}

	const minsup = 0.015
	serial, err := Mine(reloaded, MineOptions{MinSupport: minsup, DHPBuckets: 1 << 12, DHPTrim: true})
	if err != nil {
		t.Fatal(err)
	}
	if serial.NumFrequent() < 100 {
		t.Fatalf("workload too sparse: %d frequent itemsets", serial.NumFrequent())
	}

	// Parallel mining on both machine models must reproduce the serial
	// answer exactly.
	for _, machine := range []Machine{MachineT3E(), MachineSP2()} {
		rep, err := MineParallel(reloaded, ParallelOptions{
			MineOptions: MineOptions{MinSupport: minsup},
			Algorithm:   HD,
			Procs:       12,
			Machine:     machine,
		})
		if err != nil {
			t.Fatalf("%s: %v", machine.Name, err)
		}
		if rep.Result.NumFrequent() != serial.NumFrequent() {
			t.Fatalf("%s: %d itemsets, serial %d", machine.Name, rep.Result.NumFrequent(), serial.NumFrequent())
		}
		shares := rep.PhaseBreakdown()
		total := 0.0
		for _, v := range shares {
			total += v
		}
		if total < 0.99 || total > 1.01 {
			t.Errorf("%s: phase shares sum to %v: %v", machine.Name, total, shares)
		}
	}

	// Result persistence round trip.
	var rb bytes.Buffer
	if err := WriteResult(&rb, serial); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadResult(&rb)
	if err != nil {
		t.Fatal(err)
	}

	// Serial and emulated-parallel rule generation from the restored
	// result must agree.
	want, err := GenerateRules(restored, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	par, err := GenerateRulesOn(restored, RuleGenOptions{Procs: 6, Machine: MachineT3E(), MinConfidence: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Rules) != len(want) {
		t.Fatalf("parallel rules %d, serial %d", len(par.Rules), len(want))
	}
	for i := range want {
		if want[i].String() != par.Rules[i].String() {
			t.Fatalf("rule %d differs: %v vs %v", i, par.Rules[i], want[i])
		}
	}
}
