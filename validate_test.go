package parapriori

import (
	"errors"
	"reflect"
	"testing"
)

// wantOptionError asserts err is a *OptionError naming the given struct
// and field.
func wantOptionError(t *testing.T, err error, strct, field string) {
	t.Helper()
	var oe *OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("got %v, want *OptionError for %s.%s", err, strct, field)
	}
	if oe.Struct != strct || oe.Field != field {
		t.Fatalf("got %s.%s (%q), want %s.%s", oe.Struct, oe.Field, oe.Reason, strct, field)
	}
}

func TestMineOptionsValidate(t *testing.T) {
	wantOptionError(t, MineOptions{}.Validate(), "MineOptions", "MinSupport")
	wantOptionError(t, MineOptions{MinSupport: 1.5}.Validate(), "MineOptions", "MinSupport")
	wantOptionError(t, MineOptions{MinSupport: 0.1, MaxPasses: -1}.Validate(), "MineOptions", "MaxPasses")
	wantOptionError(t, MineOptions{MinSupport: 0.1, DHPTrim: true, MemoryBytes: 1 << 20}.Validate(), "MineOptions", "DHPTrim")
	if err := (MineOptions{MinSupport: 0.1, DHPTrim: true}).Validate(); err != nil {
		t.Fatalf("valid serial options rejected: %v", err)
	}
	if _, err := Mine(FromItems([][]Item{{1, 2}}), MineOptions{MinSupport: -1}); err == nil {
		t.Fatal("Mine accepted negative support")
	}
}

func TestParallelOptionsValidate(t *testing.T) {
	ok := ParallelOptions{MineOptions: MineOptions{MinSupport: 0.1}, Algorithm: HD, Procs: 8}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid parallel options rejected: %v", err)
	}

	bad := ok
	bad.Procs = 0
	wantOptionError(t, bad.Validate(), "ParallelOptions", "Procs")

	bad = ok
	bad.Algorithm = "bogus"
	wantOptionError(t, bad.Validate(), "ParallelOptions", "Algorithm")

	// The serial-only knobs MineParallel used to ignore silently are now
	// named errors.
	bad = ok
	bad.MemoryBytes = 1 << 20
	wantOptionError(t, bad.Validate(), "ParallelOptions", "MemoryBytes")
	bad = ok
	bad.DHPBuckets = 1024
	wantOptionError(t, bad.Validate(), "ParallelOptions", "DHPBuckets")
	bad = ok
	bad.DHPTrim = true
	wantOptionError(t, bad.Validate(), "ParallelOptions", "DHPTrim")

	bad = ok
	bad.FixedG = 3 // does not divide 8
	wantOptionError(t, bad.Validate(), "ParallelOptions", "FixedG")
	bad = ok
	bad.Algorithm = CD
	bad.FixedG = 2 // grid shape is HD-only
	wantOptionError(t, bad.Validate(), "ParallelOptions", "FixedG")

	bad = ok
	bad.Algorithm = DD
	bad.Faults = &FaultPlan{}
	wantOptionError(t, bad.Validate(), "ParallelOptions", "Faults")
	bad = ok
	bad.Algorithm = HPA
	bad.CheckpointDir = t.TempDir()
	wantOptionError(t, bad.Validate(), "ParallelOptions", "CheckpointDir")

	if _, err := MineParallel(FromItems([][]Item{{1, 2}, {1, 2}}), ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0.5, MemoryBytes: 1 << 20},
		Algorithm:   CD, Procs: 2,
	}); err == nil {
		t.Fatal("MineParallel accepted the serial-only MemoryBytes knob")
	}
}

func TestRuleGenOptionsValidate(t *testing.T) {
	wantOptionError(t, RuleGenOptions{Procs: 0, MinConfidence: 0.5}.Validate(), "RuleGenOptions", "Procs")
	wantOptionError(t, RuleGenOptions{Procs: 2, MinConfidence: 1.5}.Validate(), "RuleGenOptions", "MinConfidence")
	if err := (RuleGenOptions{Procs: 2, MinConfidence: 0.5}).Validate(); err != nil {
		t.Fatalf("valid rule-gen options rejected: %v", err)
	}
}

func TestServeOptionsValidate(t *testing.T) {
	wantOptionError(t, ServeOptions{Shards: -1}.Validate(), "ServeOptions", "Shards")
	wantOptionError(t, ServeOptions{Workers: -1}.Validate(), "ServeOptions", "Workers")
	wantOptionError(t, ServeOptions{MaxK: -1}.Validate(), "ServeOptions", "MaxK")
	if err := (ServeOptions{CacheSize: -1}).Validate(); err != nil {
		t.Fatalf("negative CacheSize means disabled and must be valid: %v", err)
	}
}

// TestGenerateRulesOnMatchesSerial checks the emulated-parallel rule step
// produces exactly the serial rule set.
func TestGenerateRulesOnMatchesSerial(t *testing.T) {
	data := FromItems([][]Item{
		{1, 2, 3}, {1, 2, 3}, {1, 2}, {2, 3}, {1, 3}, {1, 2, 3, 4},
	})
	res, err := Mine(data, MineOptions{MinSupport: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := GenerateRulesOn(res, RuleGenOptions{Procs: 4, Machine: MachineT3E(), MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := GenerateRules(res, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Rules, serial) {
		t.Fatal("parallel rules differ from serial rules")
	}
}
