package parapriori

import (
	"bytes"
	"testing"
)

func tableI() *Dataset {
	// Table I with Bread=1, Beer=2, Coke=3, Diaper=4, Milk=5.
	return FromItems([][]Item{
		{1, 3, 5}, {2, 1}, {2, 3, 4, 5}, {2, 1, 4, 5}, {3, 4, 5},
	})
}

func TestMineQuickstart(t *testing.T) {
	res, err := Mine(tableI(), MineOptions{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	// 5 singletons + 8 pairs + ... the known Table I answer at 40%: all 5
	// items are frequent; {Diaper, Milk} has count 3.
	if len(res.Levels[0]) != 5 {
		t.Errorf("F1 = %d itemsets", len(res.Levels[0]))
	}
	if got := res.SupportIndex()[NewItemset(4, 5).Key()]; got != 3 {
		t.Errorf("σ(Diaper, Milk) = %d, want 3", got)
	}
}

func TestGenerateRulesQuickstart(t *testing.T) {
	res, err := Mine(tableI(), MineOptions{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := GenerateRules(res, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rules {
		if r.Antecedent.Equal(NewItemset(4, 5)) && r.Consequent.Equal(NewItemset(2)) {
			found = true
			if r.Support != 0.4 {
				t.Errorf("support = %v", r.Support)
			}
		}
	}
	if !found {
		t.Error("{Diaper, Milk} => {Beer} not generated")
	}
}

func TestMineParallelMatchesSerial(t *testing.T) {
	gen := DefaultGen()
	gen.NumTransactions = 2000
	gen.NumItems = 150
	gen.NumPatterns = 80
	gen.AvgTxnLen = 10
	gen.AvgPatternLen = 4
	data, err := Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Mine(data, MineOptions{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{CD, DD, DDComm, IDD, HD} {
		rep, err := MineParallel(data, ParallelOptions{
			MineOptions: MineOptions{MinSupport: 0.02},
			Algorithm:   algo,
			Procs:       6,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if rep.Result.NumFrequent() != serial.NumFrequent() {
			t.Errorf("%s found %d itemsets, serial %d", algo, rep.Result.NumFrequent(), serial.NumFrequent())
		}
		if rep.ResponseTime <= 0 {
			t.Errorf("%s: response time %v", algo, rep.ResponseTime)
		}
	}
}

func TestMineParallelMachines(t *testing.T) {
	data := tableI()
	for _, m := range []Machine{MachineT3E(), MachineSP2(), MachineCOW(), MachineIdeal()} {
		rep, err := MineParallel(data, ParallelOptions{
			MineOptions: MineOptions{MinSupport: 0.4},
			Algorithm:   HD,
			Procs:       2,
			Machine:     m,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if rep.Result.NumFrequent() == 0 {
			t.Errorf("%s: nothing mined", m.Name)
		}
	}
}

func TestDatasetIO(t *testing.T) {
	data := tableI()
	var buf bytes.Buffer
	if err := WriteDataset(&buf, data); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != data.Len() {
		t.Errorf("round trip: %d vs %d", back.Len(), data.Len())
	}
}

func TestMineOptionsKnobs(t *testing.T) {
	data := tableI()
	res, err := Mine(data, MineOptions{
		MinSupport:     0.4,
		HashTreeFanout: 3,
		MaxLeafSize:    2,
		MaxPasses:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) > 2 {
		t.Errorf("MaxPasses ignored: %d levels", len(res.Levels))
	}
}

func TestInvalidOptionsSurface(t *testing.T) {
	data := tableI()
	if _, err := MineParallel(data, ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0}, Algorithm: CD, Procs: 2,
	}); err == nil {
		t.Error("zero support accepted")
	}
	if _, err := MineParallel(data, ParallelOptions{
		MineOptions: MineOptions{MinSupport: 0.1}, Algorithm: "bogus", Procs: 2,
	}); err == nil {
		t.Error("bogus algorithm accepted")
	}
}
