package parapriori

import (
	"bytes"
	"reflect"
	"testing"
)

// TestCountEnginesBitIdentical is the counting-engine subsystem's central
// property: the engine is a *how*, never a *what*.  Every registered engine,
// serial and under every supporting parallel formulation, must mine the
// byte-identical WriteResult output the default hashtree engine produces.
func TestCountEnginesBitIdentical(t *testing.T) {
	gen := DefaultGen()
	gen.NumTransactions = 1200
	gen.NumItems = 100
	gen.NumPatterns = 60
	gen.AvgTxnLen = 10
	gen.AvgPatternLen = 4
	gen.Seed = 21
	data, err := Generate(gen)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	const minsup = 0.02

	serialize := func(res *Result) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := WriteResult(&buf, res); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		return buf.Bytes()
	}

	baseRes, err := Mine(data, MineOptions{MinSupport: minsup})
	if err != nil {
		t.Fatalf("baseline mine: %v", err)
	}
	baseline := serialize(baseRes)
	if baseRes.NumFrequent() == 0 {
		t.Fatal("trivial workload, no frequent itemsets")
	}

	engines := CountEngines()
	if want := []string{"bitset", "hashtree", "trie"}; !reflect.DeepEqual(engines, want) {
		t.Fatalf("CountEngines() = %v, want %v", engines, want)
	}

	for _, eng := range engines {
		t.Run("serial/"+eng, func(t *testing.T) {
			res, err := Mine(data, MineOptions{MinSupport: minsup, Engine: eng})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			if !bytes.Equal(serialize(res), baseline) {
				t.Error("serial result differs from hashtree baseline")
			}
		})
		for _, algo := range []Algorithm{CD, IDD, HD} {
			t.Run(string(algo)+"/"+eng, func(t *testing.T) {
				rep, err := MineParallel(data, ParallelOptions{
					MineOptions: MineOptions{MinSupport: minsup, Engine: eng},
					Algorithm:   algo,
					Procs:       6,
				})
				if err != nil {
					t.Fatalf("mine: %v", err)
				}
				if !bytes.Equal(serialize(rep.Result), baseline) {
					t.Error("parallel result differs from hashtree baseline")
				}
			})
		}
	}
}

// TestEngineRestrictions pins the validation surface: unknown engines and
// unsupported engine/algorithm or engine/DHP combinations are named errors,
// not silent fallbacks.
func TestEngineRestrictions(t *testing.T) {
	gen := DefaultGen()
	gen.NumTransactions = 300
	gen.Seed = 5
	data, err := Generate(gen)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	if _, err := Mine(data, MineOptions{MinSupport: 0.05, Engine: "btree"}); err == nil {
		t.Error("unknown serial engine accepted")
	}
	if _, err := Mine(data, MineOptions{MinSupport: 0.05, Engine: "trie", DHPBuckets: 64}); err == nil {
		t.Error("DHP with non-default engine accepted")
	}
	for _, algo := range []Algorithm{DD, DDComm, HPA} {
		if _, err := MineParallel(data, ParallelOptions{
			MineOptions: MineOptions{MinSupport: 0.05, Engine: "bitset"},
			Algorithm:   algo,
			Procs:       4,
		}); err == nil {
			t.Errorf("%s with non-default engine accepted", algo)
		}
	}
}
