package parapriori

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/api.golden from the current source")

// apiSurface renders every exported declaration of the package — function
// and method signatures, type definitions with their fields, consts and
// vars — as sorted one-per-entry text.  It parses the source directly, so
// the snapshot covers exactly what a caller can see, aliases included.
func apiSurface(t *testing.T) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parsing package: %v", err)
	}
	pkg, ok := pkgs["parapriori"]
	if !ok {
		t.Fatalf("package parapriori not found (got %v)", pkgs)
	}

	render := func(n any) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, n); err != nil {
			t.Fatalf("printing declaration: %v", err)
		}
		return buf.String()
	}

	var entries []string
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				if d.Recv != nil {
					// Methods count only on exported receiver types.
					if base := receiverTypeName(d.Recv); base == "" || !ast.IsExported(base) {
						continue
					}
				}
				sig := *d
				sig.Body = nil
				sig.Doc = nil
				entries = append(entries, strings.TrimSpace(render(&sig)))
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if !s.Name.IsExported() {
							continue
						}
						entries = append(entries, "type "+render(s))
					case *ast.ValueSpec:
						var names []string
						for _, n := range s.Names {
							if n.IsExported() {
								names = append(names, n.Name)
							}
						}
						if len(names) == 0 {
							continue
						}
						kw := "var"
						if d.Tok == token.CONST {
							kw = "const"
						}
						cp := *s
						cp.Names = nil
						for _, n := range s.Names {
							if n.IsExported() {
								cp.Names = append(cp.Names, n)
							}
						}
						entries = append(entries, kw+" "+render(&cp))
					}
				}
			}
		}
	}
	sort.Strings(entries)
	return strings.Join(entries, "\n\n") + "\n"
}

func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// TestAPISurfaceGolden snapshots the exported surface of package parapriori
// against testdata/api.golden.  Any signature change, added or removed
// export, or struct-field change fails with a diff — deliberate API changes
// re-bless the snapshot with `go test -run TestAPISurfaceGolden -update .`.
func TestAPISurfaceGolden(t *testing.T) {
	got := apiSurface(t)
	golden := filepath.Join("testdata", "api.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s (run with -update to create it): %v", golden, err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	max := len(gotLines)
	if len(wantLines) > max {
		max = len(wantLines)
	}
	var diff []string
	for i := 0; i < max && len(diff) < 30; i++ {
		g, w := "", ""
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			diff = append(diff, fmt.Sprintf("line %d:\n  got:  %s\n  want: %s", i+1, g, w))
		}
	}
	t.Fatalf("exported API surface changed (re-bless with -update if intended):\n%s", strings.Join(diff, "\n"))
}
