#!/usr/bin/env bash
# bench_mining.sh — run the counting-engine benchmark sweep (cmd/benchmine)
# and validate the artifact.
#
# Default: full sweep, (re)writes the committed BENCH_mining.json.
# -short:  first support point per dataset, written to BENCH_mining.short.json
#          and gated against the committed BENCH_mining.json — schema check,
#          bit-identity check, and a ≤20% regression gate on the default
#          (hashtree) engine's virtual response time.  This is the CI mode:
#          virtual time is deterministic, so any drift is a real code change.
set -euo pipefail
cd "$(dirname "$0")/.."

short=0
if [[ "${1:-}" == "-short" ]]; then
  short=1
fi

if [[ $short -eq 1 ]]; then
  out=BENCH_mining.short.json
  go run ./cmd/benchmine -short -o "$out"
else
  out=BENCH_mining.json
  go run ./cmd/benchmine -o "$out"
fi

# Schema and internal-consistency validation.
python3 - "$out" <<'EOF'
import json, sys

path = sys.argv[1]
r = json.load(open(path))

def need(cond, msg):
    if not cond:
        sys.exit(f"bench_mining: {path}: {msg}")

need(r.get("schema") == "parapriori/enginebench/v1", f"bad schema {r.get('schema')!r}")
for key in ("algo", "procs", "machine", "seed", "engines", "cells", "speedups"):
    need(key in r, f"missing key {key!r}")
need(set(r["engines"]) == {"bitset", "hashtree", "trie"}, f"engines = {r['engines']}")
need(len(r["cells"]) > 0, "no cells")

cell_keys = {"dataset", "support", "engine", "transactions", "passes", "frequent",
             "result_sha256", "response_sec", "count_sec", "build_sec", "txn_per_sec",
             "traversals", "leaf_checks", "inserts", "serial_allocs_per_run", "pass_hist"}
shas = {}
for c in r["cells"]:
    need(cell_keys <= set(c), f"cell missing keys: {sorted(cell_keys - set(c))}")
    need(c["response_sec"] > 0 and c["count_sec"] > 0, f"non-positive timings in {c['dataset']}/{c['engine']}")
    need(c["pass_hist"]["count"] > 0, f"empty pass histogram in {c['dataset']}/{c['engine']}")
    for b in c["pass_hist"].get("buckets", []):
        need(b["hi"] > b["lo"] >= 0, "malformed histogram bucket")
    key = (c["dataset"], c["support"])
    shas.setdefault(key, c["result_sha256"])
    need(shas[key] == c["result_sha256"], f"engines disagree on result sha at {key}")

best = max(s["count_speedup"] for s in r["speedups"])
need(best >= 1.5, f"best non-default count speedup {best:.2f}x < 1.5x")
print(f"bench_mining: {path} valid ({len(r['cells'])} cells, best count speedup {best:.2f}x)")
EOF

# Regression gate: a -short run must stay within 20% of the committed
# baseline's hashtree response on every shared sweep point.
if [[ $short -eq 1 ]]; then
  if [[ ! -f BENCH_mining.json ]]; then
    echo "bench_mining: no committed BENCH_mining.json to gate against" >&2
    exit 1
  fi
  python3 - BENCH_mining.json "$out" <<'EOF'
import json, sys

base = json.load(open(sys.argv[1]))
fresh = json.load(open(sys.argv[2]))

def hashtree_cells(r):
    return {(c["dataset"], c["support"]): c for c in r["cells"] if c["engine"] == "hashtree"}

bcells, fcells = hashtree_cells(base), hashtree_cells(fresh)
shared = sorted(set(bcells) & set(fcells))
if not shared:
    sys.exit("bench_mining: no shared hashtree sweep points between baseline and fresh run")

failed = False
for key in shared:
    b, f = bcells[key]["response_sec"], fcells[key]["response_sec"]
    ratio = f / b
    mark = "ok"
    if ratio > 1.20:
        mark = "REGRESSION"
        failed = True
    print(f"bench_mining: {key[0]} minsup={key[1]}: baseline {b:.6f}s fresh {f:.6f}s ({ratio:.3f}x) {mark}")
if failed:
    sys.exit("bench_mining: default-engine response regressed >20% vs committed BENCH_mining.json")
print(f"bench_mining: regression gate passed on {len(shared)} sweep points")
EOF
fi

echo "bench_mining: wrote $out"
