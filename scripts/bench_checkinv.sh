#!/usr/bin/env bash
# bench_checkinv.sh — measure the checkinv driver cold vs cached and write
# the result to BENCH_checkinv.json at the repo root.
#
# The cold benchmark parses, type-checks (stdlib from source) and analyzes
# the whole tree; the warm benchmark replays the same run from the findings
# cache, so the ratio is the payoff of the per-package cache.  The findings
# count is taken from a scoped run over the live tree, which must be clean.
set -euo pipefail
cd "$(dirname "$0")/.."

bench_out=$(go test ./internal/checkinv -run '^$' -bench 'BenchmarkDriver(Cold|Warm)$' -benchtime 2x -count 1)
echo "$bench_out"

cold_ns=$(echo "$bench_out" | awk '/^BenchmarkDriverCold/ {print $3}')
warm_ns=$(echo "$bench_out" | awk '/^BenchmarkDriverWarm/ {print $3}')
if [[ -z "$cold_ns" || -z "$warm_ns" ]]; then
  echo "bench_checkinv: could not parse benchmark output" >&2
  exit 1
fi

# Findings over the live tree (scoped, uncached so the count is from this
# checkout, not a restored CI cache).  The gate requires zero.
findings_json=$(go run ./cmd/checkinv -json -cache off ./...) || {
  echo "bench_checkinv: tree is not clean under checkinv" >&2
  echo "$findings_json" >&2
  exit 1
}
findings=$(echo "$findings_json" | grep -c '"rule"' || true)

speedup=$(awk -v c="$cold_ns" -v w="$warm_ns" 'BEGIN { printf "%.1f", c / w }')

cat > BENCH_checkinv.json <<EOF
{
  "benchmark": "checkinv-driver",
  "tree": "./... (tests included)",
  "cold_ns_per_op": $cold_ns,
  "warm_ns_per_op": $warm_ns,
  "speedup": $speedup,
  "findings": $findings
}
EOF
echo "wrote BENCH_checkinv.json (cold ${cold_ns}ns, warm ${warm_ns}ns, ${speedup}x)"
