// Package parapriori is a library for association-rule mining with serial
// and parallel Apriori, reproducing "Scalable Parallel Data Mining for
// Association Rules" (Han, Karypis, Kumar; SIGMOD 1997 / IEEE TKDE 1999).
//
// The library mines frequent itemsets and association rules from
// transaction databases with the serial Apriori algorithm or any of four
// parallel formulations — Count Distribution (CD), Data Distribution (DD),
// Intelligent Data Distribution (IDD) and Hybrid Distribution (HD) —
// executed on an emulated message-passing machine (one goroutine per
// processor) with a virtual-time cost model of the paper's Cray T3E and IBM
// SP2 platforms.
//
// # Quick start
//
//	data, _ := parapriori.Generate(parapriori.DefaultGen()) // synthetic T15.I6
//	res, _ := parapriori.Mine(data, parapriori.MineOptions{MinSupport: 0.01})
//	rules, _ := parapriori.GenerateRules(res, 0.8)
//
// For parallel mining:
//
//	rep, _ := parapriori.MineParallel(data, parapriori.ParallelOptions{
//		Algorithm: parapriori.HD,
//		Procs:     64,
//		MineOptions: parapriori.MineOptions{MinSupport: 0.001},
//	})
//	fmt.Println(rep.ResponseTime, rep.Result.NumFrequent())
//
// Transactions can also come from a streaming TxSource — a file
// (OpenDatasetFile) or a spill-to-disk PartitionedDataset
// (WritePartitionedDataset) — via MineOptions.Source; with
// ParallelOptions.Backend "ooc" the partitioned store is mined out of
// core, block by block, for databases larger than memory.
package parapriori

import (
	"io"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/core"
	"parapriori/internal/countengine"
	"parapriori/internal/datagen"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// Core vocabulary, aliased from the internal packages so callers never need
// to import them.
type (
	// Item identifies a single item.
	Item = itemset.Item
	// Itemset is a sorted, duplicate-free set of items.
	Itemset = itemset.Itemset
	// Transaction is one database record.
	Transaction = itemset.Transaction
	// Dataset is an in-memory transaction database.
	Dataset = itemset.Dataset
	// Frequent is a frequent itemset with its support count.
	Frequent = apriori.Frequent
	// Result holds the frequent itemsets of a mining run, by size.
	Result = apriori.Result
	// Rule is an association rule X => Y with support and confidence.
	Rule = rules.Rule
	// Report is the outcome of a parallel mining run: the Result plus
	// virtual response time, per-pass statistics and processor accounting.
	Report = core.Report
	// PassReport describes one level-wise pass of a parallel run.
	PassReport = core.PassReport
	// ReadStats aggregates an out-of-core run's read-path telemetry:
	// partitions, blocks and bytes read, checksum failures survived,
	// read-ahead stalls and decode time, per pass and run-total.
	ReadStats = core.ReadStats
	// Machine is the cost model of the emulated parallel computer.
	Machine = cluster.Machine
	// Algorithm selects a parallel formulation.
	Algorithm = core.Algorithm
	// GenOptions parametrizes the Quest-style synthetic data generator.
	GenOptions = datagen.Params
	// Vocabulary maps between item IDs and human-readable names.
	Vocabulary = itemset.Vocabulary
	// FaultPlan is a deterministic fault-injection schedule for a parallel
	// run: message drop/duplicate/delay/reorder rates, processor crashes
	// and stragglers, all decided by a seeded hash of virtual time and
	// message identity — never by wall time or a shared RNG.
	FaultPlan = cluster.FaultPlan
	// Crash schedules one processor failure at a virtual time; Permanent
	// crashes remove the rank for good (the run degrades to the
	// survivors), transient ones are rolled back and re-run.
	Crash = cluster.Crash
	// Straggler slows a processor's compute by a factor from a virtual
	// time onward.
	Straggler = cluster.Straggler
	// ReliableConfig tunes the retry/ack layer that masks message faults:
	// bounded retries with exponential virtual-time backoff.
	ReliableConfig = cluster.ReliableConfig
)

// The parallel formulations of the paper.
const (
	// CD is Count Distribution: full candidate replication, one global
	// count reduction per pass.
	CD = core.CD
	// DD is Data Distribution: round-robin candidate partitioning with
	// all-to-all transaction exchange.
	DD = core.DD
	// DDComm is DD with IDD's ring communication (the paper's "DD+comm"
	// ablation).
	DDComm = core.DDComm
	// IDD is Intelligent Data Distribution: bin-packed first-item candidate
	// partitioning, bitmap root filtering, ring transaction pipeline.
	IDD = core.IDD
	// HD is Hybrid Distribution: a G×(P/G) processor grid combining CD and
	// IDD, with G chosen per pass.
	HD = core.HD
	// HPA is Hash Partitioned Apriori (Shintani & Kitsuregawa), the
	// related-work algorithm the paper analyzes: candidates are placed by
	// hashing whole itemsets and every transaction's potential candidates
	// are shipped to their owners.
	HPA = core.HPA
)

// MineOptions configures frequent-itemset mining.
type MineOptions struct {
	// MinSupport is the minimum support threshold as a fraction of the
	// transaction count, e.g. 0.001 for the paper's 0.1%.
	MinSupport float64
	// HashTreeFanout is the hash-table width of internal tree nodes
	// (default 8).
	HashTreeFanout int
	// MaxLeafSize is the number of candidates a leaf holds before
	// splitting (default 16); it sets S in the paper's analysis.
	MaxLeafSize int
	// MaxPasses, if positive, stops after frequent itemsets of that size.
	MaxPasses int
	// MemoryBytes, if positive, caps the hash tree and forces partitioned,
	// multi-scan counting when candidates exceed it (serial mining only;
	// parallel runs take the cap from the Machine).
	MemoryBytes int
	// DHPBuckets, if positive, enables the DHP (Park/Chen/Yu) pair-hash
	// filter: the first pass also hashes transaction pairs into this many
	// buckets and prunes size-2 candidates from cold buckets.  Results are
	// identical to plain Apriori; pass 2 just counts fewer candidates.
	// Serial mining only.
	DHPBuckets int
	// DHPTrim enables DHP's transaction trimming: after pass k, items that
	// matched fewer than k candidates are dropped from a working copy of
	// each transaction, and transactions too short for a (k+1)-itemset are
	// dropped entirely.  Identical results, less data scanned in later
	// passes.  Serial mining only; incompatible with MemoryBytes.
	DHPTrim bool
	// Engine selects the support-counting backend: "hashtree" (the paper's
	// candidate hash tree, the default), "trie" (flat prefix-compressed
	// trie over dense items) or "bitset" (vertical per-item TID bitmaps,
	// support by intersection).  Every backend mines identical itemsets;
	// they differ in the operations counting spends, and therefore in
	// virtual time.  CountEngines lists the registered names.  Parallel
	// runs support non-default engines on CD, IDD and HD; the DHP knobs
	// require the hash tree.
	Engine string
	// Source, when non-nil, supplies the transactions instead of the
	// positional dataset argument — a *Dataset, a FileSource, or a
	// PartitionedDataset.  Setting both Source and the dataset argument is
	// an error; so is setting neither.  Streaming (non-Dataset) sources
	// mine identical itemsets with one extra scan per hash-tree partition;
	// the DHP knobs require a resident dataset.
	Source TxSource
}

func (o MineOptions) params() apriori.Params {
	return apriori.Params{
		MinSupport:  o.MinSupport,
		Tree:        hashtree.Config{Fanout: o.HashTreeFanout, MaxLeaf: o.MaxLeafSize},
		MaxPasses:   o.MaxPasses,
		MemoryBytes: o.MemoryBytes,
		DHPBuckets:  o.DHPBuckets,
		DHPTrim:     o.DHPTrim,
		Engine:      o.Engine,
	}
}

// CountEngines returns the registered support-counting backend names, in
// sorted order — the values MineOptions.Engine accepts.
func CountEngines() []string { return countengine.Names() }

// Mine runs the serial Apriori algorithm over a dataset or, when
// MineOptions.Source is set, over any streaming transaction source.
// Options are validated first; misconfigurations — including supplying the
// transactions both ways, or neither way — return a *OptionError naming
// the field.
func Mine(data *Dataset, o MineOptions) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	src, err := resolveSource("MineOptions", data, o.Source)
	if err != nil {
		return nil, err
	}
	return apriori.MineSource(src, o.params())
}

// ParallelOptions configures a parallel mining run.
type ParallelOptions struct {
	MineOptions
	// Algorithm is the parallel formulation (CD, DD, DDComm, IDD or HD).
	Algorithm Algorithm
	// Procs is the number of emulated processors.
	Procs int
	// Machine is the cost model; the zero value selects MachineT3E().
	Machine Machine
	// PageBytes is the transaction-page size moved between processors
	// (default 16 KiB).
	PageBytes int
	// HDThreshold is HD's minimum candidates per grid row (the paper's m;
	// default 5000).
	HDThreshold int
	// FixedG pins HD's grid rows instead of choosing them per pass.
	FixedG int
	// Trace records the virtual-time event log into Report.Trace for
	// rendering with TraceTimeline.
	Trace bool
	// Faults, when non-nil, injects the plan's message and processor
	// faults into the run and turns on fault-tolerant execution:
	// pass-level checkpoints, crash recovery by coordinated rollback, and
	// graceful degradation to the surviving processors when a rank is
	// lost.  The mined itemsets stay identical to Mine's; Report.Restarts
	// and Report.LostRanks record what the recovery did, and the
	// retry/checkpoint costs appear on the virtual clock.  Only CD, IDD
	// and HD support fault plans.  Runs with the same plan, seed and
	// workload are bit-identical.
	Faults *FaultPlan
	// MaxRestarts bounds recovery attempts before MineParallel gives up
	// (default 8).
	MaxRestarts int
	// CheckpointDir, when non-empty, persists each completed pass's
	// frequent itemsets to <dir>/checkpoint.freq and resumes from that file
	// on the next run over the same workload — a killed mining run restarts
	// at its first unmined pass instead of from scratch.  Resumed passes
	// are marked PassReport.Restored and counted in Report.ResumedPasses.
	// Grid formulations only (CD, IDD, HD).
	CheckpointDir string
	// Recovery selects the rollback strategy after a crash: "coordinated"
	// (the default — every survivor re-charges a checkpoint restore) or
	// "asymmetric" (only crashed ranks pay the restore; survivors keep
	// their levels in memory and wait at the pass barrier, so recovery
	// I/O drops from Procs restores to one per crashed rank).  The mined
	// itemsets are identical under either mode.
	Recovery string
	// Recorder, when non-nil, receives the run's hierarchical spans (run →
	// pass → section → message/compute slice) on the virtual clock; use
	// NewSpanCollector and the span exporters (WriteSpanTrace,
	// TraceAttribution) to consume them.  Setting a Recorder implies event
	// tracing.  Traces of seeded runs are bit-identical run to run.
	Recorder Recorder
	// Backend selects where the transactions live during the run:
	// "inmem" (the default — the dataset is resident and split into
	// per-rank shards) or "ooc" (out of core — each rank streams its own
	// partition files of a PartitionedDataset one block at a time, so the
	// resident set is the counting structure plus one block).  The "ooc"
	// backend requires Source to be a PartitionedDataset and supports the
	// grid formulations (CD, IDD, HD); mined itemsets are identical to the
	// in-memory backend's.
	Backend string
}

// MineParallel runs a parallel formulation on an emulated cluster.  The
// mined itemsets are always identical to Mine's; the Report adds virtual
// response time and per-pass behaviour of the chosen formulation.
//
// Options are validated first; misconfigurations — including the serial-only
// MineOptions knobs (MemoryBytes, DHPBuckets, DHPTrim), which earlier
// versions ignored silently — return a *OptionError naming the field.
func MineParallel(data *Dataset, o ParallelOptions) (*Report, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	backend, err := core.ParseBackend(o.Backend)
	if err != nil {
		return nil, err
	}
	prm := core.Params{
		Algo:          o.Algorithm,
		P:             o.Procs,
		Machine:       o.Machine,
		Apriori:       o.MineOptions.params(),
		PageBytes:     o.PageBytes,
		HDThreshold:   o.HDThreshold,
		FixedG:        o.FixedG,
		Trace:         o.Trace,
		Faults:        o.Faults,
		MaxRestarts:   o.MaxRestarts,
		CheckpointDir: o.CheckpointDir,
		Recovery:      core.RecoveryMode(o.Recovery),
		Recorder:      o.Recorder,
		Backend:       backend,
	}
	src, err := resolveSource("ParallelOptions", data, o.Source)
	if err != nil {
		return nil, err
	}
	if backend == core.BackendOOC {
		// Validate() has already pinned Source to a partitioned store.
		prm.Store = src.(*PartitionedDataset)
		return core.Mine(nil, prm)
	}
	resident, err := MaterializeSource(src)
	if err != nil {
		return nil, err
	}
	return core.Mine(resident, prm)
}

// GenerateRules derives association rules meeting the confidence threshold
// from mined frequent itemsets, strongest first.
func GenerateRules(res *Result, minConfidence float64) ([]Rule, error) {
	return rules.Generate(res, rules.Params{MinConfidence: minConfidence})
}

// RulesReport is the outcome of parallel rule generation: the rules plus
// the emulated step's virtual response time and work accounting.
type RulesReport = core.RulesReport

// RuleGenOptions configures parallel rule generation.
type RuleGenOptions struct {
	// Procs is the number of emulated processors.
	Procs int
	// Machine is the cost model; the zero value selects MachineT3E().
	Machine Machine
	// MinConfidence is the minimum confidence threshold in [0, 1].
	MinConfidence float64
}

// GenerateRulesOn runs the second discovery step on an emulated cluster:
// frequent itemsets are dealt round-robin to Procs processors, each runs
// ap-genrules on its share, and the rules are collected with an all-to-all
// broadcast.  The rules are identical to GenerateRules's.  Options are
// validated first; misconfigurations return a *OptionError naming the
// field.
func GenerateRulesOn(res *Result, o RuleGenOptions) (*RulesReport, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return core.GenerateRules(res, o.Procs, o.Machine, o.MinConfidence)
}

// Generate produces a synthetic transaction database with the Quest-style
// generator the paper's workloads come from.
func Generate(o GenOptions) (*Dataset, error) { return datagen.Generate(o) }

// GenerateSource returns the same workload as a streaming TxSource: every
// scan re-runs the identically seeded generator, so a larger-than-memory
// database can be spilled straight into a PartitionedDataset
// (WritePartitionedDataset) without ever materializing it.
func GenerateSource(o GenOptions) (TxSource, error) { return datagen.Source(o) }

// DefaultGen returns the paper's T15.I6 workload parameters (average
// transaction length 15, average pattern length 6, 1000 items).
func DefaultGen() GenOptions { return datagen.Defaults() }

// NewItemset builds an Itemset from arbitrary items (sorting and removing
// duplicates).
func NewItemset(items ...Item) Itemset { return itemset.New(items...) }

// NewDataset builds a Dataset from transactions.
func NewDataset(txns []Transaction) *Dataset { return itemset.NewDataset(txns) }

// FromItems builds a Dataset from plain item slices, assigning sequential
// transaction IDs — convenient for examples and tests.
func FromItems(rows [][]Item) *Dataset {
	txns := make([]Transaction, len(rows))
	for i, row := range rows {
		txns[i] = Transaction{ID: int64(i), Items: itemset.New(row...)}
	}
	return itemset.NewDataset(txns)
}

// ReadDataset parses a transaction file, auto-detecting the format: the
// compact binary format (WriteDatasetBinary) or basket text (one
// transaction per line, whitespace-separated non-negative integer items).
func ReadDataset(r io.Reader) (*Dataset, error) { return itemset.ReadAuto(r) }

// WriteDataset writes a dataset in the basket text format.
func WriteDataset(w io.Writer, d *Dataset) error { return itemset.Write(w, d) }

// WriteDatasetBinary writes a dataset in the compact varint/delta binary
// format, typically several times smaller than basket text.
func WriteDatasetBinary(w io.Writer, d *Dataset) error { return itemset.WriteBinary(w, d) }

// ReadNamedDataset parses a transaction file whose items are names (one
// transaction per line, names separated by delim, default ","), returning
// the dataset and the vocabulary built from the names.
func ReadNamedDataset(r io.Reader, delim string) (*Dataset, *Vocabulary, error) {
	return itemset.ReadNamed(r, delim)
}

// NewVocabulary builds a vocabulary from names; name i becomes item i.
func NewVocabulary(names []string) (*Vocabulary, error) { return itemset.NewVocabulary(names) }

// ReadVocabulary reads a vocabulary file: one item name per line, in item
// order (the format WriteVocabulary emits).
func ReadVocabulary(r io.Reader) (*Vocabulary, error) { return itemset.ReadVocab(r) }

// WriteVocabulary writes a vocabulary, one name per line in item order.
func WriteVocabulary(w io.Writer, v *Vocabulary) error { return itemset.WriteVocab(w, v) }

// WriteResult saves a mining result's frequent itemsets in a line-oriented
// text format; ReadResult restores everything rule generation needs, so a
// database can be mined once and rules derived later at many thresholds.
func WriteResult(w io.Writer, res *Result) error { return apriori.WriteResult(w, res) }

// ReadResult loads a result saved by WriteResult.
func ReadResult(r io.Reader) (*Result, error) { return apriori.ReadResult(r) }

// TraceTimeline renders a parallel run's event log (recorded with
// ParallelOptions.Trace) as a text Gantt chart: one row per processor,
// compute as '#', sends as '>', disk I/O as 'o', idle waits as '.'.
func TraceTimeline(w io.Writer, rep *Report, width int) error {
	return cluster.WriteTimeline(w, rep.Trace, rep.P, width)
}

// Observability: structured spans over the repo's two clocks.  Install a
// collector on a parallel run (ParallelOptions.Recorder) or a server
// (ServeOptions.Recorder), then export the assembled trace as Perfetto-
// loadable JSON or distill it into the per-pass cost-attribution report:
//
//	rec := parapriori.NewSpanCollector()
//	rep, _ := parapriori.MineParallel(data, parapriori.ParallelOptions{
//		Algorithm: parapriori.IDD, Procs: 8, Recorder: rec,
//		MineOptions: parapriori.MineOptions{MinSupport: 0.01},
//	})
//	tr := rec.Trace()
//	parapriori.WriteSpanTrace(f, tr)                               // open in ui.perfetto.dev
//	parapriori.WriteAttributionTable(os.Stdout, parapriori.TraceAttribution(tr))
type (
	// Span is one named interval on one rank's timeline, carrying
	// deterministic key/value attributes.
	Span = obsv.Span
	// SpanAttr is one key/value attribute on a span or trace.
	SpanAttr = obsv.Attr
	// Recorder is the pluggable span sink a run or server emits into.
	Recorder = obsv.Recorder
	// SpanCollector is the standard in-memory Recorder; its Trace() output
	// is deterministically ordered.
	SpanCollector = obsv.Collector
	// SpanTrace is an assembled span log: metadata plus canonically ordered
	// spans.
	SpanTrace = obsv.Trace
	// PassCost is one pass's cost-attribution bucket: compute/IO/send/idle/
	// retry totals, elapsed time and critical path.
	PassCost = obsv.PassCost
	// FlightRecorder is an always-on bounded Recorder: a per-rank ring of
	// the most recently completed spans, dumpable at any time as the same
	// byte-deterministic trace a SpanCollector assembles.  Unlike the
	// collector it never grows, so it can stay installed on every run.
	FlightRecorder = obsv.Flight
)

// NewSpanCollector builds a collector for a virtual-time mining run.  (The
// serving tier builds its own real-clock collectors internally; mining is
// the case callers assemble by hand.)
func NewSpanCollector() *SpanCollector { return obsv.NewCollector(obsv.ClockVirtual) }

// NewFlightRecorder builds an always-on flight recorder for a virtual-time
// mining run, retaining the last spansPerRank completed spans per rank
// (0 selects the default, 256).  Dump it any time with Trace().
func NewFlightRecorder(spansPerRank int) *FlightRecorder {
	return obsv.NewFlight(obsv.ClockVirtual, spansPerRank)
}

// TeeRecorders fans every recorded span out to all the given recorders (nils
// are dropped) — the way to run a bounded FlightRecorder alongside a full
// SpanCollector on the same run.
func TeeRecorders(recs ...Recorder) Recorder { return obsv.Tee(recs...) }

// WriteSpanTrace writes a trace as Chrome trace-event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.  Output is
// byte-deterministic for deterministic span sets.
func WriteSpanTrace(w io.Writer, t *SpanTrace) error { return obsv.WriteTrace(w, t) }

// ReadSpanTrace parses trace-event JSON written by WriteSpanTrace.
func ReadSpanTrace(r io.Reader) (*SpanTrace, error) { return obsv.ReadTrace(r) }

// TraceAttribution distills a trace into per-pass cost buckets — the
// measured counterpart of the paper's parallel-runtime decomposition.  The
// category totals reconcile exactly with the run's cluster Stats.
func TraceAttribution(t *SpanTrace) []PassCost { return obsv.Attribution(t) }

// TotalTraceCost sums attribution buckets into one total.
func TotalTraceCost(costs []PassCost) PassCost { return obsv.TotalCost(costs) }

// WriteAttributionTable renders attribution buckets as an aligned text
// table, one row per pass plus the out-of-pass bucket and the total.
func WriteAttributionTable(w io.Writer, costs []PassCost) error {
	return obsv.WriteAttribution(w, costs)
}

// MachineT3E returns the cost model of the paper's 128-processor Cray T3E.
func MachineT3E() Machine { return cluster.T3E() }

// MachineSP2 returns the cost model of the paper's 16-node IBM SP2,
// including disk I/O costs (the Figure 12 platform).
func MachineSP2() Machine { return cluster.SP2() }

// MachineCOW returns a cluster-of-workstations model: high-latency switched
// Ethernet with no compute/communication overlap.
func MachineCOW() Machine { return cluster.COW() }

// MachineIdeal returns a machine with free communication and T3E compute —
// the ablation baseline that isolates communication effects.
func MachineIdeal() Machine { return cluster.Ideal() }

// MachinePreset pairs a machine model with the short name commands accept
// on their -machine flags ("t3e", "sp2", "cow", "ideal").
type MachinePreset = cluster.Preset

// Machines returns every built-in machine model in presentation order, so
// commands and callers can enumerate the presets instead of hard-coding a
// flag switch.
func Machines() []MachinePreset { return cluster.Presets() }

// MachineByName finds a machine preset by its flag spelling.
func MachineByName(name string) (MachinePreset, bool) { return cluster.ByName(name) }

// Serving layer: an online recommendation service over mined rules.  Build
// an Index from any rule set, Publish it into a Server, and answer basket
// queries while later mining runs hot-swap fresher indexes underneath the
// traffic:
//
//	ix := parapriori.BuildIndex(rs, parapriori.ServeOptions{})
//	srv := parapriori.NewServer(parapriori.ServeOptions{})
//	defer srv.Close()
//	srv.Publish(ix)
//	recs, _ := srv.Recommend([]parapriori.Item{3, 4}, 10)
//	http.ListenAndServe(":8080", srv.Handler(nil))
//
// ServeOptions configures the rule index and server (shards, worker pool,
// cache size, placement seed, K cap).  It is a defined type (not an alias)
// so it can carry Validate; zero fields select defaults throughout.
type ServeOptions serve.Options

type (
	// RuleIndex is an immutable sharded index over a rule set, answering
	// basket queries without scanning every rule.
	RuleIndex = serve.Index
	// Server serves basket recommendations from an atomically hot-swappable
	// RuleIndex snapshot with a per-snapshot query cache.
	Server = serve.Server
	// ServerMetrics is the server's observability snapshot (QPS, latency
	// percentiles, cache hit rate, snapshot generation).
	ServerMetrics = serve.Metrics
)

// ErrNoSnapshot is returned by Server.Recommend before the first Publish.
var ErrNoSnapshot = serve.ErrNoSnapshot

// BuildIndex builds an immutable sharded index over rules (as produced by
// GenerateRules or GenerateRulesOn).
func BuildIndex(rs []Rule, o ServeOptions) *RuleIndex { return serve.NewIndex(rs, serve.Options(o)) }

// NewServer creates an empty rule server; Publish an index to start
// answering queries.
func NewServer(o ServeOptions) *Server { return serve.NewServer(serve.Options(o)) }
