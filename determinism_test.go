package parapriori

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestMineParallelDeterministic is the determinism regression gate: the
// emulated machine must produce bit-identical results run-to-run for every
// formulation — same frequent itemsets (byte-for-byte through WriteResult),
// same per-pass statistics, and same virtual response times.  Any wall-time
// leakage, map-iteration-order dependence or raw-channel scheduling
// dependence in the simulation shows up here as a diff between two
// back-to-back runs (the failure mode the checkinv suite guards against
// statically).
func TestMineParallelDeterministic(t *testing.T) {
	gen := DefaultGen()
	gen.NumTransactions = 900
	gen.NumItems = 80
	gen.NumPatterns = 40
	gen.AvgTxnLen = 8
	gen.AvgPatternLen = 4
	gen.Seed = 11
	data, err := Generate(gen)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}

	cases := []struct {
		algo   Algorithm
		engine string
	}{
		{CD, ""}, {DD, ""}, {IDD, ""}, {HD, ""},
		// One non-default counting engine: the seam must not loosen the
		// bit-determinism contract.
		{IDD, "trie"}, {CD, "bitset"},
	}
	for _, tc := range cases {
		algo, engine := tc.algo, tc.engine
		name := string(algo)
		if engine != "" {
			name += "/" + engine
		}
		t.Run(name, func(t *testing.T) {
			run := func() (*Report, []byte, []byte, []byte, []byte) {
				rec := NewSpanCollector()
				// The always-on flight recorder rides alongside the full
				// collector; its bounded ring must dump byte-identically too.
				fr := NewFlightRecorder(64)
				rep, err := MineParallel(data, ParallelOptions{
					MineOptions: MineOptions{MinSupport: 0.03, Engine: engine},
					Algorithm:   algo,
					Procs:       6,
					Recorder:    TeeRecorders(fr, rec),
				})
				if err != nil {
					t.Fatalf("%s: %v", algo, err)
				}
				var buf bytes.Buffer
				if err := WriteResult(&buf, rep.Result); err != nil {
					t.Fatalf("%s: serialize: %v", algo, err)
				}
				// The exporters must be byte-deterministic too: the Perfetto
				// trace-event JSON and the attribution table of a seeded run
				// are part of the determinism contract.
				tr := rec.Trace()
				var perfetto bytes.Buffer
				if err := WriteSpanTrace(&perfetto, tr); err != nil {
					t.Fatalf("%s: trace export: %v", algo, err)
				}
				var attrib bytes.Buffer
				if err := WriteAttributionTable(&attrib, TraceAttribution(tr)); err != nil {
					t.Fatalf("%s: attribution: %v", algo, err)
				}
				var ring bytes.Buffer
				if err := WriteSpanTrace(&ring, fr.Trace()); err != nil {
					t.Fatalf("%s: flight-ring export: %v", algo, err)
				}
				return rep, buf.Bytes(), perfetto.Bytes(), attrib.Bytes(), ring.Bytes()
			}
			a, aBytes, aTrace, aAttrib, aRing := run()
			b, bBytes, bTrace, bAttrib, bRing := run()

			if len(aTrace) == 0 || !json.Valid(aTrace) {
				t.Errorf("%s: Perfetto export is not valid JSON", algo)
			}
			if !bytes.Equal(aTrace, bTrace) {
				t.Errorf("%s: Perfetto trace JSON differs between identical runs", algo)
			}
			if !bytes.Equal(aAttrib, bAttrib) {
				t.Errorf("%s: attribution table differs between identical runs:\n  run 1:\n%s\n  run 2:\n%s", algo, aAttrib, bAttrib)
			}
			if len(aRing) == 0 || !json.Valid(aRing) {
				t.Errorf("%s: flight-ring export is not valid JSON", algo)
			}
			if !bytes.Equal(aRing, bRing) {
				t.Errorf("%s: flight-ring Perfetto JSON differs between identical runs", algo)
			}

			if a.Result.NumFrequent() == 0 {
				t.Fatalf("%s: trivial workload, no frequent itemsets", algo)
			}
			if !bytes.Equal(aBytes, bBytes) {
				t.Errorf("%s: frequent itemsets differ between identical runs", algo)
			}
			if !reflect.DeepEqual(a.Passes, b.Passes) {
				t.Errorf("%s: per-pass stats differ between identical runs:\n  run 1: %+v\n  run 2: %+v", algo, a.Passes, b.Passes)
			}
			if a.ResponseTime != b.ResponseTime {
				t.Errorf("%s: virtual response time differs: %v vs %v", algo, a.ResponseTime, b.ResponseTime)
			}
			if !reflect.DeepEqual(a.Clocks, b.Clocks) {
				t.Errorf("%s: per-processor clocks differ:\n  run 1: %v\n  run 2: %v", algo, a.Clocks, b.Clocks)
			}
			if !reflect.DeepEqual(a.Total, b.Total) {
				t.Errorf("%s: aggregate stats differ:\n  run 1: %+v\n  run 2: %+v", algo, a.Total, b.Total)
			}
		})
	}
}
