package parapriori

import (
	"parapriori/internal/itemset"
	"parapriori/internal/txstore"
)

// Transaction sources: every miner entry point can read its transactions
// from a TxSource instead of a resident *Dataset.  A source is an
// iterator — Info() for the dimensions, Blocks() to stream the
// transactions in bounded windows — so implementations range from the
// in-memory Dataset (which is itself a TxSource) through flat files to the
// spill-to-disk partitioned store that backs out-of-core mining:
//
//	src, _ := parapriori.OpenDatasetFile("baskets.bin")
//	res, _ := parapriori.Mine(nil, parapriori.MineOptions{
//		MinSupport: 0.01,
//		Source:     src,
//	})
//
// For datasets larger than memory, spill once and mine out of core:
//
//	store, _ := parapriori.WritePartitionedDataset("store/", src, parapriori.PartitionOptions{Partitions: 16})
//	rep, _ := parapriori.MineParallel(nil, parapriori.ParallelOptions{
//		Algorithm: parapriori.CD, Procs: 16,
//		Backend:   "ooc",
//		MineOptions: parapriori.MineOptions{MinSupport: 0.01, Source: store},
//	})
type (
	// TxSource is a streaming transaction source: dimensions via Info,
	// transactions via Blocks.  Blocks may be called any number of times;
	// each call re-streams the whole source in order.  The block slice
	// passed to the callback is only valid for the duration of the call.
	TxSource = itemset.Source
	// TxSourceInfo describes a source: vocabulary size, transaction count
	// and the modeled byte size the cost model charges for scanning it.
	TxSourceInfo = itemset.SourceInfo
	// FileSource streams a transaction file (basket text or the compact
	// binary format, auto-detected) without loading it into memory.
	FileSource = itemset.FileSource
	// PartitionedDataset is a spill-to-disk transaction store: P partition
	// files in the compact binary block format plus a manifest with
	// per-partition statistics and checksums.  It is the TxSource the
	// out-of-core backend mines directly, partition files never all
	// resident at once.
	PartitionedDataset = txstore.Store
	// PartitionOptions shapes WritePartitionedDataset: the partition
	// count (or a size cap that rolls new partitions), and the block
	// granularity within each partition file.  Zero values select
	// defaults.
	PartitionOptions = txstore.Options
)

// OpenDatasetFile opens a transaction file as a streaming TxSource,
// auto-detecting basket text vs the compact binary format.  The file is
// scanned once up front for its dimensions; each Blocks call re-reads it.
func OpenDatasetFile(path string) (*FileSource, error) { return itemset.OpenFile(path) }

// OpenPartitionedDataset opens a partitioned store written by
// WritePartitionedDataset (or cmd/datagen -store).  The manifest is
// validated against the partition files on disk; corrupted or truncated
// stores are rejected with a descriptive error before any mining starts.
func OpenPartitionedDataset(dir string) (*PartitionedDataset, error) { return txstore.Open(dir) }

// WritePartitionedDataset streams a source into a partitioned on-disk
// store under dir and opens the result.  Only one block is resident at a
// time, so a larger-than-memory source can be spilled from a FileSource or
// any other streaming implementation.
func WritePartitionedDataset(dir string, src TxSource, o PartitionOptions) (*PartitionedDataset, error) {
	if _, err := txstore.Spill(dir, src, o); err != nil {
		return nil, err
	}
	return txstore.Open(dir)
}

// MaterializeSource loads a source fully into memory.  A *Dataset passes
// through unchanged; anything else is streamed and copied.
func MaterializeSource(src TxSource) (*Dataset, error) { return itemset.Materialize(src) }

// resolveSource reconciles the positional dataset argument with the
// options' Source field: exactly one of them must carry the transactions.
func resolveSource(strct string, data *Dataset, src TxSource) (TxSource, error) {
	switch {
	case data != nil && src != nil:
		return nil, optErr(strct, "Source", "both the dataset argument and Source are set — pass the transactions one way")
	case data == nil && src == nil:
		return nil, optErr(strct, "Source", "no transactions: pass a dataset or set Source")
	case src != nil:
		return src, nil
	}
	return data, nil
}
