package core

import (
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/itemset"
)

func TestHPAMatchesSerial(t *testing.T) {
	d := testData(t)
	const minsup = 0.02
	want := serialResult(t, d, minsup)
	for _, p := range []int{1, 2, 4, 8} {
		rep, err := Mine(d, Params{Algo: HPA, P: p, Apriori: apriori.Params{MinSupport: minsup}})
		if err != nil {
			t.Fatalf("HPA P=%d: %v", p, err)
		}
		assertSameFrequent(t, want, rep)
	}
}

func TestHPAMovesDataForKAbove2(t *testing.T) {
	d := testData(t)
	rep, err := Mine(d, Params{Algo: HPA, P: 4, Apriori: apriori.Params{MinSupport: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	// HPA ships potential candidates every pass; with P>1 some must cross
	// processors.
	var moved int64
	for _, pass := range rep.Passes {
		if pass.K >= 2 {
			moved += pass.BytesMoved
		}
	}
	if moved == 0 {
		t.Error("HPA moved no candidate bytes")
	}
}

func TestHPACommunicationExceedsIDDAtHighK(t *testing.T) {
	// Section III-E: the number of potential candidates per transaction is
	// O(C(I, k)), so for k >= 3 HPA's communication volume overtakes
	// IDD's O(N) transaction movement.
	d := testData(t)
	const minsup = 0.015
	run := func(algo Algorithm) *Report {
		rep, err := Mine(d, Params{Algo: algo, P: 8, Apriori: apriori.Params{MinSupport: minsup}})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		return rep
	}
	hpa, idd := run(HPA), run(IDD)
	sum := func(rep *Report, fromK int) int64 {
		var b int64
		for _, pass := range rep.Passes {
			if pass.K >= fromK {
				b += pass.BytesMoved
			}
		}
		return b
	}
	if hpaHighK, iddHighK := sum(hpa, 3), sum(idd, 3); hpaHighK <= iddHighK {
		t.Errorf("for k>=3 HPA moved %d bytes, IDD %d: expected HPA above IDD", hpaHighK, iddHighK)
	}
}

func TestForEachSubset(t *testing.T) {
	s := itemset.New(1, 2, 3, 4)
	var got []itemset.Itemset
	forEachSubset(s, 2, func(sub itemset.Itemset) {
		got = append(got, sub.Clone())
	})
	want := []itemset.Itemset{
		{1, 2}, {1, 3}, {1, 4}, {2, 3}, {2, 4}, {3, 4},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d subsets, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("subset %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Degenerate sizes.
	calls := 0
	forEachSubset(s, 0, func(itemset.Itemset) { calls++ })
	forEachSubset(s, 5, func(itemset.Itemset) { calls++ })
	if calls != 0 {
		t.Errorf("degenerate k produced %d subsets", calls)
	}
	forEachSubset(s, 4, func(sub itemset.Itemset) {
		if !sub.Equal(s) {
			t.Errorf("k=len subset = %v", sub)
		}
		calls++
	})
	if calls != 1 {
		t.Errorf("k=len produced %d subsets", calls)
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	// C(8, k) subsets for each k.
	s := itemset.New(0, 1, 2, 3, 4, 5, 6, 7)
	want := []int{8, 28, 56, 70, 56, 28, 8, 1}
	for k := 1; k <= 8; k++ {
		n := 0
		forEachSubset(s, k, func(itemset.Itemset) { n++ })
		if n != want[k-1] {
			t.Errorf("C(8,%d): got %d, want %d", k, n, want[k-1])
		}
	}
}

func TestHPAOwnerInRangeAndSpread(t *testing.T) {
	const procs = 8
	counts := make([]int, procs)
	for a := 0; a < 40; a++ {
		for b := a + 1; b < 40; b++ {
			o := hpaOwner(itemset.New(itemset.Item(a), itemset.Item(b)), procs)
			if o < 0 || o >= procs {
				t.Fatalf("owner %d out of range", o)
			}
			counts[o]++
		}
	}
	// FNV over 780 pairs should not leave any processor starved.
	for i, c := range counts {
		if c < 40 {
			t.Errorf("processor %d owns only %d of 780 pairs", i, c)
		}
	}
}
