package core

import (
	"reflect"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
)

// crashPlan schedules one transient crash early enough to interrupt the
// mining (the fast T3E run finishes in well under a virtual second).
func crashPlan(rank int, at float64) *cluster.FaultPlan {
	return &cluster.FaultPlan{Seed: 1, Crashes: []cluster.Crash{{Rank: rank, At: at}}}
}

func mineFaulty(t *testing.T, algo Algorithm, p int, plan *cluster.FaultPlan) *Report {
	t.Helper()
	d := testData(t)
	rep, err := Mine(d, Params{
		Algo:    algo,
		P:       p,
		Apriori: apriori.Params{MinSupport: 0.02},
		Faults:  plan,
	})
	if err != nil {
		t.Fatalf("%s P=%d under faults: %v", algo, p, err)
	}
	return rep
}

// TestCrashRecoveryMatchesSerial is the acceptance criterion: a crash plus
// recovery run for each grid formulation still mines exactly the serial
// algorithm's frequent itemsets.
func TestCrashRecoveryMatchesSerial(t *testing.T) {
	d := testData(t)
	want := serialResult(t, d, 0.02)
	for _, algo := range []Algorithm{CD, IDD, HD} {
		t.Run(string(algo), func(t *testing.T) {
			rep := mineFaulty(t, algo, 4, crashPlan(2, 10e-3))
			if rep.Restarts == 0 {
				t.Fatalf("crash did not trigger a recovery (restarts = 0); schedule the crash earlier")
			}
			assertSameFrequent(t, want, rep)
			if len(rep.LostRanks) != 0 {
				t.Errorf("transient crash lost ranks %v", rep.LostRanks)
			}
		})
	}
}

// TestPermanentCrashDegrades checks graceful degradation: a permanently
// crashed rank is removed, its shards adopted, and the result still exact.
func TestPermanentCrashDegrades(t *testing.T) {
	d := testData(t)
	want := serialResult(t, d, 0.02)
	for _, algo := range []Algorithm{CD, IDD, HD} {
		t.Run(string(algo), func(t *testing.T) {
			plan := &cluster.FaultPlan{Seed: 2, Crashes: []cluster.Crash{{Rank: 1, At: 10e-3, Permanent: true}}}
			rep := mineFaulty(t, algo, 4, plan)
			if rep.Restarts == 0 {
				t.Fatalf("crash did not trigger a recovery")
			}
			if len(rep.LostRanks) != 1 || rep.LostRanks[0] != 1 {
				t.Fatalf("LostRanks = %v, want [1]", rep.LostRanks)
			}
			assertSameFrequent(t, want, rep)
		})
	}
}

// TestLossyRunMatchesSerial drives a full mining run through message-level
// faults (no crashes): retries and reordering must be invisible in the
// result and visible in the stats.
func TestLossyRunMatchesSerial(t *testing.T) {
	d := testData(t)
	want := serialResult(t, d, 0.02)
	plan := &cluster.FaultPlan{Seed: 3, Drop: 0.05, Dup: 0.05, Reorder: 0.05}
	for _, algo := range []Algorithm{CD, IDD, HD} {
		t.Run(string(algo), func(t *testing.T) {
			rep := mineFaulty(t, algo, 4, plan)
			assertSameFrequent(t, want, rep)
			if rep.Total.MessagesDropped == 0 || rep.Total.RetryTime <= 0 {
				t.Errorf("lossy plan produced no retry accounting: %+v", rep.Total)
			}
			if breakdown := rep.PhaseBreakdown(); breakdown["retry"] <= 0 {
				t.Errorf("PhaseBreakdown missing retry share: %v", breakdown)
			}
		})
	}
}

// TestFaultDeterminism: two runs with the same seed, plan and workload must
// be bit-identical — itemsets, stats, and virtual clocks.
func TestFaultDeterminism(t *testing.T) {
	plan := &cluster.FaultPlan{
		Seed: 4, Drop: 0.04, Dup: 0.04, Reorder: 0.04, Delay: 0.04, DelaySeconds: 1e-4,
		Crashes:    []cluster.Crash{{Rank: 1, At: 15e-3}},
		Stragglers: []cluster.Straggler{{Rank: 2, At: 5e-3, Factor: 2}},
	}
	for _, algo := range []Algorithm{CD, IDD, HD} {
		t.Run(string(algo), func(t *testing.T) {
			a := mineFaulty(t, algo, 4, plan)
			b := mineFaulty(t, algo, 4, plan)
			if a.ResponseTime != b.ResponseTime {
				t.Errorf("response time differs: %v vs %v", a.ResponseTime, b.ResponseTime)
			}
			if !reflect.DeepEqual(a.Clocks, b.Clocks) {
				t.Errorf("clocks differ:\n%v\n%v", a.Clocks, b.Clocks)
			}
			if !reflect.DeepEqual(a.Total, b.Total) {
				t.Errorf("stats differ:\n%+v\n%+v", a.Total, b.Total)
			}
			if a.Restarts != b.Restarts {
				t.Errorf("restarts differ: %d vs %d", a.Restarts, b.Restarts)
			}
			aw, bw := a.Result.All(), b.Result.All()
			if len(aw) != len(bw) {
				t.Fatalf("itemset counts differ: %d vs %d", len(aw), len(bw))
			}
			for i := range aw {
				if !aw[i].Items.Equal(bw[i].Items) || aw[i].Count != bw[i].Count {
					t.Fatalf("itemset %d differs", i)
				}
			}
		})
	}
}

// TestStragglerAddsOverhead: a slowed processor must raise the response
// time of an otherwise fault-free run.
func TestStragglerAddsOverhead(t *testing.T) {
	d := testData(t)
	base, err := Mine(d, Params{Algo: CD, P: 4, Apriori: apriori.Params{MinSupport: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	slow := mineFaulty(t, CD, 4, &cluster.FaultPlan{
		Stragglers: []cluster.Straggler{{Rank: 0, At: 0, Factor: 4}},
	})
	if !(slow.ResponseTime > base.ResponseTime) {
		t.Errorf("straggler response %v not above baseline %v", slow.ResponseTime, base.ResponseTime)
	}
	assertSameFrequent(t, serialResult(t, d, 0.02), slow)
}

// TestFaultsRejectedForDD: the non-grid formulations must refuse a plan.
func TestFaultsRejectedForDD(t *testing.T) {
	d := testData(t)
	for _, algo := range []Algorithm{DD, DDComm, HPA} {
		_, err := Mine(d, Params{
			Algo:    algo,
			P:       4,
			Apriori: apriori.Params{MinSupport: 0.02},
			Faults:  &cluster.FaultPlan{Drop: 0.1},
		})
		if err == nil {
			t.Errorf("%s accepted a fault plan", algo)
		}
	}
}

// TestAsymmetricRecoveryCheaper: under an identical crash plan, asymmetric
// recovery must mine exactly what coordinated rollback mines while charging
// strictly less recovery work — only the crashed rank replays its
// checkpoint; the survivors keep their levels in memory and wait at the
// pass barrier for free.
func TestAsymmetricRecoveryCheaper(t *testing.T) {
	d := testData(t)
	want := serialResult(t, d, 0.02)
	for _, algo := range []Algorithm{CD, IDD, HD} {
		t.Run(string(algo), func(t *testing.T) {
			mine := func(mode RecoveryMode) *Report {
				t.Helper()
				rep, err := Mine(d, Params{
					Algo: algo,
					P:    4,
					// SP2's disk model prices the checkpoint restore; the
					// default T3E buffers checkpoints in memory (free I/O),
					// which would hide the saving this test measures.
					Machine:  cluster.SP2(),
					Apriori:  apriori.Params{MinSupport: 0.02},
					Faults:   crashPlan(2, 10e-3),
					Recovery: mode,
				})
				if err != nil {
					t.Fatalf("%s under %s recovery: %v", algo, mode, err)
				}
				if rep.Restarts == 0 {
					t.Fatalf("crash did not trigger a recovery")
				}
				return rep
			}
			coord := mine(RecoveryCoordinated)
			asym := mine(RecoveryAsymmetric)
			assertSameFrequent(t, want, coord)
			assertSameFrequent(t, want, asym)
			cr, ar := coord.Total.Phases["recovery"], asym.Total.Phases["recovery"]
			if !(ar < cr) {
				t.Errorf("asymmetric recovery time %v not below coordinated %v", ar, cr)
			}
			if !(asym.Total.IOTime < coord.Total.IOTime) {
				t.Errorf("asymmetric IO %v not below coordinated %v", asym.Total.IOTime, coord.Total.IOTime)
			}
			// One transient crash, four ranks: the replayer's single restore
			// should cost about a quarter of the coordinated bill.
			if cr > 0 && ar > 0.5*cr {
				t.Errorf("asymmetric recovery %v saved too little vs coordinated %v", ar, cr)
			}
		})
	}
}

// TestRecoveryGivesUp: an unrecoverable plan (every rank permanently
// crashing) must return an error rather than loop.
func TestRecoveryGivesUp(t *testing.T) {
	d := testData(t)
	plan := &cluster.FaultPlan{Crashes: []cluster.Crash{
		{Rank: 0, At: 1e-3, Permanent: true},
		{Rank: 1, At: 1e-3, Permanent: true},
	}}
	_, err := Mine(d, Params{Algo: CD, P: 2, Apriori: apriori.Params{MinSupport: 0.02}, Faults: plan})
	if err == nil {
		t.Fatal("expected an error when every rank is lost")
	}
}
