// Package core implements the paper's contribution: the four parallel
// formulations of Apriori — Count Distribution (CD), Data Distribution
// (DD), Intelligent Data Distribution (IDD) and Hybrid Distribution (HD) —
// plus the paper's DD+comm ablation (DD's round-robin partitioning with
// IDD's ring communication), all running on the emulated message-passing
// machine of package cluster.
//
// CD, IDD and HD share one *grid engine* (see engine.go): HD arranges the P
// processors as a grid of G rows and P/G columns, partitions candidates
// down the columns (IDD within a column) and transactions across columns
// (CD across columns).  G = 1 degenerates to CD and G = P to IDD, which the
// tests assert.  DD and DD+comm are implemented separately because their
// round-robin candidate placement and all-to-all data exchange have no grid
// structure.
//
// Every formulation produces exactly the frequent itemsets of the serial
// algorithm (package apriori); the integration tests check bit-for-bit
// equality.
package core

import (
	"fmt"
	"sort"
	"time"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/countengine"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/txstore"
)

// Algorithm selects a parallel formulation.
type Algorithm string

// The formulations the paper evaluates (CD, DD, IDD, HD and the DD+comm
// ablation) plus HPA from the related work it analyzes (Section III-E).
const (
	CD     Algorithm = "cd"     // Count Distribution [6]
	DD     Algorithm = "dd"     // Data Distribution [6]
	DDComm Algorithm = "ddcomm" // DD with IDD's ring communication (Fig. 10's "DD+comm")
	IDD    Algorithm = "idd"    // Intelligent Data Distribution (this paper)
	HD     Algorithm = "hd"     // Hybrid Distribution (this paper)
	HPA    Algorithm = "hpa"    // Hash Partitioned Apriori [11]
)

// ParseAlgorithm converts a user-facing name into an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch Algorithm(s) {
	case CD, DD, DDComm, IDD, HD, HPA:
		return Algorithm(s), nil
	}
	return "", fmt.Errorf("core: unknown algorithm %q (want cd, dd, ddcomm, idd, hd or hpa)", s)
}

// Params configures a parallel mining run.
type Params struct {
	// Algo is the parallel formulation to run.
	Algo Algorithm
	// P is the number of (emulated) processors.
	P int
	// Machine is the cost model; zero value means cluster.T3E().
	Machine cluster.Machine
	// Apriori carries the mining parameters (minimum support, hash-tree
	// shape, MaxPasses).  Apriori.MemoryBytes is ignored here; the
	// per-processor memory cap comes from Machine.MemoryBytes.
	Apriori apriori.Params
	// PageBytes is the buffer size for transaction movement in DD/IDD/HD
	// (the paper's one-page buffers; our T3E messages are 16 KB).
	// Defaults to 16384.
	PageBytes int
	// HDThreshold is m, the minimum number of candidates per grid row
	// before HD adds rows: G = smallest divisor of P that is at least
	// ceil(M/m).  The paper used m = 50K on 64 processors.  Defaults to
	// 5000.  Only used by HD.
	HDThreshold int
	// FixedG, if positive, pins HD's row count G instead of choosing it
	// per pass (the paper's Figures 13–15 pin the grid, e.g. 8×8).
	FixedG int
	// SplitThreshold bounds a first-item candidate group before the
	// bin-packing partitioner splits it by second item; 0 means the
	// natural ceil(M/G).
	SplitThreshold int
	// Trace records every virtual-time event (compute slices, sends, disk
	// reads, idle waits) into Report.Trace, for rendering with
	// cluster.WriteTimeline.  Off by default: big runs generate an event
	// per message.
	Trace bool
	// Recorder, when non-nil, receives the run's observability spans: a
	// hierarchy of run → pass → engine section over the virtual clock, plus
	// every cluster event as a leaf slice (a Recorder implies event
	// tracing).  Spans carry only virtual time, so a seeded run records a
	// bit-identical trace every time.  See package obsv for the collector
	// and the Perfetto/attribution exporters.
	Recorder obsv.Recorder
	// Faults installs a deterministic fault plan on the emulated cluster
	// and turns on fault-tolerant execution: pass-level checkpointing,
	// crash recovery via coordinated rollback, and graceful degradation to
	// the surviving processors when a rank is permanently lost.  Only the
	// grid formulations (CD, IDD, HD) support it.
	Faults *cluster.FaultPlan
	// MaxRestarts bounds the recovery attempts before Mine gives up and
	// returns the last failure.  Defaults to 8.
	MaxRestarts int
	// CheckpointDir, when non-empty, persists every completed pass's
	// frequent levels to <dir>/checkpoint.freq (WriteResult codec, written
	// atomically via temp file + rename) and resumes from that file on the
	// next Mine over the same workload — a killed run restarts at its first
	// unmined pass instead of from scratch.  Resumed passes are marked
	// Restored in the report.  A checkpoint mined from a different workload
	// (transaction or minimum count mismatch) is an error.  Grid
	// formulations only (CD, IDD, HD).
	CheckpointDir string
	// Recovery selects how survivors participate in crash recovery;
	// empty defaults to RecoveryCoordinated.  See the RecoveryMode
	// constants.
	Recovery RecoveryMode
	// Backend selects the execution backend: BackendInMem (the default)
	// mines a resident *Dataset; BackendOOC streams Store's partition
	// files.  See the ExecBackend constants.
	Backend ExecBackend
	// Store is the opened partitioned transaction store the ooc backend
	// mines.  Required (and only meaningful) with Backend == BackendOOC,
	// in which case Mine's data argument must be nil.
	Store *txstore.Store
}

// RecoveryMode selects the rollback strategy after a rank crash.
type RecoveryMode string

const (
	// RecoveryCoordinated is the classic global rollback: every survivor
	// truncates to the last globally completed pass and re-charges a
	// checkpoint restore (read the frequent levels back, touch every
	// item).  Simple and always consistent, but the restore cost scales
	// with P — every processor pays it for one rank's crash.
	RecoveryCoordinated RecoveryMode = "coordinated"
	// RecoveryAsymmetric rolls state back the same way — the passes are
	// collective, so everyone re-enters at the same level — but only the
	// crashed (or checkpoint-restored) ranks pay the restore charge:
	// survivors still hold their frequent levels in memory and simply wait
	// at the pass collectives while the replayers catch up.  Recovery cost
	// drops from P restores to (number crashed) restores.
	RecoveryAsymmetric RecoveryMode = "asymmetric"
)

func (p Params) withDefaults() Params {
	if p.Machine.Name == "" {
		p.Machine = cluster.T3E()
	}
	if p.PageBytes <= 0 {
		p.PageBytes = 16384
	}
	if p.HDThreshold <= 0 {
		p.HDThreshold = 5000
	}
	if p.P <= 0 {
		p.P = 1
	}
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 8
	}
	if p.Recovery == "" {
		p.Recovery = RecoveryCoordinated
	}
	if p.Backend == "" {
		p.Backend = BackendInMem
	}
	return p
}

func (p Params) validate() error {
	switch p.Algo {
	case CD, DD, DDComm, IDD, HD, HPA:
	default:
		return fmt.Errorf("core: unknown algorithm %q", p.Algo)
	}
	if p.Apriori.MinSupport <= 0 || p.Apriori.MinSupport > 1 {
		return fmt.Errorf("core: MinSupport %v outside (0, 1]", p.Apriori.MinSupport)
	}
	if p.FixedG > 0 && p.P%p.FixedG != 0 {
		return fmt.Errorf("core: FixedG %d does not divide P %d", p.FixedG, p.P)
	}
	if p.Faults != nil {
		switch p.Algo {
		case CD, IDD, HD:
		default:
			return fmt.Errorf("core: fault-tolerant execution supports cd, idd and hd, not %q", p.Algo)
		}
	}
	if p.CheckpointDir != "" {
		switch p.Algo {
		case CD, IDD, HD:
		default:
			return fmt.Errorf("core: checkpoint persistence supports cd, idd and hd, not %q", p.Algo)
		}
	}
	switch p.Recovery {
	case "", RecoveryCoordinated, RecoveryAsymmetric:
	default:
		return fmt.Errorf("core: unknown recovery mode %q", p.Recovery)
	}
	if !countengine.Known(p.Apriori.Engine) {
		return fmt.Errorf("core: unknown counting engine %q (want one of %v)", p.Apriori.Engine, countengine.Names())
	}
	switch p.Backend {
	case "", BackendInMem:
		if p.Store != nil {
			return fmt.Errorf("core: Params.Store requires Backend %q", BackendOOC)
		}
	case BackendOOC:
		if p.Store == nil {
			return fmt.Errorf("core: backend %q requires Params.Store", BackendOOC)
		}
		switch p.Algo {
		case CD, IDD, HD:
		default:
			return fmt.Errorf("core: backend %q supports cd, idd and hd, not %q", BackendOOC, p.Algo)
		}
		if p.Faults != nil {
			return fmt.Errorf("core: backend %q does not support fault injection", BackendOOC)
		}
	default:
		return fmt.Errorf("core: unknown backend %q (want %q or %q)", p.Backend, BackendInMem, BackendOOC)
	}
	if p.Apriori.Engine != "" && p.Apriori.Engine != countengine.Default {
		switch p.Algo {
		case CD, IDD, HD:
		default:
			// DD, DD+comm and HPA shuttle transactions through their own
			// hash-tree bodies; only the grid engine counts through the
			// seam.
			return fmt.Errorf("core: counting engine %q supports cd, idd and hd, not %q", p.Apriori.Engine, p.Algo)
		}
	}
	return nil
}

// PassReport describes one level-wise pass of a parallel run.
type PassReport struct {
	K          int
	Candidates int // |C_k| globally
	Frequent   int // |F_k| globally
	// GridRows and GridCols describe the processor arrangement this pass:
	// CD is 1×P, IDD is P×1, DD/DDComm are P×1, HD is G×(P/G) (Table II).
	GridRows int
	GridCols int
	// TreeParts is the number of hash-tree partitions each processor used
	// (CD exceeds 1 only when the tree outgrows Machine.MemoryBytes —
	// the Figure 12 regime).
	TreeParts int
	// Restored marks a pass that was not mined by this run but seeded from
	// a persistent checkpoint (Params.CheckpointDir).  Restored passes carry
	// only K and Frequent; candidate counts and timings belong to the run
	// that originally mined them.
	Restored bool
	// CandImbalance is (max-mean)/mean of per-processor candidate counts.
	CandImbalance float64
	// TimeImbalance is (max-mean)/mean of per-processor compute time in
	// the counting phase of this pass.
	TimeImbalance float64
	// Tree aggregates the hash-tree operation counters over all processors.
	Tree hashtree.Stats
	// BytesMoved is the transaction bytes communicated this pass (DD, IDD
	// and HD move data; CD moves only counts).
	BytesMoved int64
	// ResponseTime is the virtual time this pass took (max over
	// processors).
	ResponseTime float64
	// Read aggregates the out-of-core read path's work this pass over all
	// processors; zero-valued on the in-memory backend.
	Read ReadStats
}

// ReadStats aggregates the out-of-core read path's telemetry: what the
// ranks read from the partition files, what they survived, and how the
// virtual clock split between waiting on blocks and decoding them.
// Everything is charged on the virtual clock, so a seeded ooc run reports
// bit-identical numbers.
type ReadStats struct {
	// Partitions, Blocks and Bytes count partition files opened, blocks
	// verified and on-disk bytes consumed (block framing included).
	Partitions int
	Blocks     int64
	Bytes      int64
	// CRCRetries counts block checksum failures survived by re-reading.
	CRCRetries int64
	// Stalls counts synchronous block reads the ranks' clocks waited on.
	// Without read-ahead every read is a stall — the number double-buffering
	// (see ROADMAP) would overlap with compute.
	Stalls int64
	// DecodeSeconds is the virtual compute time spent decoding verified
	// payload bytes into transactions — the decode half of the
	// decode/count split.
	DecodeSeconds float64
}

// Add accumulates o into s.
func (s *ReadStats) Add(o ReadStats) {
	s.Partitions += o.Partitions
	s.Blocks += o.Blocks
	s.Bytes += o.Bytes
	s.CRCRetries += o.CRCRetries
	s.Stalls += o.Stalls
	s.DecodeSeconds += o.DecodeSeconds
}

// readStatsOf converts a rank-local record into the exported aggregate.
func readStatsOf(o oocReadStats) ReadStats {
	return ReadStats{
		Partitions:    o.parts,
		Blocks:        o.blocks,
		Bytes:         o.bytes,
		CRCRetries:    o.crcRetries,
		Stalls:        o.stalls,
		DecodeSeconds: o.decodeSeconds,
	}
}

// Report is the outcome of a parallel mining run.
type Report struct {
	Algo   Algorithm
	P      int
	Params Params
	// Result holds the globally frequent itemsets; identical to the serial
	// algorithm's output.
	Result *apriori.Result
	// Passes holds one report per level-wise pass, Passes[0] being k=1.
	Passes []PassReport
	// ResponseTime is the total virtual response time (max processor
	// clock), the y-axis of Figures 10, 12, 14 and 15.
	ResponseTime float64
	// Clocks is each processor's final virtual clock.
	Clocks []float64
	// Total aggregates per-processor accounting (compute, idle, I/O,
	// communication).
	Total cluster.Stats
	// Wall is the real wall-clock duration of the emulated run.
	Wall time.Duration
	// Trace holds the virtual-time event log when Params.Trace was set.
	Trace []cluster.Event
	// Restarts is the number of recovery rollbacks a fault-tolerant run
	// performed; LostRanks the processors permanently removed from the
	// computation (declared dead or crashed with Crash.Permanent).
	Restarts  int
	LostRanks []int
	// ResumedPasses is the number of passes seeded from a persistent
	// checkpoint (Params.CheckpointDir) instead of being mined by this run.
	ResumedPasses int
	// Read aggregates the out-of-core read path over the whole run (the sum
	// of the per-pass Read fields); zero-valued on the in-memory backend.
	Read ReadStats
}

// AvgLeafVisitsPerTxn returns the run-wide average number of distinct hash
// tree leaves visited per transaction processed — the y-axis of Figure 11.
func (r *Report) AvgLeafVisitsPerTxn() float64 {
	var s hashtree.Stats
	for _, pass := range r.Passes {
		s.Add(pass.Tree)
	}
	return s.AvgLeafVisits()
}

// PhaseBreakdown returns each phase's share of the run's total busy time
// (compute + I/O + send overhead + idle, summed over processors), the
// decomposition the paper reports as "hash tree construction is 24.8% of
// the runtime at 64 processors".  Idle and communication time appear under
// the pseudo-phases "idle" and "comm".  Shares sum to ~1.
func (r *Report) PhaseBreakdown() map[string]float64 {
	total := r.Total.ComputeTime + r.Total.IOTime + r.Total.SendTime + r.Total.IdleTime + r.Total.RetryTime
	if total <= 0 {
		return nil
	}
	out := make(map[string]float64, len(r.Total.Phases)+3)
	for name, seconds := range r.Total.Phases {
		out[name] = seconds / total
	}
	out["comm"] = r.Total.SendTime / total
	out["idle"] = r.Total.IdleTime / total
	if r.Total.RetryTime > 0 {
		out["retry"] = r.Total.RetryTime / total
	}
	return out
}

// Mine runs the selected parallel formulation over the dataset on an
// emulated cluster of prm.P processors and returns the report.  The dataset
// is split evenly among the processors, the paper's standing assumption.
func Mine(data *itemset.Dataset, prm Params) (*Report, error) {
	prm = prm.withDefaults()
	if err := prm.validate(); err != nil {
		return nil, err
	}
	start := time.Now() //checkinv:allow walltime — the Wall stat reports real elapsed time and never enters the virtual clock

	var numItems, nTxns int
	var shards []*itemset.Dataset
	if prm.Backend == BackendOOC {
		if data != nil {
			return nil, fmt.Errorf("core: backend %q mines from Params.Store; the dataset argument must be nil", BackendOOC)
		}
		info := prm.Store.Info()
		numItems, nTxns = info.NumItems, info.NumTxns
	} else {
		if data == nil {
			return nil, fmt.Errorf("core: nil dataset")
		}
		numItems, nTxns = data.NumItems, data.Len()
		shards = data.Split(prm.P)
	}

	cl, err := cluster.New(prm.P, prm.Machine)
	if err != nil {
		return nil, err
	}
	if prm.Trace || prm.Recorder != nil {
		cl.EnableTrace()
	}
	if err := cl.InstallFaults(prm.Faults); err != nil {
		return nil, err
	}

	active := make([]int, prm.P)
	owned := make([][]int, prm.P)
	for i := range active {
		active[i] = i
		owned[i] = []int{i}
	}
	engB, err := countengine.New(prm.Apriori.Engine, countengine.Config{
		Tree:     prm.Apriori.Tree,
		NumItems: numItems,
	})
	if err != nil {
		return nil, err
	}
	run := &run{
		prm:         prm,
		cl:          cl,
		world:       cl.World(),
		data:        data,
		store:       prm.Store,
		numItems:    numItems,
		nTxns:       nTxns,
		shards:      shards,
		minCount:    prm.Apriori.MinCount(nTxns),
		perProc:     make([]procTrace, prm.P),
		active:      active,
		ownedShards: owned,
		restartWant: make([]bool, prm.P),
		rec:         prm.Recorder,
		engB:        engB,
	}
	run.rebuildVRank()
	run.setRunMeta()
	resumed, err := run.loadCheckpoint()
	if err != nil {
		return nil, err
	}

	var body func(p *cluster.Proc) error
	switch prm.Algo {
	case CD, IDD, HD:
		body = run.gridBody
	case DD, DDComm:
		body = run.ddBody
	case HPA:
		body = run.hpaBody
	}
	if prm.Faults != nil {
		if err := run.mineWithRecovery(body); err != nil {
			return nil, err
		}
	} else if err := cl.Run(body); err != nil {
		return nil, err
	}
	run.recordRunTrace(resumed)

	rep := &Report{
		Algo:          prm.Algo,
		P:             prm.P,
		Params:        prm,
		Result:        run.assembleResult(),
		Passes:        run.assemblePasses(),
		ResponseTime:  cl.MaxClock(),
		Clocks:        cl.Clocks(),
		Total:         cl.TotalStats(),
		Wall:          time.Since(start), //checkinv:allow walltime — pairs with the Wall stat's time.Now above
		Restarts:      run.restarts,
		LostRanks:     append([]int(nil), run.lost...),
		ResumedPasses: resumed,
	}
	for _, pass := range rep.Passes {
		rep.Read.Add(pass.Read)
	}
	if prm.Trace {
		rep.Trace = cl.Trace()
	}
	return rep, nil
}

// run carries the state shared by the P SPMD goroutines of one mining run.
// Each processor writes only its own perProc slot (and its own restartWant
// flag); global frequent levels are identical on every processor, so the
// first active rank's copy is authoritative.
type run struct {
	prm      Params
	cl       *cluster.Cluster
	world    *cluster.Comm
	data     *itemset.Dataset
	shards   []*itemset.Dataset
	minCount int64
	perProc  []procTrace

	// store, numItems and nTxns carry the out-of-core backend's state: the
	// opened partition store and the database dimensions its manifest
	// declares (data is nil on an ooc run).
	store    *txstore.Store
	numItems int
	nTxns    int

	// active lists the global ranks still participating, in ascending
	// order; vrank inverts it (-1 for removed ranks).  The grid engine
	// shapes its G×cols grid over len(active) virtual ranks, so a degraded
	// run is simply a smaller grid.
	active []int
	vrank  []int
	// ownedShards[rank] are the data shards rank counts: its own, plus any
	// adopted from permanently lost ring predecessors.
	ownedShards [][]int
	// restartWant[rank] tells the rank to charge a checkpoint restore when
	// its body re-enters after a rollback.  Each goroutine touches only its
	// own slot.
	restartWant []bool
	restarts    int
	lost        []int
	// rec receives observability spans (nil when not tracing); the bodies
	// emit pass and section spans through the helpers in obsv.go.
	rec obsv.Recorder
	// engB builds the per-pass counting engines of the grid bodies; built
	// once in Mine (NewPass is goroutine-safe, the builder itself is
	// read-only during the run).
	engB countengine.Builder
}

// engineBuilder returns the run's counting-engine builder, falling back to
// the default hash tree when the run was constructed directly (unit tests).
func (r *run) engineBuilder() countengine.Builder {
	if r.engB == nil {
		b, err := countengine.New(countengine.Default, countengine.Config{Tree: r.prm.Apriori.Tree})
		if err != nil {
			panic(err) // unreachable: the default backend is always registered
		}
		r.engB = b
	}
	return r.engB
}

// np returns the number of participating processors — the "P" the grid is
// shaped over.  Falls back to prm.P when the active list is not
// initialized (unit tests construct run directly).
func (r *run) np() int {
	if len(r.active) > 0 {
		return len(r.active)
	}
	return r.prm.P
}

// ownedShardsOf returns the shard indices the rank counts, falling back to
// the identity assignment when the ownership table is not initialized
// (unit tests construct run directly).
func (r *run) ownedShardsOf(rank int) []int {
	if r.ownedShards == nil {
		return []int{rank}
	}
	return r.ownedShards[rank]
}

// rebuildVRank recomputes the global-rank → virtual-rank map from active.
func (r *run) rebuildVRank() {
	r.vrank = make([]int, r.prm.P)
	for i := range r.vrank {
		r.vrank[i] = -1
	}
	for v, g := range r.active {
		r.vrank[g] = v
	}
}

// procTrace is one processor's private record of the run.
type procTrace struct {
	levels [][]apriori.Frequent
	passes []passLocal
}

// passLocal is one processor's record of one pass.
type passLocal struct {
	k             int
	candidates    int // global |C_k|
	localCands    int // candidates in this processor's tree
	frequent      int // global |F_k|
	gridRows      int
	gridCols      int
	treeParts     int
	tree          hashtree.Stats
	bytesMoved    int64
	countTime     float64 // compute seconds spent in the counting phase
	clockStart    float64
	clockEnd      float64
	candImbalance float64
	restored      bool // seeded from a persistent checkpoint, not mined
	// read is the processor's out-of-core read-path record for the pass
	// (zero on the in-memory backend).
	read oocReadStats
}

// firstActive returns the lowest participating global rank, whose copy of
// the (globally identical) frequent levels is authoritative.
func (r *run) firstActive() int {
	if len(r.active) > 0 {
		return r.active[0]
	}
	return 0
}

// assembleResult builds the apriori.Result from the first active
// processor's levels.
func (r *run) assembleResult() *apriori.Result {
	res := &apriori.Result{N: r.txnCount(), MinCount: r.minCount}
	res.Levels = r.perProc[r.firstActive()].levels
	for _, pl := range r.perProc[r.firstActive()].passes {
		res.Passes = append(res.Passes, apriori.PassStats{
			K:          pl.k,
			Candidates: pl.candidates,
			Frequent:   pl.frequent,
			TreeParts:  pl.treeParts,
			Tree:       pl.tree,
		})
	}
	return res
}

// assemblePasses merges the active processors' pass records into
// PassReports.  Ranks lost to permanent faults are excluded: their
// truncated records describe work the recovered computation redid.
func (r *run) assemblePasses() []PassReport {
	members := r.active
	if len(members) == 0 {
		members = make([]int, r.prm.P)
		for i := range members {
			members[i] = i
		}
	}
	nPasses := len(r.perProc[r.firstActive()].passes)
	out := make([]PassReport, nPasses)
	for k := 0; k < nPasses; k++ {
		ref := r.perProc[r.firstActive()].passes[k]
		pr := PassReport{
			K:             ref.k,
			Candidates:    ref.candidates,
			Frequent:      ref.frequent,
			GridRows:      ref.gridRows,
			GridCols:      ref.gridCols,
			TreeParts:     ref.treeParts,
			CandImbalance: ref.candImbalance,
			Restored:      ref.restored,
		}
		var times []float64
		var maxEnd, maxStart float64
		for _, pi := range members {
			pl := r.perProc[pi].passes[k]
			pr.Tree.Add(pl.tree)
			pr.BytesMoved += pl.bytesMoved
			pr.Read.Add(readStatsOf(pl.read))
			times = append(times, pl.countTime)
			if pl.clockEnd > maxEnd {
				maxEnd = pl.clockEnd
			}
			if pl.clockStart > maxStart {
				maxStart = pl.clockStart
			}
			if pl.treeParts > pr.TreeParts {
				pr.TreeParts = pl.treeParts
			}
		}
		pr.ResponseTime = maxEnd - maxStart
		pr.TimeImbalance = imbalanceFloat(times)
		out[k] = pr
	}
	return out
}

func imbalanceFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var total, max float64
	for _, x := range xs {
		total += x
		if x > max {
			max = x
		}
	}
	if total == 0 {
		return 0
	}
	mean := total / float64(len(xs))
	return (max - mean) / mean
}

// sortFrequent orders a frequent level lexicographically, the canonical
// order apriori.Gen requires.
func sortFrequent(level []apriori.Frequent) {
	sort.Slice(level, func(i, j int) bool { return level[i].Items.Compare(level[j].Items) < 0 })
}

// frequentBytes is the modeled wire size of a frequent-itemset list: 4
// bytes per item plus an 8-byte count per set.
func frequentBytes(level []apriori.Frequent) int {
	b := 0
	for _, f := range level {
		b += 4*len(f.Items) + 8
	}
	return b
}

func itemsetsOf(level []apriori.Frequent) []itemset.Itemset {
	out := make([]itemset.Itemset, len(level))
	for i, f := range level {
		out[i] = f.Items
	}
	return out
}
