package core

import (
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/rules"
)

func TestParallelRulesMatchSerial(t *testing.T) {
	d := testData(t)
	res, err := apriori.Mine(d, apriori.Params{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	want, err := rules.Generate(res, rules.Params{MinConfidence: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("serial generation found no rules; workload too sparse")
	}
	for _, p := range []int{1, 2, 3, 8} {
		rep, err := GenerateRules(res, p, cluster.Machine{}, 0.6)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if len(rep.Rules) != len(want) {
			t.Fatalf("P=%d: %d rules, want %d", p, len(rep.Rules), len(want))
		}
		for i := range want {
			g, w := rep.Rules[i], want[i]
			if !g.Antecedent.Equal(w.Antecedent) || !g.Consequent.Equal(w.Consequent) || g.Count != w.Count {
				t.Fatalf("P=%d rule %d: %v vs %v", p, i, g, w)
			}
		}
		if rep.ResponseTime <= 0 || rep.Evaluated == 0 {
			t.Errorf("P=%d: report = %+v", p, rep)
		}
	}
}

func TestParallelRulesSpeedup(t *testing.T) {
	d := testData(t)
	res, err := apriori.Mine(d, apriori.Params{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	one, err := GenerateRules(res, 1, cluster.Machine{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := GenerateRules(res, 8, cluster.Machine{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !(eight.ResponseTime < one.ResponseTime) {
		t.Errorf("8 procs (%v) not faster than 1 (%v)", eight.ResponseTime, one.ResponseTime)
	}
}

func TestParallelRulesValidation(t *testing.T) {
	res := &apriori.Result{N: 10}
	if _, err := GenerateRules(res, 2, cluster.Machine{}, 1.5); err == nil {
		t.Error("invalid confidence accepted")
	}
	rep, err := GenerateRules(res, 2, cluster.Machine{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rules) != 0 {
		t.Errorf("rules from empty result: %d", len(rep.Rules))
	}
}
