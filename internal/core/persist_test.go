package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
)

// TestCheckpointResume is the kill-and-resume scenario: a run stopped after
// two passes (standing in for a killed process — MaxPasses stops exactly at
// a pass boundary, which is also all a kill can leave behind thanks to the
// atomic rename) leaves a checkpoint, and a second full run over the same
// directory resumes from pass 3 and produces byte-identical results to an
// uninterrupted mine.
func TestCheckpointResume(t *testing.T) {
	d := testData(t)
	const minsup = 0.02
	for _, algo := range []Algorithm{CD, IDD, HD} {
		t.Run(string(algo), func(t *testing.T) {
			dir := t.TempDir()
			prm := Params{Algo: algo, P: 4, Apriori: apriori.Params{MinSupport: minsup}, CheckpointDir: dir}

			// The "killed" run: stops after pass 2, checkpoint on disk.
			first := prm
			first.Apriori.MaxPasses = 2
			if _, err := Mine(d, first); err != nil {
				t.Fatalf("interrupted run: %v", err)
			}
			if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err != nil {
				t.Fatalf("no checkpoint written: %v", err)
			}

			// The resumed run mines only passes 3+.
			rep, err := Mine(d, prm)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if rep.ResumedPasses != 2 {
				t.Fatalf("ResumedPasses = %d, want 2", rep.ResumedPasses)
			}
			for k, pass := range rep.Passes {
				if want := k < 2; pass.Restored != want {
					t.Fatalf("pass %d Restored = %v, want %v", pass.K, pass.Restored, want)
				}
			}

			// Byte-identical to a fresh, uninterrupted mine.
			fresh, err := Mine(d, Params{Algo: algo, P: 4, Apriori: apriori.Params{MinSupport: minsup}})
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			var got, want bytes.Buffer
			if err := apriori.WriteResult(&got, rep.Result); err != nil {
				t.Fatal(err)
			}
			if err := apriori.WriteResult(&want, fresh.Result); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatal("resumed result differs from an uninterrupted mine")
			}
		})
	}
}

// TestCheckpointCompleteRunIsStable: resuming a directory whose checkpoint
// already covers the whole mine re-mines nothing and still reports the full
// result.
func TestCheckpointCompleteRunIsStable(t *testing.T) {
	d := testData(t)
	dir := t.TempDir()
	prm := Params{Algo: HD, P: 4, Apriori: apriori.Params{MinSupport: 0.02}, CheckpointDir: dir}
	full, err := Mine(d, prm)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Mine(d, prm)
	if err != nil {
		t.Fatal(err)
	}
	if again.ResumedPasses != len(full.Passes) {
		t.Fatalf("ResumedPasses = %d, want all %d", again.ResumedPasses, len(full.Passes))
	}
	assertSameFrequent(t, full.Result, again)
}

// TestCheckpointWorkloadMismatch: a checkpoint from a different workload
// must fail the run, not silently seed wrong levels.
func TestCheckpointWorkloadMismatch(t *testing.T) {
	d := testData(t)
	dir := t.TempDir()
	if _, err := Mine(d, Params{Algo: CD, P: 2, Apriori: apriori.Params{MinSupport: 0.02}, CheckpointDir: dir}); err != nil {
		t.Fatal(err)
	}
	// Same data, different support threshold → different minCount.
	_, err := Mine(d, Params{Algo: CD, P: 2, Apriori: apriori.Params{MinSupport: 0.05}, CheckpointDir: dir})
	if err == nil || !strings.Contains(err.Error(), "different workload") {
		t.Fatalf("mismatched checkpoint not rejected: %v", err)
	}
}

// TestCheckpointWithFaults: persistence composes with fault-tolerant
// execution — a crash-recovery run under CheckpointDir still mines the
// exact serial result and leaves a complete checkpoint behind.
func TestCheckpointWithFaults(t *testing.T) {
	d := testData(t)
	want := serialResult(t, d, 0.02)
	dir := t.TempDir()
	rep, err := Mine(d, Params{
		Algo:          HD,
		P:             4,
		Apriori:       apriori.Params{MinSupport: 0.02},
		CheckpointDir: dir,
		Faults:        &cluster.FaultPlan{Seed: 1, Crashes: []cluster.Crash{{Rank: 2, At: 10e-3}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restarts == 0 {
		t.Fatal("crash did not trigger a recovery")
	}
	assertSameFrequent(t, want, rep)

	f, err := os.Open(filepath.Join(dir, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	saved, err := apriori.ReadResult(f)
	if err != nil {
		t.Fatal(err)
	}
	if saved.NumFrequent() != want.NumFrequent() {
		t.Fatalf("checkpoint holds %d frequent itemsets, want %d", saved.NumFrequent(), want.NumFrequent())
	}
}

// TestCheckpointDirValidation: only the grid formulations checkpoint.
func TestCheckpointDirValidation(t *testing.T) {
	d := testData(t)
	_, err := Mine(d, Params{Algo: DD, P: 2, Apriori: apriori.Params{MinSupport: 0.02}, CheckpointDir: t.TempDir()})
	if err == nil {
		t.Fatal("DD accepted CheckpointDir")
	}
}
