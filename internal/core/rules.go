package core

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/rules"
)

// RulesReport is the outcome of parallel rule generation.
type RulesReport struct {
	Rules []rules.Rule
	// ResponseTime is the virtual time of the generation step.
	ResponseTime float64
	// Evaluated is the total number of candidate rules tested.
	Evaluated int64
	// TimeImbalance is (max-mean)/mean of per-processor generation time.
	TimeImbalance float64
}

// GenerateRules parallelizes the second step of association-rule discovery
// exactly the way [6] suggests and the paper calls "straightforward"
// (Section II): every processor holds the complete frequent-itemset index
// (it does at the end of any formulation's run), the frequent itemsets of
// size >= 2 are dealt round-robin, each processor runs ap-genrules on its
// share, and the rules are collected with an all-to-all broadcast.
//
// It runs on a fresh emulated cluster of p processors with the given
// machine model (zero value: T3E) and returns the same rules as the serial
// rules.Generate, in the same order.
func GenerateRules(res *apriori.Result, p int, machine cluster.Machine, minConfidence float64) (*RulesReport, error) {
	if p < 1 {
		p = 1
	}
	if machine.Name == "" {
		machine = cluster.T3E()
	}
	if minConfidence < 0 || minConfidence > 1 {
		return nil, fmt.Errorf("core: MinConfidence %v outside [0, 1]", minConfidence)
	}
	cl, err := cluster.New(p, machine)
	if err != nil {
		return nil, err
	}
	world := cl.World()

	// The itemsets rules can come from, in a deterministic global order.
	var sources []apriori.Frequent
	for size, level := range res.Levels {
		if size+1 < 2 {
			continue
		}
		sources = append(sources, level...)
	}
	support := res.SupportIndex()
	n := float64(res.N)

	perProc := make([][]rules.Rule, p)
	evaluated := make([]int64, p)
	genTime := make([]float64, p)
	runErr := cl.Run(func(pr *cluster.Proc) error {
		start := pr.Clock()
		var local []rules.Rule
		var ops int64
		// Round-robin deal, the same balance-by-count strategy DD uses for
		// candidates; rule work per itemset varies, which the report's
		// imbalance measure exposes.
		for i := pr.ID(); i < len(sources); i += p {
			rs, ev := rules.FromItemset(sources[i], support, n, minConfidence)
			local = append(local, rs...)
			ops += int64(ev)
		}
		m := pr.Machine()
		pr.Compute(float64(ops)*(m.TGen+m.TCheck), "rulegen")
		genTime[pr.ID()] = pr.Clock() - start
		evaluated[pr.ID()] = ops

		bytes := 0
		for _, r := range local {
			bytes += 4*(len(r.Antecedent)+len(r.Consequent)) + 24
		}
		gathered := world.AllGather(pr, "rules", local, bytes)
		var all []rules.Rule
		for _, g := range gathered {
			all = append(all, g.Payload.([]rules.Rule)...)
		}
		rules.Sort(all)
		perProc[pr.ID()] = all
		return nil
	})
	if runErr != nil {
		return nil, runErr
	}

	rep := &RulesReport{
		Rules:         perProc[0],
		ResponseTime:  cl.MaxClock(),
		TimeImbalance: imbalanceFloat(genTime),
	}
	for _, ev := range evaluated {
		rep.Evaluated += ev
	}
	return rep, nil
}
