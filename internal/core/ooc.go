package core

import (
	"fmt"
	"io"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/txstore"
)

// ExecBackend selects how the SPMD bodies get at the transactions.
type ExecBackend string

const (
	// BackendInMem is the classic emulation: the whole dataset is resident,
	// split into per-rank shards, and I/O is charged through the cost model
	// from the shards' modeled byte sizes.
	BackendInMem ExecBackend = "inmem"
	// BackendOOC is the out-of-core backend: each rank streams its own
	// partition files of a spill-to-disk store (Params.Store) one block at
	// a time, charging real on-disk bytes per block, and only candidate
	// counts cross the network — the paper's disk-resident CD as a
	// map/reduce over partition files.  Grid formulations (CD, IDD, HD)
	// only.
	BackendOOC ExecBackend = "ooc"
)

// ParseBackend converts a user-facing name into an ExecBackend.
func ParseBackend(s string) (ExecBackend, error) {
	switch ExecBackend(s) {
	case "":
		return BackendInMem, nil
	case BackendInMem, BackendOOC:
		return ExecBackend(s), nil
	}
	return "", fmt.Errorf("core: unknown backend %q (want inmem or ooc)", s)
}

// ooc reports whether the run executes out of core.
func (r *run) ooc() bool { return r.store != nil }

// itemCount is the item vocabulary size |I|, whichever backend holds the
// transactions.
func (r *run) itemCount() int {
	if r.data != nil {
		return r.data.NumItems
	}
	return r.numItems
}

// txnCount is the database size N, whichever backend holds the
// transactions.
func (r *run) txnCount() int {
	if r.data != nil {
		return r.data.Len()
	}
	return r.nTxns
}

// ownedPartsOf maps a rank to the store partitions it streams: the
// contiguous range [v*M/np, (v+1)*M/np) over the rank's virtual position,
// the partition-file analogue of Dataset.Split.
func (r *run) ownedPartsOf(rank int) []int {
	v := rank
	if r.vrank != nil {
		v = r.vrank[rank]
	}
	if v < 0 {
		return nil
	}
	m := r.store.Partitions()
	np := r.np()
	lo, hi := v*m/np, (v+1)*m/np
	parts := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		parts = append(parts, i)
	}
	return parts
}

// oocReadStats is one rank's record of its out-of-core read-path work for
// one pass: what it read, what it survived, and how the virtual clock split
// between decoding bytes and waiting on them.  Everything here is charged on
// the virtual clock, so a seeded run reports bit-identical numbers.
type oocReadStats struct {
	parts      int   // partition files opened
	blocks     int64 // blocks read and verified
	bytes      int64 // on-disk bytes read (block framing included)
	crcRetries int64 // checksum failures survived by re-reading
	// stalls counts synchronous block reads the rank's clock waited on.
	// Without read-ahead every read is a stall — the number double-buffering
	// (see ROADMAP) would overlap with compute.
	stalls int64
	// decodeSeconds is the virtual compute time spent turning verified
	// payload bytes into transactions, the decode half of the decode/count
	// split.
	decodeSeconds float64
}

// add accumulates o into s.
func (s *oocReadStats) add(o oocReadStats) {
	s.parts += o.parts
	s.blocks += o.blocks
	s.bytes += o.bytes
	s.crcRetries += o.crcRetries
	s.stalls += o.stalls
	s.decodeSeconds += o.decodeSeconds
}

// blockStream walks a rank's owned partitions block by block, charging the
// real on-disk bytes of every block against the rank's virtual I/O clock
// and recording per-block read and decode spans.  With reuse enabled the
// underlying readers recycle their buffers, so a block is only valid until
// the next call — callers that hand blocks to other ranks (the ring)
// disable reuse.
type blockStream struct {
	r      *run
	parts  []int
	idx    int
	cur    *txstore.BlockReader
	reuse  bool
	blocks int // total blocks this stream will yield, from the manifest
	stats  oocReadStats
}

// openPartStream prepares the rank's partition stream.  The total block
// count comes from the manifest, so the ring can agree on round counts
// without touching the partition files.
func (r *run) openPartStream(rank int, reuse bool) *blockStream {
	parts := r.ownedPartsOf(rank)
	man := r.store.Manifest()
	total := 0
	for _, pi := range parts {
		total += man.Partitions[pi].Blocks
	}
	return &blockStream{r: r, parts: parts, reuse: reuse, blocks: total}
}

// next returns the next block and its on-disk size, or (nil, 0, nil) when
// the stream is exhausted.  The block's read and decode costs land on p's
// clock before the block is returned.
func (s *blockStream) next(p *cluster.Proc) ([]itemset.Transaction, int64, error) {
	for {
		if s.cur == nil {
			if s.idx >= len(s.parts) {
				return nil, 0, nil
			}
			br, err := s.r.store.OpenPartition(s.parts[s.idx], s.reuse)
			if err != nil {
				return nil, 0, err
			}
			s.cur = br
			s.idx++
		}
		blk, db, err := s.cur.Next()
		if err == io.EOF {
			if cerr := s.finishReader(); cerr != nil {
				return nil, 0, cerr
			}
			continue
		}
		if err != nil {
			return nil, 0, err
		}
		start := p.Clock()
		p.ReadIO(int64(db), "io")
		// Every read is synchronous — the rank's clock waits on the block
		// (no read-ahead; the ROADMAP double-buffering item would hide it).
		s.stats.stalls++
		s.stats.blocks++
		s.stats.bytes += int64(db)
		s.r.sec(p, "read", start, obsv.Int("bytes", int64(db)))
		var items int64
		for _, t := range blk {
			items += int64(len(t.Items))
		}
		decStart := p.Clock()
		chargeScan(p, items, "decode")
		s.stats.decodeSeconds += p.Clock() - decStart
		s.r.sec(p, "decode", decStart, obsv.Int("items", items))
		return blk, int64(db), nil
	}
}

// finishReader folds the current partition reader's stats (the partition
// open and any survived checksum retries) into the stream's and closes it.
func (s *blockStream) finishReader() error {
	if s.cur == nil {
		return nil
	}
	st := s.cur.Stats()
	s.stats.parts += st.Partitions
	s.stats.crcRetries += st.CRCRetries
	err := s.cur.Close()
	s.cur = nil
	return err
}

func (s *blockStream) close() {
	_ = s.finishReader()
}

// firstPassOOC is firstPass over the partition stream: the same
// array-counting scan and global reduction, with I/O charged per block at
// its real on-disk size instead of once at the shard's modeled size.
func (r *run) firstPassOOC(p *cluster.Proc, tr *procTrace) ([]apriori.Frequent, error) {
	start := p.Clock()

	counts := make([]int64, r.itemCount())
	var items int64
	st := r.openPartStream(p.ID(), true)
	defer st.close()
	for {
		blk, _, err := st.next(p)
		if err != nil {
			return nil, err
		}
		if blk == nil {
			break
		}
		for _, t := range blk {
			for _, it := range t.Items {
				counts[it]++
			}
			items += int64(len(t.Items))
		}
	}
	chargeScan(p, items, "scan")
	countStart := p.Clock()
	r.sec(p, "scan", start, obsv.Int("k", 1), obsv.Int("read_bytes", st.stats.bytes))

	global := r.world.AllReduceInt64(p, "f1", counts)
	r.sec(p, "reduce", countStart, obsv.Int("k", 1))

	var f1 []apriori.Frequent
	for it, c := range global {
		if c >= r.minCount {
			f1 = append(f1, apriori.Frequent{Items: itemset.Itemset{itemset.Item(it)}, Count: c})
		}
	}
	tr.passes = append(tr.passes, passLocal{
		k:          1,
		candidates: r.itemCount(),
		frequent:   len(f1),
		gridRows:   1,
		gridCols:   r.np(),
		treeParts:  1,
		countTime:  countStart - start,
		clockStart: start,
		clockEnd:   p.Clock(),
		read:       st.stats,
	})
	return f1, nil
}

// ringCountStream is ringCount fed from the partition stream instead of
// resident pages: the rank's blocks enter the ring (or, on a singleton
// communicator, are counted in place) as they are read, so no rank ever
// materializes its partition.  Ring peers receive blocks they did not read,
// which is why the stream disables buffer reuse whenever the ring has more
// than one member.  Returns the transaction bytes sent and the rank's
// read-path stats for the scan.
func (r *run) ringCountStream(p *cluster.Proc, cm *cluster.Comm, tag string, process func([]itemset.Transaction)) (sent int64, rs oocReadStats, err error) {
	size := cm.Size()
	st := r.openPartStream(p.ID(), size == 1)
	defer func() {
		// close folds the last reader's partition/retry counts, so snapshot
		// the stats only after it.
		st.close()
		rs = st.stats
	}()
	if size == 1 {
		for {
			blk, _, err := st.next(p)
			if err != nil {
				return 0, rs, err
			}
			if blk == nil {
				return 0, rs, nil
			}
			process(blk)
		}
	}
	rank := cm.Rank(p)
	if rank < 0 {
		panic(fmt.Sprintf("core: proc %d not in ring communicator %q", p.ID(), tag))
	}
	// Ranks own different block counts; agree on the number of rounds so
	// the ring stays in step, padding with empty buffers.  The counts come
	// from the manifest, so this costs one collective and no I/O.
	counts := cm.AllGather(p, tag+"/nblocks", st.blocks, 8)
	rounds := 0
	for _, g := range counts {
		if n := g.Payload.(int); n > rounds {
			rounds = n
		}
	}

	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	for round := 0; round < rounds; round++ {
		cur, _, err := st.next(p)
		if err != nil {
			return sent, rs, err
		}
		for s := 0; s < size-1; s++ {
			b := pageBytesOf(cur)
			p.SendReliable(cm.Member(right), tag, cur, b)
			sent += int64(b)
			process(cur)
			msg := p.RecvReliable(cm.Member(left), tag)
			cur = msg.Payload.([]itemset.Transaction)
		}
		process(cur)
	}
	return sent, rs, nil
}
