package core

import (
	"parapriori/internal/cluster"
	"parapriori/internal/hashtree"
)

// The mining code performs the real work (hash-tree construction, subset
// counting) and then converts the *measured operation counts* into virtual
// time through the machine's cost constants.  This keeps the emulation
// honest: the time charged for a pass is a linear function of exactly the
// operations the paper's Section IV analysis counts, with no modeling of
// work that did not happen.

// chargeSubset converts a hash-tree counting delta into compute time:
// traversal steps at t_travers plus leaf candidate checks at t_check.
func chargeSubset(p *cluster.Proc, delta hashtree.Stats) {
	m := p.Machine()
	p.Compute(float64(delta.Traversals)*m.TTravers+float64(delta.LeafChecks)*m.TCheck, "subset")
}

// chargeBuild converts candidate insertions into tree-construction time,
// the O(M) (CD) vs O(M/P) (IDD) term of the analysis.
func chargeBuild(p *cluster.Proc, inserts int64) {
	p.Compute(float64(inserts)*p.Machine().TInsert, "tree build")
}

// chargeGen charges the replicated apriori_gen work: every processor
// generates the full candidate set before keeping its share.
func chargeGen(p *cluster.Proc, generated int) {
	p.Compute(float64(generated)*p.Machine().TGen, "candidate gen")
}

// chargeScan charges per-item transaction touching work: F1 counting and
// the per-item bitmap filtering of IDD.
func chargeScan(p *cluster.Proc, items int64, phase string) {
	p.Compute(float64(items)*p.Machine().TItem, phase)
}

// treeDelta returns the difference between two snapshots of tree counters.
func treeDelta(before, after hashtree.Stats) hashtree.Stats {
	return hashtree.Stats{
		Traversals:   after.Traversals - before.Traversals,
		LeafVisits:   after.LeafVisits - before.LeafVisits,
		LeafChecks:   after.LeafChecks - before.LeafChecks,
		Transactions: after.Transactions - before.Transactions,
		Inserts:      after.Inserts - before.Inserts,
	}
}
