package core

import (
	"parapriori/internal/cluster"
	"parapriori/internal/countengine"
	"parapriori/internal/hashtree"
)

// The mining code performs the real work (hash-tree construction, subset
// counting) and then converts the *measured operation counts* into virtual
// time through the machine's cost constants.  This keeps the emulation
// honest: the time charged for a pass is a linear function of exactly the
// operations the paper's Section IV analysis counts, with no modeling of
// work that did not happen.

// chargeSubset converts a hash-tree counting delta into compute time:
// traversal steps at t_travers plus leaf candidate checks at t_check.
func chargeSubset(p *cluster.Proc, delta hashtree.Stats) {
	m := p.Machine()
	p.Compute(float64(delta.Traversals)*m.TTravers+float64(delta.LeafChecks)*m.TCheck, "subset")
}

// chargeBuild converts candidate insertions into tree-construction time,
// the O(M) (CD) vs O(M/P) (IDD) term of the analysis.
func chargeBuild(p *cluster.Proc, inserts int64) {
	p.Compute(float64(inserts)*p.Machine().TInsert, "tree build")
}

// chargeGen charges the replicated apriori_gen work: every processor
// generates the full candidate set before keeping its share.
func chargeGen(p *cluster.Proc, generated int) {
	p.Compute(float64(generated)*p.Machine().TGen, "candidate gen")
}

// chargeScan charges per-item transaction touching work: F1 counting and
// the per-item bitmap filtering of IDD.
func chargeScan(p *cluster.Proc, items int64, phase string) {
	p.Compute(float64(items)*p.Machine().TItem, phase)
}

// chargeEngineBuild charges a counting engine's construction delta at
// t_insert — with the hashtree backend this is exactly chargeBuild on the
// tree's Inserts, so the seam charges bit-identical virtual time.
func chargeEngineBuild(p *cluster.Proc, delta countengine.Stats) {
	chargeBuild(p, delta.BuildOps)
}

// chargeEngineCount charges a counting delta: node navigation at t_travers
// plus candidate checks at t_check (the hash-tree terms, charged with the
// identical expression so the default engine's clock is unchanged), then
// contiguous-array navigation at t_array, bitmap word work at t_word, and
// per-item streaming work at t_item — operation kinds only the new
// backends spend.
func chargeEngineCount(p *cluster.Proc, delta countengine.Stats) {
	m := p.Machine()
	p.Compute(float64(delta.NodeSteps)*m.TTravers+float64(delta.CandChecks)*m.TCheck, "subset")
	if delta.ArraySteps > 0 {
		p.Compute(float64(delta.ArraySteps)*m.TArray, "subset")
	}
	if delta.WordOps > 0 {
		p.Compute(float64(delta.WordOps)*m.TWord, "subset")
	}
	if delta.ItemTouches > 0 {
		p.Compute(float64(delta.ItemTouches)*m.TItem, "subset")
	}
}

// treeDelta returns the difference between two snapshots of tree counters.
func treeDelta(before, after hashtree.Stats) hashtree.Stats {
	return hashtree.Stats{
		Traversals:   after.Traversals - before.Traversals,
		LeafVisits:   after.LeafVisits - before.LeafVisits,
		LeafChecks:   after.LeafChecks - before.LeafChecks,
		Transactions: after.Transactions - before.Transactions,
		Inserts:      after.Inserts - before.Inserts,
	}
}
