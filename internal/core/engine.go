package core

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/bitmap"
	"parapriori/internal/cluster"
	"parapriori/internal/countengine"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/partition"
)

// gridBody is the SPMD program of the grid engine that realizes CD, IDD and
// HD.  The P processors are arranged as G rows × (P/G) columns:
//
//   - candidates are partitioned among the G rows with the bin-packing
//     partitioner, every column seeing the identical partition;
//   - each column ring-shifts its transactions so every processor counts
//     its row's candidates against the column's whole data (the IDD part);
//   - counts are summed along rows, where everyone holds the same
//     candidates (the CD part);
//   - locally frequent sets are all-to-all broadcast down the columns.
//
// G = 1 is exactly CD (full tree everywhere, reduction over all P), G = P
// is exactly IDD (P-way candidate partition, ring over all P).  HD picks G
// per pass from the candidate count (Table II).
//
// Under fault-tolerant execution the grid is shaped over the *active*
// processors (virtual ranks into run.active) rather than all P, and a body
// re-entered after a rollback resumes from its checkpoint: the last level
// every survivor completed.  Ranks outside the active set return
// immediately.
func (r *run) gridBody(p *cluster.Proc) error {
	vr := r.vrank[p.ID()]
	if vr < 0 {
		return nil
	}
	np := r.np()
	tr := &r.perProc[p.ID()]
	r.chargeRestore(p, tr)
	var prev []apriori.Frequent
	if len(tr.levels) == 0 {
		if r.ooc() {
			var err error
			if prev, err = r.firstPassOOC(p, tr); err != nil {
				return err
			}
		} else {
			prev = r.firstPass(p, tr)
		}
		tr.levels = append(tr.levels, prev)
		ckStart := p.Clock()
		if err := r.checkpoint(p, prev); err != nil {
			return err
		}
		r.sec(p, "checkpoint", ckStart, obsv.Int("k", 1))
		r.passSpan(p, tr)
	} else {
		prev = tr.levels[len(tr.levels)-1]
	}

	for k := len(tr.levels) + 1; len(prev) > 0; k++ {
		if r.prm.Apriori.MaxPasses > 0 && k > r.prm.Apriori.MaxPasses {
			break
		}
		clockStart := p.Clock()

		cands := apriori.Gen(itemsetsOf(prev))
		chargeGen(p, len(cands))
		r.sec(p, "candidate gen", clockStart, obsv.Int("k", int64(k)))
		if len(cands) == 0 {
			break
		}

		g := r.chooseG(len(cands))
		cols := np / g
		row, col := vr/cols, vr%cols
		rowComm, colComm := r.gridComms(row, col, g, cols)

		// Partition candidates among the rows.  Every processor runs the
		// same deterministic bin-packing, so no communication is needed to
		// agree on the assignment (each processor "locally regenerates and
		// stores" its share, as Section III-C describes).
		var myCands []itemset.Itemset
		var filter func(itemset.Item) bool
		var candImbalance float64
		if g == 1 {
			myCands = cands
		} else {
			partStart := p.Clock()
			asg := partition.BinPack(cands, g, r.prm.SplitThreshold)
			myCands = asg.PerProc[row]
			candImbalance = asg.Imbalance()
			chargeScan(p, int64(len(cands)), "partition")
			bm := bitmap.New(r.itemCount())
			for _, c := range myCands {
				bm.Set(int(c[0]))
			}
			filter = func(it itemset.Item) bool { return bm.Test(int(it)) }
			r.sec(p, "partition", partStart, obsv.Int("k", int64(k)))
		}

		// Only the pure-CD configuration (a column of one) may need the
		// multi-scan partitioned tree: with g > 1 the whole point of the
		// candidate partitioning is that M/G candidates fit in memory.
		parts := 1
		if g == 1 {
			parts = apriori.TreeParts(len(myCands), k, apriori.Params{
				Tree:        r.prm.Apriori.Tree,
				MemoryBytes: p.Machine().MemoryBytes,
			})
		}

		computeBefore := p.Stats().ComputeTime
		var passTree hashtree.Stats
		var bytesMoved int64
		var read oocReadStats
		var frequentLocal []apriori.Frequent
		var pages [][]itemset.Transaction
		var shardBytes int64
		if !r.ooc() {
			pages, shardBytes = r.ownedPages(p.ID())
		}

		// Every processor joins every part's ring shift and reduction even
		// if its own candidate share is empty (a row can receive zero
		// candidates when a late pass has fewer first-item groups than
		// rows): the collectives are what keep the column in step.
		for part := 0; part < parts; part++ {
			lo, hi := part*len(myCands)/parts, (part+1)*len(myCands)/parts
			buildStart := p.Clock()
			eng, err := r.engineBuilder().NewPass(k, myCands[lo:hi])
			if err != nil {
				return fmt.Errorf("pass %d: %w", k, err)
			}
			chargeEngineBuild(p, eng.Stats())
			r.sec(p, "build", buildStart, obsv.Int("k", int64(k)), obsv.Int("part", int64(part)))

			process := func(page []itemset.Transaction) {
				if len(page) == 0 {
					return
				}
				var items int64
				for _, t := range page {
					items += int64(len(t.Items))
				}
				if eng.Len() > 0 {
					before := eng.Stats()
					eng.CountBlock(page, filter)
					chargeEngineCount(p, countengine.Delta(before, eng.Stats()))
				}
				if filter != nil {
					// The root-level bitmap check touches every item of
					// every transaction once.
					chargeScan(p, items, "filter")
				}
			}

			countStart := p.Clock()
			if r.ooc() {
				// Out of core, every block's real on-disk size is charged as
				// it is read (inside the stream) instead of one modeled
				// charge for the whole shard.
				moved, rs, err := r.ringCountStream(p, colComm, fmt.Sprintf("k%d.p%d/ring", k, part), process)
				if err != nil {
					return fmt.Errorf("pass %d: %w", k, err)
				}
				bytesMoved += moved
				read.add(rs)
			} else {
				p.ReadIO(shardBytes, "io")
				bytesMoved += ringCount(p, colComm, fmt.Sprintf("k%d.p%d/ring", k, part), pages, process)
			}
			// Deferred backends (bitset) intersect their bitmaps inside
			// Counts; snapshotting around the call folds that work into the
			// count section.  The hash tree and trie charge nothing here.
			countsBefore := eng.Stats()
			counts := eng.Counts()
			chargeEngineCount(p, countengine.Delta(countsBefore, eng.Stats()))
			countArgs := []obsv.Attr{obsv.Int("k", int64(k)), obsv.Int("part", int64(part))}
			if r.ooc() {
				countArgs = append(countArgs, obsv.Int("read_bytes", read.bytes))
			}
			r.sec(p, "count", countStart, countArgs...)

			redStart := p.Clock()
			global := rowComm.AllReduceInt64(p, fmt.Sprintf("k%d.p%d/red", k, part), counts)
			r.sec(p, "reduce", redStart, obsv.Int("k", int64(k)), obsv.Int("part", int64(part)))
			frequentLocal = append(frequentLocal, pruneLocal(myCands[lo:hi], global, r.minCount)...)
			passTree.Add(eng.Stats().TreeStats())
		}
		countTime := p.Stats().ComputeTime - computeBefore

		var level []apriori.Frequent
		if g == 1 {
			// CD: every processor holds all candidates with global counts;
			// no frequent-set exchange is needed.
			level = frequentLocal
		} else {
			exStart := p.Clock()
			level = exchangeFrequent(p, colComm, fmt.Sprintf("k%d/freq", k), frequentLocal)
			r.sec(p, "exchange", exStart, obsv.Int("k", int64(k)))
		}

		tr.passes = append(tr.passes, passLocal{
			k:             k,
			candidates:    len(cands),
			localCands:    len(myCands),
			frequent:      len(level),
			gridRows:      g,
			gridCols:      cols,
			treeParts:     parts,
			tree:          passTree,
			bytesMoved:    bytesMoved,
			countTime:     countTime,
			clockStart:    clockStart,
			clockEnd:      p.Clock(),
			candImbalance: candImbalance,
			read:          read,
		})
		tr.levels = append(tr.levels, level)
		ckStart := p.Clock()
		if err := r.checkpoint(p, level); err != nil {
			return err
		}
		r.sec(p, "checkpoint", ckStart, obsv.Int("k", int64(k)))
		r.passSpan(p, tr, obsv.Int("row", int64(row)), obsv.Int("col", int64(col)))
		prev = level
	}
	return nil
}

// ownedPages concatenates the pages of every shard the rank owns (its own
// plus any adopted from lost ranks) and returns them with the total byte
// size, in deterministic shard order.
func (r *run) ownedPages(rank int) ([][]itemset.Transaction, int64) {
	if r.ownedShards == nil {
		sh := r.shards[rank]
		return sh.Pages(r.prm.PageBytes), int64(sh.Bytes())
	}
	var pages [][]itemset.Transaction
	var bytes int64
	for _, si := range r.ownedShards[rank] {
		sh := r.shards[si]
		pages = append(pages, sh.Pages(r.prm.PageBytes)...)
		bytes += int64(sh.Bytes())
	}
	return pages, bytes
}

// chooseG picks the number of candidate partitions (grid rows) for a pass
// with m candidates.  CD always uses 1, IDD always uses the active
// processor count; HD uses the pinned FixedG or the smallest divisor of
// the active count no smaller than ⌈m/threshold⌉ so every row keeps at
// least `threshold` candidates (Table II's dynamic configurations).
//
// The grid is shaped over np() — after graceful degradation a pinned
// FixedG that no longer divides the survivor count is rounded down to the
// largest divisor that does.
func (r *run) chooseG(m int) int {
	np := r.np()
	switch r.prm.Algo {
	case CD:
		return 1
	case IDD:
		return np
	default: // HD
		if r.prm.FixedG > 0 {
			g := r.prm.FixedG
			if g > np {
				g = np
			}
			for ; g > 1; g-- {
				if np%g == 0 {
					break
				}
			}
			return g
		}
		need := (m + r.prm.HDThreshold - 1) / r.prm.HDThreshold
		if need <= 1 {
			return 1
		}
		for g := need; g < np; g++ {
			if np%g == 0 {
				return g
			}
		}
		return np
	}
}

// gridComms builds this processor's row and column communicators for a
// G×cols grid.  Processor (row, col) has *virtual* rank row*cols + col;
// members are mapped through the active set to global ranks.
func (r *run) gridComms(row, col, g, cols int) (rowComm, colComm *cluster.Comm) {
	rowMembers := make([]int, cols)
	for c := 0; c < cols; c++ {
		rowMembers[c] = r.active[row*cols+c]
	}
	colMembers := make([]int, g)
	for rr := 0; rr < g; rr++ {
		colMembers[rr] = r.active[rr*cols+col]
	}
	rowComm, err := cluster.NewComm(r.cl, rowMembers)
	if err != nil {
		panic(err) // unreachable: members derived from valid grid shape
	}
	colComm, err = cluster.NewComm(r.cl, colMembers)
	if err != nil {
		panic(err)
	}
	return rowComm, colComm
}

// ringCount runs the pipelined ring data movement of Figure 6 over the
// communicator: every processor's pages take size-1 hops around the ring,
// and each buffer is processed between posting the send and completing the
// receive, so communication overlaps computation on machines that support
// it.  It returns the transaction bytes this processor sent.
//
// With a singleton communicator it degenerates to processing the local
// pages in place (CD's counting loop).
func ringCount(p *cluster.Proc, cm *cluster.Comm, tag string, pages [][]itemset.Transaction, process func([]itemset.Transaction)) int64 {
	size := cm.Size()
	if size == 1 {
		for _, page := range pages {
			process(page)
		}
		return 0
	}
	rank := cm.Rank(p)
	if rank < 0 {
		panic(fmt.Sprintf("core: proc %d not in ring communicator %q", p.ID(), tag))
	}
	// Processors may hold different page counts (±1); agree on the number
	// of rounds so the ring stays in step, padding with empty buffers.
	counts := cm.AllGather(p, tag+"/npages", len(pages), 8)
	rounds := 0
	for _, g := range counts {
		if n := g.Payload.(int); n > rounds {
			rounds = n
		}
	}

	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	var sent int64
	for round := 0; round < rounds; round++ {
		var cur []itemset.Transaction
		if round < len(pages) {
			cur = pages[round]
		}
		for s := 0; s < size-1; s++ {
			b := pageBytesOf(cur)
			p.SendReliable(cm.Member(right), tag, cur, b)
			sent += int64(b)
			process(cur)
			msg := p.RecvReliable(cm.Member(left), tag)
			cur = msg.Payload.([]itemset.Transaction)
		}
		process(cur)
	}
	return sent
}

// pageBytesOf is the modeled wire size of a transaction page: a small
// header plus the transactions.
func pageBytesOf(page []itemset.Transaction) int {
	b := 16
	for _, t := range page {
		b += t.Bytes()
	}
	return b
}
