package core

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
)

// firstPass computes the globally frequent items F1.  Every formulation
// does this identically: each processor array-counts its local shard and a
// global reduction sums the per-item counts (there is no hash tree for
// k = 1).  Every processor returns the identical, item-ordered F1.
func (r *run) firstPass(p *cluster.Proc, tr *procTrace) []apriori.Frequent {
	start := p.Clock()

	counts := make([]int64, r.data.NumItems)
	var items, shardBytes int64
	for _, si := range r.ownedShardsOf(p.ID()) {
		shard := r.shards[si]
		for _, t := range shard.Transactions {
			for _, it := range t.Items {
				counts[it]++
			}
			items += int64(len(t.Items))
		}
		shardBytes += int64(shard.Bytes())
	}
	p.ReadIO(shardBytes, "io")
	chargeScan(p, items, "scan")
	countStart := p.Clock()
	r.sec(p, "scan", start, obsv.Int("k", 1))

	global := r.world.AllReduceInt64(p, "f1", counts)
	r.sec(p, "reduce", countStart, obsv.Int("k", 1))

	var f1 []apriori.Frequent
	for it, c := range global {
		if c >= r.minCount {
			f1 = append(f1, apriori.Frequent{Items: itemset.Itemset{itemset.Item(it)}, Count: c})
		}
	}
	tr.passes = append(tr.passes, passLocal{
		k:          1,
		candidates: r.data.NumItems,
		frequent:   len(f1),
		gridRows:   1,
		gridCols:   r.np(),
		treeParts:  1,
		countTime:  countStart - start,
		clockStart: start,
		clockEnd:   p.Clock(),
	})
	return f1
}

// exchangeFrequent runs the all-to-all broadcast of locally frequent
// itemsets over the given communicator and returns the merged, sorted
// global level.  Used by DD (over all processors) and by the grid engine
// (down each column).
func exchangeFrequent(p *cluster.Proc, cm *cluster.Comm, tag string, local []apriori.Frequent) []apriori.Frequent {
	gathered := cm.AllGather(p, tag, local, frequentBytes(local))
	var merged []apriori.Frequent
	for _, g := range gathered {
		part, ok := g.Payload.([]apriori.Frequent)
		if !ok {
			panic(fmt.Sprintf("core: exchangeFrequent %q: unexpected payload %T", tag, g.Payload))
		}
		merged = append(merged, part...)
	}
	sortFrequent(merged)
	return merged
}

// pruneLocal keeps the candidates whose global counts meet the threshold.
func pruneLocal(cands []itemset.Itemset, counts []int64, minCount int64) []apriori.Frequent {
	var out []apriori.Frequent
	for i, c := range cands {
		if counts[i] >= minCount {
			out = append(out, apriori.Frequent{Items: c, Count: counts[i]})
		}
	}
	return out
}
