package core

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"parapriori/internal/apriori"
)

// Persistent pass-level checkpoints.  With Params.CheckpointDir set, the
// first active rank rewrites <dir>/checkpoint.freq after every completed
// pass — the full frequent levels so far in the WriteResult codec, written
// to a temp file and renamed so a kill mid-write leaves the previous
// checkpoint intact.  The next Mine over the same workload (same transaction
// count and minimum count — the codec header records both) seeds every
// rank's levels from the file and resumes at the first unmined pass, through
// the same resume path a fault-rollback uses.  A checkpoint from a different
// workload is an error, not a silent re-mine: pointing a resume at the wrong
// directory should fail loudly.

// checkpointFile is the checkpoint's name inside Params.CheckpointDir.
const checkpointFile = "checkpoint.freq"

// persistCheckpoint atomically rewrites the checkpoint file with every
// level the rank has completed.  Only the first active rank writes: levels
// are globally identical, and a single writer keeps the file race-free
// without coordination.
func (r *run) persistCheckpoint(rank int) error {
	if r.prm.CheckpointDir == "" || rank != r.firstActive() {
		return nil
	}
	res := &apriori.Result{N: r.txnCount(), MinCount: r.minCount, Levels: r.perProc[rank].levels}
	final := filepath.Join(r.prm.CheckpointDir, checkpointFile)
	tmp := final + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := apriori.WriteResult(f, res); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint seeds the run from a persisted checkpoint, if one exists.
// Every rank gets its own outer slice over the shared (read-only) levels,
// synthesized pass records marked Restored, and a pending restore charge so
// the reload cost appears on the virtual clock.  Returns the number of
// passes resumed.
func (r *run) loadCheckpoint() (int, error) {
	if r.prm.CheckpointDir == "" {
		return 0, nil
	}
	f, err := os.Open(filepath.Join(r.prm.CheckpointDir, checkpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil // first run in this directory
	}
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	defer f.Close()
	res, err := apriori.ReadResult(f)
	if err != nil {
		return 0, fmt.Errorf("core: checkpoint: %w", err)
	}
	if res.N != r.txnCount() || res.MinCount != r.minCount {
		return 0, fmt.Errorf("core: checkpoint in %s is from a different workload (N=%d minCount=%d, this run has N=%d minCount=%d)",
			r.prm.CheckpointDir, res.N, res.MinCount, r.txnCount(), r.minCount)
	}
	if len(res.Levels) == 0 {
		return 0, nil
	}
	for _, g := range r.active {
		tr := &r.perProc[g]
		tr.levels = append([][]apriori.Frequent(nil), res.Levels...)
		for i, level := range res.Levels {
			tr.passes = append(tr.passes, passLocal{k: i + 1, frequent: len(level), restored: true})
		}
		r.restartWant[g] = true
	}
	return len(res.Levels), nil
}
