package core

import (
	"errors"
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
)

// This file implements fault-tolerant execution for the grid formulations
// (CD, IDD, HD): pass-level checkpointing of the frequent levels and a
// coordinated-rollback recovery driver.
//
// The recovery model is global rollback to the last pass every surviving
// processor completed.  The grid engine's passes are collective — every
// active processor finishes pass k together or not at all — so the minimum
// completed level across survivors is a consistent cut.  On failure the
// driver truncates every survivor's levels to that cut, clears the
// in-flight communication state (cluster.ResetComm), revives transient
// crashers (their virtual clocks keep the crash time — recovery time is
// real time), removes permanent losses from the active set (their shards
// are adopted by the ring successor, and the grid reshapes over the
// survivors), and re-runs the SPMD body.  Bodies resume from their
// checkpoint: k = last completed level + 1.
//
// Params.Recovery picks who pays the restore charge on re-entry.
// RecoveryCoordinated (the default) bills every active rank — the classic
// model where everyone reloads from the checkpoint.  RecoveryAsymmetric
// bills only the ranks that crashed: the rollback cut is the same (passes
// are collective), but survivors keep their frequent levels in memory and
// idle at the pass barrier while the replayers reload, so total recovery
// I/O drops from P restores to one per crashed rank.

// mineWithRecovery drives cl.Run to completion through faults, restarting
// up to prm.MaxRestarts times.
func (r *run) mineWithRecovery(body func(p *cluster.Proc) error) error {
	for {
		err := r.cl.Run(body)
		if err == nil {
			return nil
		}
		crashes, dead, other := collectFaults(err)
		if len(other) > 0 {
			// A non-fault error is a bug in the algorithm, not a scheduled
			// fault; recovery would mask it.
			return err
		}
		if r.restarts >= r.prm.MaxRestarts {
			return fmt.Errorf("core: giving up after %d recovery attempts: %w", r.restarts, err)
		}
		r.restarts++

		// Rank removal: permanent crashes, plus ranks a survivor declared
		// dead after exhausting the retry protocol.
		remove := make([]bool, r.prm.P)
		for _, ce := range crashes {
			if ce.Permanent {
				remove[ce.Rank] = true
			}
		}
		for _, de := range dead {
			if de.RetriesExhausted {
				remove[de.Peer] = true
			}
		}
		if err := r.degrade(remove); err != nil {
			return err
		}

		// Asymmetric recovery charges the checkpoint restore only to the
		// ranks that actually lost their in-memory state — the crashers.
		// Survivors truncate bookkeeping to the consistent cut but keep
		// their levels in memory, so their re-entry is free.
		replay := make(map[int]bool, len(crashes))
		for _, ce := range crashes {
			replay[ce.Rank] = true
		}

		// Roll every survivor back to the last globally completed pass.
		minL := -1
		for _, g := range r.active {
			if n := len(r.perProc[g].levels); minL < 0 || n < minL {
				minL = n
			}
		}
		for _, g := range r.active {
			tr := &r.perProc[g]
			tr.levels = tr.levels[:minL]
			tr.passes = tr.passes[:minL]
			if r.prm.Recovery != RecoveryAsymmetric || replay[g] {
				r.restartWant[g] = true
			}
		}
		r.cl.ResetComm()
	}
}

// degrade removes the marked ranks from the active set, handing each
// removed rank's shards to its ring successor among the survivors.
func (r *run) degrade(remove []bool) error {
	any := false
	for _, g := range r.active {
		if remove[g] {
			any = true
		}
	}
	if !any {
		return nil
	}
	var kept []int
	for _, g := range r.active {
		if remove[g] {
			r.lost = append(r.lost, g)
		} else {
			kept = append(kept, g)
		}
	}
	if len(kept) == 0 {
		return fmt.Errorf("core: all %d processors lost, cannot recover", r.prm.P)
	}
	// Adopt shards: each removed rank's shards go to the next surviving
	// rank on the (old) active ring, so data locality degrades gracefully
	// instead of re-sharding the whole database.
	for _, g := range r.active {
		if !remove[g] {
			continue
		}
		succ := r.ringSuccessor(g, remove)
		r.ownedShards[succ] = append(r.ownedShards[succ], r.ownedShards[g]...)
		r.ownedShards[g] = nil
	}
	r.active = kept
	r.rebuildVRank()
	r.world = r.mustComm(kept)
	return nil
}

// ringSuccessor returns the first non-removed rank after g on the current
// active ring.
func (r *run) ringSuccessor(g int, remove []bool) int {
	v := r.vrank[g]
	n := len(r.active)
	for i := 1; i < n; i++ {
		cand := r.active[(v+i)%n]
		if !remove[cand] {
			return cand
		}
	}
	return g // unreachable: degrade checks at least one survivor remains
}

// mustComm builds a communicator over the given global ranks.
func (r *run) mustComm(members []int) *cluster.Comm {
	cm, err := cluster.NewComm(r.cl, members)
	if err != nil {
		panic(err) // unreachable: members are valid surviving ranks
	}
	return cm
}

// collectFaults flattens the error tree Cluster.Run returns and buckets the
// leaves into scheduled crashes, dead-peer detections, and everything else.
func collectFaults(err error) (crashes []*cluster.CrashError, dead []*cluster.DeadRankError, other []error) {
	var walk func(e error)
	walk = func(e error) {
		if e == nil {
			return
		}
		if multi, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range multi.Unwrap() {
				walk(sub)
			}
			return
		}
		var ce *cluster.CrashError
		if errors.As(e, &ce) {
			crashes = append(crashes, ce)
			return
		}
		var de *cluster.DeadRankError
		if errors.As(e, &de) {
			dead = append(dead, de)
			return
		}
		other = append(other, e)
	}
	walk(err)
	return crashes, dead, other
}

// checkpoint persists one completed level.  Under a fault plan it charges
// the modeled cost — writing the serialized frequent itemsets (at I/O
// bandwidth) plus touching each item once; the virtual clock of fault-free
// runs is unchanged.  With Params.CheckpointDir set it also rewrites the
// on-disk checkpoint (see persist.go), so a killed process resumes from its
// last completed pass.
func (r *run) checkpoint(p *cluster.Proc, level []apriori.Frequent) error {
	if r.prm.Faults != nil {
		p.ReadIO(int64(frequentBytes(level)), "checkpoint")
		p.Compute(float64(levelItems(level))*p.Machine().TItem, "checkpoint")
	}
	return r.persistCheckpoint(p.ID())
}

// chargeRestore charges the cost of reloading the checkpointed levels when
// a body re-enters after a rollback.
func (r *run) chargeRestore(p *cluster.Proc, tr *procTrace) {
	if !r.restartWant[p.ID()] {
		return
	}
	r.restartWant[p.ID()] = false
	restStart := p.Clock()
	var bytes, items int64
	for _, level := range tr.levels {
		bytes += int64(frequentBytes(level))
		items += levelItems(level)
	}
	p.ReadIO(bytes, "recovery")
	p.Compute(float64(items)*p.Machine().TItem, "recovery")
	r.sec(p, "recovery", restStart)
}

// levelItems counts the items across a frequent level.
func levelItems(level []apriori.Frequent) int64 {
	var n int64
	for _, f := range level {
		n += int64(len(f.Items))
	}
	return n
}
