package core

import (
	"strconv"

	"parapriori/internal/cluster"
	"parapriori/internal/countengine"
	"parapriori/internal/obsv"
)

// Span emission for the mining engine.  When Params.Recorder is set, the
// SPMD bodies emit a hierarchy over the virtual clock — run → pass →
// section — and Mine converts the cluster's low-level event trace into leaf
// slices, so an exported trace shows every rank's timeline from the whole
// run down to individual compute slices and messages.  With a nil recorder
// every hook is one branch.

// sec records one engine section span covering [start, now] on the
// processor's rank.  Zero-duration sections (e.g. a checkpoint on a
// fault-free run, where the checkpoint charges nothing) are skipped, like
// the cluster's own event recording.
func (r *run) sec(p *cluster.Proc, name string, start float64, args ...obsv.Attr) {
	if r.rec == nil {
		return
	}
	end := p.Clock()
	if end <= start {
		return
	}
	r.rec.Record(obsv.Span{
		Name: name, Cat: obsv.CatSection, Rank: p.ID(),
		Start: start, End: end, Args: args,
	})
}

// passSpan records the span of the rank's most recently appended pass,
// ending now — callers invoke it after the pass's checkpoint charges land,
// so consecutive pass spans tile the rank's timeline and the attribution
// report can bucket every slice.  Extra args (grid position) are appended
// to the standard set.
func (r *run) passSpan(p *cluster.Proc, tr *procTrace, extra ...obsv.Attr) {
	if r.rec == nil {
		return
	}
	pl := tr.passes[len(tr.passes)-1]
	args := []obsv.Attr{
		obsv.Int("k", int64(pl.k)),
		obsv.Int("candidates", int64(pl.candidates)),
		obsv.Int("local_candidates", int64(pl.localCands)),
		obsv.Int("frequent", int64(pl.frequent)),
		obsv.Int("grid_rows", int64(pl.gridRows)),
		obsv.Int("grid_cols", int64(pl.gridCols)),
		obsv.Int("bytes_moved", pl.bytesMoved),
	}
	if pl.read.blocks > 0 {
		args = append(args,
			obsv.Int("read_blocks", pl.read.blocks),
			obsv.Int("read_bytes", pl.read.bytes),
			obsv.Int("read_stalls", pl.read.stalls),
			obsv.Float("decode_seconds", pl.read.decodeSeconds),
		)
	}
	args = append(args, extra...)
	r.rec.Record(obsv.Span{
		Name: "pass k=" + strconv.Itoa(pl.k), Cat: obsv.CatPass, Rank: p.ID(),
		Start: pl.clockStart, End: p.Clock(), Args: args,
	})
}

// recordRunTrace finishes the observability trace after the cluster run:
// the cluster's event log becomes leaf slices, and one cluster-wide run
// span covers [0, MaxClock].
func (r *run) recordRunTrace(resumed int) {
	if r.rec == nil {
		return
	}
	obsv.RecordClusterTrace(r.rec, r.cl.Trace())
	r.rec.Record(obsv.Span{
		Name: "mine " + string(r.prm.Algo), Cat: obsv.CatRun, Rank: -1,
		Start: 0, End: r.cl.MaxClock(),
		Args: []obsv.Attr{
			obsv.Int("p", int64(r.prm.P)),
			obsv.Int("passes", int64(len(r.perProc[r.firstActive()].passes))),
			obsv.Int("restarts", int64(r.restarts)),
			obsv.Int("resumed_passes", int64(resumed)),
		},
	})
}

// WriteProm renders the run's outcome as Prometheus text exposition — one
// scrape-shaped snapshot of a finished mine, so mining results flow through
// the same registry and naming scheme as the serving tiers.  The values are
// virtual-clock quantities: on a seeded run the exposition is bit-identical
// between runs.
func (r *Report) WriteProm(w *obsv.PromWriter) {
	var moved int64
	for _, pass := range r.Passes {
		moved += pass.BytesMoved
	}
	w.Gauge("parapriori_mine_response_seconds", "Total virtual response time of the mining run.", r.ResponseTime)
	w.Gauge("parapriori_mine_passes", "Level-wise passes the run performed.", float64(len(r.Passes)))
	w.Gauge("parapriori_mine_processors", "Emulated processors the run used.", float64(r.P))
	w.Counter("parapriori_mine_bytes_moved_total", "Transaction bytes communicated between processors.", float64(moved))
	w.Counter("parapriori_mine_read_partitions_total", "Partition files the out-of-core read path opened.", float64(r.Read.Partitions))
	w.Counter("parapriori_mine_read_blocks_total", "Blocks the out-of-core read path verified.", float64(r.Read.Blocks))
	w.Counter("parapriori_mine_read_bytes_total", "On-disk bytes the out-of-core read path consumed.", float64(r.Read.Bytes))
	w.Counter("parapriori_mine_read_stalls_total", "Synchronous block reads the ranks' clocks waited on.", float64(r.Read.Stalls))
	w.Counter("parapriori_mine_crc_retries_total", "Block checksum failures survived by re-reading.", float64(r.Read.CRCRetries))
	w.Counter("parapriori_mine_decode_seconds_total", "Virtual compute seconds spent decoding blocks.", r.Read.DecodeSeconds)
}

// setRunMeta stamps the trace-level attributes of a mining run.
func (r *run) setRunMeta() {
	if r.rec == nil {
		return
	}
	r.rec.SetMeta("clock", string(obsv.ClockVirtual))
	r.rec.SetMeta("algo", string(r.prm.Algo))
	r.rec.SetMeta("p", strconv.Itoa(r.prm.P))
	r.rec.SetMeta("machine", r.prm.Machine.Name)
	r.rec.SetMeta("min_support", strconv.FormatFloat(r.prm.Apriori.MinSupport, 'g', -1, 64))
	engine := r.prm.Apriori.Engine
	if engine == "" {
		engine = countengine.Default
	}
	r.rec.SetMeta("engine", engine)
}
