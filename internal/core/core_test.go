package core

import (
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/datagen"
	"parapriori/internal/itemset"
)

// testData returns a small but non-trivial synthetic dataset shared by the
// equivalence tests.
func testData(tb testing.TB) *itemset.Dataset {
	tb.Helper()
	p := datagen.Defaults()
	p.NumTransactions = 1500
	p.NumItems = 120
	p.NumPatterns = 60
	p.AvgTxnLen = 10
	p.AvgPatternLen = 4
	p.Seed = 42
	d, err := datagen.Generate(p)
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return d
}

func serialResult(tb testing.TB, d *itemset.Dataset, minsup float64) *apriori.Result {
	tb.Helper()
	res, err := apriori.Mine(d, apriori.Params{MinSupport: minsup})
	if err != nil {
		tb.Fatalf("serial mine: %v", err)
	}
	return res
}

// assertSameFrequent checks that a parallel report found exactly the serial
// algorithm's frequent itemsets with identical counts.
func assertSameFrequent(t *testing.T, want *apriori.Result, got *Report) {
	t.Helper()
	w, g := want.All(), got.Result.All()
	if len(w) != len(g) {
		t.Fatalf("frequent itemset count: got %d, want %d", len(g), len(w))
	}
	for i := range w {
		if !w[i].Items.Equal(g[i].Items) {
			t.Fatalf("itemset %d: got %v, want %v", i, g[i].Items, w[i].Items)
		}
		if w[i].Count != g[i].Count {
			t.Fatalf("itemset %d (%v): got count %d, want %d", i, w[i].Items, g[i].Count, w[i].Count)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	d := testData(t)
	const minsup = 0.02
	want := serialResult(t, d, minsup)
	if want.NumFrequent() < 50 {
		t.Fatalf("workload too easy: only %d frequent itemsets", want.NumFrequent())
	}
	algos := []Algorithm{CD, DD, DDComm, IDD, HD}
	ps := []int{1, 2, 3, 4, 8}
	for _, algo := range algos {
		for _, p := range ps {
			rep, err := Mine(d, Params{
				Algo:    algo,
				P:       p,
				Apriori: apriori.Params{MinSupport: minsup},
			})
			if err != nil {
				t.Fatalf("%s P=%d: %v", algo, p, err)
			}
			t.Run(string(algo), func(t *testing.T) { assertSameFrequent(t, want, rep) })
		}
	}
}

func TestHDDegeneratesToCDAndIDD(t *testing.T) {
	d := testData(t)
	const minsup = 0.02
	const p = 4
	mk := func(algo Algorithm, fixedG int) *Report {
		rep, err := Mine(d, Params{
			Algo:    algo,
			P:       p,
			FixedG:  fixedG,
			Apriori: apriori.Params{MinSupport: minsup},
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		return rep
	}
	cd := mk(CD, 0)
	hd1 := mk(HD, 1)
	idd := mk(IDD, 0)
	hdP := mk(HD, p)

	if cd.ResponseTime != hd1.ResponseTime {
		t.Errorf("HD(G=1) response %v != CD response %v", hd1.ResponseTime, cd.ResponseTime)
	}
	if idd.ResponseTime != hdP.ResponseTime {
		t.Errorf("HD(G=P) response %v != IDD response %v", hdP.ResponseTime, idd.ResponseTime)
	}
}

func TestMineDeterministic(t *testing.T) {
	d := testData(t)
	prm := Params{Algo: HD, P: 6, Apriori: apriori.Params{MinSupport: 0.02}}
	a, err := Mine(d, prm)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Mine(d, prm)
	if err != nil {
		t.Fatal(err)
	}
	if a.ResponseTime != b.ResponseTime {
		t.Errorf("nondeterministic response time: %v vs %v", a.ResponseTime, b.ResponseTime)
	}
	for i := range a.Clocks {
		if a.Clocks[i] != b.Clocks[i] {
			t.Errorf("proc %d clock differs: %v vs %v", i, a.Clocks[i], b.Clocks[i])
		}
	}
}

func TestDDSlowerThanIDD(t *testing.T) {
	d := testData(t)
	const minsup = 0.02
	run := func(algo Algorithm) float64 {
		rep, err := Mine(d, Params{Algo: algo, P: 8, Apriori: apriori.Params{MinSupport: minsup}})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		return rep.ResponseTime
	}
	dd, ddc, idd := run(DD), run(DDComm), run(IDD)
	if !(dd > ddc) {
		t.Errorf("expected DD (%v) > DD+comm (%v): ring communication should beat all-to-all", dd, ddc)
	}
	if !(ddc > idd) {
		t.Errorf("expected DD+comm (%v) > IDD (%v): intelligent partitioning should beat round-robin", ddc, idd)
	}
}

func TestLeafVisitsIDDBelowDD(t *testing.T) {
	d := testData(t)
	const minsup = 0.02
	run := func(algo Algorithm) float64 {
		rep, err := Mine(d, Params{Algo: algo, P: 8, Apriori: apriori.Params{MinSupport: minsup}})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		return rep.AvgLeafVisitsPerTxn()
	}
	dd, idd := run(DD), run(IDD)
	if !(idd < dd) {
		t.Errorf("Figure 11 shape violated: IDD leaf visits %v should be below DD %v", idd, dd)
	}
}

func TestParamsValidation(t *testing.T) {
	d := testData(t)
	cases := []Params{
		{Algo: "nope", P: 2, Apriori: apriori.Params{MinSupport: 0.1}},
		{Algo: CD, P: 2, Apriori: apriori.Params{MinSupport: 0}},
		{Algo: CD, P: 2, Apriori: apriori.Params{MinSupport: 1.5}},
		{Algo: HD, P: 4, FixedG: 3, Apriori: apriori.Params{MinSupport: 0.1}},
	}
	for i, prm := range cases {
		if _, err := Mine(d, prm); err == nil {
			t.Errorf("case %d: expected error for %+v", i, prm)
		}
	}
}

func TestMemoryCappedCDMultiScan(t *testing.T) {
	d := testData(t)
	m := cluster.T3E()
	m.MemoryBytes = 2048 // force partitioned trees
	rep, err := Mine(d, Params{Algo: CD, P: 2, Machine: m, Apriori: apriori.Params{MinSupport: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	want := serialResult(t, d, 0.02)
	assertSameFrequent(t, want, rep)
	multi := false
	for _, pass := range rep.Passes {
		if pass.TreeParts > 1 {
			multi = true
		}
	}
	if !multi {
		t.Error("expected at least one pass with TreeParts > 1 under a 2KB memory cap")
	}
}
