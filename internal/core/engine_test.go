package core

import (
	"strings"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
)

func TestChooseG(t *testing.T) {
	mk := func(algo Algorithm, p, fixedG, threshold int) *run {
		return &run{prm: Params{Algo: algo, P: p, FixedG: fixedG, HDThreshold: threshold}}
	}
	if got := mk(CD, 16, 0, 100).chooseG(1e6); got != 1 {
		t.Errorf("CD chooseG = %d", got)
	}
	if got := mk(IDD, 16, 0, 100).chooseG(5); got != 16 {
		t.Errorf("IDD chooseG = %d", got)
	}
	cases := []struct {
		m, p, threshold, want int
	}{
		{50, 16, 100, 1},   // fits in one row
		{150, 16, 100, 2},  // ceil(150/100)=2 divides 16
		{250, 16, 100, 4},  // need 3 -> next divisor 4
		{900, 16, 100, 16}, // need 9 -> next divisor 16
		{1e6, 16, 100, 16}, // capped at P
		{500, 12, 100, 6},  // need 5 -> next divisor of 12 is 6
	}
	for _, c := range cases {
		if got := mk(HD, c.p, 0, c.threshold).chooseG(c.m); got != c.want {
			t.Errorf("HD chooseG(M=%d, P=%d, m=%d) = %d, want %d", c.m, c.p, c.threshold, got, c.want)
		}
	}
	if got := mk(HD, 16, 8, 100).chooseG(50); got != 8 {
		t.Errorf("FixedG ignored: %d", got)
	}
}

func TestBytesConservation(t *testing.T) {
	// Every byte sent is received: nothing is lost or double-counted in
	// the accounting, for every formulation.
	d := testData(t)
	for _, algo := range []Algorithm{CD, DD, DDComm, IDD, HD, HPA} {
		rep, err := Mine(d, Params{Algo: algo, P: 6, Apriori: apriori.Params{MinSupport: 0.02}})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if rep.Total.BytesSent != rep.Total.BytesReceived {
			t.Errorf("%s: sent %d bytes, received %d", algo, rep.Total.BytesSent, rep.Total.BytesReceived)
		}
		if rep.Total.MessagesSent != rep.Total.MessagesReceived {
			t.Errorf("%s: sent %d messages, received %d", algo, rep.Total.MessagesSent, rep.Total.MessagesReceived)
		}
	}
}

func TestPassReportsConsistent(t *testing.T) {
	d := testData(t)
	rep, err := Mine(d, Params{Algo: HD, P: 8, HDThreshold: 100, Apriori: apriori.Params{MinSupport: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passes) < 3 {
		t.Fatalf("only %d passes", len(rep.Passes))
	}
	for i, pass := range rep.Passes {
		if pass.K != i+1 {
			t.Errorf("pass %d has K=%d", i, pass.K)
		}
		if pass.GridRows*pass.GridCols != rep.P {
			t.Errorf("pass %d grid %dx%d does not tile %d procs", pass.K, pass.GridRows, pass.GridCols, rep.P)
		}
		if pass.Frequent > pass.Candidates {
			t.Errorf("pass %d: %d frequent from %d candidates", pass.K, pass.Frequent, pass.Candidates)
		}
		if pass.ResponseTime < 0 {
			t.Errorf("pass %d: negative response %v", pass.K, pass.ResponseTime)
		}
		if pass.K >= 2 && pass.GridRows > 1 && pass.BytesMoved == 0 {
			t.Errorf("pass %d: %d grid rows but no data moved", pass.K, pass.GridRows)
		}
	}
	// Pass response times sum to roughly the total (collectives sync the
	// boundary clocks, so small overlaps are fine).
	var sum float64
	for _, pass := range rep.Passes {
		sum += pass.ResponseTime
	}
	if sum > rep.ResponseTime*1.05 || sum < rep.ResponseTime*0.8 {
		t.Errorf("pass times sum to %v, total response %v", sum, rep.ResponseTime)
	}
	// Levels and passes agree.
	for i, pass := range rep.Passes {
		if i < len(rep.Result.Levels) && pass.Frequent != len(rep.Result.Levels[i]) {
			t.Errorf("pass %d reports %d frequent, level holds %d", pass.K, pass.Frequent, len(rep.Result.Levels[i]))
		}
	}
}

func TestCDMovesNoTransactions(t *testing.T) {
	d := testData(t)
	rep, err := Mine(d, Params{Algo: CD, P: 8, Apriori: apriori.Params{MinSupport: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	for _, pass := range rep.Passes {
		if pass.BytesMoved != 0 {
			t.Errorf("CD pass %d moved %d transaction bytes", pass.K, pass.BytesMoved)
		}
	}
	// But it does communicate counts: messages flow in every pass.
	if rep.Total.MessagesSent == 0 {
		t.Error("CD sent no messages at all")
	}
}

func TestIDDImbalanceGrowsWithP(t *testing.T) {
	// The paper's central criticism of IDD: with M fixed, more processors
	// mean fewer candidates each and worse balance.
	d := testData(t)
	imb := func(p int) float64 {
		rep, err := Mine(d, Params{Algo: IDD, P: p, Apriori: apriori.Params{MinSupport: 0.02, MaxPasses: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Passes[1].CandImbalance
	}
	small, large := imb(2), imb(16)
	if large < small {
		t.Errorf("candidate imbalance fell with P: %v at P=2, %v at P=16", small, large)
	}
}

func TestTraceThroughCore(t *testing.T) {
	d := testData(t)
	rep, err := Mine(d, Params{Algo: IDD, P: 4, Trace: true, Apriori: apriori.Params{MinSupport: 0.02, MaxPasses: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 {
		t.Fatal("no trace recorded")
	}
	var sb strings.Builder
	if err := cluster.WriteTimeline(&sb, rep.Trace, rep.P, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "P0") || !strings.Contains(sb.String(), "#") {
		t.Errorf("timeline incomplete:\n%s", sb.String())
	}
	// No trace by default.
	rep2, err := Mine(d, Params{Algo: IDD, P: 4, Apriori: apriori.Params{MinSupport: 0.02, MaxPasses: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Trace) != 0 {
		t.Error("trace recorded without Params.Trace")
	}
}

func TestHDThresholdDrivesGrid(t *testing.T) {
	d := testData(t)
	grid := func(threshold int) int {
		rep, err := Mine(d, Params{Algo: HD, P: 8, HDThreshold: threshold, Apriori: apriori.Params{MinSupport: 0.02, MaxPasses: 2}})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Passes[1].GridRows
	}
	// A huge threshold keeps everything in one row (CD); a tiny one forces
	// the full IDD grid.
	if g := grid(1 << 30); g != 1 {
		t.Errorf("huge threshold: G=%d", g)
	}
	if g := grid(1); g != 8 {
		t.Errorf("tiny threshold: G=%d", g)
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, name := range []string{"cd", "dd", "ddcomm", "idd", "hd", "hpa"} {
		if _, err := ParseAlgorithm(name); err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
		}
	}
	if _, err := ParseAlgorithm("apriori"); err == nil {
		t.Error("bogus name accepted")
	}
}

func TestReportLeafVisits(t *testing.T) {
	d := testData(t)
	rep, err := Mine(d, Params{Algo: CD, P: 2, Apriori: apriori.Params{MinSupport: 0.02}})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.AvgLeafVisitsPerTxn(); got <= 0 {
		t.Errorf("AvgLeafVisitsPerTxn = %v", got)
	}
}
