package core

import (
	"fmt"
	"hash/fnv"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/partition"
)

// hpaBody is the SPMD program of Hash Partitioned Apriori (HPA, Shintani &
// Kitsuregawa [11]), the third-party algorithm Section III-E compares IDD
// against.  Candidates are partitioned by *hashing the whole itemset*: in
// pass k every processor enumerates, for each local transaction, all
// C = (|t| choose k) potential size-k candidates, hashes each one to its
// owning processor, and ships it there; owners look the arrivals up in a
// local table and count matches.  No reduction is needed — counts are
// global where they land — but the communication volume is O(N·C), which
// is why the paper predicts HPA loses to IDD for k > 2 (and our emulation
// reproduces exactly that: see the "others" experiment).
//
// The potential candidates are batched into pages per destination; the
// exchange is an unstructured all-to-all, charged with ring-distance
// congestion like DD's scatter.
func (r *run) hpaBody(p *cluster.Proc) error {
	tr := &r.perProc[p.ID()]
	prev := r.firstPass(p, tr)
	tr.levels = append(tr.levels, prev)
	r.passSpan(p, tr)

	shard := r.shards[p.ID()]
	procs := r.prm.P
	for k := 2; len(prev) > 0; k++ {
		if r.prm.Apriori.MaxPasses > 0 && k > r.prm.Apriori.MaxPasses {
			break
		}
		clockStart := p.Clock()

		cands := apriori.Gen(itemsetsOf(prev))
		chargeGen(p, len(cands))
		r.sec(p, "candidate gen", clockStart, obsv.Int("k", int64(k)))
		if len(cands) == 0 {
			break
		}

		// Keep the candidates hashing to this processor, in a lookup table.
		var myCands []itemset.Itemset
		counts := make(map[string]*int64)
		owners := make([]int, procs)
		for _, c := range cands {
			owner := hpaOwner(c, procs)
			owners[owner]++
			if owner == p.ID() {
				myCands = append(myCands, c)
				var zero int64
				counts[c.Key()] = &zero
			}
		}
		candImbalance := partition.Imbalance(owners)
		// Building the lookup table stands in for tree construction.
		buildStart := p.Clock()
		chargeBuild(p, int64(len(myCands)))
		r.sec(p, "build", buildStart, obsv.Int("k", int64(k)))

		computeBefore := p.Stats().ComputeTime
		countStart := p.Clock()
		bytesMoved := r.hpaExchange(p, k, shard, counts)
		countTime := p.Stats().ComputeTime - computeBefore
		r.sec(p, "count", countStart, obsv.Int("k", int64(k)))

		exStart := p.Clock()
		var frequentLocal []apriori.Frequent
		for _, c := range myCands {
			if n := *counts[c.Key()]; n >= r.minCount {
				frequentLocal = append(frequentLocal, apriori.Frequent{Items: c, Count: n})
			}
		}
		level := exchangeFrequent(p, r.world, fmt.Sprintf("k%d/freq", k), frequentLocal)
		r.sec(p, "exchange", exStart, obsv.Int("k", int64(k)))

		tr.passes = append(tr.passes, passLocal{
			k:             k,
			candidates:    len(cands),
			localCands:    len(myCands),
			frequent:      len(level),
			gridRows:      procs,
			gridCols:      1,
			treeParts:     1,
			bytesMoved:    bytesMoved,
			countTime:     countTime,
			clockStart:    clockStart,
			clockEnd:      p.Clock(),
			candImbalance: candImbalance,
		})
		tr.levels = append(tr.levels, level)
		r.passSpan(p, tr)
		prev = level
	}
	return nil
}

// hpaExchange enumerates each local transaction's potential size-k
// candidates, routes them to their owners in pages, and counts the ones
// that arrive here.  Returns the bytes this processor sent.
func (r *run) hpaExchange(p *cluster.Proc, k int, shard *itemset.Dataset, counts map[string]*int64) int64 {
	procs, me := r.prm.P, p.ID()
	tag := fmt.Sprintf("k%d/hpa", k)

	// Outgoing buffers, one page per destination.
	outbuf := make([][]itemset.Itemset, procs)
	var sent int64
	subsetBytes := 4 * k
	pageCap := r.prm.PageBytes / subsetBytes
	if pageCap < 1 {
		pageCap = 1
	}
	flush := func(dst int) {
		if len(outbuf[dst]) == 0 {
			return
		}
		b := 16 + subsetBytes*len(outbuf[dst])
		dist := cluster.RingDistance(me, dst, procs)
		p.SendContended(dst, tag, outbuf[dst], b, float64(dist))
		sent += int64(b)
		outbuf[dst] = nil
	}
	count := func(s itemset.Itemset) {
		if c, ok := counts[s.Key()]; ok {
			*c++
		}
	}

	var enumerated int64
	for _, t := range shard.Transactions {
		forEachSubset(t.Items, k, func(s itemset.Itemset) {
			enumerated++
			owner := hpaOwner(s, procs)
			if owner == me {
				count(s)
				return
			}
			outbuf[owner] = append(outbuf[owner], s.Clone())
			if len(outbuf[owner]) >= pageCap {
				flush(owner)
			}
		})
	}
	p.ReadIO(int64(shard.Bytes()), "io")
	// Enumeration+hashing per potential candidate, and a table probe for
	// the locally-owned ones.
	m := p.Machine()
	p.Compute(float64(enumerated)*(m.TTravers+float64(k)*m.TItem), "subset")

	// Flush remainders and close every stream with an empty sentinel page.
	for dst := 0; dst < procs; dst++ {
		if dst == me {
			continue
		}
		flush(dst)
		p.Send(dst, tag+"/done", nil, 16)
	}
	// Drain every incoming stream to its sentinel.
	for src := 0; src < procs; src++ {
		if src == me {
			continue
		}
		for {
			msg := p.RecvAny(src)
			if msg.Tag == tag+"/done" {
				break
			}
			if msg.Tag != tag {
				panic(fmt.Sprintf("core: hpa proc %d: unexpected tag %q from %d", me, msg.Tag, src))
			}
			page := msg.Payload.([]itemset.Itemset)
			for _, s := range page {
				count(s)
			}
			p.Compute(float64(len(page))*m.TCheck, "subset")
		}
	}
	return sent
}

// hpaOwner hashes a candidate itemset to its owning processor.
func hpaOwner(s itemset.Itemset, procs int) int {
	h := fnv.New32a()
	var buf [4]byte
	for _, it := range s {
		buf[0] = byte(it)
		buf[1] = byte(it >> 8)
		buf[2] = byte(it >> 16)
		buf[3] = byte(it >> 24)
		h.Write(buf[:])
	}
	return int(h.Sum32() % uint32(procs))
}

// forEachSubset calls fn with every size-k subset of the sorted itemset s.
// The yielded slice is reused between calls; clone to retain.
func forEachSubset(s itemset.Itemset, k int, fn func(itemset.Itemset)) {
	if k <= 0 || k > len(s) {
		return
	}
	idx := make([]int, k)
	buf := make(itemset.Itemset, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		for i, j := range idx {
			buf[i] = s[j]
		}
		fn(buf)
		// Advance the combination odometer.
		i := k - 1
		for i >= 0 && idx[i] == len(s)-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
