package core

import (
	"fmt"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/partition"
)

// ddBody is the SPMD program of the Data Distribution algorithm [6] and of
// the paper's DD+comm ablation.  Candidates are partitioned round-robin —
// which balances counts but scatters first items, so no root filtering is
// possible — and every processor processes *all* N transactions against its
// M/P candidates, the redundant work Section III-B analyzes.
//
// Plain DD moves the database with the unstructured all-to-all of [6]:
// every page is sent point-to-point to every other processor, a pattern
// whose messages cross shared links (modeled as ring-distance congestion).
// DDComm replaces only the data movement with IDD's ring pipeline, keeping
// the round-robin partitioning — exactly the "DD+comm" series of Figure 10
// that isolates how much of IDD's win is communication vs partitioning.
func (r *run) ddBody(p *cluster.Proc) error {
	tr := &r.perProc[p.ID()]
	prev := r.firstPass(p, tr)
	tr.levels = append(tr.levels, prev)
	r.passSpan(p, tr)

	shard := r.shards[p.ID()]
	for k := 2; len(prev) > 0; k++ {
		if r.prm.Apriori.MaxPasses > 0 && k > r.prm.Apriori.MaxPasses {
			break
		}
		clockStart := p.Clock()

		cands := apriori.Gen(itemsetsOf(prev))
		chargeGen(p, len(cands))
		r.sec(p, "candidate gen", clockStart, obsv.Int("k", int64(k)))
		if len(cands) == 0 {
			break
		}

		parts := partition.RoundRobin(cands, r.prm.P)
		myCands := parts[p.ID()]
		counts := make([]int, r.prm.P)
		for i, part := range parts {
			counts[i] = len(part)
		}
		candImbalance := partition.Imbalance(counts)

		buildStart := p.Clock()
		hcands := make([]*hashtree.Candidate, len(myCands))
		for i, s := range myCands {
			hcands[i] = &hashtree.Candidate{Items: s}
		}
		tree, err := hashtree.New(k, hcands, r.prm.Apriori.Tree)
		if err != nil {
			return fmt.Errorf("pass %d: %w", k, err)
		}
		chargeBuild(p, tree.Stats().Inserts)
		r.sec(p, "build", buildStart, obsv.Int("k", int64(k)))

		computeBefore := p.Stats().ComputeTime
		process := func(page []itemset.Transaction) {
			if len(page) == 0 || tree.Len() == 0 {
				return
			}
			before := tree.Stats()
			for _, t := range page {
				tree.Subset(t.Items, nil)
			}
			chargeSubset(p, treeDelta(before, tree.Stats()))
		}

		countStart := p.Clock()
		pages := shard.Pages(r.prm.PageBytes)
		p.ReadIO(int64(shard.Bytes()), "io")
		var bytesMoved int64
		if r.prm.Algo == DDComm {
			bytesMoved = ringCount(p, r.world, fmt.Sprintf("k%d/ring", k), pages, process)
		} else {
			bytesMoved = r.allToAllCount(p, fmt.Sprintf("k%d/a2a", k), pages, process)
		}
		countTime := p.Stats().ComputeTime - computeBefore
		r.sec(p, "count", countStart, obsv.Int("k", int64(k)))

		exStart := p.Clock()
		frequentLocal := pruneLocal(myCands, tree.Counts(), r.minCount)
		level := exchangeFrequent(p, r.world, fmt.Sprintf("k%d/freq", k), frequentLocal)
		r.sec(p, "exchange", exStart, obsv.Int("k", int64(k)))

		tr.passes = append(tr.passes, passLocal{
			k:             k,
			candidates:    len(cands),
			localCands:    len(myCands),
			frequent:      len(level),
			gridRows:      r.prm.P,
			gridCols:      1,
			treeParts:     1,
			tree:          tree.Stats(),
			bytesMoved:    bytesMoved,
			countTime:     countTime,
			clockStart:    clockStart,
			clockEnd:      p.Clock(),
			candImbalance: candImbalance,
		})
		tr.levels = append(tr.levels, level)
		r.passSpan(p, tr)
		prev = level
	}
	return nil
}

// allToAllCount implements DD's original data movement: each processor
// reads its local pages one at a time, processes each, and scatters it to
// every other processor with P-1 point-to-point sends; remote pages are
// drained and processed as they arrive.  The messages carry a congestion
// factor equal to the sender–receiver ring distance (see the cluster
// package comment), which is what makes this pattern take "significantly
// more than O(N) time" on sparse interconnects.
func (r *run) allToAllCount(p *cluster.Proc, tag string, pages [][]itemset.Transaction, process func([]itemset.Transaction)) int64 {
	me, procs := p.ID(), r.prm.P
	if procs == 1 {
		for _, page := range pages {
			process(page)
		}
		return 0
	}
	// Agree on per-processor page counts so receive loops terminate.
	gathered := r.world.AllGather(p, tag+"/npages", len(pages), 8)
	pageCount := make([]int, procs)
	maxPages := 0
	for _, g := range gathered {
		n := g.Payload.(int)
		pageCount[g.Rank] = n
		if n > maxPages {
			maxPages = n
		}
	}

	var sent int64
	for round := 0; round < maxPages; round++ {
		if round < len(pages) {
			page := pages[round]
			b := pageBytesOf(page)
			for dst := 0; dst < procs; dst++ {
				if dst == me {
					continue
				}
				dist := cluster.RingDistance(me, dst, procs)
				// DD's original scatter blocks the sender for each of its
				// P-1 copies; IDD's ring pipeline is the fix (Section III-C).
				p.SendBlocking(dst, tag, page, b, float64(dist))
				sent += int64(b)
			}
			// Ties are broken in favor of remote buffers in [6], but the
			// local page is processed in the same round either way.
			process(page)
		}
		for src := 0; src < procs; src++ {
			if src == me || round >= pageCount[src] {
				continue
			}
			msg := p.Recv(src, tag)
			process(msg.Payload.([]itemset.Transaction))
		}
	}
	return sent
}
