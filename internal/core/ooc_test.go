package core

import (
	"bytes"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/countengine"
	"parapriori/internal/datagen"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/txstore"
)

// oocFixture spills a generated dataset into a partitioned store with
// deliberately small blocks, so every pass crosses many block boundaries.
func oocFixture(t *testing.T) (*itemset.Dataset, *txstore.Store) {
	t.Helper()
	gp := datagen.Defaults()
	gp.NumTransactions = 1200
	gp.NumItems = 100
	gp.NumPatterns = 60
	gp.AvgTxnLen = 10
	gp.AvgPatternLen = 4
	gp.Seed = 21
	data, err := datagen.Generate(gp)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	dir := t.TempDir()
	if _, err := txstore.Spill(dir, data, txstore.Options{Partitions: 5, BlockBytes: 2048}); err != nil {
		t.Fatalf("spill: %v", err)
	}
	store, err := txstore.Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return data, store
}

// TestOOCBitIdentical is the out-of-core backend's central property: the
// backend is a *where the transactions live*, never a *what is mined*.
// Streaming the partition files must produce the byte-identical WriteResult
// output of the in-memory backend, for every engine, serially and under
// every grid formulation.
func TestOOCBitIdentical(t *testing.T) {
	data, store := oocFixture(t)
	const minsup = 0.02

	serialize := func(res *apriori.Result) []byte {
		t.Helper()
		var buf bytes.Buffer
		if err := apriori.WriteResult(&buf, res); err != nil {
			t.Fatalf("serialize: %v", err)
		}
		return buf.Bytes()
	}

	baseRes, err := apriori.Mine(data, apriori.Params{MinSupport: minsup})
	if err != nil {
		t.Fatalf("baseline mine: %v", err)
	}
	baseline := serialize(baseRes)
	if baseRes.NumFrequent() == 0 {
		t.Fatal("trivial workload, no frequent itemsets")
	}

	for _, eng := range countengine.Names() {
		t.Run("serial/"+eng, func(t *testing.T) {
			res, err := apriori.MineSource(store, apriori.Params{MinSupport: minsup, Engine: eng})
			if err != nil {
				t.Fatalf("mine source: %v", err)
			}
			if !bytes.Equal(serialize(res), baseline) {
				t.Error("streaming serial result differs from in-memory baseline")
			}
		})
		for _, algo := range []Algorithm{CD, IDD, HD} {
			t.Run(string(algo)+"/"+eng, func(t *testing.T) {
				inmem, err := Mine(data, Params{
					Algo: algo, P: 6,
					Apriori: apriori.Params{MinSupport: minsup, Engine: eng},
				})
				if err != nil {
					t.Fatalf("inmem mine: %v", err)
				}
				ooc, err := Mine(nil, Params{
					Algo: algo, P: 6,
					Apriori: apriori.Params{MinSupport: minsup, Engine: eng},
					Backend: BackendOOC, Store: store,
				})
				if err != nil {
					t.Fatalf("ooc mine: %v", err)
				}
				if !bytes.Equal(serialize(ooc.Result), baseline) {
					t.Error("ooc result differs from serial baseline")
				}
				if !bytes.Equal(serialize(ooc.Result), serialize(inmem.Result)) {
					t.Error("ooc result differs from inmem result")
				}
				if algo == IDD {
					// IDD's columns span all ranks, so blocks must have
					// actually ring-shifted.  (HD at this scale picks G=P,
					// leaving singleton columns and no ring traffic — same
					// as the in-memory backend.)
					var moved int64
					for _, pass := range ooc.Passes {
						moved += pass.BytesMoved
					}
					if moved == 0 {
						t.Error("ooc ring moved no bytes")
					}
				}
			})
		}
	}
}

// TestOOCMorePartitionsThanRanks exercises uneven and empty partition
// ownership: more ranks than partitions and more partitions than ranks.
func TestOOCMorePartitionsThanRanks(t *testing.T) {
	data, _ := oocFixture(t)
	const minsup = 0.02
	base, err := apriori.Mine(data, apriori.Params{MinSupport: minsup})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var want bytes.Buffer
	if err := apriori.WriteResult(&want, base); err != nil {
		t.Fatalf("serialize: %v", err)
	}
	for _, parts := range []int{1, 3, 13} {
		dir := t.TempDir()
		if _, err := txstore.Spill(dir, data, txstore.Options{Partitions: parts, BlockBytes: 1024}); err != nil {
			t.Fatalf("spill: %v", err)
		}
		store, err := txstore.Open(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for _, procs := range []int{1, 4, 8} {
			rep, err := Mine(nil, Params{
				Algo: CD, P: procs,
				Apriori: apriori.Params{MinSupport: minsup},
				Backend: BackendOOC, Store: store,
			})
			if err != nil {
				t.Fatalf("parts=%d p=%d: %v", parts, procs, err)
			}
			var got bytes.Buffer
			if err := apriori.WriteResult(&got, rep.Result); err != nil {
				t.Fatalf("serialize: %v", err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("parts=%d p=%d: result differs from baseline", parts, procs)
			}
		}
	}
}

// TestOOCReadStats checks the out-of-core read-path telemetry: a mine over
// the partition files reports per-pass and run-total read stats, everything
// is charged on the virtual clock so two identical runs report bit-identical
// numbers (and a bit-identical Prometheus exposition), and the in-memory
// backend reports nothing.
func TestOOCReadStats(t *testing.T) {
	data, store := oocFixture(t)
	ap := apriori.Params{MinSupport: 0.02}

	mine := func() *Report {
		t.Helper()
		rep, err := Mine(nil, Params{Algo: CD, P: 4, Apriori: ap, Backend: BackendOOC, Store: store})
		if err != nil {
			t.Fatalf("ooc mine: %v", err)
		}
		return rep
	}
	rep := mine()

	if rep.Read.Partitions == 0 || rep.Read.Blocks == 0 || rep.Read.Bytes == 0 {
		t.Fatalf("ooc run reported no read work: %+v", rep.Read)
	}
	if rep.Read.Stalls != rep.Read.Blocks {
		t.Errorf("without read-ahead every block read is a stall: stalls=%d blocks=%d", rep.Read.Stalls, rep.Read.Blocks)
	}
	if rep.Read.DecodeSeconds <= 0 {
		t.Errorf("decode time not charged: %v", rep.Read.DecodeSeconds)
	}
	if rep.Read.CRCRetries != 0 {
		t.Errorf("clean store reported %d CRC retries", rep.Read.CRCRetries)
	}
	var sum ReadStats
	for _, pass := range rep.Passes {
		if pass.Read.Blocks == 0 {
			t.Errorf("pass k=%d reported no blocks read", pass.K)
		}
		sum.Add(pass.Read)
	}
	if sum != rep.Read {
		t.Errorf("run total %+v != per-pass sum %+v", rep.Read, sum)
	}
	// Every pass streams the whole store once: per-pass bytes are the sum of
	// the partition files' block bytes (the per-file header is not framing).
	uvl := func(v uint64) int64 {
		n := int64(1)
		for v >= 0x80 {
			v >>= 7
			n++
		}
		return n
	}
	man := store.Manifest()
	var storeBytes int64
	for i, p := range man.Partitions {
		storeBytes += p.Bytes - (5 + uvl(uint64(i)) + uvl(uint64(man.NumItems)))
	}
	if got := rep.Passes[0].Read.Bytes; got != storeBytes {
		t.Errorf("first pass read %d bytes, store holds %d", got, storeBytes)
	}

	prom := func(r *Report) []byte {
		w := obsv.NewPromWriter()
		r.WriteProm(w)
		return w.Bytes()
	}
	if probs := obsv.LintProm(prom(rep)); len(probs) > 0 {
		t.Errorf("mine exposition fails lint: %v", probs)
	}
	rep2 := mine()
	if rep.Read != rep2.Read {
		t.Errorf("read stats differ between identical runs:\n%+v\n%+v", rep.Read, rep2.Read)
	}
	if !bytes.Equal(prom(rep), prom(rep2)) {
		t.Error("prom exposition differs between identical runs")
	}

	inmem, err := Mine(data, Params{Algo: CD, P: 4, Apriori: ap})
	if err != nil {
		t.Fatalf("inmem mine: %v", err)
	}
	if inmem.Read != (ReadStats{}) {
		t.Errorf("in-memory run reported read stats: %+v", inmem.Read)
	}
}

// TestOOCValidation pins the backend seam's error surface.
func TestOOCValidation(t *testing.T) {
	data, store := oocFixture(t)
	ap := apriori.Params{MinSupport: 0.02}

	if _, err := Mine(nil, Params{Algo: CD, P: 2, Apriori: ap, Backend: BackendOOC}); err == nil {
		t.Error("ooc without a store accepted")
	}
	if _, err := Mine(data, Params{Algo: CD, P: 2, Apriori: ap, Backend: BackendOOC, Store: store}); err == nil {
		t.Error("ooc with a resident dataset accepted")
	}
	if _, err := Mine(data, Params{Algo: CD, P: 2, Apriori: ap, Store: store}); err == nil {
		t.Error("inmem with a store accepted")
	}
	if _, err := Mine(nil, Params{Algo: DD, P: 2, Apriori: ap, Backend: BackendOOC, Store: store}); err == nil {
		t.Error("ooc DD accepted")
	}
	if _, err := Mine(nil, Params{Algo: CD, P: 2, Apriori: ap, Backend: "mmap", Store: store}); err == nil {
		t.Error("unknown backend accepted")
	}
	if _, err := Mine(nil, Params{Algo: CD, P: 2, Apriori: ap, Backend: BackendOOC, Store: store,
		Faults: &cluster.FaultPlan{}}); err == nil {
		t.Error("ooc with fault injection accepted")
	}
	if b, err := ParseBackend("ooc"); err != nil || b != BackendOOC {
		t.Errorf("ParseBackend(ooc) = %v, %v", b, err)
	}
	if b, err := ParseBackend(""); err != nil || b != BackendInMem {
		t.Errorf("ParseBackend(\"\") = %v, %v", b, err)
	}
	if _, err := ParseBackend("mmap"); err == nil {
		t.Error("ParseBackend accepted an unknown backend")
	}
}
