package cluster

import "fmt"

// Comm is a communicator: an ordered group of processors that perform
// collective operations together, like an MPI communicator.  HD's processor
// grid is expressed as one Comm per row and one per column.
type Comm struct {
	c       *Cluster
	members []int       // global ranks, in communicator-rank order
	rankOf  map[int]int // global rank -> communicator rank
}

// NewComm builds a communicator over the given global ranks.  Ranks must be
// distinct and in range.
func NewComm(c *Cluster, members []int) (*Comm, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: communicator needs at least one member")
	}
	cm := &Comm{c: c, members: append([]int(nil), members...), rankOf: make(map[int]int, len(members))}
	for r, g := range cm.members {
		if g < 0 || g >= c.P() {
			return nil, fmt.Errorf("cluster: communicator member %d out of range [0, %d)", g, c.P())
		}
		if _, dup := cm.rankOf[g]; dup {
			return nil, fmt.Errorf("cluster: duplicate communicator member %d", g)
		}
		cm.rankOf[g] = r
	}
	return cm, nil
}

// World returns the communicator containing every processor.
func (c *Cluster) World() *Comm {
	members := make([]int, c.P())
	for i := range members {
		members[i] = i
	}
	cm, err := NewComm(c, members)
	if err != nil {
		panic(err) // unreachable: members are valid by construction
	}
	return cm
}

// Size returns the number of members.
func (cm *Comm) Size() int { return len(cm.members) }

// Rank returns p's rank within the communicator, or -1 if p is not a
// member.
func (cm *Comm) Rank(p *Proc) int {
	r, ok := cm.rankOf[p.ID()]
	if !ok {
		return -1
	}
	return r
}

// Member returns the global ID of the given communicator rank.
func (cm *Comm) Member(rank int) int { return cm.members[rank] }

// sendRank / recvRank translate communicator ranks to global ranks.  They
// route through the reliable layer, so every collective survives an
// installed fault plan; with no plan the reliable operations are exactly
// Send/Recv.
func (cm *Comm) sendRank(p *Proc, rank int, tag string, payload any, bytes int) {
	p.SendReliable(cm.members[rank], tag, payload, bytes)
}

func (cm *Comm) recvRank(p *Proc, rank int, tag string) Message {
	return p.RecvReliable(cm.members[rank], tag)
}

// AllReduceInt64 element-wise sums vec across the communicator and returns
// the global sum on every member.  It is the "global reduction operation"
// of the CD algorithm, implemented as a binomial-tree reduce to rank 0
// followed by a binomial-tree broadcast — 2·log₂(size) structured message
// steps, each carrying the whole vector.
//
// Every member must call it with a vector of the same length; the input is
// not modified.
func (cm *Comm) AllReduceInt64(p *Proc, tag string, vec []int64) []int64 {
	rank, size := cm.Rank(p), cm.Size()
	if rank < 0 {
		panic(fmt.Sprintf("cluster: proc %d not in communicator for AllReduce %q", p.ID(), tag))
	}
	acc := append([]int64(nil), vec...)
	bytes := 8 * len(acc)

	// Reduce to rank 0.
	for mask := 1; mask < size; mask <<= 1 {
		if rank&mask != 0 {
			cm.sendRank(p, rank-mask, tag+"/red", acc, bytes)
			break
		}
		partner := rank + mask
		if partner < size {
			msg := cm.recvRank(p, partner, tag+"/red")
			other := msg.Payload.([]int64)
			if len(other) != len(acc) {
				panic(fmt.Sprintf("cluster: AllReduce %q length mismatch: %d vs %d", tag, len(other), len(acc)))
			}
			for i, v := range other {
				acc[i] += v
			}
			p.Compute(float64(len(acc))*p.Machine().TReduce, "reduction")
		}
	}
	// Broadcast the result from rank 0 down the same binomial tree.
	return cm.bcastInt64(p, tag+"/bc", acc)
}

func (cm *Comm) bcastInt64(p *Proc, tag string, acc []int64) []int64 {
	rank, size := cm.Rank(p), cm.Size()
	if rank != 0 {
		lsb := rank & -rank
		msg := cm.recvRank(p, rank-lsb, tag)
		// Copy: the payload slice is shared with the sender.
		acc = append([]int64(nil), msg.Payload.([]int64)...)
	}
	bytes := 8 * len(acc)
	for _, child := range cm.bcastChildren(rank, size) {
		cm.sendRank(p, child, tag, acc, bytes)
	}
	return acc
}

// bcastChildren returns the binomial-tree children of rank within a tree of
// the given size rooted at 0, in the (deterministic) order they are sent to.
func (cm *Comm) bcastChildren(rank, size int) []int {
	start := 1
	if rank == 0 {
		for start < size {
			start <<= 1
		}
		start >>= 1
	} else {
		start = (rank & -rank) >> 1
	}
	var children []int
	for step := start; step >= 1; step >>= 1 {
		if rank+step < size {
			children = append(children, rank+step)
		}
	}
	return children
}

// Barrier synchronizes the communicator: on return every member's clock is
// at least the maximum clock any member entered with (plus the collective's
// message costs).
func (cm *Comm) Barrier(p *Proc, tag string) {
	cm.AllReduceInt64(p, tag, []int64{0})
}

// Gathered is one element of an AllGather result.
type Gathered struct {
	Rank    int // communicator rank of the contributor
	Payload any
	Bytes   int
}

// AllGather performs a ring-based all-to-all broadcast ([9] in the paper):
// every member contributes one payload and receives everyone's, in
// size-1 neighbor-shift steps with no contention.  Results are indexed by
// contributor rank.  The parallel formulations use it to exchange locally
// frequent itemsets after each pass.
func (cm *Comm) AllGather(p *Proc, tag string, payload any, bytes int) []Gathered {
	rank, size := cm.Rank(p), cm.Size()
	if rank < 0 {
		panic(fmt.Sprintf("cluster: proc %d not in communicator for AllGather %q", p.ID(), tag))
	}
	out := make([]Gathered, size)
	out[rank] = Gathered{Rank: rank, Payload: payload, Bytes: bytes}
	if size == 1 {
		return out
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	// At step s we forward the block that originated at rank-s and receive
	// the block that originated at rank-s-1 (all mod size).
	for s := 0; s < size-1; s++ {
		fwd := out[((rank-s)%size+size)%size]
		cm.sendRank(p, right, tag, fwd, fwd.Bytes)
		msg := cm.recvRank(p, left, tag)
		got := msg.Payload.(Gathered)
		out[got.Rank] = got
	}
	return out
}

// MaxFloat64 all-reduces a single float64 with max, used to synchronize and
// report per-group response times.  Encoded through the int64 reduction to
// keep one tree implementation.
func (cm *Comm) MaxFloat64(p *Proc, tag string, v float64) float64 {
	rank, size := cm.Rank(p), cm.Size()
	if rank < 0 {
		panic(fmt.Sprintf("cluster: proc %d not in communicator for MaxFloat64 %q", p.ID(), tag))
	}
	best := v
	for mask := 1; mask < size; mask <<= 1 {
		if rank&mask != 0 {
			cm.sendRank(p, rank-mask, tag+"/max", best, 8)
			break
		}
		partner := rank + mask
		if partner < size {
			msg := cm.recvRank(p, partner, tag+"/max")
			if o := msg.Payload.(float64); o > best {
				best = o
			}
		}
	}
	// Broadcast the max back down.
	if rank != 0 {
		lsb := rank & -rank
		best = cm.recvRank(p, rank-lsb, tag+"/maxbc").Payload.(float64)
	}
	for _, child := range cm.bcastChildren(rank, size) {
		cm.sendRank(p, child, tag+"/maxbc", best, 8)
	}
	return best
}
