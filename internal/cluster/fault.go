package cluster

import (
	"fmt"
	"sort"
)

// FaultPlan is a seeded, virtual-clock-driven fault schedule for a run.
// Message faults (drop, duplicate, delay, reorder) apply to the reliable
// messaging layer (SendReliable/RecvReliable); processor faults (crashes,
// stragglers) fire when a processor's virtual clock reaches the configured
// time.  Every decision is a pure function of (Seed, fault kind, sender,
// receiver, sequence number, attempt) — no wall clock, no shared RNG — so
// two runs with the same plan and workload are bit-identical regardless of
// goroutine scheduling.
type FaultPlan struct {
	// Seed keys the per-message fault decisions.
	Seed uint64

	// Drop is the probability in [0, 1) that a message frame is corrupted
	// in flight.  The frame still arrives (as a tombstone) so the receiver's
	// NIC detects the loss locally and runs the retry protocol.
	Drop float64
	// Dup is the probability that a frame is delivered twice.  The receiver
	// suppresses the duplicate by sequence number.
	Dup float64
	// Delay is the probability that a frame's wire availability is pushed
	// back by DelaySeconds of virtual time.
	Delay        float64
	DelaySeconds float64
	// Reorder is the probability that a frame is held at the sender's NIC
	// and transmitted after the next frame to the same destination (an
	// adjacent swap).  The receiver restores order by sequence number.
	Reorder float64

	// Crashes schedules processor failures at virtual times.
	Crashes []Crash
	// Stragglers schedules processor slowdowns at virtual times.
	Stragglers []Straggler

	// Reliable configures the retry protocol of the reliable layer.
	Reliable ReliableConfig
}

// Crash schedules one processor failure: the processor panics with a
// *CrashError at the first charging-operation boundary where its virtual
// clock has reached At.  Crash entries are one-shot: a revived processor
// does not re-fire the same entry.
type Crash struct {
	Rank int
	At   float64
	// Permanent marks the rank as unrecoverable: instead of respawning it,
	// a fault-tolerant caller degrades to the surviving ranks.
	Permanent bool
}

// Straggler slows a processor down: from virtual time At on, every Compute
// charge on Rank is multiplied by Factor (>= 1).
type Straggler struct {
	Rank   int
	At     float64
	Factor float64
}

// ReliableConfig tunes the receiver-side retry protocol.
type ReliableConfig struct {
	// MaxRetries bounds the retransmission attempts per frame before the
	// peer is declared dead.  0 means the default (4).
	MaxRetries int
	// BaseBackoff is the first retry's wait in virtual seconds; attempt n
	// waits BaseBackoff * 2^(n-1).  0 means the default (64 x Latency, or
	// 64 µs on a zero-latency machine).
	BaseBackoff float64
}

// withDefaults returns the config with zero fields replaced by defaults.
func (rc ReliableConfig) withDefaults(m Machine) ReliableConfig {
	if rc.MaxRetries == 0 {
		rc.MaxRetries = 4
	}
	if rc.BaseBackoff == 0 {
		rc.BaseBackoff = 64 * m.Latency
		if rc.BaseBackoff == 0 {
			rc.BaseBackoff = 64e-6
		}
	}
	return rc
}

// detectCost is the virtual time a receiver spends before declaring a peer
// dead: the full exhausted backoff schedule plus one NACK startup per
// attempt.
func (rc ReliableConfig) detectCost(m Machine) float64 {
	backoff := 0.0
	step := rc.BaseBackoff
	for i := 0; i < rc.MaxRetries; i++ {
		backoff += step
		step *= 2
	}
	return backoff + float64(rc.MaxRetries)*m.Latency
}

// faultKind namespaces the hash-based decisions so drop/dup/delay/reorder
// rolls for the same frame are independent.
type faultKind uint64

const (
	kDrop faultKind = iota + 1
	kDup
	kDelay
	kReorder
)

// mix64 is the splitmix64 finalizer: a strong, allocation-free 64-bit hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll returns a uniform float64 in [0, 1) that depends only on the plan
// seed and the event coordinates.
func (fp *FaultPlan) roll(kind faultKind, from, to int, seq int64, attempt int) float64 {
	h := mix64(fp.Seed ^ uint64(kind)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(from)<<32 ^ uint64(to))
	h = mix64(h ^ uint64(seq)<<8 ^ uint64(attempt))
	return float64(h>>11) / (1 << 53)
}

// validate rejects plans whose parameters are out of range.
func (fp *FaultPlan) validate(p int) error {
	check := func(name string, v float64) error {
		if v < 0 || v >= 1 {
			return fmt.Errorf("cluster: fault plan %s rate %v outside [0, 1)", name, v)
		}
		return nil
	}
	if err := check("Drop", fp.Drop); err != nil {
		return err
	}
	if err := check("Dup", fp.Dup); err != nil {
		return err
	}
	if err := check("Delay", fp.Delay); err != nil {
		return err
	}
	if err := check("Reorder", fp.Reorder); err != nil {
		return err
	}
	if fp.Delay > 0 && fp.DelaySeconds < 0 {
		return fmt.Errorf("cluster: fault plan DelaySeconds %v negative", fp.DelaySeconds)
	}
	for _, cr := range fp.Crashes {
		if cr.Rank < 0 || cr.Rank >= p {
			return fmt.Errorf("cluster: crash rank %d outside [0, %d)", cr.Rank, p)
		}
		if cr.At < 0 {
			return fmt.Errorf("cluster: crash time %v negative", cr.At)
		}
	}
	for _, st := range fp.Stragglers {
		if st.Rank < 0 || st.Rank >= p {
			return fmt.Errorf("cluster: straggler rank %d outside [0, %d)", st.Rank, p)
		}
		if st.Factor < 1 {
			return fmt.Errorf("cluster: straggler factor %v below 1", st.Factor)
		}
	}
	return nil
}

// faultState is the cluster-wide installed plan.
type faultState struct {
	plan FaultPlan // Reliable already defaulted
}

// InstallFaults installs a fault plan on the cluster.  Passing nil
// uninstalls faults (the reliable layer degenerates to plain Send/Recv).
// Install before Run; a plan installed mid-run is a data race.
func (c *Cluster) InstallFaults(plan *FaultPlan) error {
	if plan == nil {
		c.faults = nil
		for _, p := range c.procs {
			p.clearFaultSchedule()
		}
		return nil
	}
	if err := plan.validate(c.P()); err != nil {
		return err
	}
	fp := *plan
	fp.Reliable = fp.Reliable.withDefaults(c.machine)
	c.faults = &faultState{plan: fp}
	for _, p := range c.procs {
		p.clearFaultSchedule()
	}
	for _, cr := range fp.Crashes {
		pr := c.procs[cr.Rank]
		pr.crashes = append(pr.crashes, cr)
	}
	for _, st := range fp.Stragglers {
		pr := c.procs[st.Rank]
		pr.stragglers = append(pr.stragglers, st)
	}
	for _, p := range c.procs {
		sort.SliceStable(p.crashes, func(i, j int) bool { return p.crashes[i].At < p.crashes[j].At })
		sort.SliceStable(p.stragglers, func(i, j int) bool { return p.stragglers[i].At < p.stragglers[j].At })
	}
	return nil
}

// FaultPlanInstalled reports whether a fault plan is active.
func (c *Cluster) FaultPlanInstalled() bool { return c.faults != nil }

// clearFaultSchedule drops the per-processor fault schedule and its
// progress.
func (p *Proc) clearFaultSchedule() {
	p.crashes = nil
	p.crashIdx = 0
	p.stragglers = nil
}

// checkCrash fires the next scheduled crash for this processor once its
// virtual clock has reached the crash time.  It is called at
// charging-operation boundaries, so a crash takes effect at the first
// operation that crosses At.  Entries are one-shot: crashIdx survives
// Revive and ResetComm, so a revived processor does not crash again on the
// same entry.
func (p *Proc) checkCrash() {
	for p.crashIdx < len(p.crashes) {
		e := p.crashes[p.crashIdx]
		if p.clock < e.At {
			return
		}
		p.crashIdx++
		panic(&CrashError{Rank: p.id, At: e.At, Clock: p.clock, Permanent: e.Permanent})
	}
}

// straggleFactor returns the Compute multiplier in effect at the current
// clock: the latest straggler entry whose At has passed, or 1.
func (p *Proc) straggleFactor() float64 {
	f := 1.0
	for _, st := range p.stragglers {
		if p.clock >= st.At {
			f = st.Factor
		}
	}
	return f
}

// CrashError is the panic value of a scheduled processor crash.  Cluster.Run
// converts it into a per-rank error; errors.As recovers it for fault-
// tolerant callers.
type CrashError struct {
	Rank int
	// At is the scheduled crash time; Clock is the virtual time of the
	// operation boundary where it fired (>= At).
	At        float64
	Clock     float64
	Permanent bool
}

func (e *CrashError) Error() string {
	kind := "transient"
	if e.Permanent {
		kind = "permanent"
	}
	return fmt.Sprintf("cluster: proc %d crashed (%s, scheduled %.6fs, fired %.6fs)", e.Rank, kind, e.At, e.Clock)
}

// DeadRankError reports that a receive could not complete because the peer
// is dead: either its goroutine terminated (crash, error, or early return
// with messages still expected) or the retry protocol exhausted its
// attempts.  Cluster.Run surfaces it per-rank; errors.As recovers it.
type DeadRankError struct {
	// Rank is the receiver that detected the death; Peer the rank declared
	// dead.
	Rank, Peer int
	Tag        string
	// Clock is the receiver's virtual time after charging the detection.
	Clock float64
	// RetriesExhausted distinguishes a declared death (drop-rate retry
	// exhaustion on a live peer) from an observed termination.
	RetriesExhausted bool
}

func (e *DeadRankError) Error() string {
	how := "terminated"
	if e.RetriesExhausted {
		how = "declared dead after retry exhaustion"
	}
	return fmt.Sprintf("cluster: proc %d receiving %q from proc %d: peer %s (at %.6fs)", e.Rank, e.Tag, e.Peer, how, e.Clock)
}

// TagMismatchError reports a protocol bug: the received message's tag does
// not match the expected one.  Cluster.Run surfaces it per-rank instead of
// crashing the process.
type TagMismatchError struct {
	Rank, From int
	Want, Got  string
}

func (e *TagMismatchError) Error() string {
	return fmt.Sprintf("cluster: proc %d expected tag %q from %d, got %q", e.Rank, e.Want, e.From, e.Got)
}
