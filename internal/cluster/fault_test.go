package cluster

import (
	"errors"
	"fmt"
	"testing"
)

// reliablePair runs a sender → receiver exchange of n sequenced messages
// under the given plan and returns the receiver's messages and stats.
func reliablePair(t *testing.T, plan *FaultPlan, n int) ([]Message, Stats, []float64) {
	t.Helper()
	c := MustNew(2, fastMachine())
	if err := c.InstallFaults(plan); err != nil {
		t.Fatalf("install: %v", err)
	}
	var got []Message
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			for i := 0; i < n; i++ {
				p.SendReliable(1, "t", i, 100)
				p.Compute(1e-6, "work")
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got = append(got, p.RecvReliable(0, "t"))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return got, c.Proc(1).Stats(), c.Clocks()
}

func TestReliableDeliversInOrder(t *testing.T) {
	const n = 40
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"drop", FaultPlan{Seed: 1, Drop: 0.3}},
		{"dup", FaultPlan{Seed: 2, Dup: 0.5}},
		{"reorder", FaultPlan{Seed: 3, Reorder: 0.5}},
		{"delay", FaultPlan{Seed: 4, Delay: 0.5, DelaySeconds: 1e-3}},
		{"everything", FaultPlan{Seed: 5, Drop: 0.2, Dup: 0.3, Reorder: 0.3, Delay: 0.2, DelaySeconds: 1e-4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, st, _ := reliablePair(t, &tc.plan, n)
			if len(got) != n {
				t.Fatalf("received %d messages, want %d", len(got), n)
			}
			for i, m := range got {
				if m.Payload.(int) != i {
					t.Fatalf("message %d carries payload %v: delivery out of order", i, m.Payload)
				}
			}
			switch tc.name {
			case "drop":
				if st.MessagesDropped == 0 || st.MessagesRetried == 0 || st.RetryTime <= 0 {
					t.Errorf("drop plan produced no retry accounting: %+v", st)
				}
			case "dup":
				if st.DupsSuppressed == 0 {
					t.Errorf("dup plan suppressed no duplicates: %+v", st)
				}
			}
		})
	}
}

func TestReliableFaultDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 99, Drop: 0.25, Dup: 0.25, Reorder: 0.25, Delay: 0.25, DelaySeconds: 5e-4}
	g1, s1, c1 := reliablePair(t, &plan, 60)
	g2, s2, c2 := reliablePair(t, &plan, 60)
	if len(g1) != len(g2) {
		t.Fatalf("different message counts: %d vs %d", len(g1), len(g2))
	}
	for i := range g1 {
		if g1[i].Payload != g2[i].Payload {
			t.Fatalf("message %d differs across identical runs", i)
		}
	}
	if s1.RetryTime != s2.RetryTime || s1.MessagesRetried != s2.MessagesRetried ||
		s1.MessagesDropped != s2.MessagesDropped || s1.DupsSuppressed != s2.DupsSuppressed {
		t.Errorf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("proc %d clock differs: %v vs %v", i, c1[i], c2[i])
		}
	}
}

func TestReliableNoPlanIsPlain(t *testing.T) {
	// Without a plan the reliable operations must charge exactly like
	// Send/Recv so fault-free runs are bit-identical to the pre-fault code.
	run := func(reliable bool) (Stats, float64) {
		c := MustNew(2, fastMachine())
		err := c.Run(func(p *Proc) error {
			if p.ID() == 0 {
				if reliable {
					p.SendReliable(1, "t", 42, 1000)
				} else {
					p.Send(1, "t", 42, 1000)
				}
				return nil
			}
			if reliable {
				p.RecvReliable(0, "t")
			} else {
				p.Recv(0, "t")
			}
			return nil
		})
		if err != nil {
			return Stats{}, 0
		}
		return c.Proc(1).Stats(), c.MaxClock()
	}
	sr, cr := run(true)
	sp, cp := run(false)
	if cr != cp {
		t.Errorf("reliable path clock %v != plain %v without a plan", cr, cp)
	}
	if sr.IdleTime != sp.IdleTime || sr.SendTime != sp.SendTime || sr.RetryTime != 0 {
		t.Errorf("reliable path stats differ without a plan: %+v vs %+v", sr, sp)
	}
}

func TestRetryExhaustionDeclaresPeerDead(t *testing.T) {
	// Drop close to 1 with few retries: the receiver must give up with a
	// typed DeadRankError rather than hang.
	plan := FaultPlan{Seed: 7, Drop: 0.999, Reliable: ReliableConfig{MaxRetries: 2}}
	c := MustNew(2, fastMachine())
	if err := c.InstallFaults(&plan); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.SendReliable(1, "t", 1, 100)
			return nil
		}
		p.RecvReliable(0, "t")
		return nil
	})
	var de *DeadRankError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadRankError, got %v", err)
	}
	if !de.RetriesExhausted || de.Peer != 0 || de.Rank != 1 {
		t.Errorf("unexpected error detail: %+v", de)
	}
}

func TestCrashTerminatesAndSurfaces(t *testing.T) {
	// Rank 1 crashes at virtual time 5; rank 0 blocks receiving from it and
	// must get a DeadRankError instead of deadlocking, and the run must
	// report the CrashError for rank 1.
	c := MustNew(2, fastMachine())
	plan := FaultPlan{Crashes: []Crash{{Rank: 1, At: 5}}}
	if err := c.InstallFaults(&plan); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(p *Proc) error {
		if p.ID() == 1 {
			p.Compute(10, "work") // crosses the crash time
			p.SendReliable(0, "t", 1, 100)
			return nil
		}
		p.RecvReliable(1, "t")
		return nil
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError in %v", err)
	}
	if ce.Rank != 1 || ce.At != 5 || ce.Clock < 5 {
		t.Errorf("unexpected crash detail: %+v", ce)
	}
	var de *DeadRankError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadRankError for the blocked receiver in %v", err)
	}
	if got := c.CrashedRanks(); len(got) != 1 || got[0] != 1 {
		t.Errorf("CrashedRanks = %v, want [1]", got)
	}
}

func TestStragglerSlowsCompute(t *testing.T) {
	run := func(plan *FaultPlan) float64 {
		c := MustNew(1, fastMachine())
		if err := c.InstallFaults(plan); err != nil {
			t.Fatal(err)
		}
		if err := c.Run(func(p *Proc) error {
			for i := 0; i < 10; i++ {
				p.Compute(1, "work")
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return c.MaxClock()
	}
	base := run(&FaultPlan{})
	slow := run(&FaultPlan{Stragglers: []Straggler{{Rank: 0, At: 5, Factor: 3}}})
	if base != 10 {
		t.Fatalf("baseline clock %v, want 10", base)
	}
	// Five seconds at full speed, then five 1s charges slowed 3x.
	if slow != 5+15 {
		t.Errorf("straggler clock %v, want 20", slow)
	}
}

func TestRecvTimeout(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Compute(1.0, "work") // message hits the wire at t=1
			p.Send(1, "t", 42, 100)
			return nil
		}
		// Deadline t=0.5 expires before the sender's message is ready.
		if _, ok := p.RecvTimeout(0, "t", 0.5); ok {
			return errors.New("timeout receive unexpectedly succeeded")
		}
		if p.Clock() != 0.5 {
			return fmt.Errorf("clock after timeout = %v, want 0.5", p.Clock())
		}
		// A longer deadline sees the message; it stayed queued.
		msg, ok := p.RecvTimeout(0, "t", 10)
		if !ok {
			return errors.New("second receive timed out")
		}
		if msg.Payload.(int) != 42 {
			return fmt.Errorf("payload %v", msg.Payload)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTimeoutDeadSender(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return nil // terminates without sending
		}
		if _, ok := p.RecvTimeout(0, "t", 2); ok {
			return errors.New("receive from terminated sender succeeded")
		}
		if p.Clock() != 2 {
			return fmt.Errorf("clock after timeout = %v, want 2", p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvFromDeadPeerErrorsInsteadOfDeadlock(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return nil // never sends
		}
		p.Recv(0, "t") // would deadlock forever before the fault layer
		return nil
	})
	var de *DeadRankError
	if !errors.As(err, &de) {
		t.Fatalf("want DeadRankError, got %v", err)
	}
	if de.Peer != 0 || de.RetriesExhausted {
		t.Errorf("unexpected detail: %+v", de)
	}
}

func TestTagMismatchTypedError(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, "actual", 1, 10)
			return nil
		}
		p.Recv(0, "expected")
		return nil
	})
	var te *TagMismatchError
	if !errors.As(err, &te) {
		t.Fatalf("want TagMismatchError, got %v", err)
	}
	if te.Want != "expected" || te.Got != "actual" || te.Rank != 1 {
		t.Errorf("unexpected detail: %+v", te)
	}
}

func TestResetAfterFaultedRun(t *testing.T) {
	// A faulted run leaves crashed ranks, queued messages and termination
	// flags behind; Reset must restore a fully working cluster.
	c := MustNew(2, fastMachine())
	plan := FaultPlan{Crashes: []Crash{{Rank: 1, At: 0.5}}}
	if err := c.InstallFaults(&plan); err != nil {
		t.Fatal(err)
	}
	c.EnableTrace()
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, "t", 1, 10) // never consumed: rank 1 crashes first
			return nil
		}
		p.Compute(1, "work")
		p.Recv(0, "t")
		return nil
	})
	if err == nil {
		t.Fatal("expected the crash to surface")
	}
	c.Reset()
	if got := c.CrashedRanks(); len(got) != 0 {
		t.Fatalf("CrashedRanks after Reset = %v", got)
	}
	if c.MaxClock() != 0 {
		t.Fatalf("clock after Reset = %v", c.MaxClock())
	}
	if tr := c.Trace(); len(tr) != 0 {
		t.Fatalf("trace survived Reset: %d events", len(tr))
	}
	// The crash entry must not re-fire (the plan was uninstalled) and the
	// queued message must be gone.
	err = c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, "fresh", 2, 10)
			return nil
		}
		msg := p.Recv(0, "fresh")
		if msg.Payload.(int) != 2 {
			return fmt.Errorf("stale message leaked: %v", msg.Payload)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("cluster unusable after Reset: %v", err)
	}
}

func TestResetCommPreservesClocksAndCrashSchedule(t *testing.T) {
	c := MustNew(2, fastMachine())
	plan := FaultPlan{Crashes: []Crash{{Rank: 1, At: 0.5}}}
	if err := c.InstallFaults(&plan); err != nil {
		t.Fatal(err)
	}
	err := c.Run(func(p *Proc) error {
		p.Compute(1, "work")
		return nil
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want CrashError, got %v", err)
	}
	clock1 := c.Proc(1).Clock()
	c.ResetComm()
	// Clocks survive; the fired crash entry does not re-fire.
	if c.Proc(1).Clock() != clock1 {
		t.Fatalf("ResetComm changed clocks")
	}
	if err := c.Run(func(p *Proc) error {
		p.Compute(1, "work")
		return nil
	}); err != nil {
		t.Fatalf("crash entry re-fired after ResetComm: %v", err)
	}
}

func TestInstallFaultsValidation(t *testing.T) {
	c := MustNew(2, fastMachine())
	bad := []FaultPlan{
		{Drop: 1.5},
		{Drop: -0.1},
		{Reorder: 1},
		{Crashes: []Crash{{Rank: 5, At: 1}}},
		{Crashes: []Crash{{Rank: 0, At: -1}}},
		{Stragglers: []Straggler{{Rank: 0, At: 0, Factor: 0.5}}},
	}
	for i, plan := range bad {
		if err := c.InstallFaults(&plan); err == nil {
			t.Errorf("case %d: plan %+v accepted", i, plan)
		}
	}
}

// TestFaultyCollectives drives the real collectives (reduce, all-gather,
// barrier) through a lossy plan: they must still produce correct results.
func TestFaultyCollectives(t *testing.T) {
	const p = 4
	c := MustNew(p, fastMachine())
	plan := FaultPlan{Seed: 11, Drop: 0.2, Dup: 0.2, Reorder: 0.2}
	if err := c.InstallFaults(&plan); err != nil {
		t.Fatal(err)
	}
	world := c.World()
	sums := make([][]int64, p)
	err := c.Run(func(pr *Proc) error {
		vec := []int64{int64(pr.ID()), 1, int64(pr.ID() * 10)}
		sums[pr.ID()] = world.AllReduceInt64(pr, "red", vec)
		world.Barrier(pr, "bar")
		gathered := world.AllGather(pr, "gather", pr.ID()*100, 8)
		for rank, g := range gathered {
			if g.Payload.(int) != rank*100 {
				return fmt.Errorf("proc %d: gathered[%d] = %v", pr.ID(), rank, g.Payload)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0 + 1 + 2 + 3, p, (0 + 1 + 2 + 3) * 10}
	for rank, got := range sums {
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("proc %d: reduce[%d] = %d, want %d", rank, i, got[i], want[i])
			}
		}
	}
	if st := c.TotalStats(); st.MessagesDropped == 0 {
		t.Errorf("lossy plan dropped nothing; plan not exercised")
	}
}

// FuzzSeqDedup feeds adversarial frame schedules (drop/dup/reorder rates
// and seeds) through the reliable layer and asserts exactly-once, in-order
// delivery.
func FuzzSeqDedup(f *testing.F) {
	f.Add(uint64(1), 0.2, 0.3, 0.3, 20)
	f.Add(uint64(42), 0.0, 0.9, 0.0, 8)
	f.Add(uint64(7), 0.4, 0.0, 0.9, 15)
	f.Fuzz(func(t *testing.T, seed uint64, drop, dup, reorder float64, n int) {
		if drop < 0 || drop > 0.6 || dup < 0 || dup >= 1 || reorder < 0 || reorder >= 1 {
			t.Skip("rates out of the supported range")
		}
		if n < 1 || n > 200 {
			t.Skip("message count out of range")
		}
		plan := FaultPlan{Seed: seed, Drop: drop, Dup: dup, Reorder: reorder,
			Reliable: ReliableConfig{MaxRetries: 12}}
		c := MustNew(2, fastMachine())
		if err := c.InstallFaults(&plan); err != nil {
			t.Fatal(err)
		}
		var got []int
		err := c.Run(func(p *Proc) error {
			if p.ID() == 0 {
				for i := 0; i < n; i++ {
					p.SendReliable(1, "t", i, 50)
				}
				return nil
			}
			for i := 0; i < n; i++ {
				got = append(got, p.RecvReliable(0, "t").Payload.(int))
			}
			return nil
		})
		if err != nil {
			var de *DeadRankError
			if errors.As(err, &de) && de.RetriesExhausted {
				return // legitimate under extreme drop rates
			}
			t.Fatal(err)
		}
		if len(got) != n {
			t.Fatalf("received %d, want %d", len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("payload %d at position %d: duplicate or reorder leaked through", v, i)
			}
		}
	})
}
