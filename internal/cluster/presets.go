package cluster

// Preset pairs a machine model with the short name commands accept on
// their -machine flags.
type Preset struct {
	// Name is the flag spelling ("t3e", "sp2", "cow", "ideal") — distinct
	// from Machine.Name, the display label in experiment output.
	Name string
	// Doc is a one-line description for usage text.
	Doc string
	// Machine builds the cost model.
	Machine func() Machine
}

// Presets returns every machine model in presentation order.  Commands
// build their -machine flag handling from this list instead of hard-coding
// the switch.
func Presets() []Preset {
	return []Preset{
		{"t3e", "128-processor Cray T3E, memory-resident database", T3E},
		{"sp2", "16-node IBM SP2 with disk-resident database", SP2},
		{"cow", "cluster of workstations on switched Ethernet, no overlap", COW},
		{"ideal", "free communication, T3E compute (ablation baseline)", Ideal},
	}
}

// ByName finds a preset by its flag spelling.
func ByName(name string) (Preset, bool) {
	for _, p := range Presets() {
		if p.Name == name {
			return p, true
		}
	}
	return Preset{}, false
}
