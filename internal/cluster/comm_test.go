package cluster

import (
	"fmt"
	"testing"
)

func TestAllReduceSums(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
		c := MustNew(p, fastMachine())
		world := c.World()
		results := make([][]int64, p)
		err := c.Run(func(pr *Proc) error {
			vec := []int64{int64(pr.ID()), 1, int64(pr.ID() * 10)}
			results[pr.ID()] = world.AllReduceInt64(pr, "t", vec)
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		wantSum := int64(p * (p - 1) / 2)
		for i, got := range results {
			if got[0] != wantSum || got[1] != int64(p) || got[2] != wantSum*10 {
				t.Errorf("P=%d proc %d: %v", p, i, got)
			}
		}
	}
}

func TestAllReduceDoesNotMutateInput(t *testing.T) {
	c := MustNew(2, fastMachine())
	world := c.World()
	_ = c.Run(func(pr *Proc) error {
		vec := []int64{5}
		world.AllReduceInt64(pr, "t", vec)
		if vec[0] != 5 {
			return fmt.Errorf("input mutated: %v", vec)
		}
		return nil
	})
}

func TestAllGatherDeliversAll(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		c := MustNew(p, fastMachine())
		world := c.World()
		results := make([][]Gathered, p)
		err := c.Run(func(pr *Proc) error {
			payload := fmt.Sprintf("from-%d", pr.ID())
			results[pr.ID()] = world.AllGather(pr, "g", payload, len(payload))
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		for i, got := range results {
			if len(got) != p {
				t.Fatalf("P=%d proc %d: %d blocks", p, i, len(got))
			}
			for rank, g := range got {
				want := fmt.Sprintf("from-%d", rank)
				if g.Payload.(string) != want {
					t.Errorf("P=%d proc %d rank %d: %v", p, i, rank, g.Payload)
				}
				if g.Rank != rank {
					t.Errorf("P=%d proc %d: block %d has Rank %d", p, i, rank, g.Rank)
				}
			}
		}
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	c := MustNew(4, fastMachine())
	world := c.World()
	err := c.Run(func(pr *Proc) error {
		pr.Compute(float64(pr.ID()), "skew") // clocks 0..3
		world.Barrier(pr, "b")
		if pr.Clock() < 3 {
			return fmt.Errorf("proc %d clock %v below barrier max", pr.ID(), pr.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxFloat64(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		c := MustNew(p, fastMachine())
		world := c.World()
		results := make([]float64, p)
		err := c.Run(func(pr *Proc) error {
			results[pr.ID()] = world.MaxFloat64(pr, "m", float64(pr.ID()*pr.ID()))
			return nil
		})
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		want := float64((p - 1) * (p - 1))
		for i, got := range results {
			if got != want {
				t.Errorf("P=%d proc %d: max = %v, want %v", p, i, got, want)
			}
		}
	}
}

func TestSubCommunicators(t *testing.T) {
	// A 2x2 grid: row comms {0,1} and {2,3}, column comms {0,2} and {1,3}.
	c := MustNew(4, fastMachine())
	results := make([][]int64, 4)
	err := c.Run(func(pr *Proc) error {
		row := pr.ID() / 2
		members := []int{row * 2, row*2 + 1}
		comm, err := NewComm(c, members)
		if err != nil {
			return err
		}
		results[pr.ID()] = comm.AllReduceInt64(pr, "row", []int64{int64(pr.ID())})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0][0] != 1 || results[1][0] != 1 {
		t.Errorf("row 0 sums: %v %v", results[0], results[1])
	}
	if results[2][0] != 5 || results[3][0] != 5 {
		t.Errorf("row 1 sums: %v %v", results[2], results[3])
	}
}

func TestNewCommValidation(t *testing.T) {
	c := MustNew(4, fastMachine())
	if _, err := NewComm(c, nil); err == nil {
		t.Error("empty communicator accepted")
	}
	if _, err := NewComm(c, []int{0, 0}); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := NewComm(c, []int{0, 9}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestRankLookup(t *testing.T) {
	c := MustNew(4, fastMachine())
	comm, err := NewComm(c, []int{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	if comm.Size() != 2 {
		t.Errorf("Size = %d", comm.Size())
	}
	if comm.Rank(c.Proc(3)) != 0 || comm.Rank(c.Proc(1)) != 1 {
		t.Error("rank mapping wrong")
	}
	if comm.Rank(c.Proc(0)) != -1 {
		t.Error("non-member should rank -1")
	}
	if comm.Member(0) != 3 || comm.Member(1) != 1 {
		t.Error("Member mapping wrong")
	}
}

// Note: there is deliberately no test for mismatched AllReduce vector
// lengths.  That invariant violation panics on the receiving processor,
// and — as on a real message-passing machine — peers that were waiting for
// its messages then block forever; Run has no cross-processor cancellation.
// The panic message is the debugging aid; a test would just hang.

func TestNonMemberCollectivePanics(t *testing.T) {
	c := MustNew(3, fastMachine())
	err := c.Run(func(pr *Proc) error {
		comm, err := NewComm(c, []int{0, 1})
		if err != nil {
			return err
		}
		if pr.ID() == 2 {
			comm.AllReduceInt64(pr, "t", []int64{1}) // panics, recovered
			return nil
		}
		comm.AllReduceInt64(pr, "t", []int64{1})
		return nil
	})
	if err == nil {
		t.Error("non-member collective should error")
	}
}

func TestCollectiveDeterminism(t *testing.T) {
	run := func() []float64 {
		c := MustNew(8, fastMachine())
		world := c.World()
		_ = c.Run(func(pr *Proc) error {
			vec := make([]int64, 100)
			for i := range vec {
				vec[i] = int64(pr.ID() + i)
			}
			world.AllReduceInt64(pr, "a", vec)
			world.AllGather(pr, "g", pr.ID(), 64)
			world.Barrier(pr, "b")
			return nil
		})
		return c.Clocks()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("proc %d clock differs: %v vs %v", i, a[i], b[i])
		}
	}
}
