package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Cluster is an emulated P-processor message-passing machine.
type Cluster struct {
	machine Machine
	procs   []*Proc
	// boxes[to][from] is the FIFO mailbox carrying messages from processor
	// `from` to processor `to`.
	boxes [][]*mailbox

	// faults is the installed fault plan, nil when the machine is reliable.
	faults *faultState

	// termMu guards term, the cross-goroutine record of terminated
	// processors (receivers consult it to charge dead-peer detection).
	termMu sync.Mutex
	term   []termInfo
}

// termInfo records one processor's termination within the current Run.
type termInfo struct {
	done    bool
	clock   float64
	crashed bool
}

// New builds a cluster of p processors with the given cost model.
func New(p int, m Machine) (*Cluster, error) {
	if p < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 processor, got %d", p)
	}
	c := &Cluster{machine: m}
	c.procs = make([]*Proc, p)
	c.boxes = make([][]*mailbox, p)
	c.term = make([]termInfo, p)
	for i := range c.procs {
		c.procs[i] = &Proc{id: i, c: c}
		c.boxes[i] = make([]*mailbox, p)
		for j := range c.boxes[i] {
			c.boxes[i][j] = newMailbox()
		}
	}
	return c, nil
}

// MustNew is New for statically valid arguments.
func MustNew(p int, m Machine) *Cluster {
	c, err := New(p, m)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the number of processors.
func (c *Cluster) P() int { return len(c.procs) }

// Machine returns the cost model.
func (c *Cluster) Machine() Machine { return c.machine }

// Proc returns processor i.
func (c *Cluster) Proc(i int) *Proc { return c.procs[i] }

// Run executes fn once per processor, each on its own goroutine (the SPMD
// model of MPI programs), and waits for all of them.  It returns the join
// of the per-processor errors.  Virtual clocks and statistics accumulate
// across successive Runs on the same cluster; use Reset between independent
// experiments.
//
// When a processor's body terminates — normal return, error, or panic
// (including a scheduled *CrashError) — its outgoing mailboxes are marked
// done: peers first drain any queued messages, then receive a
// *DeadRankError instead of blocking forever.  Run therefore always
// returns, with each failed rank's error in the join; panic values that
// are errors are wrapped so errors.As sees the concrete type.
func (c *Cluster) Run(fn func(p *Proc) error) error {
	// A previous Run's termination flags would make this one's receivers
	// see their peers as already dead; clear them (queues and clocks still
	// accumulate across Runs).
	c.termMu.Lock()
	for i := range c.term {
		c.term[i] = termInfo{}
	}
	c.termMu.Unlock()
	for i, p := range c.procs {
		p.crashPending = nil
		for j := range c.boxes[i] {
			c.boxes[i][j].clearDone()
		}
	}
	errs := make([]error, len(c.procs))
	var wg sync.WaitGroup
	for i, p := range c.procs {
		wg.Add(1)
		go func(i int, p *Proc) {
			defer wg.Done()
			defer c.markDone(p)
			defer func() {
				if r := recover(); r != nil {
					switch v := r.(type) {
					case error:
						errs[i] = fmt.Errorf("cluster: proc %d: %w", i, v)
						var ce *CrashError
						if errors.As(v, &ce) {
							p.crashPending = ce
						}
					default:
						errs[i] = fmt.Errorf("cluster: proc %d panicked: %v", i, r)
					}
				}
			}()
			if err := fn(p); err != nil {
				errs[i] = fmt.Errorf("cluster: proc %d: %w", i, err)
				return
			}
			p.flushAllHeld()
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// markDone records the processor's termination and wakes every peer blocked
// on one of its mailboxes.
func (c *Cluster) markDone(p *Proc) {
	c.termMu.Lock()
	c.term[p.id] = termInfo{done: true, clock: p.clock, crashed: p.crashPending != nil}
	c.termMu.Unlock()
	for to := range c.boxes {
		if to == p.id {
			continue
		}
		c.boxes[to][p.id].markDone()
	}
}

// termClockOf returns the virtual clock at which the rank terminated, or 0
// if it has not.
func (c *Cluster) termClockOf(rank int) float64 {
	c.termMu.Lock()
	defer c.termMu.Unlock()
	return c.term[rank].clock
}

// CrashedRanks returns the ranks whose last Run ended in a *CrashError, in
// ascending order.
func (c *Cluster) CrashedRanks() []int {
	c.termMu.Lock()
	defer c.termMu.Unlock()
	var out []int
	for i, t := range c.term {
		if t.crashed {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Revive clears the crash/termination record of one rank so a subsequent
// Run can respawn it.  The rank's virtual clock stays where the crash left
// it — recovery time is real time.  The fired crash entry does not re-fire.
func (c *Cluster) Revive(rank int) {
	c.termMu.Lock()
	c.term[rank] = termInfo{}
	c.termMu.Unlock()
	c.procs[rank].crashPending = nil
}

// ResetComm clears all in-flight communication state between Runs of one
// logical computation: queued and held messages, termination flags, and
// reliable-layer sequence state.  Clocks, statistics, traces, and fault
// schedules (including fired crash entries) are preserved — this is the
// restart primitive for checkpoint recovery, not a full Reset.
//
// Each mailbox's generation is bumped and its waiters woken, so a receiver
// goroutine orphaned by a previous faulted Run gives up instead of stealing
// the next Run's messages.
func (c *Cluster) ResetComm() {
	c.termMu.Lock()
	for i := range c.term {
		c.term[i] = termInfo{}
	}
	c.termMu.Unlock()
	for i, p := range c.procs {
		p.crashPending = nil
		p.sendSeq = nil
		p.heldOut = nil
		p.recvExpect = nil
		p.recvBuf = nil
		for j := range c.boxes[i] {
			c.boxes[i][j].reset()
		}
	}
}

// Reset returns the cluster to its initial state for an independent
// experiment: clocks, port times, statistics, traces and tracing mode,
// communication state (including pending mailbox waiters from a faulted
// run, which are cancelled via the mailbox generation), and any installed
// fault plan are all cleared.
func (c *Cluster) Reset() {
	c.ResetComm()
	c.faults = nil
	for _, p := range c.procs {
		p.clock = 0
		p.portFree = 0
		p.stats = Stats{}
		p.tracing = false
		p.trace = nil
		p.clearFaultSchedule()
	}
}

// MaxClock returns the response time of the run so far: the maximum virtual
// clock over all processors.
func (c *Cluster) MaxClock() float64 {
	max := 0.0
	for _, p := range c.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Clocks returns every processor's virtual clock.
func (c *Cluster) Clocks() []float64 {
	out := make([]float64, len(c.procs))
	for i, p := range c.procs {
		out[i] = p.clock
	}
	return out
}

// TotalStats sums the per-processor statistics.
func (c *Cluster) TotalStats() Stats {
	var total Stats
	for _, p := range c.procs {
		total.Add(p.Stats())
	}
	return total
}

// RingDistance returns the hop count between ranks a and b on a
// bidirectional ring of size p — the congestion factor DD's unstructured
// messages carry.
func RingDistance(a, b, p int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if p-d < d {
		d = p - d
	}
	return d
}
