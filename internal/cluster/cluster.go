package cluster

import (
	"errors"
	"fmt"
	"sync"
)

// Cluster is an emulated P-processor message-passing machine.
type Cluster struct {
	machine Machine
	procs   []*Proc
	// boxes[to][from] is the FIFO mailbox carrying messages from processor
	// `from` to processor `to`.
	boxes [][]*mailbox
}

// New builds a cluster of p processors with the given cost model.
func New(p int, m Machine) (*Cluster, error) {
	if p < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 processor, got %d", p)
	}
	c := &Cluster{machine: m}
	c.procs = make([]*Proc, p)
	c.boxes = make([][]*mailbox, p)
	for i := range c.procs {
		c.procs[i] = &Proc{id: i, c: c}
		c.boxes[i] = make([]*mailbox, p)
		for j := range c.boxes[i] {
			c.boxes[i][j] = newMailbox()
		}
	}
	return c, nil
}

// MustNew is New for statically valid arguments.
func MustNew(p int, m Machine) *Cluster {
	c, err := New(p, m)
	if err != nil {
		panic(err)
	}
	return c
}

// P returns the number of processors.
func (c *Cluster) P() int { return len(c.procs) }

// Machine returns the cost model.
func (c *Cluster) Machine() Machine { return c.machine }

// Proc returns processor i.
func (c *Cluster) Proc(i int) *Proc { return c.procs[i] }

// Run executes fn once per processor, each on its own goroutine (the SPMD
// model of MPI programs), and waits for all of them.  It returns the join
// of the per-processor errors.  Virtual clocks and statistics accumulate
// across successive Runs on the same cluster; use Reset between independent
// experiments.
func (c *Cluster) Run(fn func(p *Proc) error) error {
	errs := make([]error, len(c.procs))
	var wg sync.WaitGroup
	for i, p := range c.procs {
		wg.Add(1)
		go func(i int, p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("cluster: proc %d panicked: %v", i, r)
				}
			}()
			if err := fn(p); err != nil {
				errs[i] = fmt.Errorf("cluster: proc %d: %w", i, err)
			}
		}(i, p)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Reset zeroes every processor's clock and statistics and drops any
// undelivered messages.
func (c *Cluster) Reset() {
	for i, p := range c.procs {
		p.clock = 0
		p.portFree = 0
		p.stats = Stats{}
		p.trace = nil
		for j := range c.boxes[i] {
			c.boxes[i][j].queue = nil
		}
	}
}

// MaxClock returns the response time of the run so far: the maximum virtual
// clock over all processors.
func (c *Cluster) MaxClock() float64 {
	max := 0.0
	for _, p := range c.procs {
		if p.clock > max {
			max = p.clock
		}
	}
	return max
}

// Clocks returns every processor's virtual clock.
func (c *Cluster) Clocks() []float64 {
	out := make([]float64, len(c.procs))
	for i, p := range c.procs {
		out[i] = p.clock
	}
	return out
}

// TotalStats sums the per-processor statistics.
func (c *Cluster) TotalStats() Stats {
	var total Stats
	for _, p := range c.procs {
		total.Add(p.Stats())
	}
	return total
}

// RingDistance returns the hop count between ranks a and b on a
// bidirectional ring of size p — the congestion factor DD's unstructured
// messages carry.
func RingDistance(a, b, p int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if p-d < d {
		d = p - d
	}
	return d
}
