// Package cluster emulates the message-passing parallel machine the paper
// ran on.  Each processor is a goroutine; messages travel through unbounded
// mailboxes; and every event — computation, message transfer, disk I/O —
// advances a per-processor *virtual clock* according to a machine cost
// model.  The response time of a run is the maximum virtual clock over the
// processors, which is what the paper's figures plot.
//
// # Why virtual time
//
// The paper's results are relative: CD vs DD vs IDD vs HD on the same
// machine.  All the effects it measures — communication volume, network
// contention, idle time, redundant computation, load imbalance — are
// functions of the message pattern and the operation counts, which the
// emulation reproduces exactly.  The virtual clock turns them into response
// times with the same shape as the Cray T3E and IBM SP2 figures, while the
// algorithms still genuinely execute in parallel (goroutines really carry
// the data through channels, and the mined itemsets are checked against the
// serial algorithm).
//
// # Contention model
//
// Transfers are charged latency + bytes/bandwidth at a per-processor
// *receive port* that serializes concurrent arrivals.  Messages belonging
// to an unstructured all-to-all (DD's page scatter) additionally carry a
// congestion factor equal to the ring distance between sender and receiver:
// on sparse interconnects such messages cross many shared links, and
// charging hop-proportional occupancy is the deterministic, local
// approximation of that link contention (Section III-B calls this pattern
// "significantly more than O(N)").  Structured patterns — neighbor shifts,
// binomial trees, ring all-gathers — use disjoint links and keep factor 1.
package cluster

// Machine is the cost model of the emulated parallel computer.
type Machine struct {
	// Name labels the preset in experiment output.
	Name string
	// Latency is the per-message startup time in seconds (the paper
	// measured an effective 16 µs on the T3E).
	Latency float64
	// Bandwidth is the per-link bandwidth in bytes/second (303 MB/s
	// measured on the T3E, 35 MB/s effective on the SP2's switch).
	Bandwidth float64
	// Overlap reports whether the hardware lets communication proceed
	// concurrently with computation (both the T3E and SP2 do; setting it
	// false reproduces the paper's "system that cannot perform asynchronous
	// communication" remarks).
	Overlap bool
	// IOBandwidth is the sustained disk-read bandwidth in bytes/second.
	// Zero means I/O is free — the T3E experiments kept the database in a
	// memory buffer and ignored I/O, and we reproduce that default.
	IOBandwidth float64
	// Compute cost constants, seconds per operation.  They correspond to
	// the t_travers / t_check terms of the Section IV analysis plus the
	// hash-tree construction and reduction work.
	TTravers float64 // per hash-tree traversal step (pointer chase)
	// TArray is the cost of one contiguous-array navigation step (the trie
	// engine's merge-join comparison or gallop probe).  The same abstract
	// role as TTravers but far cheaper: a compare-and-branch over packed
	// int32 arrays that the hardware prefetcher keeps in cache, versus a
	// hash step whose child lookup is a dependent load that typically
	// misses.  Calibrated at roughly TTravers/8 — the DESIGN.md derivation
	// counts ~3-4 cycles for the compare against the ~25-30 cycle average
	// of a hash step once misses are amortized in.
	TArray float64
	TCheck float64 // per candidate containment test at a leaf
	TInsert  float64 // per candidate insertion during tree construction
	TGen     float64 // per candidate produced by apriori_gen (replicated work)
	TItem    float64 // per item touched in scanning work (F1, filtering)
	TReduce  float64 // per element combined in a reduction
	// TWord is the cost of one 64-bit bitmap word operation (AND +
	// popcount), the counting unit of the vertical bitset engine.  Far
	// cheaper than a tree traversal step: it is straight-line register
	// arithmetic over contiguous words, with no pointer chase.
	TWord float64
	// MemoryBytes is the per-processor memory available for the candidate
	// hash tree.  Zero means unbounded.  CD partitions its tree — and
	// rescans the database — when the candidates exceed this (Figure 12).
	MemoryBytes int
}

// T3E returns the cost model of the paper's primary platform: a Cray T3E
// with 600 MHz Alpha (EV5) processors, 512 MB per node, a 3-D torus with
// 303 MB/s measured bandwidth and 16 µs effective startup, and the database
// held in a main-memory buffer (I/O free).
func T3E() Machine {
	return Machine{
		Name:      "CrayT3E",
		Latency:   16e-6,
		Bandwidth: 303e6,
		Overlap:   true,
		// 600 MHz EV5: a hash step is a few tens of cycles once cache
		// misses are counted; a leaf check walks two short sorted lists.
		TTravers: 120e-9,
		TArray:   15e-9,
		TCheck:   80e-9,
		TInsert:  500e-9,
		TGen:     150e-9,
		TItem:    25e-9,
		TReduce:  12e-9,
		TWord:    8e-9,
	}
}

// SP2 returns the cost model of the paper's secondary platform: a 16-node
// IBM SP2 (66.7 MHz Power2) whose High Performance Switch peaks at
// 110 MB/s (≈35 MB/s effective), with the database resident on disk so
// rescans cost real I/O — the regime of Figure 12.
func SP2() Machine {
	return Machine{
		Name:        "IBMSP2",
		Latency:     40e-6,
		Bandwidth:   35e6,
		Overlap:     true,
		IOBandwidth: 20e6,
		// The Power2 runs at a ninth of the EV5's clock.
		TTravers: 900e-9,
		TArray:   110e-9,
		TCheck:   600e-9,
		TInsert:  3500e-9,
		TGen:     1100e-9,
		TItem:    180e-9,
		TReduce:  90e-9,
		TWord:    60e-9,
	}
}

// COW returns a "cluster of workstations" model: commodity machines on
// switched 100 Mbit Ethernet — high latency, thin pipes, no real
// compute/communication overlap, local disks.  Useful for exploring how the
// formulations behave off supercomputer interconnects (the CD paper [6]
// argued CD's single reduction makes it the COW-friendly choice, which this
// preset reproduces).
func COW() Machine {
	return Machine{
		Name:        "COW",
		Latency:     500e-6,
		Bandwidth:   12.5e6,
		Overlap:     false,
		IOBandwidth: 30e6,
		TTravers:    100e-9,
		TArray:      12e-9,
		TCheck:      70e-9,
		TInsert:     450e-9,
		TGen:        130e-9,
		TItem:       22e-9,
		TReduce:     10e-9,
		TWord:       7e-9,
	}
}

// Ideal returns a machine with free communication (zero latency, effectively
// infinite bandwidth, full overlap) and the T3E's compute costs.  It is the
// ablation baseline that isolates communication effects: any gap between an
// algorithm's Ideal and T3E times is communication; any gap that remains on
// Ideal is computation (redundant work, load imbalance, serial bottlenecks).
func Ideal() Machine {
	m := T3E()
	m.Name = "Ideal"
	m.Latency = 0
	m.Bandwidth = 1e15
	m.Overlap = true
	return m
}

// transferTime returns the wire time of a message of the given size with a
// pattern congestion factor.
func (m Machine) transferTime(bytes int, congestion float64) float64 {
	if congestion < 1 {
		congestion = 1
	}
	if m.Bandwidth <= 0 {
		return 0
	}
	return congestion * float64(bytes) / m.Bandwidth
}
