package cluster

import (
	"strings"
	"testing"
)

func TestTraceRecordsEvents(t *testing.T) {
	c := MustNew(2, fastMachine())
	c.EnableTrace()
	_ = c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Compute(0.001, "warm")
			p.Send(1, "x", nil, 1000)
		} else {
			p.Recv(0, "x")
		}
		return nil
	})
	events := c.Trace()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	kinds := map[EventKind]int{}
	for _, e := range events {
		kinds[e.Kind]++
		if e.End <= e.Start {
			t.Errorf("event with non-positive duration: %+v", e)
		}
	}
	if kinds[EvCompute] == 0 || kinds[EvSend] == 0 || kinds[EvIdle] == 0 {
		t.Errorf("missing kinds: %v", kinds)
	}
	// Ordered by start.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatal("trace not ordered by start time")
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	c := MustNew(1, fastMachine())
	_ = c.Run(func(p *Proc) error {
		p.Compute(1, "w")
		return nil
	})
	if got := c.Trace(); len(got) != 0 {
		t.Errorf("trace recorded %d events without EnableTrace", len(got))
	}
}

func TestTraceClearedByReset(t *testing.T) {
	c := MustNew(1, fastMachine())
	c.EnableTrace()
	_ = c.Run(func(p *Proc) error {
		p.Compute(1, "w")
		return nil
	})
	c.Reset()
	if got := c.Trace(); len(got) != 0 {
		t.Errorf("trace survived Reset: %d events", len(got))
	}
}

func TestWriteTimeline(t *testing.T) {
	events := []Event{
		{Proc: 0, Kind: EvCompute, Start: 0, End: 0.5},
		{Proc: 0, Kind: EvSend, Start: 0.5, End: 0.6, Peer: 1, Bytes: 100},
		{Proc: 1, Kind: EvIdle, Start: 0, End: 0.6, Peer: 0},
		{Proc: 1, Kind: EvCompute, Start: 0.6, End: 1.0},
	}
	var sb strings.Builder
	if err := WriteTimeline(&sb, events, 2, 40); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"P0", "P1", "#", ">", "."} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // header + 2 rows
		t.Errorf("expected 3 lines, got %d", len(lines))
	}
}

func TestWriteTimelineEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteTimeline(&sb, nil, 2, 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "empty") {
		t.Errorf("empty trace output: %q", sb.String())
	}
}

func TestTraceAccountsWholeClock(t *testing.T) {
	// With tracing on, compute+io+send+idle intervals of one proc must
	// tile its final clock (no unexplained time).
	m := fastMachine()
	c := MustNew(2, m)
	c.EnableTrace()
	_ = c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Compute(0.002, "a")
			p.Send(1, "x", nil, 500)
			p.Compute(0.001, "b")
		} else {
			p.Recv(0, "x")
			p.Compute(0.003, "c")
		}
		return nil
	})
	for pid := 0; pid < 2; pid++ {
		var covered float64
		for _, e := range c.Trace() {
			if e.Proc == pid {
				covered += e.End - e.Start
			}
		}
		clock := c.Proc(pid).Clock()
		if diff := clock - covered; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("proc %d: clock %v, trace covers %v", pid, clock, covered)
		}
	}
}
