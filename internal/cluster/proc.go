package cluster

import "fmt"

// Stats is the per-processor accounting of where virtual time went.  The
// paper reports exactly these decompositions ("for 64 processors the load
// imbalance overhead is 49.6%", "the cost of data movement is 6.4%").
type Stats struct {
	ComputeTime float64
	IOTime      float64
	IdleTime    float64
	SendTime    float64
	// RetryTime is the virtual time spent in the reliable layer's fault
	// handling: corrupted-frame port occupancy, retransmission backoff, and
	// dead-peer detection.  Zero on a fault-free run.
	RetryTime float64

	BytesSent        int64
	BytesReceived    int64
	MessagesSent     int64
	MessagesReceived int64
	// MessagesRetried counts retransmission attempts, MessagesDropped the
	// corrupted frames that triggered them, and DupsSuppressed the
	// duplicate frames discarded by sequence number.
	MessagesRetried int64
	MessagesDropped int64
	DupsSuppressed  int64

	// Phases breaks ComputeTime+IOTime down by algorithm phase
	// ("subset", "tree build", "reduction", ...).
	Phases map[string]float64
}

// Add accumulates other into s (phases included).
func (s *Stats) Add(other Stats) {
	s.ComputeTime += other.ComputeTime
	s.IOTime += other.IOTime
	s.IdleTime += other.IdleTime
	s.SendTime += other.SendTime
	s.RetryTime += other.RetryTime
	s.BytesSent += other.BytesSent
	s.BytesReceived += other.BytesReceived
	s.MessagesSent += other.MessagesSent
	s.MessagesReceived += other.MessagesReceived
	s.MessagesRetried += other.MessagesRetried
	s.MessagesDropped += other.MessagesDropped
	s.DupsSuppressed += other.DupsSuppressed
	for k, v := range other.Phases {
		if s.Phases == nil {
			s.Phases = make(map[string]float64)
		}
		s.Phases[k] += v
	}
}

// Proc is one emulated processor.  All methods must be called from the
// single goroutine executing the processor's program; only the mailboxes
// are shared between goroutines.
type Proc struct {
	id       int
	c        *Cluster
	clock    float64
	portFree float64
	stats    Stats
	tracing  bool
	trace    []Event

	// Reliable-layer state, all owned by the processor's goroutine.
	// sendSeq[to] is the next outgoing sequence number per destination;
	// heldOut[to] a frame the fault plan is holding for reordering;
	// recvExpect[from] the next expected incoming sequence number; and
	// recvBuf[from] the early-arrival buffer, keyed by sequence number
	// (keyed access only — never ranged, map order must not matter).
	sendSeq    []int64
	heldOut    []*Message
	recvExpect []int64
	recvBuf    []map[int64]Message

	// Fault schedule (from the installed plan) and its progress.
	crashes    []Crash
	crashIdx   int
	stragglers []Straggler
	// crashPending is set by Run's recover handler before the termination
	// broadcast so markDone records the crash.
	crashPending *CrashError
}

// ID returns the processor's global rank in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the number of processors in the cluster.
func (p *Proc) P() int { return len(p.c.procs) }

// Machine returns the cluster's cost model.
func (p *Proc) Machine() Machine { return p.c.machine }

// Clock returns the processor's current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Stats returns a copy of the processor's accounting so far.
func (p *Proc) Stats() Stats {
	s := p.stats
	s.Phases = make(map[string]float64, len(p.stats.Phases))
	for k, v := range p.stats.Phases {
		s.Phases[k] = v
	}
	return s
}

// Compute advances the virtual clock by the given number of seconds of
// local computation, attributed to the named phase.  An active straggler
// entry from the fault plan multiplies the charge.
func (p *Proc) Compute(seconds float64, phase string) {
	if seconds <= 0 {
		return
	}
	if f := p.straggleFactor(); f > 1 {
		seconds *= f
	}
	p.clock += seconds
	p.stats.ComputeTime += seconds
	p.addPhase(phase, seconds)
	p.record(EvCompute, phase, p.clock-seconds, p.clock, -1, 0)
	p.checkCrash()
}

// ReadIO charges the time to read the given number of bytes from disk.
// With IOBandwidth == 0 (the T3E's in-memory buffer) it is free.
func (p *Proc) ReadIO(bytes int64, phase string) {
	if bytes <= 0 || p.c.machine.IOBandwidth <= 0 {
		return
	}
	seconds := float64(bytes) / p.c.machine.IOBandwidth
	p.clock += seconds
	p.stats.IOTime += seconds
	p.addPhase(phase, seconds)
	p.record(EvIO, phase, p.clock-seconds, p.clock, -1, int(bytes))
	p.checkCrash()
}

func (p *Proc) addPhase(phase string, seconds float64) {
	if phase == "" {
		return
	}
	if p.stats.Phases == nil {
		p.stats.Phases = make(map[string]float64)
	}
	p.stats.Phases[phase] += seconds
}

// Send posts an asynchronous point-to-point message as part of a
// *structured* communication pattern (congestion factor 1): neighbor
// shifts, tree exchanges, ring all-gathers.
func (p *Proc) Send(to int, tag string, payload any, bytes int) {
	msg := p.prepSend(to, tag, payload, bytes, 1)
	p.c.boxes[to][p.id].put(msg)
}

// SendContended posts a message belonging to an *unstructured* pattern.
// The congestion factor — for DD's all-to-all page scatter, the ring
// distance between sender and receiver — multiplies the transfer occupancy
// at the receiver, modeling the shared-link contention of Section III-B.
func (p *Proc) SendContended(to int, tag string, payload any, bytes int, congestion float64) {
	msg := p.prepSend(to, tag, payload, bytes, congestion)
	p.c.boxes[to][p.id].put(msg)
}

// SendBlocking posts a message through a *synchronous* send: the sender's
// CPU is busy for the whole congested transfer, not just the startup.
// This is the communication regime of the original DD algorithm — "if the
// communication buffer of any receiving processor is full and the outgoing
// communication buffers are full, then the send operation is blocked"
// (Section III-B) — and exactly what IDD's pipelined asynchronous ring
// replaces.
func (p *Proc) SendBlocking(to int, tag string, payload any, bytes int, congestion float64) {
	t := p.c.machine.transferTime(bytes, congestion)
	p.clock += t
	p.stats.SendTime += t
	p.record(EvSend, tag, p.clock-t, p.clock, to, bytes)
	msg := p.prepSend(to, tag, payload, bytes, congestion)
	p.c.boxes[to][p.id].put(msg)
}

// prepSend validates the destination, charges the sender's side of the
// transfer, and returns the constructed message (not yet delivered).
func (p *Proc) prepSend(to int, tag string, payload any, bytes int, congestion float64) Message {
	if to < 0 || to >= p.P() {
		panic(&SendError{Rank: p.id, To: to, Tag: tag, Self: false})
	}
	if to == p.id {
		panic(&SendError{Rank: p.id, To: to, Tag: tag, Self: true})
	}
	p.checkCrash()
	m := p.c.machine
	sendStart := p.clock
	// The sender's CPU is busy for the message startup.
	p.clock += m.Latency
	p.stats.SendTime += m.Latency
	msg := Message{
		From: p.id, To: to, Tag: tag, Payload: payload, Bytes: bytes,
		readyAt: p.clock, congestion: congestion,
	}
	if !m.Overlap {
		// Without overlap hardware the sender also drives the transfer.
		t := m.transferTime(bytes, congestion)
		p.clock += t
		p.stats.SendTime += t
	}
	p.stats.BytesSent += int64(bytes)
	p.stats.MessagesSent++
	p.record(EvSend, tag, sendStart, p.clock, to, bytes)
	return msg
}

// Recv receives the next message from the given sender, blocking the
// goroutine until one is available, and advances virtual time to the
// transfer's completion.  If the sender terminates (return, error, or
// crash) with no message queued, Recv panics a *DeadRankError, which
// Cluster.Run surfaces as that rank's error — a protocol imbalance or a
// peer failure no longer deadlocks the run.  A tag mismatch likewise panics
// a *TagMismatchError.
//
// With Overlap hardware, time already spent computing since the message
// became available overlaps the transfer (the MPI_Irecv / compute /
// MPI_Waitall pattern of Figure 6).  The receive port serializes
// concurrent arrivals either way.
func (p *Proc) Recv(from int, tag string) Message {
	p.flushAllHeld()
	msg, ok := p.c.boxes[p.id][from].takeOrDone()
	if !ok {
		p.panicDeadPeer(from, tag, false)
	}
	if msg.Tag != tag {
		panic(&TagMismatchError{Rank: p.id, From: from, Want: tag, Got: msg.Tag})
	}
	p.completeRecv(msg)
	return msg
}

// RecvAny receives the next message from the given sender whatever its tag.
// For protocols that multiplex several message kinds on one stream (HPA's
// candidate pages terminated by a sentinel); the caller dispatches on
// Message.Tag itself.  Like Recv it panics a *DeadRankError when the sender
// terminated with nothing queued.
func (p *Proc) RecvAny(from int) Message {
	p.flushAllHeld()
	msg, ok := p.c.boxes[p.id][from].takeOrDone()
	if !ok {
		p.panicDeadPeer(from, "<any>", false)
	}
	p.completeRecv(msg)
	return msg
}

// RecvTimeout receives like Recv but gives up at a virtual-time deadline of
// Clock() + timeout.  It returns ok == false — with the clock advanced to
// the deadline, the wait charged as idle time — when the sender terminated
// with nothing queued, or when the next message's transfer would complete
// after the deadline (the message stays queued for a later receive).  A
// tag mismatch on a message that is consumed still panics a
// *TagMismatchError.
//
// The deadline is virtual: the goroutine still blocks until a message
// arrives or the sender terminates, because only one of those events can
// reveal what the virtual timeline contains.  Determinism is preserved —
// the outcome depends on virtual clocks alone, never on scheduling.
func (p *Proc) RecvTimeout(from int, tag string, timeout float64) (Message, bool) {
	p.flushAllHeld()
	deadline := p.clock + timeout
	box := p.c.boxes[p.id][from]
	msg, ok := box.peekOrDone()
	if !ok {
		p.SyncClock(deadline)
		return Message{}, false
	}
	if p.recvCompletion(msg) > deadline {
		p.SyncClock(deadline)
		return Message{}, false
	}
	// Single consumer per mailbox: the peeked head is still the head.
	msg, _ = box.tryTake()
	if msg.Tag != tag {
		panic(&TagMismatchError{Rank: p.id, From: from, Want: tag, Got: msg.Tag})
	}
	p.completeRecv(msg)
	return msg, true
}

// recvCompletion returns the virtual time at which the message's transfer
// would complete for this receiver, without consuming anything.
func (p *Proc) recvCompletion(msg Message) float64 {
	m := p.c.machine
	t := m.transferTime(msg.Bytes, msg.congestion)
	start := msg.readyAt
	if !m.Overlap && p.clock > start {
		start = p.clock
	}
	if p.portFree > start {
		start = p.portFree
	}
	return start + t
}

func (p *Proc) completeRecv(msg Message) {
	m := p.c.machine
	t := m.transferTime(msg.Bytes, msg.congestion)
	before := p.clock
	if m.Overlap {
		start := msg.readyAt
		if p.portFree > start {
			start = p.portFree
		}
		completion := start + t
		p.portFree = completion
		if completion > p.clock {
			p.stats.IdleTime += completion - p.clock
			p.record(EvIdle, msg.Tag, p.clock, completion, msg.From, msg.Bytes)
			p.clock = completion
		}
	} else {
		start := p.clock
		if msg.readyAt > start {
			start = msg.readyAt
		}
		if p.portFree > start {
			start = p.portFree
		}
		if start > before {
			p.stats.IdleTime += start - before
			p.record(EvIdle, msg.Tag, before, start, msg.From, msg.Bytes)
		}
		completion := start + t
		p.portFree = completion
		p.clock = completion
	}
	p.stats.BytesReceived += int64(msg.Bytes)
	p.stats.MessagesReceived++
	p.checkCrash()
}

// SyncClock advances the processor's clock to at least t, recording the
// difference as idle time.  Collectives use it to model barrier semantics.
func (p *Proc) SyncClock(t float64) {
	if t > p.clock {
		p.stats.IdleTime += t - p.clock
		p.record(EvIdle, "sync", p.clock, t, -1, 0)
		p.clock = t
	}
	p.checkCrash()
}

// SendError reports a send to an invalid destination (out of range or
// self).  It panics at the call site — a structural bug in the calling
// algorithm — and Cluster.Run converts it into that rank's error.
type SendError struct {
	Rank, To int
	Tag      string
	Self     bool
}

func (e *SendError) Error() string {
	if e.Self {
		return fmt.Sprintf("cluster: proc %d sending to itself (tag %q)", e.Rank, e.Tag)
	}
	return fmt.Sprintf("cluster: proc %d sending to invalid rank %d", e.Rank, e.To)
}
