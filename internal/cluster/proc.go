package cluster

import "fmt"

// Stats is the per-processor accounting of where virtual time went.  The
// paper reports exactly these decompositions ("for 64 processors the load
// imbalance overhead is 49.6%", "the cost of data movement is 6.4%").
type Stats struct {
	ComputeTime float64
	IOTime      float64
	IdleTime    float64
	SendTime    float64

	BytesSent        int64
	BytesReceived    int64
	MessagesSent     int64
	MessagesReceived int64

	// Phases breaks ComputeTime+IOTime down by algorithm phase
	// ("subset", "tree build", "reduction", ...).
	Phases map[string]float64
}

// Add accumulates other into s (phases included).
func (s *Stats) Add(other Stats) {
	s.ComputeTime += other.ComputeTime
	s.IOTime += other.IOTime
	s.IdleTime += other.IdleTime
	s.SendTime += other.SendTime
	s.BytesSent += other.BytesSent
	s.BytesReceived += other.BytesReceived
	s.MessagesSent += other.MessagesSent
	s.MessagesReceived += other.MessagesReceived
	for k, v := range other.Phases {
		if s.Phases == nil {
			s.Phases = make(map[string]float64)
		}
		s.Phases[k] += v
	}
}

// Proc is one emulated processor.  All methods must be called from the
// single goroutine executing the processor's program; only the mailboxes
// are shared between goroutines.
type Proc struct {
	id       int
	c        *Cluster
	clock    float64
	portFree float64
	stats    Stats
	tracing  bool
	trace    []Event
}

// ID returns the processor's global rank in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the number of processors in the cluster.
func (p *Proc) P() int { return len(p.c.procs) }

// Machine returns the cluster's cost model.
func (p *Proc) Machine() Machine { return p.c.machine }

// Clock returns the processor's current virtual time in seconds.
func (p *Proc) Clock() float64 { return p.clock }

// Stats returns a copy of the processor's accounting so far.
func (p *Proc) Stats() Stats {
	s := p.stats
	s.Phases = make(map[string]float64, len(p.stats.Phases))
	for k, v := range p.stats.Phases {
		s.Phases[k] = v
	}
	return s
}

// Compute advances the virtual clock by the given number of seconds of
// local computation, attributed to the named phase.
func (p *Proc) Compute(seconds float64, phase string) {
	if seconds <= 0 {
		return
	}
	p.clock += seconds
	p.stats.ComputeTime += seconds
	p.addPhase(phase, seconds)
	p.record(EvCompute, phase, p.clock-seconds, p.clock, -1, 0)
}

// ReadIO charges the time to read the given number of bytes from disk.
// With IOBandwidth == 0 (the T3E's in-memory buffer) it is free.
func (p *Proc) ReadIO(bytes int64, phase string) {
	if bytes <= 0 || p.c.machine.IOBandwidth <= 0 {
		return
	}
	seconds := float64(bytes) / p.c.machine.IOBandwidth
	p.clock += seconds
	p.stats.IOTime += seconds
	p.addPhase(phase, seconds)
	p.record(EvIO, phase, p.clock-seconds, p.clock, -1, int(bytes))
}

func (p *Proc) addPhase(phase string, seconds float64) {
	if phase == "" {
		return
	}
	if p.stats.Phases == nil {
		p.stats.Phases = make(map[string]float64)
	}
	p.stats.Phases[phase] += seconds
}

// Send posts an asynchronous point-to-point message as part of a
// *structured* communication pattern (congestion factor 1): neighbor
// shifts, tree exchanges, ring all-gathers.
func (p *Proc) Send(to int, tag string, payload any, bytes int) {
	p.send(to, tag, payload, bytes, 1)
}

// SendContended posts a message belonging to an *unstructured* pattern.
// The congestion factor — for DD's all-to-all page scatter, the ring
// distance between sender and receiver — multiplies the transfer occupancy
// at the receiver, modeling the shared-link contention of Section III-B.
func (p *Proc) SendContended(to int, tag string, payload any, bytes int, congestion float64) {
	p.send(to, tag, payload, bytes, congestion)
}

// SendBlocking posts a message through a *synchronous* send: the sender's
// CPU is busy for the whole congested transfer, not just the startup.
// This is the communication regime of the original DD algorithm — "if the
// communication buffer of any receiving processor is full and the outgoing
// communication buffers are full, then the send operation is blocked"
// (Section III-B) — and exactly what IDD's pipelined asynchronous ring
// replaces.
func (p *Proc) SendBlocking(to int, tag string, payload any, bytes int, congestion float64) {
	t := p.c.machine.transferTime(bytes, congestion)
	p.clock += t
	p.stats.SendTime += t
	p.send(to, tag, payload, bytes, congestion)
}

func (p *Proc) send(to int, tag string, payload any, bytes int, congestion float64) {
	if to < 0 || to >= p.P() {
		panic(fmt.Sprintf("cluster: proc %d sending to invalid rank %d", p.id, to))
	}
	if to == p.id {
		panic(fmt.Sprintf("cluster: proc %d sending to itself (tag %q)", p.id, tag))
	}
	m := p.c.machine
	sendStart := p.clock
	// The sender's CPU is busy for the message startup.
	p.clock += m.Latency
	p.stats.SendTime += m.Latency
	msg := Message{
		From: p.id, To: to, Tag: tag, Payload: payload, Bytes: bytes,
		readyAt: p.clock, congestion: congestion,
	}
	if !m.Overlap {
		// Without overlap hardware the sender also drives the transfer.
		t := m.transferTime(bytes, congestion)
		p.clock += t
		p.stats.SendTime += t
	}
	p.stats.BytesSent += int64(bytes)
	p.stats.MessagesSent++
	p.record(EvSend, tag, sendStart, p.clock, to, bytes)
	p.c.boxes[to][p.id].put(msg)
}

// Recv receives the next message from the given sender, blocking the
// goroutine until one is available, and advances virtual time to the
// transfer's completion.  The tag must match the sender's; a mismatch is a
// protocol bug in the calling algorithm and panics.
//
// With Overlap hardware, time already spent computing since the message
// became available overlaps the transfer (the MPI_Irecv / compute /
// MPI_Waitall pattern of Figure 6).  The receive port serializes
// concurrent arrivals either way.
func (p *Proc) Recv(from int, tag string) Message {
	msg := p.c.boxes[p.id][from].take()
	if msg.Tag != tag {
		panic(fmt.Sprintf("cluster: proc %d expected tag %q from %d, got %q", p.id, tag, from, msg.Tag))
	}
	p.completeRecv(msg)
	return msg
}

// RecvAny receives the next message from the given sender whatever its tag.
// For protocols that multiplex several message kinds on one stream (HPA's
// candidate pages terminated by a sentinel); the caller dispatches on
// Message.Tag itself.
func (p *Proc) RecvAny(from int) Message {
	msg := p.c.boxes[p.id][from].take()
	p.completeRecv(msg)
	return msg
}

func (p *Proc) completeRecv(msg Message) {
	m := p.c.machine
	t := m.transferTime(msg.Bytes, msg.congestion)
	before := p.clock
	if m.Overlap {
		start := msg.readyAt
		if p.portFree > start {
			start = p.portFree
		}
		completion := start + t
		p.portFree = completion
		if completion > p.clock {
			p.stats.IdleTime += completion - p.clock
			p.record(EvIdle, msg.Tag, p.clock, completion, msg.From, msg.Bytes)
			p.clock = completion
		}
	} else {
		start := p.clock
		if msg.readyAt > start {
			start = msg.readyAt
		}
		if p.portFree > start {
			start = p.portFree
		}
		if start > before {
			p.stats.IdleTime += start - before
			p.record(EvIdle, msg.Tag, before, start, msg.From, msg.Bytes)
		}
		completion := start + t
		p.portFree = completion
		p.clock = completion
	}
	p.stats.BytesReceived += int64(msg.Bytes)
	p.stats.MessagesReceived++
}

// SyncClock advances the processor's clock to at least t, recording the
// difference as idle time.  Collectives use it to model barrier semantics.
func (p *Proc) SyncClock(t float64) {
	if t > p.clock {
		p.stats.IdleTime += t - p.clock
		p.record(EvIdle, "sync", p.clock, t, -1, 0)
		p.clock = t
	}
}
