package cluster

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event is one interval of a processor's virtual timeline.
type Event struct {
	Proc  int
	Kind  EventKind
	Phase string // compute/io phase label, or message tag
	Start float64
	End   float64
	Peer  int // counterpart processor for send/idle-on-recv; -1 otherwise
	Bytes int // message size for send events
}

// EventKind classifies trace events.
type EventKind byte

// The kinds of event a processor records.
const (
	EvCompute EventKind = 'c'
	EvIO      EventKind = 'f'
	EvSend    EventKind = 's'
	EvIdle    EventKind = 'w'
	// EvRetry marks reliable-layer retransmission backoff (and dead-peer
	// detection); EvDrop the port occupancy of a corrupted or duplicate
	// frame the NIC discarded.
	EvRetry EventKind = 'r'
	EvDrop  EventKind = 'x'
)

// EnableTrace turns on event recording for subsequent Runs.  Tracing is off
// by default: a large run generates an event per message and per compute
// slice.
func (c *Cluster) EnableTrace() {
	for _, p := range c.procs {
		p.tracing = true
	}
}

// Trace returns every recorded event, ordered by start time (ties by
// processor).  Reset clears the trace along with the clocks.
func (c *Cluster) Trace() []Event {
	var all []Event
	for _, p := range c.procs {
		all = append(all, p.trace...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].Proc < all[j].Proc
	})
	return all
}

func (p *Proc) record(kind EventKind, phase string, start, end float64, peer, bytes int) {
	if !p.tracing || end <= start {
		return
	}
	p.trace = append(p.trace, Event{
		Proc: p.id, Kind: kind, Phase: phase, Start: start, End: end, Peer: peer, Bytes: bytes,
	})
}

// WriteTimeline renders the events as a text Gantt chart: one row per
// processor, `width` columns spanning [0, horizon] of virtual time, with
// compute as '#', sends as '>', disk I/O as 'o', idle waits as '.',
// retry backoff as 'r' and discarded frames as 'x'.
// Later-starting events win ties for a cell, which makes waits visible at
// the tail of each pass.
func WriteTimeline(w io.Writer, events []Event, procs int, width int) error {
	if width < 20 {
		width = 20
	}
	horizon := 0.0
	for _, e := range events {
		if e.End > horizon {
			horizon = e.End
		}
	}
	if horizon == 0 {
		_, err := io.WriteString(w, "(empty trace)\n")
		return err
	}
	rows := make([][]byte, procs)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	glyph := map[EventKind]byte{EvCompute: '#', EvSend: '>', EvIO: 'o', EvIdle: '.', EvRetry: 'r', EvDrop: 'x'}
	for _, e := range events {
		if e.Proc < 0 || e.Proc >= procs {
			continue
		}
		lo := int(e.Start / horizon * float64(width-1))
		hi := int(e.End / horizon * float64(width-1))
		for c := lo; c <= hi && c < width; c++ {
			rows[e.Proc][c] = glyph[e.Kind]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "virtual time 0 .. %.6fs   (# compute, > send, o io, . idle, r retry, x drop)\n", horizon)
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", i, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
