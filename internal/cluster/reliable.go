package cluster

// The reliable messaging layer.  SendReliable/RecvReliable wrap Send/Recv
// with sequence numbers, duplicate suppression, reorder recovery, and a
// receiver-side retry protocol, all charged to the virtual clock.  With no
// fault plan installed both degenerate to the plain operations — identical
// charging, identical stats — so fault-free runs are unchanged.
//
// The retry protocol is NIC-level, driven entirely by the receiver: a
// dropped frame arrives as a tombstone (the corrupted frame still occupies
// the receive port), the receiver charges a NACK startup plus an
// exponential backoff wait per attempt, and re-rolls the plan's drop
// decision for the retransmission.  Modeling the protocol on the receiver
// keeps every charge on one goroutine's own state — no cross-processor
// writes, no scheduling sensitivity — which is what makes faulty runs
// bit-reproducible.  Acknowledgements are modeled the same way: one
// message-startup charge on the receiver per accepted frame, no ack frame
// enqueued.

// SendReliable posts a sequenced point-to-point message through the fault
// plan (congestion factor 1).  Without an installed plan it is exactly
// Send.
func (p *Proc) SendReliable(to int, tag string, payload any, bytes int) {
	fs := p.c.faults
	if fs == nil {
		p.Send(to, tag, payload, bytes)
		return
	}
	msg := p.prepSend(to, tag, payload, bytes, 1)
	msg.seq = p.nextSeq(to)
	p.transmitFaulty(fs, msg)
}

// nextSeq returns the next sequence number for the destination, starting
// at 1 (0 marks unsequenced messages).
func (p *Proc) nextSeq(to int) int64 {
	if p.sendSeq == nil {
		p.initReliableState()
	}
	p.sendSeq[to]++
	return p.sendSeq[to]
}

func (p *Proc) initReliableState() {
	n := p.P()
	p.sendSeq = make([]int64, n)
	p.heldOut = make([]*Message, n)
	p.recvExpect = make([]int64, n)
	p.recvBuf = make([]map[int64]Message, n)
}

// transmitFaulty runs the frame through the plan's drop/delay/dup/reorder
// decisions and delivers it (or holds it for reordering).
func (p *Proc) transmitFaulty(fs *faultState, msg Message) {
	plan := &fs.plan
	to := msg.To
	if plan.Delay > 0 && plan.roll(kDelay, msg.From, to, msg.seq, 0) < plan.Delay {
		msg.readyAt += plan.DelaySeconds
	}
	if plan.Drop > 0 && plan.roll(kDrop, msg.From, to, msg.seq, 0) < plan.Drop {
		msg.tomb = true
	}
	dup := plan.Dup > 0 && plan.roll(kDup, msg.From, to, msg.seq, 0) < plan.Dup
	box := p.c.boxes[to][p.id]
	if held := p.heldOut[to]; held != nil {
		// A frame to this destination is being held: the new frame goes out
		// first, then the held one — an adjacent swap in arrival order.
		p.heldOut[to] = nil
		box.put(msg)
		if dup {
			box.put(msg)
		}
		box.put(*held)
		return
	}
	if plan.Reorder > 0 && plan.roll(kReorder, msg.From, to, msg.seq, 0) < plan.Reorder {
		p.heldOut[to] = &msg
		return
	}
	box.put(msg)
	if dup {
		box.put(msg)
	}
}

// flushAllHeld transmits every frame the reorder fault is holding.  Flush
// points are sender-program-order — before any receive and at body
// termination — so delivery order is a pure function of the program, not
// of goroutine scheduling.
func (p *Proc) flushAllHeld() {
	if p.heldOut == nil {
		return
	}
	for to, held := range p.heldOut {
		if held != nil {
			p.heldOut[to] = nil
			p.c.boxes[to][p.id].put(*held)
		}
	}
}

// RecvReliable receives the next in-order sequenced message from the given
// sender, running the retry protocol on corrupted frames, suppressing
// duplicates, and buffering early arrivals.  Without an installed plan it
// is exactly Recv.
func (p *Proc) RecvReliable(from int, tag string) Message {
	fs := p.c.faults
	if fs == nil {
		return p.Recv(from, tag)
	}
	p.flushAllHeld()
	if p.recvExpect == nil {
		p.initReliableState()
	}
	want := p.recvExpect[from] + 1
	if buf := p.recvBuf[from]; buf != nil {
		if msg, ok := buf[want]; ok {
			// Arrived early, already charged when buffered.
			delete(buf, want)
			p.recvExpect[from] = want
			return p.checkTag(msg, tag)
		}
	}
	box := p.c.boxes[p.id][from]
	for {
		msg, ok := box.takeOrDone()
		if !ok {
			p.chargeDeadDetect(fs, from)
			panic(&DeadRankError{Rank: p.id, Peer: from, Tag: tag, Clock: p.clock})
		}
		if msg.seq != 0 && msg.seq < want {
			// Stale frame (duplicate of an accepted sequence number): the
			// NIC discards it after it occupies the port.
			p.chargeOccupancy(msg)
			p.stats.DupsSuppressed++
			continue
		}
		if msg.tomb {
			recovered, ok := p.retryRecover(fs, msg)
			if !ok {
				panic(&DeadRankError{Rank: p.id, Peer: from, Tag: tag, Clock: p.clock, RetriesExhausted: true})
			}
			msg = recovered
		}
		p.completeRecv(msg)
		p.chargeAck(fs)
		if msg.seq == 0 || msg.seq == want {
			if msg.seq == want {
				p.recvExpect[from] = want
			}
			return p.checkTag(msg, tag)
		}
		// Early arrival: buffer it (keyed access only) and keep draining.
		if p.recvBuf[from] == nil {
			p.recvBuf[from] = make(map[int64]Message)
		}
		p.recvBuf[from][msg.seq] = msg
	}
}

func (p *Proc) checkTag(msg Message, tag string) Message {
	if msg.Tag != tag {
		panic(&TagMismatchError{Rank: p.id, From: msg.From, Want: tag, Got: msg.Tag})
	}
	return msg
}

// retryRecover runs the receiver-side retry protocol on a corrupted frame:
// charge the frame's port occupancy, then per attempt a NACK startup and an
// exponentially growing backoff wait, re-rolling the plan's drop decision
// until a retransmission survives or the attempts are exhausted.
func (p *Proc) retryRecover(fs *faultState, tomb Message) (Message, bool) {
	plan := &fs.plan
	cfg := plan.Reliable
	m := p.c.machine
	p.chargeOccupancy(tomb)
	p.stats.MessagesDropped++
	backoff := cfg.BaseBackoff
	for attempt := 1; attempt <= cfg.MaxRetries; attempt++ {
		// NACK startup on the receiver's NIC.
		p.clock += m.Latency
		p.stats.SendTime += m.Latency
		p.record(EvSend, "nack", p.clock-m.Latency, p.clock, tomb.From, 0)
		// Wait out the backoff before the retransmission can land.
		p.stats.RetryTime += backoff
		p.record(EvRetry, tomb.Tag, p.clock, p.clock+backoff, tomb.From, tomb.Bytes)
		p.clock += backoff
		backoff *= 2
		p.stats.MessagesRetried++
		if plan.roll(kDrop, tomb.From, p.id, tomb.seq, attempt) >= plan.Drop {
			msg := tomb
			msg.tomb = false
			msg.readyAt = p.clock
			return msg, true
		}
	}
	return Message{}, false
}

// chargeOccupancy charges the wire time of a frame the NIC discards (a
// tombstone or a suppressed duplicate): the frame occupies the receive
// port like any other arrival, but the wait counts as retry overhead, not
// useful idle-until-data time.
func (p *Proc) chargeOccupancy(msg Message) {
	m := p.c.machine
	t := m.transferTime(msg.Bytes, msg.congestion)
	start := msg.readyAt
	if !m.Overlap && p.clock > start {
		start = p.clock
	}
	if p.portFree > start {
		start = p.portFree
	}
	completion := start + t
	p.portFree = completion
	if completion > p.clock {
		p.stats.RetryTime += completion - p.clock
		p.record(EvDrop, msg.Tag, p.clock, completion, msg.From, msg.Bytes)
		p.clock = completion
	}
	p.checkCrash()
}

// chargeAck models the acknowledgement of an accepted frame: one message
// startup on the receiver's NIC, no ack frame enqueued.
func (p *Proc) chargeAck(fs *faultState) {
	m := p.c.machine
	p.clock += m.Latency
	p.stats.SendTime += m.Latency
	p.record(EvSend, "ack", p.clock-m.Latency, p.clock, -1, 0)
}

// chargeDeadDetect charges the cost of discovering a terminated peer: the
// receiver catches up to the peer's termination clock (it cannot conclude
// death before the peer died) and burns the full retry schedule.
func (p *Proc) chargeDeadDetect(fs *faultState, from int) {
	termClock := p.c.termClockOf(from)
	if termClock > p.clock {
		p.SyncClock(termClock)
	}
	cost := fs.plan.Reliable.detectCost(p.c.machine)
	p.stats.RetryTime += cost
	p.record(EvRetry, "detect", p.clock, p.clock+cost, from, 0)
	p.clock += cost
}

// panicDeadPeer is the plain (non-reliable) receive's dead-sender exit.
func (p *Proc) panicDeadPeer(from int, tag string, retriesExhausted bool) {
	panic(&DeadRankError{Rank: p.id, Peer: from, Tag: tag, Clock: p.clock, RetriesExhausted: retriesExhausted})
}
