package cluster

import "sync"

// Message is one unit of communication between processors.
type Message struct {
	From    int
	To      int
	Tag     string
	Payload any
	// Bytes is the modeled wire size of the payload.
	Bytes int
	// readyAt is the sender's virtual clock when the message hit the wire.
	readyAt float64
	// congestion is the pattern congestion factor (see package comment).
	congestion float64
	// seq is the reliable layer's per-(sender, receiver) sequence number,
	// starting at 1; 0 marks an unsequenced (plain Send) message.
	seq int64
	// tomb marks a frame the fault plan corrupted in flight: it arrives so
	// the receiver's NIC detects the loss locally, but the payload only
	// becomes usable after a successful retransmission.
	tomb bool
}

// mailbox is an unbounded FIFO channel between one (sender, receiver) pair.
// Sends never block — the emulated machine posts sends asynchronously and
// the virtual-time model, not channel capacity, decides when transfers
// complete — so communication schedules that would deadlock with bounded
// buffers (DD's unstructured scatter) still make progress.
//
// A mailbox can be marked done when its sender terminates (return, error,
// panic, or scheduled crash).  Queued messages drain first; once the queue
// is empty a done mailbox wakes blocked receivers with ok == false instead
// of leaving them parked forever.  The gen counter invalidates waiters
// across Reset/ResetComm so stray goroutines from an abandoned run cannot
// consume messages of the next one.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
	done  bool
	gen   int
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg Message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

// takeOrDone blocks (the goroutine, not virtual time) until a message is
// present — removing and returning it — or until the sender is done and the
// queue has drained, returning ok == false.  A generation change while
// waiting also returns false: the run this waiter belonged to was reset.
func (m *mailbox) takeOrDone() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.gen
	for len(m.queue) == 0 {
		if m.done || m.gen != gen {
			return Message{}, false
		}
		m.cond.Wait()
	}
	if m.gen != gen {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// peekOrDone blocks like takeOrDone but leaves the message queued.  With a
// single consumer per mailbox the head cannot change between a peek and the
// following take.
func (m *mailbox) peekOrDone() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	gen := m.gen
	for len(m.queue) == 0 {
		if m.done || m.gen != gen {
			return Message{}, false
		}
		m.cond.Wait()
	}
	if m.gen != gen {
		return Message{}, false
	}
	return m.queue[0], true
}

// tryTake removes the head of the queue if one is present.
func (m *mailbox) tryTake() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}

// markDone flags the sender as terminated and wakes every waiter.
func (m *mailbox) markDone() {
	m.mu.Lock()
	m.done = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

// clearDone reopens a mailbox whose sender terminated in a previous Run.
func (m *mailbox) clearDone() {
	m.mu.Lock()
	m.done = false
	m.mu.Unlock()
}

// reset empties the queue, clears the done flag, and bumps the generation
// so waiters parked on the old run give up.
func (m *mailbox) reset() {
	m.mu.Lock()
	m.queue = nil
	m.done = false
	m.gen++
	m.cond.Broadcast()
	m.mu.Unlock()
}
