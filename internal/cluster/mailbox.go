package cluster

import "sync"

// Message is one unit of communication between processors.
type Message struct {
	From    int
	To      int
	Tag     string
	Payload any
	// Bytes is the modeled wire size of the payload.
	Bytes int
	// readyAt is the sender's virtual clock when the message hit the wire.
	readyAt float64
	// congestion is the pattern congestion factor (see package comment).
	congestion float64
}

// mailbox is an unbounded FIFO channel between one (sender, receiver) pair.
// Sends never block — the emulated machine posts sends asynchronously and
// the virtual-time model, not channel capacity, decides when transfers
// complete — so communication schedules that would deadlock with bounded
// buffers (DD's unstructured scatter) still make progress.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg Message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.cond.Signal()
	m.mu.Unlock()
}

// take blocks (the goroutine, not virtual time) until a message is present
// and removes the head of the queue.
func (m *mailbox) take() Message {
	m.mu.Lock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	m.mu.Unlock()
	return msg
}

// tryTake removes the head of the queue if one is present.
func (m *mailbox) tryTake() (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return Message{}, false
	}
	msg := m.queue[0]
	m.queue = m.queue[1:]
	return msg, true
}
