package cluster

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// fastMachine is a cost model with easy numbers for hand-checking.
func fastMachine() Machine {
	return Machine{
		Name:      "test",
		Latency:   1e-6,
		Bandwidth: 1e6, // 1 byte / microsecond
		Overlap:   true,
		TTravers:  1e-9, TCheck: 1e-9, TInsert: 1e-9, TGen: 1e-9, TItem: 1e-9, TReduce: 1e-9,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, fastMachine()); err == nil {
		t.Error("New(0) should fail")
	}
	c, err := New(4, fastMachine())
	if err != nil {
		t.Fatal(err)
	}
	if c.P() != 4 {
		t.Errorf("P = %d", c.P())
	}
}

func TestPointToPoint(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, "x", 42, 1000)
		} else {
			msg := p.Recv(0, "x")
			if msg.Payload.(int) != 42 {
				return fmt.Errorf("payload = %v", msg.Payload)
			}
			if msg.From != 0 || msg.To != 1 {
				return fmt.Errorf("routing: %+v", msg)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Receiver clock: sender startup (1µs) + transfer (1000 bytes = 1000µs).
	got := c.Proc(1).Clock()
	want := 1e-6 + 1000e-6
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("receiver clock = %v, want %v", got, want)
	}
}

func TestComputeAndPhases(t *testing.T) {
	c := MustNew(1, fastMachine())
	_ = c.Run(func(p *Proc) error {
		p.Compute(0.5, "subset")
		p.Compute(0.25, "subset")
		p.Compute(0.1, "build")
		p.Compute(-1, "ignored") // non-positive: no-op
		return nil
	})
	p := c.Proc(0)
	if p.Clock() != 0.85 {
		t.Errorf("clock = %v", p.Clock())
	}
	s := p.Stats()
	if s.ComputeTime != 0.85 {
		t.Errorf("ComputeTime = %v", s.ComputeTime)
	}
	if s.Phases["subset"] != 0.75 || s.Phases["build"] != 0.1 {
		t.Errorf("phases = %v", s.Phases)
	}
	if _, ok := s.Phases["ignored"]; ok {
		t.Error("negative compute recorded a phase")
	}
}

func TestReadIO(t *testing.T) {
	m := fastMachine()
	m.IOBandwidth = 1e6
	c := MustNew(1, m)
	_ = c.Run(func(p *Proc) error {
		p.ReadIO(2e6, "io")
		return nil
	})
	if got := c.Proc(0).Clock(); got != 2.0 {
		t.Errorf("clock = %v, want 2", got)
	}
	// Free I/O when IOBandwidth is zero.
	c2 := MustNew(1, fastMachine())
	_ = c2.Run(func(p *Proc) error {
		p.ReadIO(1e9, "io")
		return nil
	})
	if got := c2.Proc(0).Clock(); got != 0 {
		t.Errorf("free-I/O clock = %v", got)
	}
}

func TestReceivePortSerialization(t *testing.T) {
	// Two senders deliver 1000-byte messages "simultaneously"; the
	// receiver's port must serialize them: completion ~ 2 transfer times.
	c := MustNew(3, fastMachine())
	err := c.Run(func(p *Proc) error {
		switch p.ID() {
		case 0, 1:
			p.Send(2, "x", p.ID(), 1000)
		case 2:
			p.Recv(0, "x")
			p.Recv(1, "x")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := c.Proc(2).Clock()
	want := 1e-6 + 2*1000e-6 // startup + two serialized transfers
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("receiver clock = %v, want %v", got, want)
	}
}

func TestCongestionMultipliesOccupancy(t *testing.T) {
	c := MustNew(2, fastMachine())
	_ = c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.SendContended(1, "x", nil, 1000, 4)
		} else {
			p.Recv(0, "x")
		}
		return nil
	})
	got := c.Proc(1).Clock()
	want := 1e-6 + 4*1000e-6
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("clock = %v, want %v", got, want)
	}
}

func TestOverlapHidesTransferUnderCompute(t *testing.T) {
	// With overlap, computing 10ms while a 1ms transfer arrives costs
	// ~10ms; without overlap it costs ~11ms.
	run := func(overlap bool) float64 {
		m := fastMachine()
		m.Overlap = overlap
		c := MustNew(2, m)
		_ = c.Run(func(p *Proc) error {
			if p.ID() == 0 {
				p.Send(1, "x", nil, 1000) // 1ms transfer
			} else {
				p.Compute(0.010, "work")
				p.Recv(0, "x")
			}
			return nil
		})
		return c.Proc(1).Clock()
	}
	withOverlap := run(true)
	without := run(false)
	if withOverlap > 0.0105 {
		t.Errorf("overlap run took %v, transfer not hidden", withOverlap)
	}
	if without < 0.0105 {
		t.Errorf("non-overlap run took %v, transfer hidden", without)
	}
}

func TestBlockingSendChargesSender(t *testing.T) {
	c := MustNew(2, fastMachine())
	_ = c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.SendBlocking(1, "x", nil, 1000, 2)
		} else {
			p.Recv(0, "x")
		}
		return nil
	})
	// Sender: blocking transfer (2×1ms) + startup (1µs).
	got := c.Proc(0).Clock()
	want := 2*1000e-6 + 1e-6
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("sender clock = %v, want %v", got, want)
	}
}

func TestSendValidation(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(0, "self", nil, 1) // must panic, recovered by Run
		}
		return nil
	})
	if err == nil {
		t.Error("self-send should error")
	}
	err = c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(5, "oob", nil, 1)
		}
		return nil
	})
	if err == nil {
		t.Error("out-of-range send should error")
	}
}

func TestTagMismatchPanics(t *testing.T) {
	c := MustNew(2, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 0 {
			p.Send(1, "a", nil, 1)
		} else {
			p.Recv(0, "b")
		}
		return nil
	})
	if err == nil {
		t.Error("tag mismatch should surface as error")
	}
}

func TestRunCollectsErrors(t *testing.T) {
	c := MustNew(3, fastMachine())
	err := c.Run(func(p *Proc) error {
		if p.ID() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || !contains(err.Error(), "proc 1") {
		t.Errorf("err = %v", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && searchStr(s, sub))
}

func searchStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestReset(t *testing.T) {
	c := MustNew(2, fastMachine())
	_ = c.Run(func(p *Proc) error {
		p.Compute(1, "x")
		if p.ID() == 0 {
			p.Send(1, "t", nil, 10)
		}
		return nil
	})
	c.Reset()
	if c.MaxClock() != 0 {
		t.Errorf("MaxClock after Reset = %v", c.MaxClock())
	}
	// The undelivered message must be gone: a fresh matching Recv would
	// block forever, so instead check stats are zeroed and a fresh run works.
	if s := c.TotalStats(); s.ComputeTime != 0 || s.MessagesSent != 0 {
		t.Errorf("stats after Reset = %+v", s)
	}
	if _, ok := c.boxes[1][0].tryTake(); ok {
		t.Error("mailbox not drained by Reset")
	}
}

func TestMaxClockAndStats(t *testing.T) {
	c := MustNew(3, fastMachine())
	_ = c.Run(func(p *Proc) error {
		p.Compute(float64(p.ID()), "w")
		return nil
	})
	if got := c.MaxClock(); got != 2 {
		t.Errorf("MaxClock = %v", got)
	}
	clocks := c.Clocks()
	if clocks[0] != 0 || clocks[1] != 1 || clocks[2] != 2 {
		t.Errorf("Clocks = %v", clocks)
	}
	if got := c.TotalStats().ComputeTime; got != 3 {
		t.Errorf("total compute = %v", got)
	}
}

func TestRingDistance(t *testing.T) {
	cases := []struct{ a, b, p, want int }{
		{0, 1, 8, 1}, {1, 0, 8, 1}, {0, 4, 8, 4}, {0, 5, 8, 3},
		{7, 0, 8, 1}, {2, 2, 8, 0}, {0, 3, 4, 1},
	}
	for _, c := range cases {
		if got := RingDistance(c.a, c.b, c.p); got != c.want {
			t.Errorf("RingDistance(%d,%d,%d) = %d, want %d", c.a, c.b, c.p, got, c.want)
		}
	}
}

func TestRunParallelism(t *testing.T) {
	// All P bodies must actually run (and concurrently reachable): count
	// them with an atomic.
	c := MustNew(16, fastMachine())
	var n atomic.Int32
	_ = c.Run(func(p *Proc) error {
		n.Add(1)
		return nil
	})
	if n.Load() != 16 {
		t.Errorf("ran %d bodies", n.Load())
	}
}

func TestSyncClock(t *testing.T) {
	c := MustNew(1, fastMachine())
	_ = c.Run(func(p *Proc) error {
		p.Compute(1, "w")
		p.SyncClock(3)
		p.SyncClock(2) // no-op backwards
		return nil
	})
	p := c.Proc(0)
	if p.Clock() != 3 {
		t.Errorf("clock = %v", p.Clock())
	}
	if s := p.Stats(); s.IdleTime != 2 {
		t.Errorf("idle = %v", s.IdleTime)
	}
}
