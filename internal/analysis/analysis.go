// Package analysis implements the performance model of the paper's
// Section IV: the expected number of distinct hash-tree leaves a
// transaction visits (Equations 1–2), the per-algorithm runtime equations
// (Equations 3–7) and HD's G-selection window (Equation 8).
//
// The model is used three ways: property tests check the closed form
// against brute-force expectation; integration tests check it against the
// hash tree's measured counters; and the experiments compare predicted
// response times with the emulated ones.
package analysis

import "math"

// V returns V(i, j): the expected number of distinct leaf nodes visited
// when a transaction generates i potential candidates against a hash tree
// with j leaves, assuming each traversal lands on a uniformly random leaf
// (Equation 1):
//
//	V(i,j) = (jⁱ − (j−1)ⁱ) / jⁱ⁻¹ = j·(1 − (1 − 1/j)ⁱ)
//
// The second form is evaluated for numerical stability at large i, j.
// For j → ∞, V(i,j) → i (Equation 2); for i ≫ j it saturates at j.
func V(i, j float64) float64 {
	if i <= 0 || j <= 0 {
		return 0
	}
	//checkinv:allow floatcmp — exact short-circuit: V(1,j) = 1 by definition
	if i == 1 {
		return 1
	}
	// j·(1−(1−1/j)^i) = j·(1−exp(i·log1p(−1/j))) = −j·expm1(i·log1p(−1/j)).
	//checkinv:allow floatcmp — exact guard: log1p(-1/j) is -inf at j = 1
	if j == 1 {
		return 1
	}
	return -j * math.Expm1(i*math.Log1p(-1/j))
}

// Choose returns the binomial coefficient C(n, k) as a float64, the count
// of potential candidates a transaction of n items generates at pass k.
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	c := 1.0
	for i := 1; i <= k; i++ {
		c = c * float64(n-k+i) / float64(i)
	}
	return c
}

// Workload carries the symbols of Table III that describe one pass of one
// problem instance.
type Workload struct {
	N float64 // total number of transactions
	M float64 // total number of candidates
	I float64 // average items per transaction
	K int     // pass number
	S float64 // average candidates per leaf
}

// C returns the average number of potential candidates per transaction,
// C = (I choose k).
func (w Workload) C() float64 { return Choose(int(math.Round(w.I)), w.K) }

// L returns the average number of leaves of the full (serial) hash tree,
// L = M/S.
func (w Workload) L() float64 {
	if w.S <= 0 {
		return w.M
	}
	return w.M / w.S
}

// Costs carries the machine constants the equations are written in.
type Costs struct {
	TTravers float64 // hash-tree traversal per potential candidate
	TCheck   float64 // per-candidate check at a leaf... charged per S-block
	TInsert  float64 // per-candidate tree construction
	TData    float64 // seconds per transaction moved (communication)
	TReduce  float64 // per-candidate-count reduction cost
}

// perLeafCheck converts the model's "checking at a leaf with S candidates"
// into the per-leaf cost: S individual candidate checks.
func (c Costs) perLeafCheck(s float64) float64 { return c.TCheck * s }

// Serial returns T_serial of Equation 3:
//
//	N·C·t_travers + N·V(C, L)·t_check·S + O(M) construction.
func Serial(w Workload, c Costs) float64 {
	C, L := w.C(), w.L()
	return w.N*C*c.TTravers +
		w.N*V(C, L)*c.perLeafCheck(w.S) +
		w.M*c.TInsert
}

// CD returns T_CD of Equation 4 on P processors: the subset work scales by
// P but tree construction and the global reduction stay O(M).
func CD(w Workload, c Costs, p float64) float64 {
	C, L := w.C(), w.L()
	return w.N/p*C*c.TTravers +
		w.N/p*V(C, L)*c.perLeafCheck(w.S) +
		w.M*c.TInsert +
		w.M*c.TReduce
}

// DD returns T_DD of Equation 5: every processor still traverses for all N
// transactions, the leaf checking shrinks less than P-fold
// (V(C, L/P) > V(C, L)/P — the redundant work), construction scales, and
// the data movement costs O(N).
func DD(w Workload, c Costs, p float64) float64 {
	C, L := w.C(), w.L()
	return w.N*C*c.TTravers +
		w.N*V(C, L/p)*c.perLeafCheck(w.S) +
		w.M/p*c.TInsert +
		w.N*c.TData
}

// IDD returns T_IDD of Equation 6: both traversal and checking scale by P
// thanks to the intelligent partitioning (C/P potential candidates against
// an L/P-leaf tree), leaving only the O(N) data movement unscaled.
func IDD(w Workload, c Costs, p float64) float64 {
	C, L := w.C(), w.L()
	return w.N*(C/p)*c.TTravers +
		w.N*V(C/p, L/p)*c.perLeafCheck(w.S) +
		w.M/p*c.TInsert +
		w.N*c.TData
}

// HD returns T_HD of Equation 7 for G candidate partitions on P
// processors: each processor handles G·N/P transactions against C/G
// potential candidates, with O(M/G) construction/reduction and O(G·N/P)
// data movement.
func HD(w Workload, c Costs, p, g float64) float64 {
	C, L := w.C(), w.L()
	return (g*w.N/p)*(C/g)*c.TTravers +
		(g*w.N/p)*V(C/g, L/g)*c.perLeafCheck(w.S) +
		w.M/g*c.TInsert +
		w.M/g*c.TReduce +
		(g*w.N/p)*c.TData
}

// BestG returns the G in [1, P] minimizing the HD runtime, restricted to
// divisors of P (the grid must tile the machine), together with the
// minimum.
func BestG(w Workload, c Costs, p int) (int, float64) {
	bestG, bestT := 1, math.Inf(1)
	for g := 1; g <= p; g++ {
		if p%g != 0 {
			continue
		}
		if t := HD(w, c, float64(p), float64(g)); t < bestT {
			bestG, bestT = g, t
		}
	}
	return bestG, bestT
}

// GWindow returns Equation 8's window (1, M·P/N): the G values for which
// HD is expected to beat CD.  The bound is the crossover of the summarized
// costs O(G·N/P)+O(M/G) < O(N/P)+O(M).
func GWindow(w Workload, p float64) (lo, hi float64) {
	if w.N <= 0 {
		return 1, math.Inf(1)
	}
	return 1, w.M * p / w.N
}

// Efficiency returns the parallel efficiency E = T_serial / (P · T_p) of
// Section IV.
func Efficiency(serial, parallel float64, p float64) float64 {
	if parallel <= 0 || p <= 0 {
		return 0
	}
	return serial / (p * parallel)
}

// Speedup returns T_serial / T_p.
func Speedup(serial, parallel float64) float64 {
	if parallel <= 0 {
		return 0
	}
	return serial / parallel
}
