package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// vExact computes V(i,j) directly from the recurrence of Equation 1.
func vExact(i, j int) float64 {
	if i <= 0 || j <= 0 {
		return 0
	}
	v := 1.0
	for n := 2; n <= i; n++ {
		v = 1 + float64(j-1)/float64(j)*v
	}
	return v
}

func TestVMatchesRecurrence(t *testing.T) {
	for _, c := range []struct{ i, j int }{
		{1, 1}, {1, 10}, {2, 2}, {3, 7}, {10, 10}, {50, 100}, {100, 5}, {500, 2000},
	} {
		got := V(float64(c.i), float64(c.j))
		want := vExact(c.i, c.j)
		if math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("V(%d,%d) = %v, recurrence says %v", c.i, c.j, got, want)
		}
	}
}

func TestVMatchesMonteCarlo(t *testing.T) {
	// V is the expected number of distinct values when i draws land
	// uniformly on j bins; check against simulation.
	rng := rand.New(rand.NewSource(2))
	for _, c := range []struct{ i, j int }{{10, 50}, {66, 300}, {100, 64}} {
		const trials = 2000
		total := 0
		seen := make([]int, c.j)
		for trial := 0; trial < trials; trial++ {
			stamp := trial + 1
			distinct := 0
			for d := 0; d < c.i; d++ {
				b := rng.Intn(c.j)
				if seen[b] != stamp {
					seen[b] = stamp
					distinct++
				}
			}
			total += distinct
		}
		sim := float64(total) / trials
		got := V(float64(c.i), float64(c.j))
		if math.Abs(got-sim)/sim > 0.03 {
			t.Errorf("V(%d,%d) = %v, simulation says %v", c.i, c.j, got, sim)
		}
	}
}

func TestVLimits(t *testing.T) {
	// Equation 2: V(i,j) -> i as j -> infinity.
	if got := V(66, 1e12); math.Abs(got-66) > 1e-3 {
		t.Errorf("V(66, 1e12) = %v, want ~66", got)
	}
	// Saturation: V(i,j) -> j as i -> infinity.
	if got := V(1e9, 100); math.Abs(got-100) > 1e-3 {
		t.Errorf("V(1e9, 100) = %v, want ~100", got)
	}
	if got := V(1, 50); got != 1 { //checkinv:allow floatcmp boundary case is exactly 1
		t.Errorf("V(1, 50) = %v", got)
	}
	if got := V(17, 1); got != 1 { //checkinv:allow floatcmp boundary case is exactly 1
		t.Errorf("V(17, 1) = %v", got)
	}
	if got := V(0, 5); got != 0 { //checkinv:allow floatcmp boundary case is exactly 0
		t.Errorf("V(0, 5) = %v", got)
	}
}

func TestVProperties(t *testing.T) {
	f := func(ri, rj uint16) bool {
		i := float64(ri%5000) + 1
		j := float64(rj%5000) + 1
		v := V(i, j)
		// Bounded by both i and j, and at least 1.
		if v < 1-1e-12 || v > math.Min(i, j)+1e-9 {
			return false
		}
		// Monotone in i.
		if V(i+1, j) < v-1e-12 {
			return false
		}
		// Monotone in j.
		if V(i, j+1) < v-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVRedundancyInequality(t *testing.T) {
	// The inequality behind DD's redundant work (Section IV):
	// V(C, L/P) > V(C, L)/P for P > 1.
	for _, p := range []float64{2, 4, 8, 16} {
		c, l := 66.0, 2400.0
		if !(V(c, l/p) > V(c, l)/p) {
			t.Errorf("P=%v: V(C,L/P)=%v not > V(C,L)/P=%v", p, V(c, l/p), V(c, l)/p)
		}
	}
}

func TestChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{15, 2, 105}, {15, 3, 455}, {12, 6, 924}, {5, 0, 1}, {5, 5, 1},
		{5, 6, 0}, {5, -1, 0}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); got != c.want { //checkinv:allow floatcmp binomials are exact small integers
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestWorkloadDerived(t *testing.T) {
	w := Workload{N: 1e6, M: 7e5, I: 15, K: 2, S: 16}
	if got := w.C(); got != 105 { //checkinv:allow floatcmp exact small integer
		t.Errorf("C = %v", got)
	}
	if got := w.L(); got != 7e5/16 { //checkinv:allow floatcmp exact power-of-two quotient
		t.Errorf("L = %v", got)
	}
	w.S = 0
	if got := w.L(); got != w.M { //checkinv:allow floatcmp degenerate case returns M verbatim
		t.Errorf("L with S=0 = %v", got)
	}
}

func testCosts() Costs {
	return Costs{TTravers: 120e-9, TCheck: 80e-9, TInsert: 500e-9, TData: 2e-7, TReduce: 12e-9}
}

func TestEquationOrdering(t *testing.T) {
	// In the paper's regime (large N, large M): DD > CD; IDD ~ CD; HD
	// between CD and IDD at sensible G.
	w := Workload{N: 1e6, M: 7e5, I: 15, K: 3, S: 16}
	c := testCosts()
	serial := Serial(w, c)
	for _, p := range []float64{4, 16, 64} {
		cd, dd, idd := CD(w, c, p), DD(w, c, p), IDD(w, c, p)
		if !(dd > cd) {
			t.Errorf("P=%v: DD %v not > CD %v", p, dd, cd)
		}
		if !(dd > idd) {
			t.Errorf("P=%v: DD %v not > IDD %v", p, dd, idd)
		}
		if serial/p > cd {
			t.Errorf("P=%v: CD %v beats perfect speedup %v", p, cd, serial/p)
		}
	}
}

func TestCDUnscalableInM(t *testing.T) {
	// Doubling M roughly doubles CD's non-subset cost but IDD's grows
	// by M/P: at large P the CD/IDD gap widens with M.
	c := testCosts()
	p := 64.0
	small := Workload{N: 1e5, M: 1e6, I: 15, K: 3, S: 16}
	big := small
	big.M = 8e6
	gapSmall := CD(small, c, p) - IDD(small, c, p)
	gapBig := CD(big, c, p) - IDD(big, c, p)
	if !(gapBig > gapSmall) {
		t.Errorf("CD-IDD gap did not widen with M: %v vs %v", gapSmall, gapBig)
	}
}

func TestHDDegenerates(t *testing.T) {
	w := Workload{N: 1e6, M: 7e5, I: 15, K: 3, S: 16}
	c := testCosts()
	p := 64.0
	// G=1: HD has CD's structure (subset scaled by P, O(M) build+reduce).
	hd1, cd := HD(w, c, p, 1), CD(w, c, p)
	if math.Abs(hd1-cd)/cd > 0.25 {
		t.Errorf("HD(G=1) = %v far from CD = %v", hd1, cd)
	}
	// G=P: HD equals IDD up to the (tiny) per-group reduction term that
	// Equation 7 carries and Equation 6 does not.
	hdP, idd := HD(w, c, p, p), IDD(w, c, p)
	if diff := hdP - idd; diff < 0 || diff > w.M/p*c.TReduce+1e-12 {
		t.Errorf("HD(G=P) = %v vs IDD = %v (diff %v)", hdP, idd, diff)
	}
}

func TestBestGWithinWindow(t *testing.T) {
	w := Workload{N: 1e6, M: 7e5, I: 15, K: 3, S: 16}
	c := testCosts()
	for _, p := range []int{8, 16, 64} {
		g, tm := BestG(w, c, p)
		if p%g != 0 {
			t.Errorf("BestG returned non-divisor %d of %d", g, p)
		}
		if tm <= 0 || math.IsInf(tm, 1) {
			t.Errorf("BestG time = %v", tm)
		}
		// The best G never loses to the endpoints.
		if tm > HD(w, c, float64(p), 1)+1e-12 || tm > HD(w, c, float64(p), float64(p))+1e-12 {
			t.Errorf("BestG(%d) = %d with %v worse than an endpoint", p, g, tm)
		}
	}
}

func TestGWindow(t *testing.T) {
	w := Workload{N: 1e6, M: 7e5}
	lo, hi := GWindow(w, 64)
	if lo != 1 { //checkinv:allow floatcmp window floor is exactly 1
		t.Errorf("lo = %v", lo)
	}
	if want := 7e5 * 64 / 1e6; math.Abs(hi-want) > 1e-9 {
		t.Errorf("hi = %v, want %v", hi, want)
	}
	lo, hi = GWindow(Workload{}, 64)
	if !math.IsInf(hi, 1) || lo != 1 { //checkinv:allow floatcmp window floor is exactly 1
		t.Errorf("degenerate window = (%v, %v)", lo, hi)
	}
}

func TestEfficiencySpeedup(t *testing.T) {
	if got := Efficiency(100, 25, 8); got != 0.5 { //checkinv:allow floatcmp exact dyadic ratio
		t.Errorf("Efficiency = %v", got)
	}
	if got := Speedup(100, 25); got != 4 { //checkinv:allow floatcmp exact dyadic ratio
		t.Errorf("Speedup = %v", got)
	}
	if Efficiency(1, 0, 4) != 0 || Speedup(1, 0) != 0 { //checkinv:allow floatcmp degenerate inputs return exactly 0
		t.Error("degenerate inputs should give 0")
	}
}
