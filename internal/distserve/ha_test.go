package distserve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/serve"
)

// haOptions is the replicated-tier configuration the HA tests share: R=2,
// hedging off (so leg counts are a pure function of failures, not timing).
func haOptions(shards int) Options {
	return Options{Shards: shards, Seed: 42, Replicas: 2, HedgeDelay: -1}
}

// TestReplicaFailoverExact is the tentpole property test: with R=2 and ANY
// single node down, every Recommend must still be non-Partial and
// bit-identical to a single-node server over the full rule set.
func TestReplicaFailoverExact(t *testing.T) {
	rs := synthRules(300, 50, 11)
	opt := haOptions(16)
	c := mustCluster(t, 3, opt)
	if _, err := c.Router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	srv := singleNode(t, rs, opt)

	for down := 0; down < len(c.Clients); down++ {
		t.Run(fmt.Sprintf("down=%s", c.Nodes[down].ID()), func(t *testing.T) {
			c.Clients[down].SetDown(true)
			rng := rand.New(rand.NewSource(int64(500 + down)))
			for i := 0; i < 40; i++ {
				basket := randBasket(rng, 50)
				k := []int{0, 1, 5, 10}[rng.Intn(4)]
				want, err := srv.Recommend(basket, k)
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				got, err := c.Router.Recommend(basket, k)
				if err != nil {
					t.Fatalf("distributed Recommend with %s down: %v", c.Nodes[down].ID(), err)
				}
				if got.Partial {
					t.Fatalf("partial answer with one of two replicas down (missed %v)", got.MissedShards)
				}
				if !reflect.DeepEqual(got.Rules, want) {
					t.Fatalf("basket %v k=%d diverged from single-node oracle", basket, k)
				}
			}
			// Revive and recover: one probe round brings the node back.
			c.Clients[down].SetDown(false)
			c.Router.ProbeOnce()
			if st := c.Router.Health()[c.Nodes[down].ID()]; st != HealthUp {
				t.Fatalf("revived node health = %v, want up", st)
			}
		})
	}

	m := c.Router.Metrics()
	if m.PartialResults != 0 {
		t.Fatalf("partial results = %d, want 0", m.PartialResults)
	}
	if m.Retries == 0 {
		t.Fatalf("no retries recorded while killing nodes — failover path untested")
	}
}

// clientOf maps a node ID back to its in-process client.
func clientOf(t *testing.T, c *Cluster, id string) *LocalClient {
	t.Helper()
	for _, lc := range c.Clients {
		if lc.Node().ID() == id {
			return lc
		}
	}
	t.Fatalf("no client for node %q", id)
	return nil
}

// TestFailureDetectorTransitions walks one node through the detector's
// states: repeated failures drive Up → Suspect → Down, queries stop
// selecting the Down node, and a successful probe restores it to Up.
// The victim is the preferred (HRW-first) replica of a fixed basket's
// shard, so every query deterministically selects it while it is live.
func TestFailureDetectorTransitions(t *testing.T) {
	rs := synthRules(200, 40, 12)
	opt := haOptions(8)
	c := mustCluster(t, 2, opt)
	if _, err := c.Router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	basket := []itemset.Item{0}
	shard := c.Router.opt.shardOf(0)
	victim := c.Router.Replicas()[shard][0]
	clientOf(t, c, victim).SetDown(true)

	// Each query picks the victim first (it is the preferred replica and
	// load ties break to HRW order), fails, and retries on the survivor —
	// FailThreshold such failures take the detector to Down.
	for i := 0; i < c.Router.Options().FailThreshold; i++ {
		got, err := c.Router.Recommend(basket, 5)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Partial || got.Retries != 1 {
			t.Fatalf("query %d against the downed preferred replica: %+v", i, got)
		}
	}
	if st := c.Router.Health()[victim]; st != HealthDown {
		t.Fatalf("detector state for %s after %d failures = %v, want down",
			victim, c.Router.Options().FailThreshold, st)
	}

	// Down nodes are skipped: the next queries go straight to the
	// survivor, no retries needed.
	for i := 0; i < 10; i++ {
		got, err := c.Router.Recommend(basket, 5)
		if err != nil {
			t.Fatalf("query against degraded fleet: %v", err)
		}
		if got.Partial || got.Retries != 0 {
			t.Fatalf("down node still in the query path: %+v", got)
		}
	}

	// Recovery: probes fail while it is down, succeed once revived.
	if ok := c.Router.ProbeOnce(); ok != 0 {
		t.Fatalf("probe of a down node succeeded (%d)", ok)
	}
	clientOf(t, c, victim).SetDown(false)
	if ok := c.Router.ProbeOnce(); ok != 1 {
		t.Fatalf("probe of the revived node failed (ok=%d)", ok)
	}
	if st := c.Router.Health()[victim]; st != HealthUp {
		t.Fatalf("revived node health = %v, want up", st)
	}
}

// TestChaosChurnZeroPartial is the seeded chaos test: an R=2 fleet serves a
// concurrent query stream while nodes are killed and restored one at a
// time, then the rule set is republished and the churn repeats.  Every
// answer must be non-Partial and bit-identical to the single-node oracle
// for its generation, and the generations each worker observes must be
// monotonic.  The whole test runs under -race in CI.
func TestChaosChurnZeroPartial(t *testing.T) {
	v1 := synthRules(250, 45, 13)
	v2 := mutate(v1)
	opt := haOptions(16)
	c := mustCluster(t, 3, opt)
	if _, err := c.Router.Publish(v1, true); err != nil {
		t.Fatalf("publish v1: %v", err)
	}
	oracles := map[uint64]*serve.Server{1: singleNode(t, v1, opt), 2: singleNode(t, v2, opt)}

	const workers = 4
	var stop atomic.Bool
	var queries atomic.Int64
	lastGen := make([]uint64, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup

	phase := func(gen uint64) {
		stop.Store(false)
		start := queries.Load()
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() { //checkinv:allow rawchan — test load goroutines, joined by WaitGroup
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(1000*gen) + int64(w)))
				for !stop.Load() {
					basket := randBasket(rng, 45)
					got, err := c.Router.Recommend(basket, 10)
					if err != nil {
						errs[w] = err
						return
					}
					queries.Add(1)
					if got.Partial {
						errs[w] = fmt.Errorf("partial answer under churn (missed %v)", got.MissedShards)
						return
					}
					if got.Generation < lastGen[w] {
						errs[w] = fmt.Errorf("generation regressed %d -> %d", lastGen[w], got.Generation)
						return
					}
					lastGen[w] = got.Generation
					want, _ := oracles[got.Generation].Recommend(basket, 10)
					if !reflect.DeepEqual(got.Rules, want) {
						errs[w] = fmt.Errorf("basket %v diverged from the gen-%d oracle", basket, got.Generation)
						return
					}
				}
			}()
		}
		// Churn: kill and restore each node in turn while the stream runs.
		for i := range c.Clients {
			c.Clients[i].SetDown(true)
			time.Sleep(8 * time.Millisecond)
			c.Clients[i].SetDown(false)
			c.Router.ProbeOnce()
		}
		stop.Store(true)
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("gen %d worker %d: %v", gen, w, err)
			}
		}
		if queries.Load() == start {
			t.Fatalf("gen %d phase ran no queries", gen)
		}
	}

	phase(1)
	if _, err := c.Router.Publish(v2, false); err != nil {
		t.Fatalf("publish v2: %v", err)
	}
	phase(2)

	m := c.Router.Metrics()
	if m.PartialResults != 0 {
		t.Fatalf("churn produced %d partial results, want 0", m.PartialResults)
	}
	if m.Retries == 0 {
		t.Fatalf("churn produced no retries — the kill windows missed the query stream")
	}
	for id, st := range c.Router.Health() {
		if st != HealthUp {
			t.Fatalf("node %s left %v after churn, want up", id, st)
		}
	}
}

// TestHedgedStragglerExact injects a straggling node and checks that hedged
// legs (a) keep the answer bit-identical to the oracle and (b) keep the
// router's tail latency well under the injected delay — the slow replica is
// raced, not waited for.
func TestHedgedStragglerExact(t *testing.T) {
	rs := synthRules(200, 40, 14)
	const stall = 150 * time.Millisecond
	// One shard: every query's preferred replica is the same node, which is
	// the one we stall — the first query must hedge to the other replica,
	// and choice-of-two load awareness steers later queries off the
	// straggler while its leg is still outstanding.
	opt := Options{Shards: 1, Seed: 42, Replicas: 2, HedgeDelay: 2 * time.Millisecond}
	c := mustCluster(t, 2, opt)
	if _, err := c.Router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	srv := singleNode(t, rs, opt)
	straggler := c.Router.Replicas()[0][0]
	clientOf(t, c, straggler).SetDelay(stall)

	rng := rand.New(rand.NewSource(88))
	for i := 0; i < 30; i++ {
		basket := randBasket(rng, 40)
		want, _ := srv.Recommend(basket, 10)
		start := time.Now()
		got, err := c.Router.Recommend(basket, 10)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Partial {
			t.Fatalf("query %d partial: %+v", i, got)
		}
		if !reflect.DeepEqual(got.Rules, want) {
			t.Fatalf("query %d diverged from oracle under hedging", i)
		}
		if d := time.Since(start); d >= stall {
			t.Fatalf("query %d took %v, not hedged under the %v straggler", i, d, stall)
		}
	}
	if m := c.Router.Metrics(); m.Hedges == 0 {
		t.Fatalf("straggler never triggered a hedge: %+v", m)
	}
}

// TestHTTPClientTimeout pins the transport satellite: a slow HTTP node must
// produce a typed *TimeoutError (distinguishable from a refused connection)
// that still unwraps to ErrNodeDown, under both the per-client budget and a
// caller-supplied context deadline.
func TestHTTPClientTimeout(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { //checkinv:allow rawchan a deliberately slow real HTTP handler, nothing but wall time here
		case <-r.Context().Done(): //checkinv:allow rawchan the client giving up
		case <-time.After(2 * time.Second): //checkinv:allow rawchan the stall the test never waits out
		}
	}))
	defer slow.Close()

	cl := NewHTTPClientBudget(slow.URL, 20*time.Millisecond)
	_, _, err := cl.Recommend(context.Background(), nil, 5, "")
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("budget expiry returned %T %v, want *TimeoutError", err, err)
	}
	if te.Budget != 20*time.Millisecond {
		t.Fatalf("TimeoutError budget = %v, want 20ms", te.Budget)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("timeout does not unwrap to ErrNodeDown: %v", err)
	}

	// A caller deadline tighter than the budget wins.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = cl.Recommend(ctx, nil, 5, "")
	if !errors.As(err, &te) {
		t.Fatalf("caller deadline returned %T %v, want *TimeoutError", err, err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("caller deadline ignored, call took %v", d)
	}

	// A refused connection is ErrNodeDown but NOT a timeout.
	dead := NewHTTPClientBudget("http://127.0.0.1:1", time.Second)
	_, _, err = dead.Recommend(context.Background(), nil, 5, "")
	if err == nil || !errors.Is(err, ErrNodeDown) {
		t.Fatalf("refused connection = %v, want ErrNodeDown", err)
	}
	if errors.As(err, &te) {
		t.Fatalf("refused connection misclassified as timeout: %v", err)
	}
}
