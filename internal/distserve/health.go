package distserve

import (
	"context"
	"sort"
	"sync/atomic"
	"time"
)

// HealthState is the failure detector's view of one node.
//
// Transitions are driven by call outcomes — every query leg and every probe
// is evidence.  One failure moves Up → Suspect; FailThreshold consecutive
// failures move Suspect → Down; any success moves the node straight back to
// Up and resets the failure count.  Suspect nodes still receive queries
// (one bad response must not shed load from a healthy node); Down nodes are
// skipped by replica selection and only talked to by the background probe —
// or by the query path as a last resort, when every replica of a shard is
// Down and the alternative is answering Partial without even trying.
type HealthState int32

const (
	// HealthUp — the node's last call succeeded.
	HealthUp HealthState = iota
	// HealthSuspect — at least one consecutive failure, below threshold.
	HealthSuspect
	// HealthDown — FailThreshold consecutive failures; excluded from
	// replica selection until a probe or a desperation call succeeds.
	HealthDown
)

// String implements fmt.Stringer.
func (s HealthState) String() string {
	switch s {
	case HealthUp:
		return "up"
	case HealthSuspect:
		return "suspect"
	case HealthDown:
		return "down"
	}
	return "unknown"
}

// nodeHealth is the per-node detector state.  Everything is atomic: the
// query path reads and writes it without taking the router lock.
type nodeHealth struct {
	state       atomic.Int32 // HealthState
	fails       atomic.Int32 // consecutive failures
	outstanding atomic.Int64 // in-flight calls, the choice-of-two load signal
	probeWait   atomic.Int32 // prober ticks left to skip (exponential backoff)
	probeGap    atomic.Int32 // current backoff gap in ticks (doubles per failed probe)
}

// observeSuccess records a successful call: the node is Up, whatever it was.
func (h *nodeHealth) observeSuccess() {
	h.fails.Store(0)
	h.state.Store(int32(HealthUp))
	h.probeGap.Store(0)
	h.probeWait.Store(0)
}

// observeFailure records a failed call and advances Up → Suspect → Down.
func (h *nodeHealth) observeFailure(threshold int) {
	n := h.fails.Add(1)
	if int(n) >= threshold {
		h.state.Store(int32(HealthDown))
	} else {
		h.state.Store(int32(HealthSuspect))
	}
}

// State returns the current detector state.
func (h *nodeHealth) State() HealthState { return HealthState(h.state.Load()) }

// Health reports the failure detector's state for every member node.
func (r *Router) Health() map[string]HealthState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HealthState, len(r.health))
	for id, h := range r.health {
		out[id] = h.State()
	}
	return out
}

// pick2 is the load-aware choice-of-two: given a shard's live replicas in
// HRW order, sample two candidates with the router's seeded sequence and
// take the one with fewer outstanding calls (ties break toward the earlier
// HRW rank, keeping the choice deterministic when the fleet is idle).
func (r *Router) pick2(cands []string, health map[string]*nodeHealth) string {
	if len(cands) == 1 {
		return cands[0]
	}
	seq := r.pickSeq.Add(1)
	h := splitmix64(r.opt.Seed ^ seq)
	i := int(h % uint64(len(cands)))
	j := int((h >> 32) % uint64(len(cands)))
	if i == j {
		j = (j + 1) % len(cands)
	}
	if i > j {
		i, j = j, i
	}
	a, b := health[cands[i]], health[cands[j]]
	if a == nil || b == nil { // node not in the health map: shouldn't happen, fall back to HRW order
		return cands[i]
	}
	if b.outstanding.Load() < a.outstanding.Load() {
		return cands[j]
	}
	return cands[i]
}

// ProbeOnce synchronously probes every non-Up node (ignoring the prober's
// backoff schedule) and returns how many probes succeeded.  Tests and
// operators use it to drive recovery deterministically; the background
// prober calls the same per-node probe on its own clock.
func (r *Router) ProbeOnce() int {
	r.mu.RLock()
	type target struct {
		c Client
		h *nodeHealth
	}
	ids := make([]string, 0, len(r.health))
	for id, h := range r.health {
		if h.State() != HealthUp {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids) // probe in node-ID order, independent of map layout
	targets := make([]target, 0, len(ids))
	for _, id := range ids {
		targets = append(targets, target{r.clients[id], r.health[id]})
	}
	r.mu.RUnlock()
	ok := 0
	for _, t := range targets {
		if r.probe(t.c, t.h) {
			ok++
		}
	}
	return ok
}

// probe issues one health probe (a Metrics call under the request budget)
// and feeds the outcome to the detector.  Returns true on success.
func (r *Router) probe(c Client, h *nodeHealth) bool {
	r.met.probes.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), r.opt.RequestTimeout)
	defer cancel()
	if _, err := c.Metrics(ctx); err != nil {
		h.observeFailure(r.opt.FailThreshold)
		return false
	}
	h.observeSuccess()
	return true
}

// StartProber launches the background failure-detector probe loop: every
// ProbeInterval tick it probes the non-Up nodes whose backoff has elapsed.
// A node that keeps failing is probed at exponentially growing gaps (1, 2,
// 4, … ticks, capped at 64) so a long outage costs a trickle of probes, not
// a stream — the exponential backoff lives here on the probe path, never on
// the query path.  Idempotent; StopProber (or Cluster.Close) stops it.
func (r *Router) StartProber() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.probeStop != nil {
		return
	}
	stop := make(chan struct{}) //checkinv:allow rawchan prober shutdown signal on the real clock, joined by StopProber
	done := make(chan struct{}) //checkinv:allow rawchan prober join channel, closed when the loop exits
	r.probeStop, r.probeDone = stop, done
	interval := r.opt.ProbeInterval
	go func() { //checkinv:allow rawchan,goroleak the prober is joined by StopProber via probeDone; real-OS serving territory
		defer close(done) //checkinv:allow rawchan signals prober exit to StopProber
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select { //checkinv:allow rawchan ticker-driven probe loop, real-OS serving territory
			case <-stop: //checkinv:allow rawchan shutdown signal from StopProber
				return
			case <-t.C: //checkinv:allow rawchan real-clock probe schedule
				r.probeTick()
			}
		}
	}()
}

// probeTick runs one scheduled probe round, honoring per-node backoff.
func (r *Router) probeTick() {
	r.mu.RLock()
	type target struct {
		c Client
		h *nodeHealth
	}
	ids := make([]string, 0, len(r.health))
	for id, h := range r.health {
		if h.State() == HealthUp {
			continue
		}
		if h.probeWait.Load() > 0 {
			h.probeWait.Add(-1)
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids) // probe in node-ID order, independent of map layout
	targets := make([]target, 0, len(ids))
	for _, id := range ids {
		targets = append(targets, target{r.clients[id], r.health[id]})
	}
	r.mu.RUnlock()
	for _, t := range targets {
		if !r.probe(t.c, t.h) {
			gap := t.h.probeGap.Load()
			if gap == 0 {
				gap = 1
			} else if gap < 64 {
				gap *= 2
			}
			t.h.probeGap.Store(gap)
			t.h.probeWait.Store(gap)
		}
	}
}

// StopProber stops the background probe loop and waits for it to exit.
// Safe to call when the prober was never started.
func (r *Router) StopProber() {
	r.mu.Lock()
	stop, done := r.probeStop, r.probeDone
	r.probeStop, r.probeDone = nil, nil
	r.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop) //checkinv:allow rawchan tells the prober loop to exit
	<-done      //checkinv:allow rawchan joining the prober goroutine
}
