package distserve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"parapriori/internal/itemset"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// synthRules builds a deterministic synthetic rule set: nRules distinct
// (antecedent, consequent) pairs over nItems items with plausible measures.
// Measures are drawn from coarse grids, which produces plenty of rank ties
// to exercise the deterministic tie-breaking through the distributed merge.
func synthRules(nRules, nItems int, seed int64) []rules.Rule {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, nRules)
	out := make([]rules.Rule, 0, nRules)
	for attempts := 0; len(out) < nRules; attempts++ {
		if attempts > 200*nRules {
			panic(fmt.Sprintf("synthRules: item space of %d too small for %d distinct rules", nItems, nRules))
		}
		raw := make([]itemset.Item, 1+rng.Intn(3))
		for i := range raw {
			raw[i] = itemset.Item(rng.Intn(nItems))
		}
		ant := itemset.New(raw...)
		cons := itemset.New(itemset.Item(rng.Intn(nItems)))
		if len(ant) == 0 || ant.Contains(cons[0]) {
			continue
		}
		key := ant.Key() + "|" + cons.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		conf := float64(1+rng.Intn(20)) / 20
		sup := float64(1+rng.Intn(50)) / 500
		out = append(out, rules.Rule{
			Antecedent: ant,
			Consequent: cons,
			Count:      int64(1 + rng.Intn(1000)),
			Support:    sup,
			Confidence: conf,
			Lift:       float64(1+rng.Intn(30)) / 10,
			Leverage:   sup - sup*conf,
		})
	}
	return out
}

// randBasket draws a random basket of 1–6 items.
func randBasket(rng *rand.Rand, nItems int) []itemset.Item {
	b := make([]itemset.Item, 1+rng.Intn(6))
	for i := range b {
		b[i] = itemset.Item(rng.Intn(nItems))
	}
	return b
}

// singleNode builds the bit-identical baseline: one serve.Server over the
// full rule set, with the same per-node serving options the cluster uses.
func singleNode(t *testing.T, rs []rules.Rule, opt Options) *serve.Server {
	t.Helper()
	opt = opt.WithDefaults()
	srv := serve.NewServer(opt.Node)
	t.Cleanup(srv.Close)
	srv.Publish(serve.NewIndex(rs, opt.Node))
	return srv
}

// mustCluster builds an n-node in-process cluster and registers cleanup.
func mustCluster(t *testing.T, n int, opt Options) *Cluster {
	t.Helper()
	c, err := NewCluster(n, opt)
	if err != nil {
		t.Fatalf("NewCluster(%d): %v", n, err)
	}
	t.Cleanup(c.Close)
	return c
}

// assertMatch compares one distributed answer against the single-node
// baseline for the same basket and k.
func assertMatch(t *testing.T, c *Cluster, srv *serve.Server, basket []itemset.Item, k int, label string) {
	t.Helper()
	want, err := srv.Recommend(basket, k)
	if err != nil {
		t.Fatalf("%s: single-node Recommend: %v", label, err)
	}
	got, err := c.Router.Recommend(basket, k)
	if err != nil {
		t.Fatalf("%s: distributed Recommend: %v", label, err)
	}
	if got.Partial {
		t.Fatalf("%s: unexpected partial result (missed shards %v)", label, got.MissedShards)
	}
	if !reflect.DeepEqual(got.Rules, want) {
		t.Fatalf("%s: basket %v k=%d:\n distributed %v\n single-node %v", label, basket, k, got.Rules, want)
	}
}

// TestDistributedMatchesSingleNode is the oracle property test: across shard
// and node counts, the scatter-gathered top-K is bit-identical to one
// serve.Server over the full rule set.
func TestDistributedMatchesSingleNode(t *testing.T) {
	rs := synthRules(400, 60, 1)
	for _, shards := range []int{1, 4, 32} {
		for _, nodes := range []int{1, 2, 3, 5} {
			t.Run(fmt.Sprintf("shards=%d/nodes=%d", shards, nodes), func(t *testing.T) {
				opt := Options{Shards: shards}
				c := mustCluster(t, nodes, opt)
				if _, err := c.Router.Publish(rs, true); err != nil {
					t.Fatalf("publish: %v", err)
				}
				srv := singleNode(t, rs, opt)
				rng := rand.New(rand.NewSource(7))
				n := 60
				if testing.Short() {
					n = 15
				}
				for i := 0; i < n; i++ {
					basket := randBasket(rng, 60)
					k := []int{0, 1, 5, 10, 50}[rng.Intn(5)]
					assertMatch(t, c, srv, basket, k, "gen1")
				}
			})
		}
	}
}

// mutate derives a changed rule set: a deterministic slice of groups gets a
// confidence bump (content change), another slice is dropped entirely, and
// a few fresh rules appear — the small-delta regime delta publishing is for.
func mutate(rs []rules.Rule) []rules.Rule {
	var out []rules.Rule
	for _, r := range rs {
		h := splitmix64(uint64(len(r.Antecedent.Key())) ^ uint64(uint32(r.Antecedent[0]))<<8 ^ uint64(r.Count))
		switch h % 20 {
		case 0: // drop
		case 1: // change
			r.Confidence = r.Confidence * 0.95
			out = append(out, r)
		default:
			out = append(out, r)
		}
	}
	out = append(out, synthRules(10, 60, 99)...)
	return out
}

// TestDeltaPublishMatchesAndShipsLess publishes v1 in full, then v2 as a
// delta, and checks (a) answers over v2 are bit-identical to a single node
// over v2, and (b) the delta shipped measurably fewer canonical bytes than
// a full publish of v2 would have.
func TestDeltaPublishMatchesAndShipsLess(t *testing.T) {
	v1 := synthRules(400, 60, 2)
	v2 := mutate(v1)
	opt := Options{Shards: 32}

	c := mustCluster(t, 3, opt)
	if _, err := c.Router.Publish(v1, true); err != nil {
		t.Fatalf("publish v1: %v", err)
	}
	delta, err := c.Router.Publish(v2, false)
	if err != nil {
		t.Fatalf("publish v2 delta: %v", err)
	}

	// Full-publish byte cost of v2, measured on an identical fresh fleet.
	c2 := mustCluster(t, 3, opt)
	full, err := c2.Router.Publish(v2, true)
	if err != nil {
		t.Fatalf("publish v2 full: %v", err)
	}
	if delta.Bytes >= full.Bytes/2 {
		t.Fatalf("delta shipped %d bytes, full %d — expected well under half for a <10%% change", delta.Bytes, full.Bytes)
	}
	if delta.Gen != 2 || delta.Full {
		t.Fatalf("delta stats: %+v", delta)
	}
	if delta.Removes == 0 || delta.Upserts == 0 {
		t.Fatalf("mutation should produce both upserts and removes: %+v", delta)
	}

	srv := singleNode(t, v2, opt)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 60; i++ {
		basket := randBasket(rng, 60)
		assertMatch(t, c, srv, basket, 10, "after delta")
	}

	// Determinism: both fleets now hold v2 — same placement, same answers.
	if !reflect.DeepEqual(c.Router.Placement(), c2.Router.Placement()) {
		t.Fatal("same seed and membership gave different placements")
	}
	for i := 0; i < 20; i++ {
		basket := randBasket(rng, 60)
		a, err1 := c.Router.Recommend(basket, 10)
		b, err2 := c2.Router.Recommend(basket, 10)
		if err1 != nil || err2 != nil {
			t.Fatalf("recommend: %v / %v", err1, err2)
		}
		if !reflect.DeepEqual(a.Rules, b.Rules) {
			t.Fatalf("delta-updated and fresh-published fleets disagree on %v", basket)
		}
	}
}

// TestNodeLossDegradesDeterministically takes one node down and checks the
// router returns exactly the surviving shards' rules — the single-node
// oracle with the lost shards' groups filtered out — flagged Partial.
func TestNodeLossDegradesDeterministically(t *testing.T) {
	rs := synthRules(400, 60, 3)
	opt := Options{Shards: 32}
	c := mustCluster(t, 3, opt)
	if _, err := c.Router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}

	lost := c.Clients[1]
	lost.SetDown(true)
	lostID := lost.ID()
	lostShards := make(map[int]bool)
	for s, id := range c.Router.Placement() {
		if id == lostID {
			lostShards[s] = true
		}
	}

	// The oracle for a degraded fleet: the full rule set minus every group
	// living on a lost shard.
	dopt := opt.WithDefaults()
	var surviving []rules.Rule
	for _, r := range rs {
		if !lostShards[dopt.shardOf(r.Antecedent[0])] {
			surviving = append(surviving, r)
		}
	}
	srv := singleNode(t, surviving, opt)

	rng := rand.New(rand.NewSource(9))
	sawPartial := false
	for i := 0; i < 80; i++ {
		basket := randBasket(rng, 60)
		want, err := srv.Recommend(basket, 10)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		got, err := c.Router.Recommend(basket, 10)
		if err != nil {
			t.Fatalf("degraded Recommend: %v", err)
		}
		if !reflect.DeepEqual(got.Rules, want) {
			t.Fatalf("degraded result mismatch for %v:\n got %v\n want %v", basket, got.Rules, want)
		}
		needsLost := false
		for _, it := range itemset.New(basket...) {
			if lostShards[dopt.shardOf(it)] {
				needsLost = true
			}
		}
		if got.Partial != needsLost {
			t.Fatalf("basket %v: Partial=%v, needs lost shard=%v", basket, got.Partial, needsLost)
		}
		if got.Partial {
			sawPartial = true
			for _, s := range got.MissedShards {
				if !lostShards[s] {
					t.Fatalf("missed shard %d not owned by the lost node", s)
				}
			}
		}
	}
	if !sawPartial {
		t.Fatal("no basket touched the lost node's shards — test is vacuous")
	}

	// Revival restores bit-identical full answers.
	lost.SetDown(false)
	fullSrv := singleNode(t, rs, opt)
	for i := 0; i < 30; i++ {
		assertMatch(t, c, fullSrv, randBasket(rng, 60), 10, "revived")
	}
}

// TestPublishAbortsOnPrepareFailure checks two-phase semantics: a node that
// fails Prepare aborts the publish, the old generation keeps serving
// everywhere, and a retry once the node is back succeeds.
func TestPublishAbortsOnPrepareFailure(t *testing.T) {
	v1 := synthRules(200, 50, 4)
	v2 := mutate(v1)
	opt := Options{Shards: 16}
	c := mustCluster(t, 3, opt)
	if _, err := c.Router.Publish(v1, true); err != nil {
		t.Fatalf("publish v1: %v", err)
	}

	c.Clients[2].SetDown(true)
	if _, err := c.Router.Publish(v2, false); err == nil {
		t.Fatal("publish with a down node should abort")
	}
	if g := c.Router.Generation(); g != 1 {
		t.Fatalf("aborted publish advanced the generation to %d", g)
	}
	for _, n := range c.Nodes {
		if n.Gen() != 1 {
			t.Fatalf("node %s serving generation %d after aborted publish", n.ID(), n.Gen())
		}
	}
	c.Clients[2].SetDown(false)

	// v1 still serves bit-identically, then the retry lands v2.
	srv1 := singleNode(t, v1, opt)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		assertMatch(t, c, srv1, randBasket(rng, 50), 10, "after abort")
	}
	if _, err := c.Router.Publish(v2, false); err != nil {
		t.Fatalf("retry publish: %v", err)
	}
	srv2 := singleNode(t, v2, opt)
	for i := 0; i < 20; i++ {
		assertMatch(t, c, srv2, randBasket(rng, 50), 10, "after retry")
	}
}

// TestMembershipChange adds then removes a node mid-flight and checks
// placement moves minimally and answers stay bit-identical throughout.
func TestMembershipChange(t *testing.T) {
	rs := synthRules(300, 50, 5)
	opt := Options{Shards: 32}
	c := mustCluster(t, 2, opt)
	if _, err := c.Router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	srv := singleNode(t, rs, opt)
	before := c.Router.Placement()

	extra := NewNode("node99", opt.WithDefaults().Node)
	t.Cleanup(extra.Close)
	if err := c.Router.AddNode(NewLocalClient(extra)); err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	after := c.Router.Placement()
	moved := 0
	for s := range after {
		if after[s] != before[s] {
			if after[s] != "node99" {
				t.Fatalf("shard %d moved between surviving nodes (%s → %s)", s, before[s], after[s])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new node won no shards")
	}
	if extra.NumRules() == 0 {
		t.Fatal("new node received no rules from the rebalancing delta")
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30; i++ {
		assertMatch(t, c, srv, randBasket(rng, 50), 10, "after join")
	}

	if err := c.Router.RemoveNode("node99"); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if !reflect.DeepEqual(c.Router.Placement(), before) {
		t.Fatal("placement after leave differs from placement before join")
	}
	for i := 0; i < 30; i++ {
		assertMatch(t, c, srv, randBasket(rng, 50), 10, "after leave")
	}
}

// TestPlaceDeterministic checks placement is a pure function of (seed,
// shards, membership): input order is irrelevant, repeat calls agree, and
// different seeds give different assignments.
func TestPlaceDeterministic(t *testing.T) {
	ids := []string{"c", "a", "b"}
	p1 := Place(42, 64, ids)
	p2 := Place(42, 64, []string{"b", "c", "a"})
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("placement depends on node-ID order")
	}
	p3 := Place(43, 64, ids)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds gave identical 64-shard placement")
	}
	counts := map[string]int{}
	for _, id := range p1 {
		counts[id]++
	}
	for _, id := range ids {
		if counts[id] == 0 {
			t.Fatalf("node %s owns no shards out of 64", id)
		}
	}
}

// TestEmptyAndUnroutableBaskets covers the edges: queries before the first
// publish fail with ErrNoSnapshot, and rules with empty antecedents are
// dropped exactly as the single-node index drops them.
func TestEmptyAndUnroutableBaskets(t *testing.T) {
	opt := Options{Shards: 8}
	c := mustCluster(t, 2, opt)
	if _, err := c.Router.Recommend([]itemset.Item{1, 2}, 5); err != serve.ErrNoSnapshot {
		t.Fatalf("pre-publish Recommend: got %v, want ErrNoSnapshot", err)
	}

	rs := synthRules(100, 30, 6)
	rs = append(rs, rules.Rule{Antecedent: nil, Consequent: itemset.New(1), Confidence: 1})
	if _, err := c.Router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	srv := singleNode(t, rs, opt)
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30; i++ {
		assertMatch(t, c, srv, randBasket(rng, 30), 10, "with unroutable rule")
	}
}
