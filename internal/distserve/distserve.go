// Package distserve is the multi-node rule-serving tier: a rule index split
// into S shards placed across N server nodes, a router that scatter-gathers
// basket queries, and a delta-publishing protocol that ships only changed
// antecedent groups when a fresh rule set lands.
//
// The design transplants the paper's partitioning ideas from mining to
// serving.  IDD partitions candidates by first item so each processor owns
// a disjoint slice of the hash tree; here, antecedent groups are partitioned
// by their first (smallest) item into S shards, and shards are placed on
// nodes by rendezvous (highest-random-weight) hashing with a seeded,
// deterministic tie-break — each node holds only its fraction of the index,
// the memory-constrained direction of Savasere et al.'s Partition algorithm.
//
// The moving parts:
//
//   - Placement: shard → node by rendezvous hashing.  Node join/leave moves
//     only the shards whose argmax changed (≈ S/N per node change), and the
//     assignment is a pure function of (seed, shard, node IDs) — two runs
//     with the same membership place identically.
//
//   - Node: one serving process (or goroutine).  It keeps its owned shards'
//     antecedent groups, serves basket queries from a serve.Server over
//     them (snapshot hot swap, query cache, metrics — the single-node
//     machinery, reused per node), and participates in two-phase publishes:
//     Prepare stages the next generation's groups and builds its index off
//     the query path, Commit atomically cuts the traffic over.
//
//   - Router: accepts basket queries, computes the shards the basket can
//     touch (one per distinct basket item — exactly the posting lists the
//     first-item inverted index would consult), fans out to only the owning
//     nodes, and merges per-node top-K into the global top-K under the
//     rules.RankLess total order.  Any rule in the global top-K is in its
//     node's local top-K, so the merge is bit-identical to a single-node
//     scan of the full rule set.  A down node degrades the answer, not the
//     service: the result is flagged Partial with the missed shards listed,
//     and the surviving shards' rules are ranked exactly as if the lost
//     rules never existed.
//
//   - Delta publish: the router diffs the new rule set's antecedent groups
//     against the previous generation's canonical bytes (serve.DiffGroups)
//     and ships each owner only the groups that changed on its shards, plus
//     tombstones for vanished groups.  Generations advance cluster-wide;
//     the cut-over happens only after every owner acknowledged its Prepare.
//
// Like package serve, distserve runs on the real clock and real goroutines
// — it is a production subsystem, not an emulation — so its raw
// concurrency sites carry reviewed //checkinv:allow rawchan annotations.
// The in-process Cluster wiring (goroutine nodes, direct calls) keeps the
// whole tier testable under -race in the emulated-cluster spirit of the
// repo; the HTTP transport in http.go runs the same protocol between real
// processes (cmd/ruleserver -node / -router).
package distserve

import (
	"sort"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/serve"
)

// Default knobs of the HA serving tier.
const (
	// DefaultRequestTimeout is the per-leg query deadline when
	// Options.RequestTimeout is zero.
	DefaultRequestTimeout = 2 * time.Second
	// DefaultProbeInterval is the failure detector's base probe period when
	// Options.ProbeInterval is zero.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultFailThreshold is the consecutive-failure count that marks a
	// node Down when Options.FailThreshold is zero.
	DefaultFailThreshold = 3
)

// Options configures the distributed tier.  Router and in-process nodes are
// built from one Options value; HTTP node processes must be started with
// the same shard count, seed and serving options for placement and query
// clamping to agree (cmd/ruleserver wires this up).
type Options struct {
	// Shards is the number of index shards S distributed across the nodes
	// (default 32).  More shards give finer placement granularity and
	// smoother rebalancing at a little routing-table cost.
	Shards int
	// Replicas is R, the number of nodes each shard is placed on (default
	// 1).  With R > 1 every shard lives on the top R nodes of its
	// rendezvous candidate list, so losing any single node leaves every
	// shard served — Partial results become the all-replicas-down floor
	// instead of the single-node-loss norm.  Clamped to the member count.
	Replicas int
	// Seed seeds the item→shard hash, the rendezvous placement weights and
	// the router's replica-selection sequence.  Zero selects a fixed
	// default, keeping placement reproducible run to run — the distributed
	// analogue of serve.Options.HashSeed.
	Seed uint64
	// RequestTimeout is the per-call deadline the router applies to every
	// fan-out leg, and the default budget HTTPClient applies to calls whose
	// context carries no deadline (default DefaultRequestTimeout).  A leg
	// that misses its deadline fails with a *TimeoutError and the router
	// retries the next live replica.
	RequestTimeout time.Duration
	// HedgeDelay controls straggler hedging: after this long with fan-out
	// legs still outstanding, the router re-issues the slowest legs'
	// shards to alternate replicas and takes whichever answer lands first.
	// Zero derives the delay from the router's observed p99 latency;
	// negative disables hedging.
	HedgeDelay time.Duration
	// ProbeInterval is the failure detector's base period for background
	// probes of non-Up nodes (default DefaultProbeInterval).  Probes back
	// off exponentially per node while it stays down; the query path never
	// waits on a probe.
	ProbeInterval time.Duration
	// FailThreshold is the number of consecutive failed calls after which
	// a Suspect node is marked Down and dropped from replica selection
	// (default DefaultFailThreshold).  A single failure marks it Suspect;
	// any success restores Up.
	FailThreshold int
	// Node is the per-node serving configuration (query cache, worker
	// pool, MaxK).  The router clamps K with the same defaults, so
	// router-side and node-side query semantics match exactly.
	Node serve.Options
	// Recorder, when non-nil, receives the router's real-time spans: one
	// request span plus per-node fan-out spans for each Recommend (legs
	// share a "link" attribute with their request so a trace shows which
	// replica leg — primary, retry or hedge — produced the answer), and
	// prepare/commit spans for each publish.  Node-side request spans are
	// configured separately through Node.Recorder.
	Recorder obsv.Recorder
}

// WithDefaults returns the options with every zero field defaulted.
func (o Options) WithDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 32
	}
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.Seed == 0 {
		o.Seed = 0xd157a1b2c3d4e5f6
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = DefaultRequestTimeout
	}
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = DefaultProbeInterval
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = DefaultFailThreshold
	}
	o.Node = o.Node.WithDefaults()
	return o
}

// shardOf maps an antecedent's first (smallest) item to its shard.  Every
// antecedent contained in a basket has its first item in the basket, so the
// shards a basket query can touch are exactly {shardOf(item)} over the
// basket items — the router's fan-out set.
func (o Options) shardOf(first itemset.Item) int {
	return int(splitmix64(o.Seed^uint64(uint32(first))) % uint64(o.Shards))
}

// shardOfKey maps a group key (itemset.Key encoding) to its shard.
func (o Options) shardOfKey(key string) int {
	ant := itemset.KeyToItemset(key)
	if len(ant) == 0 {
		return 0
	}
	return o.shardOf(ant[0])
}

// Place assigns every shard an owner from nodeIDs by rendezvous hashing:
// shard s goes to the node with the highest weight(seed, s, id).  The
// assignment is a pure deterministic function of its inputs — node order
// does not matter, and adding or removing a node moves only the shards
// whose winner changed.  Ties (astronomically unlikely with 64-bit
// weights) break toward the lexicographically smallest ID.  Panics if
// nodeIDs is empty; returns one owner per shard.
func Place(seed uint64, shards int, nodeIDs []string) []string {
	reps := PlaceReplicas(seed, shards, 1, nodeIDs)
	owners := make([]string, shards)
	for s := range owners {
		owners[s] = reps[s][0]
	}
	return owners
}

// PlaceReplicas assigns every shard its top-R owners: the r nodes with the
// highest rendezvous weights for that shard, in descending weight order
// (element 0 is the primary — the node Place would return).  Like Place it
// is a pure deterministic function of (seed, shards, r, node IDs), so every
// router computes the same replica sets without coordination, and a
// membership change moves only the shards whose top-R prefix changed.  r is
// clamped to the node count; panics if nodeIDs is empty.
func PlaceReplicas(seed uint64, shards, r int, nodeIDs []string) [][]string {
	if len(nodeIDs) == 0 {
		panic("distserve: PlaceReplicas with no nodes")
	}
	ids := append([]string(nil), nodeIDs...)
	sort.Strings(ids)
	if r < 1 {
		r = 1
	}
	if r > len(ids) {
		r = len(ids)
	}
	owners := make([][]string, shards)
	w := make([]uint64, len(ids))
	for s := range owners {
		for i, id := range ids {
			w[i] = placeWeight(seed, s, id)
		}
		// Partial selection sort of the top r by (weight desc, id asc) —
		// ids is sorted, so equal weights break toward the smaller ID.
		top := make([]string, r)
		used := make([]bool, len(ids))
		for k := 0; k < r; k++ {
			best := -1
			for i := range ids {
				if !used[i] && (best < 0 || w[i] > w[best]) {
					best = i
				}
			}
			used[best] = true
			top[k] = ids[best]
		}
		owners[s] = top
	}
	return owners
}

// placeWeight is the rendezvous weight of (shard, node): a splitmix64
// absorb of the seed, the shard number and the node ID bytes — the same
// mixer the serving layer and the fault injector use.
func placeWeight(seed uint64, shard int, id string) uint64 {
	h := splitmix64(seed ^ uint64(shard))
	for i := 0; i < len(id); i++ {
		h = splitmix64(h ^ uint64(id[i]))
	}
	return h
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
