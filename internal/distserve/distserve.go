// Package distserve is the multi-node rule-serving tier: a rule index split
// into S shards placed across N server nodes, a router that scatter-gathers
// basket queries, and a delta-publishing protocol that ships only changed
// antecedent groups when a fresh rule set lands.
//
// The design transplants the paper's partitioning ideas from mining to
// serving.  IDD partitions candidates by first item so each processor owns
// a disjoint slice of the hash tree; here, antecedent groups are partitioned
// by their first (smallest) item into S shards, and shards are placed on
// nodes by rendezvous (highest-random-weight) hashing with a seeded,
// deterministic tie-break — each node holds only its fraction of the index,
// the memory-constrained direction of Savasere et al.'s Partition algorithm.
//
// The moving parts:
//
//   - Placement: shard → node by rendezvous hashing.  Node join/leave moves
//     only the shards whose argmax changed (≈ S/N per node change), and the
//     assignment is a pure function of (seed, shard, node IDs) — two runs
//     with the same membership place identically.
//
//   - Node: one serving process (or goroutine).  It keeps its owned shards'
//     antecedent groups, serves basket queries from a serve.Server over
//     them (snapshot hot swap, query cache, metrics — the single-node
//     machinery, reused per node), and participates in two-phase publishes:
//     Prepare stages the next generation's groups and builds its index off
//     the query path, Commit atomically cuts the traffic over.
//
//   - Router: accepts basket queries, computes the shards the basket can
//     touch (one per distinct basket item — exactly the posting lists the
//     first-item inverted index would consult), fans out to only the owning
//     nodes, and merges per-node top-K into the global top-K under the
//     rules.RankLess total order.  Any rule in the global top-K is in its
//     node's local top-K, so the merge is bit-identical to a single-node
//     scan of the full rule set.  A down node degrades the answer, not the
//     service: the result is flagged Partial with the missed shards listed,
//     and the surviving shards' rules are ranked exactly as if the lost
//     rules never existed.
//
//   - Delta publish: the router diffs the new rule set's antecedent groups
//     against the previous generation's canonical bytes (serve.DiffGroups)
//     and ships each owner only the groups that changed on its shards, plus
//     tombstones for vanished groups.  Generations advance cluster-wide;
//     the cut-over happens only after every owner acknowledged its Prepare.
//
// Like package serve, distserve runs on the real clock and real goroutines
// — it is a production subsystem, not an emulation — so its raw
// concurrency sites carry reviewed //checkinv:allow rawchan annotations.
// The in-process Cluster wiring (goroutine nodes, direct calls) keeps the
// whole tier testable under -race in the emulated-cluster spirit of the
// repo; the HTTP transport in http.go runs the same protocol between real
// processes (cmd/ruleserver -node / -router).
package distserve

import (
	"sort"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/serve"
)

// Options configures the distributed tier.  Router and in-process nodes are
// built from one Options value; HTTP node processes must be started with
// the same shard count, seed and serving options for placement and query
// clamping to agree (cmd/ruleserver wires this up).
type Options struct {
	// Shards is the number of index shards S distributed across the nodes
	// (default 32).  More shards give finer placement granularity and
	// smoother rebalancing at a little routing-table cost.
	Shards int
	// Seed seeds the item→shard hash and the rendezvous placement weights.
	// Zero selects a fixed default, keeping placement reproducible run to
	// run — the distributed analogue of serve.Options.HashSeed.
	Seed uint64
	// Node is the per-node serving configuration (query cache, worker
	// pool, MaxK).  The router clamps K with the same defaults, so
	// router-side and node-side query semantics match exactly.
	Node serve.Options
	// Recorder, when non-nil, receives the router's real-time spans: one
	// request span plus per-node fan-out spans for each Recommend, and
	// prepare/commit spans for each publish.  Node-side request spans are
	// configured separately through Node.Recorder.
	Recorder obsv.Recorder
}

// WithDefaults returns the options with every zero field defaulted.
func (o Options) WithDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 32
	}
	if o.Seed == 0 {
		o.Seed = 0xd157a1b2c3d4e5f6
	}
	o.Node = o.Node.WithDefaults()
	return o
}

// shardOf maps an antecedent's first (smallest) item to its shard.  Every
// antecedent contained in a basket has its first item in the basket, so the
// shards a basket query can touch are exactly {shardOf(item)} over the
// basket items — the router's fan-out set.
func (o Options) shardOf(first itemset.Item) int {
	return int(splitmix64(o.Seed^uint64(uint32(first))) % uint64(o.Shards))
}

// shardOfKey maps a group key (itemset.Key encoding) to its shard.
func (o Options) shardOfKey(key string) int {
	ant := itemset.KeyToItemset(key)
	if len(ant) == 0 {
		return 0
	}
	return o.shardOf(ant[0])
}

// Place assigns every shard an owner from nodeIDs by rendezvous hashing:
// shard s goes to the node with the highest weight(seed, s, id).  The
// assignment is a pure deterministic function of its inputs — node order
// does not matter, and adding or removing a node moves only the shards
// whose winner changed.  Ties (astronomically unlikely with 64-bit
// weights) break toward the lexicographically smallest ID.  Panics if
// nodeIDs is empty; returns one owner per shard.
func Place(seed uint64, shards int, nodeIDs []string) []string {
	if len(nodeIDs) == 0 {
		panic("distserve: Place with no nodes")
	}
	ids := append([]string(nil), nodeIDs...)
	sort.Strings(ids)
	owners := make([]string, shards)
	for s := range owners {
		best := ids[0]
		bestW := placeWeight(seed, s, ids[0])
		for _, id := range ids[1:] {
			if w := placeWeight(seed, s, id); w > bestW {
				best, bestW = id, w
			}
		}
		owners[s] = best
	}
	return owners
}

// placeWeight is the rendezvous weight of (shard, node): a splitmix64
// absorb of the seed, the shard number and the node ID bytes — the same
// mixer the serving layer and the fault injector use.
func placeWeight(seed uint64, shard int, id string) uint64 {
	h := splitmix64(seed ^ uint64(shard))
	for i := 0; i < len(id); i++ {
		h = splitmix64(h ^ uint64(id[i]))
	}
	return h
}

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
