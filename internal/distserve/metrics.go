package distserve

import (
	"context"
	"sort"
	"time"

	"parapriori/internal/obsv"
	"parapriori/internal/serve"
)

// NodeMetrics is one node's view in the fleet report: identity, liveness,
// the failure detector's state, the shards placement assigns it, and its
// full single-node serving metrics (zero-valued when the node is down).
type NodeMetrics struct {
	ID     string        `json:"id"`
	Up     bool          `json:"up"`
	Health string        `json:"health"`
	Shards []int         `json:"shards"`
	Serve  serve.Metrics `json:"serve"`
}

// FleetMetrics is the router's aggregated view of the tier: its own query
// counters plus every node's serving metrics, in sorted node-ID order.
type FleetMetrics struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Queries          int64   `json:"queries"`
	QPS              float64 `json:"qps"`
	P50LatencyMicros float64 `json:"p50_latency_micros"`
	P99LatencyMicros float64 `json:"p99_latency_micros"`
	// PartialResults counts queries answered with one or more owners down.
	PartialResults int64 `json:"partial_results"`
	// FanoutPerQuery is the mean number of legs sent per query — the
	// scatter width the first-item sharding buys down from N, plus any
	// retry and hedge legs.
	FanoutPerQuery float64 `json:"fanout_per_query"`
	// Retries, Hedges and Timeouts count the HA machinery's work: legs
	// re-issued after a failure, legs raced against stragglers, and calls
	// that exceeded the request deadline.  Probes counts failure-detector
	// probes (background and ProbeOnce).
	Retries  int64 `json:"retries"`
	Hedges   int64 `json:"hedges"`
	Timeouts int64 `json:"timeouts"`
	Probes   int64 `json:"probes"`
	// Refreshes counts coherence re-queries: stale-generation answers
	// re-fetched while a publish cut over mid-query.
	Refreshes  int64  `json:"refreshes"`
	Generation uint64 `json:"generation"`
	NumNodes   int    `json:"num_nodes"`
	NodesUp    int    `json:"nodes_up"`
	// Replicas is R — how many nodes each shard is placed on.
	Replicas int `json:"replicas"`
	Shards   int `json:"shards"`
	// NumRules is the fleet-wide rule count summed over reachable nodes.
	NumRules int           `json:"num_rules"`
	Nodes    []NodeMetrics `json:"nodes"`
	// Exemplars are the router latency histogram's per-bucket slowest recent
	// queries: each SpanID resolves in the router's /debug/flight ring to the
	// request span and its fan-out legs, and Nodes lists the fan-out set.
	Exemplars []serve.Exemplar `json:"exemplars,omitempty"`
}

// Metrics aggregates the router's own counters with every node's serving
// metrics.  Down nodes are reported Up=false rather than failing the whole
// report.
func (r *Router) Metrics() FleetMetrics {
	r.mu.RLock()
	ids := append([]string(nil), r.ids...)
	clients := make(map[string]Client, len(r.clients))
	health := make(map[string]*nodeHealth, len(r.health))
	for id, c := range r.clients {
		clients[id] = c
		health[id] = r.health[id]
	}
	replicas := r.replicas
	gen := r.gen
	r.mu.RUnlock()

	shardsByNode := make(map[string][]int, len(ids))
	for s, reps := range replicas {
		for _, id := range reps {
			shardsByNode[id] = append(shardsByNode[id], s)
		}
	}

	fm := FleetMetrics{
		Generation: gen,
		NumNodes:   len(ids),
		Replicas:   r.opt.Replicas,
		Shards:     len(replicas),
	}
	fm.UptimeSeconds = time.Since(r.met.start).Seconds()
	fm.Queries = r.met.queries.Load()
	if fm.UptimeSeconds > 0 {
		fm.QPS = float64(fm.Queries) / fm.UptimeSeconds
	}
	fm.P50LatencyMicros = r.met.latency.Percentile(0.50)
	fm.P99LatencyMicros = r.met.latency.Percentile(0.99)
	fm.PartialResults = r.met.partials.Load()
	fm.Retries = r.met.retries.Load()
	fm.Hedges = r.met.hedges.Load()
	fm.Timeouts = r.met.timeouts.Load()
	fm.Probes = r.met.probes.Load()
	fm.Refreshes = r.met.refreshes.Load()
	fm.Exemplars = r.met.latency.Exemplars()
	if fm.Queries > 0 {
		fm.FanoutPerQuery = float64(r.met.fanout.Load()) / float64(fm.Queries)
	}

	ctx, cancel := context.WithTimeout(context.Background(), r.opt.RequestTimeout)
	defer cancel()
	for _, id := range ids {
		shards := shardsByNode[id]
		sort.Ints(shards)
		nm := NodeMetrics{ID: id, Shards: shards, Health: health[id].State().String()}
		if m, err := clients[id].Metrics(ctx); err == nil {
			nm.Up = true
			nm.Serve = m
			fm.NodesUp++
			fm.NumRules += m.NumRules
		}
		fm.Nodes = append(fm.Nodes, nm)
	}
	// NumRules double-counts replicated shards' rules when R > 1; report
	// the fleet-unique count by scaling down only when every node answered
	// (a partial poll can't distinguish which copies it saw).
	effR := fm.Replicas
	if effR > fm.NumNodes {
		effR = fm.NumNodes
	}
	if effR > 1 && fm.NodesUp == fm.NumNodes {
		fm.NumRules /= effR
	}
	return fm
}

// WriteProm renders the fleet metrics as Prometheus text exposition — the
// content-negotiated alternative to the JSON view on the router's /metrics.
// Router-level counters come out as native families (including the real
// latency histogram); per-node serving metrics, which arrive pre-aggregated
// over the node protocol, are labeled gauges/counters keyed by node ID.
func (r *Router) WriteProm(w *obsv.PromWriter) {
	m := r.Metrics()
	w.Gauge("parapriori_router_uptime_seconds", "Seconds since the router started.", m.UptimeSeconds)
	w.Counter("parapriori_router_queries_total", "Distributed basket queries routed.", float64(m.Queries))
	w.Counter("parapriori_router_partial_results_total", "Queries answered with one or more owners down.", float64(m.PartialResults))
	w.Counter("parapriori_router_fanout_total", "Fan-out legs summed over all queries.", float64(r.met.fanout.Load()))
	w.Counter("parapriori_router_retries_total", "Legs re-issued after a failed leg.", float64(m.Retries))
	w.Counter("parapriori_router_hedges_total", "Hedge legs raced against stragglers.", float64(m.Hedges))
	w.Counter("parapriori_router_timeouts_total", "Calls that exceeded the request deadline.", float64(m.Timeouts))
	w.Counter("parapriori_router_probes_total", "Failure-detector probes issued.", float64(m.Probes))
	w.Counter("parapriori_router_refreshes_total", "Coherence re-queries of stale-generation answers.", float64(m.Refreshes))
	w.Gauge("parapriori_replicas", "Replicas per shard (R).", float64(m.Replicas))
	w.Gauge("parapriori_cluster_generation", "Current cluster publish generation.", float64(m.Generation))
	w.Gauge("parapriori_nodes", "Member nodes.", float64(m.NumNodes))
	w.Gauge("parapriori_nodes_up", "Member nodes that answered the metrics poll.", float64(m.NodesUp))
	w.Gauge("parapriori_shards", "Index shards distributed across the fleet.", float64(m.Shards))
	w.Gauge("parapriori_rules", "Fleet-wide rules summed over reachable nodes.", float64(m.NumRules))
	w.Histogram("parapriori_router_query_latency_seconds", "End-to-end distributed query latency (power-of-two buckets).",
		r.met.latency.UppersSeconds(), r.met.latency.Counts(), r.met.latency.SumSeconds())
	for _, n := range m.Nodes {
		node := obsv.String("node", n.ID)
		up := 0.0
		if n.Up {
			up = 1
		}
		w.Gauge("parapriori_node_up", "Whether the node answered the metrics poll.", up, node)
		w.Gauge("parapriori_node_health", "Failure-detector state: 0 up, 1 suspect, 2 down.", healthCode(n.Health), node)
		w.Gauge("parapriori_node_shards", "Shards placement assigns the node.", float64(len(n.Shards)), node)
		if !n.Up {
			continue
		}
		w.Counter("parapriori_node_queries_total", "Basket queries the node served.", float64(n.Serve.Queries), node)
		w.Counter("parapriori_node_cache_hits_total", "Node query cache hits.", float64(n.Serve.CacheHits), node)
		w.Counter("parapriori_node_cache_misses_total", "Node query cache misses.", float64(n.Serve.CacheMisses), node)
		w.Gauge("parapriori_node_generation", "Node snapshot generation.", float64(n.Serve.SnapshotGeneration), node)
		w.Gauge("parapriori_node_rules", "Rules in the node's served index.", float64(n.Serve.NumRules), node)
		w.Gauge("parapriori_node_p50_latency_seconds", "Node p50 query latency in seconds.", n.Serve.P50LatencyMicros/1e6, node)
		w.Gauge("parapriori_node_p99_latency_seconds", "Node p99 query latency in seconds.", n.Serve.P99LatencyMicros/1e6, node)
	}
}

// healthCode maps a HealthState string back to its numeric gauge value.
func healthCode(s string) float64 {
	switch s {
	case "suspect":
		return 1
	case "down":
		return 2
	}
	return 0
}
