package distserve

import (
	"sort"
	"time"

	"parapriori/internal/serve"
)

// NodeMetrics is one node's view in the fleet report: identity, liveness,
// the shards placement assigns it, and its full single-node serving metrics
// (zero-valued when the node is down).
type NodeMetrics struct {
	ID     string        `json:"id"`
	Up     bool          `json:"up"`
	Shards []int         `json:"shards"`
	Serve  serve.Metrics `json:"serve"`
}

// FleetMetrics is the router's aggregated view of the tier: its own query
// counters plus every node's serving metrics, in sorted node-ID order.
type FleetMetrics struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	Queries          int64   `json:"queries"`
	QPS              float64 `json:"qps"`
	P50LatencyMicros float64 `json:"p50_latency_micros"`
	P99LatencyMicros float64 `json:"p99_latency_micros"`
	// PartialResults counts queries answered with one or more owners down.
	PartialResults int64 `json:"partial_results"`
	// FanoutPerQuery is the mean number of nodes consulted per query — the
	// scatter width the first-item sharding buys down from N.
	FanoutPerQuery float64 `json:"fanout_per_query"`
	Generation     uint64  `json:"generation"`
	NumNodes       int     `json:"num_nodes"`
	NodesUp        int     `json:"nodes_up"`
	Shards         int     `json:"shards"`
	// NumRules is the fleet-wide rule count summed over reachable nodes.
	NumRules int           `json:"num_rules"`
	Nodes    []NodeMetrics `json:"nodes"`
}

// Metrics aggregates the router's own counters with every node's serving
// metrics.  Down nodes are reported Up=false rather than failing the whole
// report.
func (r *Router) Metrics() FleetMetrics {
	r.mu.RLock()
	ids := append([]string(nil), r.ids...)
	clients := make(map[string]Client, len(r.clients))
	for id, c := range r.clients {
		clients[id] = c
	}
	placement := append([]string(nil), r.placement...)
	gen := r.gen
	r.mu.RUnlock()

	shardsByNode := make(map[string][]int, len(ids))
	for s, id := range placement {
		shardsByNode[id] = append(shardsByNode[id], s)
	}

	fm := FleetMetrics{
		Generation: gen,
		NumNodes:   len(ids),
		Shards:     len(placement),
	}
	fm.UptimeSeconds = time.Since(r.met.start).Seconds()
	fm.Queries = r.met.queries.Load()
	if fm.UptimeSeconds > 0 {
		fm.QPS = float64(fm.Queries) / fm.UptimeSeconds
	}
	fm.P50LatencyMicros = r.met.latency.Percentile(0.50)
	fm.P99LatencyMicros = r.met.latency.Percentile(0.99)
	fm.PartialResults = r.met.partials.Load()
	if fm.Queries > 0 {
		fm.FanoutPerQuery = float64(r.met.fanout.Load()) / float64(fm.Queries)
	}

	for _, id := range ids {
		shards := shardsByNode[id]
		sort.Ints(shards)
		nm := NodeMetrics{ID: id, Shards: shards}
		if m, err := clients[id].Metrics(); err == nil {
			nm.Up = true
			nm.Serve = m
			fm.NodesUp++
			fm.NumRules += m.NumRules
		}
		fm.Nodes = append(fm.Nodes, nm)
	}
	return fm
}
