package distserve

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// Router is the query and control plane of the distributed tier.  It owns
// shard placement and the authoritative rule-group state, publishes
// generations to the nodes with a two-phase delta protocol, and
// scatter-gathers basket queries across exactly the nodes whose shards the
// basket can touch.  All methods are safe for concurrent use; queries never
// block behind publishes.
type Router struct {
	opt Options

	// pubMu serializes publishes and membership changes — the control
	// plane.  The query path never takes it.
	pubMu sync.Mutex

	// mu guards the routing state: membership, placement, the published
	// group set and per-node bookkeeping.  Queries hold it only for the
	// short read of placement + clients.
	mu        sync.RWMutex
	clients   map[string]Client
	ids       []string // sorted node IDs
	placement []string // shard → node ID
	groups    []serve.RuleGroup
	canon     map[string][]byte
	held      map[string]map[int]bool // nil entry: node state untrusted, resend fully
	gen       uint64

	met routerMetrics
	rc  *obsv.RealClock // nil unless Options.Recorder is set
}

// routerMetrics is the router's lock-free counter block.
type routerMetrics struct {
	start    time.Time
	queries  atomic.Int64
	partials atomic.Int64
	fanout   atomic.Int64
	latency  serve.Hist
}

// NewRouter builds a router over the given node clients.  Placement is
// computed immediately; queries fail with serve.ErrNoSnapshot until the
// first Publish.
func NewRouter(clients []Client, opt Options) (*Router, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("distserve: router needs at least one node")
	}
	opt = opt.WithDefaults()
	r := &Router{
		opt:     opt,
		clients: make(map[string]Client, len(clients)),
		held:    make(map[string]map[int]bool, len(clients)),
		rc:      obsv.NewRealClock(opt.Recorder),
	}
	r.rc.SetMeta("tier", "router")
	r.met.start = time.Now()
	for _, c := range clients {
		id := c.ID()
		if _, dup := r.clients[id]; dup {
			return nil, fmt.Errorf("distserve: duplicate node ID %q", id)
		}
		r.clients[id] = c
		r.ids = append(r.ids, id)
	}
	sort.Strings(r.ids)
	r.placement = Place(opt.Seed, opt.Shards, r.ids)
	return r, nil
}

// Options returns the router's defaulted options.
func (r *Router) Options() Options { return r.opt }

// Generation returns the current cluster generation, 0 before the first
// successful Publish.
func (r *Router) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Placement returns a copy of the shard → node-ID assignment.
func (r *Router) Placement() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.placement...)
}

// NodeIDs returns the member node IDs, sorted.
func (r *Router) NodeIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.ids...)
}

// PublishStats reports what one publish shipped.
type PublishStats struct {
	// Gen is the cluster generation the publish installed.
	Gen uint64 `json:"generation"`
	// Full records whether a full rebuild was requested (delta otherwise;
	// a delta publish may still resend everything to a node whose state
	// the router stopped trusting after a failed commit).
	Full bool `json:"full"`
	// Groups is the number of antecedent groups in the new rule set.
	Groups int `json:"groups"`
	// Upserts and Removes count group updates shipped across all nodes.
	Upserts int `json:"upserts"`
	Removes int `json:"removes"`
	// Bytes is the canonical-byte volume shipped: the wire-cost measure
	// delta publishing exists to shrink.
	Bytes int64 `json:"bytes"`
	// Nodes is the number of nodes that took part in the two-phase commit.
	Nodes int `json:"nodes"`
}

// Publish installs a new rule set cluster-wide.  With full=false it ships
// deltas: each owner receives only the antecedent groups on its shards
// whose canonical bytes changed since the previous generation, plus
// tombstones for groups that vanished.  The cut-over is two-phase: every
// node stages and acks (Prepare) before any node switches (Commit), so a
// failed node aborts the publish with the old generation still serving
// everywhere.  Rules with empty antecedents are unroutable and unreachable
// by basket queries (exactly as in the single-node index) and are dropped.
func (r *Router) Publish(rs []rules.Rule, full bool) (PublishStats, error) {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	return r.publish(serve.Groups(rs), full)
}

// publish runs the two-phase protocol for a prepared group list.  The
// caller holds pubMu.
func (r *Router) publish(next []serve.RuleGroup, full bool) (PublishStats, error) {
	r.mu.RLock()
	ids := append([]string(nil), r.ids...)
	clients := make(map[string]Client, len(r.clients))
	for id, c := range r.clients {
		clients[id] = c
	}
	placement := r.placement
	prevCanon := r.canon
	prevKeys := make([]string, 0, len(prevCanon))
	for k := range prevCanon {
		prevKeys = append(prevKeys, k)
	}
	sort.Strings(prevKeys)
	held := r.held
	newGen := r.gen + 1
	r.mu.RUnlock()

	// Canonical bytes and shard of every new group; empty antecedents are
	// dropped (see Publish).
	kept := next[:0:0]
	canonOf := make(map[string][]byte, len(next))
	shardOf := make(map[string]int, len(next))
	for _, g := range next {
		if len(g.Ant) == 0 {
			continue
		}
		kept = append(kept, g)
		canonOf[g.Key] = g.Canonical()
		shardOf[g.Key] = r.opt.shardOf(g.Ant[0])
	}
	next = kept

	// Shards owned by each node under the current placement.
	owned := make(map[string][]int, len(ids))
	for s, id := range placement {
		owned[id] = append(owned[id], s)
	}

	// Assemble one PrepareRequest per node.
	stats := PublishStats{Gen: newGen, Full: full, Groups: len(next), Nodes: len(ids)}
	reqs := make([]PrepareRequest, len(ids))
	for i, id := range ids {
		heldShards := held[id]
		fullNode := full || heldShards == nil
		req := PrepareRequest{Gen: newGen, Full: fullNode, Owned: owned[id]}
		ownedSet := make(map[int]bool, len(owned[id]))
		for _, s := range owned[id] {
			ownedSet[s] = true
		}
		for _, g := range next {
			s := shardOf[g.Key]
			if !ownedSet[s] {
				continue
			}
			switch {
			case fullNode, !heldShards[s]:
				// Node has nothing for this shard: ship the group.
			default:
				if prev, ok := prevCanon[g.Key]; ok && bytes.Equal(prev, canonOf[g.Key]) {
					continue
				}
			}
			req.Upserts = append(req.Upserts, GroupUpdate{Shard: s, Rules: g.Rules})
			stats.Upserts++
			stats.Bytes += int64(len(canonOf[g.Key]))
		}
		if !fullNode {
			for _, k := range prevKeys {
				if _, still := canonOf[k]; still {
					continue
				}
				s := r.opt.shardOfKey(k)
				if !ownedSet[s] || !heldShards[s] {
					continue
				}
				req.Removes = append(req.Removes, GroupRef{Shard: s, Ant: itemset.KeyToItemset(k)})
				stats.Removes++
				stats.Bytes += int64(len(k)) + 4
			}
		}
		reqs[i] = req
	}

	// Phase 1: stage everywhere.  Any failure aborts with the previous
	// generation still serving on every node — staged state is simply
	// superseded by the next publish's higher generation.
	prepStart := r.rc.Now()
	prepErrs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		i, c := i, clients[id]
		wg.Add(1)
		go func() { //checkinv:allow rawchan — real-OS publish fan-out, joined by WaitGroup below
			defer wg.Done()
			prepErrs[i] = c.Prepare(reqs[i])
		}()
	}
	wg.Wait()
	r.rc.Record("prepare", obsv.CatPublish, 0, prepStart,
		obsv.Int("generation", int64(newGen)),
		obsv.Int("nodes", int64(len(ids))),
		obsv.Int("upserts", int64(stats.Upserts)),
		obsv.Int("removes", int64(stats.Removes)),
		obsv.Int("bytes", stats.Bytes))
	for i, err := range prepErrs {
		if err != nil {
			return stats, fmt.Errorf("distserve: publish gen %d aborted: prepare on %s: %w", newGen, ids[i], err)
		}
	}

	// Phase 2: cut over.  A commit failure means that node is partitioned
	// or dead; survivors switch, and the router stops trusting the
	// failed node's state (its next publish is a full resend).
	commitStart := r.rc.Now()
	commitErrs := make([]error, len(ids))
	for i, id := range ids {
		i, c := i, clients[id]
		wg.Add(1)
		go func() { //checkinv:allow rawchan — real-OS publish fan-out, joined by WaitGroup below
			defer wg.Done()
			commitErrs[i] = c.Commit(newGen)
		}()
	}
	wg.Wait()
	r.rc.Record("commit", obsv.CatPublish, 0, commitStart,
		obsv.Int("generation", int64(newGen)),
		obsv.Int("nodes", int64(len(ids))))

	r.mu.Lock()
	r.gen = newGen
	r.groups = next
	r.canon = canonOf
	var failed []string
	for i, id := range ids {
		if commitErrs[i] != nil {
			r.held[id] = nil
			failed = append(failed, id)
			continue
		}
		set := make(map[int]bool, len(owned[id]))
		for _, s := range owned[id] {
			set[s] = true
		}
		r.held[id] = set
	}
	r.mu.Unlock()

	if len(failed) > 0 {
		return stats, fmt.Errorf("distserve: publish gen %d committed partially: commit failed on %v", newGen, failed)
	}
	return stats, nil
}

// AddNode brings a new node into the fleet: placement is recomputed
// (rendezvous hashing moves only the shards the newcomer wins) and, if a
// rule set is live, the current generation is republished as a delta — the
// newcomer receives its shards in full, survivors receive nothing but a
// shrunken owned list.
func (r *Router) AddNode(c Client) error {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	id := c.ID()
	r.mu.Lock()
	if _, dup := r.clients[id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("distserve: node %q already a member", id)
	}
	r.clients[id] = c
	r.ids = append(r.ids, id)
	sort.Strings(r.ids)
	r.held[id] = nil
	r.placement = Place(r.opt.Seed, r.opt.Shards, r.ids)
	live := r.gen > 0
	groups := r.groups
	r.mu.Unlock()
	if !live {
		return nil
	}
	_, err := r.publish(groups, false)
	return err
}

// RemoveNode drops a member (typically one that died): placement is
// recomputed and, if a rule set is live, the orphaned shards' groups are
// republished to their new owners as a delta.  The last node cannot be
// removed.
func (r *Router) RemoveNode(id string) error {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	r.mu.Lock()
	if _, ok := r.clients[id]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("distserve: node %q is not a member", id)
	}
	if len(r.ids) == 1 {
		r.mu.Unlock()
		return fmt.Errorf("distserve: cannot remove the last node %q", id)
	}
	delete(r.clients, id)
	delete(r.held, id)
	ids := r.ids[:0]
	for _, v := range r.ids {
		if v != id {
			ids = append(ids, v)
		}
	}
	r.ids = ids
	r.placement = Place(r.opt.Seed, r.opt.Shards, r.ids)
	live := r.gen > 0
	groups := r.groups
	r.mu.Unlock()
	if !live {
		return nil
	}
	_, err := r.publish(groups, false)
	return err
}

// Result is one distributed basket query's answer.
type Result struct {
	// Rules is the global top-K under rules.RankLess — bit-identical to a
	// single-node Recommend over the union of the shards that answered.
	Rules []rules.Rule `json:"rules"`
	// Generation is the lowest cluster generation among the nodes that
	// answered; Mixed reports whether they disagreed (a publish was
	// cutting over mid-query).
	Generation uint64 `json:"generation"`
	Mixed      bool   `json:"mixed,omitempty"`
	// Partial flags a degraded answer: one or more owners were
	// unreachable and MissedShards lists the needed shards their rules
	// would have come from.  The rules that did arrive are ranked exactly
	// as if the missing ones never existed.
	Partial      bool  `json:"partial,omitempty"`
	MissedShards []int `json:"missed_shards,omitempty"`
	// NodesQueried is the fan-out of this query — how many nodes owned a
	// shard the basket could touch.
	NodesQueried int `json:"nodes_queried"`
}

// Recommend answers a basket query: clamp K exactly as a single node would
// (serve.DefaultK, Options.Node.MaxK), fan out to the nodes owning the
// shards of the basket's items, and merge the per-node top-K lists under
// the RankLess total order.  Before the first Publish it returns
// serve.ErrNoSnapshot.
func (r *Router) Recommend(basket []itemset.Item, k int) (*Result, error) {
	start := time.Now()
	spanStart := r.rc.Now()
	fanout, partial := 0, false
	defer func() {
		r.met.queries.Add(1)
		r.met.latency.Observe(time.Since(start))
		p := int64(0)
		if partial {
			p = 1
		}
		r.rc.Record("recommend", obsv.CatRequest, 0, spanStart,
			obsv.Int("basket", int64(len(basket))),
			obsv.Int("k", int64(k)),
			obsv.Int("fanout", int64(fanout)),
			obsv.Int("partial", p))
	}()

	if k <= 0 {
		k = serve.DefaultK
	}
	if k > r.opt.Node.MaxK {
		k = r.opt.Node.MaxK
	}
	b := itemset.New(basket...)

	r.mu.RLock()
	if r.gen == 0 {
		r.mu.RUnlock()
		return nil, serve.ErrNoSnapshot
	}
	placement := r.placement
	clients := make(map[string]Client, len(r.clients))
	for id, c := range r.clients {
		clients[id] = c
	}
	r.mu.RUnlock()

	// The shards this basket can touch: one per distinct item.  Every
	// antecedent ⊆ basket has its first item in the basket, and a group's
	// shard is a function of its first item, so no other shard can hold a
	// matching group.
	shards := make([]int, 0, len(b))
	for _, it := range b {
		shards = append(shards, r.opt.shardOf(it))
	}
	sort.Ints(shards)
	shards = dedupInts(shards)

	// Owners of those shards, in deterministic (sorted-ID) order.
	shardsByNode := make(map[string][]int, len(shards))
	for _, s := range shards {
		id := placement[s]
		shardsByNode[id] = append(shardsByNode[id], s)
	}
	nodeIDs := make([]string, 0, len(shardsByNode))
	for id := range shardsByNode {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Strings(nodeIDs)

	res := &Result{NodesQueried: len(nodeIDs)}
	if len(nodeIDs) == 0 { // empty basket: nothing can match
		r.mu.RLock()
		res.Generation = r.gen
		r.mu.RUnlock()
		return res, nil
	}
	r.met.fanout.Add(int64(len(nodeIDs)))

	type answer struct {
		rules []rules.Rule
		gen   uint64
		err   error
	}
	fanout = len(nodeIDs)
	answers := make([]answer, len(nodeIDs))
	var wg sync.WaitGroup
	for i, id := range nodeIDs {
		i, id, c := i, id, clients[id]
		wg.Add(1)
		go func() { //checkinv:allow rawchan — real-OS scatter-gather fan-out, joined by WaitGroup below
			defer wg.Done()
			nodeStart := r.rc.Now()
			rs, gen, err := c.Recommend(b, k)
			answers[i] = answer{rules: rs, gen: gen, err: err}
			ok := int64(1)
			if err != nil {
				ok = 0
			}
			// One span per consulted node, on its own rank track (the
			// router's own spans live on rank 0).
			r.rc.Record("fanout", obsv.CatRequest, 1+i, nodeStart,
				obsv.String("node", id),
				obsv.Int("shards", int64(len(shardsByNode[id]))),
				obsv.Int("ok", ok))
		}()
	}
	wg.Wait()

	var matches []rules.Rule
	first := true
	for i, a := range answers {
		if a.err != nil {
			res.Partial = true
			partial = true
			res.MissedShards = append(res.MissedShards, shardsByNode[nodeIDs[i]]...)
			continue
		}
		matches = append(matches, a.rules...)
		if first || a.gen < res.Generation {
			res.Generation = a.gen
		}
		if !first && a.gen != answers[i-1].gen {
			res.Mixed = true
		}
		first = false
	}
	sort.Ints(res.MissedShards)
	res.Rules = serve.RankTruncate(matches, k)
	if res.Partial {
		r.met.partials.Add(1)
	}
	return res, nil
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
