package distserve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// Router is the query and control plane of the distributed tier.  It owns
// shard placement and the authoritative rule-group state, publishes
// generations to all R owners of every shard with a two-phase delta
// protocol, and scatter-gathers basket queries across a replica of each
// shard the basket can touch — retrying, hedging and failing over between
// replicas so node loss stays invisible to queries while any replica of
// every touched shard survives.  All methods are safe for concurrent use;
// queries never block behind publishes.
type Router struct {
	opt Options

	// pubMu serializes publishes and membership changes — the control
	// plane.  The query path never takes it.
	pubMu sync.Mutex

	// mu guards the routing state: membership, placement, the published
	// group set and per-node bookkeeping.  Queries hold it only for the
	// short read of placement + clients + health.
	mu        sync.RWMutex
	clients   map[string]Client
	ids       []string               // sorted node IDs
	placement []string               // shard → primary node ID (replicas[s][0])
	replicas  [][]string             // shard → top-R node IDs in HRW order
	health    map[string]*nodeHealth // failure-detector state per member
	groups    []serve.RuleGroup
	canon     map[string][]byte
	held      map[string]map[int]bool // nil entry: node state untrusted, resend fully
	gen       uint64

	probeStop chan struct{} // non-nil while the background prober runs
	probeDone chan struct{}

	pickSeq atomic.Uint64 // seeded choice-of-two sequence
	reqID   atomic.Uint64 // per-request span-link counter

	met    routerMetrics
	flight *obsv.Flight    // always-on bounded ring of recent spans
	rc     *obsv.RealClock // always non-nil: records into the flight ring, teed with Options.Recorder
	reg    *obsv.Registry
}

// routerMetrics is the router's lock-free counter block.
type routerMetrics struct {
	start     time.Time
	queries   atomic.Int64
	partials  atomic.Int64
	fanout    atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	timeouts  atomic.Int64
	probes    atomic.Int64
	refreshes atomic.Int64
	latency   serve.Hist
}

// NewRouter builds a router over the given node clients.  Placement is
// computed immediately; queries fail with serve.ErrNoSnapshot until the
// first Publish.  With Options.Replicas > 1 call StartProber to run the
// background failure detector (tests drive ProbeOnce instead).
func NewRouter(clients []Client, opt Options) (*Router, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("distserve: router needs at least one node")
	}
	opt = opt.WithDefaults()
	r := &Router{
		opt:     opt,
		clients: make(map[string]Client, len(clients)),
		health:  make(map[string]*nodeHealth, len(clients)),
		held:    make(map[string]map[int]bool, len(clients)),
		flight:  obsv.NewFlight(obsv.ClockReal, 0),
	}
	r.rc = obsv.NewRealClock(obsv.Tee(r.flight, opt.Recorder))
	r.rc.SetMeta("tier", "router")
	r.reg = obsv.NewRegistry()
	r.reg.Register("router", r.WriteProm)
	r.met.start = time.Now()
	for _, c := range clients {
		id := c.ID()
		if _, dup := r.clients[id]; dup {
			return nil, fmt.Errorf("distserve: duplicate node ID %q", id)
		}
		r.clients[id] = c
		r.health[id] = &nodeHealth{}
		r.ids = append(r.ids, id)
	}
	sort.Strings(r.ids)
	r.place()
	return r, nil
}

// place recomputes the replica sets and the primary view from the current
// membership.  Caller holds mu (or is the constructor).
func (r *Router) place() {
	r.replicas = PlaceReplicas(r.opt.Seed, r.opt.Shards, r.opt.Replicas, r.ids)
	r.placement = make([]string, len(r.replicas))
	for s, reps := range r.replicas {
		r.placement[s] = reps[0]
	}
}

// Options returns the router's defaulted options.
func (r *Router) Options() Options { return r.opt }

// Flight returns the router's always-on flight recorder — the bounded ring
// of recent request, fan-out and publish spans behind /debug/flight.
func (r *Router) Flight() *obsv.Flight { return r.flight }

// Registry returns the router's metrics registry.  The router family is
// pre-registered; callers can graft additional families onto the same
// /metrics exposition.
func (r *Router) Registry() *obsv.Registry { return r.reg }

// Generation returns the current cluster generation, 0 before the first
// successful Publish.
func (r *Router) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Placement returns a copy of the shard → primary-node assignment (each
// shard's top rendezvous candidate; the full replica sets are Replicas).
func (r *Router) Placement() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.placement...)
}

// Replicas returns a copy of the shard → replica-set assignment, each
// shard's top-R nodes in descending rendezvous-weight order.
func (r *Router) Replicas() [][]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([][]string, len(r.replicas))
	for s, reps := range r.replicas {
		out[s] = append([]string(nil), reps...)
	}
	return out
}

// NodeIDs returns the member node IDs, sorted.
func (r *Router) NodeIDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.ids...)
}

// PublishStats reports what one publish shipped.
type PublishStats struct {
	// Gen is the cluster generation the publish installed.
	Gen uint64 `json:"generation"`
	// Full records whether a full rebuild was requested (delta otherwise;
	// a delta publish may still resend everything to a node whose state
	// the router stopped trusting after a failed commit).
	Full bool `json:"full"`
	// Groups is the number of antecedent groups in the new rule set.
	Groups int `json:"groups"`
	// Upserts and Removes count group updates shipped across all nodes.
	Upserts int `json:"upserts"`
	Removes int `json:"removes"`
	// Bytes is the canonical-byte volume shipped: the wire-cost measure
	// delta publishing exists to shrink.
	Bytes int64 `json:"bytes"`
	// Nodes is the number of nodes that took part in the two-phase commit.
	Nodes int `json:"nodes"`
}

// Publish installs a new rule set cluster-wide.  With full=false it ships
// deltas: each owner receives only the antecedent groups on its shards
// whose canonical bytes changed since the previous generation, plus
// tombstones for groups that vanished.  The cut-over is two-phase: every
// node stages and acks (Prepare) before any node switches (Commit), so a
// failed node aborts the publish with the old generation still serving
// everywhere.  Rules with empty antecedents are unroutable and unreachable
// by basket queries (exactly as in the single-node index) and are dropped.
func (r *Router) Publish(rs []rules.Rule, full bool) (PublishStats, error) {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	return r.publish(serve.Groups(rs), full)
}

// publish runs the two-phase protocol for a prepared group list.  The
// caller holds pubMu.
func (r *Router) publish(next []serve.RuleGroup, full bool) (PublishStats, error) {
	r.mu.RLock()
	ids := append([]string(nil), r.ids...)
	clients := make(map[string]Client, len(r.clients))
	for id, c := range r.clients {
		clients[id] = c
	}
	replicas := r.replicas
	prevCanon := r.canon
	prevKeys := make([]string, 0, len(prevCanon))
	for k := range prevCanon {
		prevKeys = append(prevKeys, k)
	}
	sort.Strings(prevKeys)
	held := r.held
	newGen := r.gen + 1
	r.mu.RUnlock()

	// Canonical bytes and shard of every new group; empty antecedents are
	// dropped (see Publish).
	kept := next[:0:0]
	canonOf := make(map[string][]byte, len(next))
	shardOf := make(map[string]int, len(next))
	for _, g := range next {
		if len(g.Ant) == 0 {
			continue
		}
		kept = append(kept, g)
		canonOf[g.Key] = g.Canonical()
		shardOf[g.Key] = r.opt.shardOf(g.Ant[0])
	}
	next = kept

	// Shards owned by each node under the current placement: every node in
	// a shard's replica set owns it, so publishes fan the shard's groups to
	// all R owners.
	owned := make(map[string][]int, len(ids))
	for s, reps := range replicas {
		for _, id := range reps {
			owned[id] = append(owned[id], s)
		}
	}

	// Assemble one PrepareRequest per node.
	stats := PublishStats{Gen: newGen, Full: full, Groups: len(next), Nodes: len(ids)}
	reqs := make([]PrepareRequest, len(ids))
	for i, id := range ids {
		heldShards := held[id]
		fullNode := full || heldShards == nil
		req := PrepareRequest{Gen: newGen, Full: fullNode, Owned: owned[id]}
		ownedSet := make(map[int]bool, len(owned[id]))
		for _, s := range owned[id] {
			ownedSet[s] = true
		}
		for _, g := range next {
			s := shardOf[g.Key]
			if !ownedSet[s] {
				continue
			}
			switch {
			case fullNode, !heldShards[s]:
				// Node has nothing for this shard: ship the group.
			default:
				if prev, ok := prevCanon[g.Key]; ok && bytes.Equal(prev, canonOf[g.Key]) {
					continue
				}
			}
			req.Upserts = append(req.Upserts, GroupUpdate{Shard: s, Rules: g.Rules})
			stats.Upserts++
			stats.Bytes += int64(len(canonOf[g.Key]))
		}
		if !fullNode {
			for _, k := range prevKeys {
				if _, still := canonOf[k]; still {
					continue
				}
				s := r.opt.shardOfKey(k)
				if !ownedSet[s] || !heldShards[s] {
					continue
				}
				req.Removes = append(req.Removes, GroupRef{Shard: s, Ant: itemset.KeyToItemset(k)})
				stats.Removes++
				stats.Bytes += int64(len(k)) + 4
			}
		}
		reqs[i] = req
	}

	// Phase 1: stage everywhere.  Any failure aborts with the previous
	// generation still serving on every node — staged state is simply
	// superseded by the next publish's higher generation.  The control
	// plane runs under a budget far above the query deadline: prepares
	// ship real payloads and build indexes.
	pubCtx, pubCancel := context.WithTimeout(context.Background(), 15*r.opt.RequestTimeout)
	defer pubCancel()
	prepStart := r.rc.Now()
	prepErrs := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		i, c := i, clients[id]
		wg.Add(1)
		go func() { //checkinv:allow rawchan — real-OS publish fan-out, joined by WaitGroup below
			defer wg.Done()
			prepErrs[i] = c.Prepare(pubCtx, reqs[i])
		}()
	}
	wg.Wait()
	r.rc.Record("prepare", obsv.CatPublish, 0, prepStart,
		obsv.Int("generation", int64(newGen)),
		obsv.Int("nodes", int64(len(ids))),
		obsv.Int("upserts", int64(stats.Upserts)),
		obsv.Int("removes", int64(stats.Removes)),
		obsv.Int("bytes", stats.Bytes))
	for i, err := range prepErrs {
		if err != nil {
			return stats, fmt.Errorf("distserve: publish gen %d aborted: prepare on %s: %w", newGen, ids[i], err)
		}
	}

	// Phase 2: cut over.  A commit failure means that node is partitioned
	// or dead; survivors switch, and the router stops trusting the
	// failed node's state (its next publish is a full resend).
	commitStart := r.rc.Now()
	commitErrs := make([]error, len(ids))
	for i, id := range ids {
		i, c := i, clients[id]
		wg.Add(1)
		go func() { //checkinv:allow rawchan — real-OS publish fan-out, joined by WaitGroup below
			defer wg.Done()
			commitErrs[i] = c.Commit(pubCtx, newGen)
		}()
	}
	wg.Wait()
	r.rc.Record("commit", obsv.CatPublish, 0, commitStart,
		obsv.Int("generation", int64(newGen)),
		obsv.Int("nodes", int64(len(ids))))

	r.mu.Lock()
	r.gen = newGen
	r.groups = next
	r.canon = canonOf
	var failed []string
	for i, id := range ids {
		if commitErrs[i] != nil {
			r.held[id] = nil
			failed = append(failed, id)
			continue
		}
		set := make(map[int]bool, len(owned[id]))
		for _, s := range owned[id] {
			set[s] = true
		}
		r.held[id] = set
	}
	r.mu.Unlock()

	if len(failed) > 0 {
		return stats, fmt.Errorf("distserve: publish gen %d committed partially: commit failed on %v", newGen, failed)
	}
	return stats, nil
}

// AddNode brings a new node into the fleet: placement is recomputed
// (rendezvous hashing moves only the shards the newcomer wins) and, if a
// rule set is live, the current generation is republished as a delta — the
// newcomer receives its shards in full, survivors receive nothing but a
// shrunken owned list.
func (r *Router) AddNode(c Client) error {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	id := c.ID()
	r.mu.Lock()
	if _, dup := r.clients[id]; dup {
		r.mu.Unlock()
		return fmt.Errorf("distserve: node %q already a member", id)
	}
	r.clients[id] = c
	r.health[id] = &nodeHealth{}
	r.ids = append(r.ids, id)
	sort.Strings(r.ids)
	r.held[id] = nil
	r.place()
	live := r.gen > 0
	groups := r.groups
	r.mu.Unlock()
	if !live {
		return nil
	}
	_, err := r.publish(groups, false)
	return err
}

// RemoveNode drops a member (typically one that died): placement is
// recomputed and, if a rule set is live, the orphaned shards' groups are
// republished to their new owners as a delta.  The last node cannot be
// removed.
func (r *Router) RemoveNode(id string) error {
	r.pubMu.Lock()
	defer r.pubMu.Unlock()
	r.mu.Lock()
	if _, ok := r.clients[id]; !ok {
		r.mu.Unlock()
		return fmt.Errorf("distserve: node %q is not a member", id)
	}
	if len(r.ids) == 1 {
		r.mu.Unlock()
		return fmt.Errorf("distserve: cannot remove the last node %q", id)
	}
	delete(r.clients, id)
	delete(r.health, id)
	delete(r.held, id)
	ids := r.ids[:0]
	for _, v := range r.ids {
		if v != id {
			ids = append(ids, v)
		}
	}
	r.ids = ids
	r.place()
	live := r.gen > 0
	groups := r.groups
	r.mu.Unlock()
	if !live {
		return nil
	}
	_, err := r.publish(groups, false)
	return err
}

// Result is one distributed basket query's answer.
type Result struct {
	// Rules is the global top-K under rules.RankLess — bit-identical to a
	// single-node Recommend over the union of the shards that answered.
	Rules []rules.Rule `json:"rules"`
	// Generation is the lowest cluster generation among the nodes that
	// answered; Mixed reports whether they disagreed (a publish was
	// cutting over mid-query).
	Generation uint64 `json:"generation"`
	Mixed      bool   `json:"mixed,omitempty"`
	// Partial flags a degraded answer: one or more touched shards had no
	// reachable replica and MissedShards lists them.  With R replicas this
	// is the all-replicas-down floor.  The rules that did arrive are
	// ranked exactly as if the missing ones never existed.
	Partial      bool  `json:"partial,omitempty"`
	MissedShards []int `json:"missed_shards,omitempty"`
	// NodesQueried is the fan-out of this query — how many distinct nodes
	// were sent a leg (primaries, retries and hedges included).
	NodesQueried int `json:"nodes_queried"`
	// Retries and Hedges count the extra legs this query needed: retries
	// replace failed legs, hedges race slow ones.
	Retries int `json:"retries,omitempty"`
	Hedges  int `json:"hedges,omitempty"`
}

// hedgeDelay resolves the straggler-hedging delay: the configured value,
// or (when zero) the router's observed p99 latency clamped to a sane band
// under the request deadline.  Returns < 0 when hedging is disabled.
func (r *Router) hedgeDelay() time.Duration {
	d := r.opt.HedgeDelay
	if d < 0 {
		return -1
	}
	if d == 0 {
		d = time.Duration(r.met.latency.Percentile(0.99)) * time.Microsecond
		if min := 500 * time.Microsecond; d < min {
			d = min
		}
		if max := r.opt.RequestTimeout / 2; d > max {
			d = max
		}
	}
	return d
}

// Recommend answers a basket query: clamp K exactly as a single node would
// (serve.DefaultK, Options.Node.MaxK), fan one leg out per replica group
// covering the shards of the basket's items, and merge the per-node top-K
// lists under the RankLess total order.  Each leg runs under
// Options.RequestTimeout; a failed leg is retried once against the next
// untried replica of its shards, and after the hedge delay the slowest
// outstanding legs' shards are re-issued to alternate replicas, first
// answer wins.  A node's answer covers every touched shard it owns (its
// local top-K is computed over all of them at once), so the merged result
// is exact — bit-identical to a single-node server — whenever every
// touched shard got at least one successful answer.  Before the first
// Publish it returns serve.ErrNoSnapshot.
func (r *Router) Recommend(basket []itemset.Item, k int) (*Result, error) {
	start := time.Now()
	spanStart := r.rc.Now()
	link := fmt.Sprintf("q%d", r.reqID.Add(1))
	legs, retries, hedges, partial := 0, 0, 0, false
	b := itemset.New(basket...)
	res := &Result{}
	asked := make(map[string]bool)
	defer func() {
		r.met.queries.Add(1)
		nodes := make([]string, 0, len(asked))
		for id := range asked {
			nodes = append(nodes, id)
		}
		sort.Strings(nodes)
		r.met.latency.ObserveEx(time.Since(start), &serve.Exemplar{
			SpanID:     link,
			BasketHash: serve.BasketHash(b),
			Generation: res.Generation,
			Nodes:      nodes,
		})
		p := int64(0)
		if partial {
			p = 1
		}
		r.rc.Record("recommend", obsv.CatRequest, 0, spanStart,
			obsv.String("link", link),
			obsv.Int("basket", int64(len(basket))),
			obsv.Int("k", int64(k)),
			obsv.Int("fanout", int64(legs)),
			obsv.Int("retries", int64(retries)),
			obsv.Int("hedges", int64(hedges)),
			obsv.Int("partial", p))
	}()

	if k <= 0 {
		k = serve.DefaultK
	}
	if k > r.opt.Node.MaxK {
		k = r.opt.Node.MaxK
	}

	r.mu.RLock()
	if r.gen == 0 {
		r.mu.RUnlock()
		return nil, serve.ErrNoSnapshot
	}
	replicas := r.replicas
	clients := make(map[string]Client, len(r.clients))
	health := make(map[string]*nodeHealth, len(r.health))
	for id, c := range r.clients {
		clients[id] = c
		health[id] = r.health[id]
	}
	r.mu.RUnlock()

	// The shards this basket can touch: one per distinct item.  Every
	// antecedent ⊆ basket has its first item in the basket, and a group's
	// shard is a function of its first item, so no other shard can hold a
	// matching group.
	shards := make([]int, 0, len(b))
	for _, it := range b {
		shards = append(shards, r.opt.shardOf(it))
	}
	sort.Ints(shards)
	shards = dedupInts(shards)

	if len(shards) == 0 { // empty basket: nothing can match
		r.mu.RLock()
		res.Generation = r.gen
		r.mu.RUnlock()
		return res, nil
	}

	// Per touched shard: the replica candidates still standing.  A shard
	// whose replicas are all Down keeps its full list — the desperation
	// floor is trying a Down node, not answering Partial untried.
	liveOf := func(s int) []string {
		var live []string
		for _, id := range replicas[s] {
			if health[id].State() != HealthDown {
				live = append(live, id)
			}
		}
		if len(live) == 0 {
			return replicas[s]
		}
		return live
	}

	// Initial leg per shard group: shards with the same live candidate
	// list form one group, and each group gets one choice-of-two pick —
	// shards choosing the same node then share one leg (a node answers
	// over all its owned shards at once).
	pickByShard := make(map[int]string, len(shards))
	pickByGroup := make(map[string]string)
	for _, s := range shards {
		live := liveOf(s)
		key := ""
		for _, id := range live {
			key += id + ","
		}
		id, ok := pickByGroup[key]
		if !ok {
			id = r.pick2(live, health)
			pickByGroup[key] = id
		}
		pickByShard[s] = id
	}

	// ownsTouched[id] = the touched shards node id holds a replica of —
	// the coverage a successful answer from id provides.
	ownsTouched := make(map[string][]int)
	for _, s := range shards {
		for _, id := range replicas[s] {
			ownsTouched[id] = append(ownsTouched[id], s)
		}
	}

	type legResult struct {
		node  string
		rules []rules.Rule
		gen   uint64
		err   error
	}
	// Buffered to the member count: every node receives at most one leg
	// per query, so abandoned stragglers can always deposit their answer
	// and exit without a receiver.
	resCh := make(chan legResult, len(clients)) //checkinv:allow rawchan — scatter-gather legs on the real clock, drained or abandoned-buffered below

	assigned := make(map[string][]int) // node → shards its leg is responsible for
	launch := func(id, attempt string) {
		asked[id] = true
		legs++
		r.met.fanout.Add(1)
		c, h, rank := clients[id], health[id], legs
		h.outstanding.Add(1)
		go func() { //checkinv:allow rawchan,goroleak — fan-out leg; result lands in the buffered channel above, which outlives abandoned legs
			legStart := r.rc.Now()
			ctx, cancel := context.WithTimeout(context.Background(), r.opt.RequestTimeout)
			rs, gen, err := c.Recommend(ctx, b, k, link)
			cancel()
			h.outstanding.Add(-1)
			ok := int64(1)
			if err != nil {
				ok = 0
				h.observeFailure(r.opt.FailThreshold)
				var te *TimeoutError
				if errors.As(err, &te) {
					r.met.timeouts.Add(1)
				}
			} else {
				h.observeSuccess()
			}
			// One span per leg, on its own rank track (the router's own
			// spans live on rank 0); the shared link attribute ties every
			// leg — primary, retry or hedge — back to its request span.
			r.rc.Record("fanout", obsv.CatRequest, rank, legStart,
				obsv.String("link", link),
				obsv.String("node", id),
				obsv.String("attempt", attempt),
				obsv.Int("ok", ok))
			resCh <- legResult{node: id, rules: rs, gen: gen, err: err} //checkinv:allow rawchan buffered for all possible legs, never blocks
		}()
	}
	for _, s := range shards { // deterministic launch order: sorted shards
		id := pickByShard[s]
		fresh := !asked[id]
		assigned[id] = append(assigned[id], s)
		if fresh {
			launch(id, "primary")
		}
	}

	covered := make(map[int]bool, len(shards))
	allCovered := func() bool {
		for _, s := range shards {
			if !covered[s] {
				return false
			}
		}
		return true
	}
	// reissue sends the still-uncovered shards of shardList to untried
	// replicas (live ones first, Down ones as a last resort only when
	// lastResort is set) and returns how many new legs it launched.
	reissue := func(shardList []int, attempt string, lastResort bool) int {
		targets := make(map[string][]int)
		for _, s := range shardList {
			if covered[s] {
				continue
			}
			var fallback string
			picked := false
			for _, id := range replicas[s] {
				if _, already := targets[id]; already {
					// Another uncovered shard is already bound for this
					// replica; its answer will cover this shard too.
					targets[id] = append(targets[id], s)
					picked = true
					break
				}
				if asked[id] {
					continue
				}
				if health[id].State() == HealthDown {
					if fallback == "" {
						fallback = id
					}
					continue
				}
				targets[id] = append(targets[id], s)
				picked = true
				break
			}
			if !picked && lastResort && fallback != "" {
				targets[fallback] = append(targets[fallback], s)
			}
		}
		ids := make([]string, 0, len(targets))
		for id := range targets {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			assigned[id] = append(assigned[id], targets[id]...)
			launch(id, attempt)
		}
		return len(ids)
	}

	type answer struct {
		node  string
		rules []rules.Rule
		gen   uint64
	}
	var answers []answer
	pending := legs
	var hedgeCh <-chan time.Time
	if d := r.hedgeDelay(); d >= 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeCh = t.C
	}
	for pending > 0 && !allCovered() {
		select { //checkinv:allow rawchan — gather loop over the leg channel and the hedge timer
		case lr := <-resCh: //checkinv:allow rawchan one leg's answer arriving
			pending--
			if lr.err != nil {
				// One retry for the failed leg's shards, against the next
				// untried replica — Down nodes included once nothing
				// else is left, so Partial is only ever declared after
				// every replica was actually tried.
				n := reissue(assigned[lr.node], "retry", true)
				retries += n
				r.met.retries.Add(int64(n))
				pending += n
				continue
			}
			answers = append(answers, answer{lr.node, lr.rules, lr.gen})
			for _, s := range ownsTouched[lr.node] {
				covered[s] = true
			}
		case <-hedgeCh: //checkinv:allow rawchan the hedge timer firing on the real clock
			hedgeCh = nil // one-shot
			n := reissue(shards, "hedge", false)
			hedges += n
			r.met.hedges.Add(int64(n))
			pending += n
		}
	}

	// Coherence refresh: when the answers straddle a publish cut-over
	// (some nodes already at generation g+1, some still at g), re-query
	// the stale nodes — the cut-over is a pointer swap, so by the time the
	// skew is visible the laggard has almost always committed.  Bounded to
	// a small window; a node that stays stale (a partially failed publish)
	// leaves the answer Mixed exactly as before.
	if len(answers) > 1 {
		coherenceBy := time.Now().Add(minDur(20*time.Millisecond, r.opt.RequestTimeout/4))
		for {
			maxGen := uint64(0)
			for _, a := range answers {
				if a.gen > maxGen {
					maxGen = a.gen
				}
			}
			var stale []int
			for i, a := range answers {
				if a.gen < maxGen {
					stale = append(stale, i)
				}
			}
			if len(stale) == 0 || !time.Now().Before(coherenceBy) {
				break
			}
			improved := false
			for _, i := range stale {
				id := answers[i].node
				legs++
				r.met.fanout.Add(1)
				r.met.refreshes.Add(1)
				legStart := r.rc.Now()
				ctx, cancel := context.WithDeadline(context.Background(), coherenceBy)
				rs, gen, err := clients[id].Recommend(ctx, b, k, link)
				cancel()
				ok := int64(1)
				if err != nil {
					ok = 0
					health[id].observeFailure(r.opt.FailThreshold)
				} else {
					health[id].observeSuccess()
				}
				r.rc.Record("fanout", obsv.CatRequest, legs, legStart,
					obsv.String("link", link),
					obsv.String("node", id),
					obsv.String("attempt", "refresh"),
					obsv.Int("ok", ok))
				if err == nil && gen > answers[i].gen {
					answers[i] = answer{id, rs, gen}
					improved = true
				}
			}
			if !improved {
				// The laggard's commit is in flight; give the swap one
				// scheduling quantum rather than spinning on it.
				time.Sleep(500 * time.Microsecond)
			}
		}
	}

	// Merge: answers in sorted node order (determinism), deduplicating
	// rules that arrived from two replicas of the same shard.  On a
	// mixed-generation race the newer generation's copy wins; RankTruncate
	// then ranks under the RankLess total order, so the result is
	// independent of which replicas happened to answer.
	sort.Slice(answers, func(i, j int) bool { return answers[i].node < answers[j].node })
	var matches []rules.Rule
	var genOf []uint64
	seen := make(map[string]int)
	for _, a := range answers {
		for _, rule := range a.rules {
			key := rule.Antecedent.Key() + "|" + rule.Consequent.Key()
			if j, ok := seen[key]; ok {
				if a.gen > genOf[j] {
					matches[j], genOf[j] = rule, a.gen
				}
				continue
			}
			seen[key] = len(matches)
			matches = append(matches, rule)
			genOf = append(genOf, a.gen)
		}
	}
	first := true
	for _, a := range answers {
		if first || a.gen < res.Generation {
			res.Generation = a.gen
		}
		if !first && a.gen != answers[0].gen {
			res.Mixed = true
		}
		first = false
	}
	for _, s := range shards {
		if !covered[s] {
			res.MissedShards = append(res.MissedShards, s)
		}
	}
	if len(res.MissedShards) > 0 {
		res.Partial = true
		partial = true
		r.met.partials.Add(1)
	}
	res.NodesQueried = len(asked)
	res.Retries = retries
	res.Hedges = hedges
	res.Rules = serve.RankTruncate(matches, k)
	return res, nil
}

// minDur returns the smaller of two durations.
func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(s []int) []int {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}
