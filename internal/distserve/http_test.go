package distserve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
)

// TestRouterMetricsPromNegotiation: the router's /metrics serves the
// Prometheus text exposition under Accept: text/plain — including per-node
// families gathered over the node protocol — and keeps JSON as the default.
// The router's recorder sees request, fan-out and publish spans.
func TestRouterMetricsPromNegotiation(t *testing.T) {
	rec := obsv.NewCollector(obsv.ClockReal)
	router, _ := httpFleet(t, 2, Options{Shards: 16, Recorder: rec})
	if _, err := router.Publish(synthRules(200, 40, 30), true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := router.Recommend([]itemset.Item{1, 2, 3}, 5); err != nil {
		t.Fatalf("recommend: %v", err)
	}

	front := httptest.NewServer(router.Handler(nil))
	t.Cleanup(front.Close)
	req, _ := http.NewRequest(http.MethodGet, front.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := front.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obsv.ContentType {
		t.Fatalf("Content-Type %q, want %q", ct, obsv.ContentType)
	}
	var sb strings.Builder
	if _, err := io.Copy(&sb, resp.Body); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# TYPE parapriori_router_queries_total counter",
		"parapriori_router_queries_total 1\n",
		"parapriori_cluster_generation 1\n",
		"parapriori_nodes 2\n",
		"parapriori_nodes_up 2\n",
		"# TYPE parapriori_router_query_latency_seconds histogram",
		"parapriori_router_query_latency_seconds_count 1\n",
		`parapriori_node_up{node="`,
		`parapriori_node_queries_total{node="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// JSON stays the default view.
	jr, err := front.Client().Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Body.Close()
	var fm FleetMetrics
	if err := json.NewDecoder(jr.Body).Decode(&fm); err != nil {
		t.Fatalf("JSON view: %v", err)
	}
	if fm.Queries != 1 || fm.NumNodes != 2 {
		t.Fatalf("JSON view: %+v", fm)
	}

	// Span census: one request span, ≥1 fan-out span, prepare + commit.
	tr := rec.Trace()
	var reqs, fans, preps, commits int
	for _, sp := range tr.Spans {
		switch {
		case sp.Cat == obsv.CatRequest && sp.Name == "recommend":
			reqs++
		case sp.Cat == obsv.CatRequest && sp.Name == "fanout":
			fans++
		case sp.Cat == obsv.CatPublish && sp.Name == "prepare":
			preps++
		case sp.Cat == obsv.CatPublish && sp.Name == "commit":
			commits++
		}
	}
	if reqs != 1 || fans < 1 || preps != 1 || commits != 1 {
		t.Fatalf("spans: %d recommend (want 1), %d fanout (want ≥1), %d prepare, %d commit (want 1 each)",
			reqs, fans, preps, commits)
	}
}

// httpFleet spins up n node processes as httptest servers and a router
// driving them over real HTTP.
func httpFleet(t *testing.T, n int, opt Options) (*Router, []*Node) {
	t.Helper()
	opt = opt.WithDefaults()
	clients := make([]Client, n)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		node := NewNode(fmt.Sprintf("httpnode%02d", i), opt.Node)
		ts := httptest.NewServer(NodeHandler(node))
		t.Cleanup(ts.Close)
		t.Cleanup(node.Close)
		nodes[i] = node
		clients[i] = NewHTTPClient(ts.URL)
	}
	r, err := NewRouter(clients, opt)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return r, nodes
}

// TestHTTPEndToEnd runs the full protocol over real HTTP — publish, delta
// publish, scatter-gather queries through the router's own HTTP handler —
// and checks the answers stay bit-identical to the single-node baseline.
// JSON's shortest-round-trip float encoding makes that exactness possible.
func TestHTTPEndToEnd(t *testing.T) {
	v1 := synthRules(200, 40, 30)
	v2 := mutate(v1)
	opt := Options{Shards: 16}
	router, _ := httpFleet(t, 2, opt)

	if _, err := router.Publish(v1, true); err != nil {
		t.Fatalf("publish over HTTP: %v", err)
	}

	// The reload callback flips to v2 — exercised through POST /reload.
	current := v1
	front := httptest.NewServer(router.Handler(func() ([]rules.Rule, error) { return current, nil }))
	t.Cleanup(front.Close)

	queryFront := func(basket []itemset.Item, k int) ([]rules.Rule, map[string]any) {
		t.Helper()
		items := make([]string, len(basket))
		for i, it := range basket {
			items[i] = strconv.Itoa(int(it))
		}
		resp, err := http.Get(front.URL + "/recommend?items=" + strings.Join(items, ",") + "&k=" + strconv.Itoa(k))
		if err != nil {
			t.Fatalf("GET /recommend: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /recommend: HTTP %d", resp.StatusCode)
		}
		var body struct {
			Generation uint64         `json:"generation"`
			Rules      []ruleWire     `json:"rules"`
			Partial    bool           `json:"partial"`
			Extra      map[string]any `json:"-"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("decode /recommend: %v", err)
		}
		if body.Partial {
			t.Fatalf("unexpected partial over HTTP")
		}
		return fromWireRules(body.Rules), map[string]any{"generation": body.Generation}
	}

	srv1 := singleNode(t, v1, opt)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 25; i++ {
		basket := randBasket(rng, 40)
		want, _ := srv1.Recommend(basket, 10)
		got, meta := queryFront(basket, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("HTTP result mismatch for %v:\n got %v\n want %v", basket, got, want)
		}
		if meta["generation"].(uint64) != 1 {
			t.Fatalf("generation %v, want 1", meta["generation"])
		}
	}

	// Delta publish via POST /reload.
	current = v2
	resp, err := http.Post(front.URL+"/reload", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /reload: %v", err)
	}
	var stats PublishStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("decode /reload: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || stats.Gen != 2 || stats.Full {
		t.Fatalf("reload: HTTP %d, stats %+v", resp.StatusCode, stats)
	}

	srv2 := singleNode(t, v2, opt)
	for i := 0; i < 25; i++ {
		basket := randBasket(rng, 40)
		want, _ := srv2.Recommend(basket, 10)
		got, _ := queryFront(basket, 10)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-reload HTTP mismatch for %v", basket)
		}
	}

	// Control-plane and observability endpoints respond sensibly.
	for _, path := range []string{"/healthz", "/metrics", "/placement"} {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var v map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d (%v)", path, resp.StatusCode, v)
		}
	}
	var fm FleetMetrics
	mresp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	if err := json.NewDecoder(mresp.Body).Decode(&fm); err != nil {
		t.Fatalf("decode fleet metrics: %v", err)
	}
	mresp.Body.Close()
	if fm.NodesUp != 2 || fm.Generation != 2 || fm.NumRules != len(serveRules(v2)) {
		t.Fatalf("fleet metrics over HTTP: %+v", fm)
	}
}

// serveRules mirrors the index's routable-rule filter: groups with empty
// antecedents never land on any shard.
func serveRules(rs []rules.Rule) []rules.Rule {
	var out []rules.Rule
	for _, r := range rs {
		if len(r.Antecedent) > 0 {
			out = append(out, r)
		}
	}
	return out
}
