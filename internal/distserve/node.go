package distserve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"parapriori/internal/itemset"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// GroupUpdate ships one antecedent group to a node: the shard it lives on
// and its rules in rank order (the antecedent is Rules[0].Antecedent).
type GroupUpdate struct {
	Shard int
	Rules []rules.Rule
}

// GroupRef names a group for removal: its shard and antecedent.
type GroupRef struct {
	Shard int
	Ant   itemset.Itemset
}

// PrepareRequest is phase one of a publish, addressed to one node: the new
// generation, the shards the node owns after the cut-over, and the delta to
// apply to its group store.  Full requests drop all prior state first (the
// full-rebuild path, and the recovery path for a node whose state the
// router no longer trusts).
type PrepareRequest struct {
	Gen     uint64
	Full    bool
	Owned   []int
	Upserts []GroupUpdate
	Removes []GroupRef
}

// Node is one member of the serving fleet.  It owns a subset of the shards,
// keeps their antecedent groups, and serves basket queries from a
// serve.Server built over them — the single-node snapshot/cache/metrics
// machinery, one instance per node.  Control-plane calls (Prepare, Commit)
// take a mutex; the query path stays lock-free through the serve snapshot.
type Node struct {
	id  string
	opt serve.Options
	srv *serve.Server
	gen atomic.Uint64 // committed cluster generation

	mu     sync.Mutex
	groups map[int]map[string][]rules.Rule // shard → group key → rank-sorted rules
	owned  []int
	stage  *stagedState
}

// stagedState is a prepared-but-uncommitted generation: the group store and
// the index already built from it, waiting for the router's Commit.
type stagedState struct {
	gen    uint64
	groups map[int]map[string][]rules.Rule
	owned  []int
	idx    *serve.Index
}

// NewNode creates an empty node.  It answers ErrNoSnapshot until the first
// Prepare/Commit lands.  Call Close to stop its serving worker pool.
func NewNode(id string, opt serve.Options) *Node {
	opt = opt.WithDefaults()
	return &Node{
		id:     id,
		opt:    opt,
		srv:    serve.NewServer(opt),
		groups: map[int]map[string][]rules.Rule{},
	}
}

// ID returns the node's identity — the string placement hashes on.
func (n *Node) ID() string { return n.id }

// Gen returns the committed cluster generation, 0 before the first commit.
func (n *Node) Gen() uint64 { return n.gen.Load() }

// Server exposes the node's single-node serving surface (HTTP handler,
// metrics); the distributed control plane stays on the Node itself.
func (n *Node) Server() *serve.Server { return n.srv }

// Metrics returns the node's serving metrics.
func (n *Node) Metrics() serve.Metrics { return n.srv.Metrics() }

// Shards returns the node's committed owned shards, sorted.
func (n *Node) Shards() []int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]int(nil), n.owned...)
}

// NumRules returns the number of rules in the committed group store.
func (n *Node) NumRules() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, byKey := range n.groups {
		for _, rs := range byKey {
			total += len(rs)
		}
	}
	return total
}

// Close stops the node's serving worker pool.
func (n *Node) Close() { n.srv.Close() }

// Recommend answers a basket query against the committed snapshot and
// reports the cluster generation it served from.  It is exactly the node's
// serve.Server.Recommend — cache, worker pool, metrics and all.
func (n *Node) Recommend(basket []itemset.Item, k int) ([]rules.Rule, uint64, error) {
	// The generation comes from the served snapshot itself, not n.gen: a
	// commit racing this query must never relabel old content with the new
	// generation (the router's coherence refresh trusts this label).
	return n.srv.RecommendGen(basket, k)
}

// RecommendLink is Recommend carrying the router's span link through to the
// node's request span and latency exemplar, so a slow fan-out leg resolves
// in the node's flight ring under the same ID the router recorded.
func (n *Node) RecommendLink(basket []itemset.Item, k int, link string) ([]rules.Rule, uint64, error) {
	return n.srv.RecommendTraced(basket, k, link)
}

// Prepare stages the next generation: it applies the delta to a copy of the
// committed group store (restricted to the shards the node owns after the
// cut-over), builds the new index off the query path, and holds both until
// Commit.  A Prepare at or below the committed generation is rejected; a
// newer Prepare replaces any staged one (the abort path: an aborted
// publish's staged state is simply superseded).  When nothing changed for
// this node, the committed index is reused instead of rebuilt, so a
// no-op-for-this-node delta publish costs one map copy.
func (n *Node) Prepare(req PrepareRequest) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if req.Gen <= n.gen.Load() {
		return fmt.Errorf("distserve: node %s: stale prepare gen %d (committed %d)", n.id, req.Gen, n.gen.Load())
	}
	ownedNew := append([]int(nil), req.Owned...)
	sort.Ints(ownedNew)
	ownedSet := make(map[int]bool, len(ownedNew))
	for _, s := range ownedNew {
		ownedSet[s] = true
	}

	// Reuse path: same shard set, no content change — keep the live index.
	if !req.Full && len(req.Upserts) == 0 && len(req.Removes) == 0 && equalInts(ownedNew, n.owned) {
		if idx := n.srv.Index(); idx != nil {
			n.stage = &stagedState{gen: req.Gen, groups: n.groups, owned: ownedNew, idx: idx}
			return nil
		}
	}

	// Copy the committed store, dropping shards no longer owned.  Inner
	// maps are copied shallowly; rule slices are immutable once shipped.
	next := make(map[int]map[string][]rules.Rule, len(ownedNew))
	if !req.Full {
		for _, s := range ownedNew {
			if byKey, ok := n.groups[s]; ok {
				cp := make(map[string][]rules.Rule, len(byKey))
				for k, v := range byKey {
					cp[k] = v
				}
				next[s] = cp
			}
		}
	}
	for _, s := range ownedNew {
		if next[s] == nil {
			next[s] = map[string][]rules.Rule{}
		}
	}

	for _, up := range req.Upserts {
		if !ownedSet[up.Shard] {
			return fmt.Errorf("distserve: node %s: upsert for unowned shard %d", n.id, up.Shard)
		}
		if len(up.Rules) == 0 {
			return fmt.Errorf("distserve: node %s: empty group upsert on shard %d", n.id, up.Shard)
		}
		next[up.Shard][up.Rules[0].Antecedent.Key()] = up.Rules
	}
	for _, rm := range req.Removes {
		if byKey, ok := next[rm.Shard]; ok {
			delete(byKey, rm.Ant.Key())
		}
	}

	n.stage = &stagedState{gen: req.Gen, groups: next, owned: ownedNew, idx: serve.NewIndex(flatten(next), n.opt)}
	return nil
}

// Commit cuts the traffic over to the generation staged by Prepare: the
// staged index becomes the serving snapshot (atomically, mid-flight queries
// finish on the old one) and the staged group store becomes the committed
// one.  Committing a generation that was never staged is an error.
func (n *Node) Commit(gen uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.stage == nil || n.stage.gen != gen {
		return fmt.Errorf("distserve: node %s: commit gen %d without matching prepare", n.id, gen)
	}
	if !n.srv.PublishAt(n.stage.idx, gen) {
		return fmt.Errorf("distserve: node %s: generation %d not above serving snapshot", n.id, gen)
	}
	n.groups = n.stage.groups
	n.owned = n.stage.owned
	n.gen.Store(gen)
	n.stage = nil
	return nil
}

// flatten lists every rule of a group store, iterating shards and keys in
// sorted order so the result — and everything built from it — is
// deterministic.
func flatten(groups map[int]map[string][]rules.Rule) []rules.Rule {
	shards := make([]int, 0, len(groups))
	for s := range groups {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var out []rules.Rule
	for _, s := range shards {
		byKey := groups[s]
		keys := make([]string, 0, len(byKey))
		for k := range byKey {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, byKey[k]...)
		}
	}
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
