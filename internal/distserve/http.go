package distserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// The HTTP transport runs the same node protocol as LocalClient between real
// processes: cmd/ruleserver -node exposes NodeHandler, cmd/ruleserver
// -router drives HTTPClients.  Go's JSON encoder emits the shortest float64
// representation that round-trips exactly, so quality measures survive the
// wire bit-for-bit and the distributed ranking stays identical to the
// in-process one.

// ruleWire is the wire form of a rule, field-compatible with the single-node
// serving API's rule encoding.
type ruleWire struct {
	Antecedent []itemset.Item `json:"antecedent"`
	Consequent []itemset.Item `json:"consequent"`
	Count      int64          `json:"count"`
	Support    float64        `json:"support"`
	Confidence float64        `json:"confidence"`
	Lift       float64        `json:"lift"`
	Leverage   float64        `json:"leverage"`
}

func toWire(r rules.Rule) ruleWire {
	return ruleWire{
		Antecedent: r.Antecedent,
		Consequent: r.Consequent,
		Count:      r.Count,
		Support:    r.Support,
		Confidence: r.Confidence,
		Lift:       r.Lift,
		Leverage:   r.Leverage,
	}
}

func fromWire(w ruleWire) rules.Rule {
	return rules.Rule{
		Antecedent: itemset.Itemset(w.Antecedent),
		Consequent: itemset.Itemset(w.Consequent),
		Count:      w.Count,
		Support:    w.Support,
		Confidence: w.Confidence,
		Lift:       w.Lift,
		Leverage:   w.Leverage,
	}
}

func toWireRules(rs []rules.Rule) []ruleWire {
	out := make([]ruleWire, len(rs))
	for i, r := range rs {
		out[i] = toWire(r)
	}
	return out
}

func fromWireRules(ws []ruleWire) []rules.Rule {
	if len(ws) == 0 {
		// nil, not an empty slice: decoded answers must be bit-identical
		// to the in-process ones, which return nil for "no matches".
		return nil
	}
	out := make([]rules.Rule, len(ws))
	for i, w := range ws {
		out[i] = fromWire(w)
	}
	return out
}

// groupUpdateWire / groupRefWire / prepareWire are the JSON forms of the
// publish protocol messages.
type groupUpdateWire struct {
	Shard int        `json:"shard"`
	Rules []ruleWire `json:"rules"`
}

type groupRefWire struct {
	Shard int            `json:"shard"`
	Ant   []itemset.Item `json:"antecedent"`
}

type prepareWire struct {
	Gen     uint64            `json:"generation"`
	Full    bool              `json:"full"`
	Owned   []int             `json:"owned"`
	Upserts []groupUpdateWire `json:"upserts,omitempty"`
	Removes []groupRefWire    `json:"removes,omitempty"`
}

func toPrepareWire(req PrepareRequest) prepareWire {
	w := prepareWire{Gen: req.Gen, Full: req.Full, Owned: req.Owned}
	for _, up := range req.Upserts {
		w.Upserts = append(w.Upserts, groupUpdateWire{Shard: up.Shard, Rules: toWireRules(up.Rules)})
	}
	for _, rm := range req.Removes {
		w.Removes = append(w.Removes, groupRefWire{Shard: rm.Shard, Ant: rm.Ant})
	}
	return w
}

func fromPrepareWire(w prepareWire) PrepareRequest {
	req := PrepareRequest{Gen: w.Gen, Full: w.Full, Owned: w.Owned}
	for _, up := range w.Upserts {
		req.Upserts = append(req.Upserts, GroupUpdate{Shard: up.Shard, Rules: fromWireRules(up.Rules)})
	}
	for _, rm := range w.Removes {
		req.Removes = append(req.Removes, GroupRef{Shard: rm.Shard, Ant: itemset.New(rm.Ant...)})
	}
	return req
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // response already committed; nothing to do on error
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseItems parses a comma-separated non-negative item list ("1,2,3").
func parseItems(raw string) ([]itemset.Item, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("empty items")
	}
	parts := strings.Split(raw, ",")
	out := make([]itemset.Item, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad item %q", p)
		}
		out = append(out, itemset.Item(v))
	}
	return out, nil
}

// NodeHandler is a node process's HTTP surface: the control-plane endpoints
//
//	POST /shard/prepare   stage a publish generation (prepareWire)
//	POST /shard/commit    cut over to a staged generation ({"generation": n})
//	GET  /shard/state     node identity, generation, owned shards
//
// plus the node's full single-node serving surface (GET /recommend, /rules,
// /healthz, /metrics) mounted at the root — a node answers basket queries
// over its own shards exactly like a standalone ruleserver over a small
// rule set, which is what the router's scatter-gather relies on.
func NodeHandler(n *Node) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", n.Server().Handler(nil))
	mux.HandleFunc("/shard/prepare", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var pw prepareWire
		if err := json.NewDecoder(r.Body).Decode(&pw); err != nil {
			writeError(w, http.StatusBadRequest, "prepare: %v", err)
			return
		}
		if err := n.Prepare(fromPrepareWire(pw)); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"staged": pw.Gen})
	})
	mux.HandleFunc("/shard/commit", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		var body struct {
			Gen uint64 `json:"generation"`
		}
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, "commit: %v", err)
			return
		}
		if err := n.Commit(body.Gen); err != nil {
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"generation": body.Gen})
	})
	mux.HandleFunc("/shard/state", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"id":         n.ID(),
			"generation": n.Gen(),
			"shards":     n.Shards(),
			"num_rules":  n.NumRules(),
		})
	})
	return mux
}

// HTTPClient speaks the node protocol to a ruleserver -node process.  Its ID
// is the node's base URL, so a fixed node list gives the same rendezvous
// placement on every router start.  Every call runs under its context's
// deadline; calls whose context carries none get the client's default
// budget.  Deadline misses surface as *TimeoutError (the node may be alive
// but slow), other transport failures as ErrNodeDown.
type HTTPClient struct {
	base   string
	budget time.Duration
	hc     *http.Client
}

// NewHTTPClient builds a client for a node at baseURL (e.g.
// "http://host:9001"; a missing scheme defaults to http, a trailing slash is
// trimmed) with the default call budget (DefaultRequestTimeout).
func NewHTTPClient(baseURL string) *HTTPClient {
	return NewHTTPClientBudget(baseURL, DefaultRequestTimeout)
}

// NewHTTPClientBudget is NewHTTPClient with an explicit default budget for
// calls whose context carries no deadline (<= 0 means no default — such
// calls then run unbounded).  The router always supplies per-call
// deadlines from Options.RequestTimeout; the budget is the floor for
// direct users of the client.
func NewHTTPClientBudget(baseURL string, budget time.Duration) *HTTPClient {
	base := strings.TrimRight(baseURL, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &HTTPClient{base: base, budget: budget, hc: &http.Client{}}
}

// ID implements Client.
func (c *HTTPClient) ID() string { return c.base }

// withBudget applies the default budget to contexts without a deadline.
func (c *HTTPClient) withBudget(ctx context.Context) (context.Context, context.CancelFunc, time.Duration) {
	if dl, ok := ctx.Deadline(); ok {
		return ctx, func() {}, time.Until(dl)
	}
	if c.budget <= 0 {
		return ctx, func() {}, 0
	}
	ctx, cancel := context.WithTimeout(ctx, c.budget)
	return ctx, cancel, c.budget
}

// classify turns a transport error into the router's failure taxonomy.
func (c *HTTPClient) classify(err error, budget time.Duration) error {
	var ne net.Error
	if errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()) {
		return &TimeoutError{Node: c.base, Budget: budget, Err: err}
	}
	return fmt.Errorf("%w: %v", ErrNodeDown, err)
}

func (c *HTTPClient) do(ctx context.Context, method, path string, in, out any) error {
	ctx, cancel, budget := c.withBudget(ctx)
	defer cancel()
	var body io.Reader
	if in != nil {
		payload, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return c.classify(err, budget)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("distserve: %s%s: HTTP %d: %s", c.base, path, resp.StatusCode, strings.TrimSpace(string(b)))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return c.classify(err, budget) // a deadline can also fire mid-body
	}
	return nil
}

// Recommend implements Client via the node's GET /recommend.
func (c *HTTPClient) Recommend(ctx context.Context, basket itemset.Itemset, k int, link string) ([]rules.Rule, uint64, error) {
	items := make([]string, len(basket))
	for i, it := range basket {
		items[i] = strconv.Itoa(int(it))
	}
	var resp struct {
		Generation uint64     `json:"generation"`
		Rules      []ruleWire `json:"rules"`
	}
	path := "/recommend?items=" + url.QueryEscape(strings.Join(items, ",")) + "&k=" + strconv.Itoa(k)
	if link != "" {
		path += "&link=" + url.QueryEscape(link)
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &resp); err != nil {
		return nil, 0, err
	}
	return fromWireRules(resp.Rules), resp.Generation, nil
}

// Prepare implements Client via POST /shard/prepare.
func (c *HTTPClient) Prepare(ctx context.Context, req PrepareRequest) error {
	return c.do(ctx, http.MethodPost, "/shard/prepare", toPrepareWire(req), nil)
}

// Commit implements Client via POST /shard/commit.
func (c *HTTPClient) Commit(ctx context.Context, gen uint64) error {
	return c.do(ctx, http.MethodPost, "/shard/commit", map[string]uint64{"generation": gen}, nil)
}

// Metrics implements Client via GET /metrics.
func (c *HTTPClient) Metrics(ctx context.Context) (serve.Metrics, error) {
	var m serve.Metrics
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &m)
	return m, err
}

// Handler is the router process's HTTP surface:
//
//	GET  /recommend?items=1,2,3&k=10   distributed top-K (scatter-gather)
//	GET  /healthz                      liveness, generation, nodes up
//	GET  /metrics                      FleetMetrics as JSON; Prometheus text
//	                                   exposition when Accept: text/plain
//	GET  /debug/flight                 flight-ring dump: recent spans as
//	                                   Perfetto JSON (?format=attrib for the
//	                                   attribution table)
//	GET  /placement                    shard → node assignment
//	POST /reload[?full=1]              rebuild rules via the callback and
//	                                   publish cluster-wide (delta by default)
//
// reload supplies a freshly generated rule set (typically re-reading the
// mined result file); nil disables /reload with 501.
func (r *Router) Handler(reload func() ([]rules.Rule, error)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/recommend", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		basket, err := parseItems(req.URL.Query().Get("items"))
		if err != nil {
			writeError(w, http.StatusBadRequest, "items: %v", err)
			return
		}
		k := 0
		if raw := req.URL.Query().Get("k"); raw != "" {
			k, err = strconv.Atoi(raw)
			if err != nil || k < 0 {
				writeError(w, http.StatusBadRequest, "bad k %q", raw)
				return
			}
		}
		res, err := r.Recommend(basket, k)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Generation   uint64         `json:"generation"`
			Basket       []itemset.Item `json:"basket"`
			Rules        []ruleWire     `json:"rules"`
			Mixed        bool           `json:"mixed,omitempty"`
			Partial      bool           `json:"partial,omitempty"`
			MissedShards []int          `json:"missed_shards,omitempty"`
			NodesQueried int            `json:"nodes_queried"`
			Retries      int            `json:"retries,omitempty"`
			Hedges       int            `json:"hedges,omitempty"`
		}{
			Generation:   res.Generation,
			Basket:       itemset.New(basket...),
			Rules:        toWireRules(res.Rules),
			Mixed:        res.Mixed,
			Partial:      res.Partial,
			MissedShards: res.MissedShards,
			NodesQueried: res.NodesQueried,
			Retries:      res.Retries,
			Hedges:       res.Hedges,
		})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		m := r.Metrics()
		status := "ok"
		code := http.StatusOK
		switch {
		case m.Generation == 0:
			status, code = "empty", http.StatusServiceUnavailable
		case m.NodesUp < m.NumNodes:
			status = "degraded"
		}
		health := make(map[string]string)
		for id, st := range r.Health() {
			health[id] = st.String()
		}
		writeJSON(w, code, map[string]any{
			"status":     status,
			"generation": m.Generation,
			"nodes_up":   m.NodesUp,
			"num_nodes":  m.NumNodes,
			"health":     health,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		if serve.WantsProm(req) {
			w.Header().Set("Content-Type", obsv.ContentType)
			_, _ = w.Write(r.reg.Gather())
			return
		}
		writeJSON(w, http.StatusOK, r.Metrics())
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		serve.WriteFlight(w, r.flight, req.URL.Query().Get("format"))
	})
	mux.HandleFunc("/placement", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"shards":    r.opt.Shards,
			"replicas":  r.opt.Replicas,
			"nodes":     r.NodeIDs(),
			"placement": r.Placement(),
			"replica_sets": func() [][]string {
				if r.opt.Replicas > 1 {
					return r.Replicas()
				}
				return nil
			}(),
		})
	})
	mux.HandleFunc("/reload", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "use POST")
			return
		}
		if reload == nil {
			writeError(w, http.StatusNotImplemented, "no reload source configured")
			return
		}
		rs, err := reload()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "reload: %v", err)
			return
		}
		full := req.URL.Query().Get("full") != ""
		stats, err := r.Publish(rs, full)
		if err != nil {
			writeError(w, http.StatusBadGateway, "publish: %v", err)
			return
		}
		writeJSON(w, http.StatusOK, stats)
	})
	return mux
}
