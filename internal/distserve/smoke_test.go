package distserve

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"parapriori/internal/serve"
)

// TestDistServeSmoke is the CI race gate for the distributed tier: a router
// and two in-process nodes serve concurrent basket queries while a delta
// publish cuts over mid-flight.  It runs in -short mode and must stay fast;
// its job is exercising every cross-goroutine edge (scatter-gather fan-out,
// two-phase publish, snapshot swap, metrics) under the race detector.
func TestDistServeSmoke(t *testing.T) {
	v1 := synthRules(150, 40, 20)
	v2 := mutate(v1)
	opt := Options{Shards: 16, Node: serve.Options{Workers: 2}}
	c := mustCluster(t, 2, opt)
	if _, err := c.Router.Publish(v1, true); err != nil {
		t.Fatalf("publish v1: %v", err)
	}

	srv1 := singleNode(t, v1, opt)
	srv2 := singleNode(t, v2, opt)

	const workers = 4
	const queriesPerWorker = 50
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() { //checkinv:allow rawchan — test load goroutines, joined by WaitGroup
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < queriesPerWorker; i++ {
				basket := randBasket(rng, 40)
				got, err := c.Router.Recommend(basket, 10)
				if err != nil {
					errs[w] = err
					return
				}
				// Mid-publish a query may see either generation — but it
				// must exactly match one of them.
				want1, _ := srv1.Recommend(basket, 10)
				want2, _ := srv2.Recommend(basket, 10)
				if !reflect.DeepEqual(got.Rules, want1) && !reflect.DeepEqual(got.Rules, want2) {
					t.Errorf("worker %d: basket %v matches neither generation", w, basket)
					return
				}
			}
		}()
	}
	// The delta publish lands while the workers hammer the router.
	if _, err := c.Router.Publish(v2, false); err != nil {
		t.Fatalf("publish v2: %v", err)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Settled state: every answer is the v2 answer, and the fleet metrics
	// add up.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 20; i++ {
		assertMatch(t, c, srv2, randBasket(rng, 40), 10, "settled")
	}
	m := c.Router.Metrics()
	if m.NodesUp != 2 || m.Generation != 2 {
		t.Fatalf("fleet metrics: %+v", m)
	}
	if m.Queries == 0 || m.FanoutPerQuery <= 0 {
		t.Fatalf("router counters did not move: %+v", m)
	}
}
