package distserve

import (
	"errors"
	"fmt"

	"sync/atomic"

	"parapriori/internal/itemset"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// ErrNodeDown reports a node the router could not reach.  The router treats
// any transport error the same way; this sentinel is what the in-process
// client returns when a test (or the load generator) takes a node down.
var ErrNodeDown = errors.New("distserve: node down")

// Client is the router's transport to one node.  Two implementations exist:
// LocalClient drives an in-process Node directly (tests, experiments, and
// single-binary deployments), and HTTPClient speaks to a ruleserver -node
// process.  All methods must be safe for concurrent use.
type Client interface {
	// ID returns the node's identity — the string placement hashes on.
	// For HTTP nodes it is the base URL, so a fixed node list always
	// yields the same placement.
	ID() string
	// Recommend runs a basket query on the node, returning the node's
	// top-K and the cluster generation it served from.
	Recommend(basket itemset.Itemset, k int) ([]rules.Rule, uint64, error)
	// Prepare stages a publish generation on the node.
	Prepare(req PrepareRequest) error
	// Commit cuts the node over to a staged generation.
	Commit(gen uint64) error
	// Metrics fetches the node's serving metrics.
	Metrics() (serve.Metrics, error)
}

// LocalClient is the in-process transport: direct calls into a Node, plus a
// kill switch so tests and the load generator can exercise the router's
// degraded paths deterministically.
type LocalClient struct {
	node *Node
	down atomic.Bool
}

// NewLocalClient wraps a node in the Client interface.
func NewLocalClient(n *Node) *LocalClient { return &LocalClient{node: n} }

// SetDown makes every subsequent call fail with ErrNodeDown (true) or
// restores the node (false).  The node's state is untouched — a revived
// node still serves its last committed generation, exactly like a process
// that was partitioned away and came back.
func (c *LocalClient) SetDown(down bool) { c.down.Store(down) }

// Node returns the wrapped node.
func (c *LocalClient) Node() *Node { return c.node }

// ID implements Client.
func (c *LocalClient) ID() string { return c.node.ID() }

// Recommend implements Client.
func (c *LocalClient) Recommend(basket itemset.Itemset, k int) ([]rules.Rule, uint64, error) {
	if c.down.Load() {
		return nil, 0, fmt.Errorf("%w: %s", ErrNodeDown, c.node.ID())
	}
	return c.node.Recommend(basket, k)
}

// Prepare implements Client.
func (c *LocalClient) Prepare(req PrepareRequest) error {
	if c.down.Load() {
		return fmt.Errorf("%w: %s", ErrNodeDown, c.node.ID())
	}
	return c.node.Prepare(req)
}

// Commit implements Client.
func (c *LocalClient) Commit(gen uint64) error {
	if c.down.Load() {
		return fmt.Errorf("%w: %s", ErrNodeDown, c.node.ID())
	}
	return c.node.Commit(gen)
}

// Metrics implements Client.
func (c *LocalClient) Metrics() (serve.Metrics, error) {
	if c.down.Load() {
		return serve.Metrics{}, fmt.Errorf("%w: %s", ErrNodeDown, c.node.ID())
	}
	return c.node.Metrics(), nil
}

// Cluster is an in-process serving fleet: n nodes and a router wired with
// LocalClients.  It is how the tests and the load-generator experiment run
// a whole multi-node deployment inside one process under -race — the
// emulated-cluster spirit of the repo, applied to the serving tier.
type Cluster struct {
	Router  *Router
	Nodes   []*Node
	Clients []*LocalClient
}

// NewCluster builds n nodes ("node00"…) and a router over them.  Publish a
// rule set through c.Router to start serving.
func NewCluster(n int, opt Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("distserve: cluster needs at least 1 node, got %d", n)
	}
	opt = opt.WithDefaults()
	c := &Cluster{}
	clients := make([]Client, n)
	for i := 0; i < n; i++ {
		node := NewNode(fmt.Sprintf("node%02d", i), opt.Node)
		lc := NewLocalClient(node)
		c.Nodes = append(c.Nodes, node)
		c.Clients = append(c.Clients, lc)
		clients[i] = lc
	}
	r, err := NewRouter(clients, opt)
	if err != nil {
		for _, node := range c.Nodes {
			node.Close()
		}
		return nil, err
	}
	c.Router = r
	return c, nil
}

// Close stops every node's worker pool.
func (c *Cluster) Close() {
	for _, n := range c.Nodes {
		n.Close()
	}
}
