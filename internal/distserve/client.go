package distserve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sync/atomic"

	"parapriori/internal/itemset"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// ErrNodeDown reports a node the router could not reach.  The router treats
// any transport error the same way; this sentinel is what the in-process
// client returns when a test (or the load generator) takes a node down.
var ErrNodeDown = errors.New("distserve: node down")

// TimeoutError reports a call that exceeded its deadline: the node may be
// alive but slow, which is a different signal from a refused connection.
// It still unwraps to ErrNodeDown so every existing "treat transport errors
// as a missing answer" path keeps working; callers that care about the
// distinction use errors.As.
type TimeoutError struct {
	Node   string        // node ID the call was addressed to
	Budget time.Duration // deadline budget the call ran under (0 if unknown)
	Err    error         // underlying context or transport error
}

func (e *TimeoutError) Error() string {
	if e.Budget > 0 {
		return fmt.Sprintf("distserve: %s timed out after %v: %v", e.Node, e.Budget, e.Err)
	}
	return fmt.Sprintf("distserve: %s timed out: %v", e.Node, e.Err)
}

// Unwrap makes the timeout match both its cause and errors.Is(err,
// ErrNodeDown), keeping timeouts inside the router's failure handling.
func (e *TimeoutError) Unwrap() []error { return []error{e.Err, ErrNodeDown} }

// Client is the router's transport to one node.  Two implementations exist:
// LocalClient drives an in-process Node directly (tests, experiments, and
// single-binary deployments), and HTTPClient speaks to a ruleserver -node
// process.  All methods must be safe for concurrent use and must honor the
// context's deadline and cancellation — the router budgets every fan-out
// leg and abandons legs it no longer needs.
type Client interface {
	// ID returns the node's identity — the string placement hashes on.
	// For HTTP nodes it is the base URL, so a fixed node list always
	// yields the same placement.
	ID() string
	// Recommend runs a basket query on the node, returning the node's
	// top-K and the cluster generation it served from.  link is the
	// router's per-request span link; the node stamps its own request
	// span (and any latency exemplar) with it, so a slow distributed
	// query resolves across tiers through one shared ID.  Empty lets the
	// node assign its own.
	Recommend(ctx context.Context, basket itemset.Itemset, k int, link string) ([]rules.Rule, uint64, error)
	// Prepare stages a publish generation on the node.
	Prepare(ctx context.Context, req PrepareRequest) error
	// Commit cuts the node over to a staged generation.
	Commit(ctx context.Context, gen uint64) error
	// Metrics fetches the node's serving metrics.  It doubles as the
	// failure detector's probe.
	Metrics(ctx context.Context) (serve.Metrics, error)
}

// LocalClient is the in-process transport: direct calls into a Node, plus a
// kill switch and a delay injector so tests and the load generator can
// exercise the router's degraded and straggler paths deterministically.
type LocalClient struct {
	node  *Node
	down  atomic.Bool
	delay atomic.Int64 // nanoseconds added before every call
}

// NewLocalClient wraps a node in the Client interface.
func NewLocalClient(n *Node) *LocalClient { return &LocalClient{node: n} }

// SetDown makes every subsequent call fail with ErrNodeDown (true) or
// restores the node (false).  The node's state is untouched — a revived
// node still serves its last committed generation, exactly like a process
// that was partitioned away and came back.
func (c *LocalClient) SetDown(down bool) { c.down.Store(down) }

// SetDelay makes every subsequent call stall for d before executing — the
// in-process stand-in for a straggling node.  If the context's deadline
// expires during the stall, the call fails with a *TimeoutError, exactly
// like a slow HTTP node would.  Zero restores normal speed.
func (c *LocalClient) SetDelay(d time.Duration) { c.delay.Store(int64(d)) }

// Node returns the wrapped node.
func (c *LocalClient) Node() *Node { return c.node }

// ID implements Client.
func (c *LocalClient) ID() string { return c.node.ID() }

// gate applies the down switch and the injected delay; it returns the first
// error the call must fail with, or nil to proceed.
func (c *LocalClient) gate(ctx context.Context) error {
	if c.down.Load() {
		return fmt.Errorf("%w: %s", ErrNodeDown, c.node.ID())
	}
	if d := time.Duration(c.delay.Load()); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select { //checkinv:allow rawchan injected straggler delay races the caller's deadline, real-clock by design
		case <-t.C: //checkinv:allow rawchan the injected delay elapsing
		case <-ctx.Done(): //checkinv:allow rawchan the caller's deadline winning the race
			budget := time.Duration(0)
			if dl, ok := ctx.Deadline(); ok {
				budget = time.Until(dl) + d // approximate: the stall consumed the budget
				if budget < 0 {
					budget = 0
				}
			}
			return &TimeoutError{Node: c.node.ID(), Budget: budget, Err: ctx.Err()}
		}
		if c.down.Load() {
			return fmt.Errorf("%w: %s", ErrNodeDown, c.node.ID())
		}
	}
	if err := ctx.Err(); err != nil {
		return &TimeoutError{Node: c.node.ID(), Err: err}
	}
	return nil
}

// Recommend implements Client.
func (c *LocalClient) Recommend(ctx context.Context, basket itemset.Itemset, k int, link string) ([]rules.Rule, uint64, error) {
	if err := c.gate(ctx); err != nil {
		return nil, 0, err
	}
	return c.node.RecommendLink(basket, k, link)
}

// Prepare implements Client.
func (c *LocalClient) Prepare(ctx context.Context, req PrepareRequest) error {
	if err := c.gate(ctx); err != nil {
		return err
	}
	return c.node.Prepare(req)
}

// Commit implements Client.
func (c *LocalClient) Commit(ctx context.Context, gen uint64) error {
	if err := c.gate(ctx); err != nil {
		return err
	}
	return c.node.Commit(gen)
}

// Metrics implements Client.
func (c *LocalClient) Metrics(ctx context.Context) (serve.Metrics, error) {
	if err := c.gate(ctx); err != nil {
		return serve.Metrics{}, err
	}
	return c.node.Metrics(), nil
}

// Cluster is an in-process serving fleet: n nodes and a router wired with
// LocalClients.  It is how the tests and the load-generator experiment run
// a whole multi-node deployment inside one process under -race — the
// emulated-cluster spirit of the repo, applied to the serving tier.
type Cluster struct {
	Router  *Router
	Nodes   []*Node
	Clients []*LocalClient
}

// NewCluster builds n nodes ("node00"…) and a router over them.  Publish a
// rule set through c.Router to start serving.
func NewCluster(n int, opt Options) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("distserve: cluster needs at least 1 node, got %d", n)
	}
	opt = opt.WithDefaults()
	c := &Cluster{}
	clients := make([]Client, n)
	for i := 0; i < n; i++ {
		node := NewNode(fmt.Sprintf("node%02d", i), opt.Node)
		lc := NewLocalClient(node)
		c.Nodes = append(c.Nodes, node)
		c.Clients = append(c.Clients, lc)
		clients[i] = lc
	}
	r, err := NewRouter(clients, opt)
	if err != nil {
		for _, node := range c.Nodes {
			node.Close()
		}
		return nil, err
	}
	c.Router = r
	return c, nil
}

// Close stops every node's worker pool and the router's prober, if running.
func (c *Cluster) Close() {
	c.Router.StopProber()
	for _, n := range c.Nodes {
		n.Close()
	}
}
