package distserve

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
	"parapriori/internal/rules"
	"parapriori/internal/serve"
)

// TestStragglerExemplarResolvesAcrossTiers is the distributed half of the
// exemplar-linkage property: a slow query caused by one straggling node must
// produce a router-side latency exemplar whose fan-out node set names the
// straggler and whose span ID resolves in the router's flight ring to the
// request span and its fan-out legs — and, through the propagated link, in
// the straggler node's own flight ring to the causal cache-miss span.
func TestStragglerExemplarResolvesAcrossTiers(t *testing.T) {
	opt := Options{Shards: 8, HedgeDelay: -1}
	c := mustCluster(t, 3, opt)
	if _, err := c.Router.Publish(synthRules(200, 40, 7), true); err != nil {
		t.Fatalf("publish: %v", err)
	}

	// Background traffic so the slow query stands out as the slowest.
	for i := 0; i < 6; i++ {
		if _, err := c.Router.Recommend([]itemset.Item{1, 2}, 5); err != nil {
			t.Fatalf("warm recommend: %v", err)
		}
	}

	// The seeded slow query: a basket nobody asked before, with one of its
	// owner nodes straggling.  R=1 means no alternate replica can steal the
	// leg, so the answer waits out the injected delay.
	slowBasket := []itemset.Item{3, 7, 9}
	owners := make(map[string]bool)
	for _, it := range itemset.New(slowBasket...) {
		s := c.Router.Options().shardOf(it)
		for _, id := range c.Router.Replicas()[s] {
			owners[id] = true
		}
	}
	var straggler string
	for id := range owners {
		if straggler == "" || id < straggler {
			straggler = id
		}
	}
	const delay = 40 * time.Millisecond
	clientOf(t, c, straggler).SetDelay(delay)
	if _, err := c.Router.Recommend(slowBasket, 5); err != nil {
		t.Fatalf("slow recommend: %v", err)
	}
	clientOf(t, c, straggler).SetDelay(0)

	exs := c.Router.Metrics().Exemplars
	if len(exs) == 0 {
		t.Fatal("no exemplars recorded")
	}
	slowest := exs[0]
	for _, e := range exs[1:] {
		if e.LatencyUs > slowest.LatencyUs {
			slowest = e
		}
	}
	if slowest.LatencyUs < delay.Microseconds() {
		t.Fatalf("slowest exemplar %dµs, want at least the injected %v", slowest.LatencyUs, delay)
	}
	if len(slowest.Nodes) == 0 {
		t.Fatal("slowest exemplar carries no fan-out node set")
	}
	if !sort.StringsAreSorted(slowest.Nodes) {
		t.Errorf("exemplar node set %v is not sorted", slowest.Nodes)
	}
	hasStraggler := false
	for _, id := range slowest.Nodes {
		if id == straggler {
			hasStraggler = true
		}
	}
	if !hasStraggler {
		t.Errorf("exemplar node set %v does not name the straggler %s", slowest.Nodes, straggler)
	}

	// Tier one: the span ID resolves in the router's own flight ring to the
	// request span and at least one fan-out leg addressed to the straggler.
	rt := c.Router.Flight().Trace()
	var reqSpan *obsv.Span
	fanoutToStraggler := false
	for i := range rt.Spans {
		sp := &rt.Spans[i]
		if sp.Cat != obsv.CatRequest {
			continue
		}
		if v, ok := sp.Arg("link"); !ok || v != slowest.SpanID {
			continue
		}
		switch sp.Name {
		case "recommend":
			reqSpan = sp
		case "fanout":
			if node, _ := sp.Arg("node"); node == straggler {
				fanoutToStraggler = true
			}
		}
	}
	if reqSpan == nil {
		t.Fatalf("exemplar span %q does not resolve to a request span in the router ring (%d spans)",
			slowest.SpanID, len(rt.Spans))
	}
	if reqSpan.Dur() < delay.Seconds() {
		t.Errorf("router request span lasted %.6fs, want at least %v", reqSpan.Dur(), delay)
	}
	if !fanoutToStraggler {
		t.Errorf("no fan-out span for link %q addressed to straggler %s in the router ring",
			slowest.SpanID, straggler)
	}

	// Tier two: the same link resolves in the straggler node's flight ring
	// to the causal cache-miss span (a fresh basket misses the node cache).
	var nodeRing *obsv.Trace
	for _, n := range c.Nodes {
		if n.ID() == straggler {
			nodeRing = n.Server().Flight().Trace()
		}
	}
	if nodeRing == nil {
		t.Fatalf("straggler %s not found in cluster nodes", straggler)
	}
	var nodeSpan *obsv.Span
	for i := range nodeRing.Spans {
		sp := &nodeRing.Spans[i]
		if sp.Cat != obsv.CatRequest {
			continue
		}
		if v, ok := sp.Arg("link"); ok && v == slowest.SpanID {
			nodeSpan = sp
			break
		}
	}
	if nodeSpan == nil {
		t.Fatalf("link %q does not resolve in straggler %s's flight ring (%d spans)",
			slowest.SpanID, straggler, len(nodeRing.Spans))
	}
	if v, _ := nodeSpan.Arg("cache"); v != "miss" {
		t.Errorf("straggler's resolved span cache = %q, want miss", v)
	}
}

// TestRouterFlightSmoke hammers a real-HTTP router with concurrent queries
// and a delta publish while polling /debug/flight, checking every dump is
// well-formed JSON under load (the CI race job runs this with -race).  When
// FLIGHT_DUMP is set, the final dump is written there so CI can upload it
// as an artifact.
func TestRouterFlightSmoke(t *testing.T) {
	v1 := synthRules(200, 40, 30)
	v2 := mutate(v1)
	router, _ := httpFleet(t, 2, Options{Shards: 16})
	if _, err := router.Publish(v1, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	front := httptest.NewServer(router.Handler(func() ([]rules.Rule, error) { return v2, nil }))
	t.Cleanup(front.Close)

	get := func(path string) ([]byte, int, error) {
		resp, err := front.Client().Get(front.URL + path)
		if err != nil {
			return nil, 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		return body, resp.StatusCode, err
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64) //checkinv:allow rawchan — test goroutine error sink, drained after the WaitGroup join
	fail := func(format string, args ...any) {
		select { //checkinv:allow rawchan best-effort deposit, the sink is large enough in practice
		case errc <- fmt.Errorf(format, args...): //checkinv:allow rawchan same sink
		default:
		}
	}

	const workers, queries = 4, 30
	for w := 0; w < workers; w++ {
		wg.Add(1)
		rng := rand.New(rand.NewSource(int64(100 + w)))
		baskets := make([][]itemset.Item, queries)
		for i := range baskets {
			baskets[i] = randBasket(rng, 40)
		}
		go func(baskets [][]itemset.Item) { //checkinv:allow rawchan — test load goroutines, joined by WaitGroup
			defer wg.Done()
			for _, b := range baskets {
				items := make([]string, len(b))
				for i, it := range b {
					items[i] = fmt.Sprint(it)
				}
				body, code, err := get("/recommend?items=" + strings.Join(items, ",") + "&k=5")
				if err != nil {
					fail("recommend: %v", err)
					return
				}
				if code != http.StatusOK || !json.Valid(body) {
					fail("recommend: status %d, body %q", code, body)
					return
				}
			}
		}(baskets)
	}

	// The delta publish racing the queries: every answer must still be a
	// coherent generation (the coherence machinery's job, exercised here
	// purely as load while the flight ring records publish spans).
	wg.Add(1)
	go func() { //checkinv:allow rawchan — test load goroutines, joined by WaitGroup
		defer wg.Done()
		resp, err := front.Client().Post(front.URL+"/reload", "", nil)
		if err != nil {
			fail("reload: %v", err)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			fail("reload: status %d, body %q", resp.StatusCode, body)
		}
	}()

	// The flight poller: every dump taken mid-flight must be valid Perfetto
	// JSON, in both formats.
	wg.Add(1)
	go func() { //checkinv:allow rawchan — test load goroutines, joined by WaitGroup
		defer wg.Done()
		for i := 0; i < 10; i++ {
			body, code, err := get("/debug/flight")
			if err != nil || code != http.StatusOK || !json.Valid(body) {
				fail("flight poll %d: status %d err %v valid=%t", i, code, err, json.Valid(body))
				return
			}
			if body, code, err = get("/debug/flight?format=attrib"); err != nil || code != http.StatusOK {
				fail("flight attrib poll %d: status %d err %v", i, code, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)             //checkinv:allow rawchan — sealing the test error sink after the join
	for err := range errc { //checkinv:allow rawchan — draining the sealed sink, no goroutines left
		t.Error(err)
	}

	// The final dump must resolve the metrics exemplars' span IDs and be
	// valid JSON; CI uploads it as an artifact when FLIGHT_DUMP is set.
	dump, code, err := get("/debug/flight")
	if err != nil || code != http.StatusOK {
		t.Fatalf("final flight dump: status %d, err %v", code, err)
	}
	if !json.Valid(dump) {
		t.Fatalf("final flight dump is not valid JSON: %q", dump)
	}
	if !strings.Contains(string(dump), `"recommend"`) {
		t.Errorf("final flight dump records no recommend spans")
	}
	if path := os.Getenv("FLIGHT_DUMP"); path != "" {
		if err := os.WriteFile(path, dump, 0o644); err != nil {
			t.Fatalf("writing FLIGHT_DUMP %s: %v", path, err)
		}
		t.Logf("flight dump written to %s (%d bytes)", path, len(dump))
	}
}

// TestPromConformance gates every HTTP Prometheus exposition in the serving
// tier — single-node server, shard node, router — through the promlint-style
// checker: text format 0.0.4, HELP/TYPE before samples, suffix conventions,
// no duplicate families.
func TestPromConformance(t *testing.T) {
	rs := synthRules(200, 40, 30)

	// Single-node serve.Server exposition.
	srv := serve.NewServer(serve.Options{Shards: 4})
	t.Cleanup(srv.Close)
	srv.Publish(serve.NewIndex(rs, serve.Options{Shards: 4}))
	if _, err := srv.Recommend([]itemset.Item{1, 2}, 5); err != nil {
		t.Fatalf("recommend: %v", err)
	}
	single := httptest.NewServer(srv.Handler(nil))
	t.Cleanup(single.Close)

	// A fleet: node expositions plus the router's aggregated one.
	router, nodes := httpFleet(t, 2, Options{Shards: 16})
	if _, err := router.Publish(rs, true); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := router.Recommend([]itemset.Item{1, 2, 3}, 5); err != nil {
		t.Fatalf("recommend: %v", err)
	}
	node := httptest.NewServer(NodeHandler(nodes[0]))
	t.Cleanup(node.Close)
	front := httptest.NewServer(router.Handler(nil))
	t.Cleanup(front.Close)

	for _, tc := range []struct {
		name string
		url  string
	}{
		{"server", single.URL},
		{"node", node.URL},
		{"router", front.URL},
	} {
		req, _ := http.NewRequest(http.MethodGet, tc.url+"/metrics", nil)
		req.Header.Set("Accept", "text/plain")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: read: %v", tc.name, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != obsv.ContentType {
			t.Errorf("%s: Content-Type %q, want %q", tc.name, ct, obsv.ContentType)
		}
		if len(body) == 0 {
			t.Fatalf("%s: empty exposition", tc.name)
		}
		for _, finding := range obsv.LintProm(body) {
			t.Errorf("%s: %s", tc.name, finding)
		}
	}
}
