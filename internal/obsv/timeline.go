package obsv

import (
	"fmt"
	"io"
	"strings"
)

// glyphForCat maps leaf slice categories to the timeline glyphs of
// cluster.WriteTimeline, so a span trace renders with the same legend as the
// event-level Gantt chart.
var glyphForCat = map[string]byte{
	CatCompute: '#',
	CatSend:    '>',
	CatIO:      'o',
	CatIdle:    '.',
	CatRetry:   'r',
	CatDrop:    'x',
}

// WriteTimeline renders a trace's leaf slices as a text Gantt chart: one row
// per rank, `width` columns spanning [0, horizon] on the trace's clock.
// Structural spans (run/pass/section/request/publish) are skipped — they
// enclose the slices and would paint over them.  Later-starting slices win
// ties for a cell, matching cluster.WriteTimeline.
func WriteTimeline(w io.Writer, t *Trace, width int) error {
	if width < 20 {
		width = 20
	}
	ranks := t.Ranks()
	horizon := 0.0
	for _, s := range t.Spans {
		if glyphForCat[s.Cat] != 0 && s.End > horizon {
			horizon = s.End
		}
	}
	if ranks == 0 || horizon == 0 {
		_, err := io.WriteString(w, "(no slice spans)\n")
		return err
	}
	rows := make([][]byte, ranks)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range t.Spans {
		g := glyphForCat[s.Cat]
		if g == 0 || s.Rank < 0 || s.Rank >= ranks {
			continue
		}
		lo := int(s.Start / horizon * float64(width-1))
		hi := int(s.End / horizon * float64(width-1))
		for c := lo; c <= hi && c < width; c++ {
			rows[s.Rank][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s time 0 .. %.6fs   (# compute, > send, o io, . idle, r retry, x drop)\n",
		t.Clock, horizon)
	for i, row := range rows {
		fmt.Fprintf(&b, "P%-3d |%s|\n", i, row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
