package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0, 5e-7, 1e-6, 1.5e-6, 3e-6, 9e-6}, 0)
	if h.Base != HistBase {
		t.Fatalf("base = %v", h.Base)
	}
	if h.Count != 6 || h.Min != 0 || h.Max != 9e-6 {
		t.Fatalf("count/min/max = %d/%v/%v", h.Count, h.Min, h.Max)
	}
	// Buckets: [0,1e-6) [1e-6,2e-6) [2e-6,4e-6) [4e-6,8e-6) [8e-6,16e-6)
	counts := make([]int, len(h.Buckets))
	for i, b := range h.Buckets {
		counts[i] = b.Count
	}
	if want := []int{2, 2, 1, 0, 1}; !reflect.DeepEqual(counts, want) {
		t.Errorf("bucket counts = %v, want %v", counts, want)
	}
	// Bounds tile [0, ...) with doubling widths and the last bucket covers
	// the max — no +Inf anywhere.
	lo := 0.0
	for i, b := range h.Buckets {
		if b.Lo != lo {
			t.Errorf("bucket %d Lo = %v, want %v", i, b.Lo, lo)
		}
		if math.IsInf(b.Hi, 0) {
			t.Errorf("bucket %d has infinite bound", i)
		}
		lo = b.Hi
	}
	if last := h.Buckets[len(h.Buckets)-1]; h.Max >= last.Hi {
		t.Errorf("max %v not covered by last bucket [%v, %v)", h.Max, last.Lo, last.Hi)
	}
	if got, want := h.Mean(), h.Sum/6; got != want {
		t.Errorf("mean = %v, want %v", got, want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil, 0)
	if h.Count != 0 || len(h.Buckets) != 0 || h.Mean() != 0 {
		t.Fatalf("empty histogram = %+v", h)
	}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if strings.Contains(string(b), "buckets") {
		t.Errorf("empty histogram marshals buckets: %s", b)
	}
}

func TestHistogramDeterministicJSON(t *testing.T) {
	vals := []float64{2e-6, 1e-4, 3.7e-5, 2e-6}
	a, _ := json.Marshal(NewHistogram(vals, 0))
	b, _ := json.Marshal(NewHistogram([]float64{2e-6, 2e-6, 3.7e-5, 1e-4}, 0))
	if !bytes.Equal(a, b) {
		t.Errorf("same multiset, different JSON:\n%s\n%s", a, b)
	}
}

func tracePasses() *Trace {
	return &Trace{Clock: ClockVirtual, Spans: []Span{
		{Name: "pass k=2", Cat: CatPass, Rank: 0, Start: 0, End: 0.25, Args: []Attr{Int("k", 2)}},
		{Name: "pass k=3", Cat: CatPass, Rank: 0, Start: 0.25, End: 0.375, Args: []Attr{Int("k", 3)}},
		{Name: "pass k=2", Cat: CatPass, Rank: 1, Start: 0, End: 0.3, Args: []Attr{Int("k", 2)}},
		{Name: "count", Cat: CatSection, Rank: 0, Start: 0.01, End: 0.2},
		{Name: "count", Cat: CatSection, Rank: 1, Start: 0.02, End: 0.22},
		{Name: "reduce", Cat: CatSection, Rank: 0, Start: 0.2, End: 0.25},
		{Name: "mine cd", Cat: CatRun, Rank: -1, Start: 0, End: 0.375},
	}}
}

func TestPassDurations(t *testing.T) {
	tr := tracePasses()
	if got, want := PassDurations(tr, -1), []float64{0.125, 0.25, 0.3}; !reflect.DeepEqual(got, want) {
		t.Errorf("all passes = %v, want %v", got, want)
	}
	if got, want := PassDurations(tr, 3), []float64{0.125}; !reflect.DeepEqual(got, want) {
		t.Errorf("k=3 = %v, want %v", got, want)
	}
	if got := PassDurations(tr, 9); len(got) != 0 {
		t.Errorf("k=9 = %v, want empty", got)
	}
	if h := PassHistogram(tr); h.Count != 3 {
		t.Errorf("pass histogram count = %d", h.Count)
	}
}

func TestSectionSeconds(t *testing.T) {
	secs := SectionSeconds(tracePasses())
	if got := secs["count"]; math.Abs(got-0.39) > 1e-12 {
		t.Errorf("count = %v, want 0.39", got)
	}
	if got := secs["reduce"]; math.Abs(got-0.05) > 1e-12 {
		t.Errorf("reduce = %v, want 0.05", got)
	}
	if _, ok := secs["mine cd"]; ok {
		t.Error("run span counted as a section")
	}
}

func TestWriteHistogram(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteHistogram(&buf, PassHistogram(tracePasses())); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "#") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
}
