package obsv

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// PassCost is the cost breakdown of one mining pass, summed over ranks —
// the measured counterpart of the paper's parallel-runtime decomposition
// (compute vs. communication vs. idle vs. redundant work).
type PassCost struct {
	// Pass is the itemset size k of the pass; -1 collects time that falls
	// outside every pass span (startup, teardown, inter-pass recovery).
	Pass int
	// Per-category virtual (or real) seconds summed over all ranks.
	Compute float64
	IO      float64
	Send    float64
	Idle    float64
	Retry   float64
	// Start and End bound the pass across ranks: earliest pass-span start,
	// latest pass-span end.
	Start float64
	End   float64
	// Elapsed is End - Start: the wall of virtual time the pass occupied.
	Elapsed float64
	// CriticalPath is the busiest rank's non-idle time inside the pass
	// (compute+io+send+retry): the lower bound on the pass's elapsed time
	// under perfect communication.  Elapsed - CriticalPath is the pass's
	// irreducible wait.
	CriticalPath float64
}

// Total returns the per-category sum of a PassCost.
func (c PassCost) Total() float64 { return c.Compute + c.IO + c.Send + c.Idle + c.Retry }

// passInterval is one rank's span of one pass.
type passInterval struct {
	k          int
	start, end float64
}

// Attribution computes the per-pass cost breakdown of a trace.  Leaf slice
// spans (compute/io/send/idle/retry/drop) are attributed to the pass span
// that contains them on the same rank; slices outside every pass go to the
// Pass == -1 bucket.  Passes are returned sorted by k, with the -1 bucket
// (if non-empty) last.  Summed over all passes and the -1 bucket, the
// category totals equal the cluster's Stats totals
// (ComputeTime/IOTime/SendTime/IdleTime/RetryTime) for a trace recorded by
// core.Mine.
func Attribution(t *Trace) []PassCost {
	byRank := make(map[int][]passInterval)
	for _, s := range t.Spans {
		if s.Cat != CatPass {
			continue
		}
		k := -1
		if v, ok := s.Arg("k"); ok {
			if n, err := strconv.Atoi(v); err == nil {
				k = n
			}
		}
		byRank[s.Rank] = append(byRank[s.Rank], passInterval{k: k, start: s.Start, end: s.End})
	}
	for r := range byRank {
		ivs := byRank[r]
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	}

	costs := make(map[int]*PassCost)
	get := func(k int) *PassCost {
		c, ok := costs[k]
		if !ok {
			c = &PassCost{Pass: k}
			costs[k] = c
		}
		return c
	}
	// Pass bounds come from the pass spans themselves, not the slices.
	for _, ivs := range byRank {
		for _, iv := range ivs {
			c := get(iv.k)
			if c.Start == 0 && c.End == 0 || iv.start < c.Start {
				c.Start = iv.start
			}
			if iv.end > c.End {
				c.End = iv.end
			}
		}
	}

	// busy[k][rank] accumulates each rank's non-idle time per pass for the
	// critical path.
	busy := make(map[int]map[int]float64)
	for _, s := range t.Spans {
		var bucket *float64
		var c *PassCost
		isBusy := false
		k := findPass(byRank[s.Rank], s)
		switch s.Cat {
		case CatCompute:
			c = get(k)
			bucket, isBusy = &c.Compute, true
		case CatIO:
			c = get(k)
			bucket, isBusy = &c.IO, true
		case CatSend:
			c = get(k)
			bucket, isBusy = &c.Send, true
		case CatIdle:
			c = get(k)
			bucket = &c.Idle
		case CatRetry, CatDrop:
			c = get(k)
			bucket, isBusy = &c.Retry, true
		default:
			continue
		}
		d := s.Dur()
		*bucket += d
		if isBusy {
			if busy[k] == nil {
				busy[k] = make(map[int]float64)
			}
			busy[k][s.Rank] += d
		}
	}
	for k, perRank := range busy {
		c := get(k)
		for _, b := range perRank {
			if b > c.CriticalPath {
				c.CriticalPath = b
			}
		}
	}

	out := make([]PassCost, 0, len(costs))
	for _, c := range costs {
		c.Elapsed = c.End - c.Start
		if c.Pass == -1 {
			// The catch-all bucket has no meaningful bounds.
			c.Start, c.End, c.Elapsed = 0, 0, 0
		}
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if (out[i].Pass == -1) != (out[j].Pass == -1) {
			return out[j].Pass == -1
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// findPass returns the k of the interval containing the slice's midpoint,
// or -1 when no pass contains it.
func findPass(ivs []passInterval, s Span) int {
	mid := (s.Start + s.End) / 2
	for _, iv := range ivs {
		if mid >= iv.start && mid <= iv.end {
			return iv.k
		}
	}
	return -1
}

// TotalCost sums a breakdown into one PassCost (Pass == 0, bounds spanning
// all passes).  Use it to cross-check attribution against cluster.Stats.
func TotalCost(costs []PassCost) PassCost {
	var t PassCost
	first := true
	for _, c := range costs {
		t.Compute += c.Compute
		t.IO += c.IO
		t.Send += c.Send
		t.Idle += c.Idle
		t.Retry += c.Retry
		t.CriticalPath += c.CriticalPath
		if c.Pass == -1 {
			continue
		}
		if first || c.Start < t.Start {
			t.Start = c.Start
		}
		if first || c.End > t.End {
			t.End = c.End
		}
		first = false
	}
	t.Elapsed = t.End - t.Start
	return t
}

// WriteAttribution renders the breakdown as an aligned text table.  All
// numbers use fixed six-decimal formatting, so the bytes are deterministic
// for a deterministic trace.
func WriteAttribution(w io.Writer, costs []PassCost) error {
	if _, err := fmt.Fprintf(w, "%-6s %12s %12s %12s %12s %12s %12s %12s\n",
		"pass", "compute", "io", "send", "idle", "retry", "elapsed", "critpath"); err != nil {
		return err
	}
	row := func(label string, c PassCost) error {
		_, err := fmt.Fprintf(w, "%-6s %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f\n",
			label, c.Compute, c.IO, c.Send, c.Idle, c.Retry, c.Elapsed, c.CriticalPath)
		return err
	}
	for _, c := range costs {
		label := "other"
		if c.Pass >= 0 {
			label = "k=" + strconv.Itoa(c.Pass)
		}
		if err := row(label, c); err != nil {
			return err
		}
	}
	return row("total", TotalCost(costs))
}
