package obsv

import "time"

// RealClock anchors real-time spans to an epoch so the serving tier can
// record request/publish spans on the same Span model the mining side uses
// for virtual time.  It is the package's only wall-clock entry point — the
// mining path must never construct one (checkinv's walltime rule enforces
// that this file stays the only annotated site).
type RealClock struct {
	rec   Recorder
	epoch time.Time
}

// NewRealClock wraps a recorder; span times will be real seconds since now.
// A nil recorder yields a nil RealClock, and every method on a nil RealClock
// is a cheap no-op, so callers hook spans unconditionally.
func NewRealClock(rec Recorder) *RealClock {
	if rec == nil {
		return nil
	}
	c := &RealClock{rec: rec}
	c.epoch = time.Now() //checkinv:allow walltime — real-clock epoch for the serving tier, never the mining path
	c.rec.SetMeta("clock", string(ClockReal))
	return c
}

// Now returns seconds since the epoch.
func (c *RealClock) Now() float64 {
	if c == nil {
		return 0
	}
	return time.Since(c.epoch).Seconds() //checkinv:allow walltime — real-clock read for the serving tier
}

// Record emits a span that started at start (a prior Now() value) and ends
// now.
func (c *RealClock) Record(name, cat string, rank int, start float64, args ...Attr) {
	if c == nil {
		return
	}
	c.rec.Record(Span{Name: name, Cat: cat, Rank: rank, Start: start, End: c.Now(), Args: args})
}

// SetMeta forwards a trace-level attribute to the recorder.
func (c *RealClock) SetMeta(key, value string) {
	if c == nil {
		return
	}
	c.rec.SetMeta(key, value)
}
