package obsv

import (
	"fmt"
	"io"
	"sort"
)

// Deterministic duration histograms over trace spans.  The mining engine's
// virtual clock makes span durations exactly reproducible for a seeded run,
// so a histogram of them is a *distribution-shaped* regression artifact:
// BENCH_mining.json records one per engine, and a perf change that shifts
// only the tail (a straggler rank, one bad pass) moves buckets that a mean
// would smear away.

// HistBase is the default lower bound of the first finite bucket: one
// virtual microsecond, comfortably below any real pass on the modeled
// machines.
const HistBase = 1e-6

// HistBucket is one bucket of a Histogram, covering [Lo, Hi).
type HistBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

// Histogram is a log-2-bucketed distribution of durations.  Bucket 0 covers
// [0, Base); bucket i ≥ 1 covers [Base·2^(i-1), Base·2^i).  Buckets are
// materialized only up to the one containing Max — there is no +Inf bucket,
// so the struct marshals to plain JSON with finite bounds.
type Histogram struct {
	Base    float64      `json:"base"`
	Count   int          `json:"count"`
	Min     float64      `json:"min"`
	Max     float64      `json:"max"`
	Sum     float64      `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Mean returns the average observation, or 0 for an empty histogram.
func (h Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// NewHistogram buckets the values.  base <= 0 selects HistBase.  The result
// is a pure function of the multiset of values, so byte-deterministic
// producers get byte-deterministic histograms.
func NewHistogram(values []float64, base float64) Histogram {
	if base <= 0 {
		base = HistBase
	}
	h := Histogram{Base: base}
	if len(values) == 0 {
		return h
	}
	// Sum in sorted order so the result depends on the multiset of values,
	// not the caller's ordering (float addition is not commutative in
	// rounding).
	values = append([]float64(nil), values...)
	sort.Float64s(values)
	h.Min, h.Max = values[0], values[len(values)-1]
	for _, v := range values {
		h.Sum += v
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	// Bucket index by doubling, not math.Log2: repeated multiplication is
	// exact for these magnitudes and identical on every platform.
	idx := func(v float64) int {
		i, hi := 0, base
		for v >= hi {
			i++
			hi *= 2
		}
		return i
	}
	h.Buckets = make([]HistBucket, idx(h.Max)+1)
	lo, hi := 0.0, base
	for i := range h.Buckets {
		h.Buckets[i] = HistBucket{Lo: lo, Hi: hi}
		lo, hi = hi, hi*2
	}
	for _, v := range values {
		h.Buckets[idx(v)].Count++
		h.Count++
	}
	return h
}

// PassDurations extracts the per-rank pass-span durations of a trace — one
// observation per (rank, pass) — sorted ascending.  k >= 0 restricts to one
// pass; k < 0 takes all passes.
func PassDurations(t *Trace, k int) []float64 {
	var out []float64
	want := ""
	if k >= 0 {
		want = fmt.Sprintf("%d", k)
	}
	for _, s := range t.Spans {
		if s.Cat != CatPass {
			continue
		}
		if want != "" {
			if v, ok := s.Arg("k"); !ok || v != want {
				continue
			}
		}
		out = append(out, s.Dur())
	}
	sort.Float64s(out)
	return out
}

// Quantile returns the nearest-rank q-quantile (q in [0, 1]) of an
// ascending-sorted sample, 0 for an empty one.  Exact over the sample, no
// interpolation — two identical runs report identical percentiles.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	// Nearest rank: ceil(q*n), 1-based.
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// PassHistogram buckets PassDurations(t, -1) with the default base.
func PassHistogram(t *Trace) Histogram {
	return NewHistogram(PassDurations(t, -1), 0)
}

// SectionSeconds sums the durations of the trace's engine-section spans by
// section name ("count", "tree build", "reduce", ...), over all ranks and
// passes.  This is the breakdown BENCH_mining.json's speedup criterion is
// stated in: the "count" entry is the total virtual time the run spent
// counting candidate subsets.
func SectionSeconds(t *Trace) map[string]float64 {
	out := make(map[string]float64)
	for _, s := range t.Spans {
		if s.Cat == CatSection {
			out[s.Name] += s.Dur()
		}
	}
	return out
}

// WriteHistogram renders the histogram as an aligned text table with
// fixed-precision numbers, deterministic for a deterministic histogram.
func WriteHistogram(w io.Writer, h Histogram) error {
	if _, err := fmt.Fprintf(w, "n=%d min=%.6f max=%.6f mean=%.6f (seconds)\n",
		h.Count, h.Min, h.Max, h.Mean()); err != nil {
		return err
	}
	for _, b := range h.Buckets {
		if _, err := fmt.Fprintf(w, "[%12.6f, %12.6f) %6d %s\n",
			b.Lo, b.Hi, b.Count, bar(b.Count, h.Count)); err != nil {
			return err
		}
	}
	return nil
}

// bar renders a proportional bar up to 40 columns.
func bar(count, total int) string {
	if total == 0 {
		return ""
	}
	n := count * 40 / total
	if n == 0 && count > 0 {
		n = 1
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
