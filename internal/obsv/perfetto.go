package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The Chrome trace-event exporter.  The output is the JSON object format
// that Perfetto and chrome://tracing load: one process per rank (pid =
// rank+2, so the cluster-wide rank -1 gets pid 1), structural spans on
// thread 1 and leaf slices on thread 2, every span a "X" complete event with
// microsecond timestamps.  The writer builds the JSON by hand — sorted
// metadata, sorted args, canonical float formatting, one event per line —
// so a deterministic span set serializes to identical bytes every run.

const (
	tidSpans  = 1
	tidEvents = 2
)

// perfettoPid maps a span rank onto a trace-event process id (must be >0).
func perfettoPid(rank int) int { return rank + 2 }

// WriteTrace writes t as Chrome trace-event JSON.
//
// Spans sharing a "link" argument (the router stamps one request id across
// a distributed query's root span and every fan-out leg, hedges and retries
// included) additionally emit Chrome flow events ("s"/"t"/"f"), so Perfetto
// draws arrows from the slow /recommend slice to the exact replica legs
// that served it.  Traces without link arguments — all mining traces —
// serialize byte-identically to before.
func WriteTrace(w io.Writer, t *Trace) error {
	spans := make([]Span, len(t.Spans))
	copy(spans, t.Spans)
	sortSpans(spans)

	// Flow groups: link value → indices of the member spans, in span sort
	// order.  Ids are assigned by sorted link value, so the byte output is a
	// pure function of the span set.
	groups := make(map[string][]int)
	for i, s := range spans {
		if v, ok := s.Arg("link"); ok {
			groups[v] = append(groups[v], i)
		}
	}
	links := make([]string, 0, len(groups))
	for v, idxs := range groups {
		if len(idxs) >= 2 {
			links = append(links, v)
		}
	}
	sort.Strings(links)
	flowID := make(map[string]int, len(links))
	for i, v := range links {
		flowID[v] = i + 1
	}

	var b strings.Builder
	b.WriteString("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {")
	b.WriteString(jsonString("clock"))
	b.WriteString(": ")
	b.WriteString(jsonString(string(t.Clock)))
	for _, a := range t.Meta {
		if a.Key == "clock" {
			continue
		}
		b.WriteString(", ")
		b.WriteString(jsonString(a.Key))
		b.WriteString(": ")
		b.WriteString(jsonString(a.Val))
	}
	b.WriteString("},\n\"traceEvents\": [\n")

	// Process/thread metadata first, ranks ascending.
	ranks := make([]int, 0, 8)
	seen := make(map[int]bool)
	for _, s := range spans {
		if !seen[s.Rank] {
			seen[s.Rank] = true
			ranks = append(ranks, s.Rank)
		}
	}
	sort.Ints(ranks)
	first := true
	emit := func(line string) {
		if !first {
			b.WriteString(",\n")
		}
		first = false
		b.WriteString(line)
	}
	for _, r := range ranks {
		pid := perfettoPid(r)
		name := "cluster"
		if r >= 0 {
			name = "rank " + strconv.Itoa(r)
		}
		emit(fmt.Sprintf(`{"ph": "M", "pid": %d, "name": "process_name", "args": {"name": %s}}`, pid, jsonString(name)))
		emit(fmt.Sprintf(`{"ph": "M", "pid": %d, "name": "process_sort_index", "args": {"sort_index": %d}}`, pid, pid))
		emit(fmt.Sprintf(`{"ph": "M", "pid": %d, "tid": %d, "name": "thread_name", "args": {"name": "spans"}}`, pid, tidSpans))
		emit(fmt.Sprintf(`{"ph": "M", "pid": %d, "tid": %d, "name": "thread_name", "args": {"name": "events"}}`, pid, tidEvents))
	}

	for si, s := range spans {
		tid := tidEvents
		switch s.Cat {
		case CatRun, CatPass, CatSection, CatRequest, CatPublish:
			tid = tidSpans
		}
		var e strings.Builder
		e.WriteString(`{"ph": "X", "pid": `)
		e.WriteString(strconv.Itoa(perfettoPid(s.Rank)))
		e.WriteString(`, "tid": `)
		e.WriteString(strconv.Itoa(tid))
		e.WriteString(`, "ts": `)
		e.WriteString(micros(s.Start))
		e.WriteString(`, "dur": `)
		e.WriteString(micros(s.End - s.Start))
		e.WriteString(`, "name": `)
		e.WriteString(jsonString(s.Name))
		e.WriteString(`, "cat": `)
		e.WriteString(jsonString(s.Cat))
		if len(s.Args) > 0 {
			e.WriteString(`, "args": {`)
			args := make([]Attr, len(s.Args))
			copy(args, s.Args)
			sort.Slice(args, func(i, j int) bool { return args[i].Key < args[j].Key })
			for i, a := range args {
				if i > 0 {
					e.WriteString(", ")
				}
				e.WriteString(jsonString(a.Key))
				e.WriteString(": ")
				e.WriteString(jsonString(a.Val))
			}
			e.WriteString("}")
		}
		e.WriteString("}")
		emit(e.String())

		// Flow arrow through this span.  The flow event's ts sits at the
		// span's start, inside the X slice just emitted, so Perfetto binds
		// the arrow to it ("f" binds to the enclosing slice via bp).
		if v, ok := s.Arg("link"); ok {
			if id := flowID[v]; id > 0 {
				idxs := groups[v]
				ph, bp := "t", ""
				switch si {
				case idxs[0]:
					ph = "s"
				case idxs[len(idxs)-1]:
					ph, bp = "f", `, "bp": "e"`
				}
				emit(fmt.Sprintf(`{"ph": %q, "pid": %d, "tid": %d, "ts": %s, "id": %d, "name": %s, "cat": "flow"%s}`,
					ph, perfettoPid(s.Rank), tid, micros(s.Start), id, jsonString(v), bp))
			}
		}
	}
	b.WriteString("\n]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// micros formats seconds as microseconds with the shortest round-trip
// decimal encoding (Perfetto accepts fractional microseconds).
func micros(sec float64) string {
	return strconv.FormatFloat(sec*1e6, 'f', -1, 64)
}

// jsonString encodes s as a JSON string literal.  encoding/json's string
// escaping is deterministic.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil {
		// Marshalling a string cannot fail.
		panic(err)
	}
	return string(b)
}

// perfettoFile mirrors the on-disk JSON object format for reading.
type perfettoFile struct {
	OtherData   map[string]string `json:"otherData"`
	TraceEvents []perfettoEvent   `json:"traceEvents"`
}

type perfettoEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Args map[string]any `json:"args"`
}

// ReadTrace parses a trace written by WriteTrace (or any Chrome trace-event
// JSON object whose complete events carry the pid/cat conventions above)
// back into a Trace.  Metadata events are skipped; timestamps come back as
// seconds.
func ReadTrace(r io.Reader) (*Trace, error) {
	var f perfettoFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("obsv: parsing trace JSON: %w", err)
	}
	if f.TraceEvents == nil {
		return nil, fmt.Errorf("obsv: not a trace-event file: no traceEvents array")
	}
	t := &Trace{Clock: ClockVirtual}
	if c, ok := f.OtherData["clock"]; ok {
		t.Clock = Clock(c)
	}
	metaKeys := make([]string, 0, len(f.OtherData))
	for k := range f.OtherData {
		if k != "clock" {
			metaKeys = append(metaKeys, k)
		}
	}
	sort.Strings(metaKeys)
	for _, k := range metaKeys {
		t.Meta = append(t.Meta, Attr{Key: k, Val: f.OtherData[k]})
	}
	for _, e := range f.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		s := Span{
			Name:  e.Name,
			Cat:   e.Cat,
			Rank:  e.Pid - 2,
			Start: e.Ts / 1e6,
			End:   (e.Ts + e.Dur) / 1e6,
		}
		if len(e.Args) > 0 {
			keys := make([]string, 0, len(e.Args))
			for k := range e.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				s.Args = append(s.Args, Attr{Key: k, Val: fmt.Sprint(e.Args[k])})
			}
		}
		t.Spans = append(t.Spans, s)
	}
	sortSpans(t.Spans)
	return t, nil
}
