// Package obsv is the observability subsystem: structured, hierarchical
// spans over both of the repo's clocks, with exporters a production toolchain
// understands.
//
// The repo runs on two notions of time.  The mining side (packages cluster
// and core) advances a deterministic *virtual* clock — the paper's entire
// evaluation is a decomposition of where that clock goes (compute vs.
// communication vs. idle vs. redundant work).  The serving side (packages
// serve and distserve) runs on the real OS clock.  This package unifies the
// two behind one span model:
//
//   - Span: one named interval on one rank (run → pass → section →
//     message/compute slice), carrying deterministic key/value attributes
//     (algorithm, pass number, grid position, bytes, message tag).
//   - Recorder: the pluggable sink.  The engine phases of internal/core and
//     the request paths of serve/distserve emit spans into whatever Recorder
//     the caller installs; a nil recorder costs one branch.
//   - Collector: the standard Recorder — an in-memory, concurrency-safe
//     buffer whose Trace() output is deterministically ordered, so traces of
//     seeded virtual-time runs are byte-stable run to run.
//
// Exporters:
//
//   - WriteTrace/ReadTrace: Chrome trace-event JSON (the format Perfetto and
//     chrome://tracing load), one process per rank, byte-deterministic for
//     deterministic span sets.
//   - Attribution/WriteAttribution: the per-pass cost breakdown
//     (compute/send/idle/retry/IO and critical path per pass) — the measured
//     counterpart of the paper's Section IV runtime decomposition, cross-
//     checkable against cluster.Stats.
//   - PromWriter: Prometheus text exposition, used by the serving tier's
//     /metrics endpoints.
//
// Virtual-time spans must never observe the wall clock; the only real-time
// entry point is RealClock, which is explicitly for the serving tier.  The
// checkinv walltime rule covers this package to keep it that way.
package obsv

import (
	"sort"
	"strconv"
	"sync"
)

// Clock identifies which timebase a trace's span times live on.
type Clock string

// The two clocks.
const (
	// ClockVirtual is the deterministic simulation clock of package cluster:
	// span times are virtual seconds since the start of the run.
	ClockVirtual Clock = "virtual"
	// ClockReal is the OS clock of the serving tier: span times are real
	// seconds since the collector's epoch.
	ClockReal Clock = "real"
)

// Attr is one key/value attribute on a span or a trace.  Values are strings;
// helpers below format numbers canonically so attribute bytes are
// deterministic.
type Attr struct {
	Key string
	Val string
}

// Int formats an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Val: strconv.FormatInt(v, 10)} }

// Float formats a float attribute with the shortest round-trip encoding.
func Float(key string, v float64) Attr {
	return Attr{Key: key, Val: strconv.FormatFloat(v, 'g', -1, 64)}
}

// String builds a string attribute.
func String(key, val string) Attr { return Attr{Key: key, Val: val} }

// Span is one interval of one rank's timeline.
type Span struct {
	// Name labels the interval: a pass ("pass k=3"), an engine section
	// ("count"), a message tag ("k3.p0/ring"), or a request kind
	// ("recommend").
	Name string
	// Cat classifies the span.  Structural categories ("run", "pass",
	// "section", "request", "publish") nest; slice categories ("compute",
	// "io", "send", "idle", "retry", "drop") are the leaf events of the
	// cluster trace.
	Cat string
	// Rank is the emulated processor (mining) or node ordinal (serving);
	// -1 marks a cluster-wide span (the run itself).
	Rank int
	// Start and End are seconds on the trace's clock.
	Start float64
	End   float64
	// Args carries the span's attributes.  Order is canonicalized (sorted by
	// key) by the exporters.
	Args []Attr
}

// Dur returns the span's duration in seconds.
func (s Span) Dur() float64 { return s.End - s.Start }

// Arg returns the value of the named attribute and whether it is present.
func (s Span) Arg(key string) (string, bool) {
	for _, a := range s.Args {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Structural span categories.
const (
	CatRun     = "run"
	CatPass    = "pass"
	CatSection = "section"
	CatRequest = "request"
	CatPublish = "publish"
)

// Slice (leaf) span categories, mirroring the cluster event kinds.
const (
	CatCompute = "compute"
	CatIO      = "io"
	CatSend    = "send"
	CatIdle    = "idle"
	CatRetry   = "retry"
	CatDrop    = "drop"
)

// Recorder is the pluggable span sink.  Implementations must be safe for
// concurrent use: the mining engine records from one goroutine per emulated
// processor, and the serving tier from arbitrary request goroutines.
type Recorder interface {
	// Record adds one finished span.
	Record(Span)
	// SetMeta attaches one trace-level key/value (algorithm, processor
	// count, machine name, ...).  Later values for the same key win.
	SetMeta(key, value string)
}

// Trace is an assembled span log: metadata plus spans in canonical order.
type Trace struct {
	// Clock is the timebase every span's Start/End lives on.
	Clock Clock
	// Meta holds trace-level attributes, sorted by key.
	Meta []Attr
	// Spans is ordered by (Rank, Start, -End, Cat, Name): ranks ascending,
	// then chronological, with enclosing spans before the spans they
	// contain.
	Spans []Span
}

// Meta returns the value of a trace-level attribute.
func (t *Trace) MetaValue(key string) (string, bool) {
	for _, a := range t.Meta {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// Ranks returns the number of distinct non-negative ranks, i.e. max rank+1.
func (t *Trace) Ranks() int {
	max := -1
	for _, s := range t.Spans {
		if s.Rank > max {
			max = s.Rank
		}
	}
	return max + 1
}

// Collector is the standard in-memory Recorder.  The zero value is not
// ready; use NewCollector.
type Collector struct {
	clock Clock

	mu     sync.Mutex
	meta   map[string]string
	byRank map[int][]Span
}

// NewCollector builds a collector for spans on the given clock.
func NewCollector(clock Clock) *Collector {
	return &Collector{
		clock:  clock,
		meta:   make(map[string]string),
		byRank: make(map[int][]Span),
	}
}

// Record implements Recorder.
func (c *Collector) Record(s Span) {
	c.mu.Lock()
	c.byRank[s.Rank] = append(c.byRank[s.Rank], s)
	c.mu.Unlock()
}

// SetMeta implements Recorder.
func (c *Collector) SetMeta(key, value string) {
	c.mu.Lock()
	c.meta[key] = value
	c.mu.Unlock()
}

// Trace assembles the collected spans into canonical order.  For a
// deterministic producer (a seeded virtual-time run) the result is
// byte-stable run to run: each rank's goroutine records its own spans in
// program order, and the assembly discards the arbitrary interleaving by
// sorting on span fields alone.
func (c *Collector) Trace() *Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Trace{Clock: c.clock}
	keys := make([]string, 0, len(c.meta))
	for k := range c.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Meta = append(t.Meta, Attr{Key: k, Val: c.meta[k]})
	}
	ranks := make([]int, 0, len(c.byRank))
	for r := range c.byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		t.Spans = append(t.Spans, c.byRank[r]...)
	}
	sortSpans(t.Spans)
	return t
}

// sortSpans orders spans canonically: rank ascending, then start time, with
// longer (enclosing) spans before shorter ones at the same start, then
// category and name as final tie-breaks.
func sortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End > b.End
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		return a.Name < b.Name
	})
}
