package obsv

import "sync"

// Registry is the unified metrics surface: named collectors (serve, router,
// mining report, ...) registered once and rendered into a single Prometheus
// exposition.  Every tier's /metrics endpoint renders through a Registry so
// the whole system shares one naming scheme and one exposition, and callers
// can graft extra families (e.g. a mining Report) onto a running server's
// endpoint.
type Registry struct {
	mu      sync.Mutex
	names   []string
	collect map[string]func(*PromWriter)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{collect: make(map[string]func(*PromWriter))}
}

// Register adds (or replaces) a named collector.  Collectors render in
// first-registration order, so the exposition is stable run to run.
func (g *Registry) Register(name string, fn func(*PromWriter)) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, ok := g.collect[name]; !ok {
		g.names = append(g.names, name)
	}
	g.collect[name] = fn
}

// Names returns the registered collector names in render order.
func (g *Registry) Names() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]string(nil), g.names...)
}

// WriteProm renders every collector into the writer, in registration order.
func (g *Registry) WriteProm(w *PromWriter) {
	g.mu.Lock()
	names := append([]string(nil), g.names...)
	fns := make([]func(*PromWriter), len(names))
	for i, n := range names {
		fns[i] = g.collect[n]
	}
	g.mu.Unlock()
	for _, fn := range fns {
		fn(w)
	}
}

// Gather renders the registry into a fresh PromWriter and returns the
// exposition bytes.
func (g *Registry) Gather() []byte {
	w := NewPromWriter()
	g.WriteProm(w)
	return w.Bytes()
}
