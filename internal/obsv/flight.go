package obsv

import (
	"sort"
	"sync"
)

// DefaultFlightSpans is the per-rank ring capacity a Flight uses when the
// caller passes a non-positive size.
const DefaultFlightSpans = 256

// Flight is the always-on flight recorder: a bounded ring of the most
// recently completed spans, per rank, on either clock.  Unlike Collector it
// never grows — each rank keeps its last N spans and older ones fall off —
// so a server or miner can record every span unconditionally and dump the
// recent window on demand (/debug/flight, parminer -flight).
//
// Trace() assembles the retained spans exactly the way Collector.Trace does
// (sorted meta, ranks ascending, each rank's spans in arrival order, then
// the canonical span sort), so for a deterministic producer the ring dump is
// byte-stable run to run just like a full trace.
type Flight struct {
	clock Clock
	cap   int

	mu    sync.Mutex
	meta  map[string]string
	rings map[int]*spanRing
}

// spanRing is one rank's bounded span buffer: a fixed slice written
// round-robin, with total the number of spans ever recorded.
type spanRing struct {
	buf   []Span
	total int64
}

// NewFlight builds a flight recorder on the given clock retaining up to
// spansPerRank spans per rank (DefaultFlightSpans if non-positive).
func NewFlight(clock Clock, spansPerRank int) *Flight {
	if spansPerRank <= 0 {
		spansPerRank = DefaultFlightSpans
	}
	return &Flight{
		clock: clock,
		cap:   spansPerRank,
		meta:  make(map[string]string),
		rings: make(map[int]*spanRing),
	}
}

// Record implements Recorder: an O(1) overwrite of the rank's oldest slot.
func (f *Flight) Record(s Span) {
	f.mu.Lock()
	r := f.rings[s.Rank]
	if r == nil {
		r = &spanRing{buf: make([]Span, 0, f.cap)}
		f.rings[s.Rank] = r
	}
	if len(r.buf) < f.cap {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.total%int64(f.cap)] = s
	}
	r.total++
	f.mu.Unlock()
}

// SetMeta implements Recorder.
func (f *Flight) SetMeta(key, value string) {
	f.mu.Lock()
	f.meta[key] = value
	f.mu.Unlock()
}

// Len returns the number of spans currently retained across all ranks.
func (f *Flight) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, r := range f.rings {
		n += len(r.buf)
	}
	return n
}

// Dropped returns the number of spans that have fallen off the ring.
func (f *Flight) Dropped() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var d int64
	for _, r := range f.rings {
		d += r.total - int64(len(r.buf))
	}
	return d
}

// Trace assembles the retained window in the same canonical order as
// Collector.Trace: sorted meta keys, ranks ascending, each rank's spans
// oldest to newest, then the canonical span sort.
func (f *Flight) Trace() *Trace {
	f.mu.Lock()
	defer f.mu.Unlock()
	t := &Trace{Clock: f.clock}
	keys := make([]string, 0, len(f.meta))
	for k := range f.meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		t.Meta = append(t.Meta, Attr{Key: k, Val: f.meta[k]})
	}
	ranks := make([]int, 0, len(f.rings))
	for r := range f.rings {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, rank := range ranks {
		r := f.rings[rank]
		if r.total <= int64(f.cap) {
			t.Spans = append(t.Spans, r.buf...)
			continue
		}
		head := int(r.total % int64(f.cap)) // oldest retained slot
		t.Spans = append(t.Spans, r.buf[head:]...)
		t.Spans = append(t.Spans, r.buf[:head]...)
	}
	sortSpans(t.Spans)
	return t
}

// Tee fans spans out to several recorders, so an always-on flight ring can
// ride alongside a caller-installed full collector.  Nil recorders are
// dropped; Tee(nil) is nil and Tee(r) is r, so the result costs nothing
// extra in the degenerate cases.
func Tee(recs ...Recorder) Recorder {
	live := make([]Recorder, 0, len(recs))
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeRecorder(live)
}

// teeRecorder forwards every call to each underlying recorder in order.
type teeRecorder []Recorder

func (t teeRecorder) Record(s Span) {
	for _, r := range t {
		r.Record(s)
	}
}

func (t teeRecorder) SetMeta(key, value string) {
	for _, r := range t {
		r.SetMeta(key, value)
	}
}
