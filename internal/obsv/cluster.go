package obsv

import "parapriori/internal/cluster"

// catForKind maps the cluster trace's event kinds onto slice categories.
var catForKind = map[cluster.EventKind]string{
	cluster.EvCompute: CatCompute,
	cluster.EvIO:      CatIO,
	cluster.EvSend:    CatSend,
	cluster.EvIdle:    CatIdle,
	cluster.EvRetry:   CatRetry,
	cluster.EvDrop:    CatDrop,
}

// ClusterSpans converts the low-level cluster event trace into leaf spans.
// Each event becomes one slice span on its processor's rank: the event's
// phase label (or message tag) is the span name, the kind its category, and
// peer/bytes become attributes when set.
func ClusterSpans(events []cluster.Event) []Span {
	spans := make([]Span, 0, len(events))
	for _, e := range events {
		cat, ok := catForKind[e.Kind]
		if !ok {
			cat = string(rune(e.Kind))
		}
		s := Span{
			Name:  e.Phase,
			Cat:   cat,
			Rank:  e.Proc,
			Start: e.Start,
			End:   e.End,
		}
		if s.Name == "" {
			s.Name = cat
		}
		if e.Peer >= 0 {
			s.Args = append(s.Args, Int("peer", int64(e.Peer)))
		}
		if e.Bytes > 0 {
			s.Args = append(s.Args, Int("bytes", int64(e.Bytes)))
		}
		spans = append(spans, s)
	}
	return spans
}

// RecordClusterTrace converts the cluster event trace and records every
// resulting span into r.
func RecordClusterTrace(r Recorder, events []cluster.Event) {
	for _, s := range ClusterSpans(events) {
		r.Record(s)
	}
}
