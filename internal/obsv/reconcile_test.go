package obsv_test

import (
	"math"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/cluster"
	"parapriori/internal/core"
	"parapriori/internal/datagen"
	"parapriori/internal/itemset"
	"parapriori/internal/obsv"
)

// These tests live in the external test package: obsv itself depends only on
// cluster, but verifying the attribution report against a real mining run
// needs core, which imports obsv.

func reconcileData(tb testing.TB) *itemset.Dataset {
	tb.Helper()
	p := datagen.Defaults()
	p.NumTransactions = 800
	p.NumItems = 80
	p.NumPatterns = 40
	p.AvgTxnLen = 8
	p.AvgPatternLen = 4
	p.Seed = 7
	d, err := datagen.Generate(p)
	if err != nil {
		tb.Fatalf("generate: %v", err)
	}
	return d
}

// TestAttributionReconcilesWithStats mines with a recorder installed and
// checks that the attribution report's category totals — summed over every
// pass and the outside-any-pass bucket — equal the cluster's own Stats
// accounting (ComputeTime/IOTime/SendTime/IdleTime/RetryTime) to float
// tolerance.  Run per formulation: each exercises different charging paths
// (CD the partitioned tree, DD the blocking all-to-all, IDD the reliable
// ring, HD the grid).
func TestAttributionReconcilesWithStats(t *testing.T) {
	data := reconcileData(t)
	for _, algo := range []core.Algorithm{core.CD, core.DD, core.IDD, core.HD, core.HPA} {
		algo := algo
		t.Run(string(algo), func(t *testing.T) {
			rec := obsv.NewCollector(obsv.ClockVirtual)
			rep, err := core.Mine(data, core.Params{
				Algo:     algo,
				P:        6,
				Machine:  cluster.SP2(), // nonzero I/O costs exercise the io category
				Apriori:  apriori.Params{MinSupport: 0.03},
				Recorder: rec,
			})
			if err != nil {
				t.Fatalf("mine: %v", err)
			}
			checkReconciles(t, rec.Trace(), rep.Total, len(rep.Passes))
		})
	}
}

// TestAttributionReconcilesUnderFaults repeats the reconciliation on a
// faulty IDD run: retries, drops, acks and recovery charges must all land
// in the report (mostly via the retry category and the -1 bucket), still
// summing to the Stats totals.
func TestAttributionReconcilesUnderFaults(t *testing.T) {
	data := reconcileData(t)
	rec := obsv.NewCollector(obsv.ClockVirtual)
	rep, err := core.Mine(data, core.Params{
		Algo:     core.IDD,
		P:        6,
		Machine:  cluster.SP2(),
		Apriori:  apriori.Params{MinSupport: 0.03},
		Faults:   &cluster.FaultPlan{Seed: 3, Drop: 0.05, Dup: 0.05, Reorder: 0.05},
		Recorder: rec,
	})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	if rep.Total.RetryTime == 0 {
		t.Fatal("fault plan injected no retry time; test is vacuous")
	}
	checkReconciles(t, rec.Trace(), rep.Total, len(rep.Passes))
}

func checkReconciles(t *testing.T, tr *obsv.Trace, stats cluster.Stats, passes int) {
	t.Helper()
	costs := obsv.Attribution(tr)
	tot := obsv.TotalCost(costs)

	// Every pass the report mentions must have a bucket (plus possibly -1).
	kinds := make(map[int]bool)
	for _, c := range costs {
		kinds[c.Pass] = true
	}
	for k := 1; k <= passes; k++ {
		if !kinds[k] {
			t.Errorf("no attribution bucket for pass k=%d", k)
		}
	}

	const tol = 1e-9
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"compute", tot.Compute, stats.ComputeTime},
		{"io", tot.IO, stats.IOTime},
		{"send", tot.Send, stats.SendTime},
		{"idle", tot.Idle, stats.IdleTime},
		{"retry", tot.Retry, stats.RetryTime},
	} {
		if math.Abs(c.got-c.want) > tol {
			t.Errorf("%s: attribution %.12f != stats %.12f (diff %g)", c.name, c.got, c.want, c.got-c.want)
		}
	}

	// The critical path of each pass can never exceed its elapsed time
	// (busy time on one rank is bounded by the pass's span), except in the
	// catch-all bucket which has no bounds.
	for _, c := range costs {
		if c.Pass == -1 {
			continue
		}
		if c.CriticalPath > c.Elapsed+tol {
			t.Errorf("pass %d: critical path %.9f exceeds elapsed %.9f", c.Pass, c.CriticalPath, c.Elapsed)
		}
	}
}
