package obsv

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// span builds a minimal test span at a virtual time.
func span(rank int, start float64, name string) Span {
	return Span{Name: name, Cat: CatSection, Rank: rank, Start: start, End: start + 0.5}
}

// TestFlightMirrorsCollector: below capacity, a Flight's trace is
// byte-identical to a Collector's over the same recording sequence — the
// ring dump is the same format as a full trace, not an approximation of it.
func TestFlightMirrorsCollector(t *testing.T) {
	fl := NewFlight(ClockVirtual, 64)
	co := NewCollector(ClockVirtual)
	for _, rec := range []Recorder{fl, co} {
		rec.SetMeta("algo", "cd")
		rec.SetMeta("p", "4")
		for rank := 0; rank < 4; rank++ {
			for i := 0; i < 10; i++ {
				rec.Record(span(rank, float64(i), fmt.Sprintf("s%d", i)))
			}
		}
	}
	ft, ct := fl.Trace(), co.Trace()
	if !reflect.DeepEqual(ft, ct) {
		t.Fatalf("flight trace differs from collector trace:\n flight: %+v\n collector: %+v", ft, ct)
	}
	var fb, cb bytes.Buffer
	if err := WriteTrace(&fb, ft); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&cb, ct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fb.Bytes(), cb.Bytes()) {
		t.Fatalf("flight Perfetto bytes differ from collector's")
	}
}

// TestFlightEviction: past capacity each rank keeps its newest spans, oldest
// first in the dump, and Dropped counts the fall-off.
func TestFlightEviction(t *testing.T) {
	fl := NewFlight(ClockVirtual, 4)
	for i := 0; i < 11; i++ {
		fl.Record(span(0, float64(i), fmt.Sprintf("s%d", i)))
	}
	if got := fl.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := fl.Dropped(); got != 7 {
		t.Fatalf("Dropped = %d, want 7", got)
	}
	tr := fl.Trace()
	var names []string
	for _, s := range tr.Spans {
		names = append(names, s.Name)
	}
	if want := []string{"s7", "s8", "s9", "s10"}; !reflect.DeepEqual(names, want) {
		t.Fatalf("retained window %v, want %v", names, want)
	}
	// Re-dumping without new records is stable.
	if !reflect.DeepEqual(fl.Trace(), tr) {
		t.Fatalf("second dump differs")
	}
}

func TestFlightDefaultCapacity(t *testing.T) {
	fl := NewFlight(ClockReal, 0)
	for i := 0; i < DefaultFlightSpans+5; i++ {
		fl.Record(span(1, float64(i), "x"))
	}
	if got := fl.Len(); got != DefaultFlightSpans {
		t.Fatalf("Len = %d, want %d", got, DefaultFlightSpans)
	}
}

// TestTee: fan-out reaches every recorder; nils collapse away.
func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Fatalf("Tee of no recorders should be nil")
	}
	c := NewCollector(ClockVirtual)
	if got := Tee(nil, c); got != Recorder(c) {
		t.Fatalf("Tee of one recorder should be that recorder")
	}
	f := NewFlight(ClockVirtual, 8)
	both := Tee(c, f)
	both.SetMeta("k", "v")
	both.Record(span(0, 1, "a"))
	if len(c.Trace().Spans) != 1 || f.Len() != 1 {
		t.Fatalf("tee did not reach both recorders")
	}
	if v, ok := f.Trace().MetaValue("k"); !ok || v != "v" {
		t.Fatalf("tee did not forward meta")
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0, 1}, {0.5, 5}, {0.95, 10}, {0.99, 10}, {1, 10}, {0.1, 1}, {0.11, 2}} {
		if got := Quantile(vals, tc.q); got != tc.want {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(empty) = %v", got)
	}
}

// TestRegistryOrderAndReplace: collectors render in first-registration
// order; re-registering replaces in place.
func TestRegistryOrderAndReplace(t *testing.T) {
	reg := NewRegistry()
	reg.Register("b", func(w *PromWriter) { w.Gauge("parapriori_b", "b.", 1) })
	reg.Register("a", func(w *PromWriter) { w.Gauge("parapriori_a", "a.", 2) })
	out := string(reg.Gather())
	if strings.Index(out, "parapriori_b") > strings.Index(out, "parapriori_a") {
		t.Fatalf("registration order not preserved:\n%s", out)
	}
	reg.Register("b", func(w *PromWriter) { w.Gauge("parapriori_b2", "b2.", 3) })
	out = string(reg.Gather())
	if !strings.Contains(out, "parapriori_b2") || strings.Contains(out, "parapriori_b 1") {
		t.Fatalf("re-registration did not replace:\n%s", out)
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("Names = %v", got)
	}
}

// TestLintProm: a well-formed PromWriter exposition is clean, and each
// convention violation is reported.
func TestLintProm(t *testing.T) {
	w := NewPromWriter()
	w.Counter("parapriori_queries_total", "Queries served.", 3)
	w.Gauge("parapriori_rules", "Rules resident.", 80)
	w.Histogram("parapriori_query_latency_seconds", "Latency.", []float64{0.001, 0.01}, []int64{1, 2}, 0.02)
	if issues := LintProm(w.Bytes()); len(issues) != 0 {
		t.Fatalf("clean exposition flagged: %v", issues)
	}

	for _, tc := range []struct {
		name string
		text string
		want string
	}{
		{"counter without _total",
			"# HELP parapriori_hits Hits.\n# TYPE parapriori_hits counter\nparapriori_hits 1\n",
			"does not end in _total"},
		{"gauge with _total",
			"# HELP parapriori_x_total X.\n# TYPE parapriori_x_total gauge\nparapriori_x_total 1\n",
			"must not end in _total"},
		{"micros unit",
			"# HELP parapriori_p99_micros P99.\n# TYPE parapriori_p99_micros gauge\nparapriori_p99_micros 5\n",
			"non-base time unit"},
		{"orphan sample", "parapriori_orphan 1\n", "no preceding # HELP/# TYPE"},
		{"help after type",
			"# TYPE parapriori_y gauge\n# HELP parapriori_y Y.\nparapriori_y 1\n",
			"# TYPE without preceding # HELP"},
		{"uppercase name",
			"# HELP parapriori_Bad B.\n# TYPE parapriori_Bad gauge\nparapriori_Bad 1\n",
			"does not match"},
		{"bucket without le",
			"# HELP parapriori_h_seconds H.\n# TYPE parapriori_h_seconds histogram\nparapriori_h_seconds_bucket 1\n",
			"lacks an le label"},
	} {
		issues := LintProm([]byte(tc.text))
		found := false
		for _, is := range issues {
			if strings.Contains(is, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: issues %v do not mention %q", tc.name, issues, tc.want)
		}
	}
}
