package obsv

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"parapriori/internal/cluster"
)

func sampleCollector() *Collector {
	c := NewCollector(ClockVirtual)
	c.SetMeta("p", "2")
	c.SetMeta("algo", "IDD")
	// Recorded deliberately out of order; Trace() must canonicalize.
	c.Record(Span{Name: "subset", Cat: CatCompute, Rank: 1, Start: 0.2, End: 0.5})
	c.Record(Span{Name: "pass k=2", Cat: CatPass, Rank: 1, Start: 0.2, End: 0.9, Args: []Attr{Int("k", 2)}})
	c.Record(Span{Name: "run", Cat: CatRun, Rank: -1, Start: 0, End: 1.0})
	c.Record(Span{Name: "pass k=2", Cat: CatPass, Rank: 0, Start: 0.2, End: 0.9, Args: []Attr{Int("k", 2)}})
	c.Record(Span{Name: "io", Cat: CatIO, Rank: 0, Start: 0.3, End: 0.4, Args: []Attr{Int("bytes", 4096)}})
	c.Record(Span{Name: "ring", Cat: CatSend, Rank: 0, Start: 0.4, End: 0.45, Args: []Attr{Int("peer", 1), Int("bytes", 128)}})
	c.Record(Span{Name: "sync", Cat: CatIdle, Rank: 1, Start: 0.5, End: 0.9})
	return c
}

func TestCollectorCanonicalOrder(t *testing.T) {
	tr := sampleCollector().Trace()
	if got, _ := tr.MetaValue("algo"); got != "IDD" {
		t.Fatalf("meta algo = %q", got)
	}
	if len(tr.Meta) != 2 || tr.Meta[0].Key != "algo" || tr.Meta[1].Key != "p" {
		t.Fatalf("meta not sorted: %+v", tr.Meta)
	}
	for i := 1; i < len(tr.Spans); i++ {
		a, b := tr.Spans[i-1], tr.Spans[i]
		if a.Rank > b.Rank || (a.Rank == b.Rank && a.Start > b.Start) {
			t.Fatalf("spans out of order at %d: %+v then %+v", i, a, b)
		}
	}
	if tr.Spans[0].Rank != -1 || tr.Spans[0].Cat != CatRun {
		t.Fatalf("run span not first: %+v", tr.Spans[0])
	}
	// Enclosing pass span before the slices it contains.
	if tr.Spans[1].Cat != CatPass {
		t.Fatalf("rank 0 pass span not before its slices: %+v", tr.Spans[1])
	}
	if tr.Ranks() != 2 {
		t.Fatalf("Ranks() = %d, want 2", tr.Ranks())
	}
}

func TestPerfettoWriteDeterministicAndValid(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteTrace(&a, sampleCollector().Trace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&b, sampleCollector().Trace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("identical traces serialized differently:\n%s\nvs\n%s", a.String(), b.String())
	}
	if !json.Valid(a.Bytes()) {
		t.Fatalf("output is not valid JSON:\n%s", a.String())
	}
	// Perfetto essentials: complete events with pid/ts/dur and process names.
	s := a.String()
	for _, want := range []string{`"ph": "X"`, `"ph": "M"`, `"process_name"`, `"rank 0"`, `"cluster"`, `"displayTimeUnit"`} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %s", want)
		}
	}
}

func TestPerfettoRoundTrip(t *testing.T) {
	orig := sampleCollector().Trace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clock != ClockVirtual {
		t.Fatalf("clock = %q", got.Clock)
	}
	if len(got.Meta) != len(orig.Meta) {
		t.Fatalf("meta count %d != %d", len(got.Meta), len(orig.Meta))
	}
	if len(got.Spans) != len(orig.Spans) {
		t.Fatalf("span count %d != %d", len(got.Spans), len(orig.Spans))
	}
	for i := range got.Spans {
		g, o := got.Spans[i], orig.Spans[i]
		if g.Name != o.Name || g.Cat != o.Cat || g.Rank != o.Rank {
			t.Fatalf("span %d identity differs: %+v vs %+v", i, g, o)
		}
		if math.Abs(g.Start-o.Start) > 1e-9 || math.Abs(g.End-o.End) > 1e-9 {
			t.Fatalf("span %d bounds differ: [%v,%v] vs [%v,%v]", i, g.Start, g.End, o.Start, o.End)
		}
		if len(g.Args) != len(o.Args) {
			t.Fatalf("span %d args differ: %+v vs %+v", i, g.Args, o.Args)
		}
	}
}

// TestPerfettoFlowEvents: spans sharing a "link" argument emit a flow arrow
// (start/step/finish events) tying a request's root span to its fan-out
// legs; spans without links — every mining trace — produce no flow events
// at all, keeping those serializations byte-identical to before.
func TestPerfettoFlowEvents(t *testing.T) {
	c := NewCollector(ClockReal)
	link := []Attr{String("link", "q7")}
	c.Record(Span{Name: "recommend", Cat: CatRequest, Rank: -1, Start: 0, End: 3e-3, Args: link})
	c.Record(Span{Name: "fanout", Cat: CatSend, Rank: 0, Start: 1e-3, End: 2e-3,
		Args: []Attr{String("link", "q7"), String("attempt", "primary")}})
	c.Record(Span{Name: "fanout", Cat: CatSend, Rank: 1, Start: 1e-3, End: 2.5e-3,
		Args: []Attr{String("link", "q7"), String("attempt", "hedge")}})
	// A second, single-span link must not grow a flow (nothing to connect).
	c.Record(Span{Name: "recommend", Cat: CatRequest, Rank: -1, Start: 4e-3, End: 5e-3,
		Args: []Attr{String("link", "q8")}})

	var buf bytes.Buffer
	if err := WriteTrace(&buf, c.Trace()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("output is not valid JSON:\n%s", s)
	}
	for _, want := range []string{`"ph": "s"`, `"ph": "t"`, `"ph": "f"`, `"bp": "e"`, `"cat": "flow"`} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing flow event part %s:\n%s", want, s)
		}
	}
	if n := strings.Count(s, `"cat": "flow"`); n != 3 {
		t.Errorf("flow event count = %d, want 3 (one per q7 span, none for q8)", n)
	}

	// The flow must survive a round trip of the X events (ReadTrace skips
	// flow phases) and regenerate identically on re-write.
	rt, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteTrace(&again, rt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatalf("flow events not stable across a round trip:\n%s\nvs\n%s", s, again.String())
	}

	// Link-free traces stay flow-free.
	var plain bytes.Buffer
	if err := WriteTrace(&plain, sampleCollector().Trace()); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), `"cat": "flow"`) {
		t.Error("mining trace grew flow events without any link args")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"foo": 1}`)); err == nil {
		t.Fatal("non-trace JSON accepted")
	}
}

func TestAttribution(t *testing.T) {
	c := NewCollector(ClockVirtual)
	for rank := 0; rank < 2; rank++ {
		c.Record(Span{Name: "pass k=1", Cat: CatPass, Rank: rank, Start: 0, End: 1, Args: []Attr{Int("k", 1)}})
		c.Record(Span{Name: "pass k=2", Cat: CatPass, Rank: rank, Start: 1, End: 3, Args: []Attr{Int("k", 2)}})
	}
	// Pass 1: rank 0 computes 0.8 and idles 0.2; rank 1 computes 0.5.
	c.Record(Span{Name: "scan", Cat: CatCompute, Rank: 0, Start: 0, End: 0.8})
	c.Record(Span{Name: "sync", Cat: CatIdle, Rank: 0, Start: 0.8, End: 1})
	c.Record(Span{Name: "scan", Cat: CatCompute, Rank: 1, Start: 0, End: 0.5})
	// Pass 2: sends and a retry.
	c.Record(Span{Name: "ring", Cat: CatSend, Rank: 0, Start: 1, End: 1.5})
	c.Record(Span{Name: "backoff", Cat: CatRetry, Rank: 1, Start: 1, End: 1.25})
	// Outside every pass.
	c.Record(Span{Name: "teardown", Cat: CatCompute, Rank: 0, Start: 3, End: 3.5})

	costs := Attribution(c.Trace())
	if len(costs) != 3 {
		t.Fatalf("got %d buckets, want 3: %+v", len(costs), costs)
	}
	p1, p2, other := costs[0], costs[1], costs[2]
	if p1.Pass != 1 || p2.Pass != 2 || other.Pass != -1 {
		t.Fatalf("bucket order wrong: %+v", costs)
	}
	if math.Abs(p1.Compute-1.3) > 1e-12 || math.Abs(p1.Idle-0.2) > 1e-12 {
		t.Errorf("pass 1: compute %v idle %v", p1.Compute, p1.Idle)
	}
	// Critical path of pass 1 is rank 0's 0.8s of busy time (idle excluded).
	if math.Abs(p1.CriticalPath-0.8) > 1e-12 {
		t.Errorf("pass 1 critical path %v, want 0.8", p1.CriticalPath)
	}
	if math.Abs(p1.Elapsed-1) > 1e-12 || math.Abs(p2.Elapsed-2) > 1e-12 {
		t.Errorf("elapsed: p1 %v p2 %v", p1.Elapsed, p2.Elapsed)
	}
	if math.Abs(p2.Send-0.5) > 1e-12 || math.Abs(p2.Retry-0.25) > 1e-12 {
		t.Errorf("pass 2: send %v retry %v", p2.Send, p2.Retry)
	}
	if math.Abs(other.Compute-0.5) > 1e-12 {
		t.Errorf("other: compute %v", other.Compute)
	}
	tot := TotalCost(costs)
	if math.Abs(tot.Compute-1.8) > 1e-12 || math.Abs(tot.Send-0.5) > 1e-12 {
		t.Errorf("total: %+v", tot)
	}
	if math.Abs(tot.Start-0) > 1e-12 || math.Abs(tot.End-3) > 1e-12 {
		t.Errorf("total bounds: [%v, %v]", tot.Start, tot.End)
	}

	var a, b bytes.Buffer
	if err := WriteAttribution(&a, costs); err != nil {
		t.Fatal(err)
	}
	if err := WriteAttribution(&b, costs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("attribution table not deterministic")
	}
	for _, want := range []string{"k=1", "k=2", "other", "total", "compute", "critpath"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("table missing %q:\n%s", want, a.String())
		}
	}
}

func TestClusterSpans(t *testing.T) {
	events := []cluster.Event{
		{Proc: 0, Kind: cluster.EvCompute, Phase: "subset", Start: 0, End: 1},
		{Proc: 0, Kind: cluster.EvSend, Phase: "ring", Start: 1, End: 1.5, Peer: 1, Bytes: 256},
		{Proc: 1, Kind: cluster.EvIdle, Phase: "", Start: 0, End: 0.5, Peer: -1},
		{Proc: 1, Kind: cluster.EvRetry, Phase: "backoff", Start: 2, End: 2.5, Peer: 0},
		{Proc: 1, Kind: cluster.EvDrop, Phase: "drop", Start: 3, End: 3.1, Peer: 0, Bytes: 64},
		{Proc: 0, Kind: cluster.EvIO, Phase: "io", Start: 4, End: 5, Peer: -1, Bytes: 1 << 20},
	}
	spans := ClusterSpans(events)
	if len(spans) != len(events) {
		t.Fatalf("got %d spans for %d events", len(spans), len(events))
	}
	wantCat := []string{CatCompute, CatSend, CatIdle, CatRetry, CatDrop, CatIO}
	for i, s := range spans {
		if s.Cat != wantCat[i] {
			t.Errorf("span %d cat %q, want %q", i, s.Cat, wantCat[i])
		}
	}
	if spans[2].Name != CatIdle {
		t.Errorf("empty phase should fall back to category name, got %q", spans[2].Name)
	}
	if v, ok := spans[1].Arg("peer"); !ok || v != "1" {
		t.Errorf("send span peer arg = %q, %v", v, ok)
	}
	if v, ok := spans[1].Arg("bytes"); !ok || v != "256" {
		t.Errorf("send span bytes arg = %q, %v", v, ok)
	}

	rec := NewCollector(ClockVirtual)
	RecordClusterTrace(rec, events)
	if got := len(rec.Trace().Spans); got != len(events) {
		t.Fatalf("RecordClusterTrace recorded %d spans", got)
	}
}

func TestPromWriter(t *testing.T) {
	build := func() []byte {
		w := NewPromWriter()
		w.Gauge("up", "Whether the server is up.", 1)
		w.Counter("requests_total", "Requests served.", 42, String("mode", "node"), String("path", "/recommend"))
		w.Counter("requests_total", "Requests served.", 7, String("mode", "node"), String("path", "/rules"))
		w.Histogram("latency_micros", "Request latency.", []float64{1, 2, 4}, []int64{3, 2, 1, 4}, 123.5)
		return w.Bytes()
	}
	got := string(build())
	want := `# HELP up Whether the server is up.
# TYPE up gauge
up 1
# HELP requests_total Requests served.
# TYPE requests_total counter
requests_total{mode="node",path="/recommend"} 42
requests_total{mode="node",path="/rules"} 7
# HELP latency_micros Request latency.
# TYPE latency_micros histogram
latency_micros_bucket{le="1"} 3
latency_micros_bucket{le="2"} 5
latency_micros_bucket{le="4"} 6
latency_micros_bucket{le="+Inf"} 10
latency_micros_sum 123.5
latency_micros_count 10
`
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("exposition not deterministic")
	}
	if escapeLabel(`a"b\c`+"\n") != `a\"b\\c\n` {
		t.Errorf("label escaping wrong: %q", escapeLabel(`a"b\c`+"\n"))
	}
}

func TestRealClockNil(t *testing.T) {
	var rc *RealClock = NewRealClock(nil)
	if rc != nil {
		t.Fatal("NewRealClock(nil) should be nil")
	}
	// Every method must be a safe no-op on nil.
	rc.Record("x", CatRequest, 0, rc.Now())
	rc.SetMeta("k", "v")
}

func TestRealClockRecords(t *testing.T) {
	c := NewCollector(ClockReal)
	rc := NewRealClock(c)
	start := rc.Now()
	rc.Record("recommend", CatRequest, 0, start, Int("k", 10))
	tr := c.Trace()
	if len(tr.Spans) != 1 {
		t.Fatalf("got %d spans", len(tr.Spans))
	}
	s := tr.Spans[0]
	if s.End < s.Start {
		t.Fatalf("span ends before it starts: %+v", s)
	}
	if v, _ := tr.MetaValue("clock"); v != string(ClockReal) {
		t.Fatalf("clock meta = %q", v)
	}
}
