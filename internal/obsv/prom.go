package obsv

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromWriter builds Prometheus text exposition (format version 0.0.4) for
// the serving tier's /metrics endpoints.  Each metric family gets its
// # HELP / # TYPE header once, on first use; samples with labels render the
// label set sorted by key with standard escaping.  Everything is written in
// call order with canonical float formatting, so the output is a pure
// function of the calls.
type PromWriter struct {
	b    strings.Builder
	seen map[string]bool
}

// NewPromWriter returns an empty writer.
func NewPromWriter() *PromWriter {
	return &PromWriter{seen: make(map[string]bool)}
}

// ContentType is the Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

func (w *PromWriter) header(name, help, typ string) {
	if w.seen[name] {
		return
	}
	w.seen[name] = true
	w.b.WriteString("# HELP ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(escapeHelp(help))
	w.b.WriteString("\n# TYPE ")
	w.b.WriteString(name)
	w.b.WriteByte(' ')
	w.b.WriteString(typ)
	w.b.WriteByte('\n')
}

func (w *PromWriter) sample(name string, labels []Attr, value float64) {
	w.b.WriteString(name)
	writeLabels(&w.b, labels)
	w.b.WriteByte(' ')
	w.b.WriteString(promFloat(value))
	w.b.WriteByte('\n')
}

// Gauge emits one gauge sample.  The help text is used the first time the
// family appears.
func (w *PromWriter) Gauge(name, help string, value float64, labels ...Attr) {
	w.header(name, help, "gauge")
	w.sample(name, labels, value)
}

// Counter emits one counter sample.
func (w *PromWriter) Counter(name, help string, value float64, labels ...Attr) {
	w.header(name, help, "counter")
	w.sample(name, labels, value)
}

// Histogram emits a cumulative histogram family from per-bucket counts.
// uppers[i] is bucket i's inclusive upper bound and counts[i] its
// (non-cumulative) count; sum is the sum of all observations, in the
// metric's unit.  The +Inf bucket is added automatically.
func (w *PromWriter) Histogram(name, help string, uppers []float64, counts []int64, sum float64, labels ...Attr) {
	w.header(name, help, "histogram")
	var cum int64
	for i, ub := range uppers {
		cum += counts[i]
		bl := append(append([]Attr(nil), labels...), Attr{Key: "le", Val: promFloat(ub)})
		w.sample(name+"_bucket", bl, float64(cum))
	}
	for i := len(uppers); i < len(counts); i++ {
		cum += counts[i]
	}
	bl := append(append([]Attr(nil), labels...), Attr{Key: "le", Val: "+Inf"})
	w.sample(name+"_bucket", bl, float64(cum))
	w.sample(name+"_sum", labels, sum)
	w.sample(name+"_count", labels, float64(cum))
}

// Bytes returns the exposition built so far.
func (w *PromWriter) Bytes() []byte { return []byte(w.b.String()) }

func writeLabels(b *strings.Builder, labels []Attr) {
	if len(labels) == 0 {
		return
	}
	ls := make([]Attr, len(labels))
	copy(ls, labels)
	sort.SliceStable(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Val))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// promFloat formats a sample value: integral values without an exponent,
// everything else with the shortest round-trip encoding.
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
