package obsv

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// LintProm checks a text exposition (format 0.0.4) against the conventions
// this repo's metrics follow — a promlint-style gate the conformance tests
// run over every /metrics surface:
//
//   - every sample belongs to a family with # HELP and # TYPE declared
//     first, HELP before TYPE, each exactly once;
//   - metric names match ^[a-z][a-z0-9_]*$ (our scheme is stricter than the
//     spec's, deliberately: one shared lowercase naming scheme);
//   - counters end in _total, and only counters do;
//   - time-valued metrics use the _seconds base unit — names ending in
//     _micros, _millis, _ms, _us or _nanos are rejected;
//   - histogram samples are limited to the _bucket/_sum/_count series of
//     their family, and _bucket samples carry an le label.
//
// The returned slice holds one message per violation; empty means clean.
func LintProm(exposition []byte) []string {
	var issues []string
	type family struct {
		typ     string
		hasHelp bool
		hasType bool
	}
	families := make(map[string]*family)
	nameRE := regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
	badUnits := []string{"_micros", "_millis", "_ms", "_us", "_nanos"}
	validTypes := map[string]bool{
		"counter": true, "gauge": true, "histogram": true,
		"summary": true, "untyped": true,
	}

	checkName := func(name string) {
		if !nameRE.MatchString(name) {
			issues = append(issues, fmt.Sprintf("metric %q: name does not match ^[a-z][a-z0-9_]*$", name))
		}
		for _, u := range badUnits {
			if strings.HasSuffix(name, u) {
				issues = append(issues, fmt.Sprintf("metric %q: non-base time unit %q, use _seconds", name, u))
			}
		}
	}

	for _, line := range strings.Split(strings.TrimRight(string(exposition), "\n"), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				issues = append(issues, fmt.Sprintf("malformed comment line %q", line))
				continue
			}
			name := fields[2]
			fam := families[name]
			if fam == nil {
				fam = &family{}
				families[name] = fam
			}
			switch fields[1] {
			case "HELP":
				if fam.hasHelp {
					issues = append(issues, fmt.Sprintf("metric %q: duplicate # HELP", name))
				}
				if fam.hasType {
					issues = append(issues, fmt.Sprintf("metric %q: # HELP after # TYPE", name))
				}
				fam.hasHelp = true
			case "TYPE":
				if fam.hasType {
					issues = append(issues, fmt.Sprintf("metric %q: duplicate # TYPE", name))
				}
				if !fam.hasHelp {
					issues = append(issues, fmt.Sprintf("metric %q: # TYPE without preceding # HELP", name))
				}
				fam.hasType = true
				if len(fields) < 4 || !validTypes[fields[3]] {
					issues = append(issues, fmt.Sprintf("metric %q: invalid type in %q", name, line))
					fam.typ = "untyped"
				} else {
					fam.typ = fields[3]
				}
				checkName(name)
				if fam.typ == "counter" && !strings.HasSuffix(name, "_total") {
					issues = append(issues, fmt.Sprintf("counter %q does not end in _total", name))
				}
				if fam.typ != "counter" && strings.HasSuffix(name, "_total") {
					issues = append(issues, fmt.Sprintf("%s %q must not end in _total", fam.typ, name))
				}
			}
			continue
		}

		// Sample line: name[{labels}] value [timestamp].
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if len(strings.Fields(stripLabels(line))) < 2 {
			issues = append(issues, fmt.Sprintf("malformed sample line %q", line))
			continue
		}
		base, series := name, ""
		fam := families[name]
		if fam == nil {
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasSuffix(name, suf) {
					if f := families[strings.TrimSuffix(name, suf)]; f != nil && f.typ == "histogram" {
						base, series, fam = strings.TrimSuffix(name, suf), suf, f
						break
					}
				}
			}
		}
		if fam == nil || !fam.hasHelp || !fam.hasType {
			issues = append(issues, fmt.Sprintf("sample %q has no preceding # HELP/# TYPE family", name))
			continue
		}
		if fam.typ == "histogram" && series == "" && base == name {
			issues = append(issues, fmt.Sprintf("histogram %q has a bare sample; expected _bucket/_sum/_count", name))
		}
		if series == "_bucket" && !strings.Contains(line, `le="`) {
			issues = append(issues, fmt.Sprintf("histogram bucket sample %q lacks an le label", line))
		}
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if fam := families[name]; fam.hasHelp && !fam.hasType {
			issues = append(issues, fmt.Sprintf("metric %q: # HELP without # TYPE", name))
		}
	}
	return issues
}

// stripLabels removes one {...} label block so Fields splits name and value
// even when label values contain spaces.
func stripLabels(line string) string {
	i := strings.IndexByte(line, '{')
	if i < 0 {
		return line
	}
	j := strings.LastIndexByte(line, '}')
	if j < i {
		return line
	}
	return line[:i] + line[j+1:]
}
