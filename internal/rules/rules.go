// Package rules generates association rules from frequent itemsets — the
// second step of the discovery task in Section II of the paper.  The paper
// focuses its parallel work on frequent-itemset discovery and calls rule
// generation "straightforward"; this package implements the standard
// ap-genrules procedure of Agrawal & Srikant so the library covers the whole
// pipeline.
package rules

import (
	"fmt"
	"sort"

	"parapriori/internal/apriori"
	"parapriori/internal/itemset"
)

// Rule is an association rule X => Y with its quality measures.
//
// Support is σ(X ∪ Y)/|T| and Confidence is σ(X ∪ Y)/σ(X), exactly the
// definitions of Section II.  Lift is Confidence / P(Y) — how much more
// likely Y becomes given X than at its base rate (1 means independence) —
// and Leverage is P(X ∪ Y) − P(X)·P(Y), the absolute co-occurrence excess.
// Both are derivable from the support index, so persisted results
// (apriori.WriteResult) carry everything needed to recompute them.
type Rule struct {
	Antecedent itemset.Itemset // X
	Consequent itemset.Itemset // Y
	Count      int64           // σ(X ∪ Y)
	Support    float64
	Confidence float64
	Lift       float64
	Leverage   float64
}

// String renders the rule as "{1 2} => {3} (sup 0.40, conf 0.66, lift 1.11)".
func (r Rule) String() string {
	return fmt.Sprintf("%v => %v (sup %.4f, conf %.4f, lift %.4f)", r.Antecedent, r.Consequent, r.Support, r.Confidence, r.Lift)
}

// Params configures rule generation.
type Params struct {
	// MinConfidence is the minimum confidence threshold α in [0, 1].
	MinConfidence float64
}

// Generate derives every association rule meeting the confidence threshold
// from the frequent itemsets of a mining result.  For each frequent itemset
// f it starts from 1-item consequents and grows consequents level-wise with
// the same apriori_gen join used for candidates, exploiting the fact that
// moving items from antecedent to consequent can only lower confidence.
//
// Rules are returned sorted by descending confidence, then descending
// support, then antecedent order, so the strongest rules come first.
func Generate(res *apriori.Result, p Params) ([]Rule, error) {
	if res.N == 0 {
		return nil, nil
	}
	if p.MinConfidence < 0 || p.MinConfidence > 1 {
		return nil, fmt.Errorf("rules: MinConfidence %v outside [0, 1]", p.MinConfidence)
	}
	support := res.SupportIndex()
	n := float64(res.N)

	var out []Rule
	for size, level := range res.Levels {
		if size+1 < 2 {
			continue // no rules from single items
		}
		for _, f := range level {
			rs, _ := FromItemset(f, support, n, p.MinConfidence)
			out = append(out, rs...)
		}
	}
	Sort(out)
	return out, nil
}

// Sort orders rules by descending confidence, then descending support, then
// antecedent/consequent order — the order Generate returns.
func Sort(out []Rule) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		if c := out[i].Antecedent.Compare(out[j].Antecedent); c != 0 {
			return c < 0
		}
		return out[i].Consequent.Compare(out[j].Consequent) < 0
	})
}

// RankLess is the serving order: descending confidence, then descending
// lift (a high-lift rule is genuinely informative where an equal-confidence
// high-base-rate consequent is not), then descending support, then
// antecedent/consequent order.  The comparator is total — no two distinct
// rules compare equal — so any sort under it yields one deterministic
// ranking, the property the serving layer's top-K results rely on.
func RankLess(a, b Rule) bool {
	if a.Confidence != b.Confidence {
		return a.Confidence > b.Confidence
	}
	if a.Lift != b.Lift {
		return a.Lift > b.Lift
	}
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	if c := a.Antecedent.Compare(b.Antecedent); c != 0 {
		return c < 0
	}
	return a.Consequent.Compare(b.Consequent) < 0
}

// FromItemset emits the rules derivable from one frequent itemset f
// (ap-genrules over growing consequents) and the number of candidate rules
// evaluated — the work measure the parallel formulation charges for.  The
// support index must cover every subset of f.Items.
func FromItemset(f apriori.Frequent, support map[string]int64, n float64, minConf float64) ([]Rule, int) {
	var out []Rule
	evaluated := 0
	// Level 1: single-item consequents.
	var consequents []itemset.Itemset
	for i := range f.Items {
		y := itemset.Itemset{f.Items[i]}
		evaluated++
		if r, ok := makeRule(f, y, support, n, minConf); ok {
			out = append(out, r)
			consequents = append(consequents, y)
		}
	}
	// Grow consequents while they leave a non-empty antecedent.
	for m := 2; m < len(f.Items) && len(consequents) > 1; m++ {
		next := apriori.Gen(consequents)
		consequents = consequents[:0]
		for _, y := range next {
			evaluated++
			if r, ok := makeRule(f, y, support, n, minConf); ok {
				out = append(out, r)
				consequents = append(consequents, y)
			}
		}
	}
	return out, evaluated
}

func makeRule(f apriori.Frequent, y itemset.Itemset, support map[string]int64, n float64, minConf float64) (Rule, bool) {
	x := f.Items.Minus(y)
	if len(x) == 0 {
		return Rule{}, false
	}
	sx, ok := support[x.Key()]
	if !ok || sx == 0 {
		// Every subset of a frequent itemset is frequent, so a missing
		// antecedent means the caller passed an inconsistent result; treat
		// the rule as failing rather than panicking.
		return Rule{}, false
	}
	conf := float64(f.Count) / float64(sx)
	if conf < minConf {
		return Rule{}, false
	}
	r := Rule{
		Antecedent: x,
		Consequent: y,
		Count:      f.Count,
		Support:    float64(f.Count) / n,
		Confidence: conf,
	}
	// Y is a subset of a frequent itemset, so its support is in the index
	// whenever the caller passed a consistent result.
	if sy, ok := support[y.Key()]; ok && sy > 0 {
		py := float64(sy) / n
		r.Lift = conf / py
		r.Leverage = r.Support - (float64(sx)/n)*py
	}
	return r, true
}
