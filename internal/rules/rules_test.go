package rules

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/itemset"
)

// paperData is Table I: Bread=1, Beer=2, Coke=3, Diaper=4, Milk=5.
func paperData() *itemset.Dataset {
	rows := [][]itemset.Item{
		{1, 3, 5}, {2, 1}, {2, 3, 4, 5}, {2, 1, 4, 5}, {3, 4, 5},
	}
	txns := make([]itemset.Transaction, len(rows))
	for i, r := range rows {
		txns[i] = itemset.Transaction{ID: int64(i), Items: itemset.New(r...)}
	}
	return itemset.NewDataset(txns)
}

func mine(t *testing.T, minsup float64) *apriori.Result {
	t.Helper()
	res, err := apriori.Mine(paperData(), apriori.Params{MinSupport: minsup})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func find(rules []Rule, x, y itemset.Itemset) (Rule, bool) {
	for _, r := range rules {
		if r.Antecedent.Equal(x) && r.Consequent.Equal(y) {
			return r, true
		}
	}
	return Rule{}, false
}

func TestPaperRule(t *testing.T) {
	// {Diaper, Milk} => {Beer}: support 40%, confidence 66% (Section II).
	res := mine(t, 0.2)
	rules, err := Generate(res, Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := find(rules, itemset.New(4, 5), itemset.New(2))
	if !ok {
		t.Fatalf("rule {Diaper,Milk} => {Beer} not found among %d rules", len(rules))
	}
	if math.Abs(r.Support-0.4) > 1e-9 {
		t.Errorf("support = %v, want 0.4", r.Support)
	}
	if math.Abs(r.Confidence-2.0/3.0) > 1e-9 {
		t.Errorf("confidence = %v, want 2/3", r.Confidence)
	}
	if r.Count != 2 {
		t.Errorf("count = %d, want 2", r.Count)
	}
	// σ(Beer) = 3/5, so lift = (2/3)/(3/5) = 10/9 and
	// leverage = 0.4 − 0.6·0.6 = 0.04.
	if math.Abs(r.Lift-10.0/9.0) > 1e-9 {
		t.Errorf("lift = %v, want 10/9", r.Lift)
	}
	if math.Abs(r.Leverage-0.04) > 1e-9 {
		t.Errorf("leverage = %v, want 0.04", r.Leverage)
	}
}

func TestConfidenceThresholdFilters(t *testing.T) {
	res := mine(t, 0.2)
	loose, err := Generate(res, Params{MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Generate(res, Params{MinConfidence: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight) >= len(loose) {
		t.Errorf("tightening confidence did not shrink rules: %d vs %d", len(tight), len(loose))
	}
	for _, r := range tight {
		if r.Confidence < 0.9 {
			t.Errorf("rule %v below threshold", r)
		}
	}
}

func TestRulesSortedByStrength(t *testing.T) {
	res := mine(t, 0.2)
	rules, err := Generate(res, Params{MinConfidence: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rules); i++ {
		a, b := rules[i-1], rules[i]
		if a.Confidence < b.Confidence {
			t.Fatalf("rules unsorted at %d: %v then %v", i, a, b)
		}
	}
}

func TestRuleMeasuresConsistent(t *testing.T) {
	// For every rule: X and Y disjoint, X∪Y frequent, support and
	// confidence recomputable from the support index.
	rng := rand.New(rand.NewSource(23))
	var txns []itemset.Transaction
	for i := 0; i < 150; i++ {
		items := make([]itemset.Item, 2+rng.Intn(6))
		for j := range items {
			items[j] = itemset.Item(rng.Intn(15))
		}
		txns = append(txns, itemset.Transaction{ID: int64(i), Items: itemset.New(items...)})
	}
	d := itemset.NewDataset(txns)
	res, err := apriori.Mine(d, apriori.Params{MinSupport: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := Generate(res, Params{MinConfidence: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules generated; workload too sparse for the test")
	}
	idx := res.SupportIndex()
	n := float64(d.Len())
	for _, r := range rules {
		for _, it := range r.Consequent {
			if r.Antecedent.Contains(it) {
				t.Fatalf("rule %v has overlapping sides", r)
			}
		}
		union := r.Antecedent.Union(r.Consequent)
		cu, ok := idx[union.Key()]
		if !ok {
			t.Fatalf("rule %v union not frequent", r)
		}
		if cu != r.Count {
			t.Errorf("rule %v count %d, index says %d", r, r.Count, cu)
		}
		cx := idx[r.Antecedent.Key()]
		if math.Abs(r.Confidence-float64(cu)/float64(cx)) > 1e-12 {
			t.Errorf("rule %v confidence mismatch", r)
		}
		if math.Abs(r.Support-float64(cu)/n) > 1e-12 {
			t.Errorf("rule %v support mismatch", r)
		}
		cy := idx[r.Consequent.Key()]
		if math.Abs(r.Lift-r.Confidence/(float64(cy)/n)) > 1e-12 {
			t.Errorf("rule %v lift mismatch", r)
		}
		if math.Abs(r.Leverage-(r.Support-(float64(cx)/n)*(float64(cy)/n))) > 1e-12 {
			t.Errorf("rule %v leverage mismatch", r)
		}
	}
}

// TestRankLessTotalOrder asserts the serving comparator is a strict total
// order over generated rules: antisymmetric, and never equal for distinct
// rules — the property that makes top-K serving results deterministic.
func TestRankLessTotalOrder(t *testing.T) {
	res := mine(t, 0.2)
	rules, err := Generate(res, Params{MinConfidence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range rules {
		for j := range rules {
			if i == j {
				if RankLess(rules[i], rules[j]) {
					t.Fatalf("RankLess(r, r) true for %v", rules[i])
				}
				continue
			}
			if RankLess(rules[i], rules[j]) == RankLess(rules[j], rules[i]) {
				t.Fatalf("RankLess not a strict total order on %v / %v", rules[i], rules[j])
			}
		}
	}
}

// bruteRules enumerates all rules by splitting every frequent itemset.
func bruteRules(res *apriori.Result, minConf float64) int {
	idx := res.SupportIndex()
	count := 0
	for _, f := range res.All() {
		if len(f.Items) < 2 {
			continue
		}
		n := len(f.Items)
		for mask := 1; mask < (1<<n)-1; mask++ {
			var x, y itemset.Itemset
			for b := 0; b < n; b++ {
				if mask&(1<<b) != 0 {
					x = append(x, f.Items[b])
				} else {
					y = append(y, f.Items[b])
				}
			}
			cx := idx[x.Key()]
			if cx == 0 {
				continue
			}
			if float64(f.Count)/float64(cx) >= minConf {
				count++
			}
		}
	}
	return count
}

func TestMatchesBruteForceEnumeration(t *testing.T) {
	res := mine(t, 0.2)
	for _, conf := range []float64{0.1, 0.5, 0.8, 1.0} {
		rules, err := Generate(res, Params{MinConfidence: conf})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRules(res, conf)
		if len(rules) != want {
			t.Errorf("minconf %v: %d rules, brute force %d", conf, len(rules), want)
		}
	}
}

func TestInvalidConfidence(t *testing.T) {
	res := mine(t, 0.2)
	for _, conf := range []float64{-0.1, 1.1} {
		if _, err := Generate(res, Params{MinConfidence: conf}); err == nil {
			t.Errorf("MinConfidence %v accepted", conf)
		}
	}
}

func TestEmptyResult(t *testing.T) {
	rules, err := Generate(&apriori.Result{}, Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 0 {
		t.Errorf("rules from empty result: %v", rules)
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{
		Antecedent: itemset.New(4, 5), Consequent: itemset.New(2),
		Support: 0.4, Confidence: 2.0 / 3.0, Lift: 10.0 / 9.0, Leverage: 0.04,
	}
	want := "{4 5} => {2} (sup 0.4000, conf 0.6667, lift 1.1111)"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestReloadedResultGeneratesSameRules(t *testing.T) {
	// Persisting a result and reloading it must not change the rules it
	// generates — the reason apriori.WriteResult exists.
	res := mine(t, 0.2)
	var buf bytes.Buffer
	if err := apriori.WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := apriori.ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Generate(res, Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Generate(back, Params{MinConfidence: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("reloaded result gave %d rules, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].String() != got[i].String() {
			t.Errorf("rule %d: %v vs %v", i, got[i], want[i])
		}
	}
}
