// Package countengine defines the pluggable support-counting seam of the
// miner: build a structure over the size-k candidates, stream transaction
// blocks through it, emit the support counts.  Three backends register
// themselves here:
//
//   - "hashtree": an adapter over the paper's candidate hash tree
//     (internal/hashtree), the compatibility baseline.  Bit-identical
//     operation counts and results to calling the tree directly.
//   - "trie": items remapped to dense ints and candidates stored in a flat
//     prefix-compressed trie of contiguous per-level arrays — no per-node
//     allocation, no pointer chasing, and no failed leaf checks (a matched
//     leaf *is* a contained candidate).
//   - "bitset": the vertical representation — per-item transaction-ID
//     bitmaps built while streaming, support computed by bitmap
//     intersection and popcount instead of subset enumeration.
//
// All backends produce identical counts; they differ only in which abstract
// operations (Stats) they spend, which is what the virtual-time cost model
// charges.  The seam is deliberately narrow so the out-of-core backend can
// later implement it over partition files.
package countengine

import (
	"fmt"
	"sort"
	"sync"

	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

// Default is the engine used when no name is configured — the paper's hash
// tree, so existing runs are unchanged.
const Default = "hashtree"

// Stats counts the abstract operations a backend performed, in the units of
// the Section IV cost model: NodeSteps is charged at t_travers, ArraySteps
// at t_array, CandChecks at t_check, WordOps at t_word, ItemTouches at
// t_item, and BuildOps at t_insert.  A backend only spends the operation
// kinds it actually performs, so the virtual time charged for a pass
// reflects the work the chosen structure really did.
type Stats struct {
	// BuildOps is the structure-construction work: hash-tree candidate
	// inserts, trie nodes materialized, bitmap columns registered.
	BuildOps int64
	// NodeSteps is pointer-chasing navigation work: hash steps down an
	// allocated-node tree, where each step risks a cache miss.
	NodeSteps int64
	// ArraySteps is contiguous-array navigation work: trie merge-join
	// comparisons and gallop probes over flat per-level arrays.  The same
	// abstract role as NodeSteps, but charged at the cheaper t_array
	// because the access pattern is sequential over packed int32 arrays.
	ArraySteps int64
	// CandChecks is candidate-vs-transaction containment work: hash-tree
	// leaf checks, trie leaf matches.
	CandChecks int64
	// WordOps is 64-bit bitmap word operations (AND + popcount), the
	// bitset backend's unit of counting work.
	WordOps int64
	// ItemTouches is per-item streaming work: dense remapping, bitmap
	// column appends.
	ItemTouches int64
	// CandVisits is the number of candidate-holding slots visited; for the
	// hash tree this is distinct leaf visits (Figure 11's V).
	CandVisits int64
	// Transactions is the number of transactions streamed through
	// CountBlock.
	Transactions int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.BuildOps += other.BuildOps
	s.NodeSteps += other.NodeSteps
	s.ArraySteps += other.ArraySteps
	s.CandChecks += other.CandChecks
	s.WordOps += other.WordOps
	s.ItemTouches += other.ItemTouches
	s.CandVisits += other.CandVisits
	s.Transactions += other.Transactions
}

// Delta returns after - before, the operations spent between two snapshots.
func Delta(before, after Stats) Stats {
	return Stats{
		BuildOps:     after.BuildOps - before.BuildOps,
		NodeSteps:    after.NodeSteps - before.NodeSteps,
		ArraySteps:   after.ArraySteps - before.ArraySteps,
		CandChecks:   after.CandChecks - before.CandChecks,
		WordOps:      after.WordOps - before.WordOps,
		ItemTouches:  after.ItemTouches - before.ItemTouches,
		CandVisits:   after.CandVisits - before.CandVisits,
		Transactions: after.Transactions - before.Transactions,
	}
}

// Engine counts the supports of one pass's candidate set.  Engines are not
// goroutine-safe; each SPMD processor builds its own via Builder.NewPass.
type Engine interface {
	// Len returns the number of candidates the engine was built over.
	Len() int
	// CountBlock streams a block of transactions through the engine.
	// rootFilter, if non-nil, restricts counting to candidates whose
	// *first* item passes (IDD's bitmap pruning); backends whose candidate
	// set is already restricted to passing candidates may ignore it.
	CountBlock(txns []itemset.Transaction, rootFilter func(itemset.Item) bool)
	// Counts returns the support counts in the candidate order NewPass
	// received — the order CD's count-vector reduction depends on.
	// Deferred backends (bitset) do their counting work here, so callers
	// must snapshot Stats around the call to charge it.
	Counts() []int64
	// Stats returns the accumulated operation counters.
	Stats() Stats
	// MemoryBytes estimates the resident size of the structure.
	MemoryBytes() int
}

// Builder creates per-pass engines.  NewPass must be safe to call from
// concurrent SPMD goroutines.
type Builder interface {
	// Name returns the registered backend name.
	Name() string
	// NewPass builds an engine over the size-k candidates.  The candidate
	// slice is not modified and may arrive in any order (IDD rows receive
	// group-concatenated, not globally sorted, candidates).
	NewPass(k int, cands []itemset.Itemset) (Engine, error)
}

// DatasetPreparer is implemented by builders that can index the whole
// dataset once up front (the bitset backend's vertical TID bitmaps).  After
// Prepare, every NewPass engine counts against the prepared index and
// CountBlock calls must stream exactly the prepared transactions, in order —
// the contract of the serial miner, which scans the full dataset every
// pass.  The parallel grid never calls Prepare: its blocks arrive via ring
// shifts, so engines index on the fly.
type DatasetPreparer interface {
	Prepare(data *itemset.Dataset)
}

// Config carries the knobs a backend may need.
type Config struct {
	// Tree shapes hash trees (the "hashtree" backend; ignored by others).
	Tree hashtree.Config
	// NumItems bounds the item ID space (Dataset.NumItems); backends use
	// it to size dense remap tables.  Zero means "derive from candidates".
	NumItems int
}

// TreeStats maps the abstract counters onto the hash-tree counter names the
// pass reports and figures are stated in: navigation work (array steps and
// bitmap word operations included) appears as Traversals, containment work
// as LeafChecks.  For the "hashtree" backend the mapping is exact — the
// adapter's counters round-trip to the tree's own.
func (s Stats) TreeStats() hashtree.Stats {
	return hashtree.Stats{
		Traversals:   s.NodeSteps + s.ArraySteps + s.WordOps,
		LeafVisits:   s.CandVisits,
		LeafChecks:   s.CandChecks,
		Transactions: s.Transactions,
		Inserts:      s.BuildOps,
	}
}

var (
	registryMu sync.RWMutex
	registry   = map[string]func(Config) Builder{}
)

// Register installs a backend factory under a name; called from backend
// init functions.  Re-registering a name panics.
func Register(name string, factory func(Config) Builder) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("countengine: duplicate backend %q", name))
	}
	registry[name] = factory
}

// New builds the named backend ("" selects Default).  Unknown names return
// an error listing the registered backends.
func New(name string, cfg Config) (Builder, error) {
	if name == "" {
		name = Default
	}
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("countengine: unknown engine %q (want one of %v)", name, Names())
	}
	return factory(cfg), nil
}

// Known reports whether name is a registered backend ("" counts: it means
// the default).
func Known(name string) bool {
	if name == "" {
		return true
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	registryMu.RUnlock()
	sort.Strings(names)
	return names
}
