package countengine

import (
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

// The "hashtree" backend wraps the paper's candidate hash tree.  It is the
// compatibility baseline: the operation counters map one-to-one onto the
// tree's own (NodeSteps = Traversals, CandChecks = LeafChecks, CandVisits =
// LeafVisits, BuildOps = Inserts), so a run through the adapter charges
// exactly the virtual time a direct tree run charged and stays
// bit-identical to the pre-seam miner.

func init() {
	Register("hashtree", func(cfg Config) Builder { return &hashtreeBuilder{cfg: cfg} })
}

type hashtreeBuilder struct {
	cfg Config
}

func (b *hashtreeBuilder) Name() string { return "hashtree" }

func (b *hashtreeBuilder) NewPass(k int, cands []itemset.Itemset) (Engine, error) {
	hcands := make([]*hashtree.Candidate, len(cands))
	for i, s := range cands {
		hcands[i] = &hashtree.Candidate{Items: s}
	}
	tree, err := hashtree.New(k, hcands, b.cfg.Tree)
	if err != nil {
		return nil, err
	}
	return &hashtreeEngine{tree: tree}, nil
}

type hashtreeEngine struct {
	tree *hashtree.Tree
}

func (e *hashtreeEngine) Len() int { return e.tree.Len() }

func (e *hashtreeEngine) CountBlock(txns []itemset.Transaction, rootFilter func(itemset.Item) bool) {
	for _, t := range txns {
		e.tree.Subset(t.Items, rootFilter)
	}
}

func (e *hashtreeEngine) Counts() []int64 { return e.tree.Counts() }

func (e *hashtreeEngine) Stats() Stats {
	ts := e.tree.Stats()
	return Stats{
		BuildOps:     ts.Inserts,
		NodeSteps:    ts.Traversals,
		CandChecks:   ts.LeafChecks,
		CandVisits:   ts.LeafVisits,
		Transactions: ts.Transactions,
	}
}

func (e *hashtreeEngine) MemoryBytes() int { return e.tree.MemoryBytes() }
