package countengine_test

import (
	"reflect"
	"testing"

	"parapriori/internal/apriori"
	"parapriori/internal/countengine"
	"parapriori/internal/datagen"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

func testData(t *testing.T) *itemset.Dataset {
	t.Helper()
	p := datagen.Defaults()
	p.NumTransactions = 600
	p.NumItems = 120
	p.NumPatterns = 80
	p.AvgTxnLen = 10
	p.AvgPatternLen = 4
	p.Seed = 11
	d, err := datagen.Generate(p)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

// candLevels derives the real candidate sets C_2..C_k of the workload via
// the default miner, so the backends are exercised on the shapes apriori_gen
// actually produces.
func candLevels(t *testing.T, data *itemset.Dataset) map[int][]itemset.Itemset {
	t.Helper()
	res, err := apriori.Mine(data, apriori.Params{MinSupport: 0.02})
	if err != nil {
		t.Fatalf("mine: %v", err)
	}
	out := make(map[int][]itemset.Itemset)
	for k := 2; k-2 < len(res.Levels); k++ {
		prev := res.Levels[k-2]
		sets := make([]itemset.Itemset, len(prev))
		for i, f := range prev {
			sets[i] = f.Items
		}
		if cands := apriori.Gen(sets); len(cands) > 0 {
			out[k] = cands
		}
	}
	if len(out) < 2 {
		t.Fatalf("workload too thin: candidate levels %d", len(out))
	}
	return out
}

func newBuilder(t *testing.T, name string, numItems int) countengine.Builder {
	t.Helper()
	b, err := countengine.New(name, countengine.Config{NumItems: numItems})
	if err != nil {
		t.Fatalf("New(%q): %v", name, err)
	}
	return b
}

func countAll(t *testing.T, b countengine.Builder, k int, cands []itemset.Itemset, data *itemset.Dataset, filter func(itemset.Item) bool) []int64 {
	t.Helper()
	eng, err := b.NewPass(k, cands)
	if err != nil {
		t.Fatalf("%s.NewPass(k=%d): %v", b.Name(), k, err)
	}
	eng.CountBlock(data.Transactions, filter)
	return eng.Counts()
}

func TestRegistry(t *testing.T) {
	want := []string{"bitset", "hashtree", "trie"}
	if got := countengine.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range append(want, "") {
		if !countengine.Known(name) {
			t.Errorf("Known(%q) = false", name)
		}
	}
	if countengine.Known("btree") {
		t.Error("Known(btree) = true")
	}
	if _, err := countengine.New("btree", countengine.Config{}); err == nil {
		t.Error("New(btree) succeeded")
	}
	b, err := countengine.New("", countengine.Config{})
	if err != nil {
		t.Fatalf("New(\"\"): %v", err)
	}
	if b.Name() != countengine.Default {
		t.Errorf("default builder is %q, want %q", b.Name(), countengine.Default)
	}
}

func TestBackendsCountIdentically(t *testing.T) {
	data := testData(t)
	levels := candLevels(t, data)
	for k, cands := range levels {
		base := countAll(t, newBuilder(t, "hashtree", data.NumItems), k, cands, data, nil)
		for _, name := range countengine.Names() {
			if got := countAll(t, newBuilder(t, name, data.NumItems), k, cands, data, nil); !reflect.DeepEqual(got, base) {
				t.Errorf("k=%d: %s counts differ from hashtree", k, name)
			}
		}
	}
}

// TestShuffledCandidateOrder feeds the candidates in a non-sorted order —
// the shape IDD rows receive from the bin-packing partitioner — and checks
// every backend returns counts in the input order.
func TestShuffledCandidateOrder(t *testing.T) {
	data := testData(t)
	levels := candLevels(t, data)
	for k, cands := range levels {
		shuffled := make([]itemset.Itemset, len(cands))
		for i := range cands {
			shuffled[i] = cands[(i*7+3)%len(cands)]
		}
		base := countAll(t, newBuilder(t, "hashtree", data.NumItems), k, shuffled, data, nil)
		for _, name := range countengine.Names() {
			if got := countAll(t, newBuilder(t, name, data.NumItems), k, shuffled, data, nil); !reflect.DeepEqual(got, base) {
				t.Errorf("k=%d shuffled: %s counts differ from hashtree", k, name)
			}
		}
	}
}

// TestRootFilter exercises the seam's filter contract: the rootFilter is a
// work-pruning hint that is only guaranteed count-preserving when every
// candidate the engine holds passes it on its first item — the grid's
// actual usage, where a row's engine holds exactly its own bitmap-passing
// candidates.  Under that contract, filtered counts must equal unfiltered
// counts for every backend (the bitset ignores the filter outright).
func TestRootFilter(t *testing.T) {
	data := testData(t)
	levels := candLevels(t, data)
	reject := func(it itemset.Item) bool { return it%3 != 0 }
	for k, cands := range levels {
		var kept []itemset.Itemset
		firsts := map[itemset.Item]bool{}
		for _, c := range cands {
			if reject(c[0]) {
				kept = append(kept, c)
				firsts[c[0]] = true
			}
		}
		if len(kept) == 0 {
			continue
		}
		filter := func(it itemset.Item) bool { return firsts[it] }
		want := countAll(t, newBuilder(t, "hashtree", data.NumItems), k, kept, data, nil)
		for _, name := range countengine.Names() {
			if got := countAll(t, newBuilder(t, name, data.NumItems), k, kept, data, filter); !reflect.DeepEqual(got, want) {
				t.Errorf("k=%d: %s counts under rootFilter differ from unfiltered", k, name)
			}
		}
	}
}

func TestPreparedBitsetMatchesStreaming(t *testing.T) {
	data := testData(t)
	levels := candLevels(t, data)
	prepared := newBuilder(t, "bitset", data.NumItems)
	prepared.(countengine.DatasetPreparer).Prepare(data)
	for k, cands := range levels {
		streaming := countAll(t, newBuilder(t, "bitset", data.NumItems), k, cands, data, nil)
		if got := countAll(t, prepared, k, cands, data, nil); !reflect.DeepEqual(got, streaming) {
			t.Errorf("k=%d: prepared bitset counts differ from streaming", k)
		}
	}
}

// TestHashtreeAdapterStatsRoundTrip pins the compatibility contract: the
// adapter's abstract counters map exactly onto the tree's own, so the
// virtual time charged through the seam is bit-identical to charging the
// tree directly.
func TestHashtreeAdapterStatsRoundTrip(t *testing.T) {
	data := testData(t)
	levels := candLevels(t, data)
	for k, cands := range levels {
		hcands := make([]*hashtree.Candidate, len(cands))
		for i, s := range cands {
			hcands[i] = &hashtree.Candidate{Items: s}
		}
		tree, err := hashtree.New(k, hcands, hashtree.Config{})
		if err != nil {
			t.Fatalf("hashtree.New: %v", err)
		}
		for _, txn := range data.Transactions {
			tree.Subset(txn.Items, nil)
		}

		eng, err := newBuilder(t, "hashtree", data.NumItems).NewPass(k, cands)
		if err != nil {
			t.Fatalf("NewPass: %v", err)
		}
		eng.CountBlock(data.Transactions, nil)
		if got, want := eng.Stats().TreeStats(), tree.Stats(); got != want {
			t.Errorf("k=%d: adapter stats %+v, direct tree stats %+v", k, got, want)
		}
		if got, want := eng.MemoryBytes(), tree.MemoryBytes(); got != want {
			t.Errorf("k=%d: adapter memory %d, tree memory %d", k, got, want)
		}
	}
}

func TestTrieEdgeCases(t *testing.T) {
	txns := []itemset.Transaction{
		{ID: 0, Items: itemset.New(1, 2, 3)},
		{ID: 1, Items: itemset.New(2, 3, 4)},
		{ID: 2, Items: itemset.New(1, 3)},
	}
	data := itemset.NewDataset(txns)
	b := newBuilder(t, "trie", data.NumItems)

	// Empty candidate set.
	eng, err := b.NewPass(2, nil)
	if err != nil {
		t.Fatalf("empty NewPass: %v", err)
	}
	eng.CountBlock(txns, nil)
	if got := eng.Counts(); len(got) != 0 {
		t.Errorf("empty counts = %v", got)
	}

	// k=1 candidates (the seam allows them even though the miners use
	// array counting for pass 1).
	ones := []itemset.Itemset{itemset.New(3), itemset.New(1)}
	base := countAll(t, newBuilder(t, "hashtree", data.NumItems), 1, ones, data, nil)
	if got := countAll(t, b, 1, ones, data, nil); !reflect.DeepEqual(got, base) {
		t.Errorf("k=1 counts = %v, want %v", got, base)
	}

	// Duplicate candidates each keep their own count slot.
	dups := []itemset.Itemset{itemset.New(1, 3), itemset.New(1, 3)}
	if got := countAll(t, b, 2, dups, data, nil); !reflect.DeepEqual(got, []int64{2, 2}) {
		t.Errorf("duplicate counts = %v, want [2 2]", got)
	}

	// Malformed candidates are rejected like the hash tree rejects them.
	if _, err := b.NewPass(2, []itemset.Itemset{{3, 1}}); err == nil {
		t.Error("unsorted candidate accepted")
	}
	if _, err := b.NewPass(3, []itemset.Itemset{itemset.New(1, 2)}); err == nil {
		t.Error("wrong-size candidate accepted")
	}
}

// TestCheaperCountingOps pins the perf claim behind the new backends on a
// counting-heavy workload: the trie spends fewer containment checks than
// the hash tree (a reached trie leaf IS a match, so CandChecks == matches),
// and the bitset replaces subset enumeration with word operations entirely.
func TestCheaperCountingOps(t *testing.T) {
	data := testData(t)
	levels := candLevels(t, data)
	for k, cands := range levels {
		stats := make(map[string]countengine.Stats)
		for _, name := range countengine.Names() {
			eng, err := newBuilder(t, name, data.NumItems).NewPass(k, cands)
			if err != nil {
				t.Fatalf("%s.NewPass: %v", name, err)
			}
			eng.CountBlock(data.Transactions, nil)
			eng.Counts()
			stats[name] = eng.Stats()
		}
		if trie, tree := stats["trie"], stats["hashtree"]; trie.CandChecks >= tree.CandChecks {
			t.Errorf("k=%d: trie CandChecks %d not below hashtree %d", k, trie.CandChecks, tree.CandChecks)
		}
		bs := stats["bitset"]
		if bs.CandChecks != 0 || bs.NodeSteps != 0 {
			t.Errorf("k=%d: bitset spent subset ops (checks=%d steps=%d)", k, bs.CandChecks, bs.NodeSteps)
		}
		if bs.WordOps == 0 {
			t.Errorf("k=%d: bitset spent no word ops", k)
		}
	}
}
