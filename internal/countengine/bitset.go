package countengine

import (
	"fmt"
	"math/bits"

	"parapriori/internal/itemset"
)

// The "bitset" backend is the vertical representation: one transaction-ID
// bitmap per item, support of a candidate = popcount of the AND of its
// items' bitmaps.  Counting work becomes 64-transactions-per-word
// operations (charged at the machine's t_word) instead of per-transaction
// subset enumeration, which is why vertical counting wins at low support,
// where candidate sets are large and deep (arXiv:1903.03008).
//
// Two modes share the arithmetic:
//
//   - Streaming (the parallel grid): each per-pass engine builds bitmaps
//     over the transactions CountBlock streams through it — ring-shifted
//     pages arrive in deterministic order, so bit positions are consistent
//     across the pass — and intersects them when Counts is called.
//   - Prepared (the serial miner): the builder indexes the whole dataset
//     once up front (DatasetPreparer), and every pass reuses the index,
//     skipping the per-pass re-scan entirely.

func init() {
	Register("bitset", func(cfg Config) Builder { return &bitsetBuilder{cfg: cfg} })
}

type bitsetBuilder struct {
	cfg Config
	// prepared, when non-nil, is the whole-dataset vertical index built by
	// Prepare.  Written once before mining starts (the serial miner's
	// single goroutine); the parallel grid never calls Prepare and its
	// SPMD goroutines only read the nil.
	prepared *verticalIndex
}

func (b *bitsetBuilder) Name() string { return "bitset" }

// verticalIndex holds one TID bitmap per original item.
type verticalIndex struct {
	cols [][]uint64
	n    int
}

func (ix *verticalIndex) add(items itemset.Itemset) {
	tid := ix.n
	ix.n++
	w, bit := tid>>6, uint64(1)<<(tid&63)
	for _, it := range items {
		for int(it) >= len(ix.cols) {
			ix.cols = append(ix.cols, nil)
		}
		col := ix.cols[it]
		for len(col) <= w {
			col = append(col, 0)
		}
		col[w] |= bit
		ix.cols[it] = col
	}
}

// Prepare indexes the dataset once; subsequent NewPass engines count
// against it.  See DatasetPreparer for the streaming contract.
func (b *bitsetBuilder) Prepare(data *itemset.Dataset) {
	ix := &verticalIndex{cols: make([][]uint64, data.NumItems)}
	for i := range data.Transactions {
		ix.add(data.Transactions[i].Items)
	}
	b.prepared = ix
}

func (b *bitsetBuilder) NewPass(k int, cands []itemset.Itemset) (Engine, error) {
	for _, c := range cands {
		if len(c) != k {
			return nil, fmt.Errorf("countengine: bitset candidate %v has %d items, want %d", c, len(c), k)
		}
		if !c.Valid() {
			return nil, fmt.Errorf("countengine: bitset candidate %v is not sorted", c)
		}
	}
	e := &bitsetEngine{
		k:       k,
		cands:   cands,
		counts:  make([]int64, len(cands)),
		colRefs: make([][]uint64, 0, k),
	}
	if b.prepared != nil {
		e.prepared = b.prepared
		return e, nil
	}
	// Streaming mode: bitmap columns only for the items the candidates
	// actually contain.
	span := b.cfg.NumItems
	for _, c := range cands {
		if len(c) > 0 && int(c[k-1])+1 > span {
			span = int(c[k-1]) + 1
		}
	}
	e.remap = make([]int32, span)
	for i := range e.remap {
		e.remap[i] = -1
	}
	for _, c := range cands {
		for _, it := range c {
			if e.remap[it] < 0 {
				e.remap[it] = int32(len(e.cols))
				e.cols = append(e.cols, nil)
				e.stats.BuildOps++
			}
		}
	}
	return e, nil
}

type bitsetEngine struct {
	k     int
	cands []itemset.Itemset
	// prepared, when non-nil, is the shared whole-dataset index; otherwise
	// the engine streams into its own columns.
	prepared *verticalIndex
	remap    []int32
	cols     [][]uint64
	n        int
	counts   []int64
	counted  bool
	colRefs  [][]uint64
	stats    Stats
}

func (e *bitsetEngine) Len() int { return len(e.cands) }

// CountBlock appends the block to the vertical index (a no-op beyond
// bookkeeping in prepared mode); the actual counting is deferred to Counts,
// one intersection per candidate.
//
//checkinv:hotpath
func (e *bitsetEngine) CountBlock(txns []itemset.Transaction, rootFilter func(itemset.Item) bool) {
	// rootFilter is ignored: it only ever excludes candidates outside this
	// engine's own candidate set (the grid builds per-row engines over the
	// filtered share), so intersection counts are unaffected.
	if e.prepared != nil {
		e.stats.Transactions += int64(len(txns))
		return
	}
	for i := range txns {
		items := txns[i].Items
		e.stats.Transactions++
		e.stats.ItemTouches += int64(len(items))
		tid := e.n
		e.n++
		w, bit := tid>>6, uint64(1)<<(tid&63)
		for _, it := range items {
			if int(it) >= len(e.remap) {
				continue
			}
			di := e.remap[it]
			if di < 0 {
				continue
			}
			col := e.cols[di]
			for len(col) <= w {
				col = append(col, 0)
			}
			col[w] |= bit
			e.cols[di] = col
		}
	}
}

// column returns the TID bitmap of an original item (nil when the item was
// never streamed).
func (e *bitsetEngine) column(it itemset.Item) []uint64 {
	if e.prepared != nil {
		if int(it) < len(e.prepared.cols) {
			return e.prepared.cols[it]
		}
		return nil
	}
	if int(it) < len(e.remap) {
		if di := e.remap[it]; di >= 0 {
			return e.cols[di]
		}
	}
	return nil
}

// Counts intersects each candidate's item bitmaps.  The work happens here,
// not in CountBlock; callers snapshot Stats around the call to charge it.
//
//checkinv:hotpath
func (e *bitsetEngine) Counts() []int64 {
	if !e.counted {
		e.counted = true
		for ci := range e.cands {
			refs := e.colRefs[:0]
			nw := -1
			for _, it := range e.cands[ci] {
				col := e.column(it)
				if nw < 0 || len(col) < nw {
					nw = len(col)
				}
				refs = append(refs, col)
			}
			e.colRefs = refs
			if len(refs) == 0 || nw <= 0 {
				continue
			}
			first := refs[0]
			var cnt int64
			for w := 0; w < nw; w++ {
				v := first[w]
				for j := 1; j < len(refs); j++ {
					v &= refs[j][w]
				}
				cnt += int64(bits.OnesCount64(v))
			}
			e.stats.WordOps += int64(nw * len(refs))
			e.counts[ci] = cnt
		}
	}
	out := make([]int64, len(e.counts))
	copy(out, e.counts)
	return out
}

func (e *bitsetEngine) Stats() Stats { return e.stats }

func (e *bitsetEngine) MemoryBytes() int {
	bytes := len(e.counts)*8 + len(e.remap)*4
	cols := e.cols
	if e.prepared != nil {
		cols = e.prepared.cols
	}
	for _, col := range cols {
		bytes += len(col) * 8
	}
	return bytes
}
