package countengine

import (
	"fmt"
	"sort"

	"parapriori/internal/itemset"
)

// The "trie" backend stores the candidates in a flat prefix-compressed trie
// over a *dense* item alphabet: the distinct items appearing in the
// candidate set are remapped to 0..U-1 (order-preserving, so remapped
// transactions stay sorted), and each trie level is a pair of contiguous
// int32 arrays — node item and child range — instead of allocated nodes
// with pointers.  Counting walks the trie and the transaction suffix with a
// merge join (galloping over the node side), so unlike the hash tree a
// reached leaf *is* a contained candidate: there are no failed containment
// checks, which is where the hash tree spends most of its t_check budget
// (arXiv:1511.07017's central observation).  The root level is
// direct-indexed by dense item, mirroring the tree's O(1) root hash.

func init() {
	Register("trie", func(cfg Config) Builder { return &trieBuilder{cfg: cfg} })
}

type trieBuilder struct {
	cfg Config
}

func (b *trieBuilder) Name() string { return "trie" }

// trieLevel holds the nodes of one trie depth in two contiguous arrays,
// grouped by parent and sorted by item within each group.
type trieLevel struct {
	// items is the dense item of each node.
	items []int32
	// child holds, for internal levels, the start of each node's child
	// range in the next level (len(items)+1 entries, ranges tiling the
	// level); for the leaf level, the original candidate index of each
	// node (len(items) entries).
	child []int32
}

type trieEngine struct {
	k      int
	levels []trieLevel
	// remap maps original item → dense id (-1 when the item appears in no
	// candidate); orig inverts it.
	remap []int32
	orig  []itemset.Item
	// rootOf maps dense id → level-0 node index (-1 when the item starts
	// no candidate).
	rootOf []int32
	counts []int64
	stats  Stats
	// buf is the reusable dense-remapped transaction buffer.
	buf []int32
}

func (b *trieBuilder) NewPass(k int, cands []itemset.Itemset) (Engine, error) {
	maxItem := itemset.Item(-1)
	for _, c := range cands {
		if len(c) != k {
			return nil, fmt.Errorf("countengine: trie candidate %v has %d items, want %d", c, len(c), k)
		}
		if !c.Valid() {
			return nil, fmt.Errorf("countengine: trie candidate %v is not sorted", c)
		}
		if last := c[k-1]; last > maxItem {
			maxItem = last
		}
	}
	span := b.cfg.NumItems
	if int(maxItem)+1 > span {
		span = int(maxItem) + 1
	}
	e := &trieEngine{
		k:      k,
		levels: make([]trieLevel, k),
		remap:  make([]int32, span),
		counts: make([]int64, len(cands)),
	}
	for i := range e.remap {
		e.remap[i] = -1
	}
	for _, c := range cands {
		for _, it := range c {
			e.remap[it] = 0
		}
	}
	// Assign dense ids in ascending item order: the remap is monotone, so
	// remapped transactions keep their sort order.
	for it, mark := range e.remap {
		if mark == 0 {
			e.remap[it] = int32(len(e.orig))
			e.orig = append(e.orig, itemset.Item(it))
		}
	}

	// Sort a permutation of the candidate indices lexicographically; the
	// trie is built over the sorted view while leaves remember the original
	// index, so Counts() comes out in the caller's order (the order CD's
	// reductions depend on).
	perm := make([]int32, len(cands))
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(i, j int) bool {
		return cands[perm[i]].Compare(cands[perm[j]]) < 0
	})

	if len(cands) > 0 {
		e.build(cands, perm, 0, 0, len(perm))
		for level := 0; level < k-1; level++ {
			next := int32(len(e.levels[level+1].items))
			e.levels[level].child = append(e.levels[level].child, next)
		}
	}
	e.rootOf = make([]int32, len(e.orig))
	for i := range e.rootOf {
		e.rootOf[i] = -1
	}
	for idx, di := range e.levels[0].items {
		if e.rootOf[di] < 0 {
			e.rootOf[di] = int32(idx)
		}
	}
	return e, nil
}

// build materializes the trie nodes for the sorted candidate range
// perm[lo:hi], all of which share their first `level` items, in DFS order —
// which is what lays each node's children out contiguously in the next
// level's arrays.
func (e *trieEngine) build(cands []itemset.Itemset, perm []int32, level, lo, hi int) {
	lv := &e.levels[level]
	if level == e.k-1 {
		// One leaf per candidate: duplicates (which apriori_gen never
		// emits, but the seam does not forbid) each keep their own count
		// slot.
		for j := lo; j < hi; j++ {
			e.stats.BuildOps++
			lv.items = append(lv.items, e.remap[cands[perm[j]][level]])
			lv.child = append(lv.child, perm[j])
		}
		return
	}
	for s := lo; s < hi; {
		v := cands[perm[s]][level]
		t := s
		for t < hi && cands[perm[t]][level] == v {
			t++
		}
		e.stats.BuildOps++
		lv.items = append(lv.items, e.remap[v])
		lv.child = append(lv.child, int32(len(e.levels[level+1].items)))
		e.build(cands, perm, level+1, s, t)
		s = t
	}
}

func (e *trieEngine) Len() int { return len(e.counts) }

//checkinv:hotpath
func (e *trieEngine) CountBlock(txns []itemset.Transaction, rootFilter func(itemset.Item) bool) {
	for i := range txns {
		e.countTxn(txns[i].Items, rootFilter)
	}
}

//checkinv:hotpath
func (e *trieEngine) countTxn(txn itemset.Itemset, rootFilter func(itemset.Item) bool) {
	e.stats.Transactions++
	e.stats.ItemTouches += int64(len(txn))
	// Remap to the dense candidate alphabet, dropping items no candidate
	// contains; the remap is monotone so buf stays sorted.
	buf := e.buf[:0]
	for _, it := range txn {
		if int(it) < len(e.remap) {
			if di := e.remap[it]; di >= 0 {
				buf = append(buf, di)
			}
		}
	}
	e.buf = buf
	if len(buf) < e.k {
		return
	}
	// The root is direct-indexed: each remaining transaction item either
	// starts candidates (one level-0 node) or starts none.
	lv0 := &e.levels[0]
	last := len(buf) - e.k
	for i := 0; i <= last; i++ {
		di := buf[i]
		node := e.rootOf[di]
		if node < 0 {
			continue
		}
		e.stats.ArraySteps++
		if rootFilter != nil && !rootFilter(e.orig[di]) {
			continue
		}
		if e.k == 1 {
			e.stats.CandChecks++
			e.stats.CandVisits++
			e.counts[lv0.child[node]]++
			continue
		}
		e.walk(1, lv0.child[node], lv0.child[node+1], i+1)
	}
}

// walk merge-joins the sibling nodes levels[level].items[nlo:nhi] against
// the transaction suffix buf[tpos:], recursing on matches.  The node side
// gallops (binary search) across gaps; the transaction side advances
// linearly, since the suffix is short.
//
//checkinv:hotpath
func (e *trieEngine) walk(level int, nlo, nhi int32, tpos int) {
	lv := &e.levels[level]
	buf := e.buf
	leaf := level == e.k-1
	need := e.k - level
	a, b := nlo, tpos
	for a < nhi && b+need <= len(buf) {
		e.stats.ArraySteps++
		ni := lv.items[a]
		tv := buf[b]
		switch {
		case ni < tv:
			a = e.lowerBound(lv.items, a+1, nhi, tv)
		case ni > tv:
			b++
		default:
			if leaf {
				// Count every leaf carrying this item (one, barring
				// duplicate candidates).
				for a < nhi && lv.items[a] == tv {
					e.stats.CandChecks++
					e.stats.CandVisits++
					e.counts[lv.child[a]]++
					a++
				}
			} else {
				e.walk(level+1, lv.child[a], lv.child[a+1], b+1)
				a++
			}
			b++
		}
	}
}

// lowerBound returns the first index in items[lo:hi] holding a value >= v,
// charging one ArrayStep per probe.
//
//checkinv:hotpath
func (e *trieEngine) lowerBound(items []int32, lo, hi, v int32) int32 {
	for lo < hi {
		e.stats.ArraySteps++
		mid := (lo + hi) / 2
		if items[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (e *trieEngine) Counts() []int64 {
	out := make([]int64, len(e.counts))
	copy(out, e.counts)
	return out
}

func (e *trieEngine) Stats() Stats { return e.stats }

func (e *trieEngine) MemoryBytes() int {
	bytes := len(e.counts)*8 + len(e.remap)*4 + len(e.orig)*4 + len(e.rootOf)*4
	for i := range e.levels {
		bytes += len(e.levels[i].items)*4 + len(e.levels[i].child)*4
	}
	return bytes
}
