package itemset

import (
	"bytes"
	"strings"
	"testing"
)

func TestVocabularyBasics(t *testing.T) {
	v, err := NewVocabulary([]string{"Bread", "Beer", "Coke"})
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d", v.Len())
	}
	if got := v.Name(1); got != "Beer" {
		t.Errorf("Name(1) = %q", got)
	}
	if got := v.Name(9); got != "item9" {
		t.Errorf("Name(9) = %q", got)
	}
	if id, ok := v.ID("Coke"); !ok || id != 2 {
		t.Errorf("ID(Coke) = %d, %v", id, ok)
	}
	if _, ok := v.ID("Milk"); ok {
		t.Error("unknown name resolved")
	}
	if got := v.Label(New(0, 2)); got != "{Bread, Coke}" {
		t.Errorf("Label = %q", got)
	}
}

func TestVocabularyValidation(t *testing.T) {
	if _, err := NewVocabulary([]string{"a", "a"}); err == nil {
		t.Error("duplicate accepted")
	}
	if _, err := NewVocabulary([]string{"a", ""}); err == nil {
		t.Error("empty name accepted")
	}
}

func TestIntern(t *testing.T) {
	v, err := NewVocabulary(nil)
	if err != nil {
		t.Fatal(err)
	}
	a := v.Intern("apple")
	b := v.Intern("banana")
	if a == b {
		t.Error("distinct names share an ID")
	}
	if again := v.Intern("apple"); again != a {
		t.Errorf("re-interning changed ID: %d vs %d", again, a)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestVocabRoundTrip(t *testing.T) {
	v, err := NewVocabulary([]string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVocab(&buf, v); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVocab(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Fatalf("Len = %d", back.Len())
	}
	for _, name := range []string{"x", "y", "z"} {
		wantID, _ := v.ID(name)
		gotID, ok := back.ID(name)
		if !ok || gotID != wantID {
			t.Errorf("ID(%q) = %d, want %d", name, gotID, wantID)
		}
	}
}

func TestReadNamed(t *testing.T) {
	in := `
# a comment
Bread, Coke, Milk
Beer,Bread
Beer , Coke , Diaper , Milk
`
	d, v, err := ReadNamed(strings.NewReader(in), ",")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	bread, ok := v.ID("Bread")
	if !ok {
		t.Fatal("Bread not interned")
	}
	if !d.Transactions[0].Items.Contains(bread) || !d.Transactions[1].Items.Contains(bread) {
		t.Error("Bread missing from its transactions")
	}
	if d.Transactions[2].Items.Contains(bread) {
		t.Error("Bread present where it should not be")
	}
	if v.Len() != 5 {
		t.Errorf("vocabulary has %d names, want 5", v.Len())
	}
	if d.NumItems < v.Len() {
		t.Errorf("NumItems %d below vocabulary %d", d.NumItems, v.Len())
	}
	// Default delimiter.
	d2, _, err := ReadNamed(strings.NewReader("a,b\n"), "")
	if err != nil || d2.Len() != 1 {
		t.Errorf("default delim: %v, %d", err, d2.Len())
	}
}

func TestNamesSorted(t *testing.T) {
	v, err := NewVocabulary([]string{"pear", "apple", "mango"})
	if err != nil {
		t.Fatal(err)
	}
	names := v.Names()
	if names[0] != "apple" || names[2] != "pear" {
		t.Errorf("Names = %v", names)
	}
}
