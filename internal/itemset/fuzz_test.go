package itemset

import (
	"bytes"
	"testing"
)

// The fuzz targets assert that hostile inputs never panic the parsers and
// that anything accepted round-trips cleanly.  `go test` runs the seed
// corpus; `go test -fuzz=FuzzReadBinary ./internal/itemset` explores.

func FuzzReadDataset(f *testing.F) {
	f.Add([]byte("1 2 3\n4 5\n"))
	f.Add([]byte("# comment\n\n7\n"))
	f.Add([]byte("999999999 1\n"))
	f.Add([]byte("x y z\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := Read(bytes.NewReader(in))
		if err != nil {
			return
		}
		// Accepted datasets are well-formed: sorted itemsets, sane counts.
		for _, tx := range d.Transactions {
			if !tx.Items.Valid() {
				t.Fatalf("accepted unsorted transaction %v", tx.Items)
			}
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("rewriting accepted dataset: %v", err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-reading rewritten dataset: %v", err)
		}
		if back.Len() != d.Len() {
			t.Fatalf("round trip changed size: %d vs %d", back.Len(), d.Len())
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding and assorted corruptions.
	var valid bytes.Buffer
	_ = WriteBinary(&valid, sample())
	f.Add(valid.Bytes())
	f.Add([]byte("PAPD\x01"))
	f.Add([]byte("PAPD\x01\x05\x02\x00\x01\x05"))
	f.Add([]byte("JUNK"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		d, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		for _, tx := range d.Transactions {
			if !tx.Items.Valid() {
				t.Fatalf("accepted unsorted transaction %v", tx.Items)
			}
			for _, it := range tx.Items {
				if int(it) >= d.NumItems {
					t.Fatalf("accepted out-of-vocabulary item %d (numItems %d)", it, d.NumItems)
				}
			}
		}
	})
}

func FuzzReadAuto(f *testing.F) {
	var valid bytes.Buffer
	_ = WriteBinary(&valid, sample())
	f.Add(valid.Bytes())
	f.Add([]byte("1 2 3\n"))
	f.Add([]byte("PAP"))
	f.Fuzz(func(t *testing.T, in []byte) {
		_, _ = ReadAuto(bytes.NewReader(in)) // must not panic
	})
}
