package itemset

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Dataset {
	return NewDataset([]Transaction{
		{ID: 0, Items: New(1, 2, 3)},
		{ID: 1, Items: New(2, 4)},
		{ID: 2, Items: New(1, 5)},
		{ID: 3, Items: New(3)},
		{ID: 4, Items: New(0, 6)},
	})
}

func TestNewDatasetNumItems(t *testing.T) {
	d := sample()
	if d.NumItems != 7 {
		t.Errorf("NumItems = %d, want 7", d.NumItems)
	}
	if d.Len() != 5 {
		t.Errorf("Len = %d, want 5", d.Len())
	}
}

func TestAvgLen(t *testing.T) {
	d := sample()
	want := float64(3+2+2+1+2) / 5
	if got := d.AvgLen(); got != want {
		t.Errorf("AvgLen = %v, want %v", got, want)
	}
	empty := NewDataset(nil)
	if got := empty.AvgLen(); got != 0 {
		t.Errorf("empty AvgLen = %v", got)
	}
}

func TestSplitCoversAll(t *testing.T) {
	d := sample()
	for p := 1; p <= 7; p++ {
		shards := d.Split(p)
		if len(shards) != p {
			t.Fatalf("Split(%d) returned %d shards", p, len(shards))
		}
		total := 0
		for _, s := range shards {
			total += s.Len()
			if s.NumItems != d.NumItems {
				t.Errorf("shard NumItems = %d, want %d", s.NumItems, d.NumItems)
			}
		}
		if total != d.Len() {
			t.Errorf("Split(%d) covers %d transactions, want %d", p, total, d.Len())
		}
		// Shards must be nearly equal: sizes differ by at most 1.
		min, max := d.Len(), 0
		for _, s := range shards {
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if max-min > 1 {
			t.Errorf("Split(%d) imbalanced: min %d, max %d", p, min, max)
		}
	}
}

func TestSplitPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Split(0) should panic")
		}
	}()
	sample().Split(0)
}

func TestPages(t *testing.T) {
	d := sample()
	pages := d.Pages(25) // small pages force splits
	total := 0
	for _, pg := range pages {
		if len(pg) == 0 {
			t.Error("empty page")
		}
		total += len(pg)
	}
	if total != d.Len() {
		t.Errorf("pages cover %d transactions, want %d", total, d.Len())
	}
	// One giant page when the limit is huge.
	if got := len(d.Pages(1 << 30)); got != 1 {
		t.Errorf("expected a single page, got %d", got)
	}
	// Zero page size falls back to the default rather than panicking.
	if got := d.Pages(0); len(got) != 1 {
		t.Errorf("Pages(0) = %d pages", len(got))
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() {
		t.Fatalf("round trip lost transactions: %d vs %d", got.Len(), d.Len())
	}
	for i := range d.Transactions {
		if !got.Transactions[i].Items.Equal(d.Transactions[i].Items) {
			t.Errorf("transaction %d: %v != %v", i, got.Transactions[i].Items, d.Transactions[i].Items)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n1 2 3\n\n4 5\n# trailing\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if !d.Transactions[0].Items.Equal(New(1, 2, 3)) {
		t.Errorf("first = %v", d.Transactions[0].Items)
	}
}

func TestReadSortsAndAssignsIDs(t *testing.T) {
	d, err := Read(strings.NewReader("3 1 2\n9 8\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Transactions[0].Items.Equal(New(1, 2, 3)) {
		t.Errorf("unsorted items survived: %v", d.Transactions[0].Items)
	}
	if d.Transactions[0].ID != 0 || d.Transactions[1].ID != 1 {
		t.Errorf("bad IDs: %d, %d", d.Transactions[0].ID, d.Transactions[1].ID)
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{"1 x 3\n", "-4\n", "1 2 3.5\n"} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestBytes(t *testing.T) {
	d := sample()
	want := 0
	for _, tx := range d.Transactions {
		want += tx.Bytes()
	}
	if got := d.Bytes(); got != want {
		t.Errorf("Bytes = %d, want %d", got, want)
	}
}
