package itemset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary dataset format.  Basket text files are convenient but large and
// slow to parse; the experiments move datasets around enough that a compact
// format is worth having.  Layout (all integers unsigned varints unless
// noted):
//
//	magic "PAPD" (4 bytes) | version (1 byte, = 1)
//	numItems | numTransactions
//	per transaction: ID delta from previous ID | item count |
//	                 items as deltas (first item absolute, then gaps)
//
// Sorted itemsets make delta coding effective: typical gaps fit in one
// byte.

const (
	binaryMagic   = "PAPD"
	binaryVersion = 1
)

// AppendTransaction appends the varint/delta encoding of one transaction to
// dst and returns the extended slice: ID delta from prevID, item count, then
// item gaps (first item absolute).  This is the per-transaction unit of the
// binary dataset format, shared by WriteBinary and the partitioned
// transaction store (internal/txstore), whose partition files chain prevID
// across blocks exactly as WriteBinary chains it across the stream.
func AppendTransaction(dst []byte, t Transaction, prevID int64) ([]byte, error) {
	if t.ID < prevID {
		return dst, fmt.Errorf("itemset: transaction IDs must be non-decreasing (%d after %d)", t.ID, prevID)
	}
	if !t.Items.Valid() {
		return dst, fmt.Errorf("itemset: transaction %d: items not strictly increasing", t.ID)
	}
	dst = binary.AppendUvarint(dst, uint64(t.ID-prevID))
	dst = binary.AppendUvarint(dst, uint64(len(t.Items)))
	prev := Item(0)
	for j, it := range t.Items {
		delta := uint64(it)
		if j > 0 {
			delta = uint64(it - prev)
		}
		dst = binary.AppendUvarint(dst, delta)
		prev = it
	}
	return dst, nil
}

// DecodeTransaction decodes one transaction encoded by AppendTransaction
// from buf, appending its items to the items slice (an arena the caller may
// reuse across calls).  It returns the transaction ID, the extended items
// slice, the number of bytes consumed, or an error if the encoding is
// malformed or an item falls outside [0, numItems).
func DecodeTransaction(buf []byte, prevID int64, numItems int, items []Item) (id int64, out []Item, n int, err error) {
	idDelta, w := binary.Uvarint(buf)
	if w <= 0 {
		return 0, items, 0, fmt.Errorf("itemset: truncated transaction ID")
	}
	n = w
	id = prevID + int64(idDelta)
	count, w := binary.Uvarint(buf[n:])
	if w <= 0 {
		return 0, items, 0, fmt.Errorf("itemset: transaction %d: truncated item count", id)
	}
	n += w
	if count > uint64(numItems) {
		return 0, items, 0, fmt.Errorf("itemset: transaction %d: %d items exceeds vocabulary %d", id, count, numItems)
	}
	prev := Item(0)
	for j := uint64(0); j < count; j++ {
		delta, w := binary.Uvarint(buf[n:])
		if w <= 0 {
			return 0, items, 0, fmt.Errorf("itemset: transaction %d item %d: truncated", id, j)
		}
		n += w
		if j == 0 {
			prev = Item(delta)
		} else {
			if delta == 0 {
				return 0, items, 0, fmt.Errorf("itemset: transaction %d item %d: zero gap (duplicate item)", id, j)
			}
			prev += Item(delta)
		}
		if int(prev) >= numItems || prev < 0 {
			return 0, items, 0, fmt.Errorf("itemset: transaction %d item %d: item %d outside vocabulary %d", id, j, prev, numItems)
		}
		items = append(items, prev)
	}
	return id, items, n, nil
}

// WriteBinary encodes the dataset in the compact binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	var scratch []byte
	scratch = binary.AppendUvarint(scratch, uint64(d.NumItems))
	scratch = binary.AppendUvarint(scratch, uint64(len(d.Transactions)))
	if _, err := bw.Write(scratch); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	prevID := int64(0)
	for i, t := range d.Transactions {
		var err error
		scratch, err = AppendTransaction(scratch[:0], t, prevID)
		if err != nil {
			return fmt.Errorf("transaction %d: %w", i, err)
		}
		prevID = t.ID
		if _, err := bw.Write(scratch); err != nil {
			return fmt.Errorf("itemset: writing binary dataset: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("itemset: flushing binary dataset: %w", err)
	}
	return nil
}

// ReadBinary decodes a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("itemset: reading binary header: %w", err)
	}
	if string(magic[:4]) != binaryMagic {
		return nil, fmt.Errorf("itemset: bad magic %q (not a binary dataset)", magic[:4])
	}
	if magic[4] != binaryVersion {
		return nil, fmt.Errorf("itemset: unsupported binary version %d", magic[4])
	}
	numItems, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("itemset: reading numItems: %w", err)
	}
	numTxns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("itemset: reading transaction count: %w", err)
	}
	const maxReasonable = 1 << 34
	if numItems > maxReasonable || numTxns > maxReasonable {
		return nil, fmt.Errorf("itemset: implausible header (items %d, transactions %d)", numItems, numTxns)
	}
	d := &Dataset{NumItems: int(numItems), Transactions: make([]Transaction, 0, numTxns)}
	prevID := int64(0)
	for i := uint64(0); i < numTxns; i++ {
		idDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("itemset: transaction %d: reading ID: %w", i, err)
		}
		id := prevID + int64(idDelta)
		prevID = id
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("itemset: transaction %d: reading length: %w", i, err)
		}
		if count > numItems {
			return nil, fmt.Errorf("itemset: transaction %d: %d items exceeds vocabulary %d", i, count, numItems)
		}
		items := make(Itemset, count)
		prev := Item(0)
		for j := range items {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("itemset: transaction %d item %d: %w", i, j, err)
			}
			if j == 0 {
				prev = Item(delta)
			} else {
				if delta == 0 {
					return nil, fmt.Errorf("itemset: transaction %d item %d: zero gap (duplicate item)", i, j)
				}
				prev += Item(delta)
			}
			if int(prev) >= int(numItems) {
				return nil, fmt.Errorf("itemset: transaction %d item %d: item %d outside vocabulary %d", i, j, prev, numItems)
			}
			items[j] = prev
		}
		d.Transactions = append(d.Transactions, Transaction{ID: id, Items: items})
	}
	return d, nil
}

// ReadAuto detects the dataset format (binary vs basket text) from the
// first bytes and decodes accordingly.
func ReadAuto(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
