package itemset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary dataset format.  Basket text files are convenient but large and
// slow to parse; the experiments move datasets around enough that a compact
// format is worth having.  Layout (all integers unsigned varints unless
// noted):
//
//	magic "PAPD" (4 bytes) | version (1 byte, = 1)
//	numItems | numTransactions
//	per transaction: ID delta from previous ID | item count |
//	                 items as deltas (first item absolute, then gaps)
//
// Sorted itemsets make delta coding effective: typical gaps fit in one
// byte.

const (
	binaryMagic   = "PAPD"
	binaryVersion = 1
)

// WriteBinary encodes the dataset in the compact binary format.
func WriteBinary(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	if err := bw.WriteByte(binaryVersion); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := put(uint64(d.NumItems)); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	if err := put(uint64(len(d.Transactions))); err != nil {
		return fmt.Errorf("itemset: writing binary dataset: %w", err)
	}
	prevID := int64(0)
	for i, t := range d.Transactions {
		if t.ID < prevID {
			return fmt.Errorf("itemset: transaction %d: IDs must be non-decreasing (%d after %d)", i, t.ID, prevID)
		}
		if !t.Items.Valid() {
			return fmt.Errorf("itemset: transaction %d: items not strictly increasing", i)
		}
		if err := put(uint64(t.ID - prevID)); err != nil {
			return fmt.Errorf("itemset: writing binary dataset: %w", err)
		}
		prevID = t.ID
		if err := put(uint64(len(t.Items))); err != nil {
			return fmt.Errorf("itemset: writing binary dataset: %w", err)
		}
		prev := Item(0)
		for j, it := range t.Items {
			delta := uint64(it)
			if j > 0 {
				delta = uint64(it - prev)
			}
			if err := put(delta); err != nil {
				return fmt.Errorf("itemset: writing binary dataset: %w", err)
			}
			prev = it
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("itemset: flushing binary dataset: %w", err)
	}
	return nil
}

// ReadBinary decodes a dataset written by WriteBinary.
func ReadBinary(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("itemset: reading binary header: %w", err)
	}
	if string(magic[:4]) != binaryMagic {
		return nil, fmt.Errorf("itemset: bad magic %q (not a binary dataset)", magic[:4])
	}
	if magic[4] != binaryVersion {
		return nil, fmt.Errorf("itemset: unsupported binary version %d", magic[4])
	}
	numItems, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("itemset: reading numItems: %w", err)
	}
	numTxns, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("itemset: reading transaction count: %w", err)
	}
	const maxReasonable = 1 << 34
	if numItems > maxReasonable || numTxns > maxReasonable {
		return nil, fmt.Errorf("itemset: implausible header (items %d, transactions %d)", numItems, numTxns)
	}
	d := &Dataset{NumItems: int(numItems), Transactions: make([]Transaction, 0, numTxns)}
	prevID := int64(0)
	for i := uint64(0); i < numTxns; i++ {
		idDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("itemset: transaction %d: reading ID: %w", i, err)
		}
		id := prevID + int64(idDelta)
		prevID = id
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("itemset: transaction %d: reading length: %w", i, err)
		}
		if count > numItems {
			return nil, fmt.Errorf("itemset: transaction %d: %d items exceeds vocabulary %d", i, count, numItems)
		}
		items := make(Itemset, count)
		prev := Item(0)
		for j := range items {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("itemset: transaction %d item %d: %w", i, j, err)
			}
			if j == 0 {
				prev = Item(delta)
			} else {
				if delta == 0 {
					return nil, fmt.Errorf("itemset: transaction %d item %d: zero gap (duplicate item)", i, j)
				}
				prev += Item(delta)
			}
			if int(prev) >= int(numItems) {
				return nil, fmt.Errorf("itemset: transaction %d item %d: item %d outside vocabulary %d", i, j, prev, numItems)
			}
			items[j] = prev
		}
		d.Transactions = append(d.Transactions, Transaction{ID: id, Items: items})
	}
	return d, nil
}

// ReadAuto detects the dataset format (binary vs basket text) from the
// first bytes and decodes accordingly.
func ReadAuto(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err == nil && string(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
