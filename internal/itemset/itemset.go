// Package itemset provides the basic vocabulary of association-rule mining:
// items, itemsets, transactions and transaction datasets.
//
// An Itemset is always kept in strictly increasing item order with no
// duplicates.  That invariant is what makes subset tests, lexicographic
// comparison and the Apriori candidate join cheap, and every constructor in
// this package enforces it.
package itemset

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Item identifies a single item.  Items are small non-negative integers so
// that per-item tables (first-item counts, bitmaps) can be dense arrays.
type Item int32

// Itemset is a set of items in strictly increasing order.
type Itemset []Item

// New builds an Itemset from arbitrary items: it sorts them and removes
// duplicates.  The input slice is not modified.
func New(items ...Item) Itemset {
	s := make(Itemset, len(items))
	copy(s, items)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	for i, it := range s {
		if i == 0 || it != s[i-1] {
			out = append(out, it)
		}
	}
	return out
}

// Valid reports whether s is in strictly increasing order (the Itemset
// invariant).
func (s Itemset) Valid() bool {
	for i := 1; i < len(s); i++ {
		if s[i-1] >= s[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s Itemset) Clone() Itemset {
	c := make(Itemset, len(s))
	copy(c, s)
	return c
}

// Contains reports whether s contains item it.
func (s Itemset) Contains(it Item) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= it })
	return i < len(s) && s[i] == it
}

// ContainsAll reports whether sub is a subset of s.  Both slices must be
// sorted (the Itemset invariant); the test is a linear merge.
//
//checkinv:hotpath
func (s Itemset) ContainsAll(sub Itemset) bool {
	if len(sub) > len(s) {
		return false
	}
	i := 0
	for _, want := range sub {
		for i < len(s) && s[i] < want {
			i++
		}
		if i == len(s) || s[i] != want {
			return false
		}
		i++
	}
	return true
}

// Equal reports whether s and t contain exactly the same items.
func (s Itemset) Equal(t Itemset) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Compare orders itemsets lexicographically, shorter-prefix first.
// It returns -1, 0 or +1.
func (s Itemset) Compare(t Itemset) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		switch {
		case s[i] < t[i]:
			return -1
		case s[i] > t[i]:
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	}
	return 0
}

// Union returns the sorted union of s and t.
func (s Itemset) Union(t Itemset) Itemset {
	out := make(Itemset, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Minus returns s \ t (items of s not in t).
func (s Itemset) Minus(t Itemset) Itemset {
	out := make(Itemset, 0, len(s))
	j := 0
	for _, it := range s {
		for j < len(t) && t[j] < it {
			j++
		}
		if j < len(t) && t[j] == it {
			continue
		}
		out = append(out, it)
	}
	return out
}

// Without returns a copy of s with the item at index i removed.  It is the
// building block of the Apriori subset-prune step.
func (s Itemset) Without(i int) Itemset {
	out := make(Itemset, 0, len(s)-1)
	out = append(out, s[:i]...)
	out = append(out, s[i+1:]...)
	return out
}

// Key returns a compact byte-string key uniquely identifying s, suitable for
// use as a map key.  Each item is encoded in 4 big-endian bytes so keys of
// equal-length itemsets also sort lexicographically like Compare.
func (s Itemset) Key() string {
	var b strings.Builder
	b.Grow(4 * len(s))
	var buf [4]byte
	for _, it := range s {
		binary.BigEndian.PutUint32(buf[:], uint32(it))
		b.Write(buf[:])
	}
	return b.String()
}

// AppendKey appends the canonical key bytes of s (the Key encoding) to dst
// and returns the extended slice.  It is the allocation-friendly form for
// callers that compose keys — e.g. the serving layer's query cache, which
// keys entries by canonical basket bytes plus the result size.
func (s Itemset) AppendKey(dst []byte) []byte {
	var buf [4]byte
	for _, it := range s {
		binary.BigEndian.PutUint32(buf[:], uint32(it))
		dst = append(dst, buf[:]...)
	}
	return dst
}

// KeyToItemset decodes a key produced by Key.
func KeyToItemset(key string) Itemset {
	s := make(Itemset, 0, len(key)/4)
	for i := 0; i+4 <= len(key); i += 4 {
		s = append(s, Item(binary.BigEndian.Uint32([]byte(key[i:i+4]))))
	}
	return s
}

// String renders s as "{1 3 5}".
func (s Itemset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, it := range s {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", it)
	}
	b.WriteByte('}')
	return b.String()
}

// Transaction is one database record: a transaction identifier and the
// itemset bought/observed in it.
type Transaction struct {
	ID    int64
	Items Itemset
}

// Bytes returns the approximate on-the-wire size of the transaction,
// used by the cluster cost model: 8 bytes of TID plus 4 per item.
func (t Transaction) Bytes() int { return 8 + 4*len(t.Items) }
