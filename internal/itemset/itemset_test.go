package itemset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSortsAndDedups(t *testing.T) {
	cases := []struct {
		in   []Item
		want Itemset
	}{
		{nil, Itemset{}},
		{[]Item{5}, Itemset{5}},
		{[]Item{3, 1, 2}, Itemset{1, 2, 3}},
		{[]Item{2, 2, 2}, Itemset{2}},
		{[]Item{9, 1, 9, 1, 5}, Itemset{1, 5, 9}},
	}
	for _, c := range cases {
		got := New(c.in...)
		if !got.Equal(c.want) {
			t.Errorf("New(%v) = %v, want %v", c.in, got, c.want)
		}
		if !got.Valid() {
			t.Errorf("New(%v) = %v not valid", c.in, got)
		}
	}
}

func TestNewDoesNotModifyInput(t *testing.T) {
	in := []Item{3, 1, 2}
	New(in...)
	if !reflect.DeepEqual(in, []Item{3, 1, 2}) {
		t.Errorf("New modified its input: %v", in)
	}
}

func TestValid(t *testing.T) {
	cases := []struct {
		s    Itemset
		want bool
	}{
		{Itemset{}, true},
		{Itemset{1}, true},
		{Itemset{1, 2, 3}, true},
		{Itemset{1, 1}, false},
		{Itemset{2, 1}, false},
	}
	for _, c := range cases {
		if got := c.s.Valid(); got != c.want {
			t.Errorf("%v.Valid() = %v, want %v", c.s, got, c.want)
		}
	}
}

func TestContains(t *testing.T) {
	s := New(1, 3, 5, 7)
	for _, it := range []Item{1, 3, 5, 7} {
		if !s.Contains(it) {
			t.Errorf("%v should contain %d", s, it)
		}
	}
	for _, it := range []Item{0, 2, 4, 6, 8, 100} {
		if s.Contains(it) {
			t.Errorf("%v should not contain %d", s, it)
		}
	}
}

func TestContainsAll(t *testing.T) {
	s := New(1, 2, 3, 5, 6)
	cases := []struct {
		sub  Itemset
		want bool
	}{
		{New(), true},
		{New(1), true},
		{New(1, 6), true},
		{New(2, 3, 5), true},
		{New(1, 2, 3, 5, 6), true},
		{New(4), false},
		{New(1, 4), false},
		{New(1, 2, 3, 5, 6, 7), false},
		{New(0), false},
		{New(7), false},
	}
	for _, c := range cases {
		if got := s.ContainsAll(c.sub); got != c.want {
			t.Errorf("%v.ContainsAll(%v) = %v, want %v", s, c.sub, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Itemset
		want int
	}{
		{New(), New(), 0},
		{New(1), New(1), 0},
		{New(1), New(2), -1},
		{New(2), New(1), 1},
		{New(1), New(1, 2), -1},
		{New(1, 2), New(1), 1},
		{New(1, 3), New(1, 2, 9), 1},
		{New(1, 2, 3), New(1, 2, 3), 0},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestUnionMinusWithout(t *testing.T) {
	a, b := New(1, 3, 5), New(2, 3, 6)
	if got := a.Union(b); !got.Equal(New(1, 2, 3, 5, 6)) {
		t.Errorf("union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(New(1, 5)) {
		t.Errorf("minus = %v", got)
	}
	if got := b.Minus(a); !got.Equal(New(2, 6)) {
		t.Errorf("minus = %v", got)
	}
	if got := a.Without(1); !got.Equal(New(1, 5)) {
		t.Errorf("without = %v", got)
	}
	if got := a.Without(0); !got.Equal(New(3, 5)) {
		t.Errorf("without = %v", got)
	}
	if got := a.Without(2); !got.Equal(New(1, 3)) {
		t.Errorf("without = %v", got)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		items := make([]Item, len(raw))
		for i, r := range raw {
			items[i] = Item(r)
		}
		s := New(items...)
		return KeyToItemset(s.Key()).Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyUnique(t *testing.T) {
	seen := map[string]Itemset{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		n := rng.Intn(5)
		items := make([]Item, n)
		for j := range items {
			items[j] = Item(rng.Intn(50))
		}
		s := New(items...)
		k := s.Key()
		if prev, ok := seen[k]; ok && !prev.Equal(s) {
			t.Fatalf("key collision: %v and %v share %q", prev, s, k)
		}
		seen[k] = s
	}
}

// Property: Union is commutative, contains both operands, and is valid.
func TestUnionProperties(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := fromBytes(ra)
		b := fromBytes(rb)
		u := a.Union(b)
		u2 := b.Union(a)
		return u.Equal(u2) && u.Valid() && u.ContainsAll(a) && u.ContainsAll(b) &&
			len(u) <= len(a)+len(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Minus removes exactly the common elements.
func TestMinusProperties(t *testing.T) {
	f := func(ra, rb []uint8) bool {
		a := fromBytes(ra)
		b := fromBytes(rb)
		m := a.Minus(b)
		if !m.Valid() || !a.ContainsAll(m) {
			return false
		}
		for _, it := range m {
			if b.Contains(it) {
				return false
			}
		}
		for _, it := range a {
			if !b.Contains(it) && !m.Contains(it) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func fromBytes(raw []uint8) Itemset {
	items := make([]Item, len(raw))
	for i, r := range raw {
		items[i] = Item(r)
	}
	return New(items...)
}

func TestCloneIndependent(t *testing.T) {
	a := New(1, 2, 3)
	c := a.Clone()
	c[0] = 99
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestString(t *testing.T) {
	if got := New(3, 1, 5).String(); got != "{1 3 5}" {
		t.Errorf("String() = %q", got)
	}
	if got := New().String(); got != "{}" {
		t.Errorf("String() = %q", got)
	}
}

func TestTransactionBytes(t *testing.T) {
	tx := Transaction{ID: 1, Items: New(1, 2, 3)}
	if got := tx.Bytes(); got != 8+12 {
		t.Errorf("Bytes() = %d, want 20", got)
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	sets := []Itemset{New(), New(7), New(3, 1, 5), New(0, 1<<20, 42)}
	for _, s := range sets {
		if got := string(s.AppendKey(nil)); got != s.Key() {
			t.Errorf("AppendKey(%v) = %q, Key = %q", s, got, s.Key())
		}
	}
	// Appending onto an existing prefix keeps the prefix intact.
	pre := []byte("k:")
	got := New(1, 2).AppendKey(pre)
	if string(got[:2]) != "k:" || string(got[2:]) != New(1, 2).Key() {
		t.Errorf("AppendKey onto prefix = %q", got)
	}
}
