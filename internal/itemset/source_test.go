package itemset

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sourceFixture() *Dataset {
	txns := make([]Transaction, 0, 9001)
	for i := 0; i < 9001; i++ { // > 2 blocks at sourceBlockTxns granularity
		items := New(Item(i%97), Item(i%89+100), Item(i%7+200))
		txns = append(txns, Transaction{ID: int64(i), Items: items})
	}
	return NewDataset(txns)
}

func TestDatasetSource(t *testing.T) {
	d := sourceFixture()
	info := d.Info()
	if info.NumTxns != d.Len() || info.NumItems != d.NumItems || info.Bytes != int64(d.Bytes()) {
		t.Fatalf("info %+v inconsistent with dataset", info)
	}
	var n int
	err := d.Blocks(func(blk []Transaction) error { n += len(blk); return nil })
	if err != nil {
		t.Fatalf("blocks: %v", err)
	}
	if n != d.Len() {
		t.Fatalf("blocks yielded %d transactions, want %d", n, d.Len())
	}
	m, err := Materialize(d)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	if m != d {
		t.Fatal("materializing a Dataset should return it unchanged")
	}
}

func TestFileSourceRoundTrip(t *testing.T) {
	d := sourceFixture()
	dir := t.TempDir()

	var bin bytes.Buffer
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatalf("write binary: %v", err)
	}
	binPath := filepath.Join(dir, "data.bin")
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatalf("write file: %v", err)
	}

	var txt bytes.Buffer
	if err := Write(&txt, d); err != nil {
		t.Fatalf("write text: %v", err)
	}
	txtPath := filepath.Join(dir, "data.txt")
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatalf("write file: %v", err)
	}

	for _, path := range []string{binPath, txtPath} {
		src, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: open: %v", path, err)
		}
		if info := src.Info(); info != d.Info() {
			t.Fatalf("%s: info %+v, want %+v", path, info, d.Info())
		}
		got, err := Materialize(src)
		if err != nil {
			t.Fatalf("%s: materialize: %v", path, err)
		}
		if got.Len() != d.Len() {
			t.Fatalf("%s: %d transactions, want %d", path, got.Len(), d.Len())
		}
		for i := range d.Transactions {
			w, g := d.Transactions[i], got.Transactions[i]
			if g.ID != w.ID || !g.Items.Equal(w.Items) {
				t.Fatalf("%s: transaction %d: got %d %v, want %d %v", path, i, g.ID, g.Items, w.ID, w.Items)
			}
		}
	}
}

func TestAppendDecodeTransaction(t *testing.T) {
	txns := []Transaction{
		{ID: 0, Items: New(0)},
		{ID: 0, Items: New(1, 5, 9)},
		{ID: 7, Items: Itemset{}},
		{ID: 100, Items: New(0, 1, 2, 3)},
	}
	var buf []byte
	prev := int64(0)
	for _, tx := range txns {
		var err error
		buf, err = AppendTransaction(buf, tx, prev)
		if err != nil {
			t.Fatalf("append %v: %v", tx, err)
		}
		prev = tx.ID
	}
	prev = 0
	off := 0
	var items []Item
	for i, want := range txns {
		id, out, n, err := DecodeTransaction(buf[off:], prev, 10, items[:0])
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if id != want.ID || !Itemset(out).Equal(want.Items) {
			t.Fatalf("decode %d: got %d %v, want %d %v", i, id, out, want.ID, want.Items)
		}
		off += n
		prev = id
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
	// Truncations of a valid stream must error, never panic.
	for cut := 0; cut < len(buf); cut++ {
		prev, off = 0, 0
		for off < cut {
			id, _, n, err := DecodeTransaction(buf[off:cut], prev, 10, nil)
			if err != nil {
				break
			}
			prev, off = id, off+n
		}
	}
}
