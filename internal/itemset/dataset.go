package itemset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Dataset is an in-memory transaction database.  The paper's experiments on
// the Cray T3E kept transactions in a main-memory buffer and charged I/O
// through a cost model; we follow the same design (see DESIGN.md).
type Dataset struct {
	Transactions []Transaction
	// NumItems is one greater than the largest item that appears (the size
	// of the item vocabulary |I|).
	NumItems int
}

// NewDataset builds a Dataset from raw transactions and computes NumItems.
func NewDataset(txns []Transaction) *Dataset {
	d := &Dataset{Transactions: txns}
	for _, t := range txns {
		if n := len(t.Items); n > 0 {
			if last := int(t.Items[n-1]) + 1; last > d.NumItems {
				d.NumItems = last
			}
		}
	}
	return d
}

// Len returns the number of transactions N.
func (d *Dataset) Len() int { return len(d.Transactions) }

// Bytes returns the total approximate size of the database in bytes,
// the N that the communication analysis of Section IV is measured in.
func (d *Dataset) Bytes() int {
	total := 0
	for _, t := range d.Transactions {
		total += t.Bytes()
	}
	return total
}

// AvgLen returns the average transaction length (the paper's |T| = 15
// workload parameter).
func (d *Dataset) AvgLen() float64 {
	if len(d.Transactions) == 0 {
		return 0
	}
	total := 0
	for _, t := range d.Transactions {
		total += len(t.Items)
	}
	return float64(total) / float64(len(d.Transactions))
}

// Split partitions the dataset into p contiguous, nearly equal shards, the
// "transactions are evenly distributed among the processors" assumption all
// the parallel formulations start from.  Shard i receives transactions
// [i*N/p, (i+1)*N/p).  The shards alias the receiver's backing array.
func (d *Dataset) Split(p int) []*Dataset {
	if p <= 0 {
		panic(fmt.Sprintf("itemset: Split with non-positive p=%d", p))
	}
	shards := make([]*Dataset, p)
	n := len(d.Transactions)
	for i := 0; i < p; i++ {
		lo, hi := i*n/p, (i+1)*n/p
		shards[i] = &Dataset{Transactions: d.Transactions[lo:hi], NumItems: d.NumItems}
	}
	return shards
}

// Pages cuts the dataset into pages of at most pageBytes bytes (at least one
// transaction per page).  DD and IDD move the database between processors
// one page at a time; the page size is the unit of the communication cost
// model.
func (d *Dataset) Pages(pageBytes int) [][]Transaction {
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	var pages [][]Transaction
	start, size := 0, 0
	for i, t := range d.Transactions {
		b := t.Bytes()
		if size > 0 && size+b > pageBytes {
			pages = append(pages, d.Transactions[start:i])
			start, size = i, 0
		}
		size += b
	}
	if start < len(d.Transactions) {
		pages = append(pages, d.Transactions[start:])
	}
	return pages
}

// Read parses a transaction database in the conventional "basket file"
// format: one transaction per line, items as whitespace-separated
// non-negative integers.  Lines beginning with '#' and blank lines are
// skipped.  Transaction IDs are assigned sequentially from 0.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var txns []Transaction
	var id int64
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		items, err := parseItems(text)
		if err != nil {
			return nil, fmt.Errorf("itemset: line %d: %w", line, err)
		}
		txns = append(txns, Transaction{ID: id, Items: New(items...)})
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("itemset: reading dataset: %w", err)
	}
	return NewDataset(txns), nil
}

func parseItems(text string) ([]Item, error) {
	var items []Item
	i := 0
	for i < len(text) {
		for i < len(text) && (text[i] == ' ' || text[i] == '\t' || text[i] == '\r') {
			i++
		}
		start := i
		for i < len(text) && text[i] != ' ' && text[i] != '\t' && text[i] != '\r' {
			i++
		}
		if start == i {
			continue
		}
		v, err := strconv.Atoi(text[start:i])
		if err != nil {
			return nil, fmt.Errorf("bad item %q: %w", text[start:i], err)
		}
		if v < 0 {
			return nil, fmt.Errorf("negative item %d", v)
		}
		items = append(items, Item(v))
	}
	return items, nil
}

// Write emits the dataset in the basket-file format accepted by Read.
func Write(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range d.Transactions {
		for i, it := range t.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return fmt.Errorf("itemset: writing dataset: %w", err)
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(it))); err != nil {
				return fmt.Errorf("itemset: writing dataset: %w", err)
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("itemset: writing dataset: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("itemset: flushing dataset: %w", err)
	}
	return nil
}
