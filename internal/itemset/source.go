package itemset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// SourceInfo summarizes a transaction source.  Bytes is the modeled database
// size (the sum of Transaction.Bytes over the stream), the same N the
// communication analysis and the I/O cost model are measured in, so a
// Dataset and a spilled copy of it report identical sizes.
type SourceInfo struct {
	NumItems int
	NumTxns  int
	Bytes    int64
}

// Source is an iterator-style transaction source: anything that can stream
// its transactions in blocks without requiring the caller to hold the whole
// database in memory.  Implementations: *Dataset (in-memory), *FileSource
// (basket text or binary file), and txstore.Store (spill-to-disk partitioned
// store).
//
// Blocks calls fn for consecutive blocks of transactions in stream order.
// The block slice and its transactions are only valid during the callback —
// implementations may reuse buffers between blocks.  Blocks may be called
// any number of times; each call re-streams from the start.
type Source interface {
	Info() SourceInfo
	Blocks(fn func(block []Transaction) error) error
}

// sourceBlockTxns is the block granularity Dataset and FileSource stream at.
// It only bounds callback size (and FileSource's resident set); the counting
// cost model charges per transaction, so the value does not affect results.
const sourceBlockTxns = 4096

// Info implements Source.
func (d *Dataset) Info() SourceInfo {
	return SourceInfo{NumItems: d.NumItems, NumTxns: d.Len(), Bytes: int64(d.Bytes())}
}

// Blocks implements Source.  Blocks alias the dataset's backing array and
// remain valid after the callback returns.
func (d *Dataset) Blocks(fn func(block []Transaction) error) error {
	for lo := 0; lo < len(d.Transactions); lo += sourceBlockTxns {
		hi := lo + sourceBlockTxns
		if hi > len(d.Transactions) {
			hi = len(d.Transactions)
		}
		if err := fn(d.Transactions[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// Materialize drains a Source into an in-memory Dataset.  A *Dataset source
// is returned as-is.
func Materialize(src Source) (*Dataset, error) {
	if d, ok := src.(*Dataset); ok {
		return d, nil
	}
	info := src.Info()
	d := &Dataset{NumItems: info.NumItems, Transactions: make([]Transaction, 0, info.NumTxns)}
	err := src.Blocks(func(block []Transaction) error {
		for _, t := range block {
			d.Transactions = append(d.Transactions, Transaction{ID: t.ID, Items: t.Items.Clone()})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return d, nil
}

// FileSource streams a transaction file (basket text or binary, detected
// from the first bytes) without materializing it.  The file is scanned once
// at OpenFile to compute SourceInfo; each Blocks call re-reads it.
type FileSource struct {
	path string
	info SourceInfo
}

// OpenFile opens path as a streaming transaction source.
func OpenFile(path string) (*FileSource, error) {
	fs := &FileSource{path: path}
	info, err := fs.stream(nil)
	if err != nil {
		return nil, err
	}
	fs.info = info
	return fs, nil
}

// Path returns the underlying file path.
func (f *FileSource) Path() string { return f.path }

// Info implements Source.
func (f *FileSource) Info() SourceInfo { return f.info }

// Blocks implements Source.  The block and its item slices are reused
// between callbacks.
func (f *FileSource) Blocks(fn func(block []Transaction) error) error {
	_, err := f.stream(fn)
	return err
}

// stream reads the file once, calling fn (when non-nil) per block and
// accumulating SourceInfo over the whole stream.
func (f *FileSource) stream(fn func(block []Transaction) error) (SourceInfo, error) {
	fh, err := os.Open(f.path)
	if err != nil {
		return SourceInfo{}, fmt.Errorf("itemset: opening source: %w", err)
	}
	defer fh.Close()
	br := bufio.NewReaderSize(fh, 1<<20)
	head, err := br.Peek(4)
	if err == nil && string(head) == binaryMagic {
		return streamBinary(br, fn)
	}
	return streamText(br, fn)
}

// streamBinary streams a WriteBinary-encoded dataset block by block.
func streamBinary(br *bufio.Reader, fn func(block []Transaction) error) (SourceInfo, error) {
	var magic [5]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return SourceInfo{}, fmt.Errorf("itemset: reading binary header: %w", err)
	}
	if magic[4] != binaryVersion {
		return SourceInfo{}, fmt.Errorf("itemset: unsupported binary version %d", magic[4])
	}
	numItems, err := binary.ReadUvarint(br)
	if err != nil {
		return SourceInfo{}, fmt.Errorf("itemset: reading numItems: %w", err)
	}
	numTxns, err := binary.ReadUvarint(br)
	if err != nil {
		return SourceInfo{}, fmt.Errorf("itemset: reading transaction count: %w", err)
	}
	const maxReasonable = 1 << 34
	if numItems > maxReasonable || numTxns > maxReasonable {
		return SourceInfo{}, fmt.Errorf("itemset: implausible header (items %d, transactions %d)", numItems, numTxns)
	}
	info := SourceInfo{NumItems: int(numItems)}
	block := make([]Transaction, 0, sourceBlockTxns)
	items := make(Itemset, 0, 16*sourceBlockTxns)
	offs := make([]int32, 0, sourceBlockTxns+1)
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		if fn != nil {
			for k := range block {
				block[k].Items = items[offs[k]:offs[k+1]:offs[k+1]]
			}
			if err := fn(block); err != nil {
				return err
			}
		}
		block = block[:0]
		items = items[:0]
		offs = offs[:0]
		return nil
	}
	prevID := int64(0)
	for i := uint64(0); i < numTxns; i++ {
		idDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return SourceInfo{}, fmt.Errorf("itemset: transaction %d: reading ID: %w", i, err)
		}
		id := prevID + int64(idDelta)
		prevID = id
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return SourceInfo{}, fmt.Errorf("itemset: transaction %d: reading length: %w", i, err)
		}
		if count > numItems {
			return SourceInfo{}, fmt.Errorf("itemset: transaction %d: %d items exceeds vocabulary %d", i, count, numItems)
		}
		offs = append(offs, int32(len(items)))
		prev := Item(0)
		for j := uint64(0); j < count; j++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return SourceInfo{}, fmt.Errorf("itemset: transaction %d item %d: %w", i, j, err)
			}
			if j == 0 {
				prev = Item(delta)
			} else {
				if delta == 0 {
					return SourceInfo{}, fmt.Errorf("itemset: transaction %d item %d: zero gap (duplicate item)", i, j)
				}
				prev += Item(delta)
			}
			if uint64(prev) >= numItems {
				return SourceInfo{}, fmt.Errorf("itemset: transaction %d item %d: item %d outside vocabulary %d", i, j, prev, numItems)
			}
			items = append(items, prev)
		}
		t := Transaction{ID: id}
		info.NumTxns++
		info.Bytes += int64(8 + 4*count)
		block = append(block, t)
		if len(block) == sourceBlockTxns {
			offs = append(offs, int32(len(items)))
			if err := flush(); err != nil {
				return SourceInfo{}, err
			}
		}
	}
	offs = append(offs, int32(len(items)))
	if err := flush(); err != nil {
		return SourceInfo{}, err
	}
	return info, nil
}

// streamText streams a basket-text dataset block by block.  NumItems is the
// maximum item seen plus one, accumulated over the whole file — callers that
// need it before the stream ends (everyone) go through OpenFile, which scans
// once up front.
func streamText(br *bufio.Reader, fn func(block []Transaction) error) (SourceInfo, error) {
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var info SourceInfo
	block := make([]Transaction, 0, sourceBlockTxns)
	var id int64
	line := 0
	flush := func() error {
		if len(block) == 0 {
			return nil
		}
		if fn != nil {
			if err := fn(block); err != nil {
				return err
			}
		}
		block = block[:0]
		return nil
	}
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		items, err := parseItems(text)
		if err != nil {
			return SourceInfo{}, fmt.Errorf("itemset: line %d: %w", line, err)
		}
		t := Transaction{ID: id, Items: New(items...)}
		id++
		if n := len(t.Items); n > 0 {
			if last := int(t.Items[n-1]) + 1; last > info.NumItems {
				info.NumItems = last
			}
		}
		info.NumTxns++
		info.Bytes += int64(t.Bytes())
		block = append(block, t)
		if len(block) == sourceBlockTxns {
			if err := flush(); err != nil {
				return SourceInfo{}, err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return SourceInfo{}, fmt.Errorf("itemset: reading dataset: %w", err)
	}
	if err := flush(); err != nil {
		return SourceInfo{}, err
	}
	return info, nil
}
