package itemset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != d.Len() || got.NumItems != d.NumItems {
		t.Fatalf("shape: %d/%d vs %d/%d", got.Len(), got.NumItems, d.Len(), d.NumItems)
	}
	for i := range d.Transactions {
		if got.Transactions[i].ID != d.Transactions[i].ID {
			t.Errorf("transaction %d ID %d, want %d", i, got.Transactions[i].ID, d.Transactions[i].ID)
		}
		if !got.Transactions[i].Items.Equal(d.Transactions[i].Items) {
			t.Errorf("transaction %d items %v, want %v", i, got.Transactions[i].Items, d.Transactions[i].Items)
		}
	}
}

func TestBinaryRoundTripRandom(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var txns []Transaction
		id := int64(0)
		for i := 0; i < int(n); i++ {
			id += int64(rng.Intn(3)) // non-decreasing, possibly sparse IDs
			items := make([]Item, 1+rng.Intn(10))
			for j := range items {
				items[j] = Item(rng.Intn(1000))
			}
			txns = append(txns, Transaction{ID: id, Items: New(items...)})
		}
		d := NewDataset(txns)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, d); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != d.Len() {
			return false
		}
		for i := range d.Transactions {
			if got.Transactions[i].ID != d.Transactions[i].ID ||
				!got.Transactions[i].Items.Equal(d.Transactions[i].Items) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	// 500 dense transactions: the varint+delta format should beat text.
	var txns []Transaction
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		items := make([]Item, 10)
		for j := range items {
			items[j] = Item(rng.Intn(900))
		}
		txns = append(txns, Transaction{ID: int64(i), Items: New(items...)})
	}
	d := NewDataset(txns)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, d); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary %d bytes >= text %d bytes", bin.Len(), txt.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("PAP"),
		[]byte("XXXX\x01"),
		[]byte("PAPD\x02"),     // wrong version
		[]byte("PAPD\x01\xff"), // truncated varint
	}
	for i, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestBinaryRejectsTruncatedBody(t *testing.T) {
	d := sample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 6} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryRejectsOutOfVocabulary(t *testing.T) {
	// Hand-craft: numItems=2 but an item of 5.
	var buf bytes.Buffer
	buf.WriteString("PAPD\x01")
	buf.WriteByte(2) // numItems
	buf.WriteByte(1) // numTxns
	buf.WriteByte(0) // id delta
	buf.WriteByte(1) // item count
	buf.WriteByte(5) // item 5 >= 2
	if _, err := ReadBinary(&buf); err == nil {
		t.Error("out-of-vocabulary item accepted")
	}
}

func TestWriteBinaryValidates(t *testing.T) {
	bad := &Dataset{NumItems: 10, Transactions: []Transaction{
		{ID: 5, Items: New(1)},
		{ID: 3, Items: New(2)}, // decreasing ID
	}}
	if err := WriteBinary(&bytes.Buffer{}, bad); err == nil {
		t.Error("decreasing IDs accepted")
	}
	unsorted := &Dataset{NumItems: 10, Transactions: []Transaction{
		{ID: 0, Items: Itemset{3, 1}},
	}}
	if err := WriteBinary(&bytes.Buffer{}, unsorted); err == nil {
		t.Error("unsorted items accepted")
	}
}

func TestReadAuto(t *testing.T) {
	d := sample()
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, d); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, d); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadAuto(&bin)
	if err != nil {
		t.Fatal(err)
	}
	fromTxt, err := ReadAuto(&txt)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.Len() != d.Len() || fromTxt.Len() != d.Len() {
		t.Errorf("auto-detect lost transactions: %d, %d, want %d", fromBin.Len(), fromTxt.Len(), d.Len())
	}
	// Text starting with digits must not be mistaken for binary.
	if _, err := ReadAuto(strings.NewReader("1 2 3\n")); err != nil {
		t.Errorf("plain text rejected: %v", err)
	}
}
