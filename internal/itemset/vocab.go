package itemset

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Vocabulary maps between item IDs and human-readable names.  Mining
// operates on dense integer items; a Vocabulary lets applications load
// named catalogs (product names, page URLs) and render itemsets and rules
// readably.
type Vocabulary struct {
	names []string
	ids   map[string]Item
}

// NewVocabulary builds a vocabulary from names; name i becomes item i.
// Duplicate names are rejected.
func NewVocabulary(names []string) (*Vocabulary, error) {
	v := &Vocabulary{names: append([]string(nil), names...), ids: make(map[string]Item, len(names))}
	for i, n := range v.names {
		if n == "" {
			return nil, fmt.Errorf("itemset: empty name for item %d", i)
		}
		if _, dup := v.ids[n]; dup {
			return nil, fmt.Errorf("itemset: duplicate name %q", n)
		}
		v.ids[n] = Item(i)
	}
	return v, nil
}

// Len returns the number of named items.
func (v *Vocabulary) Len() int { return len(v.names) }

// Name returns the name of item it, or "item<N>" for unnamed items so
// rendering never fails.
func (v *Vocabulary) Name(it Item) string {
	if int(it) >= 0 && int(it) < len(v.names) {
		return v.names[it]
	}
	return fmt.Sprintf("item%d", it)
}

// ID looks a name up.
func (v *Vocabulary) ID(name string) (Item, bool) {
	it, ok := v.ids[name]
	return it, ok
}

// Intern returns the item for name, assigning the next free ID if the name
// is new — the building block for loading named transaction files.
func (v *Vocabulary) Intern(name string) Item {
	if it, ok := v.ids[name]; ok {
		return it
	}
	it := Item(len(v.names))
	v.names = append(v.names, name)
	if v.ids == nil {
		v.ids = make(map[string]Item)
	}
	v.ids[name] = it
	return it
}

// Label renders an itemset with names: "{Diaper, Milk}".
func (v *Vocabulary) Label(s Itemset) string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = v.Name(it)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// WriteVocab writes one name per line, in item order.
func WriteVocab(w io.Writer, v *Vocabulary) error {
	bw := bufio.NewWriter(w)
	for _, n := range v.names {
		if _, err := fmt.Fprintln(bw, n); err != nil {
			return fmt.Errorf("itemset: writing vocabulary: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("itemset: flushing vocabulary: %w", err)
	}
	return nil
}

// ReadVocab reads a vocabulary written by WriteVocab.
func ReadVocab(r io.Reader) (*Vocabulary, error) {
	sc := bufio.NewScanner(r)
	var names []string
	for sc.Scan() {
		names = append(names, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("itemset: reading vocabulary: %w", err)
	}
	return NewVocabulary(names)
}

// ReadNamed parses a transaction file whose items are names rather than
// integers — one transaction per line, names separated by the given
// delimiter (e.g. "," for CSV-ish baskets; any amount of surrounding space
// is trimmed).  It returns the dataset plus the vocabulary built from the
// names in order of first appearance.
func ReadNamed(r io.Reader, delim string) (*Dataset, *Vocabulary, error) {
	if delim == "" {
		delim = ","
	}
	v, err := NewVocabulary(nil)
	if err != nil {
		return nil, nil, err
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var txns []Transaction
	var id int64
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var items []Item
		for _, field := range strings.Split(line, delim) {
			name := strings.TrimSpace(field)
			if name == "" {
				continue
			}
			items = append(items, v.Intern(name))
		}
		if len(items) == 0 {
			continue
		}
		txns = append(txns, Transaction{ID: id, Items: New(items...)})
		id++
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("itemset: reading named dataset: %w", err)
	}
	d := NewDataset(txns)
	if d.NumItems < v.Len() {
		d.NumItems = v.Len()
	}
	return d, v, nil
}

// Names returns the vocabulary's names sorted alphabetically — handy for
// stable display of catalogs.
func (v *Vocabulary) Names() []string {
	out := append([]string(nil), v.names...)
	sort.Strings(out)
	return out
}
