package apriori

import (
	"math/rand"
	"testing"

	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

// paperData is the supermarket database of Table I with items encoded as
// Bread=1, Beer=2, Coke=3, Diaper=4, Milk=5.
func paperData() *itemset.Dataset {
	rows := [][]itemset.Item{
		{1, 3, 5},    // Bread, Coke, Milk
		{2, 1},       // Beer, Bread
		{2, 3, 4, 5}, // Beer, Coke, Diaper, Milk
		{2, 1, 4, 5}, // Beer, Bread, Diaper, Milk
		{3, 4, 5},    // Coke, Diaper, Milk
	}
	txns := make([]itemset.Transaction, len(rows))
	for i, r := range rows {
		txns[i] = itemset.Transaction{ID: int64(i), Items: itemset.New(r...)}
	}
	return itemset.NewDataset(txns)
}

func TestPaperSupportCounts(t *testing.T) {
	// σ(Diaper, Milk) = 3 and σ(Diaper, Milk, Beer) = 2 (Section II).
	res, err := Mine(paperData(), Params{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	idx := res.SupportIndex()
	if got := idx[itemset.New(4, 5).Key()]; got != 3 {
		t.Errorf("σ(Diaper,Milk) = %d, want 3", got)
	}
	if got := idx[itemset.New(2, 4, 5).Key()]; got != 2 {
		t.Errorf("σ(Diaper,Milk,Beer) = %d, want 2", got)
	}
}

func TestMineMinSupportFilters(t *testing.T) {
	// At 60% support (count >= 3) only the heavy hitters survive.
	res, err := Mine(paperData(), Params{MinSupport: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	idx := res.SupportIndex()
	for key, c := range idx {
		if c < 3 {
			t.Errorf("itemset %v with count %d survived 60%% support", itemset.KeyToItemset(key), c)
		}
	}
	// {Milk} appears 4 times, {Diaper, Milk} 3 times.
	if _, ok := idx[itemset.New(5).Key()]; !ok {
		t.Error("missing {Milk}")
	}
	if _, ok := idx[itemset.New(4, 5).Key()]; !ok {
		t.Error("missing {Diaper, Milk}")
	}
}

// bruteFrequent enumerates frequent itemsets by exhaustive search.
func bruteFrequent(d *itemset.Dataset, minCount int64) map[string]int64 {
	out := map[string]int64{}
	var items []itemset.Item
	for i := 0; i < d.NumItems; i++ {
		items = append(items, itemset.Item(i))
	}
	n := len(items)
	if n > 16 {
		panic("bruteFrequent: too many items")
	}
	for mask := 1; mask < 1<<n; mask++ {
		var s itemset.Itemset
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				s = append(s, items[b])
			}
		}
		var count int64
		for _, txn := range d.Transactions {
			if txn.Items.ContainsAll(s) {
				count++
			}
		}
		if count >= minCount {
			out[s.Key()] = count
		}
	}
	return out
}

func TestMineMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		var txns []itemset.Transaction
		for i := 0; i < 60; i++ {
			items := make([]itemset.Item, 1+rng.Intn(8))
			for j := range items {
				items[j] = itemset.Item(rng.Intn(12))
			}
			txns = append(txns, itemset.Transaction{ID: int64(i), Items: itemset.New(items...)})
		}
		d := itemset.NewDataset(txns)
		minsup := []float64{0.05, 0.1, 0.2}[trial%3]
		res, err := Mine(d, Params{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteFrequent(d, res.MinCount)
		got := res.SupportIndex()
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d frequent itemsets, brute force found %d", trial, len(got), len(want))
		}
		for k, c := range want {
			if got[k] != c {
				t.Errorf("trial %d: %v count %d, want %d", trial, itemset.KeyToItemset(k), got[k], c)
			}
		}
	}
}

func TestGen(t *testing.T) {
	// F2 = {12, 13, 14, 23, 34}: join gives {123, 124, 134, 234}; prune
	// drops 134 (34 ok, 14 ok, 13 ok — all present, stays), 234 (24
	// missing — dropped), 124 (24 missing — dropped), 123 (23 present,
	// stays).
	prev := []itemset.Itemset{
		itemset.New(1, 2), itemset.New(1, 3), itemset.New(1, 4),
		itemset.New(2, 3), itemset.New(3, 4),
	}
	got := Gen(prev)
	want := []itemset.Itemset{itemset.New(1, 2, 3), itemset.New(1, 3, 4)}
	if len(got) != len(want) {
		t.Fatalf("Gen = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Errorf("Gen[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGenEmptyAndSingle(t *testing.T) {
	if got := Gen(nil); got != nil {
		t.Errorf("Gen(nil) = %v", got)
	}
	if got := Gen([]itemset.Itemset{itemset.New(1)}); len(got) != 0 {
		t.Errorf("Gen(single) = %v", got)
	}
	// Two 1-itemsets always join (no prefix, prune trivial).
	got := Gen([]itemset.Itemset{itemset.New(1), itemset.New(2)})
	if len(got) != 1 || !got[0].Equal(itemset.New(1, 2)) {
		t.Errorf("Gen = %v", got)
	}
}

func TestGenOutputSorted(t *testing.T) {
	prev := []itemset.Itemset{
		itemset.New(1), itemset.New(2), itemset.New(3), itemset.New(7),
	}
	got := Gen(prev)
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatalf("Gen output unsorted at %d: %v", i, got)
		}
	}
	if len(got) != 6 {
		t.Errorf("C(4,2) = %d, want 6", len(got))
	}
}

func TestFirstPass(t *testing.T) {
	d := paperData()
	f1, stats := FirstPass(d, 3)
	// Counts: Bread 3, Beer 3, Coke 3, Diaper 3, Milk 4 — all ≥ 3.
	if len(f1) != 5 {
		t.Fatalf("F1 = %v", f1)
	}
	if stats.K != 1 || stats.Frequent != 5 {
		t.Errorf("stats = %+v", stats)
	}
	f1, _ = FirstPass(d, 4)
	if len(f1) != 1 || !f1[0].Items.Equal(itemset.New(5)) {
		t.Errorf("F1 at minCount 4 = %v", f1)
	}
}

func TestMinCount(t *testing.T) {
	cases := []struct {
		sup  float64
		n    int
		want int64
	}{
		{0.5, 10, 5},
		{0.1, 1000, 100},
		{0.001, 100, 1}, // ceil(0.1) but at least 1
		{0.0001, 10, 1}, // never below 1
		{0.15, 10, 2},   // ceil(1.5)
		{0.101, 10, 2},  // ceil(1.01)
		{0.3, 7, 3},     // ceil(2.1)
	}
	for _, c := range cases {
		if got := (Params{MinSupport: c.sup}).MinCount(c.n); got != c.want {
			t.Errorf("MinCount(%v, %d) = %d, want %d", c.sup, c.n, got, c.want)
		}
	}
}

func TestMaxPasses(t *testing.T) {
	res, err := Mine(paperData(), Params{MinSupport: 0.4, MaxPasses: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) > 2 {
		t.Errorf("MaxPasses=2 produced %d levels", len(res.Levels))
	}
}

func TestMemoryCappedEqualsUncapped(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var txns []itemset.Transaction
	for i := 0; i < 300; i++ {
		items := make([]itemset.Item, 3+rng.Intn(8))
		for j := range items {
			items[j] = itemset.Item(rng.Intn(40))
		}
		txns = append(txns, itemset.Transaction{ID: int64(i), Items: itemset.New(items...)})
	}
	d := itemset.NewDataset(txns)
	full, err := Mine(d, Params{MinSupport: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Mine(d, Params{MinSupport: 0.02, MemoryBytes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	multi := false
	for _, ps := range capped.Passes {
		if ps.TreeParts > 1 {
			multi = true
		}
	}
	if !multi {
		t.Fatal("memory cap did not force partitioned counting")
	}
	w, g := full.All(), capped.All()
	if len(w) != len(g) {
		t.Fatalf("capped mining found %d itemsets, want %d", len(g), len(w))
	}
	for i := range w {
		if !w[i].Items.Equal(g[i].Items) || w[i].Count != g[i].Count {
			t.Errorf("itemset %d differs: %v/%d vs %v/%d", i, g[i].Items, g[i].Count, w[i].Items, w[i].Count)
		}
	}
	// The capped run rescans the database: strictly more bytes.
	if capped.Passes[1].BytesScanned <= full.Passes[1].BytesScanned {
		t.Errorf("capped run scanned %d bytes, uncapped %d", capped.Passes[1].BytesScanned, full.Passes[1].BytesScanned)
	}
}

func TestTreeParts(t *testing.T) {
	p := Params{MemoryBytes: 0}
	if got := TreeParts(1000, 2, p); got != 1 {
		t.Errorf("uncapped TreeParts = %d", got)
	}
	p.MemoryBytes = 1
	if got := TreeParts(100, 2, p); got != 100 {
		t.Errorf("tiny cap TreeParts = %d, want 100 (capped at numCands)", got)
	}
	p.MemoryBytes = hashtree.EstimateMemoryBytes(1000, 2, hashtree.Config{})
	if got := TreeParts(1000, 2, p); got != 1 {
		t.Errorf("exact-fit TreeParts = %d", got)
	}
	if got := TreeParts(0, 2, p); got != 1 {
		t.Errorf("zero candidates TreeParts = %d", got)
	}
}

func TestResultHelpers(t *testing.T) {
	res, err := Mine(paperData(), Params{MinSupport: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrequent() != len(res.All()) {
		t.Errorf("NumFrequent %d != len(All) %d", res.NumFrequent(), len(res.All()))
	}
	idx := res.SupportIndex()
	if len(idx) != res.NumFrequent() {
		t.Errorf("SupportIndex size %d != %d", len(idx), res.NumFrequent())
	}
	// Levels are sorted lexicographically.
	for _, level := range res.Levels {
		for i := 1; i < len(level); i++ {
			if level[i-1].Items.Compare(level[i].Items) >= 0 {
				t.Errorf("level unsorted: %v before %v", level[i-1].Items, level[i].Items)
			}
		}
	}
}

// Property: the Apriori closure — every subset of a frequent itemset is
// frequent with at least the superset's count.
func TestDownwardClosure(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var txns []itemset.Transaction
	for i := 0; i < 200; i++ {
		items := make([]itemset.Item, 2+rng.Intn(6))
		for j := range items {
			items[j] = itemset.Item(rng.Intn(25))
		}
		txns = append(txns, itemset.Transaction{ID: int64(i), Items: itemset.New(items...)})
	}
	d := itemset.NewDataset(txns)
	res, err := Mine(d, Params{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	idx := res.SupportIndex()
	for _, f := range res.All() {
		for i := range f.Items {
			sub := f.Items.Without(i)
			if len(sub) == 0 {
				continue
			}
			c, ok := idx[sub.Key()]
			if !ok {
				t.Fatalf("subset %v of frequent %v is not frequent", sub, f.Items)
			}
			if c < f.Count {
				t.Errorf("support of %v (%d) below superset %v (%d)", sub, c, f.Items, f.Count)
			}
		}
	}
}
