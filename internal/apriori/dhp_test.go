package apriori

import (
	"math/rand"
	"testing"

	"parapriori/internal/itemset"
)

func randomData(seed int64, n, vocab int) *itemset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	var txns []itemset.Transaction
	for i := 0; i < n; i++ {
		items := make([]itemset.Item, 3+rng.Intn(8))
		for j := range items {
			items[j] = itemset.Item(rng.Intn(vocab))
		}
		txns = append(txns, itemset.Transaction{ID: int64(i), Items: itemset.New(items...)})
	}
	return itemset.NewDataset(txns)
}

func TestDHPIdenticalResults(t *testing.T) {
	d := randomData(31, 500, 60)
	for _, buckets := range []int{16, 256, 4096} {
		plain, err := Mine(d, Params{MinSupport: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		dhp, err := Mine(d, Params{MinSupport: 0.02, DHPBuckets: buckets})
		if err != nil {
			t.Fatal(err)
		}
		w, g := plain.All(), dhp.All()
		if len(w) != len(g) {
			t.Fatalf("buckets=%d: DHP found %d itemsets, plain %d", buckets, len(g), len(w))
		}
		for i := range w {
			if !w[i].Items.Equal(g[i].Items) || w[i].Count != g[i].Count {
				t.Fatalf("buckets=%d: itemset %d differs", buckets, i)
			}
		}
	}
}

func TestDHPPrunesCandidates(t *testing.T) {
	d := randomData(31, 500, 60)
	// With enough buckets relative to the pair space, many infrequent C2
	// candidates land in cold buckets and are pruned before counting.
	dhp, err := Mine(d, Params{MinSupport: 0.03, DHPBuckets: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Mine(d, Params{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	if len(dhp.Passes) < 2 || len(plain.Passes) < 2 {
		t.Skip("workload produced no pass 2")
	}
	if dhp.Passes[1].DHPPruned == 0 {
		t.Error("DHP pruned nothing")
	}
	if dhp.Passes[1].Candidates >= plain.Passes[1].Candidates {
		t.Errorf("DHP counted %d candidates, plain %d", dhp.Passes[1].Candidates, plain.Passes[1].Candidates)
	}
	if plain.Passes[1].DHPPruned != 0 {
		t.Error("plain run reports DHP pruning")
	}
}

func TestDHPFewBucketsPrunesLess(t *testing.T) {
	d := randomData(7, 600, 80)
	pruned := func(buckets int) int {
		res, err := Mine(d, Params{MinSupport: 0.03, DHPBuckets: buckets})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Passes) < 2 {
			t.Skip("no pass 2")
		}
		return res.Passes[1].DHPPruned
	}
	few, many := pruned(8), pruned(1<<16)
	if few > many {
		t.Errorf("8 buckets pruned %d, 65536 buckets pruned %d: collisions should reduce pruning", few, many)
	}
}

func TestPairBucketsSoundness(t *testing.T) {
	// A bucket count is always >= the true support of any pair hashing to
	// it: admits never rejects a truly frequent pair.
	d := randomData(99, 300, 30)
	minCount := int64(5)
	_, pb, _ := FirstPassDHP(d, minCount, 64)
	truth := map[string]int64{}
	for _, txn := range d.Transactions {
		items := txn.Items
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				truth[itemset.New(items[i], items[j]).Key()]++
			}
		}
	}
	for key, count := range truth {
		if count < minCount {
			continue
		}
		pair := itemset.KeyToItemset(key)
		if !pb.admits(pair, minCount) {
			t.Fatalf("frequent pair %v (count %d) rejected by DHP filter", pair, count)
		}
	}
}

func TestFirstPassDHPMatchesFirstPass(t *testing.T) {
	d := randomData(3, 200, 40)
	plain, _ := FirstPass(d, 4)
	withDHP, pb, _ := FirstPassDHP(d, 4, 128)
	if pb == nil {
		t.Fatal("no buckets built")
	}
	if len(plain) != len(withDHP) {
		t.Fatalf("F1 sizes differ: %d vs %d", len(plain), len(withDHP))
	}
	for i := range plain {
		if !plain[i].Items.Equal(withDHP[i].Items) || plain[i].Count != withDHP[i].Count {
			t.Errorf("F1[%d] differs", i)
		}
	}
}
