package apriori

import (
	"bytes"
	"strings"
	"testing"
)

func TestResultRoundTrip(t *testing.T) {
	d := randomData(13, 400, 40)
	res, err := Mine(d, Params{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteResult(&buf, res); err != nil {
		t.Fatal(err)
	}
	back, err := ReadResult(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != res.N || back.MinCount != res.MinCount {
		t.Errorf("header: N=%d minCount=%d, want N=%d minCount=%d", back.N, back.MinCount, res.N, res.MinCount)
	}
	w, g := res.All(), back.All()
	if len(w) != len(g) {
		t.Fatalf("round trip: %d itemsets, want %d", len(g), len(w))
	}
	for i := range w {
		if !w[i].Items.Equal(g[i].Items) || w[i].Count != g[i].Count {
			t.Errorf("itemset %d differs: %v/%d vs %v/%d", i, g[i].Items, g[i].Count, w[i].Items, w[i].Count)
		}
	}
}

// TestWriteResultByteStable pins the canonical-output guarantee: writing
// the same frequent itemsets must produce identical bytes whatever their
// in-memory order, so saved results are diffable across runs.
func TestWriteResultByteStable(t *testing.T) {
	d := randomData(13, 400, 40)
	res, err := Mine(d, Params{MinSupport: 0.03})
	if err != nil {
		t.Fatal(err)
	}
	var a bytes.Buffer
	if err := WriteResult(&a, res); err != nil {
		t.Fatal(err)
	}

	// Scramble every level (reverse order) into a second Result; the bytes
	// must not change, and the caller's slices must not be mutated.
	scrambled := &Result{N: res.N, MinCount: res.MinCount}
	for _, level := range res.Levels {
		rev := make([]Frequent, len(level))
		for i, f := range level {
			rev[len(level)-1-i] = f
		}
		scrambled.Levels = append(scrambled.Levels, rev)
	}
	var b bytes.Buffer
	if err := WriteResult(&b, scrambled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteResult output depends on in-memory level order")
	}
	for li, level := range scrambled.Levels {
		if len(level) < 2 {
			continue
		}
		if level[0].Items.Compare(level[len(level)-1].Items) < 0 {
			t.Errorf("level %d: WriteResult mutated the caller's slice", li)
		}
	}

	// And a full round trip re-serializes to the identical bytes.
	back, err := ReadResult(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if err := WriteResult(&c, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("read→write round trip is not byte-identical")
	}
}

func TestReadResultErrors(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"#parapriori-frequent v1 N=x\n",
		"#parapriori-frequent v1 N=5 bogus=1\n",
		"#parapriori-frequent v1 N=5 minCount=2\nxyz 1\n",
		"#parapriori-frequent v1 N=5 minCount=2\n3\n",     // count without items
		"#parapriori-frequent v1 N=5 minCount=2\n3 1 1\n", // duplicate items
		"#parapriori-frequent v1 N=5 minCount=2\n-1 1\n",  // negative count
		"#parapriori-frequent v1 N=5 minCount=2\n3 -2\n",  // negative item
	}
	for i, in := range cases {
		if _, err := ReadResult(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestReadResultSkipsCommentsAndSorts(t *testing.T) {
	in := "#parapriori-frequent v1 N=10 minCount=2\n" +
		"# comment\n" +
		"3 5 6\n" +
		"\n" +
		"4 1 2\n" +
		"7 3\n"
	res, err := ReadResult(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) != 2 {
		t.Fatalf("levels = %d", len(res.Levels))
	}
	if len(res.Levels[0]) != 1 || len(res.Levels[1]) != 2 {
		t.Fatalf("level sizes = %d, %d", len(res.Levels[0]), len(res.Levels[1]))
	}
	// Pairs sorted lexicographically: {1 2} before {5 6}.
	if res.Levels[1][0].Count != 4 {
		t.Errorf("first pair count = %d, want 4", res.Levels[1][0].Count)
	}
}
