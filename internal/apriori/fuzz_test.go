package apriori

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadResult asserts the persisted-result parser never panics and that
// anything it accepts can be rewritten and re-read identically.
func FuzzReadResult(f *testing.F) {
	var valid bytes.Buffer
	d := randomData(1, 50, 15)
	if res, err := Mine(d, Params{MinSupport: 0.1}); err == nil {
		_ = WriteResult(&valid, res)
	}
	f.Add(valid.String())
	f.Add("#parapriori-frequent v1 N=10 minCount=2\n3 1 2\n")
	f.Add("#parapriori-frequent v1\n")
	f.Add("garbage\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		res, err := ReadResult(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteResult(&buf, res); err != nil {
			t.Fatalf("rewriting accepted result: %v", err)
		}
		back, err := ReadResult(&buf)
		if err != nil {
			t.Fatalf("re-reading rewritten result: %v", err)
		}
		if back.NumFrequent() != res.NumFrequent() {
			t.Fatalf("round trip changed itemset count: %d vs %d", back.NumFrequent(), res.NumFrequent())
		}
	})
}
