package apriori

import (
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

// DHP support: Park, Chen & Yu's "effective hash-based algorithm for mining
// association rules" [15 in the paper] augments Apriori's first pass with a
// hash table over the *pairs* occurring in each transaction.  A bucket's
// count is an upper bound on the support of every pair hashing into it, so
// any size-2 candidate whose bucket is below the minimum support can be
// pruned before the hash tree for pass 2 is ever built.  PDM — the parallel
// algorithm Section III-E relates to CD — is the parallel formulation of
// exactly this idea.
//
// Pass 2 is where the technique earns its keep (C2 is the largest candidate
// set in most workloads, including this paper's Table II), so, like the
// original, we hash pairs only.

// pairBuckets is the DHP hash table: counts of transaction pairs by bucket.
type pairBuckets struct {
	counts []int64
}

func newPairBuckets(n int) *pairBuckets {
	if n <= 0 {
		return nil
	}
	return &pairBuckets{counts: make([]int64, n)}
}

// bucket maps a pair to its bucket the way the DHP paper does: an
// order-based polynomial hash.
func (b *pairBuckets) bucket(x, y itemset.Item) int {
	return int((uint64(x)*131071 + uint64(y)) % uint64(len(b.counts)))
}

// addTransaction hashes every pair of the transaction.
func (b *pairBuckets) addTransaction(items itemset.Itemset) {
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			b.counts[b.bucket(items[i], items[j])]++
		}
	}
}

// admits reports whether a size-2 candidate could still be frequent.
func (b *pairBuckets) admits(c itemset.Itemset, minCount int64) bool {
	return b.counts[b.bucket(c[0], c[1])] >= minCount
}

// FirstPassDHP is FirstPass plus DHP's pair-bucket construction: one scan
// computes both the item counts and the pair hash table with `buckets`
// entries.
func FirstPassDHP(data *itemset.Dataset, minCount int64, buckets int) ([]Frequent, *pairBuckets, PassStats) {
	pb := newPairBuckets(buckets)
	counts := make([]int64, data.NumItems)
	var bytes int64
	for _, t := range data.Transactions {
		bytes += int64(t.Bytes())
		for _, it := range t.Items {
			counts[it]++
		}
		pb.addTransaction(t.Items)
	}
	var f1 []Frequent
	for it, c := range counts {
		if c >= minCount {
			f1 = append(f1, Frequent{Items: itemset.Itemset{itemset.Item(it)}, Count: c})
		}
	}
	return f1, pb, PassStats{
		K:            1,
		Candidates:   data.NumItems,
		Frequent:     len(f1),
		TreeParts:    1,
		BytesScanned: bytes,
	}
}

// filterC2 drops the size-2 candidates whose DHP bucket cannot reach the
// minimum support, returning the survivors and the number pruned.
func (b *pairBuckets) filterC2(cands []itemset.Itemset, minCount int64) ([]itemset.Itemset, int) {
	kept := cands[:0]
	for _, c := range cands {
		if b.admits(c, minCount) {
			kept = append(kept, c)
		}
	}
	return kept, len(cands) - len(kept)
}

// countAndTrim is DHP's second device: while counting pass k it records
// which candidates each transaction matched, then *trims* the working set
// for pass k+1 — an item survives only if it occurs in at least k matched
// size-k candidates (every frequent (k+1)-itemset in t has k+1 frequent
// k-subsets in t, each item appearing in k of them, so trimming is exact),
// and a transaction survives only if at least k+1 items remain.  It returns
// the counted candidates, the trimmed working set and the pass statistics.
func countAndTrim(working []itemset.Transaction, numItems, k int, cands []itemset.Itemset, p Params) ([]Frequent, []itemset.Transaction, PassStats, error) {
	stats := PassStats{K: k, Candidates: len(cands), GenCandidates: len(cands), TreeParts: 1}
	hcands := make([]*hashtree.Candidate, len(cands))
	for i, s := range cands {
		hcands[i] = &hashtree.Candidate{Items: s}
	}
	tree, err := hashtree.New(k, hcands, p.Tree)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.TreeMemory = tree.MemoryBytes()

	hits := make([]int64, numItems)
	var matches []*hashtree.Candidate
	kept := working[:0]
	for _, t := range working {
		stats.BytesScanned += int64(t.Bytes())
		matches = matches[:0]
		tree.SubsetCollect(t.Items, nil, &matches)
		if len(matches) == 0 {
			stats.TrimmedTxns++
			continue
		}
		for _, c := range matches {
			for _, it := range c.Items {
				hits[it]++
			}
		}
		trimmed := make(itemset.Itemset, 0, len(t.Items))
		for _, it := range t.Items {
			if hits[it] >= int64(k) {
				trimmed = append(trimmed, it)
			}
		}
		stats.TrimmedItems += int64(len(t.Items) - len(trimmed))
		for _, c := range matches {
			for _, it := range c.Items {
				hits[it] = 0
			}
		}
		if len(trimmed) >= k+1 {
			kept = append(kept, itemset.Transaction{ID: t.ID, Items: trimmed})
		} else {
			stats.TrimmedTxns++
		}
	}
	stats.Tree = tree.Stats()

	out := make([]Frequent, len(hcands))
	for i, c := range hcands {
		out[i] = Frequent{Items: c.Items, Count: c.Count}
	}
	return out, kept, stats, nil
}
