// Package apriori implements the serial Apriori algorithm of Agrawal &
// Srikant (VLDB '94) exactly as the paper's Section II describes it: level-
// wise candidate generation (apriori_gen), support counting through a
// candidate hash tree, and pruning by minimum support.
//
// The package also exports the two reusable building blocks every parallel
// formulation shares — FirstPass and Gen — and supports the memory-capped,
// multi-partition counting mode that the CD algorithm falls back to when
// the hash tree does not fit in main memory (Figure 12).
package apriori

import (
	"fmt"
	"math"
	"sort"

	"parapriori/internal/countengine"
	"parapriori/internal/hashtree"
	"parapriori/internal/itemset"
)

// Frequent is a frequent itemset together with its global support count.
type Frequent struct {
	Items itemset.Itemset
	Count int64
}

// Params configures a mining run.
type Params struct {
	// MinSupport is the minimum support threshold as a fraction of the
	// number of transactions (the paper's experiments use 0.1 %–0.025 %).
	// The absolute count threshold is ceil(MinSupport * N), at least 1.
	MinSupport float64
	// Tree shapes the candidate hash trees.
	Tree hashtree.Config
	// MaxPasses, if positive, stops the level-wise loop after computing
	// frequent itemsets of that size.  The paper's scalability experiments
	// (Figures 13–15) measure pass 3 only; MaxPasses makes that expressible.
	MaxPasses int
	// MemoryBytes, if positive, caps the resident size of the candidate
	// hash tree.  When the candidates of a pass do not fit, they are split
	// into ceil(need/cap) partitions and the transactions are scanned once
	// per partition — the extra-I/O regime of Figure 12.
	MemoryBytes int
	// DHPBuckets, if positive, enables the DHP hash filter of Park, Chen &
	// Yu (see dhp.go): the first pass additionally hashes transaction
	// pairs into this many buckets, and size-2 candidates whose bucket
	// count is below the support threshold are pruned before counting.
	// Sound (bucket counts upper-bound pair supports), so results are
	// identical to plain Apriori.
	DHPBuckets int
	// DHPTrim enables DHP's transaction trimming: after counting pass k,
	// items that matched fewer than k candidates are removed from the
	// working copy of each transaction, and transactions too short to
	// support a (k+1)-itemset are dropped entirely.  Results are identical
	// to plain Apriori; later passes scan less data.  Incompatible with
	// MemoryBytes (trimming assumes a single scan per pass).
	DHPTrim bool
	// Engine selects the support-counting backend (see
	// internal/countengine): "hashtree" (the default), "trie" or "bitset".
	// Every backend produces identical frequent itemsets; they differ in
	// which operations counting spends.  The DHP knobs require the hash
	// tree (the pair filter and trimming read its match sets).
	Engine string
}

// MinCount converts the fractional threshold into the absolute count used
// for pruning a database of n transactions.
func (p Params) MinCount(n int) int64 {
	c := int64(math.Ceil(p.MinSupport * float64(n)))
	if c < 1 {
		c = 1
	}
	return c
}

// PassStats records what one level-wise pass did; the experiment harnesses
// aggregate these into the paper's tables.
type PassStats struct {
	K             int
	Candidates    int
	Frequent      int
	TreeParts     int   // number of hash-tree partitions (1 unless memory-capped)
	BytesScanned  int64 // transaction bytes read, counting repeated scans
	Tree          hashtree.Stats
	TreeMemory    int   // estimated resident bytes of the (largest) tree
	GenCandidates int   // candidates produced by apriori_gen before counting
	DHPPruned     int   // size-2 candidates removed by the DHP bucket filter
	TrimmedItems  int64 // items removed from the working set by DHP trimming
	TrimmedTxns   int   // transactions dropped entirely by DHP trimming
}

// Result is the outcome of a mining run.
type Result struct {
	// Levels[k] holds the frequent itemsets of size k+1, in lexicographic
	// order.
	Levels [][]Frequent
	// Passes holds per-pass statistics, Passes[k] for size k+1.
	Passes []PassStats
	// N is the number of transactions mined.
	N int
	// MinCount is the absolute support threshold that was applied.
	MinCount int64
}

// All returns every frequent itemset of every size, smallest sets first.
func (r *Result) All() []Frequent {
	var out []Frequent
	for _, level := range r.Levels {
		out = append(out, level...)
	}
	return out
}

// NumFrequent returns the total number of frequent itemsets.
func (r *Result) NumFrequent() int {
	n := 0
	for _, level := range r.Levels {
		n += len(level)
	}
	return n
}

// SupportIndex returns a map from Itemset.Key() to support count, the lookup
// structure rule generation needs.
func (r *Result) SupportIndex() map[string]int64 {
	idx := make(map[string]int64, r.NumFrequent())
	for _, level := range r.Levels {
		for _, f := range level {
			idx[f.Items.Key()] = f.Count
		}
	}
	return idx
}

// Mine runs the serial Apriori algorithm over the dataset.
func Mine(data *itemset.Dataset, p Params) (*Result, error) {
	if p.DHPTrim && p.MemoryBytes > 0 {
		return nil, fmt.Errorf("apriori: DHPTrim is incompatible with a memory cap (multi-scan counting)")
	}
	engB, err := countengine.New(p.Engine, countengine.Config{Tree: p.Tree, NumItems: data.NumItems})
	if err != nil {
		return nil, fmt.Errorf("apriori: %w", err)
	}
	if engB.Name() != countengine.Default && (p.DHPBuckets > 0 || p.DHPTrim) {
		return nil, fmt.Errorf("apriori: DHP filtering requires the hashtree engine, not %q", engB.Name())
	}
	if prep, ok := engB.(countengine.DatasetPreparer); ok {
		// Vertical backends index the whole dataset once instead of
		// re-scanning it every pass.
		prep.Prepare(data)
	}
	minCount := p.MinCount(data.Len())
	res := &Result{N: data.Len(), MinCount: minCount}

	var f1 []Frequent
	var stats1 PassStats
	var dhp *pairBuckets
	if p.DHPBuckets > 0 {
		f1, dhp, stats1 = FirstPassDHP(data, minCount, p.DHPBuckets)
	} else {
		f1, stats1 = FirstPass(data, minCount)
	}
	res.Levels = append(res.Levels, f1)
	res.Passes = append(res.Passes, stats1)

	// DHP trimming works on a private copy of the transactions so the
	// caller's dataset is never modified.
	var working []itemset.Transaction
	if p.DHPTrim {
		working = append([]itemset.Transaction(nil), data.Transactions...)
	}

	prev := frequentItemsets(f1)
	for k := 2; len(prev) > 0; k++ {
		if p.MaxPasses > 0 && k > p.MaxPasses {
			break
		}
		cands := Gen(prev)
		dhpPruned := 0
		if k == 2 && dhp != nil {
			cands, dhpPruned = dhp.filterC2(cands, minCount)
		}
		if len(cands) == 0 {
			break
		}
		var level []Frequent
		var stats PassStats
		var err error
		if p.DHPTrim {
			level, working, stats, err = countAndTrim(working, data.NumItems, k, cands, p)
		} else {
			level, stats, err = countWithEngine(data, k, cands, p, engB)
		}
		stats.DHPPruned = dhpPruned
		if err != nil {
			return nil, fmt.Errorf("apriori: pass %d: %w", k, err)
		}
		frequent := Prune(level, minCount)
		stats.K = k
		stats.Frequent = len(frequent)
		res.Levels = append(res.Levels, frequent)
		res.Passes = append(res.Passes, stats)
		if len(frequent) == 0 {
			break
		}
		prev = frequentItemsets(frequent)
	}
	return res, nil
}

// FirstPass computes F1, the frequent items, with a single array-counting
// scan (no hash tree is needed for size-1 candidates).
func FirstPass(data *itemset.Dataset, minCount int64) ([]Frequent, PassStats) {
	counts := make([]int64, data.NumItems)
	var bytes int64
	for _, t := range data.Transactions {
		bytes += int64(t.Bytes())
		for _, it := range t.Items {
			counts[it]++
		}
	}
	var f1 []Frequent
	for it, c := range counts {
		if c >= minCount {
			f1 = append(f1, Frequent{Items: itemset.Itemset{itemset.Item(it)}, Count: c})
		}
	}
	return f1, PassStats{
		K:            1,
		Candidates:   data.NumItems,
		Frequent:     len(f1),
		TreeParts:    1,
		BytesScanned: bytes,
	}
}

// Gen is apriori_gen: it extends the frequent (k-1)-itemsets prev into the
// size-k candidate set, using the join step (merge two frequent sets that
// share their first k-2 items) followed by the subset-prune step (drop any
// candidate with an infrequent (k-1)-subset).  prev must be sorted
// lexicographically; the output is sorted lexicographically, which is what
// makes candidate order — and therefore CD's reducible count vectors —
// identical on every processor.
func Gen(prev []itemset.Itemset) []itemset.Itemset {
	if len(prev) == 0 {
		return nil
	}
	k1 := len(prev[0])
	inPrev := make(map[string]struct{}, len(prev))
	for _, s := range prev {
		inPrev[s.Key()] = struct{}{}
	}

	var cands []itemset.Itemset
	// Join: prev is sorted, so sets sharing a (k-2)-prefix are adjacent.
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			if !samePrefix(prev[i], prev[j], k1-1) {
				break
			}
			// prev[i] < prev[j] lexicographically with equal prefixes, so
			// the joined set is prev[i] + last item of prev[j], in order.
			cand := make(itemset.Itemset, 0, k1+1)
			cand = append(cand, prev[i]...)
			cand = append(cand, prev[j][k1-1])
			if pruneOK(cand, inPrev) {
				cands = append(cands, cand)
			}
		}
	}
	return cands
}

func samePrefix(a, b itemset.Itemset, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pruneOK reports whether every (k-1)-subset of cand is frequent.  The two
// subsets obtained by dropping one of the last two items are the join
// parents and need not be rechecked.
func pruneOK(cand itemset.Itemset, inPrev map[string]struct{}) bool {
	for i := 0; i < len(cand)-2; i++ {
		if _, ok := inPrev[cand.Without(i).Key()]; !ok {
			return false
		}
	}
	return true
}

// CountCandidates builds the counting structure(s) for the size-k
// candidates with the engine p.Engine selects (the hash tree by default)
// and scans the transactions to compute their supports.  It returns every
// candidate with its count (unpruned), plus the pass statistics.  When
// p.MemoryBytes caps the structure below what the candidates need, the
// candidate set is partitioned and the dataset is scanned once per
// partition, exactly the multi-scan CD regime of Figure 12.
func CountCandidates(data *itemset.Dataset, k int, cands []itemset.Itemset, p Params) ([]Frequent, PassStats, error) {
	engB, err := countengine.New(p.Engine, countengine.Config{Tree: p.Tree, NumItems: data.NumItems})
	if err != nil {
		return nil, PassStats{K: k, Candidates: len(cands), GenCandidates: len(cands)}, err
	}
	return countWithEngine(data, k, cands, p, engB)
}

// countWithEngine is CountCandidates over an already-built engine builder,
// so Mine constructs (and, for vertical backends, prepares) the builder
// once for the whole run.
func countWithEngine(data *itemset.Dataset, k int, cands []itemset.Itemset, p Params, engB countengine.Builder) ([]Frequent, PassStats, error) {
	stats := PassStats{K: k, Candidates: len(cands), GenCandidates: len(cands)}
	parts := TreeParts(len(cands), k, p)
	stats.TreeParts = parts

	out := make([]Frequent, len(cands))
	dbBytes := int64(data.Bytes())
	for part := 0; part < parts; part++ {
		lo, hi := part*len(cands)/parts, (part+1)*len(cands)/parts
		if lo == hi {
			continue
		}
		eng, err := engB.NewPass(k, cands[lo:hi])
		if err != nil {
			return nil, stats, err
		}
		if m := eng.MemoryBytes(); m > stats.TreeMemory {
			stats.TreeMemory = m
		}
		eng.CountBlock(data.Transactions, nil)
		counts := eng.Counts()
		stats.BytesScanned += dbBytes
		stats.Tree.Add(eng.Stats().TreeStats())
		for i := lo; i < hi; i++ {
			out[i] = Frequent{Items: cands[i], Count: counts[i-lo]}
		}
	}
	return out, stats, nil
}

// TreeParts returns how many hash-tree partitions the size-k candidate set
// needs under the memory cap of p (1 when uncapped or when it fits).
func TreeParts(numCands, k int, p Params) int {
	if p.MemoryBytes <= 0 || numCands == 0 {
		return 1
	}
	need := hashtree.EstimateMemoryBytes(numCands, k, p.Tree)
	parts := (need + p.MemoryBytes - 1) / p.MemoryBytes
	if parts < 1 {
		parts = 1
	}
	if parts > numCands {
		parts = numCands
	}
	return parts
}

// Prune keeps the itemsets meeting the support threshold, in lexicographic
// order.
func Prune(level []Frequent, minCount int64) []Frequent {
	var out []Frequent
	for _, f := range level {
		if f.Count >= minCount {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Compare(out[j].Items) < 0 })
	return out
}

func frequentItemsets(level []Frequent) []itemset.Itemset {
	out := make([]itemset.Itemset, len(level))
	for i, f := range level {
		out[i] = f.Items
	}
	return out
}
