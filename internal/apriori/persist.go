package apriori

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parapriori/internal/itemset"
)

// Result persistence.  Mining a large database can take far longer than
// rule generation, so the frequent itemsets are worth saving: mine once,
// then generate rules at many confidence thresholds later.  The format is
// line-oriented text:
//
//	#parapriori-frequent v1 N=<transactions> minCount=<threshold>
//	<count> <item> <item> ...        (one frequent itemset per line)

const persistHeader = "#parapriori-frequent v1"

// WriteResult saves a mining result's frequent itemsets.  The output is
// canonical — levels are emitted in lexicographic itemset order whatever
// their in-memory order — so saving the same result (or results of two
// independent runs over the same data) is byte-stable, and saved files
// diff/hash cleanly.
func WriteResult(w io.Writer, res *Result) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s N=%d minCount=%d\n", persistHeader, res.N, res.MinCount); err != nil {
		return fmt.Errorf("apriori: writing result header: %w", err)
	}
	for _, level := range res.Levels {
		level = sortedLevel(level)
		for _, f := range level {
			if _, err := fmt.Fprintf(bw, "%d", f.Count); err != nil {
				return fmt.Errorf("apriori: writing result: %w", err)
			}
			for _, it := range f.Items {
				if _, err := fmt.Fprintf(bw, " %d", it); err != nil {
					return fmt.Errorf("apriori: writing result: %w", err)
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return fmt.Errorf("apriori: writing result: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("apriori: flushing result: %w", err)
	}
	return nil
}

// ReadResult loads a result saved by WriteResult.  Pass statistics are not
// persisted; Levels, N and MinCount — everything rule generation needs —
// are restored, with itemsets grouped by size and sorted lexicographically.
func ReadResult(r io.Reader) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("apriori: reading result header: %w", err)
		}
		return nil, fmt.Errorf("apriori: empty result file")
	}
	header := sc.Text()
	if !strings.HasPrefix(header, persistHeader) {
		return nil, fmt.Errorf("apriori: bad result header %q", header)
	}
	res := &Result{}
	for _, field := range strings.Fields(header[len(persistHeader):]) {
		switch {
		case strings.HasPrefix(field, "N="):
			v, err := strconv.Atoi(field[2:])
			if err != nil {
				return nil, fmt.Errorf("apriori: bad N in header: %w", err)
			}
			res.N = v
		case strings.HasPrefix(field, "minCount="):
			v, err := strconv.ParseInt(field[9:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("apriori: bad minCount in header: %w", err)
			}
			res.MinCount = v
		default:
			return nil, fmt.Errorf("apriori: unknown header field %q", field)
		}
	}

	bySize := map[int][]Frequent{}
	maxSize := 0
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("apriori: line %d: want count plus items", line)
		}
		count, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil || count < 0 {
			return nil, fmt.Errorf("apriori: line %d: bad count %q", line, fields[0])
		}
		items := make([]itemset.Item, 0, len(fields)-1)
		for _, f := range fields[1:] {
			v, err := strconv.Atoi(f)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("apriori: line %d: bad item %q", line, f)
			}
			items = append(items, itemset.Item(v))
		}
		set := itemset.New(items...)
		if len(set) != len(items) {
			return nil, fmt.Errorf("apriori: line %d: duplicate items", line)
		}
		bySize[len(set)] = append(bySize[len(set)], Frequent{Items: set, Count: count})
		if len(set) > maxSize {
			maxSize = len(set)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("apriori: reading result: %w", err)
	}

	for size := 1; size <= maxSize; size++ {
		level := bySize[size]
		sort.Slice(level, func(i, j int) bool { return level[i].Items.Compare(level[j].Items) < 0 })
		res.Levels = append(res.Levels, level)
	}
	return res, nil
}

// sortedLevel returns the level in lexicographic itemset order, copying
// only when it is out of order so the common (already-sorted) path is
// allocation-free and callers' slices are never mutated.
func sortedLevel(level []Frequent) []Frequent {
	sorted := true
	for i := 1; i < len(level); i++ {
		if level[i-1].Items.Compare(level[i].Items) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return level
	}
	out := append([]Frequent(nil), level...)
	sort.Slice(out, func(i, j int) bool { return out[i].Items.Compare(out[j].Items) < 0 })
	return out
}
