package apriori

import (
	"testing"

	"parapriori/internal/itemset"
)

func TestMineNaiveMatchesMine(t *testing.T) {
	d := randomData(41, 400, 50)
	for _, minsup := range []float64{0.02, 0.05, 0.1} {
		fast, err := Mine(d, Params{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		naive, err := MineNaive(d, Params{MinSupport: minsup})
		if err != nil {
			t.Fatal(err)
		}
		w, g := fast.All(), naive.All()
		if len(w) != len(g) {
			t.Fatalf("minsup %v: naive found %d itemsets, tree %d", minsup, len(g), len(w))
		}
		for i := range w {
			if !w[i].Items.Equal(g[i].Items) || w[i].Count != g[i].Count {
				t.Errorf("minsup %v itemset %d: %v/%d vs %v/%d",
					minsup, i, g[i].Items, g[i].Count, w[i].Items, w[i].Count)
			}
		}
	}
}

func TestCountCandidatesNaiveValidates(t *testing.T) {
	d := randomData(41, 10, 10)
	if _, err := CountCandidatesNaive(d, 3, []itemset.Itemset{itemset.New(1, 2)}); err == nil {
		t.Error("wrong-size candidate accepted")
	}
	if _, err := CountCandidatesNaive(d, 2, []itemset.Itemset{{5, 3}}); err == nil {
		t.Error("unsorted candidate accepted")
	}
}

func TestCountCandidatesNaiveSkipsShortTransactions(t *testing.T) {
	d := itemset.NewDataset([]itemset.Transaction{
		{ID: 0, Items: itemset.New(1)},
		{ID: 1, Items: itemset.New(1, 2)},
	})
	got, err := CountCandidatesNaive(d, 2, []itemset.Itemset{itemset.New(1, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Count != 1 {
		t.Errorf("count = %d, want 1", got[0].Count)
	}
}
