package apriori

import (
	"fmt"

	"parapriori/internal/itemset"
)

// CountCandidatesNaive computes candidate supports the way Section II's
// "one naive way" describes: every transaction is matched against every
// candidate directly, with no hash tree.  O(N·M) containment tests — the
// baseline that motivates the candidate hash tree, kept here so benchmarks
// can quantify the tree's win and tests can cross-check its counts.
func CountCandidatesNaive(data *itemset.Dataset, k int, cands []itemset.Itemset) ([]Frequent, error) {
	out := make([]Frequent, len(cands))
	for i, c := range cands {
		if len(c) != k {
			return nil, fmt.Errorf("apriori: candidate %v has %d items, want %d", c, len(c), k)
		}
		if !c.Valid() {
			return nil, fmt.Errorf("apriori: candidate %v is not sorted", c)
		}
		out[i].Items = c
	}
	for _, t := range data.Transactions {
		if len(t.Items) < k {
			continue
		}
		for i := range out {
			if t.Items.ContainsAll(out[i].Items) {
				out[i].Count++
			}
		}
	}
	return out, nil
}

// MineNaive runs the full level-wise algorithm with naive counting — same
// candidates, same results, no hash tree.  It exists for differential
// testing and for the hash-tree ablation benchmark; use Mine for real work.
func MineNaive(data *itemset.Dataset, p Params) (*Result, error) {
	minCount := p.MinCount(data.Len())
	res := &Result{N: data.Len(), MinCount: minCount}

	f1, stats1 := FirstPass(data, minCount)
	res.Levels = append(res.Levels, f1)
	res.Passes = append(res.Passes, stats1)

	prev := frequentItemsets(f1)
	for k := 2; len(prev) > 0; k++ {
		if p.MaxPasses > 0 && k > p.MaxPasses {
			break
		}
		cands := Gen(prev)
		if len(cands) == 0 {
			break
		}
		counted, err := CountCandidatesNaive(data, k, cands)
		if err != nil {
			return nil, fmt.Errorf("apriori: naive pass %d: %w", k, err)
		}
		frequent := Prune(counted, minCount)
		res.Levels = append(res.Levels, frequent)
		res.Passes = append(res.Passes, PassStats{
			K:          k,
			Candidates: len(cands),
			Frequent:   len(frequent),
			TreeParts:  1,
		})
		if len(frequent) == 0 {
			break
		}
		prev = frequentItemsets(frequent)
	}
	return res, nil
}
