package apriori

import (
	"fmt"

	"parapriori/internal/countengine"
	"parapriori/internal/itemset"
)

// MineSource runs the serial Apriori algorithm over a streaming transaction
// source.  An in-memory *Dataset takes the Mine fast path unchanged; any
// other source (a partitioned store, a file) is scanned block by block —
// once per pass, or once per hash-tree partition under a memory cap — so
// the resident set is the counting structure plus one block, never the
// database.  Counts are accumulated in candidate order exactly as Mine
// accumulates them, so the results are identical for identical transaction
// multisets.
//
// The DHP knobs are rejected: the pair filter and trimming both assume a
// resident working copy of the transactions, which is the very thing a
// streaming source exists to avoid.
func MineSource(src itemset.Source, p Params) (*Result, error) {
	if d, ok := src.(*itemset.Dataset); ok {
		return Mine(d, p)
	}
	if p.DHPBuckets > 0 || p.DHPTrim {
		return nil, fmt.Errorf("apriori: DHP filtering requires an in-memory dataset, not a streaming source")
	}
	info := src.Info()
	engB, err := countengine.New(p.Engine, countengine.Config{Tree: p.Tree, NumItems: info.NumItems})
	if err != nil {
		return nil, fmt.Errorf("apriori: %w", err)
	}
	minCount := p.MinCount(info.NumTxns)
	res := &Result{N: info.NumTxns, MinCount: minCount}

	f1, stats1, err := FirstPassSource(src, minCount)
	if err != nil {
		return nil, fmt.Errorf("apriori: pass 1: %w", err)
	}
	res.Levels = append(res.Levels, f1)
	res.Passes = append(res.Passes, stats1)

	prev := frequentItemsets(f1)
	for k := 2; len(prev) > 0; k++ {
		if p.MaxPasses > 0 && k > p.MaxPasses {
			break
		}
		cands := Gen(prev)
		if len(cands) == 0 {
			break
		}
		level, stats, err := countSource(src, info, k, cands, p, engB)
		if err != nil {
			return nil, fmt.Errorf("apriori: pass %d: %w", k, err)
		}
		frequent := Prune(level, minCount)
		stats.K = k
		stats.Frequent = len(frequent)
		res.Levels = append(res.Levels, frequent)
		res.Passes = append(res.Passes, stats)
		if len(frequent) == 0 {
			break
		}
		prev = frequentItemsets(frequent)
	}
	return res, nil
}

// FirstPassSource computes F1 with one streaming array-counting scan.
func FirstPassSource(src itemset.Source, minCount int64) ([]Frequent, PassStats, error) {
	info := src.Info()
	counts := make([]int64, info.NumItems)
	var bytes int64
	err := src.Blocks(func(blk []itemset.Transaction) error {
		for _, t := range blk {
			bytes += int64(t.Bytes())
			for _, it := range t.Items {
				counts[it]++
			}
		}
		return nil
	})
	if err != nil {
		return nil, PassStats{}, err
	}
	var f1 []Frequent
	for it, c := range counts {
		if c >= minCount {
			f1 = append(f1, Frequent{Items: itemset.Itemset{itemset.Item(it)}, Count: c})
		}
	}
	return f1, PassStats{
		K:            1,
		Candidates:   info.NumItems,
		Frequent:     len(f1),
		TreeParts:    1,
		BytesScanned: bytes,
	}, nil
}

// countSource is countWithEngine over a streaming source: the same
// candidate partitioning, with each partition's counting structure fed by a
// fresh scan of the source.
func countSource(src itemset.Source, info itemset.SourceInfo, k int, cands []itemset.Itemset, p Params, engB countengine.Builder) ([]Frequent, PassStats, error) {
	stats := PassStats{K: k, Candidates: len(cands), GenCandidates: len(cands)}
	parts := TreeParts(len(cands), k, p)
	stats.TreeParts = parts

	out := make([]Frequent, len(cands))
	for part := 0; part < parts; part++ {
		lo, hi := part*len(cands)/parts, (part+1)*len(cands)/parts
		if lo == hi {
			continue
		}
		eng, err := engB.NewPass(k, cands[lo:hi])
		if err != nil {
			return nil, stats, err
		}
		if m := eng.MemoryBytes(); m > stats.TreeMemory {
			stats.TreeMemory = m
		}
		if err := src.Blocks(func(blk []itemset.Transaction) error {
			eng.CountBlock(blk, nil)
			return nil
		}); err != nil {
			return nil, stats, err
		}
		counts := eng.Counts()
		stats.BytesScanned += info.Bytes
		stats.Tree.Add(eng.Stats().TreeStats())
		for i := lo; i < hi; i++ {
			out[i] = Frequent{Items: cands[i], Count: counts[i-lo]}
		}
	}
	return out, stats, nil
}
