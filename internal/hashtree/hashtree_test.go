package hashtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"parapriori/internal/itemset"
)

func cands(sets ...[]itemset.Item) []*Candidate {
	out := make([]*Candidate, len(sets))
	for i, s := range sets {
		out[i] = &Candidate{Items: itemset.New(s...)}
	}
	return out
}

// bruteCount returns the subset counts by direct containment testing.
func bruteCount(k int, cs []*Candidate, txns []itemset.Itemset) []int64 {
	out := make([]int64, len(cs))
	for i, c := range cs {
		for _, t := range txns {
			if t.ContainsAll(c.Items) {
				out[i]++
			}
		}
	}
	return out
}

func TestPaperExample(t *testing.T) {
	// The candidate hash tree of Figure 2: 15 candidates of size 3, fanout
	// 3 (hash = item mod 3), and the transaction {1 2 3 5 6}.
	cs := cands(
		[]itemset.Item{1, 4, 5}, []itemset.Item{1, 2, 4}, []itemset.Item{4, 5, 7},
		[]itemset.Item{1, 2, 5}, []itemset.Item{4, 5, 8}, []itemset.Item{1, 5, 9},
		[]itemset.Item{1, 3, 6}, []itemset.Item{2, 3, 4}, []itemset.Item{5, 6, 7},
		[]itemset.Item{3, 4, 5}, []itemset.Item{3, 5, 6}, []itemset.Item{3, 5, 7},
		[]itemset.Item{6, 8, 9}, []itemset.Item{3, 6, 7}, []itemset.Item{3, 6, 8},
	)
	tree, err := New(3, cs, Config{Fanout: 3, MaxLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	txn := itemset.New(1, 2, 3, 5, 6)
	tree.Subset(txn, nil)
	// The candidates contained in {1 2 3 5 6}: {1 2 5}, {3 5 6}, {1 3 6}.
	want := map[string]int64{
		itemset.New(1, 2, 5).Key(): 1,
		itemset.New(3, 5, 6).Key(): 1,
		itemset.New(1, 3, 6).Key(): 1,
	}
	for _, c := range cs {
		if got := c.Count; got != want[c.Items.Key()] {
			t.Errorf("candidate %v count = %d, want %d", c.Items, got, want[c.Items.Key()])
		}
	}
}

func TestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		k := 2 + rng.Intn(3)
		nItems := 10 + rng.Intn(40)
		// Random candidate set.
		seen := map[string]bool{}
		var cs []*Candidate
		for len(cs) < 5+rng.Intn(60) {
			items := make([]itemset.Item, k+2)
			for i := range items {
				items[i] = itemset.Item(rng.Intn(nItems))
			}
			s := itemset.New(items...)
			if len(s) < k {
				continue
			}
			s = s[:k]
			if seen[s.Key()] {
				continue
			}
			seen[s.Key()] = true
			cs = append(cs, &Candidate{Items: s})
		}
		var txns []itemset.Itemset
		for i := 0; i < 50; i++ {
			items := make([]itemset.Item, 1+rng.Intn(12))
			for j := range items {
				items[j] = itemset.Item(rng.Intn(nItems))
			}
			txns = append(txns, itemset.New(items...))
		}
		cfg := Config{Fanout: 2 + rng.Intn(8), MaxLeaf: 1 + rng.Intn(6)}
		tree, err := New(k, cs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, txn := range txns {
			tree.Subset(txn, nil)
		}
		brute := bruteCount(k, cs, txns)
		for i, c := range cs {
			if c.Count != brute[i] {
				t.Fatalf("trial %d cfg %+v: candidate %v count = %d, brute = %d",
					trial, cfg, c.Items, c.Count, brute[i])
			}
		}
	}
}

func TestRootFilterRestrictsStartingItems(t *testing.T) {
	cs := cands(
		[]itemset.Item{1, 2}, []itemset.Item{2, 3}, []itemset.Item{3, 4},
	)
	tree := MustNew(2, cs, Config{Fanout: 4, MaxLeaf: 1})
	// Only candidates *starting* with item 2 should be countable when the
	// filter admits only 2... but note the filter is an optimization for
	// trees that only contain matching candidates; here {1 2} is still in
	// the tree and may be found via the start item 2.  Build the realistic
	// setup: the tree contains only candidates starting with 2.
	cs = cands([]itemset.Item{2, 3}, []itemset.Item{2, 5})
	tree = MustNew(2, cs, Config{Fanout: 4, MaxLeaf: 1})
	filter := func(it itemset.Item) bool { return it == 2 }
	tree.Subset(itemset.New(1, 2, 3, 5), filter)
	if cs[0].Count != 1 || cs[1].Count != 1 {
		t.Errorf("counts = %d, %d; want 1, 1", cs[0].Count, cs[1].Count)
	}
	// A transaction without item 2 does no tree work at all.
	before := tree.Stats().Traversals
	tree.Subset(itemset.New(1, 3, 5), filter)
	if got := tree.Stats().Traversals; got != before {
		t.Errorf("filtered transaction still traversed: %d -> %d", before, got)
	}
}

func TestFilterPreservesCounts(t *testing.T) {
	// Filtering by the candidates' own first items never changes counts.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		var cs []*Candidate
		seen := map[string]bool{}
		for len(cs) < 40 {
			s := itemset.New(itemset.Item(rng.Intn(20)), itemset.Item(rng.Intn(20)), itemset.Item(rng.Intn(20)))
			if len(s) != 3 || seen[s.Key()] {
				continue
			}
			seen[s.Key()] = true
			cs = append(cs, &Candidate{Items: s})
		}
		firsts := map[itemset.Item]bool{}
		for _, c := range cs {
			firsts[c.Items[0]] = true
		}
		filter := func(it itemset.Item) bool { return firsts[it] }

		a := MustNew(3, cs, Config{Fanout: 4, MaxLeaf: 2})
		csB := make([]*Candidate, len(cs))
		for i, c := range cs {
			csB[i] = &Candidate{Items: c.Items}
		}
		b := MustNew(3, csB, Config{Fanout: 4, MaxLeaf: 2})
		for i := 0; i < 60; i++ {
			items := make([]itemset.Item, 1+rng.Intn(10))
			for j := range items {
				items[j] = itemset.Item(rng.Intn(20))
			}
			txn := itemset.New(items...)
			a.Subset(txn, nil)
			b.Subset(txn, filter)
		}
		for i := range cs {
			if cs[i].Count != csB[i].Count {
				t.Fatalf("filter changed count of %v: %d vs %d", cs[i].Items, cs[i].Count, csB[i].Count)
			}
		}
		if b.Stats().Traversals > a.Stats().Traversals {
			t.Errorf("filter increased traversals: %d > %d", b.Stats().Traversals, a.Stats().Traversals)
		}
	}
}

func TestRejectsBadCandidates(t *testing.T) {
	if _, err := New(3, cands([]itemset.Item{1, 2}), Config{}); err == nil {
		t.Error("wrong-size candidate accepted")
	}
	bad := []*Candidate{{Items: itemset.Itemset{3, 2, 1}}}
	if _, err := New(3, bad, Config{}); err == nil {
		t.Error("unsorted candidate accepted")
	}
}

func TestLeafSplitting(t *testing.T) {
	// 20 candidates of size 2 sharing no structure, MaxLeaf 2: the tree
	// must split and leaves stay small where depth allows.
	var cs []*Candidate
	for i := 0; i < 20; i++ {
		cs = append(cs, &Candidate{Items: itemset.New(itemset.Item(i), itemset.Item(i+30))})
	}
	tree := MustNew(2, cs, Config{Fanout: 4, MaxLeaf: 2})
	if tree.Leaves() <= 1 {
		t.Errorf("tree did not split: %d leaves", tree.Leaves())
	}
	if tree.Len() != 20 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestDeepSplitTerminatesOnIdenticalHashPath(t *testing.T) {
	// Candidates sharing every hash value force the split loop to stop at
	// depth k rather than recursing forever.
	cs := cands(
		[]itemset.Item{0, 4}, []itemset.Item{0, 8}, []itemset.Item{4, 8},
		[]itemset.Item{0, 12}, []itemset.Item{4, 12}, []itemset.Item{8, 12},
	)
	tree := MustNew(2, cs, Config{Fanout: 4, MaxLeaf: 1}) // all items ≡ 0 mod 4
	txn := itemset.New(0, 4, 8, 12)
	tree.Subset(txn, nil)
	for _, c := range cs {
		if c.Count != 1 {
			t.Errorf("candidate %v count = %d, want 1", c.Items, c.Count)
		}
	}
}

func TestCountsRoundTrip(t *testing.T) {
	cs := cands([]itemset.Item{1, 2}, []itemset.Item{2, 3})
	tree := MustNew(2, cs, Config{})
	tree.Subset(itemset.New(1, 2, 3), nil)
	counts := tree.Counts()
	if counts[0] != 1 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if err := tree.SetCounts([]int64{5, 7}); err != nil {
		t.Fatal(err)
	}
	if cs[0].Count != 5 || cs[1].Count != 7 {
		t.Errorf("SetCounts not applied: %d, %d", cs[0].Count, cs[1].Count)
	}
	if err := tree.SetCounts([]int64{1}); err == nil {
		t.Error("SetCounts accepted wrong length")
	}
}

func TestLeafVisitMemoization(t *testing.T) {
	// Two candidates in one leaf reachable via two different starting
	// items: the leaf must be checked once per transaction, not twice.
	cs := cands([]itemset.Item{1, 3}, []itemset.Item{5, 7})
	tree := MustNew(2, cs, Config{Fanout: 2, MaxLeaf: 10}) // all in one leaf? fanout 2 splits...
	txn := itemset.New(1, 3, 5, 7)
	visited := tree.Subset(txn, nil)
	stats := tree.Stats()
	if int64(visited) != stats.LeafVisits {
		t.Errorf("visited %d != stats %d", visited, stats.LeafVisits)
	}
	if cs[0].Count != 1 || cs[1].Count != 1 {
		t.Errorf("counts = %d, %d", cs[0].Count, cs[1].Count)
	}
}

func TestStatsAccumulate(t *testing.T) {
	cs := cands([]itemset.Item{1, 2})
	tree := MustNew(2, cs, Config{})
	if tree.Stats().Inserts != 1 {
		t.Errorf("Inserts = %d", tree.Stats().Inserts)
	}
	tree.Subset(itemset.New(1, 2), nil)
	tree.Subset(itemset.New(1, 2), nil)
	s := tree.Stats()
	if s.Transactions != 2 {
		t.Errorf("Transactions = %d", s.Transactions)
	}
	if s.LeafChecks < 2 {
		t.Errorf("LeafChecks = %d", s.LeafChecks)
	}
	tree.ResetStats()
	if tree.Stats().Transactions != 0 {
		t.Error("ResetStats did not clear")
	}
}

func TestAvgLeafVisits(t *testing.T) {
	s := Stats{LeafVisits: 10, Transactions: 4}
	if got := s.AvgLeafVisits(); got != 2.5 {
		t.Errorf("AvgLeafVisits = %v", got)
	}
	if got := (Stats{}).AvgLeafVisits(); got != 0 {
		t.Errorf("empty AvgLeafVisits = %v", got)
	}
}

func TestShortTransactionIsFree(t *testing.T) {
	cs := cands([]itemset.Item{1, 2, 3})
	tree := MustNew(3, cs, Config{})
	if v := tree.Subset(itemset.New(1, 2), nil); v != 0 {
		t.Errorf("short transaction visited %d leaves", v)
	}
	if cs[0].Count != 0 {
		t.Errorf("count = %d", cs[0].Count)
	}
}

func TestMemoryEstimates(t *testing.T) {
	var cs []*Candidate
	for i := 0; i < 500; i++ {
		cs = append(cs, &Candidate{Items: itemset.New(itemset.Item(i), itemset.Item(i+600))})
	}
	tree := MustNew(2, cs, Config{})
	if tree.MemoryBytes() <= 0 {
		t.Error("MemoryBytes not positive")
	}
	if EstimateMemoryBytes(500, 2, Config{}) <= 0 {
		t.Error("EstimateMemoryBytes not positive")
	}
	// The estimate should be within an order of magnitude of the real tree.
	est := EstimateMemoryBytes(500, 2, Config{})
	real := tree.MemoryBytes()
	if est > real*10 || real > est*10 {
		t.Errorf("estimate %d vs actual %d differ too much", est, real)
	}
}

// Property: for random candidate sets and transactions, hash-tree counting
// agrees with brute force regardless of tree shape.
func TestQuickCountEquivalence(t *testing.T) {
	type input struct {
		CandSeeds []uint16
		TxnSeeds  []uint16
		Fanout    uint8
		MaxLeaf   uint8
	}
	f := func(in input) bool {
		k := 2
		seen := map[string]bool{}
		var cs []*Candidate
		for _, s := range in.CandSeeds {
			a, b := itemset.Item(s%13), itemset.Item((s/13)%13)
			set := itemset.New(a, b)
			if len(set) != k || seen[set.Key()] {
				continue
			}
			seen[set.Key()] = true
			cs = append(cs, &Candidate{Items: set})
		}
		var txns []itemset.Itemset
		for _, s := range in.TxnSeeds {
			txns = append(txns, itemset.New(
				itemset.Item(s%13), itemset.Item((s/13)%13), itemset.Item((s/169)%13)))
		}
		cfg := Config{Fanout: int(in.Fanout%7) + 2, MaxLeaf: int(in.MaxLeaf%5) + 1}
		tree, err := New(k, cs, cfg)
		if err != nil {
			return false
		}
		for _, txn := range txns {
			tree.Subset(txn, nil)
		}
		brute := bruteCount(k, cs, txns)
		for i := range cs {
			if cs[i].Count != brute[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
