// Package hashtree implements the candidate hash tree of the Apriori
// algorithm (Agrawal & Srikant, VLDB '94), the data structure every
// formulation in the paper counts support with.
//
// Internal nodes hash one item of a candidate; leaves store candidate
// itemsets and their running support counts.  The Subset operation walks a
// transaction through the tree and bumps the counts of every candidate the
// transaction contains.  The tree keeps detailed operation counters
// (traversal steps, distinct leaf visits, leaf checks) because the paper's
// Section IV analysis — and Figure 11 — are stated in exactly those units.
package hashtree

import (
	"fmt"

	"parapriori/internal/itemset"
)

// Candidate is a candidate itemset with its support count.
type Candidate struct {
	Items itemset.Itemset
	Count int64
}

// Config controls the shape of the tree.
type Config struct {
	// Fanout is the width of the hash tables at internal nodes.  The paper's
	// running example uses 3 (hash function "1,4,7 / 2,5,8 / 3,6,9", i.e.
	// item mod 3); real deployments size the tables in the tens so that a
	// depth-k tree has far more leaves than a transaction has potential
	// candidates (the L >> C regime of the Section IV analysis — with a
	// tiny fanout the pass-2 tree saturates at Fanout² leaves and every
	// transaction visits all of them).  Defaults to 32.
	Fanout int
	// MaxLeaf is the maximum number of candidates a leaf may hold before it
	// splits (provided it is shallow enough to split).  This is the knob
	// that sets S, the average number of candidates per leaf, in the
	// Section IV analysis.  Defaults to 16.
	MaxLeaf int
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 32
	}
	if c.MaxLeaf <= 0 {
		c.MaxLeaf = 16
	}
	return c
}

// Stats accumulates the operation counts of the Section IV cost model.
type Stats struct {
	// Traversals is the number of internal-node hash steps taken by Subset,
	// the unit of t_travers.
	Traversals int64
	// LeafVisits is the number of *distinct* leaf nodes visited, summed over
	// transactions: the measured counterpart of V(i,j) (Figure 11).
	LeafVisits int64
	// LeafChecks is the number of candidate-vs-transaction containment
	// tests performed at leaves, the unit of t_check.
	LeafChecks int64
	// Transactions is the number of Subset calls, so that
	// LeafVisits/Transactions is the per-transaction average of Figure 11.
	Transactions int64
	// Inserts is the number of candidate insertions (hash-tree construction
	// cost, the O(M) term of Equations 3–7).
	Inserts int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Traversals += other.Traversals
	s.LeafVisits += other.LeafVisits
	s.LeafChecks += other.LeafChecks
	s.Transactions += other.Transactions
	s.Inserts += other.Inserts
}

// AvgLeafVisits returns the average number of distinct leaves visited per
// transaction, the y-axis of Figure 11.
func (s Stats) AvgLeafVisits() float64 {
	if s.Transactions == 0 {
		return 0
	}
	return float64(s.LeafVisits) / float64(s.Transactions)
}

type node struct {
	// children is nil for a leaf and has len == fanout for an internal node.
	children []*node
	// cands holds the candidates of a leaf node.
	cands []*Candidate
	// stamp is the ID of the last Subset call that checked this leaf; it
	// implements the paper's "if this node is revisited due to a different
	// candidate from the same transaction, no checking needs to be
	// performed" memoization.
	stamp uint64
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is a candidate hash tree for candidates of a single size k.
type Tree struct {
	k      int
	cfg    Config
	root   *node
	cands  []*Candidate
	leaves int
	stats  Stats
	stamp  uint64
	// collect, when non-nil, receives every candidate the current Subset
	// call matches (used by DHP transaction trimming).
	collect *[]*Candidate
}

// New builds a hash tree over the given candidate itemsets, all of which
// must have exactly k items in sorted order.  The candidates are stored by
// reference: counts accumulate in the caller's Candidate values.
func New(k int, cands []*Candidate, cfg Config) (*Tree, error) {
	cfg = cfg.withDefaults()
	t := &Tree{k: k, cfg: cfg, root: &node{}, leaves: 1}
	for _, c := range cands {
		if len(c.Items) != k {
			return nil, fmt.Errorf("hashtree: candidate %v has %d items, want %d", c.Items, len(c.Items), k)
		}
		if !c.Items.Valid() {
			return nil, fmt.Errorf("hashtree: candidate %v is not sorted", c.Items)
		}
		t.insert(c)
	}
	t.cands = cands
	return t, nil
}

// MustNew is New for statically correct inputs (tests, examples).
func MustNew(k int, cands []*Candidate, cfg Config) *Tree {
	t, err := New(k, cands, cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// K returns the candidate size the tree was built for.
func (t *Tree) K() int { return t.k }

// Len returns the number of candidates in the tree (M in the analysis).
func (t *Tree) Len() int { return len(t.cands) }

// Leaves returns the current number of leaf nodes (L in the analysis).
func (t *Tree) Leaves() int { return t.leaves }

// Candidates returns the candidates in insertion order.  All processors in
// CD insert candidates in the same (generation) order, so index i refers to
// the same candidate everywhere — that is what makes count vectors
// reducible.
func (t *Tree) Candidates() []*Candidate { return t.cands }

// Stats returns the accumulated operation counters.
func (t *Tree) Stats() Stats { return t.stats }

// ResetStats zeroes the operation counters.
func (t *Tree) ResetStats() { t.stats = Stats{} }

func (t *Tree) hash(it itemset.Item) int { return int(it) % t.cfg.Fanout }

func (t *Tree) insert(c *Candidate) {
	t.stats.Inserts++
	cur := t.root
	depth := 0
	for !cur.isLeaf() {
		cur = cur.children[t.hash(c.Items[depth])]
		depth++
	}
	cur.cands = append(cur.cands, c)
	// Split overfull leaves while they are shallow enough to have an item
	// left to hash on.  A leaf at depth k has consumed every item and can
	// only grow.
	for len(cur.cands) > t.cfg.MaxLeaf && depth < t.k {
		cands := cur.cands
		cur.cands = nil
		cur.children = make([]*node, t.cfg.Fanout)
		for i := range cur.children {
			cur.children[i] = &node{}
		}
		t.leaves += t.cfg.Fanout - 1
		for _, cc := range cands {
			cur.children[t.hash(cc.Items[depth])].cands = append(cur.children[t.hash(cc.Items[depth])].cands, cc)
		}
		// Continue splitting the child the new candidate landed in if it is
		// itself overfull (all candidates may share a hash value).
		cur = cur.children[t.hash(c.Items[depth])]
		depth++
	}
}

// Subset counts the candidates contained in txn, incrementing their Count
// fields, and returns the number of distinct leaf nodes visited for this
// transaction (the per-transaction quantity averaged in Figure 11).
//
// rootFilter, if non-nil, is consulted only for the *starting* item of a
// candidate (the loop at the root): items for which it reports false are
// skipped.  This is IDD's bitmap pruning; pass nil for the serial algorithm,
// CD and DD.
//
//checkinv:hotpath
func (t *Tree) Subset(txn itemset.Itemset, rootFilter func(itemset.Item) bool) int {
	t.stamp++
	t.stats.Transactions++
	visited := 0
	if t.root.isLeaf() {
		// Degenerate tree: everything sits in the root leaf.
		if len(txn) >= t.k {
			visited = 1
			t.stats.LeafVisits++
			t.checkLeaf(t.root, txn)
		}
		return visited
	}
	// The root loop: every transaction item that passes the filter is a
	// possible first item of a candidate.
	last := len(txn) - t.k
	for i := 0; i <= last; i++ {
		if rootFilter != nil && !rootFilter(txn[i]) {
			continue
		}
		t.stats.Traversals++
		visited += t.walk(t.root.children[t.hash(txn[i])], txn, i+1, 1)
	}
	return visited
}

// walk recurses below an internal-node hash step: node n was reached having
// consumed depth items, with txn[pos:] remaining.
//
//checkinv:hotpath
func (t *Tree) walk(n *node, txn itemset.Itemset, pos, depth int) int {
	if n.isLeaf() {
		if n.stamp == t.stamp {
			return 0 // already checked for this transaction
		}
		n.stamp = t.stamp
		t.stats.LeafVisits++
		t.checkLeaf(n, txn)
		return 1
	}
	visited := 0
	// Need k-depth more items; the next one can start no later than
	// len(txn)-(k-depth).
	last := len(txn) - (t.k - depth)
	for i := pos; i <= last; i++ {
		t.stats.Traversals++
		visited += t.walk(n.children[t.hash(txn[i])], txn, i+1, depth+1)
	}
	return visited
}

// checkLeaf bumps the count of every candidate in the leaf the transaction
// contains — the innermost loop of the whole miner.
//
//checkinv:hotpath
func (t *Tree) checkLeaf(n *node, txn itemset.Itemset) {
	for _, c := range n.cands {
		t.stats.LeafChecks++
		if txn.ContainsAll(c.Items) {
			c.Count++
			if t.collect != nil {
				*t.collect = append(*t.collect, c)
			}
		}
	}
}

// SubsetCollect is Subset plus match reporting: every candidate contained
// in txn is also appended to *out.  DHP's transaction trimming needs the
// matches to decide which items can still contribute to larger itemsets.
func (t *Tree) SubsetCollect(txn itemset.Itemset, rootFilter func(itemset.Item) bool, out *[]*Candidate) int {
	t.collect = out
	visited := t.Subset(txn, rootFilter)
	t.collect = nil
	return visited
}

// Counts returns the support counts of the candidates in insertion order.
// Processors running CD exchange exactly this vector in the global
// reduction.
func (t *Tree) Counts() []int64 {
	out := make([]int64, len(t.cands))
	for i, c := range t.cands {
		out[i] = c.Count
	}
	return out
}

// SetCounts overwrites the candidates' counts from a reduced vector.
func (t *Tree) SetCounts(counts []int64) error {
	if len(counts) != len(t.cands) {
		return fmt.Errorf("hashtree: SetCounts with %d counts for %d candidates", len(counts), len(t.cands))
	}
	for i, c := range t.cands {
		c.Count = counts[i]
	}
	return nil
}

// MemoryBytes estimates the resident size of the tree: candidates plus node
// overhead.  The CD memory cap of Figure 12 is enforced against this
// estimate.
func (t *Tree) MemoryBytes() int {
	// Per candidate: header (itemset slice header + count) and k items.
	candBytes := len(t.cands) * (32 + 4*t.k)
	// Per internal node: fanout child pointers; per leaf: slice header.
	internal := (t.leaves - 1) / (t.cfg.Fanout - 1) // full fanout assumption
	if internal < 0 {
		internal = 0
	}
	nodeBytes := internal*8*t.cfg.Fanout + t.leaves*48
	return candBytes + nodeBytes
}

// EstimateMemoryBytes predicts the resident size of a tree holding m
// candidates of size k without building it, so that CD can decide how many
// tree partitions it needs before construction (Figure 12).
func EstimateMemoryBytes(m, k int, cfg Config) int {
	cfg = cfg.withDefaults()
	leaves := m / cfg.MaxLeaf
	if leaves < 1 {
		leaves = 1
	}
	internal := leaves / (cfg.Fanout - 1)
	return m*(32+4*k) + internal*8*cfg.Fanout + leaves*48
}
