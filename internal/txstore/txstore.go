// Package txstore is a spill-to-disk partitioned transaction store: the
// out-of-core backing for mining runs whose database does not fit in
// memory.  A store is a directory of partition files plus a JSON manifest.
//
// Each partition file carries a small header and then a sequence of
// independently-checksummed blocks:
//
//	header: magic "PAPP" (4 bytes) | version (1 byte, = 1) |
//	        partition index (uvarint) | numItems (uvarint)
//	block:  transaction count (uvarint) | payload length (uvarint) |
//	        CRC-32/IEEE of the payload (4 bytes little-endian) | payload
//
// The payload is the per-transaction varint/delta encoding shared with
// itemset.WriteBinary (itemset.AppendTransaction), with the previous
// transaction ID chained across blocks within a partition.  Blocks are the
// unit of reading: a mining pass streams one block at a time through
// countengine.CountBlock, so the resident set is bounded by the block size,
// never by N.
//
// The manifest (manifest.json) records per-partition transaction counts,
// item and ID ranges, on-disk and modeled byte sizes, and a whole-file
// CRC-32 — enough for a reader to plan a run (and detect damage) without
// touching the partition files.
package txstore

import (
	"fmt"
	"strconv"
)

const (
	partMagic   = "PAPP"
	partVersion = 1

	// ManifestName is the manifest file name inside a store directory.
	ManifestName = "manifest.json"

	// DefaultBlockBytes is the target encoded payload size per block.
	DefaultBlockBytes = 256 << 10

	// DefaultMaxPartBytes bounds a partition file's size when the writer
	// rolls partitions by size (Options.Partitions == 0).
	DefaultMaxPartBytes = 64 << 20
)

// partFileName returns the canonical partition file name for index i.
func partFileName(i int) string {
	return fmt.Sprintf("part-%04d.bin", i)
}

// TruncatedError reports a partition file that ends mid-header or
// mid-block — the on-disk data is shorter than its own framing promises.
type TruncatedError struct {
	File  string // partition file path
	Block int    // index of the block being read when the file ran out
}

func (e *TruncatedError) Error() string {
	return "txstore: " + e.File + ": truncated in block " + strconv.Itoa(e.Block)
}

// CorruptError reports a partition file whose framing is intact but whose
// contents fail validation — a checksum mismatch, a malformed transaction
// encoding, or an implausible header field.
type CorruptError struct {
	File   string // partition file path
	Block  int    // block index, -1 for header corruption
	Reason string
}

func (e *CorruptError) Error() string {
	if e.Block < 0 {
		return "txstore: " + e.File + ": corrupt header: " + e.Reason
	}
	return "txstore: " + e.File + ": corrupt block " + strconv.Itoa(e.Block) + ": " + e.Reason
}

// ManifestError reports an unreadable or inconsistent store manifest.
type ManifestError struct {
	Path   string // manifest path, empty when parsing raw bytes
	Reason string
}

func (e *ManifestError) Error() string {
	if e.Path == "" {
		return "txstore: manifest: " + e.Reason
	}
	return "txstore: " + e.Path + ": " + e.Reason
}
