package txstore

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"parapriori/internal/datagen"
	"parapriori/internal/itemset"
)

func testDataset(t *testing.T, n int) *itemset.Dataset {
	t.Helper()
	p := datagen.Defaults()
	p.NumTransactions = n
	p.NumItems = 200
	p.AvgTxnLen = 8
	p.Seed = 7
	d, err := datagen.Generate(p)
	if err != nil {
		t.Fatalf("datagen: %v", err)
	}
	return d
}

// byID flattens a source into ID-sorted transactions (round-robin spilling
// interleaves stream order across partitions).
func byID(t *testing.T, src itemset.Source) []itemset.Transaction {
	t.Helper()
	d, err := itemset.Materialize(src)
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	out := append([]itemset.Transaction(nil), d.Transactions...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func sameTxns(t *testing.T, want, got []itemset.Transaction) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("transaction count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID || !want[i].Items.Equal(got[i].Items) {
			t.Fatalf("transaction %d: got %d %v, want %d %v", i, got[i].ID, got[i].Items, want[i].ID, want[i].Items)
		}
	}
}

func TestRoundTripRoundRobin(t *testing.T) {
	d := testDataset(t, 500)
	dir := t.TempDir()
	// A tiny block size forces many per-partition blocks, so transactions
	// land on every block boundary the format has.
	man, err := Spill(dir, d, Options{Partitions: 4, BlockBytes: 256})
	if err != nil {
		t.Fatalf("spill: %v", err)
	}
	if man.Transactions != d.Len() {
		t.Fatalf("manifest transactions %d, want %d", man.Transactions, d.Len())
	}
	if len(man.Partitions) != 4 {
		t.Fatalf("partitions %d, want 4", len(man.Partitions))
	}
	if man.ModeledBytes != int64(d.Bytes()) {
		t.Fatalf("modeled bytes %d, want %d", man.ModeledBytes, d.Bytes())
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if info := s.Info(); info != d.Info() {
		t.Fatalf("info mismatch: store %+v, dataset %+v", info, d.Info())
	}
	sameTxns(t, d.Transactions, byID(t, s))
}

func TestRoundTripSizeRolled(t *testing.T) {
	d := testDataset(t, 300)
	dir := t.TempDir()
	man, err := Spill(dir, d, Options{BlockBytes: 512, MaxPartBytes: 2048})
	if err != nil {
		t.Fatalf("spill: %v", err)
	}
	if len(man.Partitions) < 2 {
		t.Fatalf("expected size-rolled spill to produce multiple partitions, got %d", len(man.Partitions))
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// Size-rolled partitions are contiguous: streaming them in order
	// reproduces the original stream order exactly.
	var got []itemset.Transaction
	err = s.Blocks(func(blk []itemset.Transaction) error {
		for _, tx := range blk {
			got = append(got, itemset.Transaction{ID: tx.ID, Items: tx.Items.Clone()})
		}
		return nil
	})
	if err != nil {
		t.Fatalf("blocks: %v", err)
	}
	sameTxns(t, d.Transactions, got)
}

func TestManifestRanges(t *testing.T) {
	d := testDataset(t, 200)
	dir := t.TempDir()
	man, err := Spill(dir, d, Options{Partitions: 3, BlockBytes: 1024})
	if err != nil {
		t.Fatalf("spill: %v", err)
	}
	for i, p := range man.Partitions {
		if p.Transactions == 0 {
			continue
		}
		if p.MinItem < 0 || p.MaxItem >= man.NumItems || p.MinItem > p.MaxItem {
			t.Errorf("partition %d: bad item range [%d,%d]", i, p.MinItem, p.MaxItem)
		}
		if p.MinID < 0 || p.MaxID < p.MinID {
			t.Errorf("partition %d: bad ID range [%d,%d]", i, p.MinID, p.MaxID)
		}
	}
}

func TestEmptyPartitions(t *testing.T) {
	d := testDataset(t, 3)
	dir := t.TempDir()
	man, err := Spill(dir, d, Options{Partitions: 5})
	if err != nil {
		t.Fatalf("spill: %v", err)
	}
	if len(man.Partitions) != 5 {
		t.Fatalf("partitions %d, want 5", len(man.Partitions))
	}
	for i := 3; i < 5; i++ {
		p := man.Partitions[i]
		if p.Transactions != 0 || p.Blocks != 0 || p.MinItem != -1 || p.MaxID != -1 {
			t.Fatalf("partition %d should be empty: %+v", i, p)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	sameTxns(t, d.Transactions, byID(t, s))
}

func TestAppendOrderEnforced(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 10, Options{Partitions: 1})
	if err != nil {
		t.Fatalf("new writer: %v", err)
	}
	if err := w.Append(itemset.Transaction{ID: 5, Items: itemset.New(1, 2)}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := w.Append(itemset.Transaction{ID: 4, Items: itemset.New(1)}); err == nil {
		t.Fatal("expected decreasing-ID append to fail")
	}
	if err := w.Append(itemset.Transaction{ID: 6, Items: itemset.Itemset{2, 1}}); err == nil {
		t.Fatal("expected unsorted-items append to fail")
	}
	if err := w.Append(itemset.Transaction{ID: 6, Items: itemset.New(2, 15)}); err == nil {
		t.Fatal("expected out-of-vocabulary append to fail")
	}
}

// drain reads partition i to the end, returning the first non-EOF error.
func drain(s *Store, i int) error {
	r, err := s.OpenPartition(i, true)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

func spillOne(t *testing.T) (string, *Store) {
	t.Helper()
	d := testDataset(t, 200)
	dir := t.TempDir()
	if _, err := Spill(dir, d, Options{Partitions: 1, BlockBytes: 512}); err != nil {
		t.Fatalf("spill: %v", err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return dir, s
}

func TestTruncatedPartitionTyped(t *testing.T) {
	dir, s := spillOne(t)
	path := filepath.Join(dir, s.Manifest().Partitions[0].File)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Cut mid-header, mid-frame and mid-payload; every cut must surface as
	// a *TruncatedError (never a silent short read or a panic).
	for _, cut := range []int{3, 6, len(full) / 2, len(full) - 1} {
		if cut >= len(full) {
			continue
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatalf("truncate: %v", err)
		}
		err := drain(s, 0)
		var te *TruncatedError
		if !errors.As(err, &te) {
			t.Fatalf("cut at %d: got %v, want *TruncatedError", cut, err)
		}
	}
}

func TestCorruptChecksumTyped(t *testing.T) {
	dir, s := spillOne(t)
	path := filepath.Join(dir, s.Manifest().Partitions[0].File)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Flipping the last payload byte breaks that block's checksum.
	mut := append([]byte(nil), full...)
	mut[len(mut)-1] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	var ce *CorruptError
	if err := drain(s, 0); !errors.As(err, &ce) {
		t.Fatalf("got %v, want *CorruptError", err)
	}
}

func TestReaderStats(t *testing.T) {
	dir, s := spillOne(t)
	_ = dir
	p := s.Manifest().Partitions[0]
	r, err := s.OpenPartition(0, true)
	if err != nil {
		t.Fatalf("open partition: %v", err)
	}
	defer r.Close()
	for {
		if _, _, err := r.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("next: %v", err)
		}
	}
	st := r.Stats()
	if st.Partitions != 1 {
		t.Fatalf("partitions: got %d, want 1", st.Partitions)
	}
	if st.Blocks != int64(p.Blocks) {
		t.Fatalf("blocks: got %d, manifest says %d", st.Blocks, p.Blocks)
	}
	header := int64(5 + uvarintLen(0) + uvarintLen(uint64(s.Manifest().NumItems)))
	if want := p.Bytes - header; st.Bytes != want {
		t.Fatalf("bytes: got %d, want %d (file %d minus header %d)", st.Bytes, want, p.Bytes, header)
	}
	if st.CRCRetries != 0 {
		t.Fatalf("crc retries on a clean file: got %d, want 0", st.CRCRetries)
	}

	// Aggregation folds per-reader stats into a total.
	var sum ReaderStats
	sum.Add(st)
	sum.Add(st)
	if sum.Partitions != 2 || sum.Blocks != 2*st.Blocks || sum.Bytes != 2*st.Bytes {
		t.Fatalf("aggregate: %+v from %+v", sum, st)
	}
}

// TestCRCRetrySurvives pins the transient-corruption path: a checksum
// failure that heals on re-read (here: the test restores the file from the
// retry seam) must be survived, counted in Stats, and yield exactly the
// bytes a clean read would have.
func TestCRCRetrySurvives(t *testing.T) {
	dir, s := spillOne(t)
	path := filepath.Join(dir, s.Manifest().Partitions[0].File)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	clean := byID(t, s)

	// Flip one byte near the middle of the file — inside some block's
	// payload — then heal it the moment the reader reports the failure.
	mut := append([]byte(nil), full...)
	mut[len(mut)/2] ^= 0xff
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatalf("corrupt: %v", err)
	}
	r, err := s.OpenPartition(0, true)
	if err != nil {
		t.Fatalf("open partition: %v", err)
	}
	defer r.Close()
	retried := 0
	r.onCRCRetry = func(block, attempt int) {
		retried++
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatalf("heal: %v", err)
		}
	}
	var got []itemset.Transaction
	for {
		blk, _, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("next after heal: %v", err)
		}
		for _, tx := range blk {
			got = append(got, itemset.Transaction{ID: tx.ID, Items: tx.Items.Clone()})
		}
	}
	if retried != 1 {
		t.Fatalf("retry seam fired %d times, want 1", retried)
	}
	if st := r.Stats(); st.CRCRetries != 1 {
		t.Fatalf("stats.CRCRetries: got %d, want 1", st.CRCRetries)
	}
	sort.Slice(got, func(i, j int) bool { return got[i].ID < got[j].ID })
	sameTxns(t, clean, got)
}

func TestOpenChecksManifest(t *testing.T) {
	dir, s := spillOne(t)
	path := filepath.Join(dir, s.Manifest().Partitions[0].File)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var me *ManifestError
	// Size mismatch is caught at Open.
	if err := os.WriteFile(path, full[:len(full)-1], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if _, err := Open(dir); !errors.As(err, &me) {
		t.Fatalf("size mismatch: got %v, want *ManifestError", err)
	}
	// So is a missing partition file.
	if err := os.Remove(path); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := Open(dir); !errors.As(err, &me) {
		t.Fatalf("missing file: got %v, want *ManifestError", err)
	}
	// And an unparseable manifest.
	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{"), 0o644); err != nil {
		t.Fatalf("rewrite manifest: %v", err)
	}
	if _, err := Open(dir); !errors.As(err, &me) {
		t.Fatalf("bad manifest: got %v, want *ManifestError", err)
	}
}

func TestReaderSteadyStateAllocs(t *testing.T) {
	dir, s := spillOne(t)
	_ = dir
	r, err := s.OpenPartition(0, true)
	if err != nil {
		t.Fatalf("open partition: %v", err)
	}
	defer r.Close()
	// Warm the reuse buffers on the first block, then the rest of the
	// partition must decode without allocating.
	if _, _, err := r.Next(); err != nil {
		t.Fatalf("first block: %v", err)
	}
	allocs := testing.AllocsPerRun(1, func() {
		for {
			_, _, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				t.Fatalf("next: %v", err)
			}
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state decode allocated %.0f times per drain, want 0", allocs)
	}
}

func FuzzManifest(f *testing.F) {
	d := &itemset.Dataset{NumItems: 5, Transactions: []itemset.Transaction{
		{ID: 0, Items: itemset.New(0, 2)},
		{ID: 1, Items: itemset.New(1, 3, 4)},
	}}
	dir := f.TempDir()
	man, err := Spill(dir, d, Options{Partitions: 2})
	if err != nil {
		f.Fatalf("spill: %v", err)
	}
	valid, err := json.Marshal(man)
	if err != nil {
		f.Fatalf("marshal: %v", err)
	}
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"num_items":3,"transactions":0,"block_bytes":1,"modeled_bytes":0,"partitions":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ParseManifest(data)
		if err != nil {
			var me *ManifestError
			if !errors.As(err, &me) {
				t.Fatalf("non-typed parse error: %v", err)
			}
			return
		}
		// An accepted manifest must survive a marshal/reparse round trip.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("remarshal: %v", err)
		}
		if _, err := ParseManifest(out); err != nil {
			t.Fatalf("reparse of accepted manifest failed: %v", err)
		}
	})
}
