package txstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"parapriori/internal/itemset"
)

// BlockReader streams one partition file block by block.  With reuse
// enabled the returned transactions, their item slices and the decode
// scratch are recycled between Next calls — the steady-state read path does
// not allocate — so a block is only valid until the next call.  With reuse
// disabled every block is freshly allocated and may outlive the reader
// (the ring-shift path hands blocks to other processors).
type BlockReader struct {
	path  string
	file  *os.File
	br    *bufio.Reader
	num   int // numItems from the partition header
	part  int
	block int // index of the block Next will read
	prev  int64
	reuse bool

	payload []byte
	txns    []itemset.Transaction
	items   []itemset.Item
	offs    []int32
}

// openPartition opens path and validates its header against the expected
// partition index and vocabulary size.
func openPartition(path string, index, numItems int, reuse bool) (*BlockReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("txstore: opening partition: %w", err)
	}
	r := &BlockReader{
		path:  path,
		file:  f,
		br:    bufio.NewReaderSize(f, 1<<16),
		part:  index,
		reuse: reuse,
	}
	if err := r.readHeader(numItems); err != nil {
		f.Close()
		return nil, err
	}
	if reuse {
		r.payload = make([]byte, 0, DefaultBlockBytes)
		r.txns = make([]itemset.Transaction, 0, 1024)
		r.items = make([]itemset.Item, 0, 16*1024)
		r.offs = make([]int32, 0, 1025)
	}
	return r, nil
}

func (r *BlockReader) readHeader(numItems int) error {
	var magic [5]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil {
		return &TruncatedError{File: r.path, Block: -1}
	}
	if string(magic[:4]) != partMagic {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("bad magic %q", magic[:4])}
	}
	if magic[4] != partVersion {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("unsupported version %d", magic[4])}
	}
	idx, err := binary.ReadUvarint(r.br)
	if err != nil {
		return &TruncatedError{File: r.path, Block: -1}
	}
	if int(idx) != r.part {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("partition index %d, expected %d", idx, r.part)}
	}
	num, err := binary.ReadUvarint(r.br)
	if err != nil {
		return &TruncatedError{File: r.path, Block: -1}
	}
	if num == 0 || num > 1<<34 {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("implausible numItems %d", num)}
	}
	if numItems > 0 && int(num) != numItems {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("numItems %d, manifest says %d", num, numItems)}
	}
	r.num = int(num)
	return nil
}

// Next reads, verifies and decodes the next block.  It returns the block's
// transactions and its on-disk size in bytes (framing included), or io.EOF
// after the last block.  Framing that outruns the file yields a
// *TruncatedError; a failed checksum or malformed payload yields a
// *CorruptError.
func (r *BlockReader) Next() ([]itemset.Transaction, int, error) {
	ntxns, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return nil, 0, io.EOF
		}
		return nil, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	payloadLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	if ntxns == 0 || ntxns > 1<<31 || payloadLen > 1<<31 || payloadLen < ntxns {
		return nil, 0, &CorruptError{File: r.path, Block: r.block, Reason: fmt.Sprintf("implausible frame (%d transactions, %d payload bytes)", ntxns, payloadLen)}
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return nil, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	payload := r.payload
	if cap(payload) < int(payloadLen) {
		payload = make([]byte, payloadLen)
	} else {
		payload = payload[:payloadLen]
	}
	if r.reuse {
		r.payload = payload
	}
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, &CorruptError{File: r.path, Block: r.block, Reason: fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want)}
	}
	diskBytes := uvarintLen(ntxns) + uvarintLen(payloadLen) + 4 + int(payloadLen)
	txns, err := r.decodeBlock(payload, int(ntxns))
	if err != nil {
		return nil, 0, err
	}
	r.block++
	return txns, diskBytes, nil
}

// decodeBlock decodes a verified payload into transactions.  This is the
// out-of-core read path's inner loop: with reuse enabled it fills the
// reader's recycled transaction, item-arena and offset buffers and
// allocates nothing per block in steady state.
//
//checkinv:hotpath
func (r *BlockReader) decodeBlock(payload []byte, ntxns int) ([]itemset.Transaction, error) {
	txns := r.txns[:0]
	items := r.items[:0]
	offs := r.offs[:0]
	if !r.reuse {
		txns = make([]itemset.Transaction, 0, ntxns)
		items = make([]itemset.Item, 0, len(payload))
		offs = make([]int32, 0, ntxns+1)
	}
	off := 0
	prev := r.prev
	for i := 0; i < ntxns; i++ {
		id, out, n, err := itemset.DecodeTransaction(payload[off:], prev, r.num, items)
		if err != nil {
			return nil, r.corrupt(err)
		}
		offs = append(offs, int32(len(items)))
		items = out
		off += n
		prev = id
		txns = append(txns, itemset.Transaction{ID: id})
	}
	if off != len(payload) {
		return nil, r.trailing(len(payload) - off)
	}
	offs = append(offs, int32(len(items)))
	for i := range txns {
		txns[i].Items = itemset.Itemset(items[offs[i]:offs[i+1]:offs[i+1]])
	}
	r.prev = prev
	if r.reuse {
		r.txns = txns
		r.items = items
		r.offs = offs
	}
	return txns, nil
}

// corrupt wraps a payload decode failure (cold path, hoisted out of the
// decode loop for the hot-path allocation discipline).
func (r *BlockReader) corrupt(err error) error {
	return &CorruptError{File: r.path, Block: r.block, Reason: err.Error()}
}

func (r *BlockReader) trailing(n int) error {
	return &CorruptError{File: r.path, Block: r.block, Reason: fmt.Sprintf("%d trailing payload bytes", n)}
}

// Close releases the underlying file.
func (r *BlockReader) Close() error {
	if r.file == nil {
		return nil
	}
	err := r.file.Close()
	r.file = nil
	return err
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
