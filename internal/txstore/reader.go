package txstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"parapriori/internal/itemset"
)

// BlockReader streams one partition file block by block.  With reuse
// enabled the returned transactions, their item slices and the decode
// scratch are recycled between Next calls — the steady-state read path does
// not allocate — so a block is only valid until the next call.  With reuse
// disabled every block is freshly allocated and may outlive the reader
// (the ring-shift path hands blocks to other processors).
type BlockReader struct {
	path  string
	file  *os.File
	br    *bufio.Reader
	num   int // numItems from the partition header
	part  int
	block int   // index of the block Next will read
	off   int64 // absolute file offset of the next unread frame
	prev  int64
	reuse bool

	stats      ReaderStats
	onCRCRetry func(block, attempt int) // test seam: called per survived checksum failure

	payload []byte
	txns    []itemset.Transaction
	items   []itemset.Item
	offs    []int32
}

// maxCRCRetries is how many times a failed block checksum is re-read from
// disk before the reader gives up with a CorruptError.  A transient fault —
// a bit flipped on the wire between the page cache and us — disappears on
// re-read; real on-disk damage fails identically every time.
const maxCRCRetries = 2

// ReaderStats counts the work one (or, after Add, several) partition
// reader(s) did: the read-path telemetry the mining Report surfaces per
// pass.
type ReaderStats struct {
	// Partitions is the number of partition files opened.
	Partitions int `json:"partitions"`
	// Blocks and Bytes count verified blocks and the on-disk bytes consumed
	// (framing included, header excluded).
	Blocks int64 `json:"blocks"`
	Bytes  int64 `json:"bytes"`
	// CRCRetries counts checksum failures survived by re-reading: each one
	// is a verification that failed and then succeeded on a later attempt.
	CRCRetries int64 `json:"crc_retries"`
}

// Add accumulates o into s — the aggregation the mining side uses to fold
// per-partition reader stats into one per-pass total.
func (s *ReaderStats) Add(o ReaderStats) {
	s.Partitions += o.Partitions
	s.Blocks += o.Blocks
	s.Bytes += o.Bytes
	s.CRCRetries += o.CRCRetries
}

// Stats returns what the reader has done so far: this partition (counted as
// one), the blocks and bytes verified, and the checksum failures survived.
func (r *BlockReader) Stats() ReaderStats {
	st := r.stats
	st.Partitions = 1
	return st
}

// openPartition opens path and validates its header against the expected
// partition index and vocabulary size.
func openPartition(path string, index, numItems int, reuse bool) (*BlockReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("txstore: opening partition: %w", err)
	}
	r := &BlockReader{
		path:  path,
		file:  f,
		br:    bufio.NewReaderSize(f, 1<<16),
		part:  index,
		reuse: reuse,
	}
	if err := r.readHeader(numItems); err != nil {
		f.Close()
		return nil, err
	}
	if reuse {
		r.payload = make([]byte, 0, DefaultBlockBytes)
		r.txns = make([]itemset.Transaction, 0, 1024)
		r.items = make([]itemset.Item, 0, 16*1024)
		r.offs = make([]int32, 0, 1025)
	}
	return r, nil
}

func (r *BlockReader) readHeader(numItems int) error {
	var magic [5]byte
	if _, err := io.ReadFull(r.br, magic[:]); err != nil {
		return &TruncatedError{File: r.path, Block: -1}
	}
	if string(magic[:4]) != partMagic {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("bad magic %q", magic[:4])}
	}
	if magic[4] != partVersion {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("unsupported version %d", magic[4])}
	}
	idx, err := binary.ReadUvarint(r.br)
	if err != nil {
		return &TruncatedError{File: r.path, Block: -1}
	}
	if int(idx) != r.part {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("partition index %d, expected %d", idx, r.part)}
	}
	num, err := binary.ReadUvarint(r.br)
	if err != nil {
		return &TruncatedError{File: r.path, Block: -1}
	}
	if num == 0 || num > 1<<34 {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("implausible numItems %d", num)}
	}
	if numItems > 0 && int(num) != numItems {
		return &CorruptError{File: r.path, Block: -1, Reason: fmt.Sprintf("numItems %d, manifest says %d", num, numItems)}
	}
	r.num = int(num)
	r.off = int64(5 + uvarintLen(idx) + uvarintLen(num))
	return nil
}

// Next reads, verifies and decodes the next block.  It returns the block's
// transactions and its on-disk size in bytes (framing included), or io.EOF
// after the last block.  Framing that outruns the file yields a
// *TruncatedError; a malformed payload yields a *CorruptError.  A failed
// checksum is re-read from disk up to maxCRCRetries times first — transient
// corruption between the disk and us heals on re-read and is counted in
// Stats().CRCRetries; persistent damage yields the *CorruptError.
func (r *BlockReader) Next() ([]itemset.Transaction, int, error) {
	payload, ntxns, diskBytes, err := r.readFrame()
	var survived int64
	for attempt := 1; err != nil; attempt++ {
		ce, crc := err.(*crcError)
		if !crc {
			return nil, 0, err
		}
		if attempt > maxCRCRetries {
			return nil, 0, &CorruptError{File: r.path, Block: r.block, Reason: ce.reason}
		}
		if r.onCRCRetry != nil {
			r.onCRCRetry(r.block, attempt)
		}
		if _, serr := r.file.Seek(r.off, io.SeekStart); serr != nil {
			return nil, 0, &CorruptError{File: r.path, Block: r.block, Reason: ce.reason + "; reseek failed: " + serr.Error()}
		}
		r.br.Reset(r.file)
		survived++
		payload, ntxns, diskBytes, err = r.readFrame()
	}
	if diskBytes == 0 { // clean end of file
		return nil, 0, io.EOF
	}
	txns, err := r.decodeBlock(payload, ntxns)
	if err != nil {
		return nil, 0, err
	}
	r.block++
	r.off += int64(diskBytes)
	r.stats.Blocks++
	r.stats.Bytes += int64(diskBytes)
	r.stats.CRCRetries += survived
	return txns, diskBytes, nil
}

// crcError marks a failed block checksum inside readFrame — the one failure
// Next retries instead of surfacing.
type crcError struct{ reason string }

func (e *crcError) Error() string { return e.reason }

// readFrame reads and verifies one block frame into the reader's (possibly
// recycled) payload buffer.  At clean end of file it returns all zero values
// and a nil error (diskBytes == 0 marks it); a checksum mismatch returns a
// *crcError so Next can seek back and retry.
func (r *BlockReader) readFrame() ([]byte, int, int, error) {
	ntxns, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return nil, 0, 0, nil
		}
		return nil, 0, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	payloadLen, err := binary.ReadUvarint(r.br)
	if err != nil {
		return nil, 0, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	if ntxns == 0 || ntxns > 1<<31 || payloadLen > 1<<31 || payloadLen < ntxns {
		return nil, 0, 0, &CorruptError{File: r.path, Block: r.block, Reason: fmt.Sprintf("implausible frame (%d transactions, %d payload bytes)", ntxns, payloadLen)}
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return nil, 0, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	payload := r.payload
	if cap(payload) < int(payloadLen) {
		payload = make([]byte, payloadLen)
	} else {
		payload = payload[:payloadLen]
	}
	if r.reuse {
		r.payload = payload
	}
	if _, err := io.ReadFull(r.br, payload); err != nil {
		return nil, 0, 0, &TruncatedError{File: r.path, Block: r.block}
	}
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, 0, 0, &crcError{reason: fmt.Sprintf("checksum mismatch (got %08x, want %08x)", got, want)}
	}
	diskBytes := uvarintLen(ntxns) + uvarintLen(payloadLen) + 4 + int(payloadLen)
	return payload, int(ntxns), diskBytes, nil
}

// decodeBlock decodes a verified payload into transactions.  This is the
// out-of-core read path's inner loop: with reuse enabled it fills the
// reader's recycled transaction, item-arena and offset buffers and
// allocates nothing per block in steady state.
//
//checkinv:hotpath
func (r *BlockReader) decodeBlock(payload []byte, ntxns int) ([]itemset.Transaction, error) {
	txns := r.txns[:0]
	items := r.items[:0]
	offs := r.offs[:0]
	if !r.reuse {
		txns = make([]itemset.Transaction, 0, ntxns)
		items = make([]itemset.Item, 0, len(payload))
		offs = make([]int32, 0, ntxns+1)
	}
	off := 0
	prev := r.prev
	for i := 0; i < ntxns; i++ {
		id, out, n, err := itemset.DecodeTransaction(payload[off:], prev, r.num, items)
		if err != nil {
			return nil, r.corrupt(err)
		}
		offs = append(offs, int32(len(items)))
		items = out
		off += n
		prev = id
		txns = append(txns, itemset.Transaction{ID: id})
	}
	if off != len(payload) {
		return nil, r.trailing(len(payload) - off)
	}
	offs = append(offs, int32(len(items)))
	for i := range txns {
		txns[i].Items = itemset.Itemset(items[offs[i]:offs[i+1]:offs[i+1]])
	}
	r.prev = prev
	if r.reuse {
		r.txns = txns
		r.items = items
		r.offs = offs
	}
	return txns, nil
}

// corrupt wraps a payload decode failure (cold path, hoisted out of the
// decode loop for the hot-path allocation discipline).
func (r *BlockReader) corrupt(err error) error {
	return &CorruptError{File: r.path, Block: r.block, Reason: err.Error()}
}

func (r *BlockReader) trailing(n int) error {
	return &CorruptError{File: r.path, Block: r.block, Reason: fmt.Sprintf("%d trailing payload bytes", n)}
}

// Close releases the underlying file.
func (r *BlockReader) Close() error {
	if r.file == nil {
		return nil
	}
	err := r.file.Close()
	r.file = nil
	return err
}

// uvarintLen returns the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
