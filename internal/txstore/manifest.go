package txstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// PartitionInfo is the manifest's record of one partition file.
type PartitionInfo struct {
	File         string `json:"file"`
	Transactions int    `json:"transactions"`
	Blocks       int    `json:"blocks"`
	// Bytes is the on-disk file size, header and block framing included.
	Bytes int64 `json:"bytes"`
	// ModeledBytes is the partition's share of the modeled database size
	// (the sum of Transaction.Bytes), the unit the I/O cost model charges.
	ModeledBytes int64 `json:"modeled_bytes"`
	// MinItem/MaxItem and MinID/MaxID are the partition's item and
	// transaction-ID ranges; all four are -1 for an empty partition.
	MinItem int   `json:"min_item"`
	MaxItem int   `json:"max_item"`
	MinID   int64 `json:"min_id"`
	MaxID   int64 `json:"max_id"`
	// CRC32 is the IEEE CRC-32 of the entire partition file.
	CRC32 uint32 `json:"crc32"`
}

// Manifest describes a partitioned transaction store.
type Manifest struct {
	Version      int             `json:"version"`
	NumItems     int             `json:"num_items"`
	Transactions int             `json:"transactions"`
	BlockBytes   int             `json:"block_bytes"`
	ModeledBytes int64           `json:"modeled_bytes"`
	Partitions   []PartitionInfo `json:"partitions"`
}

// ParseManifest decodes and validates a manifest.  Every error is a
// *ManifestError; validation failures name the offending field.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, &ManifestError{Reason: "decoding: " + err.Error()}
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

func (m *Manifest) validate() error {
	bad := func(format string, args ...any) error {
		return &ManifestError{Reason: fmt.Sprintf(format, args...)}
	}
	if m.Version != partVersion {
		return bad("unsupported version %d", m.Version)
	}
	if m.NumItems < 0 || m.NumItems > 1<<34 {
		return bad("implausible num_items %d", m.NumItems)
	}
	if m.Transactions < 0 {
		return bad("negative transactions %d", m.Transactions)
	}
	if m.BlockBytes <= 0 {
		return bad("non-positive block_bytes %d", m.BlockBytes)
	}
	if m.ModeledBytes < 0 {
		return bad("negative modeled_bytes %d", m.ModeledBytes)
	}
	var sumTxns int
	var sumModeled int64
	seen := make(map[string]bool, len(m.Partitions))
	for i, p := range m.Partitions {
		if p.File == "" || p.File != filepath.Base(p.File) || p.File == "." || p.File == ".." {
			return bad("partition %d: bad file name %q", i, p.File)
		}
		if seen[p.File] {
			return bad("partition %d: duplicate file %q", i, p.File)
		}
		seen[p.File] = true
		if p.Transactions < 0 || p.Blocks < 0 || p.Bytes < 0 || p.ModeledBytes < 0 {
			return bad("partition %d: negative counts", i)
		}
		if p.Transactions > 0 && p.Blocks == 0 {
			return bad("partition %d: %d transactions in zero blocks", i, p.Transactions)
		}
		if p.Transactions == 0 {
			if p.MinItem != -1 || p.MaxItem != -1 || p.MinID != -1 || p.MaxID != -1 {
				return bad("partition %d: empty partition with non-sentinel ranges", i)
			}
		} else {
			if p.MinItem < 0 || p.MaxItem < p.MinItem || p.MaxItem >= m.NumItems {
				return bad("partition %d: item range [%d,%d] outside vocabulary %d", i, p.MinItem, p.MaxItem, m.NumItems)
			}
			if p.MinID < 0 || p.MaxID < p.MinID {
				return bad("partition %d: bad ID range [%d,%d]", i, p.MinID, p.MaxID)
			}
		}
		sumTxns += p.Transactions
		sumModeled += p.ModeledBytes
	}
	if sumTxns != m.Transactions {
		return bad("partition transaction counts sum to %d, manifest says %d", sumTxns, m.Transactions)
	}
	if sumModeled != m.ModeledBytes {
		return bad("partition modeled bytes sum to %d, manifest says %d", sumModeled, m.ModeledBytes)
	}
	return nil
}

// writeManifest marshals m deterministically and writes it into dir.
func writeManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("txstore: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	path := filepath.Join(dir, ManifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("txstore: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("txstore: writing manifest: %w", err)
	}
	return nil
}

// readManifest loads and validates dir's manifest.
func readManifest(dir string) (*Manifest, error) {
	path := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, &ManifestError{Path: path, Reason: err.Error()}
	}
	m, err := ParseManifest(data)
	if err != nil {
		if me, ok := err.(*ManifestError); ok {
			me.Path = path
		}
		return nil, err
	}
	return m, nil
}
