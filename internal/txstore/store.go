package txstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"parapriori/internal/itemset"
)

// Store is an opened partitioned transaction store.  It implements
// itemset.Source: Info comes straight from the manifest and Blocks streams
// every partition in order, so a full-database scan never materializes more
// than one block.
type Store struct {
	dir string
	man *Manifest
}

// Open loads dir's manifest, verifies that every partition file exists with
// the size the manifest recorded, and returns the store.
func Open(dir string) (*Store, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	for _, p := range man.Partitions {
		path := filepath.Join(dir, p.File)
		fi, err := os.Stat(path)
		if err != nil {
			return nil, &ManifestError{Path: path, Reason: "missing partition file: " + err.Error()}
		}
		if fi.Size() != p.Bytes {
			return nil, &ManifestError{Path: path, Reason: fmt.Sprintf("partition size mismatch (file %d bytes, manifest %d)", fi.Size(), p.Bytes)}
		}
	}
	return &Store{dir: dir, man: man}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Manifest returns the store's manifest.  Callers must not mutate it.
func (s *Store) Manifest() *Manifest { return s.man }

// Partitions returns the partition count.
func (s *Store) Partitions() int { return len(s.man.Partitions) }

// Info implements itemset.Source.  Bytes is the modeled database size (the
// same accounting as Dataset.Bytes), not the on-disk size.
func (s *Store) Info() itemset.SourceInfo {
	return itemset.SourceInfo{
		NumItems: s.man.NumItems,
		NumTxns:  s.man.Transactions,
		Bytes:    s.man.ModeledBytes,
	}
}

// OpenPartition opens partition i for block-at-a-time reading.  With reuse
// enabled the reader recycles its buffers between blocks; disable reuse
// when blocks must outlive the next read (e.g. when they are handed to
// another goroutine).
func (s *Store) OpenPartition(i int, reuse bool) (*BlockReader, error) {
	if i < 0 || i >= len(s.man.Partitions) {
		return nil, &ManifestError{Path: s.dir, Reason: fmt.Sprintf("no partition %d", i)}
	}
	p := s.man.Partitions[i]
	return openPartition(filepath.Join(s.dir, p.File), i, s.man.NumItems, reuse)
}

// Blocks implements itemset.Source, streaming every partition in manifest
// order.  Blocks and their transactions are reused between callbacks.
func (s *Store) Blocks(fn func(block []itemset.Transaction) error) error {
	for i := range s.man.Partitions {
		r, err := s.OpenPartition(i, true)
		if err != nil {
			return err
		}
		for {
			blk, _, err := r.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				r.Close()
				return err
			}
			if err := fn(blk); err != nil {
				r.Close()
				return err
			}
		}
		if err := r.Close(); err != nil {
			return err
		}
	}
	return nil
}
