package txstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"os"
	"path/filepath"

	"parapriori/internal/itemset"
)

// Options configures a Writer.
type Options struct {
	// Partitions fixes the partition count: transactions are dealt
	// round-robin across exactly this many files, which balances them
	// without knowing N up front.  When zero, the writer instead rolls to a
	// new partition whenever the current file reaches MaxPartBytes.
	Partitions int
	// BlockBytes is the target encoded payload size per block (default
	// DefaultBlockBytes).  It bounds a reader's resident set.
	BlockBytes int
	// MaxPartBytes bounds partition file size in the size-rolled mode
	// (default DefaultMaxPartBytes).  Ignored when Partitions > 0.
	MaxPartBytes int64
}

func (o Options) withDefaults() Options {
	if o.BlockBytes <= 0 {
		o.BlockBytes = DefaultBlockBytes
	}
	if o.MaxPartBytes <= 0 {
		o.MaxPartBytes = DefaultMaxPartBytes
	}
	return o
}

// partWriter accumulates one partition file.
type partWriter struct {
	index     int
	file      *os.File
	bw        *bufio.Writer
	crc       hash.Hash32
	bytes     int64
	payload   []byte
	blockTxns int
	prevID    int64
	info      PartitionInfo
}

// Writer spills a stream of transactions into a partitioned store
// directory.  Append transactions in non-decreasing ID order, then Close to
// flush the partition files and write the manifest.
type Writer struct {
	dir    string
	opt    Options
	num    int // numItems
	parts  []*partWriter
	n      int   // transactions appended
	lastID int64 // last appended ID (ordering check)
	closed bool
}

// NewWriter creates (or truncates into) a store under dir.  numItems is the
// item vocabulary size; every appended item must lie in [0, numItems).
func NewWriter(dir string, numItems int, o Options) (*Writer, error) {
	if numItems <= 0 {
		return nil, fmt.Errorf("txstore: non-positive numItems %d", numItems)
	}
	o = o.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("txstore: creating store dir: %w", err)
	}
	w := &Writer{dir: dir, opt: o, num: numItems, lastID: -1}
	if o.Partitions > 0 {
		for i := 0; i < o.Partitions; i++ {
			if _, err := w.newPart(); err != nil {
				return nil, err
			}
		}
	}
	return w, nil
}

// newPart opens the next partition file and writes its header.
func (w *Writer) newPart() (*partWriter, error) {
	idx := len(w.parts)
	name := partFileName(idx)
	f, err := os.Create(filepath.Join(w.dir, name))
	if err != nil {
		return nil, fmt.Errorf("txstore: creating partition: %w", err)
	}
	p := &partWriter{
		index:   idx,
		file:    f,
		bw:      bufio.NewWriterSize(f, 1<<16),
		crc:     crc32.NewIEEE(),
		payload: make([]byte, 0, w.opt.BlockBytes+512),
		info: PartitionInfo{
			File:    name,
			MinItem: -1, MaxItem: -1, MinID: -1, MaxID: -1,
		},
	}
	var hdr []byte
	hdr = append(hdr, partMagic...)
	hdr = append(hdr, partVersion)
	hdr = binary.AppendUvarint(hdr, uint64(idx))
	hdr = binary.AppendUvarint(hdr, uint64(w.num))
	if err := p.write(hdr); err != nil {
		return nil, err
	}
	w.parts = append(w.parts, p)
	return p, nil
}

func (p *partWriter) write(b []byte) error {
	if _, err := p.bw.Write(b); err != nil {
		return fmt.Errorf("txstore: writing %s: %w", p.info.File, err)
	}
	p.crc.Write(b) // hash.Hash never errors
	p.bytes += int64(len(b))
	return nil
}

// flushBlock frames and writes the pending payload as one block.
func (p *partWriter) flushBlock() error {
	if p.blockTxns == 0 {
		return nil
	}
	var hdr [2*binary.MaxVarintLen64 + 4]byte
	n := binary.PutUvarint(hdr[:], uint64(p.blockTxns))
	n += binary.PutUvarint(hdr[n:], uint64(len(p.payload)))
	binary.LittleEndian.PutUint32(hdr[n:], crc32.ChecksumIEEE(p.payload))
	n += 4
	if err := p.write(hdr[:n]); err != nil {
		return err
	}
	if err := p.write(p.payload); err != nil {
		return err
	}
	p.info.Blocks++
	p.payload = p.payload[:0]
	p.blockTxns = 0
	return nil
}

// Append spills one transaction.  IDs must be non-decreasing across the
// stream and items strictly increasing within the transaction, exactly as
// itemset.WriteBinary requires.
func (w *Writer) Append(t itemset.Transaction) error {
	if w.closed {
		return fmt.Errorf("txstore: Append after Close")
	}
	if t.ID < 0 || (w.n > 0 && t.ID < w.lastID) {
		return fmt.Errorf("txstore: transaction IDs must be non-decreasing (%d after %d)", t.ID, w.lastID)
	}
	var p *partWriter
	if w.opt.Partitions > 0 {
		p = w.parts[w.n%w.opt.Partitions]
	} else {
		if len(w.parts) == 0 || w.parts[len(w.parts)-1].bytes >= w.opt.MaxPartBytes {
			// Roll: finish the current partition and start the next.
			if len(w.parts) > 0 {
				if err := w.finishPart(w.parts[len(w.parts)-1]); err != nil {
					return err
				}
			}
			var err error
			if p, err = w.newPart(); err != nil {
				return err
			}
		} else {
			p = w.parts[len(w.parts)-1]
		}
	}
	var err error
	p.payload, err = itemset.AppendTransaction(p.payload, t, p.prevID)
	if err != nil {
		return fmt.Errorf("txstore: transaction %d: %w", w.n, err)
	}
	if n := len(t.Items); n > 0 {
		last := int(t.Items[n-1])
		if last >= w.num {
			return fmt.Errorf("txstore: transaction %d: item %d outside vocabulary %d", w.n, last, w.num)
		}
		if p.info.MinItem == -1 || int(t.Items[0]) < p.info.MinItem {
			p.info.MinItem = int(t.Items[0])
		}
		if last > p.info.MaxItem {
			p.info.MaxItem = last
		}
	}
	if p.info.MinID == -1 {
		p.info.MinID = t.ID
	}
	p.info.MaxID = t.ID
	p.prevID = t.ID
	p.blockTxns++
	p.info.Transactions++
	p.info.ModeledBytes += int64(t.Bytes())
	w.lastID = t.ID
	w.n++
	if len(p.payload) >= w.opt.BlockBytes {
		return p.flushBlock()
	}
	return nil
}

// finishPart flushes a partition's pending block and closes its file.
func (w *Writer) finishPart(p *partWriter) error {
	if p.file == nil {
		return nil
	}
	if err := p.flushBlock(); err != nil {
		return err
	}
	if err := p.bw.Flush(); err != nil {
		return fmt.Errorf("txstore: flushing %s: %w", p.info.File, err)
	}
	if err := p.file.Close(); err != nil {
		return fmt.Errorf("txstore: closing %s: %w", p.info.File, err)
	}
	p.file = nil
	p.info.Bytes = p.bytes
	p.info.CRC32 = p.crc.Sum32()
	return nil
}

// Close flushes every partition, writes the manifest, and returns it.
func (w *Writer) Close() (*Manifest, error) {
	if w.closed {
		return nil, fmt.Errorf("txstore: double Close")
	}
	w.closed = true
	m := &Manifest{
		Version:    partVersion,
		NumItems:   w.num,
		BlockBytes: w.opt.BlockBytes,
		Partitions: make([]PartitionInfo, 0, len(w.parts)),
	}
	for _, p := range w.parts {
		if err := w.finishPart(p); err != nil {
			return nil, err
		}
		m.Transactions += p.info.Transactions
		m.ModeledBytes += p.info.ModeledBytes
		m.Partitions = append(m.Partitions, p.info)
	}
	if err := writeManifest(w.dir, m); err != nil {
		return nil, err
	}
	return m, nil
}

// Spill streams an entire Source into a new store under dir and returns the
// manifest.
func Spill(dir string, src itemset.Source, o Options) (*Manifest, error) {
	w, err := NewWriter(dir, src.Info().NumItems, o)
	if err != nil {
		return nil, err
	}
	err = src.Blocks(func(block []itemset.Transaction) error {
		for _, t := range block {
			if err := w.Append(t); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return w.Close()
}
