package checkinv

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroleakAnalyzer enforces goroutine lifecycle in the real-OS serving
// packages: every `go` statement in internal/serve, internal/distserve and
// internal/obsv must have a visible join, so fan-out workers cannot outlive
// the snapshot swap (or test) that spawned them.  A goroutine counts as
// joined when:
//
//   - its body calls Done on a sync.WaitGroup — the WaitGroup/errgroup
//     counter idiom, whether the group is a local variable joined by Wait in
//     the same function or a struct field joined by a Close/Wait method; or
//   - its body sends on (or closes) a channel that the spawning function
//     also receives from — the done-channel idiom.
//
// Anything else — including `go someFunc()` whose join, if any, is not
// visible at the spawn site — is flagged and needs a //checkinv:allow
// goroleak annotation explaining who reaps the goroutine.
var GoroleakAnalyzer = &Analyzer{
	Name: "goroleak",
	Doc:  "flag unjoined goroutines in internal/serve, internal/distserve and internal/obsv",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/serve", "internal/distserve", "internal/obsv")
	},
	Check: checkGoroleak,
}

func checkGoroleak(p *Pass) {
	for _, f := range p.Files {
		enclosing := enclosingFuncs(f, func(n ast.Node) bool {
			_, ok := n.(*ast.GoStmt)
			return ok
		})
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, isLit := g.Call.Fun.(*ast.FuncLit)
			if !isLit {
				p.Reportf(g.Pos(), "goroutine calls a named function; its join is not visible at the spawn site — use a joined func literal or annotate")
				return true
			}
			if p.waitGroupDone(lit.Body) {
				return true
			}
			if fn, ok := enclosing[g]; ok && p.doneChannel(lit.Body, fn) {
				return true
			}
			p.Reportf(g.Pos(), "goroutine has no visible join (WaitGroup.Done or done-channel); workers must not outlive a snapshot swap — join it or annotate")
			return true
		})
	}
}

// waitGroupDone reports whether the goroutine body calls Done on a
// sync.WaitGroup (local, captured, or stored in a struct).
func (p *Pass) waitGroupDone(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Done" {
			return true
		}
		if isWaitGroup(p.TypeOf(sel.X)) {
			found = true
		}
		return !found
	})
	return found
}

func isWaitGroup(t types.Type) bool {
	if t == nil {
		return false
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// doneChannel reports whether the goroutine body signals completion on a
// channel object that the spawning function receives from: a send or close
// in the body paired with a receive (or range) on the same channel variable
// in the enclosing function.
func (p *Pass) doneChannel(body *ast.BlockStmt, fn funcNode) bool {
	signaled := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if obj := p.chanObj(n.Chan); obj != nil {
				signaled[obj] = true
			}
		case *ast.CallExpr:
			if p.isBuiltin(n, "close") && len(n.Args) == 1 {
				if obj := p.chanObj(n.Args[0]); obj != nil {
					signaled[obj] = true
				}
			}
		}
		return true
	})
	if len(signaled) == 0 {
		return false
	}
	joined := false
	ast.Inspect(fn.body(), func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := p.chanObj(n.X); obj != nil && signaled[obj] {
					joined = true
				}
			}
		case *ast.RangeStmt:
			if obj := p.chanObj(n.X); obj != nil && signaled[obj] {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

// chanObj resolves a channel-typed expression to its variable object, or
// nil for anything but a plain identifier of channel type.
func (p *Pass) chanObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	t := p.TypeOf(id)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil
	}
	return p.Info.Uses[id]
}
