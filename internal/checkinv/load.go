package checkinv

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Rel is the module-relative directory ("internal/core", "" for the
	// module root); analyzer scopes are expressed against it.
	Rel string
	// Path is the import path used for type-checking.
	Path string
	// Dir is the absolute directory.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	// TypeErrors holds any type-checking diagnostics.  Analysis proceeds on
	// a best-effort basis with partial type information.
	TypeErrors []error
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("checkinv: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("checkinv: no go.mod above %s", abs)
		}
	}
}

// Loader parses and type-checks packages with a shared FileSet and a shared
// (caching) source importer, so common dependencies are checked once per
// process.  Parsing fans out across goroutines; type-checking runs
// sequentially because the shared importer keeps one dependency graph.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
	// Tests includes _test.go files in the analysis: in-package test files
	// join the package's own type-check, and an external test package
	// (package foo_test) comes back as its own Package with the same Rel,
	// so path-scoped rules apply to it like any file in the directory.
	Tests bool
}

// NewLoader returns a loader backed by the stdlib source importer, which
// resolves both standard-library and module-internal imports from source —
// no external dependencies.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, importer: importer.ForCompiler(fset, "source", nil)}
}

// Dirs resolves the patterns ("./...", "dir/...", plain directories)
// relative to dir and returns the matched directories in deterministic
// order.  testdata, vendor and dot/underscore directories are skipped by
// the recursive forms.
func (l *Loader) Dirs(dir string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
			if base == "" || base == "." {
				base = "."
			}
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, base)
		}
		if !recursive {
			addDir(abs)
			continue
		}
		err := filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			addDir(p)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("checkinv: walking %s: %w", pat, err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Load resolves the patterns relative to dir and returns the matched
// packages in deterministic order.
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	dirs, err := l.Dirs(dir, patterns)
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs, root, modPath)
}

// parsedDir is one directory's parsed-but-unchecked contents.
type parsedDir struct {
	rel, path, abs string
	files          []*ast.File // package sources plus in-package test files
	extFiles       []*ast.File // external test package (package foo_test)
}

// LoadDirs parses every directory concurrently, then type-checks them in
// input order against the shared importer.
func (l *Loader) LoadDirs(dirs []string, modRoot, modPath string) ([]*Package, error) {
	parsed := make([]*parsedDir, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	for i, d := range dirs {
		i, d := i, d
		wg.Add(1)
		go func() {
			defer wg.Done()
			parsed[i], errs[i] = l.parseDir(d, modRoot, modPath)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for _, pd := range parsed {
		if pd == nil {
			continue
		}
		if len(pd.files) > 0 {
			pkgs = append(pkgs, l.check(pd.rel, pd.path, pd.abs, pd.files))
		}
		if len(pd.extFiles) > 0 {
			pkgs = append(pkgs, l.check(pd.rel, pd.path+"_test", pd.abs, pd.extFiles))
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the package in dir.  Without Tests it
// returns at most one Package (nil slice when the directory holds no
// non-test Go files); with Tests the in-package _test.go files join that
// type-check and a second Package is appended for an external test package
// (package foo_test), when one exists.
func (l *Loader) LoadDir(dir, modRoot, modPath string) ([]*Package, error) {
	return l.LoadDirs([]string{dir}, modRoot, modPath)
}

// goFileNames returns the directory's Go file names split into sources and
// (when tests is set) test files, each sorted.
func goFileNames(dir string, tests bool) (srcNames, testNames []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("checkinv: %w", err)
	}
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") {
			continue
		}
		if strings.HasSuffix(n, "_test.go") {
			if tests {
				testNames = append(testNames, n)
			}
			continue
		}
		srcNames = append(srcNames, n)
	}
	sort.Strings(srcNames)
	sort.Strings(testNames)
	return srcNames, testNames, nil
}

// parseDir parses one directory's files; nil when it holds no Go files in
// scope.
func (l *Loader) parseDir(dir, modRoot, modPath string) (*parsedDir, error) {
	srcNames, testNames, err := goFileNames(dir, l.Tests)
	if err != nil {
		return nil, err
	}
	if len(srcNames) == 0 && len(testNames) == 0 {
		return nil, nil
	}

	parse := func(names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, n := range names {
			f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("checkinv: %w", err)
			}
			files = append(files, f)
		}
		return files, nil
	}
	files, err := parse(srcNames)
	if err != nil {
		return nil, err
	}
	testFiles, err := parse(testNames)
	if err != nil {
		return nil, err
	}

	// Split the test files between the package under test and the external
	// test package by their package clause.
	var extFiles []*ast.File
	for _, f := range testFiles {
		if strings.HasSuffix(f.Name.Name, "_test") {
			extFiles = append(extFiles, f)
		} else {
			files = append(files, f)
		}
	}

	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := modPath
	if rel != "" {
		path = modPath + "/" + rel
	}
	return &parsedDir{rel: rel, path: path, abs: abs, files: files, extFiles: extFiles}, nil
}

// check type-checks one file set as a package, proceeding on best-effort
// partial information when diagnostics occur.
func (l *Loader) check(rel, path, dir string, files []*ast.File) *Package {
	pkg := &Package{Rel: rel, Path: path, Dir: dir, Fset: l.Fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l.importer,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error repeats TypeErrors; partial info is still usable.
	_, _ = conf.Check(path, l.Fset, files, info)
	pkg.Info = info
	return pkg
}
