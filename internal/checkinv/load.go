package checkinv

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Rel is the module-relative directory ("internal/core", "" for the
	// module root); analyzer scopes are expressed against it.
	Rel string
	// Path is the import path used for type-checking.
	Path string
	// Dir is the absolute directory.
	Dir string

	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	// TypeErrors holds any type-checking diagnostics.  Analysis proceeds on
	// a best-effort basis with partial type information.
	TypeErrors []error
}

// ModuleRoot walks upward from dir to the enclosing go.mod and returns its
// directory and module path.
func ModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("checkinv: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("checkinv: no go.mod above %s", abs)
		}
	}
}

// Loader parses and type-checks packages with a shared FileSet and a shared
// (caching) source importer, so common dependencies are checked once.
type Loader struct {
	Fset     *token.FileSet
	importer types.Importer
}

// NewLoader returns a loader backed by the stdlib source importer, which
// resolves both standard-library and module-internal imports from source —
// no external dependencies.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, importer: importer.ForCompiler(fset, "source", nil)}
}

// Load resolves the patterns ("./...", "dir/...", plain directories)
// relative to dir and returns the matched packages in deterministic order.
func (l *Loader) Load(dir string, patterns []string) ([]*Package, error) {
	root, modPath, err := ModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var dirs []string
	addDir := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		base, recursive := pat, false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			base, recursive = rest, true
			if base == "" || base == "." {
				base = "."
			}
		}
		abs := base
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, base)
		}
		if !recursive {
			addDir(abs)
			continue
		}
		err := filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != abs && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			addDir(p)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("checkinv: walking %s: %w", pat, err)
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, d := range dirs {
		pkg, err := l.LoadDir(d, root, modPath)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir, returning nil
// when the directory holds no non-test Go files.
func (l *Loader) LoadDir(dir, modRoot, modPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("checkinv: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("checkinv: %w", err)
		}
		files = append(files, f)
	}

	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return nil, err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		rel = ""
	}
	path := modPath
	if rel != "" {
		path = modPath + "/" + rel
	}

	pkg := &Package{Rel: rel, Path: path, Dir: abs, Fset: l.Fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: l.importer,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// The returned error repeats TypeErrors; partial info is still usable.
	_, _ = conf.Check(path, l.Fset, files, info)
	pkg.Info = info
	return pkg, nil
}
