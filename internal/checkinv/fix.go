package checkinv

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
)

// fixReason is the placeholder justification -fix leaves behind; the debt
// report surfaces it until a human replaces it with a real reason.
const fixReason = "TODO: justify (inserted by checkinv -fix)"

// ApplyFixes rewrites the files named in the findings, inserting
// //checkinv:allow annotations so a re-run over the same tree is clean.
// Each finding line gets a standalone directive on the line above, indented
// to match; findings on a line that already carries an end-of-line
// directive have their rules merged into it instead.  Every rewritten file
// is re-parsed before being written back — a file the fix would break is
// left untouched and reported as an error.  Returns the files changed.
func ApplyFixes(findings []Finding) ([]string, error) {
	byFile := map[string]map[int][]string{}
	for _, f := range findings {
		lines := byFile[f.Pos.Filename]
		if lines == nil {
			lines = map[int][]string{}
			byFile[f.Pos.Filename] = lines
		}
		if !contains(lines[f.Pos.Line], f.Rule) {
			lines[f.Pos.Line] = append(lines[f.Pos.Line], f.Rule)
		}
	}

	var changed []string
	var errs []string
	for file, lines := range byFile {
		if err := fixFile(file, lines); err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", file, err))
			continue
		}
		changed = append(changed, file)
	}
	sort.Strings(changed)
	if len(errs) > 0 {
		sort.Strings(errs)
		return changed, fmt.Errorf("checkinv: -fix: %s", strings.Join(errs, "; "))
	}
	return changed, nil
}

// fixFile inserts or extends directives for the finding lines of one file.
func fixFile(file string, lineRules map[int][]string) error {
	data, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	perm := os.FileMode(0o666)
	if st, err := os.Stat(file); err == nil {
		perm = st.Mode().Perm()
	}
	lines := strings.Split(string(data), "\n")

	// Highest line first, so earlier insertions don't shift later targets.
	targets := make([]int, 0, len(lineRules))
	for l := range lineRules {
		targets = append(targets, l)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(targets)))

	for _, ln := range targets {
		if ln < 1 || ln > len(lines) {
			return fmt.Errorf("finding at line %d outside file (%d lines)", ln, len(lines))
		}
		rules := append([]string{}, lineRules[ln]...)
		sort.Strings(rules)
		target := lines[ln-1]
		if merged, ok := mergeDirective(target, rules); ok {
			lines[ln-1] = merged
			continue
		}
		indent := target[:len(target)-len(strings.TrimLeft(target, " \t"))]
		directive := indent + allowDirective + " " + strings.Join(rules, ",") + " " + fixReason
		lines = append(lines[:ln-1], append([]string{directive}, lines[ln-1:]...)...)
	}

	fixed := strings.Join(lines, "\n")
	if _, err := parser.ParseFile(token.NewFileSet(), file, fixed, parser.ParseComments); err != nil {
		return fmt.Errorf("fix would not parse, file left untouched: %v", err)
	}
	return os.WriteFile(file, []byte(fixed), perm)
}

// mergeDirective merges rules into an existing end-of-line directive on the
// line, returning ok=false when the line has none.
func mergeDirective(line string, rules []string) (string, bool) {
	i := strings.Index(line, allowDirective)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(allowDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // //checkinv:allowed — not our directive
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", false
	}
	existing := strings.Split(fields[0], ",")
	for _, r := range rules {
		if !contains(existing, r) {
			existing = append(existing, r)
		}
	}
	sort.Strings(existing)
	// Splice the widened rule list back in place of the first field.
	j := strings.Index(rest, fields[0])
	return line[:i+len(allowDirective)] + rest[:j] + strings.Join(existing, ",") + rest[j+len(fields[0]):], true
}

func contains(ss []string, s string) bool {
	for _, v := range ss {
		if v == s {
			return true
		}
	}
	return false
}
