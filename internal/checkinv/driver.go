package checkinv

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// RunOptions configures one driver invocation.
type RunOptions struct {
	// Dir is the working directory patterns resolve against.
	Dir string
	// Patterns are package patterns ("./...", "internal/core", …); empty
	// means "./...".
	Patterns []string
	// Analyzers is the rule set to apply (default Analyzers()).
	Analyzers []*Analyzer
	// AllPkgs applies every rule to every package, ignoring path scopes.
	AllPkgs bool
	// Tests includes _test.go files.
	Tests bool
	// CacheDir enables the per-package findings cache rooted there; empty
	// disables caching.
	CacheDir string
}

// RunStats describes where one invocation spent its time.
type RunStats struct {
	// Dirs is the number of matched package directories, Packages the
	// number of analyzed packages (a directory with an external test
	// package counts twice, a Go-free one zero).
	Dirs     int
	Packages int
	// CacheHits / CacheMisses count directories served from / missing in
	// the cache.  Without a cache every directory is a miss.
	CacheHits   int
	CacheMisses int
	// LoadDuration covers hashing, cache probes, parsing and type-checking;
	// AnalyzeDuration covers the analyzer runs.
	LoadDuration    time.Duration
	AnalyzeDuration time.Duration
	// TypeErrorPkgs lists packages with type-check diagnostics ("path (n
	// errors)"): findings there may be incomplete.
	TypeErrorPkgs []string
}

// RunResult is the outcome of one driver invocation.
type RunResult struct {
	Findings []Finding
	// Allows is every //checkinv:allow site in the analyzed packages with
	// usage marked — the input to the suppression-debt report.
	Allows []AllowSite
	Stats  RunStats
}

// RunTree is the driver: resolve patterns to directories, serve unchanged
// directories from the cache, parse/type-check/analyze the rest, and merge
// everything into one deterministic finding list.
func RunTree(opt RunOptions) (*RunResult, error) {
	if len(opt.Patterns) == 0 {
		opt.Patterns = []string{"./..."}
	}
	if opt.Analyzers == nil {
		opt.Analyzers = Analyzers()
	}
	root, modPath, err := ModuleRoot(opt.Dir)
	if err != nil {
		return nil, err
	}
	loader := NewLoader()
	loader.Tests = opt.Tests
	dirs, err := loader.Dirs(opt.Dir, opt.Patterns)
	if err != nil {
		return nil, err
	}

	res := &RunResult{}
	res.Stats.Dirs = len(dirs)
	loadStart := time.Now()

	var cache *Cache
	if opt.CacheDir != "" {
		cache, err = NewCache(opt.CacheDir)
		if err != nil {
			return nil, err
		}
	}
	config := driverConfig(opt)

	// Probe the cache for every directory concurrently; the deep hashes
	// share a memo, so the whole tree is hashed once.
	keys := make([]string, len(dirs))
	entries := make([]*cacheEntry, len(dirs))
	if cache != nil {
		keyErrs := make([]error, len(dirs))
		var wg sync.WaitGroup
		for i, d := range dirs {
			i, d := i, d
			wg.Add(1)
			go func() {
				defer wg.Done()
				keys[i], keyErrs[i] = cache.Key(d, root, modPath, config, opt.Tests)
				if keyErrs[i] == nil {
					entries[i] = cache.Get(keys[i])
				}
			}()
		}
		wg.Wait()
		for _, err := range keyErrs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Load and analyze the misses.
	var missDirs []string
	missAt := map[string]int{}
	for i, e := range entries {
		if e == nil {
			missAt[dirs[i]] = i
			missDirs = append(missDirs, dirs[i])
		} else {
			res.Stats.CacheHits++
		}
	}
	res.Stats.CacheMisses = len(missDirs)

	pkgs, err := loader.LoadDirs(missDirs, root, modPath)
	if err != nil {
		return nil, err
	}
	res.Stats.LoadDuration = time.Since(loadStart)

	analyzeStart := time.Now()
	results := RunPackages(pkgs, opt.Analyzers, opt.AllPkgs)

	// Assemble fresh entries per missed directory and store them.
	fresh := map[string]*cacheEntry{}
	for _, d := range missDirs {
		fresh[d] = &cacheEntry{}
	}
	for i, pkg := range pkgs {
		e := fresh[pkg.Dir]
		if e == nil { // filepath.Clean differences; fall back to linear probe
			for _, d := range missDirs {
				if sameDir(d, pkg.Dir) {
					e = fresh[d]
					break
				}
			}
		}
		if e == nil {
			continue
		}
		e.Packages = append(e.Packages, packEntry(root, pkg, results[i]))
	}
	if cache != nil {
		for _, d := range missDirs {
			if err := cache.Put(keys[missAt[d]], fresh[d]); err != nil {
				return nil, err
			}
		}
	}

	// Merge: cached entries and fresh results, rehydrated to absolute
	// positions, then the canonical sort.
	for i, e := range entries {
		if e == nil {
			e = fresh[dirs[i]]
		}
		if e == nil {
			continue
		}
		for _, cp := range e.Packages {
			res.Stats.Packages++
			if cp.TypeErrors > 0 {
				res.Stats.TypeErrorPkgs = append(res.Stats.TypeErrorPkgs,
					fmt.Sprintf("%s (%d type errors)", cp.Path, cp.TypeErrors))
			}
			for _, f := range cp.Findings {
				res.Findings = append(res.Findings, Finding{
					Pos:     token.Position{Filename: filepath.Join(root, filepath.FromSlash(f.File)), Line: f.Line, Column: f.Column},
					Rule:    f.Rule,
					Message: f.Message,
				})
			}
			for _, a := range cp.Allows {
				a.File = filepath.Join(root, filepath.FromSlash(a.File))
				res.Allows = append(res.Allows, a)
			}
		}
	}
	res.Stats.AnalyzeDuration = time.Since(analyzeStart)
	SortFindings(res.Findings)
	sort.Slice(res.Allows, func(i, j int) bool {
		if res.Allows[i].File != res.Allows[j].File {
			return res.Allows[i].File < res.Allows[j].File
		}
		return res.Allows[i].Line < res.Allows[j].Line
	})
	sort.Strings(res.Stats.TypeErrorPkgs)
	return res, nil
}

// driverConfig folds every finding-relevant option into the cache key.
func driverConfig(opt RunOptions) string {
	names := make([]string, 0, len(opt.Analyzers))
	for _, az := range opt.Analyzers {
		names = append(names, az.Name)
	}
	return fmt.Sprintf("analyzers=%s allpkgs=%t tests=%t", strings.Join(names, ","), opt.AllPkgs, opt.Tests)
}

// packEntry converts one package's results to cache form with
// module-relative file names.
func packEntry(root string, pkg *Package, r PkgResult) cachedPackage {
	cp := cachedPackage{
		Rel:        pkg.Rel,
		Path:       pkg.Path,
		TypeErrors: len(pkg.TypeErrors),
		Findings:   []cachedFinding{},
		Allows:     []AllowSite{},
	}
	for _, f := range r.Findings {
		cp.Findings = append(cp.Findings, cachedFinding{
			File:    relTo(root, f.Pos.Filename),
			Line:    f.Pos.Line,
			Column:  f.Pos.Column,
			Rule:    f.Rule,
			Message: f.Message,
		})
	}
	for _, a := range r.Allows {
		a.File = relTo(root, a.File)
		cp.Allows = append(cp.Allows, a)
	}
	return cp
}

// relTo makes path module-relative (slash form) when possible.
func relTo(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(path)
}

// sameDir reports whether two paths name the same directory after
// cleaning.
func sameDir(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}
