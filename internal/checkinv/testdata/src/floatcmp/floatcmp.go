// Package floatcmp is a checkinv fixture: exact floating-point comparisons
// that must be flagged, plus the constant and annotated escapes.
package floatcmp

import "math"

func violations(x, y float64, f float32) bool {
	if x == y { // want "== on floating-point operands"
		return true
	}
	if f != 1.5 { // want "!= on floating-point operands"
		return true
	}
	return x == math.Sqrt(2) // want "== on floating-point operands"
}

func mixedOperand(n int, x float64) bool {
	return float64(n) == x // want "== on floating-point operands"
}

func constantsAreExact() bool {
	// Both operands are compile-time constants: exact by construction.
	const eps = 1e-9
	return eps == 1e-9
}

func integersAreFine(a, b int) bool { return a == b }

func annotated(x float64) bool {
	//checkinv:allow floatcmp — fixture: sentinel comparison is exact on purpose
	return x == 0
}

func tolerant(x, y float64) bool { return math.Abs(x-y) < 1e-9 }
