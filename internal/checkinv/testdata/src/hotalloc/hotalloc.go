// Package hotalloc is a checkinv fixture for the hot-path allocation
// analyzer: only functions annotated //checkinv:hotpath are inspected, and
// inside their loops the per-iteration heap escapes are flagged.
package hotalloc

import (
	"errors"
	"fmt"
)

type item struct{ key int }

func sink(v any) { _ = v }

//checkinv:hotpath
func hotViolations(items []item) []string {
	var out []string
	for _, it := range items {
		s := fmt.Sprintf("k=%d", it.key)  // want "fmt.Sprintf in a hot loop"
		out = append(out, s)              // want "append to out grows an unpreallocated slice"
		sink(it.key)                      // want "int value boxed into interface parameter"
		f := func() int { return it.key } // want "closure literal in a hot loop"
		_ = f
	}
	return out
}

//checkinv:hotpath
func hotError(items []item) error {
	for range items {
		err := errors.New("boom") // want "errors.New in a hot loop"
		_ = err
	}
	return nil
}

//checkinv:hotpath
func hotClean(items []item, dst []int) []int {
	// Preallocated locals, caller-provided buffers and loop-local slices
	// are the sanctioned idioms.
	out := make([]int, 0, len(items))
	for _, it := range items {
		out = append(out, it.key)
		dst = append(dst, it.key)
		local := []int{it.key}
		_ = local
	}
	return append(dst, out...)
}

// naiveEngine is the shape the counting-engine seam must never take: a
// CountBlock body that builds a per-transaction closure (capturing the
// engine to bump its counters) and formats per-iteration debug labels.
// The countengine backends keep their transaction loops closure-free; this
// twin proves the rule would catch the regression.
type naiveEngine struct {
	counts []int64
	stats  int64
}

//checkinv:hotpath
func (e *naiveEngine) CountBlock(txns []item) {
	for _, txn := range txns {
		visit := func(slot int) { // want "closure literal in a hot loop"
			e.stats++
			e.counts[slot]++
		}
		visit(txn.key)
		label := fmt.Sprintf("txn=%d", txn.key) // want "fmt.Sprintf in a hot loop"
		_ = label
	}
}

// coldTwin has the same body as hotViolations but no annotation: the rule
// is opt-in, so it is never inspected.
func coldTwin(items []item) []string {
	var out []string
	for _, it := range items {
		out = append(out, fmt.Sprintf("k=%d", it.key))
	}
	return out
}

//checkinv:hotpath
func hotAllowed(items []item) {
	for _, it := range items {
		sink(it.key) //checkinv:allow hotalloc — fixture: deliberate boxing on a cold branch
	}
}
