// Package goroleak is a checkinv fixture for the goroutine-lifecycle
// analyzer: unjoined spawns are flagged, the WaitGroup and done-channel
// join idioms stay quiet.
package goroleak

import "sync"

func work() {}

func namedSpawn() {
	go work() // want "goroutine calls a named function"
}

func unjoined() {
	go func() { // want "goroutine has no visible join"
		work()
	}()
}

func waitGroupLocal() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type pool struct{ wg sync.WaitGroup }

// spawn joins through a struct-field WaitGroup: the reap happens in a
// Close/Wait method elsewhere, but the Done is visible at the spawn site.
func (p *pool) spawn() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

func doneChannel() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func rangeJoined() {
	out := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			out <- i
		}
		close(out)
	}()
	for range out {
	}
}

func annotated() {
	go func() { work() }() //checkinv:allow goroleak — fixture: reaped by the test's cleanup
}
