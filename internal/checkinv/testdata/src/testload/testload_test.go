package testload

import "time"

// inPkgHelper leaks the wall clock from an in-package test file.
func inPkgHelper() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}
