package testload_test

import "time"

// extHelper leaks the wall clock from an external test package.
func extHelper() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
}
