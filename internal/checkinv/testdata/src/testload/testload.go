// Package testload is the loader fixture for test-file analysis: the
// non-test file is clean, the in-package and external test files each carry
// one deliberate walltime violation.  It is exercised by
// TestLoaderIncludesTestFiles, not by the per-rule fixture harness.
package testload

// Tick is clean: no wall-clock use in the package proper.
func Tick() int { return 1 }
