// Package mapiter is a checkinv fixture for the map-iteration-order
// analyzer: flagged loops leak map order into output, quiet ones either
// sort afterwards, stay order-insensitive, or are annotated.
package mapiter

import (
	"fmt"
	"io"
	"sort"

	"parapriori/internal/itemset"
)

func appendToOuter(m map[string]int) []string {
	var keys []string
	for k := range m { // want "append to slice declared outside the loop"
		keys = append(keys, k)
	}
	return keys
}

func sendOnChannel(m map[string]int, ch chan string) {
	for k := range m { // want "channel send in body"
		ch <- k
	}
}

func printDirectly(m map[string]int) {
	for k, v := range m { // want "write via fmt.Printf"
		fmt.Printf("%s=%d\n", k, v)
	}
}

func writeToStream(m map[string]int, w io.Writer) {
	for k := range m { // want "write via method Write"
		w.Write([]byte(k))
	}
}

func sortedAfterwards(m map[string]int) []string {
	// The collect-then-sort idiom: order nondeterminism dies at the sort.
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func orderInsensitive(m map[string]int) int {
	// Scalar accumulation and map-to-map copies are commutative.
	total := 0
	other := map[string]int{}
	for k, v := range m {
		total += v
		other[k] = v
	}
	return total
}

func innerSliceOnly(m map[string][]int) int {
	// Appending to a slice declared inside the body never exports order.
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func crossBlockSort(m map[string]int, verbose bool) []string {
	// v1's single-block heuristic flagged this shape: the collect loop and
	// the sort live in different blocks.  The v2 function-scope use-def
	// analysis sees the canonicalizer and stays quiet.
	var keys []string
	if len(m) > 0 {
		for k := range m {
			keys = append(keys, k)
		}
	}
	if verbose {
		sort.Strings(keys)
	}
	return keys
}

func itemsetCanonicalized(m map[itemset.Item]int) itemset.Itemset {
	// itemset.New sorts and dedups its input: the collected order dies in
	// the constructor, so the append is order-safe.
	flat := make([]itemset.Item, 0, len(m))
	for it := range m {
		flat = append(flat, it)
	}
	return itemset.New(flat...)
}

func sortsWrongSlice(m map[string]int) ([]string, []string) {
	// A later sort on a *different* slice must not clear the leak: the
	// use-def check is per collected object, not per function.
	var keys, other []string
	for k := range m { // want "append to slice declared outside the loop"
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys, other
}

func annotated(m map[string]int) []string {
	var keys []string
	//checkinv:allow mapiter — fixture: caller is order-agnostic
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
