// Package walltime is a checkinv fixture: every line marked `want` must be
// reported by the walltime analyzer, and the annotated sites must stay
// quiet.
package walltime

import (
	"fmt"
	"time"
)

func violations() {
	start := time.Now()             // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)    // want "time.Sleep reads the wall clock"
	fmt.Println(time.Since(start))  // want "time.Since reads the wall clock"
	<-time.After(time.Millisecond)  // want "time.After reads the wall clock"
	t := time.NewTimer(time.Second) // want "time.NewTimer reads the wall clock"
	t.Stop()
}

func allowedInline() {
	_ = time.Now() //checkinv:allow walltime — fixture: deliberately permitted
}

//checkinv:allow walltime — fixture: standalone form covers the next line
func allowedAbove() time.Time { return time.Now() }

func fineConversions() {
	// Pure constructors never observe real time and must not be flagged.
	_ = time.Duration(5) * time.Second
	_ = time.Unix(0, 0)
}
