// Package rawchan is a checkinv fixture: raw channel machinery that must be
// flagged when the rule is applied, plus annotated escapes.
package rawchan

func violations() {
	ch := make(chan int, 4) // want "make\(chan ...\) bypasses the cluster comm layer"
	ch <- 1                 // want "raw channel send bypasses the cluster comm layer"
	<-ch                    // want "raw channel receive bypasses the cluster comm layer"
	close(ch)               // want "close on a raw channel bypasses the cluster comm layer"
}

func goAndSelect(a, b chan int) {
	go func() {}() // want "raw goroutine escapes the SPMD model"
	select {       // want "select on raw channels bypasses the cluster comm layer"
	case v := <-a: // want "raw channel receive bypasses the cluster comm layer"
		_ = v
	case b <- 2: // want "raw channel send bypasses the cluster comm layer"
	default:
	}
}

func drain(ch chan int) int {
	n := 0
	for v := range ch { // want "range over a raw channel bypasses the cluster comm layer"
		n += v
	}
	return n
}

func allowed() {
	//checkinv:allow rawchan — fixture: deliberately permitted
	done := make(chan struct{})
	//checkinv:allow rawchan
	close(done)
}

func notChannels() {
	// Shadowing the builtins must not confuse the analyzer.
	type closer struct{}
	closeFn := func(closer) {}
	closeFn(closer{})
	m := make(map[int]int)
	s := make([]int, 0, 8)
	_ = append(s, len(m))
}
