// Package snapshotmut is a checkinv fixture modeled on the serving tier's
// hot-swap: a snapshot published through atomic.Pointer.Store is frozen,
// so every write that reaches a loaded (or otherwise shared) snapshot is a
// seeded race the analyzer must catch, while the build-fresh-then-publish
// contract stays quiet.
package snapshotmut

import "sync/atomic"

type snapshot struct {
	gen   uint64
	rules []string
	cache map[string]int
}

type server struct {
	snap atomic.Pointer[snapshot]
}

// publish is the contract: build the next snapshot fresh, then swap it in.
// Writes to the still-private value must stay quiet.
func (s *server) publish(rules []string) {
	next := &snapshot{rules: rules, cache: map[string]int{}}
	next.gen = 1
	s.snap.Store(next)
}

// mutateAfterLoad is the seeded bug: the loaded snapshot is shared with
// every in-flight reader, so each write is a data race.
func (s *server) mutateAfterLoad(q string) {
	snap := s.snap.Load()
	snap.gen++        // want "write to snapshot after publish"
	snap.cache[q] = 1 // want "write to snapshot after publish"
	snap.rules[0] = q // want "write to snapshot after publish"
}

// newSnapshot returns the published type: the constructor exemption — the
// value is not reachable by readers while its builder runs.
func newSnapshot(gen uint64) *snapshot {
	sn := &snapshot{cache: map[string]int{}}
	sn.gen = gen
	return sn
}

// mutateParam writes through a parameter: the caller may have published
// the value already, so the write is flagged.
func mutateParam(sn *snapshot) {
	sn.gen = 9 // want "write to snapshot after publish"
}

// zeroLocal mutates a value-typed local: private by construction.
func zeroLocal() uint64 {
	var sn snapshot
	sn.gen = 3
	return sn.gen
}

// allowedBump is an intentional, annotated mutation.
func (s *server) allowedBump() {
	sn := s.snap.Load()
	sn.gen++ //checkinv:allow snapshotmut — fixture: counter has its own lock
}
