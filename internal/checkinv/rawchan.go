package checkinv

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawchanAnalyzer forbids raw channel machinery in internal/core,
// internal/serve, internal/distserve and the commands.  In core, all inter-processor traffic
// must flow through cluster.Proc.Send/Recv and the cluster.Comm collectives
// so it is charged to the virtual clocks; a bare channel (or goroutine) is
// traffic the cost model never sees, which silently deflates the
// communication figures the paper's evaluation is about.  The serving layer
// and commands run on the real OS where concurrency is legitimate — but
// every raw site there must carry a //checkinv:allow rawchan annotation, so
// each one is a deliberate, reviewed decision rather than a stray goroutine.
// Package cluster itself is exempt — it is the comm layer.
var RawchanAnalyzer = &Analyzer{
	Name: "rawchan",
	Doc:  "forbid unannotated raw channels/goroutines in internal/core, internal/serve, internal/distserve, internal/obsv and cmd",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/core", "internal/serve", "internal/distserve", "internal/obsv", "cmd")
	},
	Check: checkRawchan,
}

func checkRawchan(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if p.isBuiltin(n, "make") && len(n.Args) > 0 {
					if _, ok := n.Args[0].(*ast.ChanType); ok {
						p.Reportf(n.Pos(), "make(chan ...) bypasses the cluster comm layer; use Proc.Send/Recv or a Comm collective")
					}
				}
				if p.isBuiltin(n, "close") {
					p.Reportf(n.Pos(), "close on a raw channel bypasses the cluster comm layer")
				}
			case *ast.SendStmt:
				p.Reportf(n.Pos(), "raw channel send bypasses the cluster comm layer; use Proc.Send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					p.Reportf(n.Pos(), "raw channel receive bypasses the cluster comm layer; use Proc.Recv")
				}
			case *ast.SelectStmt:
				p.Reportf(n.Pos(), "select on raw channels bypasses the cluster comm layer")
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "raw goroutine escapes the SPMD model; processor programs run under cluster.Run")
			case *ast.RangeStmt:
				if t := p.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						p.Reportf(n.Pos(), "range over a raw channel bypasses the cluster comm layer; use Proc.Recv")
					}
				}
			}
			return true
		})
	}
}
