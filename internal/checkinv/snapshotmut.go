package checkinv

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotmutAnalyzer enforces the serving tier's hot-swap contract: a type
// published through atomic.Pointer[T].Store/Swap/CompareAndSwap is frozen
// the moment it is published.  Readers in internal/serve and
// internal/distserve load snapshots lock-free, so any field, slice-element
// or map write that reaches a published value is a data race the race
// detector only catches when the schedule cooperates — this rule catches it
// statically, RacerD-style, by classifying where the written value came
// from:
//
//   - values freshly built in the writing function (&T{...}, T{...},
//     new(T), or a local var of value type T) are still private — quiet;
//   - functions whose results include *T or T are constructors — quiet;
//   - everything else (parameters, struct fields, and above all the result
//     of an atomic.Pointer Load) is potentially published — flagged.
//
// Intentional mutations (e.g. a field with its own lock) are annotated
// //checkinv:allow snapshotmut with the reason.
var SnapshotmutAnalyzer = &Analyzer{
	Name: "snapshotmut",
	Doc:  "flag writes to atomic.Pointer-published snapshot types outside their constructors",
	Applies: func(rel string) bool {
		return underAny(rel, "internal", "cmd")
	},
	Check: checkSnapshotmut,
}

func checkSnapshotmut(p *Pass) {
	published := publishedTypes(p)
	if len(published) == 0 {
		return
	}
	for _, f := range p.Files {
		forEachFunc(f, func(fn funcNode) {
			if constructsPublished(p, fn, published) {
				return
			}
			ast.Inspect(fn.body(), func(n ast.Node) bool {
				if _, inner := n.(*ast.FuncLit); inner && n != fn.node {
					return false // inner functions get their own visit
				}
				switch st := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range st.Lhs {
						p.checkFrozenWrite(fn, lhs, published)
					}
				case *ast.IncDecStmt:
					p.checkFrozenWrite(fn, st.X, published)
				}
				return true
			})
		})
	}
}

// publishedTypes scans the package for atomic.Pointer[T] publish calls and
// returns the set of type names T that must be treated as frozen.
func publishedTypes(p *Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Store", "Swap", "CompareAndSwap":
			default:
				return true
			}
			if tn := atomicPointerElem(p.TypeOf(sel.X)); tn != nil {
				out[tn] = true
			}
			return true
		})
	}
	return out
}

// atomicPointerElem returns the type name T when t is sync/atomic.Pointer[T]
// (possibly behind pointers) and T is a named type, else nil.
func atomicPointerElem(t types.Type) *types.TypeName {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if named.Obj().Pkg().Path() != "sync/atomic" || named.Obj().Name() != "Pointer" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	elem := args.At(0)
	for {
		ptr, ok := elem.(*types.Pointer)
		if !ok {
			break
		}
		elem = ptr.Elem()
	}
	if n, ok := elem.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// publishedName returns the published type name a type resolves to, or nil.
func publishedName(t types.Type, published map[*types.TypeName]bool) *types.TypeName {
	if t == nil {
		return nil
	}
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	if n, ok := t.(*types.Named); ok && published[n.Obj()] {
		return n.Obj()
	}
	return nil
}

// checkFrozenWrite flags the write when the LHS chain passes through a value
// of a published type that the enclosing function did not freshly build.
func (p *Pass) checkFrozenWrite(fn funcNode, lhs ast.Expr, published map[*types.TypeName]bool) {
	// Walk the access chain outside-in: v.f, v.f[i], (*v).f, v.m[k]…  The
	// write mutates a published value when some strict prefix of the chain
	// (the container being written into) has a published type.
	for e := lhs; ; {
		var base ast.Expr
		switch x := e.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.ParenExpr:
			base = x.X
		default:
			return // plain ident rebind or unsupported shape
		}
		if tn := publishedName(p.TypeOf(base), published); tn != nil {
			if p.freshInFunc(fn, base) {
				return
			}
			p.Reportf(lhs.Pos(),
				"write to %s after publish: %s is published via atomic.Pointer and is frozen outside its constructor",
				tn.Name(), tn.Name())
			return
		}
		e = base
	}
}

// freshInFunc reports whether the written-through base expression denotes a
// value the function built itself: a local variable initialized from a
// composite literal or new(T), or a local value-typed var declaration.
// A base that is (or is derived from) an atomic Load, a parameter, a
// receiver or a struct field is not fresh.
func (p *Pass) freshInFunc(fn funcNode, base ast.Expr) bool {
	for {
		switch x := base.(type) {
		case *ast.ParenExpr:
			base = x.X
			continue
		case *ast.StarExpr:
			base = x.X
			continue
		}
		break
	}
	id, ok := base.(*ast.Ident)
	if !ok {
		return false // Load() result, field chain, … — treat as published
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		return false
	}
	// The object must be local to this function.
	if obj.Pos() < fn.node.Pos() || obj.Pos() > fn.node.End() {
		return false
	}
	fresh := false
	ast.Inspect(fn.body(), func(n ast.Node) bool {
		if fresh {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				lid, ok := l.(*ast.Ident)
				if !ok || p.Info.Defs[lid] != obj && p.Info.Uses[lid] != obj {
					continue
				}
				if i < len(st.Rhs) && freshExpr(st.Rhs[i]) {
					fresh = true
				} else if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
					// multi-assign from one call: unknown origin
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if p.Info.Defs[name] != obj {
					continue
				}
				if st.Values == nil {
					// var v T — a zero value is private by construction
					// when T is a value type.
					if _, isPtr := obj.Type().(*types.Pointer); !isPtr {
						fresh = true
					}
				} else if i < len(st.Values) && freshExpr(st.Values[i]) {
					fresh = true
				}
			}
		}
		return !fresh
	})
	return fresh
}

// freshExpr reports whether the expression builds a brand-new value: a
// composite literal, &literal, or new(T).
func freshExpr(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, lit := x.X.(*ast.CompositeLit)
			return lit
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// constructsPublished reports whether the function's results include one of
// the published types — the constructor exemption: the value is not yet
// reachable by readers while its builder runs.
func constructsPublished(p *Pass, fn funcNode, published map[*types.TypeName]bool) bool {
	ft := fn.typeExpr()
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if publishedName(p.TypeOf(field.Type), published) != nil {
			return true
		}
	}
	return false
}
