package checkinv

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// cacheVersion invalidates every entry when the analyzer suite changes
// behavior.  Bump it whenever a rule's findings or the entry schema move.
const cacheVersion = "checkinv-v2.0"

// Cache is the driver's per-package findings cache, the payoff of the
// long-carried ROADMAP item: `go run ./cmd/checkinv ./...` used to
// re-type-check every shared dependency from source on each invocation.
// Entries are keyed by a content hash over the package directory's Go
// files *and* its transitive module-internal imports, so a cached package
// is skipped entirely — no parse, no type-check, no analysis — and any
// edit anywhere in its dependency cone invalidates exactly the packages
// that could see it.  The key is path-independent (module-relative names,
// file contents only), so a CI cache restored on another checkout still
// hits.
type Cache struct {
	dir string

	mu       sync.Mutex
	dirInfo  map[string]dirInfo // abs dir (+tests marker) → own hash, imports
	deepHash map[string]string  // abs dir (+tests marker) → hash incl. transitive deps
	visiting map[string]bool    // cycle guard for deepHash (test-package loops)
}

// dirInfo is one directory's own content hash and the import paths its
// files mention.
type dirInfo struct {
	hash    string
	imports []string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("checkinv: cache: %w", err)
	}
	return &Cache{
		dir:      dir,
		dirInfo:  map[string]dirInfo{},
		deepHash: map[string]string{},
		visiting: map[string]bool{},
	}, nil
}

// cachedFinding is a Finding with a module-relative position, so entries
// travel between checkouts.
type cachedFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// cachedPackage is one package's analysis outcome.
type cachedPackage struct {
	Rel        string          `json:"rel"`
	Path       string          `json:"path"`
	TypeErrors int             `json:"typeErrors,omitempty"`
	Findings   []cachedFinding `json:"findings"`
	Allows     []AllowSite     `json:"allows"`
}

// cacheEntry is the stored value for one directory (1–2 packages when test
// files split into an external test package; 0 for Go-free directories).
type cacheEntry struct {
	Version  string          `json:"version"`
	Packages []cachedPackage `json:"packages"`
}

// Key computes the cache key for a package directory under the given
// configuration string (analyzer set, scope mode, tests mode).
func (c *Cache) Key(dir, modRoot, modPath, config string, tests bool) (string, error) {
	deep, err := c.deepDirHash(dir, modRoot, modPath, tests)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\n%s\n%s\n%s\n%s\n", cacheVersion, runtime.Version(), modPath, config, deep)
	return hex.EncodeToString(h.Sum(nil))[:32], nil
}

// deepDirHash hashes the directory's own Go files plus, recursively, every
// module-internal directory it imports.  Memoized per Cache; import cycles
// through external test packages are cut with a constant marker.
func (c *Cache) deepDirHash(dir, modRoot, modPath string, tests bool) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	memoKey := abs
	if tests {
		memoKey += "\x00tests"
	}
	c.mu.Lock()
	if h, ok := c.deepHash[memoKey]; ok {
		c.mu.Unlock()
		return h, nil
	}
	if c.visiting[memoKey] {
		c.mu.Unlock()
		return "cycle", nil
	}
	c.visiting[memoKey] = true
	c.mu.Unlock()

	own, imports, err := c.ownDirHash(abs, tests)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "dir %s %s\n", filepath.ToSlash(rel), own)
	for _, imp := range filterModuleImports(imports, modPath) {
		sub := imp
		if sub == modPath {
			sub = ""
		} else {
			sub = strings.TrimPrefix(sub, modPath+"/")
		}
		depDir := filepath.Join(modRoot, filepath.FromSlash(sub))
		// Dependencies are hashed source-only: test files of a dependency
		// cannot change this package's types or findings.
		dh, err := c.deepDirHash(depDir, modRoot, modPath, false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", imp, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))

	c.mu.Lock()
	c.deepHash[memoKey] = sum
	delete(c.visiting, memoKey)
	c.mu.Unlock()
	return sum, nil
}

// ownDirHash hashes the directory's Go files and returns the
// module-internal import paths they mention, sorted.  Imports are read
// with a comments-and-bodies-free parse — cheap enough to run on every
// invocation even for a full tree.
func (c *Cache) ownDirHash(abs string, tests bool) (string, []string, error) {
	key := abs
	if tests {
		key += "\x00tests"
	}
	c.mu.Lock()
	if info, ok := c.dirInfo[key]; ok {
		c.mu.Unlock()
		return info.hash, info.imports, nil
	}
	c.mu.Unlock()

	srcNames, testNames, err := goFileNames(abs, tests)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// An import of a vanished directory: the dependent package has
			// type errors either way; a constant marker keys that state.
			return "missing", nil, nil
		}
		return "", nil, err
	}
	names := append(append([]string{}, srcNames...), testNames...)
	h := sha256.New()
	importSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, n := range names {
		p := filepath.Join(abs, n)
		data, err := os.ReadFile(p)
		if err != nil {
			return "", nil, err
		}
		fmt.Fprintf(h, "file %s %d\n", n, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, p, data, parser.ImportsOnly)
		if err != nil {
			continue // unparsable files change the hash; imports best-effort
		}
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			importSet[path] = true
		}
	}
	var imports []string
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)
	sum := hex.EncodeToString(h.Sum(nil))

	c.mu.Lock()
	c.dirInfo[key] = dirInfo{hash: sum, imports: imports}
	c.mu.Unlock()
	return sum, imports, nil
}

// filterModuleImports keeps only module-internal import paths.
func filterModuleImports(imports []string, modPath string) []string {
	var out []string
	for _, p := range imports {
		if p == modPath || strings.HasPrefix(p, modPath+"/") {
			out = append(out, p)
		}
	}
	return out
}

// Get returns the entry stored under key, or nil.
func (c *Cache) Get(key string) *cacheEntry {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Version != cacheVersion {
		return nil
	}
	return &e
}

// Put stores the entry under key, atomically (tmp + rename), so a raced or
// killed run never leaves a torn entry behind.
func (c *Cache) Put(key string, e *cacheEntry) error {
	e.Version = cacheVersion
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, filepath.Join(c.dir, key+".json"))
}
