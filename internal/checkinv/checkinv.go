// Package checkinv is a zero-dependency static-analysis suite enforcing the
// project's simulation invariants.  The emulated machine in internal/cluster
// reproduces the paper's CD/DD/IDD/HD results deterministically under a
// virtual-time cost model, which promotes a class of Go idioms from style
// nits to silent correctness bugs:
//
//   - walltime: reading the wall clock (time.Now, time.Since, time.Sleep, …)
//     inside simulation packages mixes real time into the virtual clock and
//     corrupts every reported figure.
//   - mapiter: ranging over a map while appending to an outer slice, sending
//     on a channel or writing output leaks Go's randomized map iteration
//     order into mined itemsets and per-pass statistics.
//   - rawchan: raw channel operations in internal/core bypass the cluster
//     comm layer, so the traffic escapes the cost model (and the virtual
//     clocks) entirely.
//   - floatcmp: == / != on floating-point operands in the analysis and
//     experiments packages, where model/measured comparisons must tolerate
//     rounding.
//
// Findings at intentional sites are suppressed with an annotation:
//
//	//checkinv:allow <rule>[,<rule>...] [reason]
//
// placed either at the end of the offending line or on a line of its own
// directly above it.  The driver is cmd/checkinv; see DESIGN.md's
// "Correctness tooling" section for the full grammar and rationale.
package checkinv

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical "file:line: [rule] message"
// form the driver prints and the fixture tests match against.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the rule name used in output, -disable and allow annotations.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Applies reports whether the rule is in scope for a package, given its
	// module-relative directory ("internal/core", "cmd/checkinv", "" for the
	// module root).  The runner consults it; Check itself is scope-free so
	// tests can point it at fixtures.
	Applies func(rel string) bool
	// Check inspects one package and reports findings through the pass.
	Check func(p *Pass)
}

// Pass hands one analyzer the parsed and type-checked package under
// inspection.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info

	findings []Finding
	rule     string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when type-checking could
// not resolve it.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// pkgNameOf returns the imported package path when the identifier denotes an
// imported package ("time" in time.Now), or "".
func (p *Pass) pkgNameOf(id *ast.Ident) string {
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isBuiltin reports whether the call expression invokes the named builtin
// (append, close, make, …), respecting shadowing via the type info.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, builtin := obj.(*types.Builtin)
	return builtin
}

// Analyzers returns every invariant checker in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{WalltimeAnalyzer, MapiterAnalyzer, RawchanAnalyzer, FloatcmpAnalyzer}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// underAny reports whether the module-relative directory rel is one of the
// given roots or nested beneath one.
func underAny(rel string, roots ...string) bool {
	for _, r := range roots {
		if rel == r || strings.HasPrefix(rel, r+"/") {
			return true
		}
	}
	return false
}

// Run applies the analyzers to the packages, honoring each analyzer's path
// scope unless allPaths is set, filters findings through the
// //checkinv:allow annotations, and returns the survivors sorted by file,
// line and rule.
func Run(pkgs []*Package, analyzers []*Analyzer, allPaths bool) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		allow := collectAllows(pkg.Fset, pkg.Files)
		for _, az := range analyzers {
			if !allPaths && az.Applies != nil && !az.Applies(pkg.Rel) {
				continue
			}
			pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info, rule: az.Name}
			az.Check(pass)
			for _, f := range pass.findings {
				if allow.allows(f.Pos.Filename, f.Pos.Line, f.Rule) {
					continue
				}
				out = append(out, f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// allowDirective is the comment prefix of a suppression annotation.
const allowDirective = "//checkinv:allow"

// allowSet records which (file, line, rule) triples carry an allow
// annotation.  A directive covers its own line (end-of-line form) and the
// line directly below it (standalone form).
type allowSet map[string]map[int]map[string]bool

func (a allowSet) add(file string, line int, rule string) {
	byLine := a[file]
	if byLine == nil {
		byLine = make(map[int]map[string]bool)
		a[file] = byLine
	}
	rules := byLine[line]
	if rules == nil {
		rules = make(map[string]bool)
		byLine[line] = rules
	}
	rules[rule] = true
}

func (a allowSet) allows(file string, line int, rule string) bool {
	rules := a[file][line]
	return rules[rule] || rules["all"]
}

// collectAllows scans every comment for //checkinv:allow directives.
func collectAllows(fset *token.FileSet, files []*ast.File) allowSet {
	out := make(allowSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, allowDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //checkinv:allowed — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, rule := range strings.Split(fields[0], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					out.add(pos.Filename, pos.Line, rule)
					out.add(pos.Filename, pos.Line+1, rule)
				}
			}
		}
	}
	return out
}
