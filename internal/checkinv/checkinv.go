// Package checkinv is a zero-dependency static-analysis suite enforcing the
// project's simulation invariants.  The emulated machine in internal/cluster
// reproduces the paper's CD/DD/IDD/HD results deterministically under a
// virtual-time cost model, which promotes a class of Go idioms from style
// nits to silent correctness bugs:
//
//   - walltime: reading the wall clock (time.Now, time.Since, time.Sleep, …)
//     inside simulation packages mixes real time into the virtual clock and
//     corrupts every reported figure.
//   - mapiter: ranging over a map while appending to an outer slice, sending
//     on a channel or writing output leaks Go's randomized map iteration
//     order into mined itemsets and per-pass statistics.
//   - rawchan: raw channel operations in internal/core bypass the cluster
//     comm layer, so the traffic escapes the cost model (and the virtual
//     clocks) entirely.
//   - floatcmp: == / != on floating-point operands in the analysis and
//     experiments packages, where model/measured comparisons must tolerate
//     rounding.
//
// Findings at intentional sites are suppressed with an annotation:
//
//	//checkinv:allow <rule>[,<rule>...] [reason]
//
// placed either at the end of the offending line or on a line of its own
// directly above it.  The driver is cmd/checkinv; see DESIGN.md's
// "Correctness tooling" section for the full grammar and rationale.
package checkinv

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Finding is one rule violation at one source position.
type Finding struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the canonical "file:line: [rule] message"
// form the driver prints and the fixture tests match against.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Message)
}

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name is the rule name used in output, -disable and allow annotations.
	Name string
	// Doc is a one-line description for -list.
	Doc string
	// Applies reports whether the rule is in scope for a package, given its
	// module-relative directory ("internal/core", "cmd/checkinv", "" for the
	// module root).  The runner consults it; Check itself is scope-free so
	// tests can point it at fixtures.
	Applies func(rel string) bool
	// Check inspects one package and reports findings through the pass.
	Check func(p *Pass)
}

// Pass hands one analyzer the parsed and type-checked package under
// inspection.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info

	findings []Finding
	rule     string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil when type-checking could
// not resolve it.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// pkgNameOf returns the imported package path when the identifier denotes an
// imported package ("time" in time.Now), or "".
func (p *Pass) pkgNameOf(id *ast.Ident) string {
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isBuiltin reports whether the call expression invokes the named builtin
// (append, close, make, …), respecting shadowing via the type info.
func (p *Pass) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	obj := p.Info.Uses[id]
	_, builtin := obj.(*types.Builtin)
	return builtin
}

// Analyzers returns every invariant checker in deterministic order: the
// four original AST rules, then the dataflow-aware v2 suite (snapshot
// immutability, goroutine lifecycle, hot-path allocation discipline).
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WalltimeAnalyzer, MapiterAnalyzer, RawchanAnalyzer, FloatcmpAnalyzer,
		SnapshotmutAnalyzer, GoroleakAnalyzer, HotallocAnalyzer,
	}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// underAny reports whether the module-relative directory rel is one of the
// given roots or nested beneath one.
func underAny(rel string, roots ...string) bool {
	for _, r := range roots {
		if rel == r || strings.HasPrefix(rel, r+"/") {
			return true
		}
	}
	return false
}

// PkgResult is the analysis outcome for one package: the surviving
// findings plus every //checkinv:allow site seen, with usage marked — the
// unit the driver caches and the debt report aggregates.
type PkgResult struct {
	Findings []Finding
	Allows   []AllowSite
}

// Run applies the analyzers to the packages, honoring each analyzer's path
// scope unless allPaths is set, filters findings through the
// //checkinv:allow annotations, and returns the survivors sorted by file,
// line and rule.  Packages are analyzed concurrently — every analyzer only
// reads the package's AST and type info.
func Run(pkgs []*Package, analyzers []*Analyzer, allPaths bool) []Finding {
	var out []Finding
	for _, res := range RunPackages(pkgs, analyzers, allPaths) {
		out = append(out, res.Findings...)
	}
	SortFindings(out)
	return out
}

// RunPackages analyzes every package concurrently and returns one result
// per package, in input order.
func RunPackages(pkgs []*Package, analyzers []*Analyzer, allPaths bool) []PkgResult {
	results := make([]PkgResult, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		i, pkg := i, pkg
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = runPackage(pkg, analyzers, allPaths)
		}()
	}
	wg.Wait()
	return results
}

// runPackage applies the analyzers to one package and filters the findings
// through its allow annotations, marking each annotation used or not.
func runPackage(pkg *Package, analyzers []*Analyzer, allPaths bool) PkgResult {
	allow := collectAllows(pkg.Fset, pkg.Files)
	var res PkgResult
	for _, az := range analyzers {
		if !allPaths && az.Applies != nil && !az.Applies(pkg.Rel) {
			continue
		}
		pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Info: pkg.Info, rule: az.Name}
		az.Check(pass)
		for _, f := range pass.findings {
			if site := allow.allows(f.Pos.Filename, f.Pos.Line, f.Rule); site != nil {
				site.Used = true
				continue
			}
			res.Findings = append(res.Findings, f)
		}
	}
	SortFindings(res.Findings)
	res.Allows = allow.sites()
	return res
}

// SortFindings orders findings by file, line, rule and message — the
// canonical, byte-stable output order.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// allowDirective is the comment prefix of a suppression annotation.
const allowDirective = "//checkinv:allow"

// AllowSite is one //checkinv:allow directive in the source: where it is,
// which rules it suppresses, the free-text reason, and whether any finding
// actually needed it in the last analysis — the raw material of the
// suppression-debt report.
type AllowSite struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason,omitempty"`
	Used   bool     `json:"used"`
}

// allowSet indexes allow directives by (file, line, rule), sharing one
// *AllowSite per directive so usage marking reaches the debt report.
//
// Adjacency rules (explicit since v2): the end-of-line form covers exactly
// its own line; the standalone form (a directive alone on its line) covers
// the next line holding any non-comment source token — skipping blank
// lines, build-tag comments and other interposed comments, so a directive
// above a spaced-out composite-literal entry still lands on it.
type allowSet struct {
	byKey map[string]map[int]map[string]*AllowSite
	all   []*AllowSite
}

func (a *allowSet) add(file string, line int, rule string, site *AllowSite) {
	if a.byKey == nil {
		a.byKey = make(map[string]map[int]map[string]*AllowSite)
	}
	byLine := a.byKey[file]
	if byLine == nil {
		byLine = make(map[int]map[string]*AllowSite)
		a.byKey[file] = byLine
	}
	rules := byLine[line]
	if rules == nil {
		rules = make(map[string]*AllowSite)
		byLine[line] = rules
	}
	rules[rule] = site
}

// allows returns the directive covering (file, line, rule), or nil.
func (a *allowSet) allows(file string, line int, rule string) *AllowSite {
	rules := a.byKey[file][line]
	if s := rules[rule]; s != nil {
		return s
	}
	return rules["all"]
}

// sites returns every directive in deterministic (file, line) order.
func (a *allowSet) sites() []AllowSite {
	out := make([]AllowSite, 0, len(a.all))
	for _, s := range a.all {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// collectAllows scans every comment for //checkinv:allow directives and
// resolves each to the lines it covers under the explicit adjacency rules.
func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	out := &allowSet{}
	for _, f := range files {
		content := contentLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowDirective) {
					continue
				}
				rest := strings.TrimPrefix(text, allowDirective)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //checkinv:allowed — not our directive
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				var rules []string
				for _, rule := range strings.Split(fields[0], ",") {
					if rule = strings.TrimSpace(rule); rule != "" {
						rules = append(rules, rule)
					}
				}
				if len(rules) == 0 {
					continue
				}
				site := &AllowSite{
					File:   pos.Filename,
					Line:   pos.Line,
					Rules:  rules,
					Reason: strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
				}
				out.all = append(out.all, site)
				covered := []int{pos.Line}
				if !content[pos.Line] {
					// Standalone form: cover the next non-comment source
					// line, however many blank or comment lines intervene.
					for l := pos.Line + 1; l <= pos.Line+maxAllowSkip; l++ {
						if content[l] {
							covered = append(covered, l)
							break
						}
					}
				}
				for _, rule := range rules {
					for _, l := range covered {
						out.add(pos.Filename, l, rule, site)
					}
				}
			}
		}
	}
	return out
}

// maxAllowSkip bounds how far below a standalone directive the covered
// statement may sit.  Unbounded coverage would let a directive at the top
// of a function silently suppress a distant line; a small window keeps the
// annotation next to its evidence.
const maxAllowSkip = 10

// contentLines reports which lines of the file hold non-comment source
// tokens.  Comments (including build tags) and blank lines are absent, so
// the standalone allow form can skip over them.
func contentLines(fset *token.FileSet, f *ast.File) map[int]bool {
	out := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			out[fset.Position(n.Pos()).Line] = true // the package clause
			return true
		}
		out[fset.Position(n.Pos()).Line] = true
		out[fset.Position(n.End()).Line] = true
		return true
	})
	return out
}
