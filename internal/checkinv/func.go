package checkinv

import (
	"go/ast"
	"strings"
)

// funcNode is one function under analysis — a declaration or a literal —
// giving the dataflow-aware analyzers a uniform handle on its body, type
// and doc comment.
type funcNode struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
}

func (f funcNode) body() *ast.BlockStmt {
	switch n := f.node.(type) {
	case *ast.FuncDecl:
		return n.Body
	case *ast.FuncLit:
		return n.Body
	}
	return nil
}

func (f funcNode) typeExpr() *ast.FuncType {
	switch n := f.node.(type) {
	case *ast.FuncDecl:
		return n.Type
	case *ast.FuncLit:
		return n.Type
	}
	return nil
}

func (f funcNode) decl() *ast.FuncDecl {
	d, _ := f.node.(*ast.FuncDecl)
	return d
}

// forEachFunc visits every function with a body in the file: all
// declarations and all function literals, each exactly once.
func forEachFunc(f *ast.File, visit func(funcNode)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				visit(funcNode{node: n})
			}
		case *ast.FuncLit:
			visit(funcNode{node: n})
		}
		return true
	})
}

// enclosingFuncs maps every node of interest to its innermost enclosing
// function.  The analyzers that track dataflow across blocks (mapiter v2,
// goroleak) use it to bound their use-def searches at function scope.
// Inspect calls the visitor with nil exactly once per entered node, so a
// plain push/pop stack tracks the enclosing chain.
func enclosingFuncs(f *ast.File, want func(ast.Node) bool) map[ast.Node]funcNode {
	out := map[ast.Node]funcNode{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if want(n) {
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.FuncDecl, *ast.FuncLit:
					out[n] = funcNode{node: stack[i]}
					i = 0
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return out
}

// hotpathDirective is the annotation that opts a function into the hotalloc
// rule.
const hotpathDirective = "//checkinv:hotpath"

// isHotpath reports whether the function declaration carries a
// //checkinv:hotpath directive in its doc comment.
func isHotpath(d *ast.FuncDecl) bool {
	if d == nil || d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		text := c.Text
		if text == hotpathDirective || strings.HasPrefix(text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}
