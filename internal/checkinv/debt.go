package checkinv

import (
	"fmt"
	"io"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// DebtEntry is one //checkinv:allow site in the suppression-debt report:
// where it is, what it suppresses, whether the last analysis actually
// needed it (an unused directive is stale and should be deleted), how old
// the directive line is, and the justification its author left.
type DebtEntry struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Used   bool     `json:"used"`
	Age    string   `json:"age,omitempty"` // commit date of the line, best-effort via git
	Reason string   `json:"reason,omitempty"`
}

// DebtEntries converts allow sites into report entries, attributing an age
// to each via git blame when the tree is a git checkout.  Ages are
// best-effort: outside git (or for uncommitted lines) the field stays
// empty.
func DebtEntries(allows []AllowSite, modRoot string) []DebtEntry {
	out := make([]DebtEntry, 0, len(allows))
	for _, a := range allows {
		out = append(out, DebtEntry{
			File:   relTo(modRoot, a.File),
			Line:   a.Line,
			Rules:  a.Rules,
			Used:   a.Used,
			Age:    blameDate(modRoot, a.File, a.Line),
			Reason: a.Reason,
		})
	}
	return out
}

// blameDate returns the commit date (YYYY-MM-DD) of one line, or "".
func blameDate(modRoot, file string, line int) string {
	rel, err := filepath.Rel(modRoot, file)
	if err != nil {
		rel = file
	}
	cmd := exec.Command("git", "-C", modRoot, "blame", "-L",
		fmt.Sprintf("%d,%d", line, line), "--porcelain", "--", rel)
	data, err := cmd.Output()
	if err != nil {
		return ""
	}
	for _, l := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(l, "committer-time "); ok {
			secs, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return ""
			}
			return time.Unix(secs, 0).UTC().Format("2006-01-02")
		}
	}
	return ""
}

// WriteDebt renders the suppression-debt report as text: one line per
// directive, stale (unused) sites called out so they can be deleted.
func WriteDebt(w io.Writer, entries []DebtEntry) {
	stale := 0
	for _, e := range entries {
		status := "used"
		if !e.Used {
			status = "STALE"
			stale++
		}
		age := e.Age
		if age == "" {
			age = "uncommitted"
		}
		reason := e.Reason
		if reason == "" {
			reason = "(no reason given)"
		}
		fmt.Fprintf(w, "%s:%d\t%s\t%s\tsince %s\t%s\n",
			e.File, e.Line, strings.Join(e.Rules, ","), status, age, reason)
	}
	fmt.Fprintf(w, "%d allow site(s), %d stale\n", len(entries), stale)
}
