package checkinv

import (
	"testing"
	"time"
)

// BenchmarkDriverCold measures a full uncached run over the repository
// tree — parse, type-check (stdlib from source) and analyze everything.
// Each iteration gets a fresh cache directory so nothing carries over.
func BenchmarkDriverCold(b *testing.B) {
	root, _, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		if _, err := RunTree(RunOptions{Dir: root, Tests: true, CacheDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDriverWarm measures the same run served from a primed cache:
// only content hashing and entry hydration remain.
func BenchmarkDriverWarm(b *testing.B) {
	root, _, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	opts := RunOptions{Dir: root, Tests: true, CacheDir: dir}
	if _, err := RunTree(opts); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := RunTree(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Stats.CacheMisses != 0 {
			b.Fatalf("warm iteration missed %d package(s)", res.Stats.CacheMisses)
		}
	}
}

// TestWarmRunFaster is the in-tree half of the acceptance criterion: a
// cached re-run must be measurably faster than the cold run.  The margin
// asserted (2x) is far below the observed ~100x so the test stays stable
// on loaded machines; CI's timing step checks the same property on the
// full tree.
func TestWarmRunFaster(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	root := tmpModule(t)
	opts := RunOptions{Dir: root, CacheDir: root + "/.cache"}

	start := time.Now()
	if _, err := RunTree(opts); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	start = time.Now()
	res, err := RunTree(opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)

	if res.Stats.CacheMisses != 0 {
		t.Fatalf("warm run missed %d package(s)", res.Stats.CacheMisses)
	}
	if warm*2 > cold {
		t.Errorf("warm run %v is not measurably faster than cold %v", warm, cold)
	}
}
