package checkinv

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, fset *token.FileSet, name, src string) []*ast.File {
	t.Helper()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return []*ast.File{f}
}

// loadFixture parses and type-checks one testdata/src/<name> fixture
// package with the production loader.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := NewLoader().LoadDir(filepath.Join("testdata", "src", name), root, modPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s: no Go files", name)
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("fixture %s: type errors: %v", name, pkg.TypeErrors)
	}
	return pkg
}

// want is one expectation parsed from a `// want "regexp"` comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, `// want "`)
				if i < 0 {
					continue
				}
				rest := text[i+len(`// want "`):]
				j := strings.LastIndex(rest, `"`)
				if j < 0 {
					t.Fatalf("malformed want comment: %s", text)
				}
				pos := pkg.Fset.Position(c.Pos())
				re, err := regexp.Compile(rest[:j])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp: %v", pos.Filename, pos.Line, err)
				}
				out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("fixture declares no wants")
	}
	return out
}

// checkFixture runs one analyzer over its fixture and matches findings
// against the want comments exactly: every want must be hit on its line,
// and no finding may lack a want.
func checkFixture(t *testing.T, analyzer string) {
	t.Helper()
	az := AnalyzerByName(analyzer)
	if az == nil {
		t.Fatalf("no analyzer %q", analyzer)
	}
	pkg := loadFixture(t, analyzer)
	findings := Run([]*Package{pkg}, []*Analyzer{az}, true)
	if len(findings) == 0 {
		t.Fatalf("%s: analyzer found nothing; fixtures must contain deliberate violations", analyzer)
	}
	wants := collectWants(t, pkg)

	matched := make([]bool, len(findings))
	for _, w := range wants {
		hit := false
		for i, f := range findings {
			if matched[i] || f.Pos.Filename != w.file || f.Pos.Line != w.line {
				continue
			}
			if !w.re.MatchString(f.Message) {
				t.Errorf("%s:%d: finding %q does not match want %q", w.file, w.line, f.Message, w.re)
			}
			matched[i] = true
			hit = true
			break
		}
		if !hit {
			t.Errorf("%s:%d: want %q, got no finding", w.file, w.line, w.re)
		}
	}
	for i, f := range findings {
		if !matched[i] {
			t.Errorf("unexpected finding: %s", f)
		}
	}
}

func TestWalltimeFixture(t *testing.T)    { checkFixture(t, "walltime") }
func TestMapiterFixture(t *testing.T)     { checkFixture(t, "mapiter") }
func TestRawchanFixture(t *testing.T)     { checkFixture(t, "rawchan") }
func TestFloatcmpFixture(t *testing.T)    { checkFixture(t, "floatcmp") }
func TestSnapshotmutFixture(t *testing.T) { checkFixture(t, "snapshotmut") }
func TestGoroleakFixture(t *testing.T)    { checkFixture(t, "goroleak") }
func TestHotallocFixture(t *testing.T)    { checkFixture(t, "hotalloc") }

// TestFixturesFailClosed asserts each fixture yields at least one finding
// under the full suite with -allpkgs semantics — the property the CI gate
// relies on ("exits non-zero on each analyzer's testdata fixtures").
func TestFixturesFailClosed(t *testing.T) {
	for _, az := range Analyzers() {
		pkg := loadFixture(t, az.Name)
		if got := Run([]*Package{pkg}, Analyzers(), true); len(got) == 0 {
			t.Errorf("fixture %s: expected findings, got none", az.Name)
		}
	}
}

// TestScoping asserts the runner honors each analyzer's path scope: the
// walltime fixture package lives under internal/checkinv/testdata, outside
// every rule that could fire on its contents, so a scoped run must stay
// silent.
func TestScoping(t *testing.T) {
	pkg := loadFixture(t, "walltime")
	if got := Run([]*Package{pkg}, Analyzers(), false); len(got) != 0 {
		t.Errorf("scoped run over out-of-scope package produced findings: %v", got)
	}
	for _, tc := range []struct {
		rule, rel string
		want      bool
	}{
		{"walltime", "internal/core", true},
		{"walltime", "internal/cluster", true},
		{"walltime", "internal/apriori", false},
		{"walltime", "cmd/experiments", false},
		{"mapiter", "internal/apriori", true},
		{"mapiter", "internal", true},
		{"mapiter", "cmd/parminer", false},
		{"rawchan", "internal/core", true},
		{"rawchan", "internal/serve", true},
		{"rawchan", "cmd/ruleserver", true},
		{"rawchan", "internal/cluster", false},
		{"floatcmp", "internal/analysis", true},
		{"floatcmp", "internal/experiments", true},
		{"floatcmp", "internal/core", false},
		{"snapshotmut", "internal/serve", true},
		{"snapshotmut", "cmd/ruleserver", true},
		{"snapshotmut", "scripts", false},
		{"goroleak", "internal/serve", true},
		{"goroleak", "internal/distserve", true},
		{"goroleak", "internal/obsv", true},
		{"goroleak", "internal/core", false},
		{"goroleak", "cmd/ruleserver", false},
		{"hotalloc", "internal/hashtree", true},
		{"hotalloc", "cmd/parminer", true},
	} {
		az := AnalyzerByName(tc.rule)
		if got := az.Applies(tc.rel); got != tc.want {
			t.Errorf("%s.Applies(%q) = %v, want %v", tc.rule, tc.rel, got, tc.want)
		}
	}
}

// TestAllowGrammar exercises the directive parser on both placements and
// the multi-rule form.
func TestAllowGrammar(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

func f() {
	_ = 1 //checkinv:allow walltime — end-of-line form
	//checkinv:allow mapiter,rawchan standalone, two rules
	_ = 2
	//checkinv:allowed not-our-directive
	_ = 3
}
`
	file := parseSrc(t, fset, "allow.go", src)
	allows := collectAllows(fset, file)
	for _, tc := range []struct {
		line int
		rule string
		want bool
	}{
		{4, "walltime", true},
		{4, "mapiter", false},
		{6, "mapiter", true},
		{6, "rawchan", true},
		{6, "floatcmp", false},
		{8, "walltime", false},
	} {
		if got := allows.allows("allow.go", tc.line, tc.rule) != nil; got != tc.want {
			t.Errorf("allows(line %d, %s) = %v, want %v", tc.line, tc.rule, got, tc.want)
		}
	}
}

// TestAllowAdjacency pins the v2 adjacency rules: the end-of-line form
// covers exactly its own line, and the standalone form covers the next
// line holding non-comment source — skipping blank lines and interposed
// comments (build tags), including inside composite literals.
func TestAllowAdjacency(t *testing.T) {
	fset := token.NewFileSet()
	src := `package p

var table = []int{
	1,
	//checkinv:allow walltime — above a spaced-out literal entry

	2,
	3,
}

func f() {
	//checkinv:allow mapiter — build-tag comment interposed
	//go:build ignore
	_ = 4
	_ = 5 //checkinv:allow rawchan — end-of-line form
	_ = 6
}
`
	file := parseSrc(t, fset, "adj.go", src)
	allows := collectAllows(fset, file)
	for _, tc := range []struct {
		line int
		rule string
		want bool
	}{
		{7, "walltime", true},  // standalone skips the blank line to the "2," entry
		{8, "walltime", false}, // …and covers only that first content line
		{4, "walltime", false}, // …and nothing above itself
		{14, "mapiter", true},  // standalone skips the build-tag comment
		{13, "mapiter", false}, // the build-tag line itself holds no content
		{15, "rawchan", true},  // end-of-line covers its own line
		{16, "rawchan", false}, // …and does not leak onto the next line
	} {
		if got := allows.allows("adj.go", tc.line, tc.rule) != nil; got != tc.want {
			t.Errorf("allows(line %d, %s) = %v, want %v", tc.line, tc.rule, got, tc.want)
		}
	}
}

// TestAllowSkipBounded asserts the standalone form gives up after
// maxAllowSkip lines, so a directive cannot silently suppress a distant
// statement.
func TestAllowSkipBounded(t *testing.T) {
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n\t//checkinv:allow walltime too far\n" +
		strings.Repeat("\n", maxAllowSkip+1) + "\t_ = 1\n}\n"
	file := parseSrc(t, fset, "far.go", src)
	allows := collectAllows(fset, file)
	if got := allows.allows("far.go", 4+maxAllowSkip+2, "walltime"); got != nil {
		t.Errorf("directive covered a line %d lines below; want the %d-line bound enforced", maxAllowSkip+2, maxAllowSkip)
	}
}

// TestLoaderIncludesTestFiles exercises the Tests mode of the loader on the
// testload fixture: the in-package _test.go file joins the package's own
// type-check, the external (package foo_test) file becomes a second Package
// with the same Rel, and the walltime rule fires in both.
func TestLoaderIncludesTestFiles(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	dir := filepath.Join("testdata", "src", "testload")

	ld := NewLoader()
	pkgs, err := ld.LoadDir(dir, root, modPath)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkgs) != 1 || len(pkgs[0].Files) != 1 {
		t.Fatalf("without Tests: %d packages, want 1 with the single non-test file", len(pkgs))
	}

	ld = NewLoader()
	ld.Tests = true
	pkgs, err = ld.LoadDir(dir, root, modPath)
	if err != nil {
		t.Fatalf("LoadDir(Tests): %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("with Tests: %d packages, want 2 (package + external tests)", len(pkgs))
	}
	prim, ext := pkgs[0], pkgs[1]
	if len(prim.Files) != 2 {
		t.Errorf("primary package has %d files, want 2 (source + in-package test)", len(prim.Files))
	}
	if len(ext.Files) != 1 || !strings.HasSuffix(ext.Path, "_test") {
		t.Errorf("external package = %d files, path %q", len(ext.Files), ext.Path)
	}
	if prim.Rel != ext.Rel {
		t.Errorf("Rel differs: %q vs %q", prim.Rel, ext.Rel)
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", p.Path, p.TypeErrors)
		}
	}

	findings := Run(pkgs, []*Analyzer{WalltimeAnalyzer}, true)
	byFile := map[string]int{}
	for _, f := range findings {
		byFile[filepath.Base(f.Pos.Filename)]++
	}
	if byFile["testload_test.go"] != 1 || byFile["external_test.go"] != 1 || len(findings) != 2 {
		t.Errorf("walltime findings = %v, want one in each test file", findings)
	}
}

// TestFindingString pins the output format the driver and CI grep for.
func TestFindingString(t *testing.T) {
	f := Finding{
		Pos:     token.Position{Filename: "internal/core/core.go", Line: 210},
		Rule:    "walltime",
		Message: "time.Now reads the wall clock",
	}
	want := "internal/core/core.go:210: [walltime] time.Now reads the wall clock"
	if f.String() != want {
		t.Errorf("Finding.String() = %q, want %q", f.String(), want)
	}
}

// TestCleanTree type-checks a real simulation package from the live tree
// and asserts the scoped suite is quiet on it — the merge invariant, on the
// package (analysis) whose dependency closure is stdlib-only and therefore
// cheap to check from source in a unit test.
func TestCleanTree(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("ModuleRoot: %v", err)
	}
	pkgs, err := NewLoader().LoadDir(filepath.Join(root, "internal", "analysis"), root, modPath)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("LoadDir returned %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
	if pkg.Rel != "internal/analysis" {
		t.Fatalf("Rel = %q, want internal/analysis", pkg.Rel)
	}
	if got := Run([]*Package{pkg}, Analyzers(), false); len(got) != 0 {
		var b strings.Builder
		for _, f := range got {
			fmt.Fprintf(&b, "\n  %s", f)
		}
		t.Errorf("internal/analysis is not clean under the scoped suite:%s", b.String())
	}
}
