package checkinv

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTree lays out a file tree under a temp root and returns it.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// tmpModule is a minimal module with one walltime violation in scope
// (internal/core) and one clean package.  Imports are stdlib-only so the
// source importer resolves them regardless of the process working
// directory.
func tmpModule(t *testing.T) string {
	return writeTree(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"internal/core/core.go": `package core

import "time"

func Tick() time.Time { return time.Now() }
`,
		"internal/util/util.go": `package util

func Add(a, b int) int { return a + b }
`,
	})
}

// TestCacheColdVsWarmIdentical is the acceptance property: a warm run is
// served entirely from the cache and reports byte-identical findings.
func TestCacheColdVsWarmIdentical(t *testing.T) {
	root := tmpModule(t)
	opts := RunOptions{Dir: root, CacheDir: filepath.Join(root, ".cache")}

	cold, err := RunTree(opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.Stats.CacheHits != 0 || cold.Stats.CacheMisses != cold.Stats.Dirs {
		t.Errorf("cold run: hits=%d misses=%d over %d dirs, want all misses",
			cold.Stats.CacheHits, cold.Stats.CacheMisses, cold.Stats.Dirs)
	}
	if len(cold.Findings) != 1 || cold.Findings[0].Rule != "walltime" {
		t.Fatalf("cold findings = %v, want exactly the seeded walltime violation", cold.Findings)
	}

	warm, err := RunTree(opts)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.Stats.CacheMisses != 0 || warm.Stats.CacheHits == 0 {
		t.Errorf("warm run: hits=%d misses=%d, want all hits", warm.Stats.CacheHits, warm.Stats.CacheMisses)
	}
	if len(warm.Findings) != len(cold.Findings) {
		t.Fatalf("warm findings = %v, cold = %v", warm.Findings, cold.Findings)
	}
	for i := range warm.Findings {
		if warm.Findings[i] != cold.Findings[i] {
			t.Errorf("finding %d differs: cold %v, warm %v", i, cold.Findings[i], warm.Findings[i])
		}
	}
}

// TestCacheInvalidation edits one package and asserts exactly it misses
// while the untouched package still hits, and the new violation is found.
func TestCacheInvalidation(t *testing.T) {
	root := tmpModule(t)
	opts := RunOptions{Dir: root, CacheDir: filepath.Join(root, ".cache")}
	if _, err := RunTree(opts); err != nil {
		t.Fatalf("cold run: %v", err)
	}

	core := filepath.Join(root, "internal", "core", "core.go")
	src := `package core

import "time"

func Tick() time.Time { return time.Now() }

func Tock() time.Time { return time.Now() }
`
	if err := os.WriteFile(core, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}

	res, err := RunTree(opts)
	if err != nil {
		t.Fatalf("edited run: %v", err)
	}
	if res.Stats.CacheMisses != 1 {
		t.Errorf("misses = %d after editing one package, want 1 (hits=%d)",
			res.Stats.CacheMisses, res.Stats.CacheHits)
	}
	if len(res.Findings) != 2 {
		t.Errorf("findings after edit = %v, want both walltime violations", res.Findings)
	}
}

// TestCacheKeyTracksDependencies asserts the key of a package changes when
// a module-internal dependency's source changes — and only then — without
// needing any type-checking.
func TestCacheKeyTracksDependencies(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":      "module tmpmod\n\ngo 1.22\n",
		"a/a.go":      "package a\n\nimport \"tmpmod/b\"\n\nvar _ = b.V\n",
		"b/b.go":      "package b\n\nvar V = 1\n",
		"c/c.go":      "package c\n\nvar W = 2\n",
		"b/b_test.go": "package b\n\nvar T = V\n",
	})
	key := func(pkg string) string {
		c, err := NewCache(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		k, err := c.Key(filepath.Join(root, pkg), root, "tmpmod", "cfg", false)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}

	a0, b0, c0 := key("a"), key("b"), key("c")
	if err := os.WriteFile(filepath.Join(root, "b", "b.go"), []byte("package b\n\nvar V = 42\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	a1, b1, c1 := key("a"), key("b"), key("c")

	if a1 == a0 {
		t.Error("a's key unchanged after its dependency b changed")
	}
	if b1 == b0 {
		t.Error("b's key unchanged after its own source changed")
	}
	if c1 != c0 {
		t.Error("c's key changed though nothing it can see did")
	}

	// A dependency's _test.go files cannot change a dependent's findings:
	// with tests off they are invisible, so a's key must not move.
	if err := os.WriteFile(filepath.Join(root, "b", "b_test.go"), []byte("package b\n\nvar T = V + 1\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	if a2 := key("a"); a2 != a1 {
		t.Error("a's key changed when only b's test file did")
	}
}

// TestCacheRejectsForeignVersion asserts entries from another analyzer
// version never hydrate.
func TestCacheRejectsForeignVersion(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("deadbeef", &cacheEntry{Packages: []cachedPackage{{Rel: "x"}}}); err != nil {
		t.Fatal(err)
	}
	if got := c.Get("deadbeef"); got == nil {
		t.Fatal("freshly stored entry did not hydrate")
	}
	// Rewrite the entry with a foreign version in place.
	p := filepath.Join(dir, "deadbeef.json")
	stale := []byte(`{"version":"checkinv-v0.1","packages":[]}`)
	if err := os.WriteFile(p, stale, 0o666); err != nil {
		t.Fatal(err)
	}
	if got := c.Get("deadbeef"); got != nil {
		t.Errorf("stale-version entry hydrated: %+v", got)
	}
}
