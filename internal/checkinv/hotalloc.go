package checkinv

import (
	"go/ast"
	"go/types"
)

// HotallocAnalyzer enforces allocation discipline on functions annotated
// //checkinv:hotpath — the subset-counting walk, the trie scan and the
// Recommend merge, where arXiv:1511.07017 shows data-structure and
// allocation behavior dominates Apriori runtime.  Inside any loop of an
// annotated function it flags the per-iteration heap escapes that
// profiling keeps rediscovering:
//
//   - fmt.* and errors.New calls (formatting machinery plus an allocation
//     per iteration — hoist or drop to the cold path);
//   - append to a function-local slice declared without preallocated
//     capacity (var s []T / s := []T{} — growth reallocates along the hot
//     loop; make with a capacity, or reuse a caller-provided buffer);
//   - function literals (a closure allocates per iteration once it
//     captures);
//   - basic values (ints, floats, bools) passed to interface parameters —
//     implicit boxing allocates per call.
//
// Unannotated functions are never inspected, so the rule is opt-in and
// zero-noise; intentional sites inside a hot path carry
// //checkinv:allow hotalloc with the reason.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag per-iteration heap escapes in //checkinv:hotpath functions",
	Applies: func(rel string) bool {
		return true // opt-in via the annotation, so every package is in scope
	},
	Check: checkHotalloc,
}

func checkHotalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isHotpath(fd) || fd.Body == nil {
				continue
			}
			p.checkHotFunc(fd)
		}
	}
}

// checkHotFunc walks one annotated function, tracking loop depth.
func (p *Pass) checkHotFunc(fd *ast.FuncDecl) {
	var loops []ast.Node // enclosing loop stack
	var stack []ast.Node
	ast.Inspect(fd, func(n ast.Node) bool {
		if n == nil {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if len(loops) > 0 && loops[len(loops)-1] == top {
				loops = loops[:len(loops)-1]
			}
			return true
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n)
		case *ast.FuncLit:
			if len(loops) > 0 {
				p.Reportf(n.Pos(), "closure literal in a hot loop allocates per iteration; hoist it out of the loop")
			}
		case *ast.CallExpr:
			if len(loops) > 0 {
				p.checkHotCall(fd, n, loops[0])
			}
		}
		stack = append(stack, n)
		return true
	})
}

// checkHotCall classifies one call inside a hot loop.  outermost is the
// outermost enclosing loop — the boundary for the "outer slice" test.
func (p *Pass) checkHotCall(fd *ast.FuncDecl, call *ast.CallExpr, outermost ast.Node) {
	if p.isBuiltin(call, "append") {
		p.checkHotAppend(fd, call, outermost)
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			switch p.pkgNameOf(id) {
			case "fmt":
				p.Reportf(call.Pos(), "fmt.%s in a hot loop allocates per iteration; hoist formatting to the cold path", sel.Sel.Name)
				return
			case "errors":
				if sel.Sel.Name == "New" {
					p.Reportf(call.Pos(), "errors.New in a hot loop allocates per iteration; declare the error once as a package var")
					return
				}
			}
		}
	}
	p.checkBoxing(call)
}

// checkHotAppend flags appends whose destination is a function-local slice
// declared outside the loop without preallocated capacity — the growth
// reallocations land on every hot iteration.
func (p *Pass) checkHotAppend(fd *ast.FuncDecl, call *ast.CallExpr, outermost ast.Node) {
	if len(call.Args) == 0 {
		return
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return // field/deref targets: ownership lies elsewhere, rawchan-style review applies
	}
	obj := p.Info.Uses[dst]
	if obj == nil {
		return
	}
	// Only local slices the function itself declared: parameters are the
	// caller's buffers (the reuse idiom the serve scan path is built on).
	if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
		return
	}
	if obj.Pos() >= outermost.Pos() && obj.Pos() <= outermost.End() {
		return // declared inside the loop: per-iteration by design, not growth-in-loop
	}
	decl, found := p.localDecl(fd, obj)
	if !found || preallocated(decl) {
		return
	}
	if isParamOf(fd, obj, p) {
		return
	}
	p.Reportf(call.Pos(), "append to %s grows an unpreallocated slice across hot-loop iterations; make it with capacity or reuse a buffer", dst.Name)
}

// localDecl finds the expression the object was declared with inside the
// function; found is false for parameters and captured outer variables.
func (p *Pass) localDecl(fd *ast.FuncDecl, obj types.Object) (ast.Expr, bool) {
	var init ast.Expr
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, l := range st.Lhs {
				if lid, ok := l.(*ast.Ident); ok && p.Info.Defs[lid] == obj {
					found = true
					if i < len(st.Rhs) {
						init = st.Rhs[i]
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if p.Info.Defs[name] == obj {
					found = true
					if st.Values != nil && i < len(st.Values) {
						init = st.Values[i]
					}
				}
			}
		}
		return !found
	})
	return init, found
}

// preallocated reports whether the declaring expression reserves capacity:
// make with an explicit length or capacity, a non-empty literal, or any
// call (an unknown constructor is given the benefit of the doubt).
func preallocated(init ast.Expr) bool {
	switch x := init.(type) {
	case nil:
		return false // var s []T
	case *ast.CompositeLit:
		return len(x.Elts) > 0
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "make" {
			return len(x.Args) >= 2 // make([]T, n) or make([]T, 0, c)
		}
		return true
	case *ast.Ident:
		return x.Name != "nil"
	}
	return true
}

// isParamOf reports whether obj is one of the function's parameters or
// results.
func isParamOf(fd *ast.FuncDecl, obj types.Object, p *Pass) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if p.Info.Defs[name] == obj {
					return true
				}
			}
		}
		return false
	}
	if check(fd.Type.Params) || check(fd.Type.Results) {
		return true
	}
	if fd.Recv != nil && check(fd.Recv) {
		return true
	}
	return false
}

// checkBoxing flags basic-typed arguments passed to interface parameters —
// the implicit conversion heap-allocates the box on every call.
func (p *Pass) checkBoxing(call *ast.CallExpr) {
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params == nil || params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
		} else if i < params.Len() {
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Info()&(types.IsNumeric|types.IsBoolean) != 0 {
			p.Reportf(arg.Pos(), "%s value boxed into interface parameter in a hot loop allocates per call", at.String())
		}
	}
}
