package checkinv

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatcmpAnalyzer flags == and != between floating-point operands in the
// performance-model and experiments packages, where predicted and measured
// times differ by rounding and an exact comparison is almost always a bug
// (the intended check is a tolerance).  Comparisons where both operands are
// compile-time constants are exact by construction and stay quiet.
var FloatcmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands in analysis/experiments",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/analysis", "internal/experiments")
	},
	Check: checkFloatcmp,
}

func checkFloatcmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(p.TypeOf(be.X)) && !isFloat(p.TypeOf(be.Y)) {
				return true
			}
			if isConst(p, be.X) && isConst(p, be.Y) {
				return true
			}
			p.Reportf(be.OpPos, "%s on floating-point operands; compare with a tolerance or annotate the exact check", be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConst(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
