package checkinv

import "go/ast"

// wallFuncs are the package-time functions that read or wait on the wall
// clock.  Pure conversions and constructors (time.Duration, time.Unix,
// time.Date, time.Parse) are fine: they do not observe real time.
var wallFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WalltimeAnalyzer forbids wall-clock reads in the simulation packages.
// The emulation's only notion of time is the virtual clock advanced by
// Proc.Compute/ReadIO/Send/Recv; a time.Now slipping into a figure makes
// the result depend on the host machine and the scheduler.
var WalltimeAnalyzer = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Sleep (and friends) in simulation packages",
	Applies: func(rel string) bool {
		return underAny(rel, "internal/cluster", "internal/core", "internal/obsv", "internal/analysis", "internal/experiments")
	},
	Check: checkWalltime,
}

func checkWalltime(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if p.pkgNameOf(id) == "time" && wallFuncs[sel.Sel.Name] {
				p.Reportf(sel.Pos(), "time.%s reads the wall clock; simulation code must use the virtual clock (cluster.Proc)", sel.Sel.Name)
			}
			return true
		})
	}
}
