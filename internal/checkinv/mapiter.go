package checkinv

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapiterAnalyzer flags range-over-map loops whose iteration order can leak
// into observable output: the body appends to a slice declared outside the
// loop, sends on a channel, or writes to a stream.  Go randomizes map
// iteration order per run, so any of these makes mined itemsets, per-pass
// statistics or persisted results irreproducible.
//
// The v2 analysis keeps the safe idioms quiet with a function-scope use-def
// check instead of the old single-block heuristic:
//
//   - a collected slice that later reaches a canonicalizer — any sort.* or
//     slices.* call, or one of the project's known canonicalizing
//     constructors (itemset.New, itemset.AppendKey, which sort and dedup
//     their input) — anywhere in the same function, in any block, is
//     order-safe and never flagged;
//   - order-insensitive bodies (accumulating into another map, summing a
//     scalar) are never flagged.
//
// Channel sends and direct stream writes inside the loop body stay flagged
// unconditionally: the order has already escaped by the time any later
// statement could repair it.
var MapiterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration whose nondeterministic order reaches output",
	Applies: func(rel string) bool {
		return underAny(rel, "internal")
	},
	Check: checkMapiter,
}

// mapLeak is one way a range-over-map body exports iteration order.
type mapLeak struct {
	pos  ast.Node
	kind string
	// obj is the append target for append-kind leaks; canonicalizing it
	// later in the function neutralizes the leak.
	obj types.Object
}

func checkMapiter(p *Pass) {
	for _, f := range p.Files {
		enclosing := enclosingFuncs(f, func(n ast.Node) bool {
			_, ok := n.(*ast.RangeStmt)
			return ok
		})
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			for _, leak := range p.orderLeaks(rs) {
				if leak.obj != nil {
					if fn, ok := enclosing[ast.Node(rs)]; ok && p.canonicalizedAfter(fn, leak.obj, rs) {
						continue
					}
				}
				p.Reportf(rs.Pos(), "map iteration order reaches output (%s); sort before emitting or annotate", leak.kind)
				break // one finding per loop
			}
			return true
		})
	}
}

// orderLeaks classifies every way the loop body leaks iteration order.
func (p *Pass) orderLeaks(rs *ast.RangeStmt) []mapLeak {
	var leaks []mapLeak
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			leaks = append(leaks, mapLeak{pos: n, kind: "channel send in body"})
		case *ast.CallExpr:
			if p.isBuiltin(n, "append") {
				if obj := p.appendTargetOutside(n, rs.Body); obj != nil {
					leaks = append(leaks, mapLeak{pos: n, kind: "append to slice declared outside the loop", obj: obj})
				}
			} else if name := outputCallee(p, n); name != "" {
				leaks = append(leaks, mapLeak{pos: n, kind: "write via " + name})
			}
		}
		return true
	})
	return leaks
}

// appendTargetOutside returns the object appended to when it is declared
// outside the loop body (i.e. the appended order survives the loop), nil
// when the append cannot export order.  Non-identifier targets (fields,
// elements) necessarily outlive the loop and come back as an unnamed
// non-nil sentinel via the enclosing expression's object when resolvable;
// when not resolvable at all the caller flags unconditionally.
func (p *Pass) appendTargetOutside(call *ast.CallExpr, body *ast.BlockStmt) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	switch dst := call.Args[0].(type) {
	case *ast.Ident:
		obj := p.Info.Uses[dst]
		if obj == nil {
			return nil
		}
		if obj.Pos() >= body.Pos() && obj.Pos() <= body.End() {
			return nil // loop-local slice: order dies with the iteration
		}
		return obj
	case *ast.SelectorExpr:
		// x.f — storage outlives the loop; track the selection's object so
		// a later canonicalizer call on the same field can clear it.
		if sel, ok := p.Info.Selections[dst]; ok {
			return sel.Obj()
		}
		return fieldSentinel
	default:
		return fieldSentinel
	}
}

// fieldSentinel stands in for append targets the analysis cannot name; it
// never matches a canonicalizer argument, so such appends stay flagged.
var fieldSentinel types.Object = types.NewLabel(0, nil, "checkinv-unresolved-append-target")

// canonicalizedAfter reports whether the object reaches a canonicalizing
// call after pos anywhere in the enclosing function — across blocks, which
// is what the old single-block heuristic could not see.
func (p *Pass) canonicalizedAfter(fn funcNode, obj types.Object, pos ast.Node) bool {
	after := pos.End()
	found := false
	ast.Inspect(fn.body(), func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		if !p.isCanonicalizer(call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(a ast.Node) bool {
				if found {
					return false
				}
				if id, ok := a.(*ast.Ident); ok {
					if p.Info.Uses[id] == obj || p.Info.Defs[id] == obj {
						found = true
					}
					// A field access x.f matches by the selection's object.
				}
				if sel, ok := a.(*ast.SelectorExpr); ok {
					if s, ok := p.Info.Selections[sel]; ok && s.Obj() == obj {
						found = true
					}
				}
				return !found
			})
		}
		return !found
	})
	return found
}

// isCanonicalizer reports whether the call erases input order: any sort.*
// or slices.* call, or a known canonicalizer from the project's itemset
// package — the itemset.New constructor (sorts and dedups its input) and
// the Itemset.AppendKey method (emits the canonical sorted key encoding).
func (p *Pass) isCanonicalizer(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		switch path := p.pkgNameOf(id); {
		case path == "sort" || path == "slices":
			return true
		case isItemsetPath(path):
			switch sel.Sel.Name {
			case "New", "AppendKey":
				return true
			}
		}
	}
	// Method form: v.AppendKey(dst) with an itemset receiver.
	if sel.Sel.Name == "AppendKey" {
		if t := p.TypeOf(sel.X); t != nil {
			if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil && isItemsetPath(n.Obj().Pkg().Path()) {
				return true
			}
		}
	}
	return false
}

// isItemsetPath matches the project's itemset package under any module
// prefix (and the bare name, so fixtures type-checked standalone match).
func isItemsetPath(path string) bool {
	return path == "itemset" || strings.HasSuffix(path, "/itemset")
}

// outputCallee returns a printable name when the call writes to a stream:
// fmt.Print*/Fprint* or any method named Write*/Print*/Encode.
func outputCallee(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok && p.pkgNameOf(id) == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name
		}
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println", "Encode":
		// Only treat it as a stream write when the receiver is a value, not
		// an imported package (covered above).
		if id, ok := sel.X.(*ast.Ident); ok && p.pkgNameOf(id) != "" {
			return ""
		}
		return "method " + name
	}
	return ""
}
