package checkinv

import (
	"go/ast"
	"go/types"
)

// MapiterAnalyzer flags range-over-map loops whose iteration order can leak
// into observable output: the body appends to a slice declared outside the
// loop, sends on a channel, or writes to a stream.  Go randomizes map
// iteration order per run, so any of these makes mined itemsets, per-pass
// statistics or persisted results irreproducible.
//
// Two escapes keep the common safe idioms quiet:
//
//   - a sort.* / slices.* call later in the same enclosing block (the
//     collect-keys-then-sort idiom) suppresses the finding;
//   - order-insensitive bodies (accumulating into another map, summing a
//     scalar) are never flagged.
var MapiterAnalyzer = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration whose nondeterministic order reaches output",
	Applies: func(rel string) bool {
		return underAny(rel, "internal")
	},
	Check: checkMapiter,
}

func checkMapiter(p *Pass) {
	for _, f := range p.Files {
		ctxs := stmtContexts(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			kind := p.orderLeak(rs)
			if kind == "" {
				return true
			}
			if ctx, ok := ctxs[rs]; ok && sortFollows(p, ctx) {
				return true
			}
			p.Reportf(rs.Pos(), "map iteration order reaches output (%s); sort before emitting or annotate", kind)
			return true
		})
	}
}

// orderLeak classifies how the loop body leaks iteration order, returning
// "" when it does not.
func (p *Pass) orderLeak(rs *ast.RangeStmt) string {
	kind := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			kind = "channel send in body"
		case *ast.CallExpr:
			if p.isBuiltin(n, "append") && p.appendTargetOutside(n, rs.Body) {
				kind = "append to slice declared outside the loop"
			} else if name := outputCallee(p, n); name != "" {
				kind = "write via " + name
			}
		}
		return kind == ""
	})
	return kind
}

// appendTargetOutside reports whether the append call's first argument is a
// variable declared outside the loop body, i.e. whether the appended order
// survives the loop.
func (p *Pass) appendTargetOutside(call *ast.CallExpr, body *ast.BlockStmt) bool {
	if len(call.Args) == 0 {
		return true // malformed; be conservative
	}
	switch dst := call.Args[0].(type) {
	case *ast.Ident:
		obj := p.Info.Uses[dst]
		if obj == nil {
			return true
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	default:
		// Selector, index, … — storage necessarily outlives the loop.
		return true
	}
}

// outputCallee returns a printable name when the call writes to a stream:
// fmt.Print*/Fprint* or any method named Write*/Print*/Encode.
func outputCallee(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok && p.pkgNameOf(id) == "fmt" {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name
		}
		return ""
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println", "Encode":
		// Only treat it as a stream write when the receiver is a value, not
		// an imported package (covered above).
		if id, ok := sel.X.(*ast.Ident); ok && p.pkgNameOf(id) != "" {
			return ""
		}
		return "method " + name
	}
	return ""
}

// stmtCtx locates a statement inside its enclosing statement list.
type stmtCtx struct {
	list []ast.Stmt
	idx  int
}

// stmtContexts maps every range statement in the file to its position in
// the enclosing statement list, so analyzers can look at what follows it.
func stmtContexts(f *ast.File) map[*ast.RangeStmt]stmtCtx {
	out := make(map[*ast.RangeStmt]stmtCtx)
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch b := n.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			return true
		}
		for i, s := range list {
			if rs, ok := s.(*ast.RangeStmt); ok {
				out[rs] = stmtCtx{list: list, idx: i}
			}
		}
		return true
	})
	return out
}

// sortFollows reports whether a sort.* or slices.* call appears after the
// statement in its enclosing block — the canonical fix for map-order
// nondeterminism.
func sortFollows(p *Pass, ctx stmtCtx) bool {
	found := false
	for _, s := range ctx.list[ctx.idx+1:] {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					switch p.pkgNameOf(id) {
					case "sort", "slices":
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
