package partition

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"parapriori/internal/apriori"
	"parapriori/internal/itemset"
)

// sortedCands builds a lexicographically sorted candidate list with the
// given first-item group sizes: sizes[i] candidates starting with item i.
func sortedCands(sizes []int) []itemset.Itemset {
	var out []itemset.Itemset
	for first, n := range sizes {
		for j := 0; j < n; j++ {
			out = append(out, itemset.New(itemset.Item(first), itemset.Item(1000+j)))
		}
	}
	return out
}

func TestGroupsBasic(t *testing.T) {
	cands := sortedCands([]int{3, 0, 2, 5})
	groups := Groups(cands, 0)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	wantSizes := []int{3, 2, 5}
	wantFirsts := []itemset.Item{0, 2, 3}
	for i, g := range groups {
		if g.Size() != wantSizes[i] || g.First != wantFirsts[i] || g.HasSecond {
			t.Errorf("group %d = %+v", i, g)
		}
	}
}

func TestGroupsSplitBySecondItem(t *testing.T) {
	// 6 candidates starting with item 0 and three distinct second items;
	// threshold 2 forces a second-item split.
	cands := []itemset.Itemset{
		itemset.New(0, 1, 10), itemset.New(0, 1, 11),
		itemset.New(0, 2, 10), itemset.New(0, 2, 11),
		itemset.New(0, 3, 10), itemset.New(0, 3, 11),
	}
	groups := Groups(cands, 2)
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3: %+v", len(groups), groups)
	}
	for i, g := range groups {
		if !g.HasSecond || g.Size() != 2 || g.Second != itemset.Item(i+1) {
			t.Errorf("group %d = %+v", i, g)
		}
	}
}

func TestGroupsCoverAllCandidates(t *testing.T) {
	f := func(rawSizes []uint8, threshold uint8) bool {
		sizes := make([]int, len(rawSizes))
		total := 0
		for i, s := range rawSizes {
			sizes[i] = int(s % 9)
			total += sizes[i]
		}
		cands := sortedCands(sizes)
		groups := Groups(cands, int(threshold%20))
		covered := 0
		prevEnd := 0
		for _, g := range groups {
			if g.Start != prevEnd {
				return false // gaps or overlaps
			}
			covered += g.Size()
			prevEnd = g.End
		}
		return covered == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinPackBalances(t *testing.T) {
	// 100 groups of varied size pack into 8 buckets with low imbalance.
	rng := rand.New(rand.NewSource(1))
	sizes := make([]int, 100)
	for i := range sizes {
		sizes[i] = 1 + rng.Intn(20)
	}
	cands := sortedCands(sizes)
	asg := BinPack(cands, 8, 0)
	if got := asg.Imbalance(); got > 0.05 {
		t.Errorf("imbalance = %v, want <= 0.05", got)
	}
	// Every candidate appears exactly once across processors.
	seen := map[string]int{}
	for _, cs := range asg.PerProc {
		for _, c := range cs {
			seen[c.Key()]++
		}
	}
	if len(seen) != len(cands) {
		t.Fatalf("covered %d candidates, want %d", len(seen), len(cands))
	}
	for k, n := range seen {
		if n != 1 {
			t.Errorf("candidate %v assigned %d times", itemset.KeyToItemset(k), n)
		}
	}
}

func TestBinPackGroupIntegrity(t *testing.T) {
	// Without splitting, all candidates sharing a first item land on the
	// same processor — the property IDD's bitmap filtering needs.
	sizes := []int{5, 3, 7, 2, 8, 1}
	cands := sortedCands(sizes)
	asg := BinPack(cands, 3, 1<<30) // threshold huge: no splits
	owner := map[itemset.Item]int{}
	for p, cs := range asg.PerProc {
		for _, c := range cs {
			if prev, ok := owner[c[0]]; ok && prev != p {
				t.Fatalf("first item %d split across processors %d and %d", c[0], prev, p)
			}
			owner[c[0]] = p
		}
	}
}

func TestBinPackSkewSplits(t *testing.T) {
	// One first item holds 90% of candidates: without second-item
	// splitting one processor would get almost everything.
	var cands []itemset.Itemset
	for j := 0; j < 90; j++ {
		cands = append(cands, itemset.New(0, itemset.Item(1+j%9), itemset.Item(100+j)))
	}
	for i := 0; i < 10; i++ {
		cands = append(cands, itemset.New(itemset.Item(1+i), itemset.Item(50), itemset.Item(200)))
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Compare(cands[j]) < 0 })

	unsplit := BinPack(cands, 4, 1<<30)
	split := BinPack(cands, 4, 0) // natural threshold splits the hot item
	if split.Imbalance() >= unsplit.Imbalance() {
		t.Errorf("second-item splitting did not help: %v vs %v", split.Imbalance(), unsplit.Imbalance())
	}
	if split.Imbalance() > 0.3 {
		t.Errorf("imbalance after splitting = %v", split.Imbalance())
	}
}

func TestBinPackDeterministic(t *testing.T) {
	sizes := []int{4, 4, 4, 6, 6, 2, 9}
	cands := sortedCands(sizes)
	a := BinPack(cands, 4, 0)
	b := BinPack(cands, 4, 0)
	for p := range a.PerProc {
		if len(a.PerProc[p]) != len(b.PerProc[p]) {
			t.Fatalf("nondeterministic pack at proc %d", p)
		}
		for i := range a.PerProc[p] {
			if !a.PerProc[p][i].Equal(b.PerProc[p][i]) {
				t.Fatalf("nondeterministic candidate order at proc %d", p)
			}
		}
	}
}

func TestBinPackRealCandidates(t *testing.T) {
	// apriori.Gen output is the real input shape: sorted candidates.
	var f1 []itemset.Itemset
	for i := 0; i < 40; i++ {
		f1 = append(f1, itemset.New(itemset.Item(i)))
	}
	c2 := apriori.Gen(f1)
	for p := 1; p <= 16; p *= 2 {
		asg := BinPack(c2, p, 0)
		total := 0
		for _, n := range asg.Counts {
			total += n
		}
		if total != len(c2) {
			t.Fatalf("P=%d: packed %d of %d", p, total, len(c2))
		}
	}
}

func TestRoundRobin(t *testing.T) {
	cands := sortedCands([]int{10})
	parts := RoundRobin(cands, 3)
	if len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Errorf("sizes = %d, %d, %d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	// candidate i goes to processor i mod p
	if !parts[1][0].Equal(cands[1]) || !parts[2][1].Equal(cands[5]) {
		t.Error("round-robin order broken")
	}
	if got := RoundRobin(cands, 0); len(got) != 1 {
		t.Errorf("p=0 should clamp to 1, got %d parts", len(got))
	}
}

func TestImbalance(t *testing.T) {
	cases := []struct {
		counts []int
		want   float64
	}{
		{nil, 0},
		{[]int{5, 5, 5}, 0},
		{[]int{0, 0}, 0},
		{[]int{2, 0}, 1},      // max 2, mean 1
		{[]int{3, 1, 2}, 0.5}, // max 3, mean 2
	}
	for _, c := range cases {
		if got := Imbalance(c.counts); got != c.want {
			t.Errorf("Imbalance(%v) = %v, want %v", c.counts, got, c.want)
		}
	}
}

func TestBinPackEdgeCases(t *testing.T) {
	if asg := BinPack(nil, 4, 0); asg.Imbalance() != 0 {
		t.Error("empty pack has imbalance")
	}
	asg := BinPack(sortedCands([]int{3}), 0, 0) // p < 1 clamps to 1
	if len(asg.PerProc) != 1 || len(asg.PerProc[0]) != 3 {
		t.Errorf("p=0 pack = %+v", asg.Counts)
	}
	// More processors than groups: some processors stay empty but all
	// candidates are placed.
	asg = BinPack(sortedCands([]int{2, 2}), 8, 1<<30)
	total := 0
	for _, n := range asg.Counts {
		total += n
	}
	if total != 4 {
		t.Errorf("placed %d of 4", total)
	}
}
